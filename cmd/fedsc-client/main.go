// Command fedsc-client runs one client device of the one-shot Fed-SC
// protocol: it generates (or would load) local data, performs local
// clustering and sampling (Algorithm 2), uploads the samples to a
// fedsc-server over TCP, and prints the resulting local labels.
//
// Usage:
//
//	fedsc-client -addr localhost:7070 -id 0 -L 20 -lprime 2 -points 40
//
// The synthetic local data is drawn from lprime of L shared random
// subspaces; all clients started with the same -data-seed share the same
// subspace arrangement, which is what makes the server's aggregation
// meaningful.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"

	"fedsc/internal/core"
	"fedsc/internal/fednet"
	"fedsc/internal/synth"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7070", "server address")
		id       = flag.Int("id", 0, "device id")
		l        = flag.Int("L", 20, "number of global clusters")
		lprime   = flag.Int("lprime", 2, "clusters on this device")
		points   = flag.Int("points", 40, "local points")
		dim      = flag.Int("dim", 5, "subspace dimension")
		ambient  = flag.Int("ambient", 20, "ambient dimension")
		dataSeed = flag.Int64("data-seed", 7, "seed of the SHARED subspace arrangement")
		dsvdMode = flag.Bool("dsvd", false, "serve a distributed dominant SVD round (pair with fedsc-server -dsvd)")
	)
	flag.Parse()

	// The subspace arrangement must be identical across clients (it is
	// the ground truth of the federation); local draws differ by device.
	shared := rand.New(rand.NewSource(*dataSeed))
	s := synth.RandomSubspaces(*ambient, *dim, *l, shared)
	local := rand.New(rand.NewSource(*dataSeed*1000 + int64(*id)))
	clusters := local.Perm(*l)[:*lprime]
	counts := make([]int, *l)
	for k := 0; k < *points; k++ {
		counts[clusters[k%*lprime]]++
	}
	ds := s.SampleCounts(counts, local)

	if *dsvdMode {
		// Distributed SVD: the raw local columns never leave the device;
		// each iteration uploads only their n×k projection of the basis
		// the server sent.
		stats, err := fednet.RunDSVDClient(func() (net.Conn, error) {
			return net.Dial("tcp", *addr)
		}, *id, ds.X, fednet.RetryPolicy{MaxAttempts: 3}, fednet.WireOptions{}, local)
		if err != nil {
			log.Fatalf("fedsc-client: dsvd: %v", err)
		}
		fmt.Printf("device %d: served %d dsvd iterations in %d attempts over %d local columns\n",
			*id, stats.Iters, stats.Attempts, ds.X.Cols())
		return
	}

	res, err := fednet.DialAndRun(*addr, *id, ds.X,
		core.LocalOptions{UseEigengap: true}, local)
	if err != nil {
		log.Fatalf("fedsc-client: %v", err)
	}
	fmt.Printf("device %d: %d local clusters, assignments %v, labeled %d points\n",
		*id, res.R, res.SampleAssignments, len(res.Labels))
}
