// Command fedsc-server runs the central-server side of the one-shot
// Fed-SC protocol over TCP: it waits for the expected number of client
// uploads, clusters the pooled samples, and returns each client its
// sample assignments.
//
// Usage:
//
//	fedsc-server -addr :7070 -clients 8 -L 20 [-central ssc|tsc]
//	fedsc-server -addr :7070 -clients 4 -dsvd -dsvd-k 3 -ambient 20
//
// With -dsvd the server instead coordinates a distributed dominant SVD
// (internal/dsvd): devices keep their raw column blocks and upload only
// n×k subspace projections each iteration.
//
// Pair with cmd/fedsc-client.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"fedsc/internal/core"
	"fedsc/internal/dsvd"
	"fedsc/internal/fednet"
	"fedsc/internal/mat"
	"fedsc/internal/obs"
	"fedsc/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":7070", "listen address")
		clients   = flag.Int("clients", 4, "number of client devices to wait for")
		l         = flag.Int("L", 20, "number of global clusters")
		central   = flag.String("central", "ssc", "central clustering: ssc or tsc")
		shards    = flag.Int("shards", 0, "Phase 2 shard count (0/1 = exact single-pass central clustering)")
		sketch    = flag.Int("sketch", 0, "Phase 2 ambient sketch size s (0 = no sketch)")
		sketchK   = flag.String("sketch-kind", "gaussian", "Phase 2 sketch operator: gaussian | rows")
		seed      = flag.Int64("seed", 1, "server random seed")
		save      = flag.String("save", "", "save the serving artifact here after the round")
		storeDir  = flag.String("store", "", "deploy the serving artifact into this content-addressed store")
		tag       = flag.String("tag", "round", "manifest name for the artifact (with -store)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (empty = disabled)")
		dsvdMode  = flag.Bool("dsvd", false, "run a distributed dominant SVD round instead of Fed-SC clustering")
		dsvdK     = flag.Int("dsvd-k", 5, "number of dominant singular pairs to estimate (with -dsvd)")
		dsvdTol   = flag.Float64("dsvd-tol", 1e-9, "relative subspace residual stopping tolerance (with -dsvd)")
		ambient   = flag.Int("ambient", 20, "ambient (row) dimension of the device column blocks (with -dsvd)")
	)
	flag.Parse()

	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, obs.Default(), nil)
		if err != nil {
			log.Fatalf("fedsc-server: debug listener: %v", err)
		}
		log.Printf("fedsc-server: debug endpoints on http://%s/metrics and /debug/pprof/", dbg)
	}

	method := core.CentralSSC
	switch *central {
	case "ssc":
	case "tsc":
		method = core.CentralTSC
	default:
		log.Fatalf("fedsc-server: unknown central method %q", *central)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("fedsc-server: listen: %v", err)
	}
	defer func() { _ = ln.Close() }()

	if *dsvdMode {
		// Distributed dominant SVD: devices keep their column blocks and
		// per iteration upload only the n×k projection of the shared
		// iterate — basis estimation without centralizing any data.
		log.Printf("fedsc-server: waiting for %d devices on %s (distributed SVD, n=%d, k=%d)",
			*clients, ln.Addr(), *ambient, *dsvdK)
		srv := &fednet.DSVDServer{
			Expect:      *clients,
			Rows:        *ambient,
			Opts:        dsvd.Options{K: *dsvdK, Tol: *dsvdTol, Seed: *seed},
			WaitTimeout: 5 * time.Minute,
		}
		stats, err := srv.Serve(ln)
		if err != nil {
			log.Fatalf("fedsc-server: dsvd: %v", err)
		}
		fmt.Printf("dsvd complete: %d iterations, residual %.3e, converged=%v\n",
			stats.Result.Iters, stats.Result.Residual, stats.Result.Converged)
		fmt.Printf("singular values: %v\n", stats.Result.Sigma)
		fmt.Printf("wire: %d uplink bytes (%d payload bits), %d downlink bytes, %d retries\n",
			stats.UplinkBytes, stats.UplinkPayloadBits, stats.DownlinkBytes, stats.Retries)
		return
	}

	log.Printf("fedsc-server: waiting for %d clients on %s (L=%d, central=%s)",
		*clients, ln.Addr(), *l, *central)

	srv := &fednet.Server{
		L:      *l,
		Expect: *clients,
		Central: core.CentralOptions{
			Method:     method,
			Shards:     *shards,
			SketchSize: *sketch,
			SketchKind: mat.SketchKind(*sketchK),
		},
		Seed:   *seed,
		Export: *save != "" || *storeDir != "",
	}
	stats, err := srv.Serve(ln)
	if err != nil {
		log.Fatalf("fedsc-server: %v", err)
	}
	fmt.Printf("round complete: %d samples pooled, %d uplink bytes\n",
		stats.Samples, stats.UplinkBytes)
	if *save != "" || *storeDir != "" {
		if stats.Model == nil {
			log.Fatalf("fedsc-server: round pooled no samples, nothing to save")
		}
		if *save != "" {
			if err := stats.Model.Save(*save); err != nil {
				log.Fatalf("fedsc-server: save model: %v", err)
			}
			fmt.Printf("saved serving artifact to %s\n", *save)
		}
		if *storeDir != "" {
			st, err := store.Open(*storeDir)
			if err != nil {
				log.Fatalf("fedsc-server: %v", err)
			}
			digest, err := st.PutTagged(*tag, stats.Model)
			if err != nil {
				log.Fatalf("fedsc-server: store model: %v", err)
			}
			fmt.Printf("deployed artifact %s as %q in %s\n", digest[:12], *tag, *storeDir)
		}
	}
}
