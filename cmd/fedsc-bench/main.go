// Command fedsc-bench regenerates the tables and figures of the Fed-SC
// paper's evaluation section.
//
// Usage:
//
//	fedsc-bench [-scale quick|default|paper] [-seed N] [-tsv] [experiment ...]
//	fedsc-bench -json [-label NAME]
//
// With no experiment arguments every experiment runs in evaluation-
// section order (fig4 fig5 fig6 fig7 table3 table4 comm ablate).
//
// With -json the experiment tables are skipped; instead the tracked
// kernel benchmarks (internal/perf) run and their ns/op, B/op and
// allocs/op are written to BENCH_<label>.json, so the performance
// trajectory is recorded machine-readably across PRs (`make bench-json`).
//
// With -compare BENCH_prev.json the tracked kernels run and each is
// checked against the named baseline report; the command exits non-zero
// if any kernel's ns/op grew beyond -tolerance (`make bench-gate`).
// -json and -compare combine: measure once, record and gate together.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fedsc/internal/experiments"
	"fedsc/internal/perf"
)

// gate compares the fresh measurements against the baseline report and
// exits non-zero when any tracked kernel regressed beyond tolerance.
// Kernels present on only one side are skipped, so adding or retiring a
// benchmark never wedges the gate against an old baseline.
func gate(baselinePath string, results []perf.Result, tolerance float64) {
	base, err := perf.ReadReport(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fedsc-bench: %v\n", err)
		os.Exit(1)
	}
	deltas := perf.Compare(base.Results, results, tolerance)
	fmt.Printf("\nvs %s (label %q, tolerance +%.0f%%):\n", baselinePath, base.Label, 100*tolerance)
	for _, d := range deltas {
		mark := "ok"
		if d.Regressed {
			mark = "REGRESSED"
		}
		fmt.Printf("%-24s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			d.Name, d.PrevNs, d.CurNs, 100*(d.Ratio-1), mark)
	}
	if reg := perf.Regressions(deltas); len(reg) > 0 {
		fmt.Fprintf(os.Stderr, "fedsc-bench: %d kernel(s) regressed beyond +%.0f%% vs %s\n",
			len(reg), 100*tolerance, baselinePath)
		os.Exit(1)
	}
	fmt.Printf("bench gate passed: %d kernel(s) within +%.0f%% of %s\n",
		len(deltas), 100*tolerance, baselinePath)
}

func main() {
	scaleName := flag.String("scale", "default", "workload scale: quick, default or paper")
	seed := flag.Int64("seed", 1, "master random seed")
	tsv := flag.Bool("tsv", false, "emit tab-separated values instead of aligned tables")
	doPlot := flag.Bool("plot", false, "render each table as a terminal chart (line or heatmap)")
	jsonOut := flag.Bool("json", false, "run the tracked kernel benchmarks and write BENCH_<label>.json")
	label := flag.String("label", "local", "label naming the -json output file")
	compare := flag.String("compare", "", "baseline BENCH_<label>.json to gate the tracked kernels against")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional ns/op growth over the -compare baseline")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fedsc-bench [flags] [experiment ...]\nexperiments: %v\nflags:\n", experiments.All())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *jsonOut || *compare != "" {
		results := perf.RunSuite()
		for _, r := range results {
			fmt.Printf("%-24s %12.0f ns/op %10d B/op %8d allocs/op\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		}
		if *jsonOut {
			path := fmt.Sprintf("BENCH_%s.json", *label)
			if err := perf.WriteJSON(path, *label, results); err != nil {
				fmt.Fprintf(os.Stderr, "fedsc-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if *compare != "" {
			gate(*compare, results, *tolerance)
		}
		return
	}

	scale, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "fedsc-bench: unknown scale %q (want quick, default or paper)\n", *scaleName)
		os.Exit(2)
	}
	scale.Seed = *seed

	names := flag.Args()
	if len(names) == 0 {
		names = experiments.All()
	}
	for _, name := range names {
		start := time.Now()
		tables, ok := experiments.Run(name, scale)
		if !ok {
			fmt.Fprintf(os.Stderr, "fedsc-bench: unknown experiment %q (want one of %v)\n", name, experiments.All())
			os.Exit(2)
		}
		for _, t := range tables {
			if *tsv {
				fmt.Printf("# %s\n%s\n", t.Title, t.TSV())
			} else {
				fmt.Println(t.String())
			}
			if *doPlot {
				if chart := t.Chart(); chart != "" {
					fmt.Println(chart)
				}
			}
		}
		fmt.Printf("(%s finished in %.1fs at scale %q)\n\n", name, time.Since(start).Seconds(), scale.Name)
	}
}
