// Command fedsc-bench regenerates the tables and figures of the Fed-SC
// paper's evaluation section.
//
// Usage:
//
//	fedsc-bench [-scale quick|default|paper] [-seed N] [-tsv] [experiment ...]
//
// With no experiment arguments every experiment runs in evaluation-
// section order (fig4 fig5 fig6 fig7 table3 table4 comm ablate).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fedsc/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "default", "workload scale: quick, default or paper")
	seed := flag.Int64("seed", 1, "master random seed")
	tsv := flag.Bool("tsv", false, "emit tab-separated values instead of aligned tables")
	doPlot := flag.Bool("plot", false, "render each table as a terminal chart (line or heatmap)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fedsc-bench [flags] [experiment ...]\nexperiments: %v\nflags:\n", experiments.All())
		flag.PrintDefaults()
	}
	flag.Parse()

	scale, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "fedsc-bench: unknown scale %q (want quick, default or paper)\n", *scaleName)
		os.Exit(2)
	}
	scale.Seed = *seed

	names := flag.Args()
	if len(names) == 0 {
		names = experiments.All()
	}
	for _, name := range names {
		start := time.Now()
		tables, ok := experiments.Run(name, scale)
		if !ok {
			fmt.Fprintf(os.Stderr, "fedsc-bench: unknown experiment %q (want one of %v)\n", name, experiments.All())
			os.Exit(2)
		}
		for _, t := range tables {
			if *tsv {
				fmt.Printf("# %s\n%s\n", t.Title, t.TSV())
			} else {
				fmt.Println(t.String())
			}
			if *doPlot {
				if chart := t.Chart(); chart != "" {
					fmt.Println(chart)
				}
			}
		}
		fmt.Printf("(%s finished in %.1fs at scale %q)\n\n", name, time.Since(start).Seconds(), scale.Name)
	}
}
