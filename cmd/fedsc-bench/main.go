// Command fedsc-bench regenerates the tables and figures of the Fed-SC
// paper's evaluation section.
//
// Usage:
//
//	fedsc-bench [-scale quick|default|paper] [-seed N] [-tsv] [experiment ...]
//	fedsc-bench -json [-label NAME]
//
// With no experiment arguments every experiment runs in evaluation-
// section order (fig4 fig5 fig6 fig7 table3 table4 comm ablate).
//
// With -json the experiment tables are skipped; instead the tracked
// kernel benchmarks (internal/perf) run and their ns/op, B/op and
// allocs/op are written to BENCH_<label>.json, so the performance
// trajectory is recorded machine-readably across PRs (`make bench-json`).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fedsc/internal/experiments"
	"fedsc/internal/perf"
)

func main() {
	scaleName := flag.String("scale", "default", "workload scale: quick, default or paper")
	seed := flag.Int64("seed", 1, "master random seed")
	tsv := flag.Bool("tsv", false, "emit tab-separated values instead of aligned tables")
	doPlot := flag.Bool("plot", false, "render each table as a terminal chart (line or heatmap)")
	jsonOut := flag.Bool("json", false, "run the tracked kernel benchmarks and write BENCH_<label>.json")
	label := flag.String("label", "local", "label naming the -json output file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fedsc-bench [flags] [experiment ...]\nexperiments: %v\nflags:\n", experiments.All())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *jsonOut {
		path := fmt.Sprintf("BENCH_%s.json", *label)
		results := perf.RunSuite()
		for _, r := range results {
			fmt.Printf("%-24s %12.0f ns/op %10d B/op %8d allocs/op\n",
				r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		}
		if err := perf.WriteJSON(path, *label, results); err != nil {
			fmt.Fprintf(os.Stderr, "fedsc-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
		return
	}

	scale, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "fedsc-bench: unknown scale %q (want quick, default or paper)\n", *scaleName)
		os.Exit(2)
	}
	scale.Seed = *seed

	names := flag.Args()
	if len(names) == 0 {
		names = experiments.All()
	}
	for _, name := range names {
		start := time.Now()
		tables, ok := experiments.Run(name, scale)
		if !ok {
			fmt.Fprintf(os.Stderr, "fedsc-bench: unknown experiment %q (want one of %v)\n", name, experiments.All())
			os.Exit(2)
		}
		for _, t := range tables {
			if *tsv {
				fmt.Printf("# %s\n%s\n", t.Title, t.TSV())
			} else {
				fmt.Println(t.String())
			}
			if *doPlot {
				if chart := t.Chart(); chart != "" {
					fmt.Println(chart)
				}
			}
		}
		fmt.Printf("(%s finished in %.1fs at scale %q)\n\n", name, time.Since(start).Seconds(), scale.Name)
	}
}
