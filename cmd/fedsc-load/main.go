// Command fedsc-load is the saturation harness for fedsc-serve: it
// ramps concurrency against a serving endpoint stage by stage, routes
// requests round-robin across the named models, and reports per-stage
// throughput with p50/p99 latency plus the peak RPS across the run.
//
// Point it at a running server:
//
//	fedsc-load -target http://localhost:8080 -models alpha,beta \
//	    -ramp 1,2,4,8,16 -stage 3s -batch 8 -label pr6
//
// Or let it self-host: `-self` deploys two synthetic models into a
// temp artifact store, serves them in-process with a deliberately
// small admission queue, and verifies the serving contract end to end
// (both models answer routed assigns; an oversized burst is shed with
// 429, not a timeout). The process exits non-zero if a check fails,
// which is what `make load` and CI run:
//
//	fedsc-load -self -ramp 1,4 -stage 500ms
//
// With -label the run is recorded to BENCH_serve_<label>.json so
// serving throughput gets the same PR-over-PR trajectory as the
// kernel benchmarks in BENCH_<label>.json. The optional -chaos-latency
// flag injects seeded dial latency through the chaos transport to
// measure throughput under degraded networks.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fedsc/internal/chaos"
	"fedsc/internal/core"
	"fedsc/internal/serve"
	"fedsc/internal/store"
)

func main() {
	var (
		target     = flag.String("target", "", "base URL of a running fedsc-serve (e.g. http://localhost:8080)")
		self       = flag.Bool("self", false, "self-host: serve two synthetic models from a temp store in-process")
		models     = flag.String("models", "", "comma-separated model names to route round-robin (empty = default model)")
		ramp       = flag.String("ramp", "1,2,4,8", "comma-separated concurrency stages")
		stage      = flag.Duration("stage", 2*time.Second, "duration of each ramp stage")
		batch      = flag.Int("batch", 8, "points per assign request")
		queue      = flag.Int("queue", 32, "admission queue bound of the self-hosted server (points)")
		probe      = flag.Int("probe", 0, "shed probe: send one request with this many points and require 429 (0 = off; -self defaults to queue+1)")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-request client timeout")
		seed       = flag.Int64("seed", 1, "seed for generated points and chaos schedules")
		label      = flag.String("label", "", "record the run to BENCH_serve_<label>.json (empty = don't)")
		chaosLat   = flag.Duration("chaos-latency", 0, "inject this much seeded latency per connection direction")
		chaosJit   = flag.Duration("chaos-jitter", 0, "widen -chaos-latency by a seeded uniform draw")
		serveBatch = flag.Int("serve-batch", 4, "max batch of the self-hosted server")
	)
	flag.Parse()

	if (*target == "") == !*self {
		fatalf("need exactly one of -target or -self")
	}
	stages, err := parseRamp(*ramp)
	if err != nil {
		fatalf("%v", err)
	}

	if *self {
		base, stop, err := selfHost(*queue, *serveBatch)
		if err != nil {
			fatalf("self-host: %v", err)
		}
		defer stop()
		*target = base
		if *models == "" {
			*models = "alpha,beta"
		}
		if *probe == 0 {
			*probe = *queue + 1
		}
		fmt.Printf("self-hosting two models on %s (queue=%d points)\n", base, *queue)
	}
	base := strings.TrimRight(*target, "/")

	client := newClient(*timeout, *seed, *chaosLat, *chaosJit)
	names := splitModels(*models)
	bodies, err := buildBodies(client, base, names, *batch, *seed)
	if err != nil {
		fatalf("%v", err)
	}

	perModelOK := make(map[string]*atomic.Int64, len(names))
	for _, name := range names {
		perModelOK[name] = &atomic.Int64{}
	}
	var results []StageResult
	peak := 0.0
	for _, conc := range stages {
		res := runStage(client, base, bodies, conc, *stage, perModelOK)
		if res.RPS > peak {
			peak = res.RPS
		}
		results = append(results, res)
		fmt.Printf("stage c=%-3d requests=%-6d ok=%-6d shed=%-5d errors=%-4d rps=%-8.1f p50=%.2fms p99=%.2fms\n",
			res.Concurrency, res.Requests, res.OK, res.Shed, res.Errors, res.RPS, res.P50Ms, res.P99Ms)
	}
	fmt.Printf("peak %.1f requests/s (%.1f points/s)\n", peak, peak*float64(*batch))

	failed := false
	for _, name := range names {
		ok := perModelOK[name].Load()
		display := name
		if display == "" {
			display = "(default)"
		}
		if ok == 0 {
			fmt.Printf("CHECK FAIL: model %s answered no routed assigns\n", display)
			failed = true
		} else {
			fmt.Printf("CHECK ok: model %s answered %d routed assigns\n", display, ok)
		}
	}
	probe429 := false
	if *probe > 0 {
		status, err := shedProbe(client, base, names[0], *probe, *seed)
		switch {
		case err != nil:
			fmt.Printf("CHECK FAIL: shed probe (%d points): %v\n", *probe, err)
			failed = true
		case status != http.StatusTooManyRequests:
			fmt.Printf("CHECK FAIL: shed probe (%d points) got status %d, want 429\n", *probe, status)
			failed = true
		default:
			probe429 = true
			fmt.Printf("CHECK ok: shed probe (%d points) rejected with 429\n", *probe)
		}
	}

	if *label != "" {
		path := "BENCH_serve_" + *label + ".json"
		if err := writeReport(path, *label, base, names, *batch, *stage, *chaosLat, results, peak, *probe > 0, probe429); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	if failed {
		os.Exit(1)
	}
}

// StageResult is one ramp stage's aggregate in the report.
type StageResult struct {
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Errors      int64   `json:"errors"`
	RPS         float64 `json:"rps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// Report is the schema of a BENCH_serve_<label>.json file.
type Report struct {
	Label          string        `json:"label"`
	Target         string        `json:"target"`
	Models         []string      `json:"models"`
	Batch          int           `json:"batch"`
	StageSeconds   float64       `json:"stage_seconds"`
	ChaosLatencyMs float64       `json:"chaos_latency_ms,omitempty"`
	GoVersion      string        `json:"go_version"`
	GOMAXPROCS     int           `json:"gomaxprocs"`
	CreatedAt      string        `json:"created_at"`
	Stages         []StageResult `json:"stages"`
	PeakRPS        float64       `json:"peak_rps"`
	ShedProbeRan   bool          `json:"shed_probe_ran"`
	ShedProbe429   bool          `json:"shed_probe_429"`
}

func writeReport(path, label, target string, models []string, batch int, stage, chaosLat time.Duration,
	stages []StageResult, peak float64, probeRan, probe429 bool) error {
	rep := Report{
		Label:          label,
		Target:         target,
		Models:         models,
		Batch:          batch,
		StageSeconds:   stage.Seconds(),
		ChaosLatencyMs: float64(chaosLat) / float64(time.Millisecond),
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		CreatedAt:      time.Now().UTC().Format(time.RFC3339),
		Stages:         stages,
		PeakRPS:        peak,
		ShedProbeRan:   probeRan,
		ShedProbe429:   probe429,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write report: %w", err)
	}
	return nil
}

// modelBody is a pre-marshaled assign request for one model.
type modelBody struct {
	model string
	body  []byte
}

// buildBodies discovers each model's ambient dimension via /v1/models
// and pre-marshals one deterministic batch request per routed model, so
// the hot loop does no JSON encoding.
func buildBodies(client *http.Client, base string, names []string, batch int, seed int64) ([]modelBody, error) {
	infos, err := fetchModels(client, base)
	if err != nil {
		return nil, err
	}
	ambient := make(map[string]int, len(infos))
	defaultAmbient := 0
	for _, mi := range infos {
		if !mi.Active {
			continue
		}
		ambient[mi.Name] = mi.Ambient
		if mi.Default {
			defaultAmbient = mi.Ambient
		}
	}
	rng := rand.New(rand.NewSource(seed))
	bodies := make([]modelBody, 0, len(names))
	for _, name := range names {
		dim := defaultAmbient
		if name != "" {
			var ok bool
			if dim, ok = ambient[name]; !ok {
				return nil, fmt.Errorf("model %q is not served (see GET %s/v1/models)", name, base)
			}
		}
		if dim == 0 {
			return nil, fmt.Errorf("no default model served on %s", base)
		}
		points := make([][]float64, batch)
		for i := range points {
			p := make([]float64, dim)
			for j := range p {
				p[j] = rng.NormFloat64()
			}
			points[i] = p
		}
		raw, err := json.Marshal(serve.AssignRequest{Model: name, Points: points})
		if err != nil {
			return nil, fmt.Errorf("marshal request for %q: %w", name, err)
		}
		bodies = append(bodies, modelBody{model: name, body: raw})
	}
	return bodies, nil
}

func fetchModels(client *http.Client, base string) ([]serve.ModelInfo, error) {
	resp, err := client.Get(base + "/v1/models")
	if err != nil {
		return nil, fmt.Errorf("discover models: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("discover models: status %d: %s", resp.StatusCode, data)
	}
	var infos []serve.ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, fmt.Errorf("discover models: %w", err)
	}
	return infos, nil
}

// runStage drives conc workers against /v1/assign for dur, rotating
// over bodies. Latency percentiles cover successful requests only;
// shed (429) and transport/other failures are counted separately.
func runStage(client *http.Client, base string, bodies []modelBody, conc int, dur time.Duration,
	perModelOK map[string]*atomic.Int64) StageResult {
	var requests, okCount, shed, errs atomic.Int64
	latencies := make([][]float64, conc)
	deadline := time.Now().Add(dur)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var lats []float64
			for i := w; time.Now().Before(deadline); i++ {
				b := bodies[i%len(bodies)]
				requests.Add(1)
				t0 := time.Now()
				status, err := post(client, base+"/v1/assign", b.body)
				elapsed := time.Since(t0)
				switch {
				case err != nil:
					errs.Add(1)
				case status == http.StatusOK:
					okCount.Add(1)
					perModelOK[b.model].Add(1)
					lats = append(lats, float64(elapsed)/float64(time.Millisecond))
				case status == http.StatusTooManyRequests:
					shed.Add(1)
				default:
					errs.Add(1)
				}
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []float64
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	sort.Float64s(all)
	return StageResult{
		Concurrency: conc,
		Requests:    requests.Load(),
		OK:          okCount.Load(),
		Shed:        shed.Load(),
		Errors:      errs.Load(),
		RPS:         float64(requests.Load()) / elapsed.Seconds(),
		P50Ms:       percentile(all, 0.50),
		P99Ms:       percentile(all, 0.99),
	}
}

// shedProbe sends one request with enough points to exceed the server's
// admission bound and returns the status, which must be 429 on a server
// that sheds rather than stalls.
func shedProbe(client *http.Client, base, model string, points int, seed int64) (int, error) {
	infos, err := fetchModels(client, base)
	if err != nil {
		return 0, err
	}
	dim := 0
	for _, mi := range infos {
		if mi.Active && (mi.Name == model || (model == "" && mi.Default)) {
			dim = mi.Ambient
		}
	}
	if dim == 0 {
		return 0, fmt.Errorf("model %q not served", model)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	big := make([][]float64, points)
	for i := range big {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		big[i] = p
	}
	raw, err := json.Marshal(serve.AssignRequest{Model: model, Points: big})
	if err != nil {
		return 0, err
	}
	return post(client, base+"/v1/assign", raw)
}

func post(client *http.Client, url string, body []byte) (int, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

// newClient builds the load-generation client. With chaos latency the
// transport dials through a seeded chaos schedule and keep-alives are
// disabled so every request pays the scripted dial cost, making the
// injected degradation visible per request rather than per connection.
func newClient(timeout time.Duration, seed int64, lat, jit time.Duration) *http.Client {
	tr := &http.Transport{MaxIdleConnsPerHost: 256}
	if lat > 0 {
		sched := &chaos.Schedule{Seed: seed, Default: chaos.Script{Latency: lat, Jitter: jit}}
		dialer := &net.Dialer{Timeout: timeout}
		var device atomic.Int64
		tr.DisableKeepAlives = true
		tr.DialContext = func(ctx context.Context, network, addr string) (net.Conn, error) {
			dev := int(device.Add(1))
			return sched.Wrap(dev, 0, func() (net.Conn, error) {
				return dialer.DialContext(ctx, network, addr)
			})
		}
	}
	return &http.Client{Transport: tr, Timeout: timeout}
}

// selfHost deploys two synthetic models into a temp store and serves
// them in-process: "alpha" and "beta" are ambient-8 artifacts whose
// cluster bases are opposite axis permutations, so routed assigns are
// exactly predictable and provably answered by distinct models.
func selfHost(maxQueue, maxBatch int) (string, func(), error) {
	dir, err := os.MkdirTemp("", "fedsc-load-*")
	if err != nil {
		return "", nil, err
	}
	cleanupDir := func() { _ = os.RemoveAll(dir) }
	st, err := store.Open(dir)
	if err != nil {
		cleanupDir()
		return "", nil, err
	}
	alpha, err := axisModel([]int{0, 1, 2, 3})
	if err == nil {
		_, err = st.PutTagged("alpha", alpha)
	}
	if err != nil {
		cleanupDir()
		return "", nil, err
	}
	beta, err := axisModel([]int{3, 2, 1, 0})
	if err == nil {
		_, err = st.PutTagged("beta", beta)
	}
	if err != nil {
		cleanupDir()
		return "", nil, err
	}

	reg := serve.NewRegistry()
	if _, err := reg.UseStore(st); err != nil {
		cleanupDir()
		return "", nil, err
	}
	metrics := serve.NewMetrics()
	batcher := serve.NewBatcher(reg, metrics, serve.BatcherOptions{MaxBatch: maxBatch, MaxQueue: maxQueue})
	handler := serve.NewHandler(reg, batcher, metrics)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		batcher.Stop()
		cleanupDir()
		return "", nil, err
	}
	srv := &http.Server{Handler: handler, ReadTimeout: 30 * time.Second, WriteTimeout: 30 * time.Second}
	// The buffered handoff is the termination proof: srv.Close in stop()
	// makes Serve return, and the send completes without a reader.
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	stop := func() {
		_ = srv.Close()
		batcher.Stop()
		cleanupDir()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// axisModel builds a sealed ambient-8 artifact whose cluster g's basis
// is the coordinate axis perm[g].
func axisModel(perm []int) (*core.Model, error) {
	const ambient = 8
	m := &core.Model{Version: core.ModelVersion, Ambient: ambient, L: len(perm), Method: "ssc",
		CreatedUnixNano: 1}
	for _, axis := range perm {
		data := make([]float64, ambient)
		data[axis] = 1
		m.Clusters = append(m.Clusters, core.ClusterBasis{Dim: 1, Data: data, Samples: 1})
	}
	m.Seal()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// percentile returns the pth quantile of sorted (nearest-rank), or 0
// when empty.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// parseRamp parses the comma-separated concurrency stages.
func parseRamp(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-ramp must list positive integers, got %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-ramp is empty")
	}
	return out, nil
}

// splitModels parses -models; an empty flag routes the default model.
func splitModels(s string) []string {
	if s == "" {
		return []string{""}
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fedsc-load: "+format+"\n", args...)
	os.Exit(1)
}
