// Command fedsc-fleet replays a continuous-federation churn scenario
// against the internal/fleet round controller: an initial one-shot
// round over founding devices that see only a subset of the world's
// subspaces, then incremental waves of late-joining devices — one
// absorb-only wave (familiar subspaces fold into the served model
// without publishing), two splice waves (novel subspaces pool into
// delta sub-solves and grow the model), one forced rollback through
// the store manifest, and a re-churn proving version numbers stay
// monotonic. Every published version lands in a content-addressed
// store under immutable "<tag>@vN" manifest tags.
//
// Usage:
//
//	fedsc-fleet [-n N] [-per N] [-seed N] [-dir PATH] [-check]
//
// -check exits non-zero when the final fleet accuracy trails the
// all-devices one-shot baseline by more than 5 points, or when the
// rollback fails to restore the exact prior artifact digest — the
// acceptance gates of the continuous-federation subsystem.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"fedsc/internal/core"
	"fedsc/internal/fleet"
	"fedsc/internal/mat"
	"fedsc/internal/metrics"
	"fedsc/internal/store"
	"fedsc/internal/synth"
)

// worldL is the scenario's total subspace count: founding devices see
// the first founderL, the two splice waves introduce the rest.
const (
	worldL   = 5
	founderL = 3
	subDim   = 3
)

func main() {
	n := flag.Int("n", 30, "ambient dimension of the synthetic subspaces")
	per := flag.Int("per", 15, "points per subspace per device")
	seed := flag.Int64("seed", 7, "master seed for data and controller")
	dir := flag.String("dir", "", "model store directory (default: a fresh temp dir)")
	check := flag.Bool("check", false, "exit non-zero when an acceptance gate fails")
	flag.Parse()

	if err := run(*n, *per, *seed, *dir, *check); err != nil {
		fmt.Fprintf(os.Stderr, "fedsc-fleet: %v\n", err)
		os.Exit(1)
	}
}

// world accumulates every device the scenario has introduced, with
// ground-truth labels for the final accuracy measure.
type world struct {
	s     synth.Subspaces
	rng   *rand.Rand
	n     int
	per   int
	x     []*mat.Dense
	truth [][]int
}

// wave adds one wave of devices, each drawing points from the listed
// subspaces.
func (w *world) wave(deviceSubs ...[]int) []*mat.Dense {
	var devices []*mat.Dense
	for _, subs := range deviceSubs {
		counts := make([]int, worldL)
		for _, c := range subs {
			counts[c] = w.per
		}
		ds := w.s.SampleCounts(counts, w.rng)
		w.x = append(w.x, ds.X)
		w.truth = append(w.truth, ds.Labels)
		devices = append(devices, ds.X)
	}
	return devices
}

func run(n, per int, seed int64, dir string, check bool) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "fedsc-fleet-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	st, err := store.Open(dir)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(seed))
	w := &world{s: synth.RandomSubspaces(n, subDim, worldL, rng), rng: rng, n: n, per: per}
	local := core.LocalOptions{UseEigengap: true, SamplesPerCluster: 3}

	ctl, err := fleet.New(fleet.Config{L: founderL, Local: local, Seed: seed, Store: st})
	if err != nil {
		return err
	}

	fmt.Printf("%-22s %8s %12s %9s %9s %8s  %s\n",
		"round", "devices", "version", "clusters", "absorbed", "spliced", "digest")
	row := func(name string, devices int, v fleet.Version, absorbed, spliced int) {
		fmt.Printf("%-22s %8d %12s %9d %9d %8d  %s\n",
			name, devices, v.Tag, v.Clusters, absorbed, spliced, v.Digest[:12])
	}

	// Round 0: the founding cohort sees only the first founderL subspaces.
	founding := w.wave([]int{0, 1}, []int{1, 2}, []int{0, 2}, []int{0, 1}, []int{1, 2}, []int{0, 2})
	if _, v, err := ctl.Initial(founding); err != nil {
		return err
	} else {
		row("initial", len(founding), v, 0, 0)
	}

	// Wave 1: familiar subspaces only — everything absorbs, no publish.
	if res, err := ctl.Join(w.wave([]int{0, 1}, []int{2})); err != nil {
		return err
	} else {
		row("join (absorb)", 2, res.Version, res.Absorbed, res.Spliced)
	}

	// Waves 2 and 3: novel subspaces appear and splice new clusters in.
	if res, err := ctl.Join(w.wave([]int{0, 3}, []int{3})); err != nil {
		return err
	} else {
		row("join (splice)", 2, res.Version, res.Absorbed, res.Spliced)
	}
	res3, err := ctl.Join(w.wave([]int{4, 1}, []int{4}))
	if err != nil {
		return err
	}
	row("join (splice)", 2, res3.Version, res3.Absorbed, res3.Spliced)
	preRollback := ctl.History()

	// Forced rollback: the manifest retags the alias to the previous
	// version and the controller reloads that exact artifact.
	back, err := ctl.Rollback()
	if err != nil {
		return err
	}
	row("rollback", 0, back, 0, 0)
	wantDigest := preRollback[len(preRollback)-2].Digest
	rollbackExact := back.Digest == wantDigest && store.Digest(ctl.Model()) == wantDigest
	if !rollbackExact {
		fmt.Fprintf(os.Stderr, "fedsc-fleet: rollback landed on %s, want exact prior %s\n",
			back.Digest, wantDigest)
	}

	// Re-churn the rolled-back wave: version numbers never rewind.
	res4, err := ctl.Join(w.wave([]int{4}, []int{4, 0}))
	if err != nil {
		return err
	}
	row("join (re-churn)", 2, res4.Version, res4.Absorbed, res4.Spliced)

	// Accuracy gates: the continuous fleet vs the one-shot run that had
	// every device from the start.
	var truth []int
	for _, labels := range w.truth {
		truth = append(truth, labels...)
	}
	base := core.Run(w.x, worldL, core.Options{Local: local}, rand.New(rand.NewSource(seed)))
	var baseLabels []int
	for _, labels := range base.Labels {
		baseLabels = append(baseLabels, labels...)
	}
	baseAcc := metrics.Accuracy(truth, baseLabels)

	var pred []int
	for _, x := range w.x {
		labels, _, err := ctl.Assign(x)
		if err != nil {
			return err
		}
		pred = append(pred, labels...)
	}
	fleetAcc := metrics.Accuracy(truth, pred)

	fmt.Printf("\naccuracy: one-shot baseline %.2f%%, continuous fleet %.2f%% (gate: within 5 points)\n",
		baseAcc, fleetAcc)
	fmt.Printf("rollback: exact prior digest restored: %v\n", rollbackExact)

	if check {
		failed := false
		if fleetAcc < baseAcc-5 {
			fmt.Fprintf(os.Stderr, "fedsc-fleet: accuracy gate failed: fleet %.2f%% trails baseline %.2f%% by more than 5 points\n",
				fleetAcc, baseAcc)
			failed = true
		}
		if !rollbackExact {
			fmt.Fprintln(os.Stderr, "fedsc-fleet: rollback gate failed")
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("check: all acceptance gates passed")
	}
	return nil
}
