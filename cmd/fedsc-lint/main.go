// fedsc-lint runs the project's static-analysis suite (internal/analysis)
// over every package of the module: a stdlib-only analyzer driver
// enforcing the determinism, error-handling, and deadline contracts the
// one-shot protocol depends on.
//
// Usage:
//
//	fedsc-lint [-C dir] [-list] [analyzer ...]
//
// With no analyzer arguments the full suite runs. Exit status is 1
// when findings are reported, 2 on a load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"fedsc/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "module root directory to analyze")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := selectAnalyzers(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fedsc-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func selectAnalyzers(names []string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if len(names) == 0 {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range names {
		a := byName[name]
		if a == nil {
			return nil, fmt.Errorf("fedsc-lint: unknown analyzer %q (use -list)", name)
		}
		picked = append(picked, a)
	}
	return picked, nil
}
