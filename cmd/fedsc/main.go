// Command fedsc runs one-shot federated subspace clustering (or a
// baseline) on a generated dataset and prints the evaluation metrics.
//
// Examples:
//
//	fedsc -method fedsc-ssc -L 20 -Z 200 -lprime 2
//	fedsc -method kfed -dataset emnist -Z 100
//	fedsc -method ssc -dataset coil      # centralized baseline
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"fedsc/internal/core"
	"fedsc/internal/datasets"
	"fedsc/internal/kfed"
	"fedsc/internal/mat"
	"fedsc/internal/metrics"
	"fedsc/internal/obs"
	"fedsc/internal/store"
	"fedsc/internal/subspace"
	"fedsc/internal/synth"
)

func main() {
	var (
		method   = flag.String("method", "fedsc-ssc", "fedsc-ssc | fedsc-tsc | kfed | kfed-pca10 | kfed-pca100 | ssc | tsc | sscomp | ensc | nsn")
		dataset  = flag.String("dataset", "synthetic", "synthetic | emnist | coil")
		l        = flag.Int("L", 20, "number of global clusters (synthetic)")
		z        = flag.Int("Z", 100, "number of devices")
		lprime   = flag.Int("lprime", 2, "clusters per device L' (0 = IID)")
		points   = flag.Int("points", 4000, "total number of data points (approximate)")
		dim      = flag.Int("dim", 5, "subspace dimension (synthetic)")
		ambient  = flag.Int("ambient", 20, "ambient dimension (synthetic) or feature dim (real)")
		noise    = flag.Float64("noise", 0, "channel-noise δ for Fed-SC uploads")
		shards   = flag.Int("shards", 0, "Phase 2 shard count (0/1 = exact single-pass central clustering)")
		sketch   = flag.Int("sketch", 0, "Phase 2 ambient sketch size s (0 = no sketch)")
		sketchK  = flag.String("sketch-kind", "gaussian", "Phase 2 sketch operator: gaussian | rows")
		seed     = flag.Int64("seed", 1, "random seed")
		save     = flag.String("save", "", "save the serving artifact here (fedsc-ssc/fedsc-tsc only)")
		storeDir = flag.String("store", "", "deploy the serving artifact into this content-addressed store (fedsc-ssc/fedsc-tsc only)")
		tag      = flag.String("tag", "round", "manifest name for the artifact (with -store)")
		trace    = flag.String("trace", "", "write the round's span tree as canonical JSONL here and render a waterfall (fedsc-ssc/fedsc-tsc only)")
	)
	flag.Parse()
	if (*save != "" || *storeDir != "") && *method != "fedsc-ssc" && *method != "fedsc-tsc" {
		fatalf("-save/-store require -method fedsc-ssc or fedsc-tsc (got %q)", *method)
	}
	if *trace != "" && *method != "fedsc-ssc" && *method != "fedsc-tsc" {
		fatalf("-trace requires -method fedsc-ssc or fedsc-tsc (got %q)", *method)
	}
	rng := rand.New(rand.NewSource(*seed))

	var ds synth.Dataset
	numClusters := *l
	switch *dataset {
	case "synthetic":
		s := synth.RandomSubspaces(*ambient, *dim, *l, rng)
		per := *points / *l
		if per < *dim+2 {
			per = *dim + 2
		}
		ds = s.Sample(per, rng)
	case "emnist":
		cfg := datasets.DefaultEMNIST()
		if *ambient > 20 {
			cfg.Ambient = *ambient
		}
		ds = datasets.SimEMNIST(cfg, *points, rng)
		numClusters = cfg.Classes
	case "coil":
		cfg := datasets.DefaultCOIL()
		if *ambient > 20 {
			cfg.Ambient = *ambient
		}
		ds = datasets.SimCOIL100(cfg, rng)
		ds = datasets.Subsample(ds, *points, rng)
		numClusters = cfg.Classes
	default:
		fatalf("unknown dataset %q", *dataset)
	}

	start := time.Now()
	switch *method {
	case "ssc", "tsc", "sscomp", "ensc", "nsn":
		res := subspace.Cluster(subspace.Method(*method), ds.X, numClusters, rng)
		report(*method, ds.N(), numClusters, 0, 1,
			metrics.Accuracy(ds.Labels, res.Labels), metrics.NMI(ds.Labels, res.Labels),
			time.Since(start))
		return
	}

	lp := *lprime
	if lp <= 0 || lp > numClusters {
		lp = numClusters
	}
	part := synth.PartitionNonIID(ds.Labels, numClusters, *z, lp, rng)
	devices := make([]*mat.Dense, part.Z())
	truth := make([][]int, part.Z())
	for dev := 0; dev < part.Z(); dev++ {
		sub := ds.Select(part.Points[dev])
		devices[dev] = sub.X
		truth[dev] = sub.Labels
	}
	flatTruth := core.FlattenLabels(truth)

	var pred []int
	switch *method {
	case "fedsc-ssc", "fedsc-tsc":
		m := core.CentralSSC
		if *method == "fedsc-tsc" {
			m = core.CentralTSC
		}
		var tracer *obs.Tracer
		if *trace != "" {
			tracer = obs.NewTracer(nil)
		}
		res := core.Run(devices, numClusters, core.Options{
			Local: core.LocalOptions{UseEigengap: true, RMax: 2 * lp},
			Central: core.CentralOptions{
				Method:     m,
				Shards:     *shards,
				SketchSize: *sketch,
				SketchKind: mat.SketchKind(*sketchK),
			},
			NoiseDelta: *noise,
			Trace:      tracer,
		}, rng)
		pred = core.FlattenLabels(res.Labels)
		fmt.Printf("sum_r=%d uplink=%d bits downlink=%d bits central=%.2fs\n",
			sum(res.RPerDevice), res.UplinkBits, res.DownlinkBits, res.CentralTime.Seconds())
		if *trace != "" {
			if err := writeTrace(tracer, *trace); err != nil {
				fatalf("write trace: %v", err)
			}
		}
		if *save != "" || *storeDir != "" {
			model, err := core.ModelFromResult(res, numClusters, 0, m)
			if err != nil {
				fatalf("build model: %v", err)
			}
			if *save != "" {
				if err := model.Save(*save); err != nil {
					fatalf("save model: %v", err)
				}
				fmt.Printf("saved serving artifact to %s\n", *save)
			}
			if *storeDir != "" {
				st, err := store.Open(*storeDir)
				if err != nil {
					fatalf("%v", err)
				}
				digest, err := st.PutTagged(*tag, model)
				if err != nil {
					fatalf("store model: %v", err)
				}
				fmt.Printf("deployed artifact %s as %q in %s\n", digest[:12], *tag, *storeDir)
			}
		}
	case "kfed", "kfed-pca10", "kfed-pca100":
		pcaDim := map[string]int{"kfed": 0, "kfed-pca10": 10, "kfed-pca100": 100}[*method]
		res := kfed.Run(devices, numClusters, rng, kfed.Options{KLocal: lp, PCADim: pcaDim})
		pred = core.FlattenLabels(res.Labels)
	default:
		fatalf("unknown method %q", *method)
	}
	report(*method, ds.N(), numClusters, lp, part.Z(),
		metrics.Accuracy(flatTruth, pred), metrics.NMI(flatTruth, pred), time.Since(start))
}

// writeTrace saves the canonical (wall-clock-free, hence seed-stable)
// span export to path and renders the timed waterfall to stderr so the
// human-readable view never pollutes stdout or the JSONL artifact.
func writeTrace(tracer *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteJSONL(f, false); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote span trace to %s\n", path)
	tracer.Waterfall(os.Stderr)
	return nil
}

func report(method string, n, l, lp, z int, acc, nmi float64, elapsed time.Duration) {
	fmt.Printf("method=%s N=%d L=%d L'=%d Z=%d ACC=%.2f%% NMI=%.2f%% T=%.2fs\n",
		method, n, l, lp, z, acc, nmi, elapsed.Seconds())
}

func sum(a []int) int {
	s := 0
	for _, v := range a {
		s += v
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fedsc: "+format+"\n", args...)
	os.Exit(2)
}
