// Command fedsc-serve is the online inference tier of the Fed-SC stack:
// it serves "which cluster does this point belong to?" queries over HTTP
// against the model artifact a completed one-shot round produced.
//
// Serve an existing artifact (written by `fedsc -save`, `fedsc-server
// -save` or a previous `fedsc-serve -train`):
//
//	fedsc-serve -addr :8080 -model round.fedsc
//
// Or run a federated round first (the server side of the one-shot
// protocol, pair with cmd/fedsc-client) and serve its result:
//
//	fedsc-serve -addr :8080 -train -fed-addr :7070 -clients 8 -L 20 \
//	    -save round.fedsc
//
// Endpoints: POST /v1/assign (single point or batch), GET /v1/models,
// POST /v1/reload, GET /healthz, GET /metrics (Prometheus text format).
// SIGINT/SIGTERM trigger a graceful drain.
//
//	curl -s localhost:8080/v1/assign -d '{"point": [0.1, -0.3, 0.7]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"fedsc/internal/core"
	"fedsc/internal/fednet"
	"fedsc/internal/obs"
	"fedsc/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		model     = flag.String("model", "", "model artifact to serve")
		train     = flag.Bool("train", false, "run a federated round first and serve its result")
		fedAddr   = flag.String("fed-addr", ":7070", "federated-round listen address (with -train)")
		clients   = flag.Int("clients", 4, "devices to wait for (with -train)")
		l         = flag.Int("L", 20, "number of global clusters (with -train)")
		central   = flag.String("central", "ssc", "central clustering: ssc or tsc (with -train)")
		seed      = flag.Int64("seed", 1, "server random seed (with -train)")
		targetDim = flag.String("dim", "auto", "per-cluster basis dimension: auto or an integer (with -train)")
		save      = flag.String("save", "", "also save the trained artifact here (with -train)")
		maxBatch  = flag.Int("batch", 64, "max points scored as one blocked batch")
		batchWait = flag.Duration("batch-wait", 200*time.Microsecond, "how long to hold an underfull batch open")
		workers   = flag.Int("workers", 0, "batch workers (0 = GOMAXPROCS)")
		grace     = flag.Duration("grace", 5*time.Second, "graceful-shutdown drain window")
		debugAddr = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (empty = disabled)")
	)
	flag.Parse()

	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, obs.Default(), nil)
		if err != nil {
			fatalf("debug listener: %v", err)
		}
		log.Printf("fedsc-serve: debug endpoints on http://%s/metrics and /debug/pprof/", dbg)
	}

	reg := serve.NewRegistry()
	switch {
	case *model != "" && *train:
		fatalf("-model and -train are mutually exclusive")
	case *model != "":
		if err := reg.LoadFile(*model); err != nil {
			fatalf("%v", err)
		}
		cur := reg.Current()
		log.Printf("fedsc-serve: loaded %s (L=%d, ambient=%d, method=%s, created %s)",
			cur.Name, cur.Model.L, cur.Model.Ambient, cur.Model.Method,
			cur.Model.Created().Format(time.RFC3339))
	case *train:
		m, err := trainRound(*fedAddr, *clients, *l, *central, *seed, *targetDim)
		if err != nil {
			fatalf("%v", err)
		}
		if *save != "" {
			if err := m.Save(*save); err != nil {
				fatalf("%v", err)
			}
			log.Printf("fedsc-serve: saved artifact to %s", *save)
			if err := reg.LoadFile(*save); err != nil {
				fatalf("%v", err)
			}
		} else if err := reg.SetModel(fmt.Sprintf("round-%d", time.Now().Unix()), m); err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("need -model <artifact> or -train (see -h)")
	}

	// Publish the serving metrics on the process-wide registry so one
	// scrape of -debug-addr (or the handler's own /metrics) shows the
	// serve counters next to the fednet/core round metrics.
	metrics := serve.NewMetricsOn(obs.Default())
	batcher := serve.NewBatcher(reg, metrics, serve.BatcherOptions{
		MaxBatch: *maxBatch,
		MaxWait:  *batchWait,
		Workers:  *workers,
	})
	handler := serve.NewHandler(reg, batcher, metrics)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	ctx, cancel := serve.SignalContext(context.Background())
	defer cancel()
	log.Printf("fedsc-serve: serving on %s (batch=%d, wait=%s)", ln.Addr(), *maxBatch, *batchWait)
	if err := serve.Serve(ctx, ln, handler, *grace); err != nil {
		fatalf("%v", err)
	}
	log.Printf("fedsc-serve: drained after %d requests (%d points assigned)",
		metrics.Requests(), metrics.Assigned())
}

// trainRound runs the server side of one federated round and returns the
// exported serving artifact.
func trainRound(addr string, clients, l int, central string, seed int64, dim string) (*core.Model, error) {
	method := core.CentralSSC
	switch central {
	case "ssc":
	case "tsc":
		method = core.CentralTSC
	default:
		return nil, fmt.Errorf("unknown central method %q", central)
	}
	exportDim := 0
	if dim != "auto" {
		if _, err := fmt.Sscanf(dim, "%d", &exportDim); err != nil || exportDim <= 0 {
			return nil, fmt.Errorf("-dim must be auto or a positive integer, got %q", dim)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	defer func() { _ = ln.Close() }()
	log.Printf("fedsc-serve: waiting for %d devices on %s (L=%d, central=%s)", clients, ln.Addr(), l, central)
	srv := &fednet.Server{
		L:       l,
		Expect:  clients,
		Central: core.CentralOptions{Method: method},
		Seed:    seed,
		Export:  true, ExportDim: exportDim,
	}
	stats, err := srv.Serve(ln)
	if err != nil {
		return nil, err
	}
	if stats.Model == nil {
		return nil, fmt.Errorf("round completed without pooling any samples")
	}
	log.Printf("fedsc-serve: round complete — %d samples from %d devices, %d uplink bytes",
		stats.Samples, stats.Devices, stats.UplinkBytes)
	return stats.Model, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fedsc-serve: "+format+"\n", args...)
	os.Exit(1)
}
