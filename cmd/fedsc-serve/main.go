// Command fedsc-serve is the online inference tier of the Fed-SC stack:
// it serves "which cluster does this point belong to?" queries over HTTP
// against model artifacts a completed one-shot round produced.
//
// Serve a single artifact file (written by `fedsc -save`, `fedsc-server
// -save` or a previous `fedsc-serve -train`):
//
//	fedsc-serve -addr :8080 -model round.fedsc
//
// Serve every model of a content-addressed artifact store (written by
// the `-store` flag on the training binaries); /v1/assign routes by the
// request's "model" field and /v1/reload hot-deploys manifest changes:
//
//	fedsc-serve -addr :8080 -store ./models
//
// Or run a federated round first (the server side of the one-shot
// protocol, pair with cmd/fedsc-client) and serve its result:
//
//	fedsc-serve -addr :8080 -train -fed-addr :7070 -clients 8 -L 20 \
//	    -store ./models -tag cohort-a
//
// Endpoints: POST /v1/assign (single point or batch, optional model
// routing), GET /v1/models, POST /v1/reload, GET /healthz, GET /metrics
// (Prometheus text format). Admission control sheds load with 429 once
// the batcher's bounded queue is full. SIGINT/SIGTERM trigger a
// graceful drain.
//
//	curl -s localhost:8080/v1/assign -d '{"model": "cohort-a", "point": [0.1, -0.3, 0.7]}'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"fedsc/internal/core"
	"fedsc/internal/fednet"
	"fedsc/internal/obs"
	"fedsc/internal/serve"
	"fedsc/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		model     = flag.String("model", "", "single model artifact file to serve")
		storeDir  = flag.String("store", "", "content-addressed artifact store to serve (all manifest models)")
		tag       = flag.String("tag", "round", "manifest name for the trained artifact (with -train -store)")
		train     = flag.Bool("train", false, "run a federated round first and serve its result")
		fedAddr   = flag.String("fed-addr", ":7070", "federated-round listen address (with -train)")
		clients   = flag.Int("clients", 4, "devices to wait for (with -train)")
		l         = flag.Int("L", 20, "number of global clusters (with -train)")
		central   = flag.String("central", "ssc", "central clustering: ssc or tsc (with -train)")
		seed      = flag.Int64("seed", 1, "server random seed (with -train)")
		targetDim = flag.String("dim", "auto", "per-cluster basis dimension: auto or an integer (with -train)")
		save      = flag.String("save", "", "also save the trained artifact to this file (with -train)")
		maxBatch  = flag.Int("batch", 64, "max points scored as one blocked batch")
		batchWait = flag.Duration("batch-wait", 200*time.Microsecond, "how long to hold an underfull batch open")
		workers   = flag.Int("workers", 0, "batch workers (0 = GOMAXPROCS)")
		maxQueue  = flag.Int("queue", 0, "admission queue bound in points; beyond it requests get 429 (0 = 64*batch)")
		grace     = flag.Duration("grace", 5*time.Second, "graceful-shutdown drain window")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/pprof and /storez on this address (empty = disabled)")
	)
	flag.Parse()

	if *model != "" && *storeDir != "" {
		fatalf("-model and -store are mutually exclusive")
	}
	if *model != "" && *train {
		fatalf("-model and -train are mutually exclusive")
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir); err != nil {
			fatalf("%v", err)
		}
	}

	if *debugAddr != "" {
		var extra []obs.DebugEndpoint
		if st != nil {
			extra = append(extra, obs.DebugEndpoint{Pattern: "/storez", Handler: storezHandler(st)})
		}
		dbg, err := obs.ServeDebug(*debugAddr, obs.Default(), nil, extra...)
		if err != nil {
			fatalf("debug listener: %v", err)
		}
		endpoints := "/metrics and /debug/pprof/"
		if st != nil {
			endpoints += " and /storez"
		}
		log.Printf("fedsc-serve: debug endpoints on http://%s%s", dbg, " "+endpoints)
	}

	reg := serve.NewRegistry()
	if *train {
		m, err := trainRound(*fedAddr, *clients, *l, *central, *seed, *targetDim)
		if err != nil {
			fatalf("%v", err)
		}
		if *save != "" {
			if err := m.Save(*save); err != nil {
				fatalf("%v", err)
			}
			log.Printf("fedsc-serve: saved artifact to %s", *save)
		}
		switch {
		case st != nil:
			digest, err := st.PutTagged(*tag, m)
			if err != nil {
				fatalf("%v", err)
			}
			log.Printf("fedsc-serve: stored artifact %s as %q in %s", digest[:12], *tag, *storeDir)
		case *save != "":
			if err := reg.LoadFile(*save); err != nil {
				fatalf("%v", err)
			}
		default:
			if err := reg.SetModel(fmt.Sprintf("round-%d", time.Now().Unix()), m); err != nil {
				fatalf("%v", err)
			}
		}
	}
	switch {
	case st != nil:
		names, err := reg.UseStore(st)
		if err != nil {
			fatalf("%v", err)
		}
		if len(names) == 0 {
			log.Printf("fedsc-serve: store %s has no models yet; unhealthy until a deploy + /v1/reload", *storeDir)
		} else {
			log.Printf("fedsc-serve: serving %d models from %s: %s",
				len(names), *storeDir, strings.Join(names, ", "))
		}
	case *model != "":
		if err := reg.LoadFile(*model); err != nil {
			fatalf("%v", err)
		}
		cur := reg.Current()
		log.Printf("fedsc-serve: loaded %s (L=%d, ambient=%d, method=%s, created %s)",
			cur.Name, cur.Model.L, cur.Model.Ambient, cur.Model.Method,
			cur.Model.Created().Format(time.RFC3339))
	case *train:
		// Registry already populated above.
	default:
		fatalf("need -model <artifact>, -store <dir> or -train (see -h)")
	}

	// Publish the serving metrics on the process-wide registry so one
	// scrape of -debug-addr (or the handler's own /metrics) shows the
	// serve counters next to the fednet/core round metrics.
	metrics := serve.NewMetricsOn(obs.Default())
	batcher := serve.NewBatcher(reg, metrics, serve.BatcherOptions{
		MaxBatch: *maxBatch,
		MaxWait:  *batchWait,
		Workers:  *workers,
		MaxQueue: *maxQueue,
	})
	handler := serve.NewHandler(reg, batcher, metrics)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	ctx, cancel := serve.SignalContext(context.Background())
	defer cancel()
	log.Printf("fedsc-serve: serving on %s (batch=%d, wait=%s)", ln.Addr(), *maxBatch, *batchWait)
	if err := serve.Serve(ctx, ln, handler, *grace); err != nil {
		fatalf("%v", err)
	}
	log.Printf("fedsc-serve: drained after %d requests (%d points assigned, %d shed)",
		metrics.Requests(), metrics.Assigned(), metrics.Shed())
}

// storezHandler renders the artifact store's operational stats (blob
// count and bytes, manifest entries, default model) plus the manifest
// itself as JSON on the -debug-addr mux.
func storezHandler(st *store.Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		stats, err := st.Stats()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp := struct {
			Stats    store.Stats    `json:"stats"`
			Manifest store.Manifest `json:"manifest"`
		}{stats, st.Manifest()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// The status line is already on the wire; an encode failure here
		// means the client hung up, and there is no channel left to tell it.
		_ = enc.Encode(resp)
	})
}

// trainRound runs the server side of one federated round and returns the
// exported serving artifact.
func trainRound(addr string, clients, l int, central string, seed int64, dim string) (*core.Model, error) {
	method := core.CentralSSC
	switch central {
	case "ssc":
	case "tsc":
		method = core.CentralTSC
	default:
		return nil, fmt.Errorf("unknown central method %q", central)
	}
	exportDim := 0
	if dim != "auto" {
		if _, err := fmt.Sscanf(dim, "%d", &exportDim); err != nil || exportDim <= 0 {
			return nil, fmt.Errorf("-dim must be auto or a positive integer, got %q", dim)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	defer func() { _ = ln.Close() }()
	log.Printf("fedsc-serve: waiting for %d devices on %s (L=%d, central=%s)", clients, ln.Addr(), l, central)
	srv := &fednet.Server{
		L:       l,
		Expect:  clients,
		Central: core.CentralOptions{Method: method},
		Seed:    seed,
		Export:  true, ExportDim: exportDim,
	}
	stats, err := srv.Serve(ln)
	if err != nil {
		return nil, err
	}
	if stats.Model == nil {
		return nil, fmt.Errorf("round completed without pooling any samples")
	}
	log.Printf("fedsc-serve: round complete — %d samples from %d devices, %d uplink bytes",
		stats.Samples, stats.Devices, stats.UplinkBytes)
	return stats.Model, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fedsc-serve: "+format+"\n", args...)
	os.Exit(1)
}
