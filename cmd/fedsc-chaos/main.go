// Command fedsc-chaos runs full Fed-SC rounds on synthetic data under
// named deterministic fault schedules and reports the accuracy and
// communication-cost degradation against the fault-free baseline.
//
// Usage:
//
//	fedsc-chaos [-schedule NAME|all] [-z N] [-n N] [-l N] [-per N] [-seed N]
//	            [-tcp] [-trace] [-noverify]
//
// Every schedule is driven by a seeded chaos.Schedule, so a run over
// the default in-process pipe transport replays bit-identically: by
// default each schedule executes twice and the run fails if the fault
// trace, the server stats, or the labels differ between the two
// executions. -tcp switches to a real TCP loopback listener (kernel
// buffering makes byte counts timing-dependent there, so the replay
// verification is skipped). -trace prints the injected-fault trace.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"time"

	"fedsc/internal/chaos"
	"fedsc/internal/core"
	"fedsc/internal/fednet"
	"fedsc/internal/mat"
	"fedsc/internal/metrics"
	"fedsc/internal/synth"
)

type config struct {
	z, n, l, lPrime, perCluster int
	seed                        int64
	tcp                         bool
	wait                        time.Duration
}

// outcome is one round's observables, comparable across replays.
type outcome struct {
	Stats    fednet.ServeStats
	ServeErr string
	Labels   [][]int
	Attempts []int
	Errs     []string
	Trace    string
}

func main() {
	schedule := flag.String("schedule", "mixed", "named fault schedule, or \"all\"")
	z := flag.Int("z", 8, "number of devices")
	n := flag.Int("n", 40, "ambient dimension of the synthetic subspaces")
	l := flag.Int("l", 4, "number of global clusters")
	per := flag.Int("per", 8, "points per local cluster")
	seed := flag.Int64("seed", 1, "master seed for data, round, and fault schedule")
	tcp := flag.Bool("tcp", false, "run over a TCP loopback listener instead of in-process pipes")
	trace := flag.Bool("trace", false, "print the injected-fault trace of each schedule")
	noverify := flag.Bool("noverify", false, "skip the bit-identical replay verification")
	wait := flag.Duration("wait", 500*time.Millisecond, "server straggler timeout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fedsc-chaos [flags]\nschedules: %v\nflags:\n", chaos.Names())
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg := config{z: *z, n: *n, l: *l, lPrime: 2, perCluster: *per, seed: *seed, tcp: *tcp, wait: *wait}
	names := []string{*schedule}
	if *schedule == "all" {
		names = chaos.Names()
	}
	for _, name := range names {
		if _, ok := chaos.Named(name, cfg.z, cfg.seed); !ok {
			fmt.Fprintf(os.Stderr, "fedsc-chaos: unknown schedule %q (want one of %v)\n", name, chaos.Names())
			os.Exit(2)
		}
	}

	devices := synthDevices(cfg)
	base := runSchedule("none", cfg, devices)
	if base.ServeErr != "" {
		fmt.Fprintf(os.Stderr, "fedsc-chaos: fault-free baseline failed: %s\n", base.ServeErr)
		os.Exit(1)
	}

	fmt.Printf("%-12s %8s %9s %8s %9s %10s %10s %9s\n",
		"schedule", "devices", "attempts", "retries", "failures", "uplink", "overhead", "accuracy")
	failedRun := false
	for _, name := range names {
		out := runSchedule(name, cfg, devices)
		report(name, cfg, base, out)
		if out.ServeErr != "" {
			failedRun = true
			fmt.Fprintf(os.Stderr, "fedsc-chaos: schedule %q: server: %s\n", name, out.ServeErr)
		}
		if *trace && out.Trace != "" {
			fmt.Printf("--- trace %s\n%s", name, out.Trace)
		}
		if !*noverify && !cfg.tcp {
			replay := runSchedule(name, cfg, devices)
			if !reflect.DeepEqual(out, replay) {
				failedRun = true
				fmt.Fprintf(os.Stderr, "fedsc-chaos: schedule %q did not replay bit-identically\n--- first trace\n%s--- replay trace\n%s",
					name, out.Trace, replay.Trace)
			}
		}
	}
	if !*noverify && !cfg.tcp {
		fmt.Printf("replay: every schedule reproduced bit-identically under seed %d\n", cfg.seed)
	}
	if failedRun {
		os.Exit(1)
	}
}

// synthDevices builds the per-device data: z devices, each holding
// points from lPrime of the l global subspaces.
func synthDevices(cfg config) []*mat.Dense {
	rng := rand.New(rand.NewSource(cfg.seed))
	s := synth.RandomSubspaces(cfg.n, 3, cfg.l, rng)
	devices := make([]*mat.Dense, cfg.z)
	for dev := range devices {
		clusters := rng.Perm(cfg.l)[:cfg.lPrime]
		counts := make([]int, cfg.l)
		for _, c := range clusters {
			counts[c] = cfg.perCluster
		}
		devices[dev] = s.SampleCounts(counts, rng).X
	}
	return devices
}

// runSchedule executes one full round under the named schedule.
func runSchedule(name string, cfg config, devices []*mat.Dense) outcome {
	sched, _ := chaos.Named(name, cfg.z, cfg.seed)
	var dial func() (net.Conn, error)
	var ln net.Listener
	if cfg.tcp {
		tcpLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "fedsc-chaos: listen: %v\n", err)
			os.Exit(1)
		}
		addr := tcpLn.Addr().String()
		dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
		ln = tcpLn
	} else {
		pn := chaos.NewPipeNet()
		defer pn.Close()
		dial = pn.Dial
		ln = pn.Listener()
	}

	// One device may be scripted to never recover (the blackhole and
	// mixed schedules), so the server tolerates a single straggler.
	srv := &fednet.Server{
		L: cfg.l, Expect: cfg.z, Seed: cfg.seed,
		WaitTimeout: cfg.wait, MinClients: cfg.z - 1,
	}
	policy := fednet.RetryPolicy{
		MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond,
		Timeout: cfg.wait / 2, ReplyTimeout: 10 * time.Second,
	}

	out := outcome{
		Labels:   make([][]int, cfg.z),
		Attempts: make([]int, cfg.z),
		Errs:     make([]string, cfg.z),
	}
	var serveErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		out.Stats, serveErr = srv.Serve(ln)
	}()
	var cw sync.WaitGroup
	for dev := 0; dev < cfg.z; dev++ {
		cw.Add(1)
		go func(dev int) {
			defer cw.Done()
			rng := rand.New(rand.NewSource(mixSeed(cfg.seed, dev)))
			run := fednet.RunClientDialer
			if sched.Script(dev).Duplicate {
				run = fednet.RunClientDuplicate
			}
			res, err := run(sched.Dialer(dev, dial), dev, devices[dev],
				core.LocalOptions{UseEigengap: true}, policy, rng)
			out.Labels[dev] = res.Labels
			out.Attempts[dev] = res.Attempts
			if err != nil {
				out.Errs[dev] = err.Error()
			}
		}(dev)
	}
	cw.Wait()
	wg.Wait()
	if serveErr != nil {
		out.ServeErr = serveErr.Error()
	}
	out.Trace = sched.Trace.String()
	return out
}

// mixSeed derives the per-device client seed from the master seed.
func mixSeed(seed int64, dev int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(dev+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return int64(z ^ (z >> 27))
}

// report prints one schedule's degradation row against the baseline.
func report(name string, cfg config, base, out outcome) {
	attempts, failures := 0, 0
	for dev := 0; dev < cfg.z; dev++ {
		attempts += out.Attempts[dev]
		if out.Errs[dev] != "" {
			failures++
		}
	}
	// Accuracy is measured over the devices that completed in both
	// runs: their labels must agree with the fault-free round (up to
	// the global label permutation metrics.Accuracy already allows).
	var want, got []int
	for dev := 0; dev < cfg.z; dev++ {
		if out.Errs[dev] == "" && base.Errs[dev] == "" {
			want = append(want, base.Labels[dev]...)
			got = append(got, out.Labels[dev]...)
		}
	}
	acc := metrics.Accuracy(want, got)
	overhead := 0.0
	if base.Stats.UplinkBytes > 0 {
		overhead = 100 * float64(out.Stats.UplinkBytes-base.Stats.UplinkBytes) / float64(base.Stats.UplinkBytes)
	}
	fmt.Printf("%-12s %5d/%-2d %9d %8d %9d %9dB %+9.1f%% %8.1f%%\n",
		name, out.Stats.Devices, cfg.z, attempts, out.Stats.Retries, failures,
		out.Stats.UplinkBytes, overhead, acc)
	if strings.Contains(name, "blackhole") || name == "mixed" {
		// These schedules lose a device by design; note which.
		lost := []int{}
		for dev := 0; dev < cfg.z; dev++ {
			if out.Errs[dev] != "" {
				lost = append(lost, dev)
			}
		}
		sort.Ints(lost)
		fmt.Printf("%-12s   lost devices %v (scripted, tolerated as stragglers)\n", "", lost)
	}
}
