// Package fedsc is a from-scratch Go reproduction of "Fed-SC: One-Shot
// Federated Subspace Clustering over High-Dimensional Data" (ICDE 2023).
//
// The implementation lives under internal/: the Fed-SC scheme itself
// (internal/core), the centralized subspace-clustering baselines
// (internal/subspace), the one-shot federated k-means baseline
// (internal/kfed), the network transport (internal/fednet), the
// numerical substrate (internal/mat, internal/sparse, internal/lasso,
// internal/spectral, internal/kmeans, internal/pca), data generation
// (internal/synth, internal/datasets), evaluation metrics
// (internal/metrics), the paper's theoretical quantities
// (internal/theory) and the experiment harness reproducing every figure
// and table of the evaluation section (internal/experiments).
//
// Entry points: cmd/fedsc (single runs), cmd/fedsc-bench (regenerate the
// paper's tables and figures), cmd/fedsc-server and cmd/fedsc-client
// (real TCP deployment of the one-shot protocol), and the runnable
// walkthroughs under examples/.
package fedsc
