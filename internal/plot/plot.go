// Package plot renders experiment results as terminal graphics: line
// charts for the "metric vs Z" figures and shaded heatmaps for the
// L'/L-ratio and noise sweeps. Pure text output — the benchmark harness
// uses it to literally draw Figs. 4-7 next to their tables.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name   string
	Values []float64
}

// markers distinguish overlapping series on the character grid.
var markers = []byte{'o', '*', '+', 'x', '#', '@', '%', '&'}

// Line renders a line chart of the series against shared x labels.
// width and height are the plot-area size in characters (sensible
// defaults are applied when <= 0).
func Line(title string, xLabels []string, series []Series, width, height int) string {
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range series {
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if len(s.Values) > n {
			n = len(s.Values)
		}
	}
	if n == 0 || math.IsInf(lo, 1) {
		return title + "\n(no data)\n"
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.05
	lo, hi = lo-pad, hi+pad
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	xAt := func(i int) int {
		if n == 1 {
			return 0
		}
		return i * (width - 1) / (n - 1)
	}
	yAt := func(v float64) int {
		f := (v - lo) / (hi - lo)
		r := int(math.Round(float64(height-1) * (1 - f)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		prevX, prevY := -1, -1
		for i, v := range s.Values {
			x, y := xAt(i), yAt(v)
			if prevX >= 0 {
				drawSegment(grid, prevX, prevY, x, y, '.')
			}
			grid[y][x] = m
			prevX, prevY = x, y
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r := 0; r < height; r++ {
		var label string
		switch r {
		case 0:
			label = fmt.Sprintf("%8.1f", hi)
		case height - 1:
			label = fmt.Sprintf("%8.1f", lo)
		case (height - 1) / 2:
			label = fmt.Sprintf("%8.1f", (hi+lo)/2)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	// X labels: first, middle, last.
	xl := strings.Repeat(" ", 10)
	if len(xLabels) > 0 {
		row := []byte(strings.Repeat(" ", width+10))
		place := func(pos int, s string) {
			for k := 0; k < len(s) && pos+k < len(row); k++ {
				row[pos+k] = s[k]
			}
		}
		place(10, xLabels[0])
		if len(xLabels) > 2 {
			mid := xLabels[len(xLabels)/2]
			place(10+xAt(len(xLabels)/2)-len(mid)/2, mid)
		}
		if len(xLabels) > 1 {
			last := xLabels[len(xLabels)-1]
			place(10+width-len(last), last)
		}
		xl = string(row)
	}
	b.WriteString(xl + "\n")
	// Legend.
	for si, s := range series {
		fmt.Fprintf(&b, "   %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// drawSegment draws a straight character segment between two grid points,
// leaving endpoint cells for the series markers.
func drawSegment(grid [][]byte, x0, y0, x1, y1 int, ch byte) {
	steps := abs(x1-x0) + abs(y1-y0)
	if steps == 0 {
		return
	}
	for s := 1; s < steps; s++ {
		x := x0 + (x1-x0)*s/steps
		y := y0 + (y1-y0)*s/steps
		if grid[y][x] == ' ' {
			grid[y][x] = ch
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// shades runs from low to high intensity.
const shades = " .:-=+*#%@"

// Heatmap renders values[r][c] as shaded cells (two characters per cell),
// normalized over the whole map, with row and column labels and a scale
// legend.
func Heatmap(title string, rowLabels, colLabels []string, values [][]float64) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range values {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		return title + "\n(no data)\n"
	}
	span := hi - lo
	if !(span > 0) {
		span = 1
	}
	labelW := 0
	for _, l := range rowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	// Column header.
	fmt.Fprintf(&b, "%s ", strings.Repeat(" ", labelW))
	for _, cl := range colLabels {
		fmt.Fprintf(&b, "%-6s", cl)
	}
	b.WriteByte('\n')
	for r, row := range values {
		label := ""
		if r < len(rowLabels) {
			label = rowLabels[r]
		}
		fmt.Fprintf(&b, "%*s ", labelW, label)
		for _, v := range row {
			idx := int((v - lo) / span * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			cell := strings.Repeat(string(shades[idx]), 4)
			fmt.Fprintf(&b, "%-6s", cell)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "scale: %.1f %s %.1f\n", lo, shades, hi)
	return b.String()
}
