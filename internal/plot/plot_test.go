package plot

import (
	"strings"
	"testing"
)

func TestLineBasic(t *testing.T) {
	out := Line("acc vs Z", []string{"100", "200", "400"}, []Series{
		{Name: "Fed-SC", Values: []float64{80, 90, 100}},
		{Name: "k-FED", Values: []float64{20, 15, 10}},
	}, 40, 10)
	if !strings.Contains(out, "acc vs Z") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "Fed-SC") || !strings.Contains(out, "k-FED") {
		t.Fatal("missing legend entries")
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "*") {
		t.Fatal("missing series markers")
	}
	if !strings.Contains(out, "100") {
		t.Fatal("missing axis labels")
	}
	// The rising series' first marker should be lower on the canvas than
	// its last: find rows containing 'o'.
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for i, l := range lines {
		if idx := strings.IndexByte(l, 'o'); idx >= 0 {
			if firstRow < 0 {
				firstRow = i
			}
			lastRow = i
		}
	}
	if !(firstRow < lastRow) {
		t.Fatalf("rising series should span rows: first=%d last=%d", firstRow, lastRow)
	}
}

func TestLineEmptyAndConstant(t *testing.T) {
	if out := Line("t", nil, nil, 0, 0); !strings.Contains(out, "no data") {
		t.Fatal("empty chart should say no data")
	}
	out := Line("t", []string{"a"}, []Series{{Name: "s", Values: []float64{5}}}, 20, 5)
	if !strings.Contains(out, "o") {
		t.Fatal("single constant point should still render")
	}
}

func TestHeatmapShading(t *testing.T) {
	out := Heatmap("heat", []string{"r1", "r2"}, []string{"c1", "c2"},
		[][]float64{{0, 50}, {50, 100}})
	if !strings.Contains(out, "heat") || !strings.Contains(out, "r2") || !strings.Contains(out, "c2") {
		t.Fatal("missing labels")
	}
	// Lowest cell shades as spaces, highest as '@'.
	if !strings.Contains(out, "@@@@") {
		t.Fatal("max cell should use the densest shade")
	}
	if !strings.Contains(out, "scale: 0.0") {
		t.Fatal("missing scale legend")
	}
}

func TestHeatmapEmpty(t *testing.T) {
	if out := Heatmap("t", nil, nil, nil); !strings.Contains(out, "no data") {
		t.Fatal("empty heatmap should say no data")
	}
}

func TestHeatmapUniform(t *testing.T) {
	out := Heatmap("u", []string{"r"}, []string{"c"}, [][]float64{{7}})
	if !strings.Contains(out, "u") {
		t.Fatal("uniform heatmap should render without dividing by zero")
	}
}
