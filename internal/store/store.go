// Package store is the content-addressed artifact layer between
// training output and serving: completed rounds Put their core.Model
// into a Store, the serving tier maps human-readable names to the
// stored artifacts through a small manifest, and hot deploys are a
// manifest rewrite plus a Sync() poll — no artifact is ever modified
// in place.
//
// On-disk layout under the store root:
//
//	blobs/sha256/<64-hex digest>   gob model artifacts, content-addressed
//	manifest.json                  {"version":1,"default":…,"models":{name:digest}}
//
// Blobs are keyed by the model's own SHA-256 checksum (the digest the
// artifact format already computes and verifies), so identical models
// deduplicate and a blob can never change meaning. Every write — blob
// or manifest — goes through a temp file plus rename, so concurrent
// readers (and a serving process polling Sync) observe either the old
// or the new state, never a partial file.
package store

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"fedsc/internal/core"
)

// ManifestVersion is the current manifest schema version.
const ManifestVersion = 1

const (
	manifestFile = "manifest.json"
	blobSubdir   = "blobs/sha256"
)

// Manifest maps human-readable model names to blob digests. Default
// names the entry a router should use when a request does not pick a
// model explicitly.
type Manifest struct {
	Version int               `json:"version"`
	Default string            `json:"default,omitempty"`
	Models  map[string]string `json:"models"`
}

// clone deep-copies the manifest so callers can hold it without racing
// later store mutations.
func (m Manifest) clone() Manifest {
	out := Manifest{Version: m.Version, Default: m.Default, Models: make(map[string]string, len(m.Models))}
	for name, digest := range m.Models {
		out.Models[name] = digest
	}
	return out
}

// Names returns the manifest's model names in sorted order.
func (m Manifest) Names() []string {
	names := make([]string, 0, len(m.Models))
	for name := range m.Models {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Stats summarizes the store for operational endpoints.
type Stats struct {
	// Blobs is the number of stored artifacts (referenced or not).
	Blobs int `json:"blobs"`
	// BlobBytes is the total size of all stored artifacts.
	BlobBytes int64 `json:"blob_bytes"`
	// ManifestEntries is the number of named models.
	ManifestEntries int `json:"manifest_entries"`
	// Default is the manifest's default model name ("" when unset).
	Default string `json:"default,omitempty"`
}

// Store is a content-addressed model artifact store rooted at one
// directory. All methods are safe for concurrent use within a process;
// across processes, atomic renames keep readers consistent, and GC
// takes a minimum blob age so it cannot delete another process's
// freshly written, not-yet-tagged artifact.
type Store struct {
	root string

	mu  sync.Mutex
	man Manifest
	// manRaw is the manifest file content the cached manifest was parsed
	// from; Sync detects external edits by byte comparison, which is
	// immune to the mtime-granularity ambiguity a timestamp check has.
	manRaw []byte
}

// Open opens (creating if needed) the store rooted at dir and loads its
// manifest.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, blobSubdir), 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{root: dir, man: Manifest{Version: ManifestVersion, Models: map[string]string{}}}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.syncLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Digest returns the content address of a sealed model: the hex of the
// SHA-256 checksum the artifact format already carries.
func Digest(m *core.Model) string { return hex.EncodeToString(m.Checksum[:]) }

func (s *Store) blobPath(digest string) string {
	return filepath.Join(s.root, blobSubdir, digest)
}

func (s *Store) manifestPath() string { return filepath.Join(s.root, manifestFile) }

// validDigest reports whether d looks like a sha256 hex digest.
func validDigest(d string) bool {
	if len(d) != hex.EncodedLen(32) {
		return false
	}
	_, err := hex.DecodeString(d)
	return err == nil
}

// validName rejects names that would escape the manifest's flat
// namespace or render ambiguously in URLs and metric labels.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("store: empty model name")
	}
	if strings.ContainsAny(name, "/\\\n\"") {
		return fmt.Errorf("store: model name %q contains path or quote characters", name)
	}
	return nil
}

// Put writes the sealed model into the blob area under its content
// address and returns the digest. Writing an artifact that is already
// stored is a no-op (content addressing: same digest, same bytes).
// The blob is not reachable by name until Tag links it.
func (s *Store) Put(m *core.Model) (string, error) {
	if err := m.Validate(); err != nil {
		return "", fmt.Errorf("store: put: %w", err)
	}
	digest := Digest(m)
	path := s.blobPath(digest)
	if _, err := os.Stat(path); err == nil {
		return digest, nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".fedsc-blob-*")
	if err != nil {
		return "", fmt.Errorf("store: put: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := m.Encode(tmp); err != nil {
		_ = tmp.Close()
		return "", fmt.Errorf("store: put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("store: put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", fmt.Errorf("store: put: %w", err)
	}
	return digest, nil
}

// Tag points name at an already-stored digest and persists the
// manifest. The first tag ever recorded also becomes the default.
func (s *Store) Tag(name, digest string) error {
	if err := validName(name); err != nil {
		return err
	}
	if !validDigest(digest) {
		return fmt.Errorf("store: tag %q: malformed digest %q", name, digest)
	}
	if _, err := os.Stat(s.blobPath(digest)); err != nil {
		return fmt.Errorf("store: tag %q: blob %s not stored: %w", name, digest, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.man.Models[name] = digest
	if s.man.Default == "" {
		s.man.Default = name
	}
	return s.writeManifestLocked()
}

// PutTagged stores the model and tags it under name in one call — the
// common "deploy this round's artifact" path.
func (s *Store) PutTagged(name string, m *core.Model) (string, error) {
	digest, err := s.Put(m)
	if err != nil {
		return "", err
	}
	return digest, s.Tag(name, digest)
}

// Untag removes a name from the manifest (the blob stays until GC).
func (s *Store) Untag(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.man.Models[name]; !ok {
		return fmt.Errorf("store: untag %q: not in manifest", name)
	}
	delete(s.man.Models, name)
	if s.man.Default == name {
		s.man.Default = ""
		if names := s.man.Names(); len(names) > 0 {
			s.man.Default = names[0]
		}
	}
	return s.writeManifestLocked()
}

// SetDefault makes name the manifest's default model.
func (s *Store) SetDefault(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.man.Models[name]; !ok {
		return fmt.Errorf("store: set default %q: not in manifest", name)
	}
	s.man.Default = name
	return s.writeManifestLocked()
}

// Get loads and verifies the artifact stored under digest. Beyond the
// model's own checksum validation, it confirms the content address
// matches — a blob renamed to the wrong digest fails loudly.
func (s *Store) Get(digest string) (*core.Model, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("store: get: malformed digest %q", digest)
	}
	m, err := core.LoadModel(s.blobPath(digest))
	if err != nil {
		return nil, fmt.Errorf("store: get %s: %w", digest, err)
	}
	if got := Digest(m); got != digest {
		return nil, fmt.Errorf("store: blob %s decodes to digest %s (store corrupted)", digest, got)
	}
	return m, nil
}

// Resolve returns the digest name points at.
func (s *Store) Resolve(name string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	digest, ok := s.man.Models[name]
	return digest, ok
}

// Load resolves name and loads its artifact, returning the model and
// its digest.
func (s *Store) Load(name string) (*core.Model, string, error) {
	digest, ok := s.Resolve(name)
	if !ok {
		return nil, "", fmt.Errorf("store: model %q not in manifest", name)
	}
	m, err := s.Get(digest)
	return m, digest, err
}

// Manifest returns a copy of the current manifest.
func (s *Store) Manifest() Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.clone()
}

// Sync re-reads the manifest file and reports whether it changed since
// the last load. It is the watcher-free hot-reload hook: a serving
// process polls Sync (or calls it on /v1/reload) and rebuilds engines
// only when the manifest content actually moved. A missing manifest
// file is an empty manifest, not an error.
func (s *Store) Sync() (changed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() (bool, error) {
	raw, err := os.ReadFile(s.manifestPath())
	if os.IsNotExist(err) {
		changed := len(s.man.Models) > 0 || s.man.Default != ""
		s.man = Manifest{Version: ManifestVersion, Models: map[string]string{}}
		s.manRaw = nil
		return changed, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: sync: %w", err)
	}
	if bytes.Equal(raw, s.manRaw) {
		return false, nil
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return false, fmt.Errorf("store: sync: parse manifest: %w", err)
	}
	if man.Version <= 0 || man.Version > ManifestVersion {
		return false, fmt.Errorf("store: sync: unsupported manifest version %d (understand up to %d)", man.Version, ManifestVersion)
	}
	if man.Models == nil {
		man.Models = map[string]string{}
	}
	for _, name := range man.Names() {
		if err := validName(name); err != nil {
			return false, fmt.Errorf("store: sync: %w", err)
		}
		if d := man.Models[name]; !validDigest(d) {
			return false, fmt.Errorf("store: sync: model %q has malformed digest %q", name, d)
		}
	}
	if man.Default != "" {
		if _, ok := man.Models[man.Default]; !ok {
			return false, fmt.Errorf("store: sync: default %q not in manifest", man.Default)
		}
	}
	s.man = man
	s.manRaw = raw
	return true, nil
}

// writeManifestLocked persists the cached manifest atomically and
// records the written bytes as the new Sync baseline.
func (s *Store) writeManifestLocked() error {
	raw, err := json.MarshalIndent(s.man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	raw = append(raw, '\n')
	tmp, err := os.CreateTemp(s.root, ".fedsc-manifest-*")
	if err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	defer os.Remove(tmp.Name())
	// Deadline decision: local-disk manifest writes are deliberately
	// unbounded — blocking on a wedged filesystem beats publishing a
	// truncated manifest. (os.File carries the net.Conn deadline surface,
	// so the ctxdeadline contract asks this to be written down.)
	_ = tmp.SetWriteDeadline(time.Time{})
	if _, err := tmp.Write(raw); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.manifestPath()); err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	s.manRaw = raw
	return nil
}

// GC deletes blobs the manifest does not reference and returns how many
// were removed and how many bytes they held. The manifest is re-read
// from disk first, so references written by other processes are always
// honored. minAge guards the Put→Tag window: blobs younger than it are
// never collected even when unreferenced (pass 0 only when no writer
// can be mid-deploy).
func (s *Store) GC(minAge time.Duration) (removed int, freed int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.syncLocked(); err != nil {
		return 0, 0, err
	}
	referenced := make(map[string]bool, len(s.man.Models))
	for _, digest := range s.man.Models {
		referenced[digest] = true
	}
	entries, err := os.ReadDir(filepath.Join(s.root, blobSubdir))
	if err != nil {
		return 0, 0, fmt.Errorf("store: gc: %w", err)
	}
	cutoff := time.Now().Add(-minAge)
	for _, e := range entries {
		name := e.Name()
		if !validDigest(name) || referenced[name] {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced a concurrent delete
		}
		if minAge > 0 && info.ModTime().After(cutoff) {
			continue
		}
		if err := os.Remove(s.blobPath(name)); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return removed, freed, fmt.Errorf("store: gc: %w", err)
		}
		removed++
		freed += info.Size()
	}
	return removed, freed, nil
}

// Stats reports blob count/bytes and manifest size for operational
// visibility (the -debug-addr /storez endpoint).
func (s *Store) Stats() (Stats, error) {
	s.mu.Lock()
	man := s.man.clone()
	s.mu.Unlock()
	entries, err := os.ReadDir(filepath.Join(s.root, blobSubdir))
	if err != nil {
		return Stats{}, fmt.Errorf("store: stats: %w", err)
	}
	st := Stats{ManifestEntries: len(man.Models), Default: man.Default}
	for _, e := range entries {
		if !validDigest(e.Name()) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		st.Blobs++
		st.BlobBytes += info.Size()
	}
	return st, nil
}
