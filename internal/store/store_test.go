package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"fedsc/internal/core"
)

// testModel builds a tiny sealed artifact whose cluster bases are
// distinct axis pairs, so different seeds yield different checksums.
func testModel(t *testing.T, shift int) *core.Model {
	t.Helper()
	const ambient, l = 4, 2
	m := &core.Model{Version: core.ModelVersion, Ambient: ambient, L: l, Method: "ssc",
		CreatedUnixNano: 1}
	for g := 0; g < l; g++ {
		data := make([]float64, ambient)
		data[(g+shift)%ambient] = 1
		m.Clusters = append(m.Clusters, core.ClusterBasis{Dim: 1, Data: data, Samples: 1})
	}
	m.Seal()
	if err := m.Validate(); err != nil {
		t.Fatalf("test model invalid: %v", err)
	}
	return m
}

// TestRoundTripBitExact is the acceptance regression: a model stored
// and loaded back must carry the identical checksum and payload.
func TestRoundTripBitExact(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	m := testModel(t, 0)
	digest, err := s.Put(m)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if digest != Digest(m) {
		t.Fatalf("put returned digest %s, model digests to %s", digest, Digest(m))
	}
	got, err := s.Get(digest)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if got.Checksum != m.Checksum {
		t.Fatalf("checksum changed across store round-trip: %x vs %x", got.Checksum, m.Checksum)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("model changed across store round-trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestPutDeduplicates(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	m := testModel(t, 0)
	d1, err := s.Put(m)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	d2, err := s.Put(m)
	if err != nil {
		t.Fatalf("second put: %v", err)
	}
	if d1 != d2 {
		t.Fatalf("same model stored under two digests: %s vs %s", d1, d2)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Blobs != 1 {
		t.Fatalf("%d blobs after duplicate put, want 1", st.Blobs)
	}
}

func TestTagResolveDefault(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	a, b := testModel(t, 0), testModel(t, 1)
	da, err := s.PutTagged("alpha", a)
	if err != nil {
		t.Fatalf("put alpha: %v", err)
	}
	db, err := s.PutTagged("beta", b)
	if err != nil {
		t.Fatalf("put beta: %v", err)
	}
	if da == db {
		t.Fatalf("distinct models share digest %s", da)
	}
	man := s.Manifest()
	if man.Default != "alpha" {
		t.Fatalf("first tag did not become default: %q", man.Default)
	}
	if got := man.Names(); !reflect.DeepEqual(got, []string{"alpha", "beta"}) {
		t.Fatalf("names %v", got)
	}
	if err := s.SetDefault("beta"); err != nil {
		t.Fatalf("set default: %v", err)
	}
	got, digest, err := s.Load("beta")
	if err != nil {
		t.Fatalf("load beta: %v", err)
	}
	if digest != db || got.Checksum != b.Checksum {
		t.Fatalf("load beta returned digest %s checksum %x", digest, got.Checksum)
	}
	// Untagging the default falls back to the smallest remaining name.
	if err := s.Untag("beta"); err != nil {
		t.Fatalf("untag: %v", err)
	}
	if man := s.Manifest(); man.Default != "alpha" || len(man.Models) != 1 {
		t.Fatalf("after untag: %+v", man)
	}
	if err := s.Tag("bad", strings.Repeat("ab", 32)); err == nil {
		t.Fatal("tagging an unstored digest succeeded")
	}
	if err := s.Tag("evil/name", da); err == nil {
		t.Fatal("path-like model name accepted")
	}
}

// TestSyncSeesExternalManifest covers the watcher-free hot-reload hook:
// a second store handle (standing in for another process) rewrites the
// manifest; Sync on the first handle must report the change exactly
// once and expose the new mapping.
func TestSyncSeesExternalManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if changed, err := s.Sync(); err != nil || changed {
		t.Fatalf("sync on empty store: changed=%v err=%v", changed, err)
	}
	other, err := Open(dir)
	if err != nil {
		t.Fatalf("open second handle: %v", err)
	}
	m := testModel(t, 0)
	digest, err := other.PutTagged("live", m)
	if err != nil {
		t.Fatalf("put via second handle: %v", err)
	}
	changed, err := s.Sync()
	if err != nil || !changed {
		t.Fatalf("sync after external tag: changed=%v err=%v", changed, err)
	}
	if d, ok := s.Resolve("live"); !ok || d != digest {
		t.Fatalf("resolve after sync: %q %v", d, ok)
	}
	if changed, err := s.Sync(); err != nil || changed {
		t.Fatalf("idle sync reported change: changed=%v err=%v", changed, err)
	}
	// Deleting the manifest is a legal rollback to empty.
	if err := os.Remove(filepath.Join(dir, manifestFile)); err != nil {
		t.Fatalf("remove manifest: %v", err)
	}
	if changed, err := s.Sync(); err != nil || !changed {
		t.Fatalf("sync after manifest removal: changed=%v err=%v", changed, err)
	}
	if len(s.Manifest().Models) != 0 {
		t.Fatal("manifest entries survived file removal")
	}
}

func TestSyncRejectsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, bad := range []string{
		`{`,
		`{"version": 99, "models": {}}`,
		`{"version": 1, "models": {"x": "nothex"}}`,
		`{"version": 1, "default": "ghost", "models": {}}`,
	} {
		if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte(bad), 0o644); err != nil {
			t.Fatalf("write manifest: %v", err)
		}
		if _, err := s.Sync(); err == nil {
			t.Fatalf("sync accepted corrupt manifest %q", bad)
		}
	}
}

// TestGCKeepsReferencedBlobs is the acceptance regression: GC must
// never remove a manifest-referenced blob, must remove unreferenced
// ones, and must honor the minimum-age guard.
func TestGCKeepsReferencedBlobs(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	kept := testModel(t, 0)
	orphan := testModel(t, 1)
	keptDigest, err := s.PutTagged("kept", kept)
	if err != nil {
		t.Fatalf("put kept: %v", err)
	}
	orphanDigest, err := s.Put(orphan)
	if err != nil {
		t.Fatalf("put orphan: %v", err)
	}
	// A fresh unreferenced blob survives an aged GC (the Put→Tag window).
	if removed, _, err := s.GC(time.Hour); err != nil || removed != 0 {
		t.Fatalf("aged gc: removed=%d err=%v", removed, err)
	}
	removed, freed, err := s.GC(0)
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if removed != 1 || freed <= 0 {
		t.Fatalf("gc removed %d blobs (%d bytes), want exactly the orphan", removed, freed)
	}
	if _, err := s.Get(orphanDigest); err == nil {
		t.Fatal("orphan blob survived gc")
	}
	if _, err := s.Get(keptDigest); err != nil {
		t.Fatalf("referenced blob removed by gc: %v", err)
	}
	// Repeated GC is a no-op.
	if removed, _, err := s.GC(0); err != nil || removed != 0 {
		t.Fatalf("second gc: removed=%d err=%v", removed, err)
	}
}

// TestGCHonorsExternalReferences: a reference added by another handle
// after this handle's last sync must still protect its blob, because GC
// re-reads the manifest before collecting.
func TestGCHonorsExternalReferences(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	other, err := Open(dir)
	if err != nil {
		t.Fatalf("open second handle: %v", err)
	}
	m := testModel(t, 2)
	digest, err := other.PutTagged("external", m)
	if err != nil {
		t.Fatalf("external put: %v", err)
	}
	if removed, _, err := s.GC(0); err != nil || removed != 0 {
		t.Fatalf("gc collected an externally referenced blob: removed=%d err=%v", removed, err)
	}
	if _, err := s.Get(digest); err != nil {
		t.Fatalf("externally referenced blob gone: %v", err)
	}
}

func TestGetDetectsMisfiledBlob(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	m := testModel(t, 0)
	digest, err := s.Put(m)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	wrong := strings.Repeat("00", 32)
	if err := os.Rename(s.blobPath(digest), s.blobPath(wrong)); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if _, err := s.Get(wrong); err == nil {
		t.Fatal("misfiled blob loaded without error")
	}
}

func TestNoStrayTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := s.PutTagged("a", testModel(t, 0)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := s.PutTagged("b", testModel(t, 1)); err != nil {
		t.Fatalf("put: %v", err)
	}
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), ".fedsc-") {
			t.Errorf("stray temp file %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Blobs != 2 || st.ManifestEntries != 2 || st.Default != "a" || st.BlobBytes <= 0 {
		t.Fatalf("stats %+v", st)
	}
}
