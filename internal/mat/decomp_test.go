package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// orthonormalError returns the max deviation of qᵀq from the identity.
func orthonormalError(q *Dense) float64 {
	g := MulTA(q, q)
	n := g.Rows()
	max := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if d := math.Abs(g.At(i, j) - want); d > max {
				max = d
			}
		}
	}
	return max
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, dims := range [][2]int{{5, 5}, {10, 4}, {30, 7}, {3, 1}} {
		a := RandomGaussian(dims[0], dims[1], rng)
		qr := QRFactor(a)
		if err := orthonormalError(qr.Q); err > 1e-10 {
			t.Fatalf("%v: Q not orthonormal, err=%g", dims, err)
		}
		rec := Mul(qr.Q, qr.R)
		if !Equalish(rec, a, 1e-10) {
			t.Fatalf("%v: QR does not reconstruct A", dims)
		}
		// R upper triangular.
		for i := 1; i < dims[1]; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(qr.R.At(i, j)) > 1e-12 {
					t.Fatalf("%v: R not upper triangular at %d,%d", dims, i, j)
				}
			}
		}
	}
}

func TestQRPropertyBased(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 2 + r.Intn(20)
		n := 1 + r.Intn(m)
		a := RandomGaussian(m, n, r)
		qr := QRFactor(a)
		return orthonormalError(qr.Q) < 1e-9 && Equalish(Mul(qr.Q, qr.R), a, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOrthonormalizeRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Three columns, third is a combination of the first two.
	a := RandomGaussian(8, 3, rng)
	for i := 0; i < 8; i++ {
		a.Set(i, 2, 2*a.At(i, 0)-a.At(i, 1))
	}
	q := Orthonormalize(a, 1e-10)
	if q.Cols() != 2 {
		t.Fatalf("Orthonormalize kept %d cols, want 2", q.Cols())
	}
	if err := orthonormalError(q); err > 1e-10 {
		t.Fatalf("result not orthonormal: %g", err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := RandomGaussian(10, 4, rng)
	xTrue := []float64{1, -2, 3, 0.5}
	b := MulVec(a, xTrue)
	x := LeastSquares(a, b)
	for i := range xTrue {
		if math.Abs(x[i]-xTrue[i]) > 1e-9 {
			t.Fatalf("LeastSquares x[%d]=%v want %v", i, x[i], xTrue[i])
		}
	}
}

func TestSolveUpperTriangular(t *testing.T) {
	r := NewDenseData(2, 2, []float64{2, 1, 0, 4})
	x := SolveUpperTriangular(r, []float64{5, 8})
	if math.Abs(x[1]-2) > 1e-14 || math.Abs(x[0]-1.5) > 1e-14 {
		t.Fatalf("SolveUpperTriangular wrong: %v", x)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := NewDense(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	eig := SymEigen(a)
	want := []float64{1, 2, 3}
	for i, w := range want {
		if math.Abs(eig.Values[i]-w) > 1e-12 {
			t.Fatalf("eigenvalue %d = %v want %v", i, eig.Values[i], w)
		}
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{1, 2, 5, 12, 40} {
		g := RandomGaussian(n, n, rng)
		a := MulTA(g, g) // symmetric PSD
		eig := SymEigen(a)
		if err := orthonormalError(eig.Vectors); err > 1e-9 {
			t.Fatalf("n=%d eigenvectors not orthonormal: %g", n, err)
		}
		// Reconstruct V diag(λ) Vᵀ.
		vd := eig.Vectors.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				vd.Set(i, j, vd.At(i, j)*eig.Values[j])
			}
		}
		rec := MulBT(vd, eig.Vectors)
		if !Equalish(rec, a, 1e-8*(1+a.MaxAbs())) {
			t.Fatalf("n=%d eigendecomposition does not reconstruct", n)
		}
		// Sorted ascending.
		for i := 1; i < n; i++ {
			if eig.Values[i] < eig.Values[i-1]-1e-12 {
				t.Fatalf("n=%d eigenvalues not sorted", n)
			}
		}
	}
}

func TestSymEigenIndefinite(t *testing.T) {
	// [[0,1],[1,0]] has eigenvalues ±1.
	a := NewDenseData(2, 2, []float64{0, 1, 1, 0})
	eig := SymEigen(a)
	if math.Abs(eig.Values[0]+1) > 1e-12 || math.Abs(eig.Values[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues = %v want [-1 1]", eig.Values)
	}
}

func TestSymEigenPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := RandomGaussian(9, 9, rng)
	a := MulTA(g, g)
	full := SymEigen(a)
	part := SymEigenPartial(a, 3)
	if len(part.Values) != 3 {
		t.Fatalf("partial returned %d values", len(part.Values))
	}
	for i := 0; i < 3; i++ {
		if math.Abs(part.Values[i]-full.Values[i]) > 1e-10 {
			t.Fatalf("partial value %d mismatch", i)
		}
	}
}

func TestSymEigenPartialMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		k := 1 + r.Intn(n)
		g := RandomGaussian(n, n, r)
		a := MulTA(g, g)
		full := SymEigen(a)
		part := SymEigenPartial(a, k)
		if len(part.Values) != k || part.Vectors.Cols() != k {
			return false
		}
		if orthonormalError(part.Vectors) > 1e-8 {
			return false
		}
		scale := 1 + a.MaxAbs()
		for j := 0; j < k; j++ {
			if math.Abs(part.Values[j]-full.Values[j]) > 1e-8*scale {
				return false
			}
			// A v = λ v residual — eigenvectors need not match the full
			// solver's sign or (in degenerate subspaces) direction, but
			// they must satisfy the eigen equation.
			v := part.Vectors.Col(j, nil)
			av := MulVec(a, v)
			for i := range av {
				if math.Abs(av[i]-part.Values[j]*v[i]) > 1e-6*scale {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigenPartialMultiplicity(t *testing.T) {
	// Block-diagonal Laplacian of two disconnected components: eigenvalue
	// 0 has multiplicity 2, the classic degenerate case spectral
	// clustering feeds the solver. The partial solver must return an
	// orthonormal pair of vectors spanning the null space.
	n := 12
	a := NewDense(n, n)
	for _, blk := range [][2]int{{0, 6}, {6, 12}} {
		for i := blk[0]; i < blk[1]; i++ {
			for j := blk[0]; j < blk[1]; j++ {
				if i == j {
					a.Set(i, j, float64(blk[1]-blk[0]-1))
				} else {
					a.Set(i, j, -1)
				}
			}
		}
	}
	part := SymEigenPartial(a, 3)
	if math.Abs(part.Values[0]) > 1e-8 || math.Abs(part.Values[1]) > 1e-8 {
		t.Fatalf("null-space eigenvalues = %v, want two zeros", part.Values[:2])
	}
	if part.Values[2] < 1 {
		t.Fatalf("third eigenvalue = %v, want the spectral gap", part.Values[2])
	}
	if err := orthonormalError(part.Vectors); err > 1e-8 {
		t.Fatalf("degenerate eigenvectors not orthonormal: %g", err)
	}
	scale := 1 + a.MaxAbs()
	for j := 0; j < 3; j++ {
		v := part.Vectors.Col(j, nil)
		av := MulVec(a, v)
		for i := range av {
			if math.Abs(av[i]-part.Values[j]*v[i]) > 1e-7*scale {
				t.Fatalf("eigenpair %d residual too large", j)
			}
		}
	}
}

func TestSymEigenPartialEdgeCases(t *testing.T) {
	if eig := SymEigenPartial(NewDense(0, 0), 3); len(eig.Values) != 0 || eig.Vectors.Cols() != 0 {
		t.Fatal("empty matrix should yield empty decomposition")
	}
	a := NewDenseData(2, 2, []float64{2, 0, 0, 5})
	if eig := SymEigenPartial(a, 0); len(eig.Values) != 0 {
		t.Fatal("k=0 should yield no values")
	}
	eig := SymEigenPartial(a, 10) // k clamps to n
	if len(eig.Values) != 2 || math.Abs(eig.Values[0]-2) > 1e-12 || math.Abs(eig.Values[1]-5) > 1e-12 {
		t.Fatalf("clamped decomposition = %v", eig.Values)
	}
}

func TestSymEigenPropertyResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(15)
		g := RandomGaussian(n, n, r)
		a := MulTA(g, g)
		eig := SymEigen(a)
		// Check A v = λ v for every pair.
		for j := 0; j < n; j++ {
			v := eig.Vectors.Col(j, nil)
			av := MulVec(a, v)
			for i := range av {
				if math.Abs(av[i]-eig.Values[j]*v[i]) > 1e-7*(1+a.MaxAbs()) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, dims := range [][2]int{{6, 6}, {12, 5}, {5, 12}, {20, 3}} {
		a := RandomGaussian(dims[0], dims[1], rng)
		svd := SVDFactor(a)
		if err := orthonormalError(svd.U); err > 1e-9 {
			t.Fatalf("%v: U not orthonormal: %g", dims, err)
		}
		if err := orthonormalError(svd.V); err > 1e-9 {
			t.Fatalf("%v: V not orthonormal: %g", dims, err)
		}
		// Reconstruct U diag(S) Vᵀ.
		us := svd.U.Clone()
		for i := 0; i < us.Rows(); i++ {
			for j := 0; j < us.Cols(); j++ {
				us.Set(i, j, us.At(i, j)*svd.S[j])
			}
		}
		rec := MulBT(us, svd.V)
		if !Equalish(rec, a, 1e-9*(1+a.MaxAbs())) {
			t.Fatalf("%v: SVD does not reconstruct", dims)
		}
		// Descending order.
		for i := 1; i < len(svd.S); i++ {
			if svd.S[i] > svd.S[i-1]+1e-12 {
				t.Fatalf("%v: singular values not descending", dims)
			}
		}
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2) embedded in a 3x2 matrix.
	a := NewDenseData(3, 2, []float64{3, 0, 0, 2, 0, 0})
	svd := SVDFactor(a)
	if math.Abs(svd.S[0]-3) > 1e-12 || math.Abs(svd.S[1]-2) > 1e-12 {
		t.Fatalf("singular values = %v want [3 2]", svd.S)
	}
}

func TestTruncatedSVDSpansSubspace(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	// Build a rank-3 matrix in R^10 and verify the truncated basis spans
	// the same subspace.
	basis := RandomOrthonormal(10, 3, rng)
	coef := RandomGaussian(3, 25, rng)
	x := Mul(basis, coef)
	u, s := TruncatedSVD(x, 3)
	if u.Cols() != 3 {
		t.Fatalf("TruncatedSVD returned %d cols", u.Cols())
	}
	if err := orthonormalError(u); err > 1e-8 {
		t.Fatalf("U not orthonormal: %g", err)
	}
	if s[2] <= 0 {
		t.Fatalf("third singular value should be positive: %v", s)
	}
	// Projection of basis onto span(u) should equal basis.
	p := Mul(u, MulTA(u, basis))
	if !Equalish(p, basis, 1e-8) {
		t.Fatal("TruncatedSVD basis does not span the true subspace")
	}
}

func TestTruncatedSVDWide(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	basis := RandomOrthonormal(6, 2, rng)
	coef := RandomGaussian(2, 40, rng)
	x := Mul(basis, coef) // 6 x 40 (wide)
	u, _ := TruncatedSVD(x, 2)
	p := Mul(u, MulTA(u, basis))
	if !Equalish(p, basis, 1e-8) {
		t.Fatal("wide TruncatedSVD basis does not span the true subspace")
	}
}

func TestNumericalRank(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	basis := RandomOrthonormal(8, 4, rng)
	coef := RandomGaussian(4, 10, rng)
	x := Mul(basis, coef)
	if r := NumericalRank(x, 1e-9); r != 4 {
		t.Fatalf("NumericalRank = %d want 4", r)
	}
	if r := NumericalRank(NewDense(5, 3), 1e-9); r != 0 {
		t.Fatalf("NumericalRank of zero matrix = %d want 0", r)
	}
}

func TestRandomOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	q := RandomOrthonormal(15, 6, rng)
	if err := orthonormalError(q); err > 1e-10 {
		t.Fatalf("RandomOrthonormal not orthonormal: %g", err)
	}
}

func TestRandomUnitVector(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	v := RandomUnitVector(9, rng)
	if math.Abs(Norm2(v)-1) > 1e-12 {
		t.Fatalf("RandomUnitVector norm = %v", Norm2(v))
	}
}

func TestVectorKernels(t *testing.T) {
	x := []float64{3, -4}
	if Norm2(x) != 5 || Norm1(x) != 7 || NormInf(x) != 4 {
		t.Fatal("vector norms wrong")
	}
	y := []float64{1, 1}
	if Dot(x, y) != -1 {
		t.Fatal("Dot wrong")
	}
	z := make([]float64, 2)
	copy(z, x)
	if n := Normalize(z); math.Abs(n-5) > 1e-15 || math.Abs(Norm2(z)-1) > 1e-15 {
		t.Fatal("Normalize wrong")
	}
	Axpy(2, y, z) // z += 2y
	if math.Abs(z[0]-(3.0/5+2)) > 1e-15 {
		t.Fatal("Axpy wrong")
	}
	d := Sub(x, y, nil)
	if d[0] != 2 || d[1] != -5 {
		t.Fatal("Sub wrong")
	}
	ScaleVec(0.5, d)
	if d[0] != 1 {
		t.Fatal("ScaleVec wrong")
	}
}

func TestNormalizeColumns(t *testing.T) {
	m := NewDenseData(2, 3, []float64{3, 0, 0, 4, 5, 0})
	NormalizeColumns(m)
	norms := ColNorms(m)
	if math.Abs(norms[0]-1) > 1e-14 || math.Abs(norms[1]-1) > 1e-14 {
		t.Fatalf("NormalizeColumns norms = %v", norms)
	}
	if norms[2] != 0 {
		t.Fatal("zero column should remain zero")
	}
}
