package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestSketchGaussianPreservesInnerProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Unit-norm columns in a 200-dim ambient space, sketched to 80 rows:
	// JL distortion on pairwise inner products should be small.
	a := RandomGaussian(200, 30, rng)
	NormalizeColumns(a)
	sk := SketchGaussian(a, 80, rand.New(rand.NewSource(2)))
	if sk.Rows() != 80 || sk.Cols() != 30 {
		t.Fatalf("sketch is %dx%d, want 80x30", sk.Rows(), sk.Cols())
	}
	g := Gram(a)
	gs := Gram(sk)
	maxErr := 0.0
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if e := math.Abs(g.At(i, j) - gs.At(i, j)); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 0.5 {
		t.Fatalf("sketched Gram deviates by %.3f, want JL-small", maxErr)
	}
}

func TestSketchRowsShapeAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandomGaussian(100, 12, rng)
	sk := SketchRows(a, 25, rand.New(rand.NewSource(4)))
	if sk.Rows() != 25 || sk.Cols() != 12 {
		t.Fatalf("sketch is %dx%d, want 25x12", sk.Rows(), sk.Cols())
	}
	// Expected squared column norm is preserved: with scale √(r/s) the
	// sketched norms should track the originals within sampling noise.
	orig := ColNormsSq(a)
	got := ColNormsSq(sk)
	for j := range orig {
		if got[j] < 0.3*orig[j] || got[j] > 3*orig[j] {
			t.Fatalf("column %d squared norm %.3f vs original %.3f: scale off", j, got[j], orig[j])
		}
	}
	// Every sketched row must be a scaled copy of some original row.
	scale := math.Sqrt(100.0 / 25.0)
	for k := 0; k < sk.Rows(); k++ {
		found := false
		for i := 0; i < a.Rows() && !found; i++ {
			match := true
			for j := 0; j < a.Cols(); j++ {
				if math.Abs(sk.At(k, j)-scale*a.At(i, j)) > 1e-12 {
					match = false
					break
				}
			}
			found = match
		}
		if !found {
			t.Fatalf("sketched row %d matches no original row", k)
		}
	}
}

func TestSketchDeterministicAndNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := RandomGaussian(40, 9, rng)
	for _, kind := range []SketchKind{SketchGaussianKind, SketchRowsKind} {
		s1 := Sketch(a, 16, kind, rand.New(rand.NewSource(7)))
		s2 := Sketch(a, 16, kind, rand.New(rand.NewSource(7)))
		if !Equalish(s1, s2, 0) {
			t.Fatalf("%s sketch not deterministic under a fixed seed", kind)
		}
	}
	// s >= rows or s <= 0: the input comes back untouched.
	if got := Sketch(a, 40, SketchGaussianKind, rng); got != a {
		t.Fatalf("s == rows should return the input unchanged")
	}
	if got := Sketch(a, 0, SketchRowsKind, rng); got != a {
		t.Fatalf("s == 0 should return the input unchanged")
	}
}
