package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewDenseShape(t *testing.T) {
	m := NewDense(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("new matrix not zeroed at %d,%d", i, j)
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v want 7.5", got)
	}
	m.Add(1, 2, 0.5)
	if got := m.At(1, 2); got != 8 {
		t.Fatalf("after Add At(1,2) = %v want 8", got)
	}
}

func TestNewDenseDataPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched data length")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestCloneIndependent(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if r, c := tr.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = %d,%d want 3,2", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestColAndSetCol(t *testing.T) {
	m := NewDenseData(3, 2, []float64{1, 2, 3, 4, 5, 6})
	col := m.Col(1, nil)
	want := []float64{2, 4, 6}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("Col(1)[%d] = %v want %v", i, col[i], want[i])
		}
	}
	m.SetCol(0, []float64{9, 8, 7})
	if m.At(2, 0) != 7 {
		t.Fatalf("SetCol failed: At(2,0)=%v", m.At(2, 0))
	}
	cv := m.ColAt(1)
	if cv.Len() != 3 || cv.At(2) != 6 {
		t.Fatalf("ColAt view wrong: len=%d At(2)=%v", cv.Len(), cv.At(2))
	}
}

func TestSliceAndSelectCols(t *testing.T) {
	m := NewDenseData(2, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	s := m.SliceCols(1, 3)
	if s.Cols() != 2 || s.At(0, 0) != 2 || s.At(1, 1) != 7 {
		t.Fatalf("SliceCols wrong: %v", s)
	}
	sel := m.SelectCols([]int{3, 0})
	if sel.At(0, 0) != 4 || sel.At(0, 1) != 1 {
		t.Fatalf("SelectCols wrong: %v", sel)
	}
}

func TestHStack(t *testing.T) {
	a := NewDenseData(2, 1, []float64{1, 2})
	b := NewDenseData(2, 2, []float64{3, 4, 5, 6})
	h := HStack(a, b)
	if h.Cols() != 3 || h.At(0, 1) != 3 || h.At(1, 2) != 6 {
		t.Fatalf("HStack wrong: %v", h)
	}
	if HStack().Cols() != 0 {
		t.Fatal("empty HStack should be 0x0")
	}
}

func TestSymmetrizeAndMaxAbs(t *testing.T) {
	m := NewDenseData(2, 2, []float64{0, 4, 2, 0})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("Symmetrize wrong: %v", m)
	}
	if m.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v want 3", m.MaxAbs())
	}
}

func TestIdentityAndFrobenius(t *testing.T) {
	id := Identity(3)
	if got := id.FrobeniusNorm(); math.Abs(got-math.Sqrt(3)) > 1e-15 {
		t.Fatalf("FrobeniusNorm(I3) = %v", got)
	}
}

func TestAddScaled(t *testing.T) {
	a := NewDenseData(1, 2, []float64{1, 2})
	b := NewDenseData(1, 2, []float64{10, 20})
	a.AddScaled(0.5, b)
	if a.At(0, 0) != 6 || a.At(0, 1) != 12 {
		t.Fatalf("AddScaled wrong: %v", a)
	}
}

func TestMulBasic(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDenseData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	p := Mul(a, b)
	want := NewDenseData(2, 2, []float64{58, 64, 139, 154})
	if !Equalish(p, want, 1e-12) {
		t.Fatalf("Mul wrong: %v", p)
	}
}

func TestMulTAMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandomGaussian(7, 4, rng)
	b := RandomGaussian(7, 5, rng)
	got := MulTA(a, b)
	want := Mul(a.T(), b)
	if !Equalish(got, want, 1e-10) {
		t.Fatal("MulTA does not match explicit transpose product")
	}
}

func TestMulBTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandomGaussian(4, 6, rng)
	b := RandomGaussian(5, 6, rng)
	got := MulBT(a, b)
	want := Mul(a, b.T())
	if !Equalish(got, want, 1e-10) {
		t.Fatal("MulBT does not match explicit transpose product")
	}
}

func TestGramSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandomGaussian(8, 5, rng)
	g := Gram(a)
	if !Equalish(g, g.T(), 1e-12) {
		t.Fatal("Gram matrix is not symmetric")
	}
	// Diagonal entries are squared column norms.
	norms := ColNorms(a)
	for j := 0; j < 5; j++ {
		if math.Abs(g.At(j, j)-norms[j]*norms[j]) > 1e-10 {
			t.Fatalf("Gram diagonal %d mismatch", j)
		}
	}
}

func TestMulVecAndMulTVec(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	got := MulVec(a, x)
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec wrong: %v", got)
	}
	y := []float64{1, 1}
	gt := MulTVec(a, y)
	if gt[0] != 5 || gt[1] != 7 || gt[2] != 9 {
		t.Fatalf("MulTVec wrong: %v", gt)
	}
}

func TestMulParallelLarge(t *testing.T) {
	// Exercise the parallel path (work above the threshold).
	rng := rand.New(rand.NewSource(4))
	a := RandomGaussian(80, 90, rng)
	b := RandomGaussian(90, 70, rng)
	p := Mul(a, b)
	// Spot-check a few entries against direct dot products.
	for _, ij := range [][2]int{{0, 0}, {40, 35}, {79, 69}} {
		i, j := ij[0], ij[1]
		want := 0.0
		for k := 0; k < 90; k++ {
			want += a.At(i, k) * b.At(k, j)
		}
		if math.Abs(p.At(i, j)-want) > 1e-9 {
			t.Fatalf("parallel Mul wrong at %d,%d", i, j)
		}
	}
}

func TestMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}
