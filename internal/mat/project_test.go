package mat

import (
	"math"
	"math/rand"
	"testing"
)

// naiveResidualSq computes ‖x − U Uᵀx‖² by materializing the projection.
func naiveResidualSq(u *Dense, x []float64) float64 {
	coef := MulTVec(u, x)   // Uᵀx
	proj := MulVec(u, coef) // U Uᵀx
	s := 0.0
	for i := range x {
		d := x[i] - proj[i]
		s += d * d
	}
	return s
}

func TestColNormsSq(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := RandomGaussian(9, 5, rng)
	got := ColNormsSq(m)
	want := ColNorms(m)
	for j := range got {
		if math.Abs(got[j]-want[j]*want[j]) > 1e-12 {
			t.Fatalf("column %d: ColNormsSq %.15f vs ColNorms² %.15f", j, got[j], want[j]*want[j])
		}
	}
}

func TestResidualsSqMatchesNaiveProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	u := RandomOrthonormal(20, 4, rng)
	xs := RandomGaussian(20, 13, rng)
	res := ResidualsSq(u, xs, ColNormsSq(xs))
	col := make([]float64, 20)
	for j := 0; j < xs.Cols(); j++ {
		xs.Col(j, col)
		want := naiveResidualSq(u, col)
		if math.Abs(res[j]-want) > 1e-10 {
			t.Fatalf("column %d: residual %.12f, naive %.12f", j, res[j], want)
		}
	}
}

func TestResidualsSqInSpanIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	u := RandomOrthonormal(16, 3, rng)
	coef := RandomGaussian(3, 6, rng)
	xs := Mul(u, coef) // columns lie exactly in span(U)
	res := ResidualsSq(u, xs, ColNormsSq(xs))
	for j, v := range res {
		if v > 1e-12 {
			t.Fatalf("in-span column %d has residual %.3e", j, v)
		}
	}
}

func TestResidualsSqEmptyBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	xs := RandomGaussian(6, 4, rng)
	norms := ColNormsSq(xs)
	res := ResidualsSq(NewDense(6, 0), xs, norms)
	for j := range res {
		if res[j] != norms[j] {
			t.Fatalf("empty basis residual %v, want full norm %v", res[j], norms[j])
		}
	}
	// The copy must not alias the caller's slice.
	res[0] = -1
	if norms[0] == -1 {
		t.Fatal("ResidualsSq aliased the input norms")
	}
}
