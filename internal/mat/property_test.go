package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTransposeInvolution: (Aᵀ)ᵀ = A for random shapes.
func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(250))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := RandomGaussian(1+r.Intn(12), 1+r.Intn(12), r)
		return Equalish(a.T().T(), a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestMulAssociative: (AB)C = A(BC) within floating-point tolerance.
func TestMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(251))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, s, u := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := RandomGaussian(p, q, r)
		b := RandomGaussian(q, s, r)
		c := RandomGaussian(s, u, r)
		left := Mul(Mul(a, b), c)
		right := Mul(a, Mul(b, c))
		return Equalish(left, right, 1e-9*(1+left.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestMulVecLinear: M(αx + βy) = αMx + βMy.
func TestMulVecLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(252))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := RandomGaussian(2+r.Intn(8), 2+r.Intn(8), r)
		x := make([]float64, m.Cols())
		y := make([]float64, m.Cols())
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		alpha, beta := r.NormFloat64(), r.NormFloat64()
		combo := make([]float64, m.Cols())
		for i := range combo {
			combo[i] = alpha*x[i] + beta*y[i]
		}
		lhs := MulVec(m, combo)
		mx := MulVec(m, x)
		my := MulVec(m, y)
		for i := range lhs {
			if math.Abs(lhs[i]-(alpha*mx[i]+beta*my[i])) > 1e-9*(1+math.Abs(lhs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestSVDSingularValuesMatchEigen: σᵢ(A)² are the eigenvalues of AᵀA.
func TestSVDSingularValuesMatchEigen(t *testing.T) {
	rng := rand.New(rand.NewSource(253))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		m := n + r.Intn(6)
		a := RandomGaussian(m, n, r)
		svd := SVDFactor(a)
		eig := SymEigen(Gram(a))
		for i := 0; i < n; i++ {
			want := eig.Values[n-1-i]
			if want < 0 {
				want = 0
			}
			if math.Abs(svd.S[i]*svd.S[i]-want) > 1e-7*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestEigenTraceInvariant: the eigenvalues of a symmetric matrix sum to
// its trace.
func TestEigenTraceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(254))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		g := RandomGaussian(n, n, r)
		a := MulTA(g, g)
		eig := SymEigen(a)
		trace, sum := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		for _, v := range eig.Values {
			sum += v
		}
		return math.Abs(trace-sum) < 1e-8*(1+math.Abs(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestLeastSquaresResidualOrthogonal: the LS residual is orthogonal to
// the column space.
func TestLeastSquaresResidualOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(255))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(4)
		m := n + 2 + r.Intn(8)
		a := RandomGaussian(m, n, r)
		b := make([]float64, m)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x := LeastSquares(a, b)
		fit := MulVec(a, x)
		res := Sub(b, fit, nil)
		proj := MulTVec(a, res)
		return NormInf(proj) < 1e-8*(1+Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
