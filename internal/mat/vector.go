package mat

import "math"

// Dot returns the inner product of x and y. Panics on length mismatch.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the ℓ1 norm of x.
func Norm1(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the ℓ∞ norm of x.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Normalize scales x in place to unit Euclidean norm and returns the
// original norm. Zero vectors are left untouched.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 { //fedsc:allow floatcmp the Euclidean norm is exactly zero iff the vector is exactly zero
		return 0
	}
	inv := 1 / n
	for i := range x {
		x[i] *= inv
	}
	return n
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x in place by a.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Sub computes dst = x - y, allocating dst when nil, and returns it.
func Sub(x, y, dst []float64) []float64 {
	if len(x) != len(y) {
		panic("mat: Sub length mismatch")
	}
	if dst == nil {
		dst = make([]float64, len(x))
	}
	for i := range x {
		dst[i] = x[i] - y[i]
	}
	return dst
}

// NormalizeColumns scales each column of m to unit Euclidean norm in place.
// Zero columns are left untouched.
func NormalizeColumns(m *Dense) {
	r, c := m.Dims()
	norms := make([]float64, c)
	for i := 0; i < r; i++ {
		row := m.Row(i)
		for j, v := range row {
			norms[j] += v * v
		}
	}
	for j := range norms {
		if norms[j] > 0 {
			norms[j] = 1 / math.Sqrt(norms[j])
		}
	}
	for i := 0; i < r; i++ {
		row := m.Row(i)
		for j := range row {
			if norms[j] != 0 { //fedsc:allow floatcmp zero-norm columns were left untouched above, marked by an exact 0
				row[j] *= norms[j]
			}
		}
	}
}

// ColNorms returns the Euclidean norm of each column of m.
func ColNorms(m *Dense) []float64 {
	r, c := m.Dims()
	norms := make([]float64, c)
	for i := 0; i < r; i++ {
		row := m.Row(i)
		for j, v := range row {
			norms[j] += v * v
		}
	}
	for j := range norms {
		norms[j] = math.Sqrt(norms[j])
	}
	return norms
}
