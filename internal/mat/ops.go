package mat

import (
	"runtime"
	"sync"
)

// parallelThreshold is the amount of scalar work below which matrix
// products run single-threaded; spawning goroutines for tiny products
// costs more than it saves.
const parallelThreshold = 1 << 16

// Mul returns the product a*b as a new matrix.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic("mat: Mul dimension mismatch")
	}
	out := NewDense(a.rows, b.cols)
	mulInto(out, a, b)
	return out
}

// mulInto computes out = a*b, parallelizing over row blocks of a. The
// inner loops use the ikj ordering so the innermost accesses stream over
// contiguous rows of b and out.
func mulInto(out, a, b *Dense) {
	work := a.rows * a.cols * b.cols
	rowRange(a.rows, work, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for k, av := range arow {
				//fedsc:allow floatcmp sparsity skip: exact zeros contribute nothing
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// MulTA returns aᵀ*b as a new matrix without materializing the transpose.
// Workers own disjoint blocks of output rows (columns of a), so the
// reduction over a's rows needs no merge step, no scratch matrix and no
// lock, and every output element accumulates in the same order as a
// serial evaluation regardless of the worker count.
func MulTA(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic("mat: MulTA dimension mismatch")
	}
	out := NewDense(a.cols, b.cols)
	work := a.rows * a.cols * b.cols
	rowRange(a.cols, work, func(i0, i1 int) {
		for k := 0; k < a.rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := i0; i < i1; i++ {
				av := arow[i]
				//fedsc:allow floatcmp sparsity skip: exact zeros contribute nothing
				if av == 0 {
					continue
				}
				orow := out.Row(i)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MulBT returns a*bᵀ as a new matrix without materializing the transpose.
func MulBT(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic("mat: MulBT dimension mismatch")
	}
	out := NewDense(a.rows, b.rows)
	work := a.rows * a.cols * b.rows
	rowRange(a.rows, work, func(r0, r1 int) {
		for i := r0; i < r1; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.rows; j++ {
				orow[j] = Dot(arow, b.Row(j))
			}
		}
	})
	return out
}

// Gram returns the Gram matrix mᵀ*m of the columns of m.
func Gram(m *Dense) *Dense { return MulTA(m, m) }

// MulVec returns the matrix-vector product m*x as a new slice.
func MulVec(m *Dense, x []float64) []float64 {
	if m.cols != len(x) {
		panic("mat: MulVec dimension mismatch")
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// MulTVec returns mᵀ*x as a new slice.
func MulTVec(m *Dense, x []float64) []float64 {
	if m.rows != len(x) {
		panic("mat: MulTVec dimension mismatch")
	}
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		xi := x[i]
		if xi == 0 { //fedsc:allow floatcmp sparsity skip: exact zeros contribute nothing
			continue
		}
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// rowRange splits [0, n) into contiguous chunks and runs fn on each,
// in parallel when the estimated work is large enough.
func rowRange(n, work int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || workers <= 1 || n < 2 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Parallel exposes rowRange for other packages that want the same
// chunked-parallel loop over n items with an estimated total work.
func Parallel(n, work int, fn func(lo, hi int)) { rowRange(n, work, fn) }
