package mat

// Projection-residual kernels for out-of-sample subspace assignment.
// Given an orthonormal basis U of a subspace, the squared distance of a
// point x to the subspace is ‖x − U Uᵀx‖² = ‖x‖² − ‖Uᵀx‖², so a whole
// batch of points can be scored against one subspace with a single
// blocked matrix product UᵀX — the hot path of the serving tier.

// ColNormsSq returns the squared Euclidean norm of each column of m.
func ColNormsSq(m *Dense) []float64 {
	r, c := m.Dims()
	norms := make([]float64, c)
	for i := 0; i < r; i++ {
		row := m.Row(i)
		for j, v := range row {
			norms[j] += v * v
		}
	}
	return norms
}

// ResidualsSq returns, for every column x of xs, the squared projection
// residual ‖x − U Uᵀx‖² onto the column span of the orthonormal basis u.
// colNormsSq must hold the squared column norms of xs (ColNormsSq); it
// is taken as an argument so one precomputed pass serves every subspace
// a batch is scored against. A basis with zero columns spans only the
// origin, so the residual is the full squared norm. Negative values from
// floating-point cancellation are clamped to zero.
func ResidualsSq(u, xs *Dense, colNormsSq []float64) []float64 {
	if u.Cols() == 0 {
		out := make([]float64, len(colNormsSq))
		copy(out, colNormsSq)
		return out
	}
	if u.Rows() != xs.Rows() {
		panic("mat: ResidualsSq dimension mismatch")
	}
	y := MulTA(u, xs) // d x B block of projection coefficients Uᵀxs
	d, b := y.Dims()
	out := make([]float64, b)
	copy(out, colNormsSq)
	for i := 0; i < d; i++ {
		row := y.Row(i)
		for j, v := range row {
			out[j] -= v * v
		}
	}
	for j, v := range out {
		if v < 0 {
			out[j] = 0
		}
	}
	return out
}
