package mat

import (
	"math"
	"math/rand"
)

// Row-compression sketches for the server's Phase 2. The pooled sample
// matrix Θ is n x Z with unit-norm columns; the central SSC/TSC solvers
// only consume column inner products (the Gram matrix) and column
// distances, both of which a Johnson-Lindenstrauss row projection
// preserves to within the usual (1±ε) distortion. Compressing the
// ambient dimension n down to s therefore cuts every O(n·Z²) kernel of
// the central solve by n/s while leaving the clustering geometry intact
// — the "sketch, then cluster" reduction of sketched subspace
// clustering (Traganitis & Giannakis). The sketch reuses the same
// Gaussian test-matrix machinery as the randomized range finder behind
// TruncatedSVD, just applied from the left.

// SketchKind selects the row-compression operator.
type SketchKind string

// The two sketch operators: a dense Gaussian JL projection (default,
// strongest guarantee) and uniform row sampling (cheapest, adequate for
// incoherent data such as the unit-sphere samples Fed-SC uploads).
const (
	SketchGaussianKind SketchKind = "gaussian"
	SketchRowsKind     SketchKind = "rows"
)

// SketchGaussian returns the s x c matrix (1/√s)·Ω·a where Ω is an
// s x r matrix of iid standard normals drawn from rng. The 1/√s scale
// makes the sketch an isometry in expectation, so downstream tolerances
// (SSC's DropTol, TSC's spherical distances) keep their meaning. When
// s >= the row count of a, the sketch cannot compress and a is returned
// unchanged (not copied).
func SketchGaussian(a *Dense, s int, rng *rand.Rand) *Dense {
	r := a.Rows()
	if s >= r || s <= 0 {
		return a
	}
	omega := RandomGaussian(s, r, rng)
	out := Mul(omega, a)
	out.Scale(1 / math.Sqrt(float64(s)))
	return out
}

// SketchRows returns s distinct rows of a sampled uniformly without
// replacement, scaled by √(r/s) so squared column norms are preserved
// in expectation. The sampled row set is sorted ascending, so for a
// fixed rng the sketch is a deterministic function of a. When s >= the
// row count, a is returned unchanged (not copied).
func SketchRows(a *Dense, s int, rng *rand.Rand) *Dense {
	r := a.Rows()
	if s >= r || s <= 0 {
		return a
	}
	// Partial Fisher-Yates: the first s entries of a permutation of [0,r).
	perm := rng.Perm(r)[:s]
	// Sort ascending so the sketch's row order never depends on the
	// draw order (selection sort: s is small).
	for i := 0; i < s; i++ {
		min := i
		for j := i + 1; j < s; j++ {
			if perm[j] < perm[min] {
				min = j
			}
		}
		perm[i], perm[min] = perm[min], perm[i]
	}
	scale := math.Sqrt(float64(r) / float64(s))
	out := NewDense(s, a.Cols())
	for k, i := range perm {
		dst := out.Row(k)
		copy(dst, a.Row(i))
		for j := range dst {
			dst[j] *= scale
		}
	}
	return out
}

// Sketch applies the named row-compression operator; an empty kind
// selects the Gaussian projection.
func Sketch(a *Dense, s int, kind SketchKind, rng *rand.Rand) *Dense {
	switch kind {
	case SketchRowsKind:
		return SketchRows(a, s, rng)
	case SketchGaussianKind, "":
		return SketchGaussian(a, s, rng)
	default:
		panic("mat: unknown sketch kind " + string(kind))
	}
}
