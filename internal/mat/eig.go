package mat

import (
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a real symmetric matrix:
// a = V * diag(Values) * Vᵀ with Values sorted ascending and the columns
// of Vectors holding the corresponding orthonormal eigenvectors.
type Eigen struct {
	Values  []float64
	Vectors *Dense
}

// SymEigen computes the full eigendecomposition of the symmetric matrix a
// by Householder tridiagonalization followed by the implicit-shift QL
// iteration. Only the lower triangle of a is read. a is not modified.
//
// The O(n³) inner kernels — the rank-two updates of the reduction and the
// eigenvector rotations of the QL iteration — run as blocked row updates
// across GOMAXPROCS workers; every parallel block owns a disjoint set of
// rows and performs the same scalar operations in the same order as the
// serial loop, so the result is identical regardless of scheduling.
func SymEigen(a *Dense) Eigen {
	n := a.Rows()
	if a.Cols() != n {
		panic("mat: SymEigen requires a square matrix")
	}
	if n == 0 {
		return Eigen{Values: nil, Vectors: NewDense(0, 0)}
	}
	z := a.Clone()
	z.Symmetrize()
	d := make([]float64, n) // diagonal
	e := make([]float64, n) // off-diagonal
	tred2(z, d, e)
	tqli(d, e, z)
	// Sort eigenpairs ascending.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return d[idx[i]] < d[idx[j]] })
	vals := make([]float64, n)
	for k, i := range idx {
		vals[k] = d[i]
	}
	return Eigen{Values: vals, Vectors: z.SelectCols(idx)}
}

// tred2 reduces the symmetric matrix z to tridiagonal form, accumulating
// the orthogonal transform in z. On return d holds the diagonal and
// e[1..n-1] the subdiagonal (e[0] = 0). This is the classical
// Householder reduction (EISPACK TRED2) with the two O(n²)-per-step
// kernels — the symmetric matrix-vector product and the rank-two
// update — run as parallel blocked row updates.
func tred2(z *Dense, d, e []float64) {
	n := len(d)
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		zi := z.Row(i)
		h, scale := 0.0, 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(zi[k])
			}
			if scale == 0 { //fedsc:allow floatcmp sum of |entries| is exactly zero iff the row is exactly zero
				e[i] = zi[l]
			} else {
				for k := 0; k <= l; k++ {
					zi[k] /= scale
					h += zi[k] * zi[k]
				}
				f := zi[l]
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				zi[l] = f - g
				// e[j] ← (A v)_j / h. The active block [0..l]² is kept
				// fully mirrored (see the rank-two update below), so each
				// row's dot product streams contiguously instead of
				// finishing with a stride down column j — the strided
				// half of the classical lower-triangle symv was the
				// hottest cache-miss site in the whole decomposition.
				lim := l + 1
				Parallel(lim, lim*lim, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						zj := z.Row(j)
						zj[i] = zi[j] / h
						g := 0.0
						for k := 0; k <= l; k++ {
							g += zj[k] * zi[k]
						}
						e[j] = g / h
					}
				})
				f = 0.0
				for j := 0; j <= l; j++ {
					f += e[j] * zi[j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					e[j] -= hh * zi[j]
				}
				// Rank-two update A ← A − v wᵀ − w vᵀ over full rows
				// of the active block, preserving its mirror symmetry
				// exactly: entries (j,k) and (k,j) subtract the same two
				// products combined by one IEEE addition, and both
				// multiplication and addition commute bitwise, so the two
				// sides stay bit-identical. Costs half an extra streaming
				// pass versus the lower triangle alone, repaid by the symv
				// above never leaving row order. Rows are disjoint across
				// workers, so the block update is safe and exact.
				Parallel(lim, lim*lim, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						fj := zi[j]
						gj := e[j]
						zj := z.Row(j)
						for k := 0; k <= l; k++ {
							zj[k] -= fj*e[k] + gj*zi[k]
						}
					}
				})
			}
		} else {
			e[i] = zi[l]
		}
		d[i] = h
	}
	d[0] = 0.0
	e[0] = 0.0
	// Accumulate the transform: for each reflector, a matrix-vector
	// product against the already-accumulated block followed by a rank-one
	// update, blocked over rows.
	g := make([]float64, n)
	for i := 0; i < n; i++ {
		l := i - 1
		zi := z.Row(i)
		if d[i] != 0 { //fedsc:allow floatcmp tred2 writes an exact 0 to mark a skipped transform
			lim := l + 1
			for j := 0; j < lim; j++ {
				g[j] = 0
			}
			for k := 0; k < lim; k++ {
				zk := z.Row(k)
				v := zi[k]
				for j := 0; j < lim; j++ {
					g[j] += v * zk[j]
				}
			}
			Parallel(lim, lim*lim, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					zk := z.Row(k)
					s := zk[i]
					for j := 0; j < lim; j++ {
						zk[j] -= g[j] * s
					}
				}
			})
		}
		d[i] = zi[i]
		zi[i] = 1.0
		for j := 0; j <= l; j++ {
			z.Row(j)[i] = 0.0
			zi[j] = 0.0
		}
	}
}

// planeRot is one Givens rotation of the QL iteration, acting on columns
// i and i+1 of the eigenvector matrix.
type planeRot struct {
	i    int
	s, c float64
}

// applyRots applies a buffered sequence of plane rotations to z. Each row
// of z is updated independently with the rotations in buffer order, so
// the work splits across workers by rows while performing exactly the
// per-element operations of the eager column-by-column loop — and streams
// contiguously over each row instead of striding down columns.
func applyRots(z *Dense, rots []planeRot) {
	if len(rots) == 0 {
		return
	}
	n := z.Rows()
	Parallel(n, n*len(rots)*6, func(lo, hi int) {
		// Successive rotations overlap (rotation i reads the element
		// rotation i+1 just wrote), so a single row is one long dependency
		// chain. Eight rows march through the rotation sequence together
		// (then four, then one, for the remainder) to give the pipeline
		// independent work at each step; eight keeps every FMA port busy
		// through the multiply-add latency without spilling registers.
		k := lo
		for ; k+7 < hi; k += 8 {
			r0, r1, r2, r3 := z.Row(k), z.Row(k+1), z.Row(k+2), z.Row(k+3)
			r4, r5, r6, r7 := z.Row(k+4), z.Row(k+5), z.Row(k+6), z.Row(k+7)
			for _, r := range rots {
				i, s, c := r.i, r.s, r.c
				f0 := r0[i+1]
				r0[i+1] = s*r0[i] + c*f0
				r0[i] = c*r0[i] - s*f0
				f1 := r1[i+1]
				r1[i+1] = s*r1[i] + c*f1
				r1[i] = c*r1[i] - s*f1
				f2 := r2[i+1]
				r2[i+1] = s*r2[i] + c*f2
				r2[i] = c*r2[i] - s*f2
				f3 := r3[i+1]
				r3[i+1] = s*r3[i] + c*f3
				r3[i] = c*r3[i] - s*f3
				f4 := r4[i+1]
				r4[i+1] = s*r4[i] + c*f4
				r4[i] = c*r4[i] - s*f4
				f5 := r5[i+1]
				r5[i+1] = s*r5[i] + c*f5
				r5[i] = c*r5[i] - s*f5
				f6 := r6[i+1]
				r6[i+1] = s*r6[i] + c*f6
				r6[i] = c*r6[i] - s*f6
				f7 := r7[i+1]
				r7[i+1] = s*r7[i] + c*f7
				r7[i] = c*r7[i] - s*f7
			}
		}
		for ; k+3 < hi; k += 4 {
			r0, r1, r2, r3 := z.Row(k), z.Row(k+1), z.Row(k+2), z.Row(k+3)
			for _, r := range rots {
				i, s, c := r.i, r.s, r.c
				f0 := r0[i+1]
				r0[i+1] = s*r0[i] + c*f0
				r0[i] = c*r0[i] - s*f0
				f1 := r1[i+1]
				r1[i+1] = s*r1[i] + c*f1
				r1[i] = c*r1[i] - s*f1
				f2 := r2[i+1]
				r2[i+1] = s*r2[i] + c*f2
				r2[i] = c*r2[i] - s*f2
				f3 := r3[i+1]
				r3[i+1] = s*r3[i] + c*f3
				r3[i] = c*r3[i] - s*f3
			}
		}
		for ; k < hi; k++ {
			row := z.Row(k)
			for _, r := range rots {
				f := row[r.i+1]
				row[r.i+1] = r.s*row[r.i] + r.c*f
				row[r.i] = r.c*row[r.i] - r.s*f
			}
		}
	})
}

// tqli applies the implicit-shift QL iteration to the tridiagonal matrix
// (d, e), accumulating eigenvectors into the columns of z (which must
// contain the transform from tred2, or the identity for a tridiagonal
// input). On return d holds the eigenvalues (unsorted). The eigenvector
// rotations of each QL step are buffered and applied as one blocked,
// row-parallel pass (see applyRots).
func tqli(d, e []float64, z *Dense) {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0.0
	rots := make([]planeRot, 0, n)
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= math.SmallestNonzeroFloat64+dd*2.3e-16 {
					break
				}
			}
			if m == l {
				break
			}
			if iter == 50 {
				// Convergence failure is essentially impossible for the
				// well-conditioned Laplacians and Gram matrices we feed in;
				// accept the current estimate rather than abort.
				break
			}
			g := (d[l+1] - d[l]) / (2.0 * e[l])
			r := math.Hypot(g, 1.0)
			sg := r
			if g < 0 {
				sg = -r
			}
			g = d[m] - d[l] + e[l]/(g+sg)
			s, c := 1.0, 1.0
			p := 0.0
			rots = rots[:0]
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 { //fedsc:allow floatcmp hypot underflow sentinel from the QL recurrence
					d[i+1] -= p
					e[m] = 0.0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2.0*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				rots = append(rots, planeRot{i: i, s: s, c: c})
			}
			applyRots(z, rots)
			if r == 0 && m-1 >= l { //fedsc:allow floatcmp hypot underflow sentinel from the QL recurrence
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0.0
		}
	}
}
