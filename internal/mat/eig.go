package mat

import (
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a real symmetric matrix:
// a = V * diag(Values) * Vᵀ with Values sorted ascending and the columns
// of Vectors holding the corresponding orthonormal eigenvectors.
type Eigen struct {
	Values  []float64
	Vectors *Dense
}

// SymEigen computes the full eigendecomposition of the symmetric matrix a
// by Householder tridiagonalization followed by the implicit-shift QL
// iteration. Only the lower triangle of a is read. a is not modified.
func SymEigen(a *Dense) Eigen {
	n := a.Rows()
	if a.Cols() != n {
		panic("mat: SymEigen requires a square matrix")
	}
	if n == 0 {
		return Eigen{Values: nil, Vectors: NewDense(0, 0)}
	}
	z := a.Clone()
	z.Symmetrize()
	d := make([]float64, n) // diagonal
	e := make([]float64, n) // off-diagonal
	tred2(z, d, e)
	tqli(d, e, z)
	// Sort eigenpairs ascending.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return d[idx[i]] < d[idx[j]] })
	vals := make([]float64, n)
	for k, i := range idx {
		vals[k] = d[i]
	}
	return Eigen{Values: vals, Vectors: z.SelectCols(idx)}
}

// tred2 reduces the symmetric matrix z to tridiagonal form, accumulating
// the orthogonal transform in z. On return d holds the diagonal and
// e[1..n-1] the subdiagonal (e[0] = 0). This is the classical
// Householder reduction (EISPACK TRED2).
func tred2(z *Dense, d, e []float64) {
	n := len(d)
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h, scale := 0.0, 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z.At(i, k))
			}
			if scale == 0 {
				e[i] = z.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					v := z.At(i, k) / scale
					z.Set(i, k, v)
					h += v * v
				}
				f := z.At(i, l)
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z.Set(i, l, f-g)
				f = 0.0
				for j := 0; j <= l; j++ {
					z.Set(j, i, z.At(i, j)/h)
					g = 0.0
					for k := 0; k <= j; k++ {
						g += z.At(j, k) * z.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += z.At(k, j) * z.At(i, k)
					}
					e[j] = g / h
					f += e[j] * z.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = z.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z.Set(j, k, z.At(j, k)-f*e[k]-g*z.At(i, k))
					}
				}
			}
		} else {
			e[i] = z.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0.0
	e[0] = 0.0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				g := 0.0
				for k := 0; k <= l; k++ {
					g += z.At(i, k) * z.At(k, j)
				}
				for k := 0; k <= l; k++ {
					z.Set(k, j, z.At(k, j)-g*z.At(k, i))
				}
			}
		}
		d[i] = z.At(i, i)
		z.Set(i, i, 1.0)
		for j := 0; j <= l; j++ {
			z.Set(j, i, 0.0)
			z.Set(i, j, 0.0)
		}
	}
}

// tqli applies the implicit-shift QL iteration to the tridiagonal matrix
// (d, e), accumulating eigenvectors into the columns of z (which must
// contain the transform from tred2, or the identity for a tridiagonal
// input). On return d holds the eigenvalues (unsorted).
func tqli(d, e []float64, z *Dense) {
	n := len(d)
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0.0
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= math.SmallestNonzeroFloat64+dd*2.3e-16 {
					break
				}
			}
			if m == l {
				break
			}
			if iter == 50 {
				// Convergence failure is essentially impossible for the
				// well-conditioned Laplacians and Gram matrices we feed in;
				// accept the current estimate rather than abort.
				break
			}
			g := (d[l+1] - d[l]) / (2.0 * e[l])
			r := math.Hypot(g, 1.0)
			sg := r
			if g < 0 {
				sg = -r
			}
			g = d[m] - d[l] + e[l]/(g+sg)
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0.0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2.0*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < n; k++ {
					f = z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0.0
		}
	}
}

// SymEigenPartial computes the k smallest eigenpairs of the symmetric
// matrix a. It currently performs a full decomposition and truncates; the
// signature isolates callers from that choice so a partial solver can be
// substituted for very large problems (see sparse.Lanczos).
func SymEigenPartial(a *Dense, k int) Eigen {
	eig := SymEigen(a)
	if k > len(eig.Values) {
		k = len(eig.Values)
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	return Eigen{Values: eig.Values[:k], Vectors: eig.Vectors.SelectCols(idx)}
}
