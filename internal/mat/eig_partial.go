package mat

import (
	"math"
	"math/rand"
)

// SymEigenPartial computes the k smallest eigenpairs of the symmetric
// matrix a without ever forming the full decomposition: Householder
// tridiagonalization with the reflectors stored rather than accumulated
// (tred1), Sturm-sequence bisection for the k smallest eigenvalues of
// the tridiagonal, inverse iteration for their tridiagonal
// eigenvectors — with the cluster orthogonalization repeated or
// near-equal eigenvalues require — and an O(n²k) back-transform through
// the stored reflectors. The full solver pays O(n³) twice more (the
// transform accumulation and the QL rotation stream); at k ≪ n this
// path skips both, which is the win the spectral pipeline below
// denseEigCutoff sees.
//
// Only the lower triangle of a is read; a is not modified. Eigenvalues
// are returned ascending with the matching orthonormal eigenvectors as
// columns.
func SymEigenPartial(a *Dense, k int) Eigen {
	n := a.Rows()
	if a.Cols() != n {
		panic("mat: SymEigenPartial requires a square matrix")
	}
	if k > n {
		k = n
	}
	if n == 0 || k <= 0 {
		return Eigen{Values: []float64{}, Vectors: NewDense(n, 0)}
	}
	z := a.Clone()
	z.Symmetrize()
	d := make([]float64, n)
	e := make([]float64, n)
	hs := make([]float64, n)
	tred1(z, d, e, hs)
	vals := bisectSmallest(d, e, k)
	vecs := NewDense(n, k)
	inverseIterate(d, e, vals, vecs)
	backTransform(z, hs, vecs)
	return Eigen{Values: vals, Vectors: vecs}
}

// tred1 reduces the symmetric matrix z to tridiagonal form without
// accumulating the orthogonal transform: it is the reduction loop of
// tred2 with the column writes dropped. On return d holds the diagonal,
// e[1..n-1] the subdiagonal (e[0] = 0), hs[i] the scalar h of reflector
// i (uᵀu/2 in the stored scaling; 0 marks a skipped reflector), and row
// i of z keeps the scaled reflector vector u on [0..i-1] for the
// back-transform.
func tred1(z *Dense, d, e, hs []float64) {
	n := len(d)
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		zi := z.Row(i)
		h, scale := 0.0, 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(zi[k])
			}
			if scale == 0 { //fedsc:allow floatcmp sum of |entries| is exactly zero iff the row is exactly zero
				e[i] = zi[l]
			} else {
				for k := 0; k <= l; k++ {
					zi[k] /= scale
					h += zi[k] * zi[k]
				}
				f := zi[l]
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				zi[l] = f - g
				// e[j] ← (A v)_j / h over the mirrored active block, row
				// order only — the same symv as tred2 minus the column
				// write that fed the (here absent) accumulation pass.
				lim := l + 1
				Parallel(lim, lim*lim, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						zj := z.Row(j)
						g := 0.0
						for k := 0; k <= l; k++ {
							g += zj[k] * zi[k]
						}
						e[j] = g / h
					}
				})
				f = 0.0
				for j := 0; j <= l; j++ {
					f += e[j] * zi[j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					e[j] -= hh * zi[j]
				}
				// Rank-two update A ← A − v wᵀ − w vᵀ, full rows of the
				// active block so the mirror symmetry the symv relies on
				// is preserved exactly (see tred2).
				Parallel(lim, lim*lim, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						fj := zi[j]
						gj := e[j]
						zj := z.Row(j)
						for k := 0; k <= l; k++ {
							zj[k] -= fj*e[k] + gj*zi[k]
						}
					}
				})
			}
		} else {
			e[i] = zi[l]
		}
		d[i] = h
	}
	d[0] = 0.0
	e[0] = 0.0
	// The reflector scalars live in d so far (tred2 reuses the slot);
	// move them out and read the tridiagonal diagonal off z. Row i is
	// last touched by step i+1's rank-two update, so z[i][i] is final.
	copy(hs, d)
	for i := 0; i < n; i++ {
		d[i] = z.Row(i)[i]
	}
}

// sturmCount returns the number of eigenvalues of the tridiagonal
// (d, e) strictly below x, by counting sign changes of the Sturm
// sequence q_i = (d_i − x) − e_i²/q_{i−1}.
func sturmCount(d, e []float64, x, pivmin float64) int {
	count := 0
	q := d[0] - x
	if q < 0 {
		count++
	}
	for i := 1; i < len(d); i++ {
		den := q
		if math.Abs(den) < pivmin {
			// A vanishing pivot means x is (numerically) an eigenvalue
			// of a leading block; nudging it keeps the count monotone.
			den = math.Copysign(pivmin, den)
		}
		q = d[i] - x - e[i]*e[i]/den
		if q < 0 {
			count++
		}
	}
	return count
}

// tridiagNorm bounds the spectrum of (d, e) by the largest Gershgorin
// row bound |d_i| + |e_i| + |e_{i+1}|.
func tridiagNorm(d, e []float64) float64 {
	n := len(d)
	norm := 0.0
	for i := 0; i < n; i++ {
		r := math.Abs(d[i]) + math.Abs(e[i])
		if i+1 < n {
			r += math.Abs(e[i+1])
		}
		if r > norm {
			norm = r
		}
	}
	return norm
}

// bisectSmallest returns the k smallest eigenvalues of the tridiagonal
// (d, e), ascending, each bisected to machine precision inside its
// Gershgorin interval.
func bisectSmallest(d, e []float64, k int) []float64 {
	n := len(d)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		r := math.Abs(e[i])
		if i+1 < n {
			r += math.Abs(e[i+1])
		}
		if v := d[i] - r; v < lo {
			lo = v
		}
		if v := d[i] + r; v > hi {
			hi = v
		}
	}
	norm := tridiagNorm(d, e)
	pivmin := math.SmallestNonzeroFloat64
	if norm > 0 {
		pivmin = 2.3e-16 * 2.3e-16 * norm
	}
	vals := make([]float64, k)
	a0 := lo
	for j := 0; j < k; j++ {
		a, b := a0, hi
		for it := 0; it < 128 && b-a > 2.3e-16*(math.Abs(a)+math.Abs(b))+2*pivmin; it++ {
			mid := 0.5 * (a + b)
			if sturmCount(d, e, mid, pivmin) <= j {
				a = mid
			} else {
				b = mid
			}
		}
		vals[j] = 0.5 * (a + b)
		// Eigenvalue j+1 cannot lie below eigenvalue j; shrinking the
		// interval keeps the k bisections near O(k·n·log) total.
		a0 = a
	}
	return vals
}

// inverseIterate fills column j of vecs with a unit eigenvector of the
// tridiagonal (d, e) for eigenvalue vals[j]. Eigenvalues closer than a
// cluster threshold share (numerically) one invariant subspace, so
// their shifts are spread apart by a small separation and each iterate
// is orthogonalized against the cluster members already computed — the
// standard inverse-iteration treatment of repeated eigenvalues.
func inverseIterate(d, e []float64, vals []float64, vecs *Dense) {
	n := len(d)
	norm := tridiagNorm(d, e)
	eps := 2.3e-16
	sep := eps * norm * 10
	if sep == 0 { //fedsc:allow floatcmp exact zero only for the all-zero matrix
		sep = math.SmallestNonzeroFloat64
	}
	pivmin := math.SmallestNonzeroFloat64
	if norm > 0 {
		pivmin = eps * eps * norm
	}
	// The start vectors only need to avoid being orthogonal to the
	// target eigenvector; a fixed-seed stream keeps the solver a pure
	// function of its input.
	rng := rand.New(rand.NewSource(0x5e1ec7ed))
	sol := newTridiagSolver(n)
	v := make([]float64, n)
	clusterStart := 0
	shift := math.Inf(-1)
	for j := range vals {
		if j > 0 && vals[j]-vals[j-1] > sep {
			clusterStart = j
		}
		// Within a cluster, factor at shifts separated by sep so the
		// solves stay independent even for exactly repeated eigenvalues.
		want := vals[j]
		if s := shift + sep; j > clusterStart && want < s {
			want = s
		}
		shift = want
		sol.factor(d, e, want, pivmin)
		for i := range v {
			v[i] = rng.Float64() - 0.5
		}
		for it := 0; it < 5; it++ {
			sol.solve(v)
			for c := clusterStart; c < j; c++ {
				dot := 0.0
				for i := 0; i < n; i++ {
					dot += vecs.At(i, c) * v[i]
				}
				for i := 0; i < n; i++ {
					v[i] -= dot * vecs.At(i, c)
				}
			}
			growth := Normalize(v)
			if growth == 0 { //fedsc:allow floatcmp orthogonalization annihilated the iterate; restart it
				for i := range v {
					v[i] = rng.Float64() - 0.5
				}
				continue
			}
			// Growth ~1/(eps·‖T‖) marks convergence onto the
			// eigenvector; one guarded extra pass costs O(n).
			if growth > 1/(10*eps*(norm+1)) || it >= 1 && growth > 1e6 {
				break
			}
		}
		vecs.SetCol(j, v)
	}
}

// tridiagSolver is the LU factorization of (T − λI) with partial
// pivoting, reusable across the iterations of one eigenvalue. Pivoting
// fills in a second superdiagonal, the classic tinvit shape.
type tridiagSolver struct {
	u, v1, v2, mult []float64
	swapped         []bool
}

func newTridiagSolver(n int) *tridiagSolver {
	return &tridiagSolver{
		u:       make([]float64, n),
		v1:      make([]float64, n),
		v2:      make([]float64, n),
		mult:    make([]float64, n),
		swapped: make([]bool, n),
	}
}

// factor computes the pivoted elimination of T − λI; near-zero pivots
// are replaced by pivmin so an exact eigenvalue shift still factors
// (the replacement is the perturbation inverse iteration thrives on).
func (s *tridiagSolver) factor(d, e []float64, lambda, pivmin float64) {
	n := len(d)
	sup := func(i int) float64 {
		if i+1 < n {
			return e[i+1]
		}
		return 0
	}
	cu, cv1, cv2 := d[0]-lambda, sup(0), 0.0
	for i := 0; i < n-1; i++ {
		sub := e[i+1]
		nd := d[i+1] - lambda
		ne := sup(i + 1)
		if math.Abs(sub) > math.Abs(cu) {
			s.u[i], s.v1[i], s.v2[i] = sub, nd, ne
			m := cu / sub
			s.mult[i], s.swapped[i] = m, true
			cu = cv1 - m*nd
			cv1 = cv2 - m*ne
			cv2 = 0
		} else {
			piv := cu
			if math.Abs(piv) < pivmin {
				piv = math.Copysign(pivmin, piv)
			}
			s.u[i], s.v1[i], s.v2[i] = piv, cv1, cv2
			m := sub / piv
			s.mult[i], s.swapped[i] = m, false
			cu = nd - m*cv1
			cv1 = ne - m*cv2
			cv2 = 0
		}
	}
	if math.Abs(cu) < pivmin {
		cu = math.Copysign(pivmin, cu)
	}
	s.u[n-1], s.v1[n-1], s.v2[n-1] = cu, 0, 0
}

// solve overwrites b with (T − λI)⁻¹ b using the stored factorization.
func (s *tridiagSolver) solve(b []float64) {
	n := len(b)
	for i := 0; i < n-1; i++ {
		if s.swapped[i] {
			b[i], b[i+1] = b[i+1], b[i]
		}
		b[i+1] -= s.mult[i] * b[i]
	}
	for i := n - 1; i >= 0; i-- {
		x := b[i]
		if i+1 < n {
			x -= s.v1[i] * b[i+1]
		}
		if i+2 < n {
			x -= s.v2[i] * b[i+2]
		}
		b[i] = x / s.u[i]
	}
}

// backTransform maps tridiagonal eigenvectors back to the original
// coordinates by applying the stored Householder reflectors P_i = I −
// u uᵀ/h ascending (Q = P_{n−1}⋯P_2 applied to v is P_2 v first), each
// supported on [0..i−1]. Cost O(n²k) against the O(n³) accumulation the
// full solver pays for all n vectors.
func backTransform(z *Dense, hs []float64, vecs *Dense) {
	n, k := vecs.Dims()
	Parallel(k, n*n*k, func(lo, hi int) {
		col := make([]float64, n)
		for j := lo; j < hi; j++ {
			vecs.Col(j, col)
			for i := 2; i < n; i++ {
				if hs[i] == 0 { //fedsc:allow floatcmp tred1 writes an exact 0 to mark a skipped reflector
					continue
				}
				ui := z.Row(i)
				s := 0.0
				for t := 0; t < i; t++ {
					s += ui[t] * col[t]
				}
				s /= hs[i]
				for t := 0; t < i; t++ {
					col[t] -= s * ui[t]
				}
			}
			vecs.SetCol(j, col)
		}
	})
}
