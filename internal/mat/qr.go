package mat

import "math"

// QR holds the thin QR factorization a = Q*R of an m x n matrix with
// m >= n: Q is m x n with orthonormal columns and R is n x n upper
// triangular.
type QR struct {
	Q *Dense
	R *Dense
}

// QRFactor computes the thin QR factorization of a (m >= n) by
// Householder reflections. a is not modified.
func QRFactor(a *Dense) QR {
	m, n := a.Dims()
	if m < n {
		panic("mat: QRFactor requires rows >= cols")
	}
	// Work on a copy; v-vectors are stored below the diagonal and the
	// scalar factors in tau.
	w := a.Clone()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute the Householder vector for column k.
		alpha := 0.0
		for i := k; i < m; i++ {
			v := w.At(i, k)
			alpha += v * v
		}
		alpha = math.Sqrt(alpha)
		if alpha == 0 {
			tau[k] = 0
			continue
		}
		if w.At(k, k) > 0 {
			alpha = -alpha
		}
		// v = x - alpha*e1, normalized so v[k] = 1.
		vkk := w.At(k, k) - alpha
		for i := k + 1; i < m; i++ {
			w.Set(i, k, w.At(i, k)/vkk)
		}
		tau[k] = -vkk / alpha
		w.Set(k, k, alpha)
		// Apply the reflector to the trailing columns.
		for j := k + 1; j < n; j++ {
			s := w.At(k, j)
			for i := k + 1; i < m; i++ {
				s += w.At(i, k) * w.At(i, j)
			}
			s *= tau[k]
			w.Set(k, j, w.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				w.Set(i, j, w.At(i, j)-s*w.At(i, k))
			}
		}
	}
	// Extract R.
	r := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, w.At(i, j))
		}
	}
	// Accumulate Q by applying the reflectors to the identity (thin).
	q := NewDense(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		if tau[k] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			s := q.At(k, j)
			for i := k + 1; i < m; i++ {
				s += w.At(i, k) * q.At(i, j)
			}
			s *= tau[k]
			q.Set(k, j, q.At(k, j)-s)
			for i := k + 1; i < m; i++ {
				q.Set(i, j, q.At(i, j)-s*w.At(i, k))
			}
		}
	}
	return QR{Q: q, R: r}
}

// Orthonormalize returns a matrix with orthonormal columns spanning the
// column space of a, discarding numerically dependent columns. The rank
// detected at relative tolerance tol (e.g. 1e-10) determines the output
// width.
func Orthonormalize(a *Dense, tol float64) *Dense {
	qr := QRFactor(a)
	n := a.Cols()
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(qr.R.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag == 0 {
		return NewDense(a.Rows(), 0)
	}
	keep := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if math.Abs(qr.R.At(i, i)) > tol*maxDiag {
			keep = append(keep, i)
		}
	}
	return qr.Q.SelectCols(keep)
}

// SolveUpperTriangular solves R*x = b for upper-triangular R by back
// substitution. Panics if R has a zero diagonal entry.
func SolveUpperTriangular(r *Dense, b []float64) []float64 {
	n := r.Rows()
	if r.Cols() != n || len(b) != n {
		panic("mat: SolveUpperTriangular dimension mismatch")
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := r.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 {
			panic("mat: SolveUpperTriangular singular matrix")
		}
		x[i] = s / d
	}
	return x
}

// LeastSquares returns the minimizer of ||a*x - b||₂ via thin QR.
// a must have at least as many rows as columns and full column rank.
func LeastSquares(a *Dense, b []float64) []float64 {
	qr := QRFactor(a)
	qtb := MulTVec(qr.Q, b)
	return SolveUpperTriangular(qr.R, qtb)
}
