package mat

import "math"

// QR holds the thin QR factorization a = Q*R of an m x n matrix with
// m >= n: Q is m x n with orthonormal columns and R is n x n upper
// triangular.
type QR struct {
	Q *Dense
	R *Dense
}

// QRFactor computes the thin QR factorization of a (m >= n) by
// Householder reflections. a is not modified.
//
// Internally the factorization runs on the transpose, so each column of a
// is a contiguous row of the workspace: computing a reflector, applying
// it to the trailing columns, and accumulating Q all stream over
// contiguous memory instead of striding down column entries.
func QRFactor(a *Dense) QR {
	m, n := a.Dims()
	if m < n {
		panic("mat: QRFactor requires rows >= cols")
	}
	// Row j of wt is column j of a; v-vectors are stored past the diagonal
	// position of each row and the scalar factors in tau.
	wt := a.T()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute the Householder vector for column k.
		wk := wt.Row(k)
		alpha := 0.0
		for i := k; i < m; i++ {
			alpha += wk[i] * wk[i]
		}
		alpha = math.Sqrt(alpha)
		if alpha == 0 { //fedsc:allow floatcmp column norm is exactly zero iff the column is exactly zero
			tau[k] = 0
			continue
		}
		if wk[k] > 0 {
			alpha = -alpha
		}
		// v = x - alpha*e1, normalized so v[k] = 1.
		vkk := wk[k] - alpha
		for i := k + 1; i < m; i++ {
			wk[i] /= vkk
		}
		tau[k] = -vkk / alpha
		wk[k] = alpha
		// Apply the reflector to the trailing columns; each trailing
		// column is updated independently, so the loop blocks across
		// workers for wide factorizations.
		tk := tau[k]
		Parallel(n-k-1, (n-k)*(m-k)*2, func(lo, hi int) {
			for j := k + 1 + lo; j < k+1+hi; j++ {
				wj := wt.Row(j)
				s := wj[k]
				for i := k + 1; i < m; i++ {
					s += wk[i] * wj[i]
				}
				s *= tk
				wj[k] -= s
				for i := k + 1; i < m; i++ {
					wj[i] -= s * wk[i]
				}
			}
		})
	}
	// Extract R.
	r := NewDense(n, n)
	for i := 0; i < n; i++ {
		ri := r.Row(i)
		for j := i; j < n; j++ {
			ri[j] = wt.Row(j)[i]
		}
	}
	// Accumulate thin Q by applying the reflectors to the identity,
	// also in transposed layout: row j of qt is column j of Q.
	qt := NewDense(n, m)
	for j := 0; j < n; j++ {
		qt.Row(j)[j] = 1
	}
	for k := n - 1; k >= 0; k-- {
		if tau[k] == 0 { //fedsc:allow floatcmp tau=0 is the exact identity-reflector sentinel written above
			continue
		}
		wk := wt.Row(k)
		tk := tau[k]
		Parallel(n, n*(m-k)*2, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				qj := qt.Row(j)
				s := qj[k]
				for i := k + 1; i < m; i++ {
					s += wk[i] * qj[i]
				}
				s *= tk
				qj[k] -= s
				for i := k + 1; i < m; i++ {
					qj[i] -= s * wk[i]
				}
			}
		})
	}
	return QR{Q: qt.T(), R: r}
}

// Orthonormalize returns a matrix with orthonormal columns spanning the
// column space of a, discarding numerically dependent columns. The rank
// detected at relative tolerance tol (e.g. 1e-10) determines the output
// width.
func Orthonormalize(a *Dense, tol float64) *Dense {
	qr := QRFactor(a)
	n := a.Cols()
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(qr.R.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag == 0 { //fedsc:allow floatcmp max |R diagonal| is exactly zero iff the matrix is exactly zero
		return NewDense(a.Rows(), 0)
	}
	keep := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if math.Abs(qr.R.At(i, i)) > tol*maxDiag {
			keep = append(keep, i)
		}
	}
	return qr.Q.SelectCols(keep)
}

// SolveUpperTriangular solves R*x = b for upper-triangular R by back
// substitution. Panics if R has a zero diagonal entry.
func SolveUpperTriangular(r *Dense, b []float64) []float64 {
	n := r.Rows()
	if r.Cols() != n || len(b) != n {
		panic("mat: SolveUpperTriangular dimension mismatch")
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		row := r.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 { //fedsc:allow floatcmp only an exactly zero pivot makes the back-substitution undefined
			panic("mat: SolveUpperTriangular singular matrix")
		}
		x[i] = s / d
	}
	return x
}

// LeastSquares returns the minimizer of ||a*x - b||₂ via thin QR.
// a must have at least as many rows as columns and full column rank.
func LeastSquares(a *Dense, b []float64) []float64 {
	qr := QRFactor(a)
	qtb := MulTVec(qr.Q, b)
	return SolveUpperTriangular(qr.R, qtb)
}
