package mat

import (
	"math"
	"math/rand"
)

// SVD holds a thin singular value decomposition a = U * diag(S) * Vᵀ.
// S is sorted descending; U is m x r and V is n x r where r = min(m, n).
type SVD struct {
	U *Dense
	S []float64
	V *Dense
}

// SVDFactor computes the thin SVD of a by the one-sided Jacobi method,
// which orthogonalizes the columns of a working copy with plane
// rotations. The working copy is held transposed so every rotation
// streams over two contiguous rows, and each sweep visits the column
// pairs in round-robin (cyclic-pairs) order: the pairs of one round are
// disjoint, so their rotations commute exactly and run across
// GOMAXPROCS workers without changing the result. a is not modified.
func SVDFactor(a *Dense) SVD {
	m, n := a.Dims()
	if m < n {
		// Jacobi works on columns; run on the transpose and swap factors.
		s := SVDFactor(a.T())
		return SVD{U: s.V, S: s.S, V: s.U}
	}
	return jacobiSVD(a, true)
}

// SingularValues returns the singular values of a, sorted descending.
// It runs the same one-sided Jacobi iteration as SVDFactor but skips
// the right-factor accumulation, which callers that only need the
// spectrum (principal angles, rank probes) would pay for nothing.
func SingularValues(a *Dense) []float64 {
	if a.Rows() < a.Cols() {
		a = a.T()
	}
	return jacobiSVD(a, false).S
}

// jacobiSVD is the one-sided Jacobi kernel behind SVDFactor and
// SingularValues. It requires m >= n; wantV selects accumulation of the
// right singular vectors (when false the returned SVD has V == nil and
// U is still produced).
func jacobiSVD(a *Dense, wantV bool) SVD {
	m, n := a.Dims()
	ut := a.T() // row j holds working column j of a
	var vt *Dense
	if wantV {
		vt = Identity(n) // row j holds column j of V
	}
	const maxSweeps = 60
	const eps = 1e-14
	// Round-robin tournament over the columns: N slots (one bye slot when
	// n is odd), N-1 rounds per sweep, N/2 disjoint pairs per round.
	N := n
	if N%2 == 1 {
		N++
	}
	pairs := N / 2
	offs := make([]float64, pairs)
	rotatePair := func(p, q int) float64 {
		up, uq := ut.Row(p), ut.Row(q)
		var alpha, beta, gamma float64
		for i, v := range up {
			w := uq[i]
			alpha += v * v
			beta += w * w
			gamma += v * w
		}
		if alpha == 0 || beta == 0 { //fedsc:allow floatcmp column norms are exactly zero iff a column is exactly zero
			return 0
		}
		if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) {
			return 0
		}
		// Jacobi rotation zeroing the (p,q) Gram entry.
		zeta := (beta - alpha) / (2.0 * gamma)
		var t float64
		if zeta > 0 {
			t = 1.0 / (zeta + math.Sqrt(1.0+zeta*zeta))
		} else {
			t = -1.0 / (-zeta + math.Sqrt(1.0+zeta*zeta))
		}
		c := 1.0 / math.Sqrt(1.0+t*t)
		s := c * t
		for i, v := range up {
			w := uq[i]
			up[i] = c*v - s*w
			uq[i] = s*v + c*w
		}
		if vt != nil {
			vp, vq := vt.Row(p), vt.Row(q)
			for i, v := range vp {
				w := vq[i]
				vp[i] = c*v - s*w
				vq[i] = s*v + c*w
			}
		}
		return math.Abs(gamma)
	}
	workPerRound := pairs * (7*m + 4*n)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for round := 0; round < N-1; round++ {
			Parallel(pairs, workPerRound, func(lo, hi int) {
				for slot := lo; slot < hi; slot++ {
					p, q := roundRobinPair(round, slot, N)
					if p >= n || q >= n { // bye slot for odd n
						offs[slot] = 0
						continue
					}
					offs[slot] = rotatePair(p, q)
				}
			})
			// Sum the off-diagonal mass in slot order so the convergence
			// test is deterministic regardless of scheduling.
			for _, v := range offs {
				off += v
			}
		}
		if off == 0 { //fedsc:allow floatcmp early exit when every off-diagonal is exactly zero; the eps test above handles the rest
			break
		}
	}
	// Singular values are the norms of the rotated columns (rows of ut).
	sv := make([]float64, n)
	for j := 0; j < n; j++ {
		sv[j] = Norm2(ut.Row(j))
	}
	// Sort descending, permuting U and V accordingly, and normalize U.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ { // simple selection sort: n is small
		best := i
		for j := i + 1; j < n; j++ {
			if sv[order[j]] > sv[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	s := make([]float64, n)
	u := NewDense(m, n)
	for k, j := range order {
		s[k] = sv[j]
		inv := 0.0
		if sv[j] > 0 {
			inv = 1 / sv[j]
		}
		for i, v := range ut.Row(j) {
			u.data[i*n+k] = v * inv
		}
	}
	var v *Dense
	if wantV {
		v = NewDense(n, n)
		for k, j := range order {
			for i, val := range vt.Row(j) {
				v.data[i*n+k] = val
			}
		}
	}
	return SVD{U: u, S: s, V: v}
}

// roundRobinPair returns the column pair of the given slot in the given
// round of the circle-method tournament over N (even) slots: slot 0 is
// fixed, the others rotate, and slot i meets slot N-1-i.
func roundRobinPair(round, slot, N int) (int, int) {
	seat := func(i int) int {
		if i == 0 {
			return 0
		}
		return 1 + (i-1+round)%(N-1)
	}
	p, q := seat(slot), seat(N-1-slot)
	if p > q {
		p, q = q, p
	}
	return p, q
}

// Dispatch constants for TruncatedSVD. The randomized range finder pays
// off once the sketch width k + oversampling fits well inside the
// spectrum; below that the exact solvers are both cheaper and simpler.
const (
	randSVDOversample = 8
	randSVDMinDim     = 24
	randSVDMaxIters   = 8
	randSVDTol        = 1e-12
	// randSVDSeed seeds the Gaussian sketch. A fixed seed keeps
	// TruncatedSVD a pure, deterministic function of its input, which the
	// federated pipeline relies on for reproducible runs under a fixed
	// top-level *rand.Rand seed.
	randSVDSeed = 0x5ce1e55
)

// TruncatedSVD returns the k leading left singular vectors and singular
// values of a, matching the paper's use of truncated SVD for per-cluster
// basis estimation (footnote 3). For k well below min(m, n) it uses a
// Halko-style randomized range finder (Gaussian sketch plus blocked
// power iterations with QR re-orthonormalization, stopped early once the
// sketched spectrum is stationary); small or near-square problems fall
// back to the exact solvers (Gram-matrix eigendecomposition for tall
// matrices, one-sided Jacobi otherwise). The result is deterministic.
func TruncatedSVD(a *Dense, k int) (u *Dense, s []float64) {
	m, n := a.Dims()
	r := m
	if n < r {
		r = n
	}
	if k > r {
		k = r
	}
	if k == 0 {
		return NewDense(m, 0), nil
	}
	if r >= randSVDMinDim && 2*(k+randSVDOversample) <= r {
		return randomizedSVD(a, k)
	}
	if n <= m {
		// Eigendecomposition of the n x n Gram matrix: a = U S Vᵀ with
		// aᵀa = V S² Vᵀ, U = a V S⁻¹.
		g := Gram(a)
		eig := SymEigen(g)
		idx := make([]int, 0, k)
		vals := make([]float64, 0, k)
		for i := n - 1; i >= 0 && len(idx) < k; i-- { // largest first
			idx = append(idx, i)
			ev := eig.Values[i]
			if ev < 0 {
				ev = 0
			}
			vals = append(vals, math.Sqrt(ev))
		}
		v := eig.Vectors.SelectCols(idx)
		u := Mul(a, v)
		// Normalize the columns of U in one pass over the matrix instead
		// of a per-column extract/normalize/write round trip.
		norms := ColNorms(u)
		for j, nv := range norms {
			if nv > 0 {
				norms[j] = 1 / nv
			}
		}
		for i := 0; i < m; i++ {
			row := u.Row(i)
			for j, inv := range norms {
				if inv > 0 {
					row[j] *= inv
				}
			}
		}
		return u, vals
	}
	svd := SVDFactor(a)
	return svd.U.SliceCols(0, k), svd.S[:k]
}

// randomizedSVD computes the k leading left singular pairs by subspace
// iteration on a Gaussian sketch (Halko, Martinsson & Tropp 2011): draw
// Ω ~ N(0,1)^{n x l} with l = k + oversampling, orthonormalize Y = AΩ,
// and refine with power iterations Q ← orth(A·orth(AᵀQ)) until the
// captured energy ‖QᵀA‖_F — which the projection Z = AᵀQ yields for free —
// is stationary. Column-wise estimates converge only at the slow per-mode
// rate σⱼ₊₁/σⱼ, but the Frobenius capture is invariant to rotations inside
// range(Q) and stabilizes as soon as the subspace itself has: for an
// exact-rank input it is stationary after a single power step. The
// transposed projection Z = Bᵀ with B = QᵀA is already in hand when the
// loop stops, so its small exact SVD delivers the leading factors on
// range(Q) with no further products: Z = Uz Sz Vzᵀ gives A ≈ (Q Vz) Sz Uzᵀ.
func randomizedSVD(a *Dense, k int) (*Dense, []float64) {
	n := a.Cols()
	l := k + randSVDOversample // dispatch guarantees l <= min(m,n)/2
	rng := rand.New(rand.NewSource(randSVDSeed))
	omega := RandomGaussian(n, l, rng)
	q := QRFactor(Mul(a, omega)).Q // m x l
	prev := 0.0
	var z *Dense
	for it := 0; ; it++ {
		z = MulTA(a, q) // n x l, z = Bᵀ for the current range estimate
		captured := 0.0
		for i := 0; i < n; i++ {
			for _, v := range z.Row(i) {
				captured += v * v
			}
		}
		if it == randSVDMaxIters || (it > 0 && captured-prev <= randSVDTol*captured) {
			break
		}
		prev = captured
		q = QRFactor(Mul(a, QRFactor(z).Q)).Q
	}
	sz := SVDFactor(z) // z is tall (l <= n/2), so this is a small Jacobi run
	u := Mul(q, sz.V.SliceCols(0, k))
	return u, sz.S[:k]
}

// NumericalRank estimates the number of singular values of a exceeding
// tol * max singular value. It runs Householder QR with column pivoting
// and stops as soon as the pivot magnitude |R_kk| — which tracks σ_k
// within a modest polynomial factor (rank-revealing QR) — falls to
// tol·|R₀₀|, so a rank-d matrix costs O(m·n·d) instead of a full
// factorization. For the decisively gapped spectra this code probes
// (exact subspace data against tolerances like 1e-9) the count matches
// the singular-value definition.
func NumericalRank(a *Dense, tol float64) int {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return 0
	}
	// Work on rows-as-columns of the taller orientation so every column
	// operation is contiguous; rank is transpose-invariant.
	var w *Dense
	if m >= n {
		w = a.T()
	} else {
		w = a.Clone()
	}
	nc := w.Rows() // columns of the factored matrix
	vl := w.Cols() // their length (>= nc)
	norms2 := make([]float64, nc)
	orig2 := make([]float64, nc)
	for j := 0; j < nc; j++ {
		row := w.Row(j)
		norms2[j] = Dot(row, row)
		orig2[j] = norms2[j]
	}
	perm := make([]int, nc)
	for i := range perm {
		perm[i] = i
	}
	var sigma0 float64
	for k := 0; k < nc; k++ {
		// Pivot: bring the largest remaining column (by tracked tail
		// norm) to position k.
		best := k
		for j := k + 1; j < nc; j++ {
			if norms2[perm[j]] > norms2[perm[best]] {
				best = j
			}
		}
		perm[k], perm[best] = perm[best], perm[k]
		col := w.Row(perm[k])
		alpha := 0.0
		for i := k; i < vl; i++ {
			alpha += col[i] * col[i]
		}
		alpha = math.Sqrt(alpha)
		if k == 0 {
			sigma0 = alpha
			if sigma0 == 0 { //fedsc:allow floatcmp leading pivot norm is exactly zero iff the matrix is exactly zero
				return 0
			}
		}
		if alpha <= tol*sigma0 {
			return k
		}
		if k == vl-1 || k == nc-1 {
			// Last possible pivot accepted; no trailing block remains.
			return k + 1
		}
		// Householder vector for the pivot column, normalized so v[k]=1.
		if col[k] > 0 {
			alpha = -alpha
		}
		vkk := col[k] - alpha
		col[k] = alpha
		for i := k + 1; i < vl; i++ {
			col[i] /= vkk
		}
		tau := -vkk / alpha
		// Apply the reflector to the trailing columns and downdate their
		// tail norms, recomputing when cancellation makes the downdated
		// value untrustworthy.
		for jj := k + 1; jj < nc; jj++ {
			pj := perm[jj]
			cj := w.Row(pj)
			s := cj[k]
			for i := k + 1; i < vl; i++ {
				s += col[i] * cj[i]
			}
			s *= tau
			cj[k] -= s
			for i := k + 1; i < vl; i++ {
				cj[i] -= s * col[i]
			}
			t := norms2[pj] - cj[k]*cj[k]
			if t < 1e-10*orig2[pj] {
				t = 0
				for i := k + 1; i < vl; i++ {
					t += cj[i] * cj[i]
				}
			}
			norms2[pj] = t
		}
	}
	return nc
}
