package mat

import "math"

// SVD holds a thin singular value decomposition a = U * diag(S) * Vᵀ.
// S is sorted descending; U is m x r and V is n x r where r = min(m, n).
type SVD struct {
	U *Dense
	S []float64
	V *Dense
}

// SVDFactor computes the thin SVD of a by the one-sided Jacobi method,
// which orthogonalizes the columns of a working copy with plane
// rotations. It is simple, numerically robust and accurate for the
// moderate sizes that arise in subspace clustering. a is not modified.
func SVDFactor(a *Dense) SVD {
	m, n := a.Dims()
	if m < n {
		// Jacobi works on columns; run on the transpose and swap factors.
		s := SVDFactor(a.T())
		return SVD{U: s.V, S: s.S, V: s.U}
	}
	u := a.Clone()
	v := Identity(n)
	const maxSweeps = 60
	eps := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Column inner products.
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					alpha += up * up
					beta += uq * uq
					gamma += up * uq
				}
				if alpha == 0 || beta == 0 {
					continue
				}
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) {
					continue
				}
				off += math.Abs(gamma)
				// Jacobi rotation zeroing the (p,q) Gram entry.
				zeta := (beta - alpha) / (2.0 * gamma)
				var t float64
				if zeta > 0 {
					t = 1.0 / (zeta + math.Sqrt(1.0+zeta*zeta))
				} else {
					t = -1.0 / (-zeta + math.Sqrt(1.0+zeta*zeta))
				}
				c := 1.0 / math.Sqrt(1.0+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					u.Set(i, p, c*up-s*uq)
					u.Set(i, q, s*up+c*uq)
				}
				for i := 0; i < n; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if off == 0 {
			break
		}
	}
	// Singular values are the column norms of the rotated matrix.
	sv := make([]float64, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			s += u.At(i, j) * u.At(i, j)
		}
		sv[j] = math.Sqrt(s)
	}
	// Sort descending, permuting U and V accordingly, and normalize U.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ { // simple selection sort: n is small
		best := i
		for j := i + 1; j < n; j++ {
			if sv[order[j]] > sv[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	s := make([]float64, n)
	for k, j := range order {
		s[k] = sv[j]
	}
	uo := u.SelectCols(order)
	vo := v.SelectCols(order)
	for j := 0; j < n; j++ {
		if s[j] > 0 {
			inv := 1 / s[j]
			for i := 0; i < m; i++ {
				uo.Set(i, j, uo.At(i, j)*inv)
			}
		}
	}
	return SVD{U: uo, S: s, V: vo}
}

// TruncatedSVD returns the k leading left singular vectors and singular
// values of a. For tall matrices with few columns it uses the Jacobi SVD
// directly; for wide matrices it goes through the smaller Gram matrix,
// matching the paper's use of truncated SVD for per-cluster basis
// estimation (footnote 3).
func TruncatedSVD(a *Dense, k int) (u *Dense, s []float64) {
	m, n := a.Dims()
	r := m
	if n < r {
		r = n
	}
	if k > r {
		k = r
	}
	if k == 0 {
		return NewDense(m, 0), nil
	}
	if n <= m {
		// Eigendecomposition of the n x n Gram matrix: a = U S Vᵀ with
		// aᵀa = V S² Vᵀ, U = a V S⁻¹.
		g := Gram(a)
		eig := SymEigen(g)
		idx := make([]int, 0, k)
		vals := make([]float64, 0, k)
		for i := n - 1; i >= 0 && len(idx) < k; i-- { // largest first
			idx = append(idx, i)
			ev := eig.Values[i]
			if ev < 0 {
				ev = 0
			}
			vals = append(vals, math.Sqrt(ev))
		}
		v := eig.Vectors.SelectCols(idx)
		u := Mul(a, v)
		for j := 0; j < len(idx); j++ {
			col := make([]float64, m)
			u.Col(j, col)
			Normalize(col)
			u.SetCol(j, col)
		}
		return u, vals
	}
	svd := SVDFactor(a)
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	return svd.U.SelectCols(idx), svd.S[:k]
}

// NumericalRank returns the number of singular values of a exceeding
// tol * max singular value.
func NumericalRank(a *Dense, tol float64) int {
	if a.Rows() == 0 || a.Cols() == 0 {
		return 0
	}
	svd := SVDFactor(a)
	if len(svd.S) == 0 || svd.S[0] == 0 {
		return 0
	}
	rank := 0
	for _, s := range svd.S {
		if s > tol*svd.S[0] {
			rank++
		}
	}
	return rank
}
