package mat

import "math/rand"

// RandomGaussian returns an r x c matrix of iid standard normal entries
// drawn from rng.
func RandomGaussian(r, c int, rng *rand.Rand) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// RandomOrthonormal returns an n x d matrix with orthonormal columns
// drawn from the Haar (rotation-invariant) distribution, obtained as the
// Q factor of a Gaussian matrix. Requires d <= n.
func RandomOrthonormal(n, d int, rng *rand.Rand) *Dense {
	if d > n {
		panic("mat: RandomOrthonormal requires d <= n")
	}
	g := RandomGaussian(n, d, rng)
	qr := QRFactor(g)
	// Fix signs so the distribution is exactly Haar: make diag(R) > 0.
	for j := 0; j < d; j++ {
		if qr.R.At(j, j) < 0 {
			for i := 0; i < n; i++ {
				qr.Q.Set(i, j, -qr.Q.At(i, j))
			}
		}
	}
	return qr.Q
}

// RandomUnitVector returns a vector drawn uniformly from the unit sphere
// in R^n.
func RandomUnitVector(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for {
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		if Normalize(v) > 0 {
			return v
		}
	}
}
