// Package mat provides the dense linear-algebra substrate used throughout
// the Fed-SC reproduction: a row-major matrix type with multiplication,
// decompositions (QR, symmetric eigendecomposition, SVD) and the small set
// of vector kernels the clustering algorithms need.
//
// Everything is implemented from scratch on the standard library. The
// decompositions follow the classical algorithms (Householder QR,
// tridiagonalization + implicit-shift QL for symmetric eigenproblems,
// one-sided Jacobi for the SVD) and are dimensioned for the matrix sizes
// that arise in subspace clustering: ambient dimensions up to a few
// thousand and cluster sizes up to a few thousand points.
package mat

import (
	"fmt"
	"math"
)

// Dense is a dense, row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Dense values are mutable; methods
// that return a new matrix say so explicitly, all others modify in place.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed r x c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps data (row-major, length r*c) in a Dense without copying.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns the i-th row as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the underlying row-major storage (aliased, not copied).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// Zero sets every element to zero.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Col copies column j into dst (allocating when dst is nil) and returns it.
func (m *Dense) Col(j int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.rows)
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = m.data[i*m.cols+j]
	}
	return dst
}

// SetCol assigns v to column j.
func (m *Dense) SetCol(j int, v []float64) {
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// ColView is a lightweight accessor for a matrix column.
type ColView struct {
	m *Dense
	j int
}

// ColAt returns a view of column j.
func (m *Dense) ColAt(j int) ColView { return ColView{m: m, j: j} }

// Len returns the number of entries in the column.
func (v ColView) Len() int { return v.m.rows }

// At returns the i-th entry of the column.
func (v ColView) At(i int) float64 { return v.m.data[i*v.m.cols+v.j] }

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// SliceCols returns a new matrix containing columns [j0, j1) of m.
func (m *Dense) SliceCols(j0, j1 int) *Dense {
	if j0 < 0 || j1 > m.cols || j0 > j1 {
		panic(fmt.Sprintf("mat: column slice [%d,%d) out of range for %d cols", j0, j1, m.cols))
	}
	s := NewDense(m.rows, j1-j0)
	for i := 0; i < m.rows; i++ {
		copy(s.Row(i), m.Row(i)[j0:j1])
	}
	return s
}

// SelectCols returns a new matrix whose columns are m's columns at idx,
// in order.
func (m *Dense) SelectCols(idx []int) *Dense {
	s := NewDense(m.rows, len(idx))
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		srow := s.Row(i)
		for k, j := range idx {
			srow[k] = row[j]
		}
	}
	return s
}

// HStack returns the horizontal concatenation [a b ...] of matrices with
// equal row counts.
func HStack(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return NewDense(0, 0)
	}
	r := ms[0].rows
	c := 0
	for _, m := range ms {
		if m.rows != r {
			panic(fmt.Sprintf("mat: HStack row mismatch %d vs %d", m.rows, r))
		}
		c += m.cols
	}
	out := NewDense(r, c)
	for i := 0; i < r; i++ {
		dst := out.Row(i)
		off := 0
		for _, m := range ms {
			copy(dst[off:off+m.cols], m.Row(i))
			off += m.cols
		}
	}
	return out
}

// Scale multiplies every element by a.
func (m *Dense) Scale(a float64) {
	for i := range m.data {
		m.data[i] *= a
	}
}

// AddScaled adds a*b to m element-wise. Panics on dimension mismatch.
func (m *Dense) AddScaled(a float64, b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic("mat: AddScaled dimension mismatch")
	}
	for i, v := range b.data {
		m.data[i] += a * v
	}
}

// Symmetrize overwrites m with (m + mᵀ)/2. Panics unless m is square.
func (m *Dense) Symmetrize() {
	if m.rows != m.cols {
		panic("mat: Symmetrize requires a square matrix")
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			v := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equalish reports whether a and b have the same shape and all elements
// within tol of each other.
func Equalish(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging (small matrices only).
func (m *Dense) String() string {
	s := fmt.Sprintf("Dense %dx%d\n", m.rows, m.cols)
	for i := 0; i < m.rows && i < 12; i++ {
		for j := 0; j < m.cols && j < 12; j++ {
			s += fmt.Sprintf("% .4f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
