package mat

import (
	"math"
	"math/rand"
	"testing"
)

// gappedMatrix builds a = U diag(s) Vᵀ with orthonormal factors, so the
// leading subspaces and singular values are known by construction.
func gappedMatrix(m, n int, s []float64, rng *rand.Rand) *Dense {
	r := len(s)
	u := RandomOrthonormal(m, r, rng)
	v := RandomOrthonormal(n, r, rng)
	us := u.Clone()
	for i := 0; i < m; i++ {
		row := us.Row(i)
		for j := range row {
			row[j] *= s[j]
		}
	}
	return MulBT(us, v)
}

// minPrincipalCosine returns the smallest canonical-angle cosine between
// the column spans of the orthonormal bases u and v.
func minPrincipalCosine(u, v *Dense) float64 {
	sv := SingularValues(MulTA(u, v))
	min := math.Inf(1)
	for _, c := range sv {
		if c < min {
			min = c
		}
	}
	return min
}

// gappedSpectrum returns k dominant values in [1, 2] followed by a tail
// three orders of magnitude below, so the leading k-dimensional subspace
// is decisively determined.
func gappedSpectrum(k, total int) []float64 {
	s := make([]float64, total)
	for i := 0; i < k; i++ {
		s[i] = 2 - float64(i)/float64(k)
	}
	for i := k; i < total; i++ {
		s[i] = 1e-3 / float64(i-k+1)
	}
	return s
}

// TestTruncatedSVDMatchesExact checks the property the randomized range
// finder must satisfy: on matrices with a spectral gap, its subspace and
// singular values agree with the exact Jacobi factorization across tall,
// wide and square shapes.
func TestTruncatedSVDMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const k = 5
	for _, shape := range []struct {
		name string
		m, n int
	}{
		{"tall", 120, 60},
		{"wide", 60, 120},
		{"square", 64, 64},
	} {
		r := shape.m
		if shape.n < r {
			r = shape.n
		}
		if r < randSVDMinDim || 2*(k+randSVDOversample) > r {
			t.Fatalf("%s: shape does not exercise the randomized path", shape.name)
		}
		a := gappedMatrix(shape.m, shape.n, gappedSpectrum(k, r), rng)
		u, s := TruncatedSVD(a, k)
		exact := SVDFactor(a)
		if u.Rows() != shape.m || u.Cols() != k || len(s) != k {
			t.Fatalf("%s: got %dx%d basis, %d values", shape.name, u.Rows(), u.Cols(), len(s))
		}
		for j := 0; j < k; j++ {
			if rel := math.Abs(s[j]-exact.S[j]) / exact.S[0]; rel > 1e-7 {
				t.Errorf("%s: sigma_%d = %g, exact %g (rel err %g)", shape.name, j, s[j], exact.S[j], rel)
			}
		}
		if cos := minPrincipalCosine(u, exact.U.SliceCols(0, k)); cos < 1-1e-7 {
			t.Errorf("%s: worst principal cosine %g", shape.name, cos)
		}
		// The basis must be orthonormal on its own terms too.
		gram := MulTA(u, u)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(gram.At(i, j)-want) > 1e-10 {
					t.Fatalf("%s: UᵀU[%d,%d] = %g", shape.name, i, j, gram.At(i, j))
				}
			}
		}
	}
}

// TestTruncatedSVDRankDeficient checks the randomized path on an exactly
// rank-deficient matrix: the recovered subspace is the column space and
// the trailing singular value estimates match the exact ones.
func TestTruncatedSVDRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const rank = 5
	basis := RandomOrthonormal(100, rank, rng)
	coef := RandomGaussian(rank, 40, rng)
	a := Mul(basis, coef)
	u, s := TruncatedSVD(a, rank)
	if cos := minPrincipalCosine(u, basis); cos < 1-1e-9 {
		t.Errorf("rank-deficient: worst principal cosine vs true basis %g", cos)
	}
	exact := SVDFactor(a)
	for j := 0; j < rank; j++ {
		if rel := math.Abs(s[j]-exact.S[j]) / exact.S[0]; rel > 1e-9 {
			t.Errorf("rank-deficient: sigma_%d = %g, exact %g", j, s[j], exact.S[j])
		}
	}
}

// TestTruncatedSVDEdgeRanks covers the k extremes: k = 0 yields an empty
// basis, and k = min(m, n) (where no sketch can be thinner than the
// matrix) falls back to an exact factorization.
func TestTruncatedSVDEdgeRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := RandomGaussian(30, 12, rng)
	u, s := TruncatedSVD(a, 0)
	if u.Rows() != 30 || u.Cols() != 0 || len(s) != 0 {
		t.Fatalf("k=0: got %dx%d basis, %d values", u.Rows(), u.Cols(), len(s))
	}
	u, s = TruncatedSVD(a, 12)
	exact := SVDFactor(a)
	if u.Cols() != 12 || len(s) != 12 {
		t.Fatalf("k=min: got %d columns, %d values", u.Cols(), len(s))
	}
	for j := range s {
		if rel := math.Abs(s[j]-exact.S[j]) / exact.S[0]; rel > 1e-10 {
			t.Errorf("k=min: sigma_%d = %g, exact %g", j, s[j], exact.S[j])
		}
	}
	if cos := minPrincipalCosine(u, exact.U); cos < 1-1e-9 {
		t.Errorf("k=min: worst principal cosine %g", cos)
	}
	// Requests beyond min(m, n) clamp rather than panic.
	u, s = TruncatedSVD(a, 40)
	if u.Cols() != 12 || len(s) != 12 {
		t.Fatalf("k>min: got %d columns, %d values", u.Cols(), len(s))
	}
}

// TestTruncatedSVDDeterministic checks that the randomized path is a pure
// function of its input: the sketch uses a fixed internal seed, so
// repeated calls are bitwise identical — the property the federated
// pipeline relies on for reproducible runs under a fixed top-level seed.
func TestTruncatedSVDDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := gappedMatrix(90, 50, gappedSpectrum(6, 50), rng)
	u1, s1 := TruncatedSVD(a, 6)
	u2, s2 := TruncatedSVD(a, 6)
	for j := range s1 {
		if s1[j] != s2[j] {
			t.Fatalf("sigma_%d differs across calls: %v vs %v", j, s1[j], s2[j])
		}
	}
	d1, d2 := u1.Data(), u2.Data()
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("basis entry %d differs across calls: %v vs %v", i, d1[i], d2[i])
		}
	}
}
