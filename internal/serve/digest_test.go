package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"fedsc/internal/store"
)

// TestModelsExposeDigestAcrossRollback is the fleet-rollback
// observability regression test: /v1/models must carry the full store
// digest of every load, so retagging a manifest name back to an
// earlier artifact (a rollback) is visible from the serving side as
// the active entry's digest reverting to the prior content address.
func TestModelsExposeDigestAcrossRollback(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	v1 := axisModel(t, []int{0, 1})
	v2 := axisModel(t, []int{1, 0})
	digest1, err := st.PutTagged("fleet", v1)
	if err != nil {
		t.Fatalf("put v1: %v", err)
	}
	reg := NewRegistry()
	if _, err := reg.UseStore(st); err != nil {
		t.Fatalf("use store: %v", err)
	}

	activeDigest := func() string {
		t.Helper()
		for _, mi := range reg.Models() {
			if mi.Active && mi.Name == "fleet" {
				if mi.Digest == "" {
					t.Fatal("active entry has no digest")
				}
				return mi.Digest
			}
		}
		t.Fatal("no active fleet entry in /v1/models history")
		return ""
	}
	if got := activeDigest(); got != digest1 {
		t.Fatalf("initial digest %s, want %s", got, digest1)
	}

	// Roll forward: retag the name to a new artifact.
	digest2, err := st.PutTagged("fleet", v2)
	if err != nil {
		t.Fatalf("put v2: %v", err)
	}
	if digest2 == digest1 {
		t.Fatal("test models collide")
	}
	if _, err := reg.SyncStore(); err != nil {
		t.Fatalf("sync after roll-forward: %v", err)
	}
	if got := activeDigest(); got != digest2 {
		t.Fatalf("post-upgrade digest %s, want %s", got, digest2)
	}

	// Roll back: the manifest points the tag at the old blob again; the
	// served digest must revert to exactly the prior content address.
	if err := st.Tag("fleet", digest1); err != nil {
		t.Fatalf("rollback tag: %v", err)
	}
	if _, err := reg.SyncStore(); err != nil {
		t.Fatalf("sync after rollback: %v", err)
	}
	if got := activeDigest(); got != digest1 {
		t.Fatalf("post-rollback digest %s, want exact prior %s", got, digest1)
	}

	// The digest also crosses the HTTP surface.
	base, stop := startServer(t, reg)
	defer stop()
	resp, err := http.Get(base + "/v1/models")
	if err != nil {
		t.Fatalf("models: %v", err)
	}
	defer resp.Body.Close()
	var models []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatalf("decode models: %v", err)
	}
	found := false
	for _, mi := range models {
		if mi.Active && mi.Name == "fleet" {
			found = true
			if mi.Digest != digest1 {
				t.Fatalf("HTTP digest %s, want %s", mi.Digest, digest1)
			}
		}
	}
	if !found {
		t.Fatal("active fleet entry missing from HTTP /v1/models")
	}
}
