package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"fedsc/internal/core"
	"fedsc/internal/store"
)

// axisModel builds a tiny sealed artifact whose cluster g's basis is
// the axis perm[g], so assignments are exactly predictable: point
// e_{perm[g]} gets label g with zero residual.
func axisModel(t testing.TB, perm []int) *core.Model {
	t.Helper()
	const ambient = 4
	m := &core.Model{Version: core.ModelVersion, Ambient: ambient, L: len(perm), Method: "ssc",
		CreatedUnixNano: 1}
	for _, axis := range perm {
		data := make([]float64, ambient)
		data[axis] = 1
		m.Clusters = append(m.Clusters, core.ClusterBasis{Dim: 1, Data: data, Samples: 1})
	}
	m.Seal()
	if err := m.Validate(); err != nil {
		t.Fatalf("axis model invalid: %v", err)
	}
	return m
}

// axisPoint returns the ambient-4 unit vector along the given axis.
func axisPoint(axis int) []float64 {
	p := make([]float64, 4)
	p[axis] = 1
	return p
}

// TestRegistryUseStoreRoutesAllManifestEntries: binding a registry to a
// two-model store must serve both names, route the default, and follow
// manifest changes (retag, untag, default move) through SyncStore.
func TestRegistryUseStoreRoutesAllManifestEntries(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	a := axisModel(t, []int{0, 1}) // alpha: e0→0, e1→1
	b := axisModel(t, []int{1, 0}) // beta:  e0→1, e1→0
	if _, err := st.PutTagged("alpha", a); err != nil {
		t.Fatalf("put alpha: %v", err)
	}
	digestB, err := st.PutTagged("beta", b)
	if err != nil {
		t.Fatalf("put beta: %v", err)
	}

	reg := NewRegistry()
	changed, err := reg.UseStore(st)
	if err != nil {
		t.Fatalf("use store: %v", err)
	}
	if len(changed) != 2 {
		t.Fatalf("initial sync changed %v, want both models", changed)
	}
	if got := reg.Names(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("names %v", got)
	}
	if cur := reg.Current(); cur == nil || cur.Name != "alpha" {
		t.Fatalf("default route %+v, want alpha (first tag)", cur)
	}

	// Routed assignment: the same point gets opposite labels per model.
	batcher := NewBatcher(reg, NewMetrics(), BatcherOptions{MaxWait: -1})
	defer batcher.Stop()
	for _, tc := range []struct {
		model string
		want  int
	}{{"alpha", 0}, {"beta", 1}, {"", 0}} {
		got, name, err := batcher.AssignModel(context.Background(), tc.model, [][]float64{axisPoint(0)})
		if err != nil {
			t.Fatalf("assign via %q: %v", tc.model, err)
		}
		if got[0].Label != tc.want {
			t.Fatalf("model %q labeled e0 as %d, want %d (scored by %s)", tc.model, got[0].Label, tc.want, name)
		}
	}
	if _, _, err := batcher.AssignModel(context.Background(), "ghost", [][]float64{axisPoint(0)}); err == nil {
		t.Fatal("unknown model name accepted")
	}

	// Retag alpha to beta's artifact and move the default: one Sync must
	// pick up both, nothing else changes.
	if err := st.Tag("alpha", digestB); err != nil {
		t.Fatalf("retag: %v", err)
	}
	if err := st.SetDefault("beta"); err != nil {
		t.Fatalf("set default: %v", err)
	}
	changed, err = reg.SyncStore()
	if err != nil {
		t.Fatalf("sync: %v", err)
	}
	if len(changed) != 1 || changed[0] != "alpha" {
		t.Fatalf("sync changed %v, want [alpha]", changed)
	}
	if cur := reg.Current(); cur == nil || cur.Name != "beta" {
		t.Fatalf("default after sync %+v, want beta", cur)
	}
	got, _, err := batcher.AssignModel(context.Background(), "alpha", [][]float64{axisPoint(0)})
	if err != nil {
		t.Fatalf("assign retagged alpha: %v", err)
	}
	if got[0].Label != 1 {
		t.Fatalf("retagged alpha labeled e0 as %d, want 1 (beta's artifact)", got[0].Label)
	}
	// A no-op sync reports no changes and allocates no new snapshots.
	seqBefore := reg.Get("beta").Seq
	if changed, err := reg.SyncStore(); err != nil || len(changed) != 0 {
		t.Fatalf("idle sync: changed=%v err=%v", changed, err)
	}
	if reg.Get("beta").Seq != seqBefore {
		t.Fatal("idle sync rebuilt an unchanged snapshot")
	}

	// Untagging drops the model from routing.
	if err := st.Untag("alpha"); err != nil {
		t.Fatalf("untag: %v", err)
	}
	if changed, err := reg.SyncStore(); err != nil || len(changed) != 1 || changed[0] != "alpha" {
		t.Fatalf("sync after untag: changed=%v err=%v", changed, err)
	}
	if reg.Get("alpha") != nil {
		t.Fatal("untagged model still routed")
	}
	if _, _, err := batcher.AssignModel(context.Background(), "alpha", [][]float64{axisPoint(0)}); err == nil {
		t.Fatal("assign to untagged model succeeded")
	}

	// /v1/models history: exactly the still-served loads are active.
	active := 0
	for _, mi := range reg.Models() {
		if mi.Active {
			active++
			if mi.Name != "beta" {
				t.Fatalf("active entry %+v, want beta", mi)
			}
		}
	}
	if active != 1 {
		t.Fatalf("%d active entries, want 1", active)
	}
}

// TestBatcherAdmissionControl: a request that would push the pending
// queue past MaxQueue is shed with ErrOverloaded immediately — it does
// not block, time out, or poison the queue — and the shed counter and
// queue-depth gauge record it.
func TestBatcherAdmissionControl(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	if _, err := st.PutTagged("m", axisModel(t, []int{0, 1})); err != nil {
		t.Fatalf("put: %v", err)
	}
	reg := NewRegistry()
	if _, err := reg.UseStore(st); err != nil {
		t.Fatalf("use store: %v", err)
	}
	metrics := NewMetrics()
	b := NewBatcher(reg, metrics, BatcherOptions{MaxBatch: 2, MaxQueue: 4, MaxWait: -1})
	defer b.Stop()

	oversized := make([][]float64, 5)
	for i := range oversized {
		oversized[i] = axisPoint(i % 2)
	}
	start := time.Now()
	_, _, err = b.AssignModel(context.Background(), "m", oversized)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("oversized request: %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shed took %s, want fail-fast", d)
	}
	if metrics.Shed() != 1 {
		t.Fatalf("shed counter %d, want 1", metrics.Shed())
	}
	// Shedding must not leak queue capacity: a fitting request still
	// goes through and the depth gauge returns to zero.
	got, _, err := b.AssignModel(context.Background(), "m", [][]float64{axisPoint(1)})
	if err != nil {
		t.Fatalf("assign after shed: %v", err)
	}
	if got[0].Label != 1 {
		t.Fatalf("label %d, want 1", got[0].Label)
	}
	if metrics.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after quiescence", metrics.QueueDepth())
	}
}
