package serve

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestStopReleasesWorkerGoroutines pins the batcher's goroutine
// lifecycle end to end: NewBatcher spawns exactly Workers goroutines,
// and Stop joins every one of them — none may outlive the batcher,
// even with requests in flight when Stop lands. The PR 8 audit of the
// shutdown path (stopped-flag under the write lock before stopOnce,
// admitted sends bounded by MaxQueue, final drain answering
// ErrStopped) found it sound; this test keeps it that way, counting
// goroutines directly because a leaked-but-blocked worker is invisible
// to the race detector.
func TestStopReleasesWorkerGoroutines(t *testing.T) {
	reg, devices, _ := newTestRegistry(t, 31)
	base := runtime.NumGoroutine()

	const workers = 4
	b := NewBatcher(reg, NewMetrics(), BatcherOptions{MaxBatch: 4, MaxWait: time.Millisecond, Workers: workers})
	if n := runtime.NumGoroutine(); n < base+workers {
		t.Fatalf("expected %d worker goroutines to start, have %d over baseline", workers, n-base)
	}

	// Keep the workers busy so Stop races live traffic, not an idle pool.
	vec := devices[0].Col(0, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			if _, _, err := b.Assign(context.Background(), [][]float64{vec}); err != nil && !errors.Is(err, ErrStopped) {
				t.Errorf("Assign: %v", err)
				return
			}
		}
	}()
	b.Stop()
	<-done

	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+1 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("worker goroutines survived Stop: base %d, now %d\n%s",
				base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
