package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a dependency-free metrics sink rendered in the Prometheus
// text exposition format. All updates are lock-free atomics on the hot
// path; only the per-model assignment map takes a lock, and only on the
// first observation of a new model name.
type Metrics struct {
	requests  atomic.Int64 // accepted /v1/assign requests
	errors    atomic.Int64 // requests answered with an error status
	inFlight  atomic.Int64 // requests currently being served
	latency   histogram    // per-request latency, seconds
	batchSize histogram    // points per scored batch

	mu          sync.Mutex
	assignments map[string]*atomic.Int64 // model name -> points assigned
}

// NewMetrics returns a metrics sink with latency buckets spanning 10µs
// to 10s and batch-size buckets spanning 1 to 4096 points.
func NewMetrics() *Metrics {
	return &Metrics{
		latency:     newHistogram([]float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}),
		batchSize:   newHistogram([]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096}),
		assignments: make(map[string]*atomic.Int64),
	}
}

// RequestStart marks a request accepted and returns a done func that
// records its latency and error status.
func (m *Metrics) RequestStart() func(err bool) {
	m.requests.Add(1)
	m.inFlight.Add(1)
	start := time.Now()
	return func(err bool) {
		m.latency.observe(time.Since(start).Seconds())
		if err {
			m.errors.Add(1)
		}
		m.inFlight.Add(-1)
	}
}

// ObserveBatch records one scored batch of b points under model name.
func (m *Metrics) ObserveBatch(name string, b int) {
	m.batchSize.observe(float64(b))
	m.mu.Lock()
	c, ok := m.assignments[name]
	if !ok {
		c = new(atomic.Int64)
		m.assignments[name] = c
	}
	m.mu.Unlock()
	c.Add(int64(b))
}

// Snapshot totals used by tests and the shutdown log.
func (m *Metrics) Requests() int64 { return m.requests.Load() }

// Errors returns the number of requests answered with an error.
func (m *Metrics) Errors() int64 { return m.errors.Load() }

// InFlight returns the number of requests currently being served.
func (m *Metrics) InFlight() int64 { return m.inFlight.Load() }

// Assigned returns the total points assigned across all models.
func (m *Metrics) Assigned() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, c := range m.assignments {
		total += c.Load()
	}
	return total
}

// Batches returns the number of scored batches.
func (m *Metrics) Batches() int64 { return m.batchSize.count.Load() }

// WritePrometheus renders every metric in the text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP fedsc_serve_requests_total Assignment requests accepted.\n")
	fmt.Fprintf(w, "# TYPE fedsc_serve_requests_total counter\n")
	fmt.Fprintf(w, "fedsc_serve_requests_total %d\n", m.requests.Load())
	fmt.Fprintf(w, "# HELP fedsc_serve_request_errors_total Assignment requests answered with an error.\n")
	fmt.Fprintf(w, "# TYPE fedsc_serve_request_errors_total counter\n")
	fmt.Fprintf(w, "fedsc_serve_request_errors_total %d\n", m.errors.Load())
	fmt.Fprintf(w, "# HELP fedsc_serve_in_flight Requests currently being served.\n")
	fmt.Fprintf(w, "# TYPE fedsc_serve_in_flight gauge\n")
	fmt.Fprintf(w, "fedsc_serve_in_flight %d\n", m.inFlight.Load())
	m.latency.write(w, "fedsc_serve_latency_seconds", "Request latency in seconds.")
	m.batchSize.write(w, "fedsc_serve_batch_points", "Points per scored batch.")
	fmt.Fprintf(w, "# HELP fedsc_serve_assignments_total Points assigned, by model.\n")
	fmt.Fprintf(w, "# TYPE fedsc_serve_assignments_total counter\n")
	m.mu.Lock()
	names := make([]string, 0, len(m.assignments))
	for name := range m.assignments {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "fedsc_serve_assignments_total{model=%q} %d\n", name, m.assignments[name].Load())
	}
	m.mu.Unlock()
}

// histogram is a fixed-bucket cumulative histogram with atomic counters.
// The sum is kept in integer nanounits to stay lock-free.
type histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumNano atomic.Int64 // sum * 1e9, good to ~292 observation-years
}

func newHistogram(bounds []float64) histogram {
	return histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds))}
}

func (h *histogram) observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
		}
	}
	h.count.Add(1)
	h.sumNano.Add(int64(v * 1e9))
}

func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), h.buckets[i].Load())
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count.Load())
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNano.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
