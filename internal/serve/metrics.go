package serve

import (
	"io"
	"time"

	"fedsc/internal/obs"
)

// Metrics is the serving tier's metrics sink, rendered in the
// Prometheus text exposition format. Since the obs subsystem landed it
// is a thin facade over an obs.Registry: the instruments live in the
// registry (so a shared registry exposes the serving metrics next to
// the fednet/core/chaos ones on one /metrics endpoint), while this type
// keeps the API the handler, batcher, and tests were built against.
// All updates are lock-free atomics on the hot path.
type Metrics struct {
	reg         *obs.Registry
	requests    *obs.Counter
	errors      *obs.Counter
	shed        *obs.Counter
	inFlight    *obs.Gauge
	queueDepth  *obs.Gauge
	latency     *obs.Histogram
	batchSize   *obs.Histogram
	assignments *obs.CounterVec
	batches     *obs.CounterVec
}

// NewMetrics returns a metrics sink over a private registry with
// latency buckets spanning 10µs to 10s and batch-size buckets spanning
// 1 to 4096 points.
func NewMetrics() *Metrics { return NewMetricsOn(obs.NewRegistry()) }

// NewMetricsOn registers the serving metrics on reg and returns the
// sink. Registration is idempotent, so several components may share
// one registry.
func NewMetricsOn(reg *obs.Registry) *Metrics {
	return &Metrics{
		reg:        reg,
		requests:   reg.Counter("fedsc_serve_requests_total", "Assignment requests accepted."),
		errors:     reg.Counter("fedsc_serve_request_errors_total", "Assignment requests answered with an error."),
		shed:       reg.Counter("fedsc_serve_shed_total", "Assignment requests shed with 429 by admission control."),
		inFlight:   reg.Gauge("fedsc_serve_in_flight", "Requests currently being served."),
		queueDepth: reg.Gauge("fedsc_serve_queue_depth", "Points admitted and awaiting scoring."),
		latency: reg.Histogram("fedsc_serve_latency_seconds", "Request latency in seconds.",
			[]float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}),
		batchSize: reg.Histogram("fedsc_serve_batch_points", "Points per scored batch.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096}),
		assignments: reg.CounterVec("fedsc_serve_assignments_total", "Points assigned, by model.", "model"),
		batches:     reg.CounterVec("fedsc_serve_model_batches_total", "Scored batches, by model.", "model"),
	}
}

// Registry returns the registry the serving metrics are registered on.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// RequestStart marks a request accepted and returns a done func that
// records its latency and error status.
func (m *Metrics) RequestStart() func(err bool) {
	m.requests.Inc()
	m.inFlight.Add(1)
	start := time.Now()
	return func(err bool) {
		m.latency.Observe(time.Since(start).Seconds())
		if err {
			m.errors.Inc()
		}
		m.inFlight.Add(-1)
	}
}

// ObserveBatch records one scored batch of b points under model name.
func (m *Metrics) ObserveBatch(name string, b int) {
	m.batchSize.Observe(float64(b))
	m.assignments.With(name).Add(int64(b))
	m.batches.With(name).Inc()
}

// ObserveShed marks one request rejected by admission control (the
// bounded queue was full; the client saw 429).
func (m *Metrics) ObserveShed() { m.shed.Inc() }

// QueueAdd moves the admission-queue depth gauge by n points.
func (m *Metrics) QueueAdd(n int64) { m.queueDepth.Add(n) }

// Requests returns the number of accepted requests.
func (m *Metrics) Requests() int64 { return m.requests.Value() }

// Errors returns the number of requests answered with an error.
func (m *Metrics) Errors() int64 { return m.errors.Value() }

// InFlight returns the number of requests currently being served.
func (m *Metrics) InFlight() int64 { return m.inFlight.Value() }

// Shed returns the number of requests rejected by admission control.
func (m *Metrics) Shed() int64 { return m.shed.Value() }

// QueueDepth returns the points currently admitted and awaiting scoring.
func (m *Metrics) QueueDepth() int64 { return m.queueDepth.Value() }

// AssignedTo returns the points assigned by one named model.
func (m *Metrics) AssignedTo(name string) int64 { return m.assignments.With(name).Value() }

// Assigned returns the total points assigned across all models.
func (m *Metrics) Assigned() int64 { return m.assignments.Total() }

// Batches returns the number of scored batches.
func (m *Metrics) Batches() int64 { return m.batchSize.Count() }

// WritePrometheus renders every metric on the sink's registry in the
// text exposition format — including any non-serving metrics other
// subsystems registered on a shared registry.
func (m *Metrics) WritePrometheus(w io.Writer) { m.reg.WritePrometheus(w) }
