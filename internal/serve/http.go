package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os/signal"
	"strconv"
	"syscall"
	"time"
)

// AssignRequest is the /v1/assign body: either a single point or a
// batch. Exactly one of Point and Points must be set. Model routes the
// request to a named registry entry; empty picks the default model.
type AssignRequest struct {
	Model  string      `json:"model,omitempty"`
	Point  []float64   `json:"point,omitempty"`
	Points [][]float64 `json:"points,omitempty"`
}

// AssignResponse answers /v1/assign.
type AssignResponse struct {
	// Assignments has one entry per submitted point, in order.
	Assignments []Assignment `json:"assignments"`
	// Model names the artifact snapshot that scored the request.
	Model string `json:"model"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler is the serving API:
//
//	POST /v1/assign   assign one point or a batch by minimum residual,
//	                  optionally routed to a named model
//	GET  /v1/models   list loaded model artifacts
//	POST /v1/reload   re-sync from the artifact store (or re-read the
//	                  single artifact file) and hot-swap changed models
//	GET  /healthz     readiness (200 once a model is loaded)
//	GET  /metrics     Prometheus text metrics
//
// Admission control: when the batcher's bounded queue is full, assign
// answers 429 immediately — saturation sheds load instead of growing
// latency without bound.
type Handler struct {
	reg     *Registry
	batcher *Batcher
	metrics *Metrics
	mux     *http.ServeMux
}

// NewHandler wires the API around a registry and its batcher. metrics
// may be shared with the batcher (it usually is).
func NewHandler(reg *Registry, batcher *Batcher, metrics *Metrics) *Handler {
	h := &Handler{reg: reg, batcher: batcher, metrics: metrics, mux: http.NewServeMux()}
	h.mux.HandleFunc("/v1/assign", h.assign)
	h.mux.HandleFunc("/v1/models", h.models)
	h.mux.HandleFunc("/v1/reload", h.reload)
	h.mux.HandleFunc("/healthz", h.healthz)
	h.mux.HandleFunc("/metrics", h.prometheus)
	return h
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The status line is already on the wire; an encode failure here
	// means the client hung up, and there is no channel left to tell it.
	_ = json.NewEncoder(w).Encode(v)
}

func (h *Handler) assign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	done := h.metrics.RequestStart()
	failed := true
	defer func() { done(failed) }()
	var req AssignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	var vecs [][]float64
	switch {
	case len(req.Point) > 0 && len(req.Points) > 0:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "set point or points, not both"})
		return
	case len(req.Point) > 0:
		vecs = [][]float64{req.Point}
	case len(req.Points) > 0:
		vecs = req.Points
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty request"})
		return
	}
	assignments, model, err := h.batcher.AssignModel(r.Context(), req.Model, vecs)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrOverloaded):
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", strconv.Itoa(h.batcher.RetryAfter()))
		case errors.Is(err, ErrStopped):
			status = http.StatusServiceUnavailable
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			status = http.StatusRequestTimeout
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	failed = false
	writeJSON(w, http.StatusOK, AssignResponse{Assignments: assignments, Model: model})
}

// requireGET enforces the read-only method contract the POST endpoints
// already have for theirs: anything but GET is 405, not a silent 200.
func requireGET(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return false
	}
	return true
}

func (h *Handler) models(w http.ResponseWriter, r *http.Request) {
	if !requireGET(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, h.reg.Models())
}

// ReloadResponse answers /v1/reload: the served model names after the
// sync and the names the sync changed (loaded, replaced, or removed).
type ReloadResponse struct {
	Models  []string `json:"models"`
	Changed []string `json:"changed"`
}

func (h *Handler) reload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	changed, err := h.reg.Reload()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if changed == nil {
		changed = []string{}
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Models: h.reg.Names(), Changed: changed})
}

func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	if !requireGET(w, r) {
		return
	}
	if h.reg.Current() == nil {
		http.Error(w, "no model loaded", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (h *Handler) prometheus(w http.ResponseWriter, r *http.Request) {
	if !requireGET(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	h.metrics.WritePrometheus(w)
}

// Serve runs the HTTP server on ln until ctx is cancelled, then shuts it
// down gracefully (in-flight requests get up to grace to finish; zero
// means 5s) and stops the batcher. It returns nil on a clean shutdown.
func Serve(ctx context.Context, ln net.Listener, h *Handler, grace time.Duration) error {
	if grace <= 0 {
		grace = 5 * time.Second
	}
	srv := &http.Server{Handler: h}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		h.batcher.Stop()
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(shutCtx)
	h.batcher.Stop()
	if errors.Is(err, context.DeadlineExceeded) {
		// Hard stop after the grace period; the Shutdown error already
		// reports the timeout the caller sees.
		_ = srv.Close()
	}
	<-errCh // Serve has returned http.ErrServerClosed
	return err
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM — the
// graceful-shutdown trigger for cmd/fedsc-serve.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, syscall.SIGINT, syscall.SIGTERM)
}
