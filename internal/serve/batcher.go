package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fedsc/internal/mat"
)

// ErrStopped is returned by Assign after the batcher has been stopped.
var ErrStopped = errors.New("serve: batcher stopped")

// ErrOverloaded is returned by Assign when the admission queue is full;
// the HTTP layer maps it to 429 so saturation sheds load instead of
// stacking latency until timeouts (or memory) give out.
var ErrOverloaded = errors.New("serve: admission queue full")

// Assignment is the answer to one point.
type Assignment struct {
	// Label is the global cluster in [0, L) of minimum projection
	// residual.
	Label int `json:"label"`
	// Residual is ‖x − U Uᵀx‖ against the winning cluster's basis.
	Residual float64 `json:"residual"`
}

// BatcherOptions sizes the request coalescing and admission control.
type BatcherOptions struct {
	// MaxBatch is the largest number of points scored as one blocked
	// matmul per cluster (default 64).
	MaxBatch int
	// MaxWait is how long a worker holds an underfull batch open waiting
	// for more points (default 200µs). Zero keeps the default; a
	// negative value disables waiting (every request scores alone).
	MaxWait time.Duration
	// Workers is the number of batch workers (default GOMAXPROCS).
	Workers int
	// MaxQueue bounds the admission queue in points: a request whose
	// points would push the pending total past it is rejected with
	// ErrOverloaded instead of queued (default 64*MaxBatch). It must be
	// at least the largest request a client may send — a single request
	// bigger than MaxQueue can never be admitted.
	MaxQueue int
}

func (o BatcherOptions) withDefaults() BatcherOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxWait == 0 {
		o.MaxWait = 200 * time.Microsecond
	}
	if o.MaxWait < 0 {
		o.MaxWait = 0
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64 * o.MaxBatch
	}
	return o
}

// batchRequest is one caller's unit of work: a group of points that must
// be answered together by one model.
type batchRequest struct {
	model string
	vecs  [][]float64
	out   chan batchResponse
}

type batchResponse struct {
	assignments []Assignment
	model       string
	err         error
}

// Batcher coalesces concurrent assignment requests into blocked batches:
// each worker collects requests until MaxBatch points are pending or
// MaxWait has passed since the first, groups them by requested model,
// stacks each group into one matrix, and scores it with one blocked
// matmul per cluster via that model's registry snapshot. Workers pull
// independently, so throughput scales to Workers while a lone request
// still completes within MaxWait. Admission is bounded: at most
// MaxQueue points may be pending, and requests beyond that are shed
// with ErrOverloaded rather than queued.
type Batcher struct {
	reg     *Registry
	metrics *Metrics
	opts    BatcherOptions

	reqs     chan *batchRequest
	queued   atomic.Int64 // points admitted and not yet scored
	stop     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once

	// mu fences Assign's enqueue against Stop: Assign holds the read
	// lock across the send, Stop flips stopped under the write lock, so
	// after Stop observes the lock no new request can enter the queue
	// and the final drain below is complete.
	mu      sync.RWMutex
	stopped bool
}

// NewBatcher starts the worker pool. Callers must Stop it when done.
func NewBatcher(reg *Registry, metrics *Metrics, opts BatcherOptions) *Batcher {
	opts = opts.withDefaults()
	b := &Batcher{
		reg:     reg,
		metrics: metrics,
		opts:    opts,
		// Every request carries at least one point and admission caps
		// pending points at MaxQueue, so a MaxQueue-deep channel can
		// always absorb an admitted request: admitted sends never block,
		// and overload surfaces only as ErrOverloaded (429), never as a
		// stuck client.
		reqs: make(chan *batchRequest, opts.MaxQueue),
		stop: make(chan struct{}),
	}
	b.wg.Add(b.opts.Workers)
	for i := 0; i < b.opts.Workers; i++ {
		go b.worker()
	}
	return b
}

// retryAfterSeconds derives a Retry-After hint from the batcher's own
// drain rate instead of a fixed constant: the queued points form
// ceil(queued/MaxBatch) batches spread across Workers workers, and
// each batch window stays open at most MaxWait, so the backlog clears
// in about ceil(batches/Workers)·MaxWait. The estimate is rounded up
// to whole seconds (the HTTP header grammar) and clamped to [1, 60]:
// even an empty or sub-second backlog deserves a beat of backoff, and
// a minute caps the hint under a pathological queue. opts must have
// defaults applied.
func retryAfterSeconds(queued int64, opts BatcherOptions) int {
	if queued < 0 {
		queued = 0
	}
	batches := (queued + int64(opts.MaxBatch) - 1) / int64(opts.MaxBatch)
	perWorker := (batches + int64(opts.Workers) - 1) / int64(opts.Workers)
	secs := int(math.Ceil(float64(perWorker) * opts.MaxWait.Seconds()))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// RetryAfter reports, in whole seconds, how long an overloaded caller
// should wait before retrying, computed from the current queue depth
// and the pool's drain rate.
func (b *Batcher) RetryAfter() int {
	return retryAfterSeconds(b.queued.Load(), b.opts)
}

// Stop shuts the worker pool down: queued requests are still answered,
// Assign calls arriving after Stop get ErrStopped. Stop is idempotent,
// and EVERY call — not just the first — returns only once the workers
// have exited and the queue is drained: Once.Do blocks concurrent
// callers until the first invocation's shutdown completes, so no caller
// can observe a half-stopped batcher.
func (b *Batcher) Stop() {
	b.mu.Lock()
	b.stopped = true
	b.mu.Unlock()
	b.stopOnce.Do(func() {
		close(b.stop)
		b.wg.Wait()
		// No sender can hold the queue anymore; answer any stragglers the
		// workers missed between their last drain and exit.
		for {
			select {
			case req := <-b.reqs:
				b.release(req)
				req.out <- batchResponse{err: ErrStopped}
			default:
				return
			}
		}
	})
}

// admit reserves queue capacity for the request's points, or reports
// overload. release is its inverse; every admitted request is released
// exactly once, when its answer is determined.
func (b *Batcher) admit(req *batchRequest) bool {
	n := int64(len(req.vecs))
	if b.queued.Add(n) > int64(b.opts.MaxQueue) {
		b.queued.Add(-n)
		return false
	}
	if b.metrics != nil {
		b.metrics.QueueAdd(n)
	}
	return true
}

func (b *Batcher) release(req *batchRequest) {
	n := int64(len(req.vecs))
	b.queued.Add(-n)
	if b.metrics != nil {
		b.metrics.QueueAdd(-n)
	}
}

// Assign scores one group of points against the default model; see
// AssignModel.
func (b *Batcher) Assign(ctx context.Context, vecs [][]float64) ([]Assignment, string, error) {
	return b.AssignModel(ctx, "", vecs)
}

// AssignModel scores one group of points (each of length ambient) as a
// unit against the named model (empty = default route) and returns
// their assignments plus the name of the snapshot that scored them. It
// blocks until a batch containing the group is scored, ctx is done, or
// the batcher stops; when the admission queue is full it fails fast
// with ErrOverloaded instead of blocking.
func (b *Batcher) AssignModel(ctx context.Context, model string, vecs [][]float64) ([]Assignment, string, error) {
	if len(vecs) == 0 {
		return nil, "", fmt.Errorf("serve: empty request")
	}
	req := &batchRequest{model: model, vecs: vecs, out: make(chan batchResponse, 1)}
	b.mu.RLock()
	if b.stopped {
		b.mu.RUnlock()
		return nil, "", ErrStopped
	}
	if !b.admit(req) {
		b.mu.RUnlock()
		if b.metrics != nil {
			b.metrics.ObserveShed()
		}
		return nil, "", ErrOverloaded
	}
	select {
	case b.reqs <- req:
		b.mu.RUnlock()
	case <-ctx.Done():
		b.release(req)
		b.mu.RUnlock()
		return nil, "", ctx.Err()
	}
	select {
	case resp := <-req.out:
		return resp.assignments, resp.model, resp.err
	case <-ctx.Done():
		// The worker will still score the batch; the answer is dropped
		// into the request's buffered channel and garbage collected.
		return nil, "", ctx.Err()
	}
}

// worker loops collecting and scoring batches until stop is closed and
// the queue is drained.
func (b *Batcher) worker() {
	defer b.wg.Done()
	for {
		var first *batchRequest
		select {
		case first = <-b.reqs:
		case <-b.stop:
			// Drain whatever is still queued before exiting.
			select {
			case first = <-b.reqs:
			default:
				return
			}
		}
		batch := []*batchRequest{first}
		points := len(first.vecs)
		if b.opts.MaxWait > 0 && points < b.opts.MaxBatch {
			timer := time.NewTimer(b.opts.MaxWait)
		fill:
			for points < b.opts.MaxBatch {
				select {
				case req := <-b.reqs:
					batch = append(batch, req)
					points += len(req.vecs)
				case <-timer.C:
					break fill
				case <-b.stop:
					break fill
				}
			}
			timer.Stop()
		} else {
			// Opportunistic, non-blocking fill.
		drain:
			for points < b.opts.MaxBatch {
				select {
				case req := <-b.reqs:
					batch = append(batch, req)
					points += len(req.vecs)
				default:
					break drain
				}
			}
		}
		b.score(batch)
	}
}

// score groups the batch by requested model, stacks each group into one
// matrix, runs that model's engine, and fans the answers back out to
// the waiting callers. Each group resolves its registry snapshot
// exactly once, so every request in it is answered from one immutable
// engine even while reloads land concurrently.
func (b *Batcher) score(batch []*batchRequest) {
	for _, req := range batch {
		b.release(req)
	}
	groups := map[string][]*batchRequest{}
	for _, req := range batch {
		groups[req.model] = append(groups[req.model], req)
	}
	models := make([]string, 0, len(groups))
	for model := range groups {
		models = append(models, model)
	}
	sort.Strings(models)
	for _, model := range models {
		b.scoreModel(model, groups[model])
	}
}

// scoreModel answers one same-model group against a single snapshot.
func (b *Batcher) scoreModel(model string, group []*batchRequest) {
	snap := b.reg.Get(model)
	if snap == nil {
		err := fmt.Errorf("serve: no model loaded")
		if model != "" {
			err = fmt.Errorf("serve: unknown model %q", model)
		}
		for _, req := range group {
			req.out <- batchResponse{err: err}
		}
		return
	}
	n := snap.Engine.Ambient()
	// Validate per request: one malformed request must not fail the
	// others sharing its batch.
	valid := group[:0:0]
	points := 0
	for _, req := range group {
		ok := true
		for _, v := range req.vecs {
			if len(v) != n {
				req.out <- batchResponse{err: fmt.Errorf("serve: point has %d dims, model expects %d", len(v), n)}
				ok = false
				break
			}
		}
		if ok {
			valid = append(valid, req)
			points += len(req.vecs)
		}
	}
	if points == 0 {
		return
	}
	x := mat.NewDense(n, points)
	col := 0
	for _, req := range valid {
		for _, v := range req.vecs {
			x.SetCol(col, v)
			col++
		}
	}
	labels, residuals, err := snap.Engine.Assign(x)
	if err != nil {
		for _, req := range valid {
			req.out <- batchResponse{err: err}
		}
		return
	}
	if b.metrics != nil {
		b.metrics.ObserveBatch(snap.Name, points)
	}
	col = 0
	for _, req := range valid {
		out := make([]Assignment, len(req.vecs))
		for i := range out {
			out[i] = Assignment{Label: labels[col], Residual: residuals[col]}
			col++
		}
		req.out <- batchResponse{assignments: out, model: snap.Name}
	}
}
