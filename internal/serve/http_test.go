package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer runs the full stack (registry already populated) on a real
// loopback listener and returns the base URL and a shutdown func.
func startServer(t *testing.T, reg *Registry) (string, func()) {
	t.Helper()
	metrics := NewMetrics()
	b := NewBatcher(reg, metrics, BatcherOptions{MaxBatch: 32, MaxWait: 200 * time.Microsecond})
	return startListener(t, NewHandler(reg, b, metrics))
}

// startListener serves a caller-built handler (Serve stops its batcher
// on shutdown) on a loopback listener.
func startListener(t *testing.T, h *Handler) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, ln, h, 10*time.Second) }()
	stop := func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("serve: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Error("server did not shut down")
		}
	}
	return "http://" + ln.Addr().String(), stop
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("unmarshal %q: %v", data, err)
		}
	}
	return resp.StatusCode, string(data)
}

// TestEndToEndServeMatchesOfflineLabels is the acceptance path: train
// Fed-SC on synthetic data, save the artifact, serve it from disk on a
// loopback listener, POST the training points to /v1/assign, and demand
// the returned labels equal the offline Result labels exactly.
func TestEndToEndServeMatchesOfflineLabels(t *testing.T) {
	devices, res, m := trainModel(t, 71)
	path := filepath.Join(t.TempDir(), "model.fedsc")
	if err := m.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	reg := NewRegistry()
	if err := reg.LoadFile(path); err != nil {
		t.Fatalf("load: %v", err)
	}
	base, stop := startServer(t, reg)
	defer stop()

	// Health must be green with a model loaded.
	hr, err := http.Get(base + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", hr, err)
	}
	hr.Body.Close()

	total := 0
	for dev, x := range devices {
		vecs := make([][]float64, x.Cols())
		for j := range vecs {
			vecs[j] = x.Col(j, nil)
		}
		var out AssignResponse
		status, body := postJSON(t, base+"/v1/assign", AssignRequest{Points: vecs}, &out)
		if status != http.StatusOK {
			t.Fatalf("assign device %d: %d %s", dev, status, body)
		}
		if len(out.Assignments) != len(vecs) {
			t.Fatalf("device %d: %d assignments for %d points", dev, len(out.Assignments), len(vecs))
		}
		for j, a := range out.Assignments {
			if a.Label != res.Labels[dev][j] {
				t.Fatalf("device %d point %d: served %d, offline %d", dev, j, a.Label, res.Labels[dev][j])
			}
		}
		total += len(vecs)
	}

	// Single-point form.
	var single AssignResponse
	status, body := postJSON(t, base+"/v1/assign", AssignRequest{Point: devices[0].Col(0, nil)}, &single)
	if status != http.StatusOK || len(single.Assignments) != 1 {
		t.Fatalf("single assign: %d %s", status, body)
	}
	if single.Assignments[0].Label != res.Labels[0][0] {
		t.Fatalf("single point: served %d, offline %d", single.Assignments[0].Label, res.Labels[0][0])
	}
	total++

	// /v1/models lists the artifact as active.
	mr, err := http.Get(base + "/v1/models")
	if err != nil {
		t.Fatalf("models: %v", err)
	}
	var models []ModelInfo
	if err := json.NewDecoder(mr.Body).Decode(&models); err != nil {
		t.Fatalf("decode models: %v", err)
	}
	mr.Body.Close()
	if len(models) != 1 || !models[0].Active || models[0].L != 4 {
		t.Fatalf("models listing: %+v", models)
	}

	// /metrics must agree with the traffic we generated.
	text := fetchMetrics(t, base)
	wantReq := fmt.Sprintf("fedsc_serve_requests_total %d", len(devices)+1)
	if !strings.Contains(text, wantReq) {
		t.Fatalf("metrics missing %q:\n%s", wantReq, text)
	}
	wantAssigned := fmt.Sprintf("fedsc_serve_assignments_total{model=%q} %d", path, total)
	if !strings.Contains(text, wantAssigned) {
		t.Fatalf("metrics missing %q:\n%s", wantAssigned, text)
	}
	if !strings.Contains(text, "fedsc_serve_in_flight 0") {
		t.Fatalf("metrics report in-flight requests after quiescence:\n%s", text)
	}
}

func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	return string(data)
}

// metricValue extracts a single metric value from the exposition text.
func metricValue(t *testing.T, text, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v int64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%d", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

// TestConcurrentLoadDuringHotReload hammers batched /v1/assign from 32
// goroutines while the model is hot-reloaded repeatedly; run with -race.
// Afterwards the metrics must be internally consistent.
func TestConcurrentLoadDuringHotReload(t *testing.T) {
	devices, res, m := trainModel(t, 72)
	path := filepath.Join(t.TempDir(), "model.fedsc")
	if err := m.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	reg := NewRegistry()
	if err := reg.LoadFile(path); err != nil {
		t.Fatalf("load: %v", err)
	}
	base, stop := startServer(t, reg)
	defer stop()

	const goroutines = 32
	const perG = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dev := g % len(devices)
			x := devices[dev]
			vecs := make([][]float64, x.Cols())
			for j := range vecs {
				vecs[j] = x.Col(j, nil)
			}
			for i := 0; i < perG; i++ {
				var out AssignResponse
				raw, _ := json.Marshal(AssignRequest{Points: vecs})
				resp, err := http.Post(base+"/v1/assign", "application/json", bytes.NewReader(raw))
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("goroutine %d: status %d: %s", g, resp.StatusCode, data)
					return
				}
				if err := json.Unmarshal(data, &out); err != nil {
					errCh <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				for j, a := range out.Assignments {
					if a.Label != res.Labels[dev][j] {
						errCh <- fmt.Errorf("goroutine %d: point %d served %d, offline %d (model %s)",
							g, j, a.Label, res.Labels[dev][j], out.Model)
						return
					}
				}
			}
		}(g)
	}
	// Hot-reload the artifact from disk while the load is in flight.
	reloadDone := make(chan struct{})
	go func() {
		defer close(reloadDone)
		for i := 0; i < 20; i++ {
			resp, err := http.Post(base+"/v1/reload", "application/json", nil)
			if err != nil {
				t.Errorf("reload: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("reload status %d", resp.StatusCode)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-reloadDone
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The registry must list every reload, exactly one active.
	models := reg.Models()
	if len(models) != 21 {
		t.Fatalf("registry lists %d loads, want 21", len(models))
	}
	active := 0
	for _, mi := range models {
		if mi.Active {
			active++
		}
	}
	if active != 1 {
		t.Fatalf("%d active models, want 1", active)
	}

	// Metrics consistency: every accepted request finished, none errored,
	// every submitted point was assigned.
	text := fetchMetrics(t, base)
	requests := metricValue(t, text, "fedsc_serve_requests_total")
	if requests != goroutines*perG {
		t.Fatalf("requests_total %d, want %d", requests, goroutines*perG)
	}
	if v := metricValue(t, text, "fedsc_serve_request_errors_total"); v != 0 {
		t.Fatalf("request_errors_total %d", v)
	}
	if v := metricValue(t, text, "fedsc_serve_in_flight"); v != 0 {
		t.Fatalf("in_flight %d after quiescence", v)
	}
	if v := metricValue(t, text, "fedsc_serve_latency_seconds_count"); v != requests {
		t.Fatalf("latency count %d, requests %d", v, requests)
	}
	points := int64(0)
	for g := 0; g < goroutines; g++ {
		points += int64(devices[g%len(devices)].Cols()) * perG
	}
	if v := metricValue(t, text, "fedsc_serve_batch_points_sum"); v != points {
		t.Fatalf("batch points sum %d, want %d", v, points)
	}
}

func TestAssignBadRequests(t *testing.T) {
	_, _, m := trainModel(t, 73)
	reg := NewRegistry()
	if err := reg.SetModel("m1", m); err != nil {
		t.Fatalf("SetModel: %v", err)
	}
	base, stop := startServer(t, reg)
	defer stop()
	cases := []struct {
		name string
		body string
	}{
		{"empty", `{}`},
		{"both", `{"point": [1], "points": [[1]]}`},
		{"bad json", `{`},
		{"wrong dims", `{"point": [1, 2, 3]}`},
	}
	for _, c := range cases {
		resp, err := http.Post(base+"/v1/assign", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
	// GET on assign and reload.
	for _, path := range []string{"/v1/assign", "/v1/reload"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s: status %d, want 405", path, resp.StatusCode)
		}
	}
	// Reload without a file-backed registry must fail cleanly.
	resp, err := http.Post(base+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload without path: status %d, want 500", resp.StatusCode)
	}
}

func TestHealthzBeforeModel(t *testing.T) {
	base, stop := startServer(t, NewRegistry())
	defer stop()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no model: %d, want 503", resp.StatusCode)
	}
}
