// Package serve turns a completed one-shot Fed-SC round into a
// long-running inference service: it loads the model artifact a round
// produced (per-global-cluster subspace bases, package core), answers
// "which cluster does this new point belong to?" by minimum projection
// residual, coalesces concurrent requests into blocked batches, supports
// atomic hot swap of the model, and exposes an HTTP JSON API with
// Prometheus-style metrics.
package serve

import (
	"fmt"
	"math"

	"fedsc/internal/core"
	"fedsc/internal/mat"
)

// Engine scores points against one immutable model. All methods are
// safe for concurrent use: the bases are never mutated after
// construction.
type Engine struct {
	bases   []*mat.Dense
	ambient int
}

// NewEngine validates the model and precomputes the per-cluster
// projector state (the orthonormal bases; the projector U Uᵀ itself is
// never materialized because the residual kernel only needs UᵀX).
func NewEngine(m *core.Model) (*Engine, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Engine{bases: m.Bases(), ambient: m.Ambient}, nil
}

// Ambient returns the data dimension n the engine expects.
func (e *Engine) Ambient() int { return e.ambient }

// L returns the number of global clusters.
func (e *Engine) L() int { return len(e.bases) }

// Assign scores every column of x against all cluster subspaces with one
// blocked matmul per cluster and returns each point's minimum-residual
// label and residual norm ‖x − U Uᵀx‖.
func (e *Engine) Assign(x *mat.Dense) (labels []int, residuals []float64, err error) {
	if x.Rows() != e.ambient {
		return nil, nil, fmt.Errorf("serve: points live in %d dims, model expects %d", x.Rows(), e.ambient)
	}
	b := x.Cols()
	labels = make([]int, b)
	residuals = make([]float64, b)
	if b == 0 {
		return labels, residuals, nil
	}
	norms := mat.ColNormsSq(x)
	for j := range residuals {
		residuals[j] = math.Inf(1)
	}
	for g, u := range e.bases {
		r := mat.ResidualsSq(u, x, norms)
		for j, v := range r {
			if v < residuals[j] {
				residuals[j], labels[j] = v, g
			}
		}
	}
	for j, v := range residuals {
		residuals[j] = math.Sqrt(v)
	}
	return labels, residuals, nil
}

// AssignPoint scores a single point.
func (e *Engine) AssignPoint(x []float64) (int, float64, error) {
	if len(x) != e.ambient {
		return 0, 0, fmt.Errorf("serve: point has %d dims, model expects %d", len(x), e.ambient)
	}
	labels, residuals, err := e.Assign(mat.NewDenseData(e.ambient, 1, append([]float64(nil), x...)))
	if err != nil {
		return 0, 0, err
	}
	return labels[0], residuals[0], nil
}
