package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"fedsc/internal/mat"
)

func newTestRegistry(t testing.TB, seed int64) (*Registry, []*mat.Dense, [][]int) {
	t.Helper()
	devices, res, m := trainModel(t, seed)
	reg := NewRegistry()
	if err := reg.SetModel("test-model", m); err != nil {
		t.Fatalf("SetModel: %v", err)
	}
	return reg, devices, res.Labels
}

func TestBatcherAssignMatchesEngine(t *testing.T) {
	reg, devices, labels := newTestRegistry(t, 61)
	metrics := NewMetrics()
	b := NewBatcher(reg, metrics, BatcherOptions{MaxBatch: 8, MaxWait: time.Millisecond})
	defer b.Stop()
	x := devices[0]
	vecs := make([][]float64, x.Cols())
	for j := range vecs {
		vecs[j] = x.Col(j, nil)
	}
	got, model, err := b.Assign(context.Background(), vecs)
	if err != nil {
		t.Fatalf("assign: %v", err)
	}
	if model != "test-model" {
		t.Fatalf("scored by %q", model)
	}
	for j, a := range got {
		if a.Label != labels[0][j] {
			t.Fatalf("point %d: batcher %d, round %d", j, a.Label, labels[0][j])
		}
	}
	if metrics.Assigned() != int64(len(vecs)) {
		t.Fatalf("metrics counted %d assignments, want %d", metrics.Assigned(), len(vecs))
	}
}

func TestBatcherCoalesces(t *testing.T) {
	reg, devices, _ := newTestRegistry(t, 62)
	metrics := NewMetrics()
	// A generous window so concurrent singles land in one batch.
	b := NewBatcher(reg, metrics, BatcherOptions{MaxBatch: 64, MaxWait: 50 * time.Millisecond, Workers: 1})
	defer b.Stop()
	x := devices[0]
	const k = 16
	var wg sync.WaitGroup
	for j := 0; j < k; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			if _, _, err := b.Assign(context.Background(), [][]float64{x.Col(j, nil)}); err != nil {
				t.Errorf("assign %d: %v", j, err)
			}
		}(j)
	}
	wg.Wait()
	if metrics.Assigned() != k {
		t.Fatalf("assigned %d, want %d", metrics.Assigned(), k)
	}
	if batches := metrics.Batches(); batches >= k {
		t.Fatalf("no coalescing: %d batches for %d points", batches, k)
	}
}

func TestBatcherRejectsMismatchedDimsIndividually(t *testing.T) {
	reg, devices, _ := newTestRegistry(t, 63)
	b := NewBatcher(reg, NewMetrics(), BatcherOptions{MaxBatch: 8, MaxWait: 20 * time.Millisecond, Workers: 1})
	defer b.Stop()
	var wg sync.WaitGroup
	var goodErr, badErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, goodErr = b.Assign(context.Background(), [][]float64{devices[0].Col(0, nil)})
	}()
	go func() {
		defer wg.Done()
		_, _, badErr = b.Assign(context.Background(), [][]float64{make([]float64, 3)})
	}()
	wg.Wait()
	if goodErr != nil {
		t.Fatalf("good request failed alongside a bad one: %v", goodErr)
	}
	if badErr == nil {
		t.Fatal("mismatched-dimension request succeeded")
	}
}

func TestBatcherEmptyRequest(t *testing.T) {
	reg, _, _ := newTestRegistry(t, 64)
	b := NewBatcher(reg, NewMetrics(), BatcherOptions{})
	defer b.Stop()
	if _, _, err := b.Assign(context.Background(), nil); err == nil {
		t.Fatal("empty request accepted")
	}
}

func TestBatcherNoModel(t *testing.T) {
	b := NewBatcher(NewRegistry(), NewMetrics(), BatcherOptions{MaxWait: -1})
	defer b.Stop()
	if _, _, err := b.Assign(context.Background(), [][]float64{{1, 2}}); err == nil {
		t.Fatal("assign with no model loaded succeeded")
	}
}

func TestBatcherStop(t *testing.T) {
	reg, devices, _ := newTestRegistry(t, 65)
	b := NewBatcher(reg, NewMetrics(), BatcherOptions{})
	b.Stop()
	b.Stop() // idempotent
	_, _, err := b.Assign(context.Background(), [][]float64{devices[0].Col(0, nil)})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("assign after stop: %v, want ErrStopped", err)
	}
}

func TestBatcherContextCancel(t *testing.T) {
	reg, devices, _ := newTestRegistry(t, 66)
	b := NewBatcher(reg, NewMetrics(), BatcherOptions{})
	defer b.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := b.Assign(ctx, [][]float64{devices[0].Col(0, nil)})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled assign: %v", err)
	}
}

// TestRetryAfterSeconds pins the derived Retry-After arithmetic: the
// hint is ceil(batches/Workers)·MaxWait rounded up to whole seconds
// and clamped to [1, 60], never the old hardcoded "1".
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		name   string
		queued int64
		opts   BatcherOptions
		want   int
	}{
		{"ten batches one worker", 10, BatcherOptions{MaxBatch: 1, MaxWait: 500 * time.Millisecond, Workers: 1}, 5},
		{"workers divide the backlog", 10, BatcherOptions{MaxBatch: 1, MaxWait: 500 * time.Millisecond, Workers: 5}, 1},
		{"partial batch rounds up", 5, BatcherOptions{MaxBatch: 4, MaxWait: time.Second, Workers: 1}, 2},
		{"empty queue floors at one second", 0, BatcherOptions{MaxBatch: 64, MaxWait: time.Second, Workers: 4}, 1},
		{"sub-second backlog floors at one second", 3, BatcherOptions{MaxBatch: 64, MaxWait: 200 * time.Microsecond, Workers: 4}, 1},
		{"pathological queue clamps at a minute", 1 << 20, BatcherOptions{MaxBatch: 1, MaxWait: time.Second, Workers: 1}, 60},
	} {
		if got := retryAfterSeconds(tc.queued, tc.opts.withDefaults()); got != tc.want {
			t.Fatalf("%s: retryAfterSeconds(%d) = %d, want %d", tc.name, tc.queued, got, tc.want)
		}
	}
	// The batcher method agrees with the helper on a live (idle) pool.
	reg, _, _ := newTestRegistry(t, 67)
	b := NewBatcher(reg, NewMetrics(), BatcherOptions{MaxBatch: 2, MaxWait: time.Second, Workers: 1})
	defer b.Stop()
	if got := b.RetryAfter(); got != 1 {
		t.Fatalf("idle batcher RetryAfter = %d, want 1", got)
	}
}
