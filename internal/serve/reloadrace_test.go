package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"fedsc/internal/store"
)

// startStoreServer runs the full stack over a store-backed registry
// with the given batcher options.
func startStoreServer(t *testing.T, st *store.Store, opts BatcherOptions) (*Registry, *Metrics, string, func()) {
	t.Helper()
	reg := NewRegistry()
	if _, err := reg.UseStore(st); err != nil {
		t.Fatalf("use store: %v", err)
	}
	metrics := NewMetrics()
	b := NewBatcher(reg, metrics, opts)
	h := NewHandler(reg, b, metrics)
	base, stop := startListener(t, h)
	return reg, metrics, base, stop
}

// TestReloadRacingAssignScoresOneSnapshot is the satellite regression:
// concurrent /v1/reload-driven store Syncs race batched /v1/assign
// under -race, and every in-flight batch must score against exactly
// one snapshot. The two artifacts deployed under the same name assign
// opposite labels to the probe points, so a batch that mixed snapshots
// would produce a label pattern neither artifact can emit.
func TestReloadRacingAssignScoresOneSnapshot(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	a := axisModel(t, []int{0, 1}) // e0→0, e1→1
	b := axisModel(t, []int{1, 0}) // e0→1, e1→0
	if _, err := st.PutTagged("m", a); err != nil {
		t.Fatalf("put: %v", err)
	}
	_, _, base, stop := startStoreServer(t, st, BatcherOptions{MaxBatch: 32})
	defer stop()

	// Probe batch: alternating axis points. Under artifact a the labels
	// alternate 0,1,0,1…; under b they alternate 1,0,1,0… Any other
	// pattern means two snapshots answered one batch.
	const probe = 8
	points := make([][]float64, probe)
	for i := range points {
		points[i] = axisPoint(i % 2)
	}
	body, err := json.Marshal(AssignRequest{Model: "m", Points: points})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}

	const assigners, perG = 8, 40
	var wg sync.WaitGroup
	errCh := make(chan error, assigners+1)
	for g := 0; g < assigners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp, err := http.Post(base+"/v1/assign", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- fmt.Errorf("assigner %d: %v", g, err)
					return
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("assigner %d: status %d err %v: %s", g, resp.StatusCode, err, data)
					return
				}
				var out AssignResponse
				if err := json.Unmarshal(data, &out); err != nil {
					errCh <- fmt.Errorf("assigner %d: %v", g, err)
					return
				}
				if len(out.Assignments) != probe {
					errCh <- fmt.Errorf("assigner %d: %d assignments for %d points", g, len(out.Assignments), probe)
					return
				}
				// first label fixes which artifact answered; every other
				// label must agree with it.
				first := out.Assignments[0].Label
				for j, asg := range out.Assignments {
					want := (first + j) % 2
					if asg.Label != want {
						errCh <- fmt.Errorf("assigner %d: batch mixed snapshots: labels[%d]=%d with labels[0]=%d",
							g, j, asg.Label, first)
						return
					}
				}
			}
		}(g)
	}
	// The swapper alternates the artifact behind "m" and reloads through
	// the HTTP endpoint, exactly as a deploy loop would.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			next := a
			if i%2 == 0 {
				next = b
			}
			if _, err := st.PutTagged("m", next); err != nil {
				errCh <- fmt.Errorf("swap %d: %v", i, err)
				return
			}
			resp, err := http.Post(base+"/v1/reload", "application/json", nil)
			if err != nil {
				errCh <- fmt.Errorf("reload %d: %v", i, err)
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("reload %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestHTTPModelRoutingAndAdmission covers the HTTP-visible contract of
// the multi-model rework: the model field routes, unknown models are
// 400, a request past the admission bound is 429 with Retry-After, and
// the new per-model and queue metrics appear on /metrics.
func TestHTTPModelRoutingAndAdmission(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	if _, err := st.PutTagged("alpha", axisModel(t, []int{0, 1})); err != nil {
		t.Fatalf("put alpha: %v", err)
	}
	if _, err := st.PutTagged("beta", axisModel(t, []int{1, 0})); err != nil {
		t.Fatalf("put beta: %v", err)
	}
	_, metrics, base, stop := startStoreServer(t, st, BatcherOptions{MaxBatch: 4, MaxQueue: 8, MaxWait: -1})
	defer stop()

	for _, tc := range []struct {
		model string
		want  int
	}{{"alpha", 0}, {"beta", 1}, {"", 0}} {
		var out AssignResponse
		status, body := postJSON(t, base+"/v1/assign",
			AssignRequest{Model: tc.model, Point: axisPoint(0)}, &out)
		if status != http.StatusOK {
			t.Fatalf("assign model %q: %d %s", tc.model, status, body)
		}
		if out.Assignments[0].Label != tc.want {
			t.Fatalf("model %q labeled e0 as %d, want %d", tc.model, out.Assignments[0].Label, tc.want)
		}
	}
	if status, _ := postJSON(t, base+"/v1/assign",
		AssignRequest{Model: "ghost", Point: axisPoint(0)}, nil); status != http.StatusBadRequest {
		t.Fatalf("unknown model: status %d, want 400", status)
	}

	// Admission: 9 points against MaxQueue=8 must shed with 429.
	big := make([][]float64, 9)
	for i := range big {
		big[i] = axisPoint(i % 2)
	}
	raw, err := json.Marshal(AssignRequest{Model: "alpha", Points: big})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+"/v1/assign", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("oversized post: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized post: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if metrics.Shed() != 1 {
		t.Fatalf("shed counter %d, want 1", metrics.Shed())
	}

	// Per-model and admission metrics are exposed.
	text := fetchMetrics(t, base)
	for _, want := range []string{
		`fedsc_serve_assignments_total{model="alpha"} 2`,
		`fedsc_serve_assignments_total{model="beta"} 1`,
		`fedsc_serve_model_batches_total{model="alpha"} 2`,
		"fedsc_serve_shed_total 1",
		"fedsc_serve_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}

	// Read-only endpoints reject non-GET with 405.
	for _, path := range []string{"/v1/models", "/healthz", "/metrics"} {
		resp, err := http.Post(base+path, "application/json", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
	}

	// /v1/models shows both manifest entries active, default flagged.
	mr, err := http.Get(base + "/v1/models")
	if err != nil {
		t.Fatalf("models: %v", err)
	}
	var infos []ModelInfo
	if err := json.NewDecoder(mr.Body).Decode(&infos); err != nil {
		t.Fatalf("decode models: %v", err)
	}
	mr.Body.Close()
	active, defaults := 0, 0
	for _, mi := range infos {
		if mi.Active {
			active++
		}
		if mi.Default {
			defaults++
			if mi.Name != "alpha" {
				t.Fatalf("default entry %+v, want alpha", mi)
			}
		}
	}
	if active != 2 || defaults != 1 {
		t.Fatalf("models listing: %d active, %d default: %+v", active, defaults, infos)
	}
}
