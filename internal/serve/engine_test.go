package serve

import (
	"math/rand"
	"testing"

	"fedsc/internal/core"
	"fedsc/internal/mat"
	"fedsc/internal/synth"
)

// trainModel runs Fed-SC on clean synthetic data and returns the devices,
// the round result, and the serving artifact built from it.
func trainModel(t testing.TB, seed int64) ([]*mat.Dense, core.Result, *core.Model) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n, d, l, z, lPrime, per = 20, 3, 4, 16, 2, 8
	s := synth.RandomSubspaces(n, d, l, rng)
	devices := make([]*mat.Dense, z)
	for dev := 0; dev < z; dev++ {
		clusters := rng.Perm(l)[:lPrime]
		counts := make([]int, l)
		for _, c := range clusters {
			counts[c] = per
		}
		devices[dev] = s.SampleCounts(counts, rng).X
	}
	res := core.Run(devices, l, core.Options{Local: core.LocalOptions{UseEigengap: true}}, rng)
	m, err := core.ModelFromResult(res, l, 0, core.CentralSSC)
	if err != nil {
		t.Fatalf("ModelFromResult: %v", err)
	}
	return devices, res, m
}

func TestEngineReproducesRoundLabels(t *testing.T) {
	devices, res, m := trainModel(t, 51)
	eng, err := NewEngine(m)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if eng.Ambient() != 20 || eng.L() != 4 {
		t.Fatalf("engine shape %dx%d", eng.Ambient(), eng.L())
	}
	for dev, x := range devices {
		labels, residuals, err := eng.Assign(x)
		if err != nil {
			t.Fatalf("assign: %v", err)
		}
		for j, g := range labels {
			if g != res.Labels[dev][j] {
				t.Fatalf("device %d point %d: engine %d, round %d", dev, j, g, res.Labels[dev][j])
			}
			if residuals[j] < 0 || residuals[j] > 0.5 {
				t.Fatalf("device %d point %d: implausible residual %v for clean in-subspace data", dev, j, residuals[j])
			}
		}
	}
}

func TestEngineSinglePointMatchesBatch(t *testing.T) {
	devices, _, m := trainModel(t, 52)
	eng, err := NewEngine(m)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	x := devices[0]
	labels, residuals, err := eng.Assign(x)
	if err != nil {
		t.Fatalf("assign: %v", err)
	}
	col := make([]float64, x.Rows())
	for j := 0; j < x.Cols(); j++ {
		x.Col(j, col)
		lab, res, err := eng.AssignPoint(col)
		if err != nil {
			t.Fatalf("assign point: %v", err)
		}
		if lab != labels[j] || res != residuals[j] {
			t.Fatalf("point %d: single (%d, %v) vs batch (%d, %v)", j, lab, res, labels[j], residuals[j])
		}
	}
}

func TestEngineRejectsWrongDimension(t *testing.T) {
	_, _, m := trainModel(t, 53)
	eng, err := NewEngine(m)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, _, err := eng.Assign(mat.NewDense(7, 2)); err == nil {
		t.Fatal("wrong-dimension batch accepted")
	}
	if _, _, err := eng.AssignPoint(make([]float64, 7)); err == nil {
		t.Fatal("wrong-dimension point accepted")
	}
}

func TestEngineEmptyBatch(t *testing.T) {
	_, _, m := trainModel(t, 54)
	eng, err := NewEngine(m)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	labels, residuals, err := eng.Assign(mat.NewDense(eng.Ambient(), 0))
	if err != nil || len(labels) != 0 || len(residuals) != 0 {
		t.Fatalf("empty batch: %v %v %v", labels, residuals, err)
	}
}
