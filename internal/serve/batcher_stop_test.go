package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestStopWaitsForDrainAcrossCallers is the regression test for the
// concurrent-Stop race: a second Stop used to return right after
// wg.Wait() while the first was still answering stragglers, letting its
// caller observe a half-stopped batcher. The test builds the exact
// interleaving: workers already gone (none started, so wg.Wait is
// instant), a straggler in the queue whose reply buffer is full so the
// first Stop blocks mid-drain, and a second straggler behind it.
func TestStopWaitsForDrainAcrossCallers(t *testing.T) {
	b := &Batcher{
		reqs: make(chan *batchRequest, 8),
		stop: make(chan struct{}),
	}
	blocker := &batchRequest{out: make(chan batchResponse, 1)}
	blocker.out <- batchResponse{} // full buffer: the drain's send blocks
	straggler := &batchRequest{out: make(chan batchResponse, 1)}
	b.reqs <- blocker
	b.reqs <- straggler

	first := make(chan struct{})
	go func() {
		b.Stop()
		close(first)
	}()
	// Let the first Stop reach the blocked drain send.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-first:
		t.Fatal("first Stop returned with a straggler still queued")
	default:
	}

	second := make(chan struct{})
	go func() {
		b.Stop()
		close(second)
	}()
	select {
	case <-second:
		t.Fatal("second Stop returned while the first was still draining stragglers")
	case <-time.After(50 * time.Millisecond):
	}

	// Unblock the drain; now both Stops must finish and the straggler
	// must have been answered.
	<-blocker.out
	for name, ch := range map[string]chan struct{}{"first": first, "second": second} {
		select {
		case <-ch:
		case <-time.After(time.Second):
			t.Fatalf("%s Stop did not return after the drain unblocked", name)
		}
	}
	select {
	case resp := <-straggler.out:
		if !errors.Is(resp.err, ErrStopped) {
			t.Fatalf("straggler answered with %v, want ErrStopped", resp.err)
		}
	default:
		t.Fatal("straggler left unanswered after Stop returned")
	}
}

// TestStopConcurrentWithAssigns hammers Stop against in-flight Assigns
// under the race detector: every Assign must resolve (answer or
// ErrStopped), every Stop must return, and post-Stop Assigns must be
// refused.
func TestStopConcurrentWithAssigns(t *testing.T) {
	reg, devices, _ := newTestRegistry(t, 77)
	b := NewBatcher(reg, NewMetrics(), BatcherOptions{MaxBatch: 4, MaxWait: time.Millisecond, Workers: 2})
	vec := devices[0].Col(0, nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := b.Assign(context.Background(), [][]float64{vec})
			if err != nil && !errors.Is(err, ErrStopped) {
				t.Errorf("Assign: %v", err)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Stop()
		}()
	}
	wg.Wait()
	if _, _, err := b.Assign(context.Background(), [][]float64{vec}); !errors.Is(err, ErrStopped) {
		t.Fatalf("Assign after Stop returned %v, want ErrStopped", err)
	}
}
