package serve

import (
	"fmt"
	"testing"
)

// TestRegistryHistoryCap is the regression test for unbounded history
// growth: a server hot-reloading for months must retain only the most
// recent historyCap loads.
func TestRegistryHistoryCap(t *testing.T) {
	_, _, m := trainModel(t, 71)
	reg := NewRegistry()
	const loads = historyCap + 9
	for i := 0; i < loads; i++ {
		if err := reg.SetModel(fmt.Sprintf("m%03d", i), m); err != nil {
			t.Fatalf("SetModel %d: %v", i, err)
		}
	}
	infos := reg.Models()
	if len(infos) != historyCap {
		t.Fatalf("history holds %d entries after %d loads, want cap %d", len(infos), loads, historyCap)
	}
	// The retained window is the most recent loads, oldest first.
	for i, info := range infos {
		if want := fmt.Sprintf("m%03d", loads-historyCap+i); info.Name != want {
			t.Fatalf("entry %d is %q, want %q", i, info.Name, want)
		}
	}
	if !infos[len(infos)-1].Active {
		t.Fatalf("latest load not marked active: %+v", infos[len(infos)-1])
	}
}

// TestRegistryActiveBySequenceNumber is the regression test for the
// Active flag: it must key on the monotonic load sequence number, not
// on wall-clock LoadedAt plus checksum. Two loads of the identical
// artifact within one clock tick share both LoadedAt and checksum, so
// an identity check built on them marks both history entries active;
// Seq is allocated per load and never collides.
func TestRegistryActiveBySequenceNumber(t *testing.T) {
	_, _, m := trainModel(t, 72)
	reg := NewRegistry()
	if err := reg.SetModel("first", m); err != nil {
		t.Fatalf("SetModel first: %v", err)
	}
	firstSnap := reg.Get("first")
	if err := reg.SetModel("second", m); err != nil {
		t.Fatalf("SetModel second: %v", err)
	}
	// Force the ambiguous wall-clock case: identical artifact, identical
	// load time on both the snapshots and their history entries.
	secondSnap := reg.Get("second")
	secondSnap.LoadedAt = firstSnap.LoadedAt
	reg.mu.Lock()
	for i := range reg.history {
		reg.history[i].LoadedAt = firstSnap.LoadedAt
	}
	reg.mu.Unlock()
	// Roll the served set back to the first load only, without touching
	// the history — the situation the identity check exists for.
	reg.swapLocked(func(set *modelSet) {
		delete(set.byName, "second")
		set.def = "first"
	})

	infos := reg.Models()
	if len(infos) != 2 {
		t.Fatalf("history has %d entries, want 2", len(infos))
	}
	if infos[0].Seq == infos[1].Seq {
		t.Fatalf("history entries share sequence number %d", infos[0].Seq)
	}
	if !infos[0].Active || !infos[0].Default {
		t.Fatalf("served load %q not marked active default: %+v", firstSnap.Name, infos)
	}
	if infos[1].Active {
		t.Fatalf("rolled-back load %q marked active alongside the served one: %+v", infos[1].Name, infos)
	}
}
