package serve

import (
	"fmt"
	"testing"
)

// TestRegistryHistoryCap is the regression test for unbounded history
// growth: a server hot-reloading for months must retain only the most
// recent historyCap loads.
func TestRegistryHistoryCap(t *testing.T) {
	_, _, m := trainModel(t, 71)
	reg := NewRegistry()
	const loads = historyCap + 9
	for i := 0; i < loads; i++ {
		if err := reg.SetModel(fmt.Sprintf("m%03d", i), m); err != nil {
			t.Fatalf("SetModel %d: %v", i, err)
		}
	}
	infos := reg.Models()
	if len(infos) != historyCap {
		t.Fatalf("history holds %d entries after %d loads, want cap %d", len(infos), loads, historyCap)
	}
	// The retained window is the most recent loads, oldest first.
	for i, info := range infos {
		if want := fmt.Sprintf("m%03d", loads-historyCap+i); info.Name != want {
			t.Fatalf("entry %d is %q, want %q", i, info.Name, want)
		}
	}
	if !infos[len(infos)-1].Active {
		t.Fatalf("latest load not marked active: %+v", infos[len(infos)-1])
	}
}

// TestRegistryActiveBySnapshotIdentity is the regression test for the
// Active flag: it must follow the snapshot readers actually score
// against, not the last history index. Pre-fix, rolling back current to
// an earlier snapshot still showed the newest load as active.
func TestRegistryActiveBySnapshotIdentity(t *testing.T) {
	_, _, m1 := trainModel(t, 72)
	_, _, m2 := trainModel(t, 73)
	reg := NewRegistry()
	if err := reg.SetModel("first", m1); err != nil {
		t.Fatalf("SetModel first: %v", err)
	}
	firstSnap := reg.Current()
	if err := reg.SetModel("second", m2); err != nil {
		t.Fatalf("SetModel second: %v", err)
	}
	// Roll the served snapshot back without touching the history — the
	// situation the identity check exists for.
	reg.current.Store(firstSnap)

	infos := reg.Models()
	if len(infos) != 2 {
		t.Fatalf("history has %d entries, want 2", len(infos))
	}
	if !infos[0].Active {
		t.Fatalf("served snapshot %q not marked active: %+v", firstSnap.Name, infos)
	}
	if infos[1].Active {
		t.Fatalf("stale load %q marked active alongside the served one: %+v", infos[1].Name, infos)
	}
}
