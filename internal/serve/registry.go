package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fedsc/internal/core"
	"fedsc/internal/store"
)

// Snapshot is one loaded model plus its precomputed engine. Snapshots
// are immutable; the registry swaps whole model sets atomically, so a
// batch in flight keeps scoring against the snapshot it started with
// even while a reload lands.
type Snapshot struct {
	// Name identifies the model: a manifest entry, artifact filename, or
	// a caller-supplied tag.
	Name     string
	Engine   *Engine
	Model    *core.Model
	LoadedAt time.Time
	// Seq is the registry-wide monotonic load sequence number. It is the
	// snapshot's identity: two loads of the same artifact within one
	// clock tick share LoadedAt and checksum but never Seq.
	Seq uint64
	// Digest is the full hex SHA-256 content address of the artifact.
	Digest string
}

// ModelInfo is the /v1/models view of one registry load.
type ModelInfo struct {
	Name     string    `json:"name"`
	Ambient  int       `json:"ambient"`
	L        int       `json:"clusters"`
	Method   string    `json:"method"`
	Created  time.Time `json:"created"`
	LoadedAt time.Time `json:"loaded_at"`
	Checksum string    `json:"checksum"`
	// Digest is the full hex SHA-256 content address of the artifact —
	// the same string the store manifest maps the tag (Name) to, so a
	// fleet rollback is observable from the serving side: after the
	// manifest retags and the registry syncs, the active entry for the
	// tag carries the restored digest.
	Digest  string `json:"digest"`
	Seq     uint64 `json:"seq"`
	Active  bool   `json:"active"`
	Default bool   `json:"default,omitempty"`
}

// historyCap bounds the load log. A long-lived server hot-reloading
// every few minutes would otherwise grow the history without bound;
// only the most recent loads are of operational interest.
const historyCap = 32

// modelSet is the immutable routing table readers resolve against: one
// atomic pointer load yields every served model plus the default name.
type modelSet struct {
	def    string
	byName map[string]*Snapshot
}

var emptySet = &modelSet{byName: map[string]*Snapshot{}}

// Registry holds the served models and the history of loads. Readers
// (the batcher workers) take the current model set with a single atomic
// pointer load per batch; writers (reloads, store syncs) build new
// engines off to the side and swap the whole set atomically — a hot
// deploy never blocks serving.
type Registry struct {
	set     atomic.Pointer[modelSet]
	nextSeq atomic.Uint64

	mu      sync.Mutex
	path    string       // single-artifact path for Reload; may be empty
	st      *store.Store // manifest-driven mode; may be nil
	history []ModelInfo
}

// NewRegistry returns an empty registry; Serve reports unhealthy until
// the first model is set.
func NewRegistry() *Registry {
	r := &Registry{}
	r.set.Store(emptySet)
	return r
}

// Current returns the default model's snapshot, or nil before the
// first load.
func (r *Registry) Current() *Snapshot {
	set := r.set.Load()
	return set.byName[set.def]
}

// Get resolves a model name to its snapshot; the empty name routes to
// the default model. It returns nil for unknown names.
func (r *Registry) Get(name string) *Snapshot {
	set := r.set.Load()
	if name == "" {
		name = set.def
	}
	return set.byName[name]
}

// Names returns the served model names in sorted order.
func (r *Registry) Names() []string {
	set := r.set.Load()
	names := make([]string, 0, len(set.byName))
	for name := range set.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// newSnapshot builds the engine for m under the next sequence number.
func (r *Registry) newSnapshot(name string, m *core.Model) (*Snapshot, error) {
	eng, err := NewEngine(m)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Name:     name,
		Engine:   eng,
		Model:    m,
		LoadedAt: time.Now(),
		Seq:      r.nextSeq.Add(1),
		Digest:   store.Digest(m),
	}, nil
}

// swapLocked publishes a modified copy of the current set. Callers hold
// r.mu; mutate edits the fresh copy in place.
func (r *Registry) swapLocked(mutate func(set *modelSet)) {
	old := r.set.Load()
	next := &modelSet{def: old.def, byName: make(map[string]*Snapshot, len(old.byName)+1)}
	for name, snap := range old.byName {
		next.byName[name] = snap
	}
	mutate(next)
	if _, ok := next.byName[next.def]; !ok {
		next.def = ""
		if len(next.byName) > 0 {
			names := make([]string, 0, len(next.byName))
			for name := range next.byName {
				names = append(names, name)
			}
			sort.Strings(names)
			next.def = names[0]
		}
	}
	r.set.Store(next)
}

// recordLocked appends the snapshot to the bounded load history.
func (r *Registry) recordLocked(snap *Snapshot) {
	m := snap.Model
	r.history = append(r.history, ModelInfo{
		Name:     snap.Name,
		Ambient:  m.Ambient,
		L:        m.L,
		Method:   m.Method,
		Created:  m.Created(),
		LoadedAt: snap.LoadedAt,
		Checksum: checksumHex(m),
		Digest:   snap.Digest,
		Seq:      snap.Seq,
	})
	if len(r.history) > historyCap {
		r.history = append(r.history[:0:0], r.history[len(r.history)-historyCap:]...)
	}
}

// SetModel builds the engine for m and atomically adds it to (or
// replaces it in) the served set under the given name. The first model
// ever set becomes the default route.
func (r *Registry) SetModel(name string, m *core.Model) error {
	snap, err := r.newSnapshot(name, m)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.swapLocked(func(set *modelSet) {
		set.byName[name] = snap
		if set.def == "" {
			set.def = name
		}
	})
	r.recordLocked(snap)
	return nil
}

// Remove drops a model from the served set. Removing the default
// reroutes the default to the smallest remaining name.
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.swapLocked(func(set *modelSet) { delete(set.byName, name) })
}

// SetDefault reroutes the empty model name to an already-served model.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.set.Load().byName[name] == nil {
		return fmt.Errorf("serve: set default: model %q not loaded", name)
	}
	r.swapLocked(func(set *modelSet) { set.def = name })
	return nil
}

// checksumHex is the short artifact digest shown in /v1/models.
func checksumHex(m *core.Model) string {
	return fmt.Sprintf("%x", m.Checksum[:8])
}

// LoadFile loads a model artifact from disk and makes it current; the
// path is remembered so Reload can re-read it later.
func (r *Registry) LoadFile(path string) error {
	m, err := core.LoadModel(path)
	if err != nil {
		return err
	}
	if err := r.SetModel(path, m); err != nil {
		return err
	}
	r.mu.Lock()
	r.path = path
	r.mu.Unlock()
	return nil
}

// UseStore binds the registry to a content-addressed artifact store
// and loads every manifest entry. From then on Reload (and SyncStore)
// polls the manifest: added or retagged names get fresh engines,
// removed names stop being served, and the manifest default becomes
// the default route.
func (r *Registry) UseStore(st *store.Store) ([]string, error) {
	r.mu.Lock()
	r.st = st
	r.mu.Unlock()
	return r.SyncStore()
}

// SyncStore re-reads the bound store's manifest and reconciles the
// served set against it, returning the names that changed (loaded,
// replaced, or removed) in sorted order. Engines are built before the
// swap, so readers always resolve against a complete set; a batch in
// flight finishes on the snapshot it resolved.
func (r *Registry) SyncStore() ([]string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.st == nil {
		return nil, fmt.Errorf("serve: no store bound (LoadFile mode)")
	}
	if _, err := r.st.Sync(); err != nil {
		return nil, err
	}
	man := r.st.Manifest()
	cur := r.set.Load()
	var changed []string
	loaded := map[string]*Snapshot{}
	for _, name := range man.Names() {
		digest := man.Models[name]
		if snap := cur.byName[name]; snap != nil && snap.Digest == digest {
			continue // unchanged entry keeps its snapshot (and Seq)
		}
		m, err := r.st.Get(digest)
		if err != nil {
			return nil, fmt.Errorf("serve: sync %q: %w", name, err)
		}
		snap, err := r.newSnapshot(name, m)
		if err != nil {
			return nil, fmt.Errorf("serve: sync %q: %w", name, err)
		}
		loaded[name] = snap
		changed = append(changed, name)
	}
	for name := range cur.byName {
		if _, ok := man.Models[name]; !ok {
			changed = append(changed, name)
		}
	}
	r.swapLocked(func(set *modelSet) {
		for name := range set.byName {
			if _, ok := man.Models[name]; !ok {
				delete(set.byName, name)
			}
		}
		for name, snap := range loaded {
			set.byName[name] = snap
		}
		if _, ok := set.byName[man.Default]; ok {
			set.def = man.Default
		}
	})
	names := make([]string, 0, len(loaded))
	for name := range loaded {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r.recordLocked(loaded[name])
	}
	sort.Strings(changed)
	return changed, nil
}

// Reload refreshes the served set from its backing storage: in store
// mode it reconciles against the manifest (SyncStore); in single-file
// mode it re-reads the artifact path of the last LoadFile. It fails
// when the registry was populated via SetModel only.
func (r *Registry) Reload() ([]string, error) {
	r.mu.Lock()
	st, path := r.st, r.path
	r.mu.Unlock()
	if st != nil {
		return r.SyncStore()
	}
	if path == "" {
		return nil, fmt.Errorf("serve: no artifact path or store configured for reload")
	}
	if err := r.LoadFile(path); err != nil {
		return nil, err
	}
	return []string{path}, nil
}

// Models lists the retained loads in order (most recent historyCap),
// marking active by load sequence number — an entry is active exactly
// when its Seq belongs to a snapshot readers can still resolve. Seq is
// allocated per load, so even two loads of the identical artifact
// within one clock tick (equal LoadedAt and checksum) stay
// distinguishable.
func (r *Registry) Models() []ModelInfo {
	set := r.set.Load()
	live := make(map[uint64]bool, len(set.byName))
	var defSeq uint64
	for name, snap := range set.byName {
		live[snap.Seq] = true
		if name == set.def {
			defSeq = snap.Seq
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ModelInfo, len(r.history))
	copy(out, r.history)
	for i := range out {
		out[i].Active = live[out[i].Seq]
		out[i].Default = out[i].Seq == defSeq && defSeq != 0
	}
	return out
}
