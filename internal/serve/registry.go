package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fedsc/internal/core"
)

// Snapshot is one loaded model plus its precomputed engine. Snapshots
// are immutable; the registry swaps whole snapshots atomically, so a
// batch in flight keeps scoring against the model it started with even
// while a reload lands.
type Snapshot struct {
	// Name identifies the model version (artifact filename or a caller
	// supplied tag).
	Name     string
	Engine   *Engine
	Model    *core.Model
	LoadedAt time.Time
}

// ModelInfo is the /v1/models view of one registry entry.
type ModelInfo struct {
	Name     string    `json:"name"`
	Ambient  int       `json:"ambient"`
	L        int       `json:"clusters"`
	Method   string    `json:"method"`
	Created  time.Time `json:"created"`
	LoadedAt time.Time `json:"loaded_at"`
	Checksum string    `json:"checksum"`
	Active   bool      `json:"active"`
}

// historyCap bounds the load log. A long-lived server hot-reloading
// every few minutes would otherwise grow the history without bound;
// only the most recent loads are of operational interest.
const historyCap = 32

// Registry holds the currently served model and the history of loads.
// Readers (the batcher workers) take the current snapshot with a single
// atomic pointer load on every batch; writers (reloads) build the new
// engine off to the side and swap it in atomically — a hot reload never
// blocks serving.
type Registry struct {
	current atomic.Pointer[Snapshot]

	mu      sync.Mutex
	path    string // artifact path for Reload; may be empty
	history []ModelInfo
}

// NewRegistry returns an empty registry; Serve reports unhealthy until
// the first model is set.
func NewRegistry() *Registry { return &Registry{} }

// Current returns the active snapshot, or nil before the first load.
func (r *Registry) Current() *Snapshot { return r.current.Load() }

// SetModel builds the engine for m and atomically makes it the served
// model under the given name.
func (r *Registry) SetModel(name string, m *core.Model) error {
	eng, err := NewEngine(m)
	if err != nil {
		return err
	}
	snap := &Snapshot{Name: name, Engine: eng, Model: m, LoadedAt: time.Now()}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.current.Store(snap)
	r.history = append(r.history, ModelInfo{
		Name:     name,
		Ambient:  m.Ambient,
		L:        m.L,
		Method:   m.Method,
		Created:  m.Created(),
		LoadedAt: snap.LoadedAt,
		Checksum: checksumHex(m),
	})
	if len(r.history) > historyCap {
		r.history = append(r.history[:0:0], r.history[len(r.history)-historyCap:]...)
	}
	return nil
}

// checksumHex is the short artifact digest shown in /v1/models and used
// to match history entries against the active snapshot.
func checksumHex(m *core.Model) string {
	return fmt.Sprintf("%x", m.Checksum[:8])
}

// LoadFile loads a model artifact from disk and makes it current; the
// path is remembered so Reload can re-read it later.
func (r *Registry) LoadFile(path string) error {
	m, err := core.LoadModel(path)
	if err != nil {
		return err
	}
	if err := r.SetModel(path, m); err != nil {
		return err
	}
	r.mu.Lock()
	r.path = path
	r.mu.Unlock()
	return nil
}

// Reload re-reads the artifact path of the last LoadFile. It fails when
// the registry was populated via SetModel only.
func (r *Registry) Reload() error {
	r.mu.Lock()
	path := r.path
	r.mu.Unlock()
	if path == "" {
		return fmt.Errorf("serve: no artifact path configured for reload")
	}
	return r.LoadFile(path)
}

// Models lists the retained loads in order (most recent historyCap),
// marking active by snapshot identity — the entry whose load time and
// checksum match the snapshot readers actually score against — rather
// than assuming the newest load is the one being served.
func (r *Registry) Models() []ModelInfo {
	cur := r.Current()
	var curSum string
	if cur != nil {
		curSum = checksumHex(cur.Model)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ModelInfo, len(r.history))
	copy(out, r.history)
	for i := range out {
		out[i].Active = cur != nil &&
			out[i].LoadedAt.Equal(cur.LoadedAt) && out[i].Checksum == curSum
	}
	return out
}
