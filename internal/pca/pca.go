// Package pca implements principal component analysis by truncated SVD
// of the centered data. It backs the k-FED + PCA-10 / PCA-100 baselines
// of Tables III-IV, where each device projects its local high-dimensional
// data before federated k-means. For the k ≪ min(n, N) projections these
// baselines use (PCA-10 on 1024-dimensional data), mat.TruncatedSVD
// dispatches to its randomized range-finder path, so fitting costs
// O(n·N·k) instead of a full O(min(n,N)³) factorization.
package pca

import "fedsc/internal/mat"

// Model is a fitted PCA projection.
type Model struct {
	// Mean is the column mean of the training data.
	Mean []float64
	// Components has one principal direction per column (n x k).
	Components *mat.Dense
}

// Fit computes the top-k principal components of x, whose COLUMNS are the
// data points. k is clamped to min(n, N).
func Fit(x *mat.Dense, k int) Model {
	n, cols := x.Dims()
	mean := make([]float64, n)
	if cols > 0 {
		for i := 0; i < n; i++ {
			row := x.Row(i)
			s := 0.0
			for _, v := range row {
				s += v
			}
			mean[i] = s / float64(cols)
		}
	}
	centered := x.Clone()
	for i := 0; i < n; i++ {
		row := centered.Row(i)
		for j := range row {
			row[j] -= mean[i]
		}
	}
	if k > n {
		k = n
	}
	if k > cols {
		k = cols
	}
	u, _ := mat.TruncatedSVD(centered, k)
	return Model{Mean: mean, Components: u}
}

// Transform projects the columns of x into the k-dimensional principal
// subspace, returning a k x N matrix.
func (m Model) Transform(x *mat.Dense) *mat.Dense {
	n, cols := x.Dims()
	if n != len(m.Mean) {
		panic("pca: Transform dimension mismatch")
	}
	centered := x.Clone()
	for i := 0; i < n; i++ {
		row := centered.Row(i)
		for j := 0; j < cols; j++ {
			row[j] -= m.Mean[i]
		}
	}
	return mat.MulTA(m.Components, centered)
}

// FitTransform fits on x and returns its projection.
func FitTransform(x *mat.Dense, k int) *mat.Dense {
	return Fit(x, k).Transform(x)
}
