package pca

import (
	"math"
	"math/rand"
	"testing"

	"fedsc/internal/mat"
)

func TestFitRecoversDominantDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	// Points spread along e1 with tiny noise elsewhere.
	n, cols := 6, 200
	x := mat.NewDense(n, cols)
	for j := 0; j < cols; j++ {
		x.Set(0, j, 10*rng.NormFloat64())
		for i := 1; i < n; i++ {
			x.Set(i, j, 0.01*rng.NormFloat64())
		}
	}
	m := Fit(x, 1)
	dir := m.Components.Col(0, nil)
	if math.Abs(math.Abs(dir[0])-1) > 0.01 {
		t.Fatalf("first PC should align with e1, got %v", dir)
	}
}

func TestTransformDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	x := mat.RandomGaussian(20, 30, rng)
	y := FitTransform(x, 5)
	if r, c := y.Dims(); r != 5 || c != 30 {
		t.Fatalf("projected dims %dx%d want 5x30", r, c)
	}
}

func TestTransformCentersData(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	x := mat.RandomGaussian(8, 50, rng)
	// Shift all points by a constant; projections must be shift-invariant.
	shifted := x.Clone()
	for i := 0; i < 8; i++ {
		row := shifted.Row(i)
		for j := range row {
			row[j] += 5
		}
	}
	m := Fit(x, 3)
	m2 := Fit(shifted, 3)
	// Projected variance along each component should match.
	p1 := m.Transform(x)
	p2 := m2.Transform(shifted)
	for c := 0; c < 3; c++ {
		v1, v2 := rowVar(p1, c), rowVar(p2, c)
		if math.Abs(v1-v2) > 1e-6*(1+v1) {
			t.Fatalf("component %d variance changed under shift: %v vs %v", c, v1, v2)
		}
	}
}

func rowVar(m *mat.Dense, i int) float64 {
	row := m.Row(i)
	mean := 0.0
	for _, v := range row {
		mean += v
	}
	mean /= float64(len(row))
	s := 0.0
	for _, v := range row {
		d := v - mean
		s += d * d
	}
	return s / float64(len(row))
}

func TestFitClampsK(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	x := mat.RandomGaussian(4, 3, rng)
	m := Fit(x, 100)
	if m.Components.Cols() > 3 {
		t.Fatalf("k should clamp to min(n,N)=3, got %d", m.Components.Cols())
	}
}

func TestPreservedVarianceOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	// Anisotropic data: variance 9, 4, 1 along first three axes.
	x := mat.NewDense(5, 300)
	for j := 0; j < 300; j++ {
		x.Set(0, j, 3*rng.NormFloat64())
		x.Set(1, j, 2*rng.NormFloat64())
		x.Set(2, j, 1*rng.NormFloat64())
	}
	p := FitTransform(x, 3)
	v0, v1, v2 := rowVar(p, 0), rowVar(p, 1), rowVar(p, 2)
	if !(v0 > v1 && v1 > v2) {
		t.Fatalf("projected variances not ordered: %v %v %v", v0, v1, v2)
	}
}
