package spectral

import (
	"math/rand"
	"testing"

	"fedsc/internal/sparse"
)

// isolatedGraph builds two equal dense blocks plus p vertices with no
// edges at all (zero degree).
func isolatedGraph(block, p int, rng *rand.Rand) *sparse.CSR {
	w, _ := blockGraph([]int{block, block}, 0, rng)
	n, _ := w.Dims()
	var entries []sparse.Coord
	for i := 0; i < n; i++ {
		w.Row(i, func(j int, v float64) {
			entries = append(entries, sparse.Coord{Row: i, Col: j, Val: v})
		})
	}
	return sparse.NewCSR(n+p, n+p, entries)
}

// TestClusterIsolatedVerticesDeterministic is the regression test for
// the zero-row embedding collapse: isolated vertices have all-zero
// embedding rows, which mat.Normalize left at the origin — equidistant
// from every unit-norm centroid, so their assignment (and with equal
// block sizes, which real block they merged into) was a degenerate tie
// decided by the k-means rng. With zero rows mapped to the canonical
// unit embedding the partition must not depend on the seed.
func TestClusterIsolatedVerticesDeterministic(t *testing.T) {
	w := isolatedGraph(8, 4, rand.New(rand.NewSource(9)))
	ref := Cluster(w, 2, rand.New(rand.NewSource(0)))
	for seed := int64(1); seed < 40; seed++ {
		got := Cluster(w, 2, rand.New(rand.NewSource(seed)))
		if !samePartition(ref, got) {
			t.Fatalf("partition depends on the k-means seed:\nseed 0: %v\nseed %d: %v", ref, seed, got)
		}
	}
	// All isolated vertices must land together: they are structurally
	// identical, and the canonical embedding gives them one position.
	n := len(ref)
	for i := n - 4; i < n; i++ {
		if ref[i] != ref[n-4] {
			t.Fatalf("isolated vertices split across clusters: %v", ref[n-4:])
		}
	}
	// The two real blocks must remain separated.
	if ref[0] == ref[8] {
		t.Fatalf("real blocks merged: %v", ref)
	}
}

// TestEstimateAndClusterIsolatedVerticesDeterministic covers the fused
// estimate+cluster path with the same degenerate-tie setup.
func TestEstimateAndClusterIsolatedVerticesDeterministic(t *testing.T) {
	w := isolatedGraph(8, 4, rand.New(rand.NewSource(9)))
	refR, ref := EstimateAndCluster(w, 2, rand.New(rand.NewSource(0)))
	for seed := int64(1); seed < 40; seed++ {
		r, got := EstimateAndCluster(w, 2, rand.New(rand.NewSource(seed)))
		if r != refR || !samePartition(ref, got) {
			t.Fatalf("estimate+partition depends on the seed:\nseed 0: r=%d %v\nseed %d: r=%d %v",
				refR, ref, seed, r, got)
		}
	}
}
