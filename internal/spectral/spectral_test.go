package spectral

import (
	"math"
	"math/rand"
	"testing"

	"fedsc/internal/sparse"
)

// blockGraph builds an affinity graph with dense blocks of the given
// sizes, optional weak cross-block links, and symmetric weights.
func blockGraph(sizes []int, crossWeight float64, rng *rand.Rand) (*sparse.CSR, []int) {
	n := 0
	for _, s := range sizes {
		n += s
	}
	truth := make([]int, n)
	var entries []sparse.Coord
	off := 0
	for b, s := range sizes {
		for i := 0; i < s; i++ {
			truth[off+i] = b
			for j := i + 1; j < s; j++ {
				w := 0.5 + 0.5*rng.Float64()
				entries = append(entries, sparse.Coord{Row: off + i, Col: off + j, Val: w})
				entries = append(entries, sparse.Coord{Row: off + j, Col: off + i, Val: w})
			}
		}
		off += s
	}
	if crossWeight > 0 {
		// One weak edge between consecutive blocks.
		off = 0
		for b := 0; b+1 < len(sizes); b++ {
			i := off
			j := off + sizes[b]
			entries = append(entries, sparse.Coord{Row: i, Col: j, Val: crossWeight})
			entries = append(entries, sparse.Coord{Row: j, Col: i, Val: crossWeight})
			off += sizes[b]
		}
	}
	return sparse.NewCSR(n, n, entries), truth
}

func samePartition(a, b []int) bool {
	fw := map[int]int{}
	bw := map[int]int{}
	for i := range a {
		if v, ok := fw[a[i]]; ok && v != b[i] {
			return false
		}
		if v, ok := bw[b[i]]; ok && v != a[i] {
			return false
		}
		fw[a[i]] = b[i]
		bw[b[i]] = a[i]
	}
	return true
}

func TestLaplacianEigsDisconnectedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	w, _ := blockGraph([]int{10, 12, 8}, 0, rng)
	vals, vecs := LaplacianEigs(w, 5, rng)
	// Three connected components: exactly three (near) zero eigenvalues,
	// then a jump.
	for i := 0; i < 3; i++ {
		if math.Abs(vals[i]) > 1e-8 {
			t.Fatalf("eigenvalue %d = %g, want 0", i, vals[i])
		}
	}
	if vals[3] < 0.1 {
		t.Fatalf("fourth eigenvalue %g should be clearly positive", vals[3])
	}
	if vecs.Cols() != 5 {
		t.Fatalf("requested 5 eigenvectors, got %d", vecs.Cols())
	}
}

func TestClusterRecoversBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	w, truth := blockGraph([]int{15, 20, 10}, 0.01, rng)
	labels := Cluster(w, 3, rng)
	if !samePartition(labels, truth) {
		t.Fatal("spectral clustering failed on near-block-diagonal graph")
	}
}

func TestClusterTrivialCases(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	w := sparse.NewCSR(4, 4, []sparse.Coord{{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1}})
	if labels := Cluster(w, 1, rng); len(labels) != 4 {
		t.Fatal("k=1 should return all-zero labels of full length")
	}
	labels := Cluster(w, 4, rng)
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	if len(seen) != 4 {
		t.Fatal("k=n should return singletons")
	}
	empty := sparse.NewCSR(0, 0, nil)
	if labels := Cluster(empty, 3, rng); len(labels) != 0 {
		t.Fatal("empty graph should return empty labels")
	}
}

func TestClusterHandlesIsolatedVertex(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	// Two connected pairs plus an isolated vertex; must not panic or NaN.
	w := sparse.NewCSR(5, 5, []sparse.Coord{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 2, Col: 3, Val: 1}, {Row: 3, Col: 2, Val: 1},
	})
	labels := Cluster(w, 3, rng)
	if labels[0] != labels[1] || labels[2] != labels[3] {
		t.Fatalf("pairs should cluster together: %v", labels)
	}
	if labels[4] == labels[0] || labels[4] == labels[2] {
		t.Fatalf("isolated vertex should be its own cluster: %v", labels)
	}
}

func TestEstimateClustersEigengap(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for _, sizes := range [][]int{{10, 10}, {8, 12, 9}, {6, 6, 6, 6}} {
		w, _ := blockGraph(sizes, 0, rng)
		got, vals := EstimateClusters(w, 0, rng)
		if got != len(sizes) {
			t.Fatalf("sizes %v: estimated %d clusters (eigs %v)", sizes, got, vals[:min(6, len(vals))])
		}
	}
}

func TestEstimateClustersRespectsMaxK(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	w, _ := blockGraph([]int{5, 5, 5, 5, 5}, 0, rng)
	got, _ := EstimateClusters(w, 3, rng)
	if got > 3 {
		t.Fatalf("estimate %d exceeds maxK=3", got)
	}
}

func TestEstimateClustersTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	w := sparse.NewCSR(1, 1, nil)
	if got, _ := EstimateClusters(w, 0, rng); got != 1 {
		t.Fatalf("single vertex estimate = %d", got)
	}
}

func TestClusterLargeUsesLanczos(t *testing.T) {
	if testing.Short() {
		t.Skip("large graph test")
	}
	rng := rand.New(rand.NewSource(77))
	// Above denseEigCutoff to exercise the Lanczos path.
	w, truth := blockGraph([]int{250, 220, 200}, 0.005, rng)
	labels := Cluster(w, 3, rng)
	if !samePartition(labels, truth) {
		t.Fatal("Lanczos-path spectral clustering failed")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
