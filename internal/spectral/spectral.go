// Package spectral implements normalized spectral clustering (von Luxburg
// 2007) on sparse affinity graphs, together with the eigengap heuristic
// the Fed-SC paper uses to estimate the number of local clusters (Eq. 3).
package spectral

import (
	"math"
	"math/rand"

	"fedsc/internal/kmeans"
	"fedsc/internal/mat"
	"fedsc/internal/sparse"
)

// denseEigCutoff is the graph size above which the bottom-of-spectrum
// computation switches from a full dense eigendecomposition to Lanczos on
// the normalized affinity operator. The blocked/pipelined SymEigen
// kernels run ~1.8x faster than the original serial loops while the
// Lanczos path is unchanged, which moves the measured crossover up by
// roughly the cube root of that speedup (the dense solver is O(n³)).
const denseEigCutoff = 270

// LaplacianEigs returns the k smallest eigenvalues (ascending) of the
// symmetric normalized Laplacian L = I − D^{−1/2} W D^{−1/2} of the
// affinity matrix w, with the corresponding eigenvectors as columns.
// Zero-degree vertices are treated as having unit degree, which leaves
// them as isolated components with Laplacian eigenvalue 1.
func LaplacianEigs(w *sparse.CSR, k int, rng *rand.Rand) ([]float64, *mat.Dense) {
	n, _ := w.Dims()
	if k > n {
		k = n
	}
	dinv := invSqrtDegrees(w)
	m := w.DiagScale(dinv, dinv) // normalized affinity D^{-1/2} W D^{-1/2}
	if n <= denseEigCutoff {
		dense := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			dense.Set(i, i, 1)
			m.Row(i, func(j int, v float64) {
				dense.Add(i, j, -v)
			})
		}
		dense.Symmetrize()
		// Embeddings want k ≪ n eigenpairs; the partial solver skips the
		// full solver's transform accumulation and QL sweep in that
		// regime. Eigengap estimation asks for k ≈ n, where extracting
		// nearly every pair one by one loses to the full decomposition.
		if 2*k <= n {
			eig := mat.SymEigenPartial(dense, k)
			return clampEigs(eig.Values), eig.Vectors
		}
		eig := mat.SymEigen(dense)
		idx := make([]int, k)
		for i := range idx {
			idx[i] = i
		}
		return clampEigs(eig.Values[:k]), eig.Vectors.SelectCols(idx)
	}
	// Largest eigenpairs of the normalized affinity are the smallest of
	// the Laplacian: L = I − M. Shift by +1 to keep the operator PSD-ish
	// so Lanczos targets a well-separated top of the spectrum.
	matvec := func(x, y []float64) {
		m.MulVec(x, y)
		for i := range y {
			y[i] += x[i]
		}
	}
	// The bottom Laplacian eigenvalues of a near-block-diagonal affinity
	// form a tight band, which Lanczos resolves slowly; generous Krylov
	// depth (cheap next to a dense solve) keeps the embedding accurate.
	steps := 4*k + 120
	if steps > n {
		steps = n
	}
	vals, vecs := sparse.Lanczos(n, k, steps, matvec, rng)
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = 2 - v // eigenvalue of L from eigenvalue v of M+I
	}
	return clampEigs(out), vecs
}

// clampEigs snaps tiny negative rounding errors to zero; normalized
// Laplacian eigenvalues live in [0, 2].
func clampEigs(v []float64) []float64 {
	for i := range v {
		if v[i] < 0 && v[i] > -1e-9 {
			v[i] = 0
		}
	}
	return v
}

func invSqrtDegrees(w *sparse.CSR) []float64 {
	d := w.RowSums()
	for i, v := range d {
		if v <= 0 {
			d[i] = 1
		} else {
			d[i] = 1 / math.Sqrt(v)
		}
	}
	return d
}

// Cluster segments the n vertices of the affinity graph w into k groups by
// normalized spectral clustering: it embeds each vertex with the k bottom
// eigenvectors of the normalized Laplacian, row-normalizes the embedding,
// and runs k-means++ on the rows.
func Cluster(w *sparse.CSR, k int, rng *rand.Rand) []int {
	n, _ := w.Dims()
	if k <= 1 || n == 0 {
		return make([]int, n)
	}
	if k >= n {
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		return labels
	}
	_, vecs := LaplacianEigs(w, k, rng)
	emb := vecs.Clone()
	normalizeEmbedding(emb)
	res := kmeans.Run(emb, k, rng, kmeans.Options{Restarts: 8})
	return res.Labels
}

// normalizeEmbedding scales every row of the spectral embedding to unit
// norm. A zero-degree (isolated) vertex is untouched by the bottom-band
// eigenvectors, so its row comes out all-zero, and mat.Normalize would
// leave it at the origin — equidistant from every centroid on the unit
// sphere, so k-means attaches it to whichever cluster the seeding
// happens to favor, a degenerate tie that flips with the rng. Zero rows
// are instead mapped to the canonical unit embedding e₀, giving every
// isolated vertex the same well-defined position (and therefore the
// same, seed-independent assignment). The zero test is a tolerance, not
// exact: iterative eigensolvers (partial inverse iteration, Lanczos)
// leave O(machine-eps) noise in structurally-zero rows, and normalizing
// that noise would put the vertex at an arbitrary solver-dependent spot
// on the sphere. Columns are unit vectors, so true signal rows are far
// above the threshold.
func normalizeEmbedding(emb *mat.Dense) {
	const zeroRow = 1e-8
	r, _ := emb.Dims()
	for i := 0; i < r; i++ {
		row := emb.Row(i)
		if mat.Norm2(row) < zeroRow {
			for j := range row {
				row[j] = 0
			}
			row[0] = 1
			continue
		}
		mat.Normalize(row)
	}
}

// EstimateAndCluster fuses EstimateClusters and Cluster over one
// Laplacian eigendecomposition: it estimates the cluster count r by the
// eigengap heuristic (searched in [1, maxK]; maxK <= 0 searches the whole
// spectrum) and then segments the graph into r clusters by reusing the
// bottom r eigenvectors it already computed. This is the hot path of
// Fed-SC's local phase, where running the two steps separately would
// double the dominant dense-eigendecomposition cost.
func EstimateAndCluster(w *sparse.CSR, maxK int, rng *rand.Rand) (int, []int) {
	n, _ := w.Dims()
	if n <= 1 {
		labels := make([]int, n)
		return n, labels
	}
	limit := n - 1
	if maxK > 0 && maxK < limit {
		limit = maxK
	}
	vals, vecs := LaplacianEigs(w, limit+1, rng)
	r := scoreEigengap(vals, limit)
	if r <= 1 {
		return r, make([]int, n)
	}
	if r >= n {
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		return r, labels
	}
	idx := make([]int, r)
	for i := range idx {
		idx[i] = i
	}
	emb := vecs.SelectCols(idx)
	normalizeEmbedding(emb)
	res := kmeans.Run(emb, r, rng, kmeans.Options{Restarts: 8})
	return r, res.Labels
}

// EstimateClusters applies the eigengap heuristic of Eq. (3): with the
// normalized-Laplacian eigenvalues sorted ascending, the estimated number
// of clusters is the index of the dominant gap σ_{i+1} − σ_i, searched in
// [1, maxK] (maxK <= 0 searches the whole spectrum). Following Remark 1
// of the paper — the estimate should be robust against weak false
// connections while still counting connected components — the gap is
// scored RELATIVE to the eigenvalue below it, (σ_{i+1} − σ_i)/(σ_i + ε):
// a moderate gap sitting right above the near-zero component eigenvalues
// then dominates any interior gap of the bulk spectrum. The eigenvalues
// used are returned alongside the estimate for diagnostics.
func EstimateClusters(w *sparse.CSR, maxK int, rng *rand.Rand) (int, []float64) {
	n, _ := w.Dims()
	if n <= 1 {
		return n, nil
	}
	limit := n - 1
	if maxK > 0 && maxK < limit {
		limit = maxK
	}
	// We need eigenvalues up to index limit+1 (1-based), i.e. limit+1 values.
	vals, _ := LaplacianEigs(w, limit+1, rng)
	return scoreEigengap(vals, limit), vals
}

// scoreEigengap picks the cluster count from ascending Laplacian
// eigenvalues. Each candidate gap is scored relative to the average
// magnitude of the eigenvalue band BELOW it: a cluster structure shows up
// as a band of near-zero eigenvalues (possibly lifted to a few hundredths
// by weak false connections) followed by a jump, so the jump at the true
// r towers over its band while bulk-interior gaps are dwarfed by theirs.
// ε floors the denominator; the normalized-Laplacian spectrum lives in
// [0, 2], so an absolute constant is meaningful.
func scoreEigengap(vals []float64, limit int) int {
	const eps = 0.05
	best, bestScore := 1, math.Inf(-1)
	bandSum := 0.0
	for i := 1; i <= limit && i < len(vals); i++ {
		bandSum += vals[i-1]
		bandMean := bandSum / float64(i)
		score := (vals[i] - vals[i-1]) / (bandMean + eps)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}
