package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder enforces the determinism half of the reproducibility
// contract that seeding alone cannot give: Go randomizes map iteration
// order, so any order-sensitive work inside `for ... range m` where m
// is a map yields run-to-run different results even with a fixed seed.
// Four order-sensitive shapes are flagged:
//
//  1. appending map keys/values to an outer slice that is never sorted
//     afterwards in the same function (collect-then-sort is the
//     sanctioned pattern and passes);
//  2. writing output (fmt.Fprint*/Print* or Write/Encode-style method
//     calls) directly from inside the loop;
//  3. compound floating-point accumulation (s += v and friends) —
//     float addition is not associative, so the reduction value
//     depends on visit order;
//  4. argmax/argmin selection (`if v > best { best, arg = v, k }`)
//     without a deterministic key tie-break — on ties the winner is
//     whichever key the runtime happens to visit first. A condition
//     that also references the key (e.g. `v > bestV || (v == bestV &&
//     k < bestK)`) passes;
//  5. drawing from a *rand.Rand — the stream is consumed in visit
//     order, so even under a fixed master seed each key receives a
//     different value from run to run. The shape behind per-shard seed
//     deals: derive the draws over sorted keys, then fan out.
//
// Integer accumulation and pure lookups are order-insensitive and are
// not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid order-dependent work inside map iteration",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapRanges(pass, fn.Body)
		}
	}
}

// checkMapRanges inspects one function body (closures included — a
// closure shares its enclosing function's visit order).
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	sortCalls := collectSortCalls(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.Types[rng.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, rng, sortCalls)
		return true
	})
}

// collectSortCalls records, per slice object, the positions where it
// is passed to a sort.*/slices.* call; a later sort launders the
// nondeterministic append order.
func collectSortCalls(pass *Pass, body *ast.BlockStmt) map[types.Object][]token.Pos {
	calls := map[types.Object][]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[arg]; obj != nil {
				calls[obj] = append(calls[obj], call.Pos())
			}
		}
		return true
	})
	return calls
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, sortCalls map[types.Object][]token.Pos) {
	keyObj := identObject(pass, rng.Key)
	valObj := identObject(pass, rng.Value)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rng, n, sortCalls)
		case *ast.CallExpr:
			checkOutputCall(pass, n)
			checkRngDraw(pass, n)
		case *ast.IfStmt:
			checkSelection(pass, n, keyObj, valObj)
		}
		return true
	})
}

func identObject(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// checkAssign flags unsorted appends to outer slices (shape 1) and
// floating-point compound accumulation (shape 3).
func checkAssign(pass *Pass, rng *ast.RangeStmt, stmt *ast.AssignStmt, sortCalls map[types.Object][]token.Pos) {
	switch stmt.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(stmt.Lhs) == 1 && isFloat(pass.TypesInfo.Types[stmt.Lhs[0]].Type) {
			pass.Reportf(stmt.Pos(),
				"floating-point accumulation inside map iteration is order-dependent; iterate sorted keys")
		}
		return
	case token.ASSIGN:
	default:
		return
	}
	for i, rhs := range stmt.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "append" || pass.TypesInfo.Uses[fun] != types.Universe.Lookup("append") {
			continue
		}
		if i >= len(stmt.Lhs) {
			continue
		}
		target := identObject(pass, stmt.Lhs[i])
		if target == nil || target.Pos() >= rng.Pos() {
			// Declared inside the loop: its lifetime ends with the
			// iteration, so cross-iteration order cannot leak out here.
			continue
		}
		if sortedAfter(sortCalls[target], rng.End()) {
			continue
		}
		pass.Reportf(stmt.Pos(),
			"append to %s inside map iteration without sorting afterwards; results depend on map order", target.Name())
	}
}

func sortedAfter(positions []token.Pos, after token.Pos) bool {
	for _, pos := range positions {
		if pos >= after {
			return true
		}
	}
	return false
}

// checkOutputCall flags writes emitted from inside the loop (shape 2):
// fmt print-family package calls and Write/Encode-style method calls.
func checkOutputCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" &&
				(strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")) {
				pass.Reportf(call.Pos(), "fmt.%s inside map iteration emits output in nondeterministic order", sel.Sel.Name)
			}
			return
		}
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		pass.Reportf(call.Pos(), "%s inside map iteration writes in nondeterministic order", types.ExprString(sel))
	}
}

// checkRngDraw flags draws from a *rand.Rand inside the loop (shape 5).
// Any method on math/rand's (or math/rand/v2's) Rand counts: Int63 and
// Intn for seed deals, Perm and Shuffle just as much — each consumes
// generator state keyed to the runtime's visit order.
func checkRngDraw(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	t := selection.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() != "Rand" || obj.Pkg() == nil {
		return
	}
	if p := obj.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return
	}
	pass.Reportf(call.Pos(),
		"rand.Rand.%s inside map iteration consumes the stream in map order; draw over sorted keys instead", sel.Sel.Name)
}

// checkSelection flags order-dependent argmax/argmin (shape 4): a
// comparison on the range value guarding an assignment that captures
// the range key, with no key reference in the condition to break ties.
func checkSelection(pass *Pass, ifStmt *ast.IfStmt, keyObj, valObj types.Object) {
	if keyObj == nil || valObj == nil {
		return
	}
	comparesVal := false
	ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch b.Op {
		case token.GTR, token.LSS, token.GEQ, token.LEQ:
			if usesObject(pass, b.X, valObj) || usesObject(pass, b.Y, valObj) {
				comparesVal = true
			}
		}
		return true
	})
	if !comparesVal {
		return
	}
	// A key reference anywhere in the condition is taken as a
	// deterministic tie-break.
	if usesObject(pass, ifStmt.Cond, keyObj) {
		return
	}
	capturesKey := false
	ast.Inspect(ifStmt.Body, func(n ast.Node) bool {
		if stmt, ok := n.(*ast.AssignStmt); ok {
			for _, rhs := range stmt.Rhs {
				if usesObject(pass, rhs, keyObj) {
					capturesKey = true
				}
			}
		}
		return true
	})
	if !capturesKey {
		return
	}
	pass.Reportf(ifStmt.Pos(),
		"selection over map iteration resolves ties by map order; add a key tie-break to the condition or iterate sorted keys")
}

func usesObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}
