package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SpanPair enforces the obs span lifecycle: every span a function
// starts must be ended on every path out of the function, or the
// canonical JSONL trace records a zero end time and downstream tooling
// sees a truncated trace. Span.End is idempotent (first call wins), so
// the robust idiom — `defer sp.End()` right after Start, with an
// optional earlier explicit End to pin the measured window — is always
// safe and always passes.
//
// The analyzer tracks each `sp := x.Start(...)` binding whose static
// type is *obs.Span and applies, in order:
//
//   - ownership transfer: if the span is returned, passed as a call
//     argument, stored into a field/composite/channel, or aliased to
//     another variable, responsibility moves with it and the binding
//     is exempt;
//   - defer coverage: any `defer sp.End()` covers all paths, panics
//     included — pass;
//   - otherwise, position analysis: a binding with no End at all is
//     flagged at the Start, and every `return` after the Start that is
//     not preceded by an End is flagged at the return (the early-abort
//     leak shape).
//
// A Start whose result is discarded as a bare expression statement can
// never be ended and is always flagged.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "require obs spans to be ended on all paths (defer-aware)",
	Run:  runSpanPair,
}

func runSpanPair(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSpanPairs(pass, fn.Body)
		}
	}
}

// isSpanType reports whether t is *obs.Span (matched by package-path
// suffix so the fixture package, which imports the real obs package,
// is covered identically).
func isSpanType(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// spanBinding is one `sp := x.Start(...)` occurrence.
type spanBinding struct {
	obj      types.Object
	startPos token.Pos
}

func checkSpanPairs(pass *Pass, body *ast.BlockStmt) {
	var bindings []spanBinding
	ends := map[types.Object][]token.Pos{} // explicit End positions
	deferred := map[types.Object]bool{}    // any `defer sp.End()`
	escaped := map[types.Object]bool{}
	var returns []token.Pos

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				call, ok := rhs.(*ast.CallExpr)
				if ok && isStartCall(pass, call) {
					if obj := identObject(pass, n.Lhs[i]); obj != nil {
						bindings = append(bindings, spanBinding{obj: obj, startPos: n.Pos()})
					}
					continue
				}
				// Aliasing a span to another variable transfers
				// ownership out of this analysis; assigning to the blank
				// identifier discards nothing and transfers nothing.
				if lhs, isBlank := n.Lhs[i].(*ast.Ident); isBlank && lhs.Name == "_" {
					continue
				}
				if id, isIdent := rhs.(*ast.Ident); isIdent {
					if obj := pass.TypesInfo.Uses[id]; obj != nil && isSpanType(obj.Type()) {
						escaped[obj] = true
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isStartCall(pass, call) {
				pass.Reportf(n.Pos(), "span started and discarded; it can never be ended")
			}
		case *ast.DeferStmt:
			if obj := endCallReceiver(pass, n.Call); obj != nil {
				deferred[obj] = true
			}
			markSpanArgsEscaped(pass, n.Call, escaped)
		case *ast.GoStmt:
			markSpanArgsEscaped(pass, n.Call, escaped)
		case *ast.CallExpr:
			if obj := endCallReceiver(pass, n); obj != nil {
				ends[obj] = append(ends[obj], n.Pos())
			}
			markSpanArgsEscaped(pass, n, escaped)
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
			for _, res := range n.Results {
				markSpanExpr(pass, res, escaped)
			}
		case *ast.SendStmt:
			markSpanExpr(pass, n.Value, escaped)
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				markSpanExpr(pass, elt, escaped)
			}
		}
		return true
	})

	for _, b := range bindings {
		if escaped[b.obj] || deferred[b.obj] {
			continue
		}
		endPositions := ends[b.obj]
		if len(endPositions) == 0 {
			pass.Reportf(b.startPos,
				"span %s is started but never ended in this function; add `defer %s.End()`", b.obj.Name(), b.obj.Name())
			continue
		}
		for _, ret := range returns {
			if ret <= b.startPos {
				continue
			}
			if !endBefore(endPositions, b.startPos, ret) {
				pass.Reportf(ret,
					"return without ending span %s (started earlier in this function); add `defer %s.End()` after Start", b.obj.Name(), b.obj.Name())
			}
		}
	}
}

// endBefore reports whether any End position lies in (start, ret).
func endBefore(ends []token.Pos, start, ret token.Pos) bool {
	for _, pos := range ends {
		if pos > start && pos < ret {
			return true
		}
	}
	return false
}

// isStartCall reports whether call is a Start method invocation
// returning *obs.Span (Tracer.Start and Span.Start both qualify).
func isStartCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Start" {
		return false
	}
	return isSpanType(pass.TypesInfo.Types[call].Type)
}

// endCallReceiver returns the span object when call is `sp.End()` on a
// plain identifier receiver, nil otherwise.
func endCallReceiver(pass *Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || !isSpanType(obj.Type()) {
		return nil
	}
	return obj
}

// markSpanArgsEscaped marks span-typed values appearing in call
// arguments (not the receiver) as ownership-transferred.
func markSpanArgsEscaped(pass *Pass, call *ast.CallExpr, escaped map[types.Object]bool) {
	for _, arg := range call.Args {
		markSpanExpr(pass, arg, escaped)
	}
}

// markSpanExpr marks every span-typed identifier inside e as escaped —
// func literals included, so a span captured by a closure handed to a
// parallel runner is exempt (position analysis cannot order concurrent
// Ends).
func markSpanExpr(pass *Pass, e ast.Expr, escaped map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && isSpanType(obj.Type()) {
				escaped[obj] = true
			}
		}
		return true
	})
}
