package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	// Path is the import path ("fedsc/internal/mat").
	Path string
	// Dir is the directory the sources were read from.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader resolves and type-checks every package of one module from
// source. Module-internal imports are loaded recursively from the
// module tree; everything else (the standard library) is resolved by
// go/importer — compiled export data when available, falling back to
// type-checking the library from GOROOT source, so the loader works in
// a cold container with no build cache.
type Loader struct {
	ModuleDir  string
	ModulePath string
	Fset       *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader reads go.mod under moduleDir to learn the module path.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: read go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  abs,
		ModulePath: modPath,
		Fset:       fset,
		std:        newStdImporter(fset),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// newStdImporter picks one importer for the whole load so every
// standard-library package has a single *types.Package identity: the
// fast compiled-export-data importer when it can resolve "fmt",
// otherwise the from-source importer.
func newStdImporter(fset *token.FileSet) types.Importer {
	gc := importer.Default()
	if _, err := gc.Import("fmt"); err == nil {
		return gc
	}
	return importer.ForCompiler(fset, "source", nil)
}

// Import makes Loader a types.Importer so type-checking a module
// package can pull in its module-internal dependencies.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadModulePackage(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadAll walks the module tree and loads every package that contains
// at least one non-test Go file, in import-path order. Hidden
// directories, testdata, and vendor trees are skipped, matching the go
// tool's package discovery.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(dir string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if dir != l.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(dir)
		if err != nil {
			return err
		}
		if !has {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := l.loadModulePackage(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && isAnalyzableFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

// isAnalyzableFile reports whether name is a non-test Go source file.
// Test files are excluded: the determinism and deadline contracts bind
// library and binary code; tests may construct adversarial inputs.
func isAnalyzableFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

func (l *Loader) loadModulePackage(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	pkg, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir parses and type-checks the non-test Go files of one
// directory as the package importPath. Fixture tests use it to load a
// testdata directory that is invisible to the go tool.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	return l.loadDir(dir, importPath)
}

func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isAnalyzableFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}
