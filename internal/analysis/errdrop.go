package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop forbids silently discarding the error result of the I/O and
// codec methods that fail in practice on a real network — exactly the
// PR 1 bug class, where a dropped SetReadDeadline error turned a
// misbehaving transport into a silent hang. A call like conn.Close()
// or enc.Encode(v) used as a bare statement (or go/defer statement)
// is flagged; handling the error or assigning it to _ explicitly
// (`_ = conn.Close()`) records the decision and passes.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "forbid discarding error results from Close/SetDeadline/Encode/Write-style I/O methods",
	Run:  runErrDrop,
}

// dropProne lists method names whose error result must not be
// discarded. These are the io/net/encoding surface the fednet and
// serve layers live on.
var dropProne = map[string]bool{
	"Close":            true,
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
	"Encode":           true,
	"Decode":           true,
	"Write":            true,
	"WriteString":      true,
	"ReadFrom":         true,
	"WriteTo":          true,
	"Flush":            true,
	"Sync":             true,
	"Shutdown":         true,
}

// neverFails lists receiver types whose Write-family methods are
// documented to always return a nil error; flagging them would only
// add noise.
var neverFails = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"hash.Hash":       true,
}

func runErrDrop(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !dropProne[sel.Sel.Name] {
				return true
			}
			// Methods only: package functions like fmt.Fprintf have their
			// own conventions and are left to go vet.
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.MethodVal {
				return true
			}
			if neverFails[derefName(selection.Recv())] {
				return true
			}
			if !returnsError(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"error from %s is silently dropped; handle it or assign to _ explicitly", types.ExprString(sel))
			return true
		})
	}
}

func derefName(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path() + "." + n.Obj().Name()
	}
	return ""
}

// returnsError reports whether the call's last result is an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.Types[call].Type
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
