package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxDeadline enforces the transport-liveness contract of the network
// layers: a one-shot protocol cannot retry, so every read or write on
// a deadline-capable connection must be preceded — in the same
// function — by an explicit deadline decision on that connection.
// "Decision" includes clearing (SetReadDeadline(time.Time{})): the
// point is that unbounded blocking is written down, reviewed, and
// machine-visible, never accidental. Flagged uses are direct
// Read/Write/ReadFrom/WriteTo calls on the conn and handing the conn
// to a codec or buffered wrapper (gob/json NewEncoder/NewDecoder,
// bufio.NewReader/NewWriter, io.Copy/ReadAll/ReadFull) that will
// perform the I/O.
//
// The rule applies only to the packages that own wire I/O
// (internal/fednet, internal/serve, internal/chaos); the analysis is
// per-function and position-ordered, so a deadline set by a helper
// does not satisfy it — each function touching the wire states its own
// budget. Conns are tracked whether they are held in a local variable
// or in a struct field (c.inner.Read resolves to the field object).
// The one exemption is the conn-wrapper forwarder: a Read/Write method
// whose receiver itself exposes SetReadDeadline IS the conn from the
// caller's perspective — the deadline decision belongs to the caller
// and is forwarded, so requiring another one inside the forwarder
// would demand a second budget for the same operation.
var CtxDeadline = &Analyzer{
	Name: "ctxdeadline",
	Doc:  "require a deadline decision on a conn before reads/writes in the network packages",
	Run:  runCtxDeadline,
}

// deadlinePackages are the import-path suffixes the rule binds;
// "ctxdeadline" admits the fixture package.
var deadlinePackages = []string{"internal/fednet", "internal/serve", "internal/chaos", "internal/store", "cmd/fedsc-load", "ctxdeadline"}

// ioWrappers maps package path → constructor/function names that take
// ownership of a conn's I/O.
var ioWrappers = map[string]map[string]bool{
	"encoding/gob":  {"NewEncoder": true, "NewDecoder": true},
	"encoding/json": {"NewEncoder": true, "NewDecoder": true},
	"bufio":         {"NewReader": true, "NewWriter": true, "NewReadWriter": true, "NewScanner": true},
	"io":            {"Copy": true, "CopyN": true, "ReadAll": true, "ReadFull": true},
}

func runCtxDeadline(pass *Pass) {
	applies := false
	for _, suffix := range deadlinePackages {
		if strings.HasSuffix(pass.Pkg.Path(), suffix) {
			applies = true
		}
	}
	if !applies {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if isConnForwarder(pass, fn) {
				continue
			}
			checkDeadlines(pass, fn.Body)
		}
	}
}

// forwarderMethods are the I/O methods a conn wrapper re-exposes; when
// the receiver itself carries the deadline surface, the budget belongs
// to the wrapper's caller and is forwarded, not re-decided inside.
var forwarderMethods = map[string]bool{"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true}

// isConnForwarder reports whether fn is an I/O method on a receiver
// type that itself exposes SetReadDeadline — the wrapper IS the conn.
func isConnForwarder(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || !forwarderMethods[fn.Name.Name] {
		return false
	}
	def, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	recv := def.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	m, _, _ := types.LookupFieldOrMethod(recv.Type(), true, pass.Pkg, "SetReadDeadline")
	_, isFunc := m.(*types.Func)
	return isFunc
}

// deadlineSetters maps the Set*Deadline method name to the directions
// it bounds.
var deadlineSetters = map[string]struct{ read, write bool }{
	"SetDeadline":      {read: true, write: true},
	"SetReadDeadline":  {read: true},
	"SetWriteDeadline": {write: true},
}

func checkDeadlines(pass *Pass, body *ast.BlockStmt) {
	// First sweep: where is each conn object's deadline set?
	type setters struct{ read, write []token.Pos }
	set := map[types.Object]*setters{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		dir, ok := deadlineSetters[sel.Sel.Name]
		if !ok {
			return true
		}
		obj := connObject(pass, sel.X)
		if obj == nil {
			return true
		}
		s := set[obj]
		if s == nil {
			s = &setters{}
			set[obj] = s
		}
		if dir.read {
			s.read = append(s.read, call.Pos())
		}
		if dir.write {
			s.write = append(s.write, call.Pos())
		}
		return true
	})
	before := func(positions []token.Pos, use token.Pos) bool {
		for _, pos := range positions {
			if pos < use {
				return true
			}
		}
		return false
	}
	// Second sweep: every I/O use must see an earlier deadline decision.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if obj := connObject(pass, sel.X); obj != nil && hasDeadlineMethods(pass, obj) {
				s := set[obj]
				switch sel.Sel.Name {
				case "Read", "ReadFrom":
					if s == nil || !before(s.read, call.Pos()) {
						pass.Reportf(call.Pos(),
							"%s.%s without a prior read-deadline decision on %s in this function", obj.Name(), sel.Sel.Name, obj.Name())
					}
				case "Write", "WriteTo":
					if s == nil || !before(s.write, call.Pos()) {
						pass.Reportf(call.Pos(),
							"%s.%s without a prior write-deadline decision on %s in this function", obj.Name(), sel.Sel.Name, obj.Name())
					}
				}
			}
		}
		if name, ok := wrapperCall(pass, call); ok {
			for _, arg := range call.Args {
				obj := connObject(pass, arg)
				if obj == nil || !hasDeadlineMethods(pass, obj) {
					continue
				}
				s := set[obj]
				if s != nil && (before(s.read, call.Pos()) || before(s.write, call.Pos())) {
					continue
				}
				pass.Reportf(call.Pos(),
					"%s handed to %s without a prior deadline decision on the conn in this function", obj.Name(), name)
			}
		}
		return true
	})
}

// wrapperCall reports whether call hands its argument's I/O to a codec
// or copier, returning a printable name.
func wrapperCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	names := ioWrappers[pn.Imported().Path()]
	if names == nil || !names[sel.Sel.Name] {
		return "", false
	}
	return pn.Imported().Name() + "." + sel.Sel.Name, true
}

// connObject resolves the expression holding a conn: a bare identifier
// (local, parameter) or a field selector like c.conn — the latter via
// the type checker's selection record, so the same struct field is one
// object no matter which expression spells it. Deeper chains
// (a.b.conn) resolve to the final field, which is the conn's identity
// for the position-ordered matching this analysis does.
func connObject(pass *Pass, e ast.Expr) types.Object {
	if obj := identObject(pass, e); obj != nil {
		return obj
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}

// hasDeadlineMethods reports whether the object's type exposes the
// net.Conn deadline surface — the signal that deadlines are available
// and therefore required.
func hasDeadlineMethods(pass *Pass, obj types.Object) bool {
	t := obj.Type()
	if t == nil {
		return false
	}
	m, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg, "SetReadDeadline")
	_, isFunc := m.(*types.Func)
	return isFunc
}
