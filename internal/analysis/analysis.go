// Package analysis is a from-scratch static-analysis driver for the
// fedsc module, built only on the standard library (go/parser, go/types,
// go/token, go/importer — deliberately no golang.org/x/tools).
//
// Fed-SC is one-shot: a silent defect in aggregation or the network
// layer corrupts the final clustering with no later round to recover,
// and every experiment table depends on deterministic, seed-threaded
// execution. The analyzers in this package encode those contracts as
// machine-checked rules:
//
//	noglobalrand   all randomness flows through an injected *rand.Rand
//	maporder       no order-dependent work inside map iteration
//	floatcmp       no ==/!= between floating-point expressions
//	errdrop        no silently dropped errors from Close/Encode/etc.
//	ctxdeadline    conn I/O in fednet/serve is preceded by a deadline
//	goroutineleak  goroutines in long-lived packages carry a provable
//	               termination signal
//	snapshotmut    values published via atomic.Pointer are frozen;
//	               updates go through copy-on-write
//	spanpair       obs spans are ended on every path (defer-aware)
//	metrichygiene  metric registration only at init/constructor time,
//	               label values from bounded sets
//
// A finding can be suppressed for one line by a trailing or preceding
// comment of the form
//
//	//fedsc:allow <analyzer> [reason]
//
// which is the audit trail for deliberate exceptions (e.g. an exact
// floating-point sentinel comparison).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named rule. Run inspects a type-checked package via
// the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name identifies the rule in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run executes the rule over a single package.
	Run func(*Pass)
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	allow  allowIndex
	report func(Diagnostic)
}

// Reportf records a finding at pos unless an allow directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.covers(position, p.Analyzer.Name) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// allowIndex maps file → line → analyzer names granted by
// //fedsc:allow directives. A directive covers its own line and the
// next one, so both trailing and standalone-comment styles work.
type allowIndex map[string]map[int][]string

func (ai allowIndex) covers(pos token.Position, analyzer string) bool {
	lines := ai[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

const allowPrefix = "//fedsc:allow "

func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	ai := allowIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, allowPrefix))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := ai[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					ai[pos.Filename] = lines
				}
				// Only the first field names the analyzer; the rest is a
				// free-form reason.
				lines[pos.Line] = append(lines[pos.Line], fields[0])
			}
		}
	}
	return ai
}

// Run applies every analyzer to every package and returns the findings
// sorted by position — output order never depends on map iteration.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow := buildAllowIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				allow:     allow,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoGlobalRand, MapOrder, FloatCmp, ErrDrop, CtxDeadline,
		GoroutineLeak, SnapshotMut, SpanPair, MetricHygiene,
	}
}
