package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the driver test the Makefile's lint target mirrors:
// the whole module loads, type-checks, and produces zero findings. Any
// new violation fails CI here and in `make lint`.
func TestRepoIsClean(t *testing.T) {
	loader := sharedLoader(t)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the walker is missing module packages", len(pkgs))
	}
	found := false
	for _, pkg := range pkgs {
		if pkg.Path == "fedsc/internal/analysis" {
			found = true
		}
	}
	if !found {
		t.Fatal("the analysis package did not analyze itself")
	}
	diags := Run(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("%d finding(s); the tree must stay lint-clean", len(diags))
	}
}

// TestLoaderResolvesModuleImports pins the loader's two import planes:
// module-internal packages come from the source tree, the standard
// library from go/importer.
func TestLoaderResolvesModuleImports(t *testing.T) {
	loader := sharedLoader(t)
	if loader.ModulePath != "fedsc" {
		t.Fatalf("module path = %q, want fedsc", loader.ModulePath)
	}
	pkg, err := loader.loadModulePackage("fedsc/internal/fednet")
	if err != nil {
		t.Fatalf("load fednet: %v", err)
	}
	imports := map[string]bool{}
	for _, imp := range pkg.Types.Imports() {
		imports[imp.Path()] = true
	}
	for _, want := range []string{"net", "encoding/gob", "fedsc/internal/core"} {
		if !imports[want] {
			t.Errorf("fednet should import %s; got %v", want, pkg.Types.Imports())
		}
	}
	if !strings.HasSuffix(filepath.ToSlash(pkg.Dir), "internal/fednet") {
		t.Errorf("unexpected package dir %s", pkg.Dir)
	}
}
