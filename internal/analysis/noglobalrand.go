package analysis

import (
	"go/ast"
	"go/types"
)

// NoGlobalRand enforces the repo-wide randomness contract: every
// stochastic choice (sampling columns, k-means seeding, synthetic data)
// flows through an injected, seeded *rand.Rand so a run is reproduced
// exactly by its seed. Calls to the process-global math/rand source
// (rand.Intn, rand.Float64, rand.Perm, rand.Shuffle, ...) break that —
// they share hidden state across call sites and goroutines. Only the
// constructors used to build an injected generator are allowed.
var NoGlobalRand = &Analyzer{
	Name: "noglobalrand",
	Doc:  "forbid calls to the global math/rand source; thread a seeded *rand.Rand instead",
	Run:  runNoGlobalRand,
}

// randConstructors build a local generator rather than touching the
// global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runNoGlobalRand(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if randConstructors[sel.Sel.Name] {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to global rand.%s; all randomness must flow through an injected seeded *rand.Rand", sel.Sel.Name)
			return true
		})
	}
}
