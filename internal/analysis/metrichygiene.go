package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MetricHygiene enforces the obs metric-registration contract.
// Registry.Counter/Gauge/Histogram/CounterVec are idempotent lookups
// under a mutex, which makes calling them in hot code *work* — and
// that is exactly the trap: a registration inside a retry loop or a
// per-request handler takes the registry lock per iteration and hides
// the instrument set from a reader of the constructor. Two shapes are
// flagged:
//
//   - a registration call lexically inside a for/range body — hoist it
//     above the loop (the RunClientDialer retry-loop shape);
//   - a registration call inside a function that receives an
//     *http.Request — per-request paths must capture instruments built
//     at construction time.
//
// The third rule guards label cardinality: CounterVec.With(v) where v
// is built by fmt/strconv/strings derivation or string concatenation
// is unbounded — one time series per distinct request value — and is
// flagged; literals, plain identifiers, and field selections from a
// bounded enum pass.
var MetricHygiene = &Analyzer{
	Name: "metrichygiene",
	Doc:  "restrict metric registration to init/constructor paths and label values to bounded sets",
	Run:  runMetricHygiene,
}

func runMetricHygiene(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMetricHygiene(pass, fn, fn.Body)
		}
	}
}

// registryMethods are the registration entry points on *obs.Registry.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "CounterVec": true,
}

// isRegistrationCall reports whether call registers a metric on an
// obs Registry (matched by package-path suffix so fixture packages
// importing the real obs package are covered identically).
func isRegistrationCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registryMethods[sel.Sel.Name] {
		return false
	}
	return isObsMethod(pass, sel, "Registry")
}

func isObsMethod(pass *Pass, sel *ast.SelectorExpr, typeName string) bool {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	t := selection.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// hasRequestParam reports whether the function type receives an
// *http.Request — the marker of a per-request path.
func hasRequestParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.Types[field.Type].Type
		if t == nil {
			continue
		}
		ptr, ok := t.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
			return true
		}
	}
	return false
}

func checkMetricHygiene(pass *Pass, fn *ast.FuncDecl, body *ast.BlockStmt) {
	// Loop body ranges: a registration positioned inside any of these
	// runs per iteration.
	type span struct{ lo, hi token.Pos }
	var loops []span
	// Request-path ranges: the declared function itself, or any func
	// literal, taking an *http.Request.
	var requestPaths []span
	if hasRequestParam(pass, fn.Type) {
		requestPaths = append(requestPaths, span{body.Pos(), body.End()})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{n.Body.Pos(), n.Body.End()})
		case *ast.FuncLit:
			if hasRequestParam(pass, n.Type) {
				requestPaths = append(requestPaths, span{n.Body.Pos(), n.Body.End()})
			}
		}
		return true
	})
	within := func(spans []span, pos token.Pos) bool {
		for _, s := range spans {
			if pos > s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isRegistrationCall(pass, call) {
			if within(loops, call.Pos()) {
				pass.Reportf(call.Pos(),
					"metric registration inside a loop; register once before the loop and reuse the instrument")
			} else if within(requestPaths, call.Pos()) {
				pass.Reportf(call.Pos(),
					"metric registration on a request path; register at construction and capture the instrument")
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "With" &&
			isObsMethod(pass, sel, "CounterVec") && len(call.Args) == 1 {
			if isUnboundedLabel(pass, call.Args[0]) {
				pass.Reportf(call.Pos(),
					"CounterVec label built from derived string data; label values must come from a bounded set")
			}
		}
		return true
	})
}

// isUnboundedLabel reports whether e derives a label string from data
// (formatting, conversion, concatenation) rather than naming a member
// of a bounded set.
func isUnboundedLabel(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		return e.Op == token.ADD
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return false
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return false
		}
		switch pn.Imported().Path() {
		case "fmt", "strconv", "strings":
			return true
		}
	}
	return false
}
