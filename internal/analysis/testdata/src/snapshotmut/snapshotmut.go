// Package snapshotmut is the fixture for the snapshotmut analyzer:
// positive cases mutate a value obtained from atomic.Pointer.Load —
// in-place writes racing every lock-free reader — and negative cases
// follow the copy-on-write discipline of the serve registry
// (build a fresh value, Store it, never touch the published one).
package snapshotmut

import "sync/atomic"

type model struct {
	name string
	refs []int
}

type set struct {
	def    string
	byName map[string]*model
}

// registry mirrors internal/serve: the current snapshot is published
// through an atomic.Pointer and read without locks.
type registry struct {
	set atomic.Pointer[set]
}

// BadSetField writes a field of the published snapshot.
func (r *registry) BadSetField(name string) {
	s := r.set.Load()
	s.def = name
}

// BadMapInsert grows a map inside the published snapshot — a data race
// with every concurrent reader, and invisible to them besides.
func (r *registry) BadMapInsert(m *model) {
	s := r.set.Load()
	s.byName[m.name] = m
}

// BadDelete shrinks the published map in place.
func (r *registry) BadDelete(name string) {
	s := r.set.Load()
	delete(s.byName, name)
}

// BadDirect writes through the Load result without a binding.
func (r *registry) BadDirect(name string) {
	r.set.Load().def = name
}

// BadThroughAlias launders the snapshot through a second variable; the
// taint follows the alias.
func (r *registry) BadThroughAlias(name string) {
	s := r.set.Load()
	t := s
	t.def = name
}

// BadElementWrite mutates a slice hanging off an entry fetched from
// the published map.
func (r *registry) BadElementWrite(name string) {
	s := r.set.Load()
	m := s.byName[name]
	m.refs[0] = 1
}

// BadRangeMutation mutates entries while ranging over the published
// map — the range bindings inherit the taint.
func (r *registry) BadRangeMutation(name string) {
	s := r.set.Load()
	for _, m := range s.byName {
		m.name = name
	}
}

// GoodCopyOnWrite is the sanctioned swap: copy entry pointers into a
// fresh set, modify only the fresh one, publish it.
func (r *registry) GoodCopyOnWrite(m *model) {
	old := r.set.Load()
	next := &set{def: old.def, byName: map[string]*model{}}
	for k, v := range old.byName {
		next.byName[k] = v
	}
	next.byName[m.name] = m
	r.set.Store(next)
}

// GoodRead reads through the snapshot without mutating it.
func (r *registry) GoodRead(name string) *model {
	return r.set.Load().byName[name]
}

// GoodFreshBeforePublish mutates a value that has never been
// published; the freeze starts at Store.
func (r *registry) GoodFreshBeforePublish() {
	next := &set{def: "seed", byName: map[string]*model{}}
	next.def = "amended"
	r.set.Store(next)
}

// AllowedMigration documents the escape hatch for a single-writer
// startup phase, reason recorded.
func (r *registry) AllowedMigration(name string) {
	s := r.set.Load()
	s.def = name //fedsc:allow snapshotmut fixture: single-writer startup, no reader exists yet
}
