// Package allowscope pins the granularity of //fedsc:allow for the
// goroutineleak analyzer: the directive covers its own line and the
// next, so it must sit on (or immediately above) the `go` statement —
// a directive on the enclosing function declaration does not reach a
// goroutine spawned further down.
package allowscope

func work() {}

// OnGoStatement: the directive rides the flagged statement and
// suppresses the finding.
func OnGoStatement() {
	go func() { //fedsc:allow goroutineleak scoped to this statement
		for {
			work()
		}
	}()
}

// DirectiveAbove: the directive on the line above the `go` statement
// also suppresses (the standalone-comment style).
func DirectiveAbove() {
	//fedsc:allow goroutineleak standalone-comment style
	go func() {
		for {
			work()
		}
	}()
}

//fedsc:allow goroutineleak too far from the go statement to count
func OnEnclosingFunc() {
	go func() {
		for {
			work()
		}
	}()
}
