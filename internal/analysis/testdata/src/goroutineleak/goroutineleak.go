// Package goroutineleak is the fixture for the goroutineleak analyzer:
// positive cases spawn goroutines with no provable termination signal;
// negative cases carry one of the sanctioned proofs (ctx.Done,
// done-channel receive, WaitGroup pairing, or a channel handoff the
// spawner drains). BadDrainFireAndForget reproduces the live bug this
// rule first caught in fednet.RunClientDuplicate; BadParamChannelSend
// reproduces the obs.ServeDebug errCh shape.
package goroutineleak

import (
	"context"
	"encoding/gob"
	"net"
	"sync"
)

func work() {}

// BadDrainFireAndForget is the RunClientDuplicate drain bug: the
// goroutine blocks in Decode with nothing committed to unblocking it.
func BadDrainFireAndForget(conn net.Conn) {
	go func() {
		var reply struct{ N int }
		_ = gob.NewDecoder(conn).Decode(&reply)
		_ = conn.Close()
	}()
}

// BadParamChannelSend is the ServeDebug shape: the channel belongs to
// the caller, so the spawner can prove neither buffering nor a reader.
func BadParamChannelSend(errCh chan<- error, run func() error) {
	go func() {
		errCh <- run()
	}()
}

// BadUnreadLocalChannel makes the channel itself but neither buffers
// nor drains it — the send blocks forever once the function returns.
func BadUnreadLocalChannel(run func() error) {
	errCh := make(chan error)
	go func() {
		errCh <- run()
	}()
}

// BadExternalCallee spawns a body the package cannot inspect.
func BadExternalCallee(conn net.Conn) {
	go conn.Close() //nolint — the point is the unprovable callee
}

// BadLocalFuncVar resolves the body through a local variable and still
// finds no signal inside.
func BadLocalFuncVar() {
	loop := func() {
		for {
			work()
		}
	}
	go loop()
}

// GoodContext checks cancellation: the goroutine exits when the caller
// cancels.
func GoodContext(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// GoodDoneChannel receives from a broadcast-close stop channel.
func GoodDoneChannel(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// GoodWaitGroup pairs the goroutine with a waiter.
func GoodWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// GoodBufferedHandoff is the fixed fedsc-load shape: the buffered send
// completes without a reader, so Serve returning ends the goroutine.
func GoodBufferedHandoff(run func() error) {
	errCh := make(chan error, 1)
	go func() {
		errCh <- run()
	}()
}

// GoodDrainedHandoff sends on an unbuffered channel the spawner
// demonstrably receives from.
func GoodDrainedHandoff(run func() int) int {
	results := make(chan int)
	go func() {
		results <- run()
	}()
	return <-results
}

// GoodClosedDrain is the RunClientDuplicate fix shape: the goroutine
// closes a channel the spawner joins on.
func GoodClosedDrain(conn net.Conn) {
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		var reply struct{ N int }
		_ = gob.NewDecoder(conn).Decode(&reply)
	}()
	_ = conn.Close()
	<-drained
}

// GoodHandlerFuncVar is the fednet.Server handle shape: the body lives
// in a local variable and hands its result to a channel the spawning
// function drains in its event loop.
func GoodHandlerFuncVar(conns []net.Conn) {
	arrivals := make(chan net.Conn)
	handle := func(c net.Conn) {
		arrivals <- c
	}
	for _, c := range conns {
		go handle(c)
	}
	for range conns {
		<-arrivals
	}
}

// pool is the serve.Batcher shape: a worker method that selects on a
// stop channel and pairs with the pool's WaitGroup.
type pool struct {
	stop chan struct{}
	wg   sync.WaitGroup
	jobs chan int
}

func (p *pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case j := <-p.jobs:
			_ = j
		}
	}
}

// GoodMethodWorker resolves the method body and finds both signals.
func GoodMethodWorker(p *pool) {
	p.wg.Add(1)
	go p.worker()
}

// AllowedProcessLifetime documents the sanctioned escape hatch: a
// process-lifetime goroutine with the reason written down.
func AllowedProcessLifetime() {
	go func() { //fedsc:allow goroutineleak fixture: deliberate process-lifetime goroutine
		for {
			work()
		}
	}()
}
