// Package spanpair is the fixture for the spanpair analyzer: positive
// cases start obs spans that some path out of the function never ends
// (truncating the canonical JSONL trace); negative cases end on every
// path — `defer sp.End()` is always sufficient because End is
// idempotent — or transfer ownership of the span elsewhere.
// BadEarlyReturn reproduces the live bug this rule caught on
// fednet.Server.Serve's abort paths.
package spanpair

import (
	"errors"

	"fedsc/internal/obs"
)

func work() {}

// BadNeverEnded starts a span and forgets it entirely.
func BadNeverEnded(tr *obs.Tracer) {
	sp := tr.Start("phase")
	sp.SetAttr("kind", "forgotten")
	work()
}

// BadEarlyReturn is the Server.Serve abort shape: the error path
// returns between Start and the explicit End.
func BadEarlyReturn(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("collect")
	if fail {
		return errors.New("abort before End")
	}
	work()
	sp.End()
	return nil
}

// BadDiscarded starts a span nothing can ever end.
func BadDiscarded(tr *obs.Tracer) {
	tr.Start("orphan")
	work()
}

// GoodDefer covers every path, panics included.
func GoodDefer(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("collect")
	defer sp.End()
	if fail {
		return errors.New("abort, but the defer still ends the span")
	}
	work()
	return nil
}

// GoodDeferWithExplicit pins the measured window with an explicit End
// and keeps the defer as the abort-path safety net (End is idempotent,
// first call wins) — the fixed Server.Serve shape.
func GoodDeferWithExplicit(tr *obs.Tracer, fail bool) error {
	sp := tr.Start("central")
	defer sp.End()
	if fail {
		return errors.New("abort")
	}
	work()
	sp.End()
	work() // excluded from the span's window
	return nil
}

// GoodStraightLine ends before the only return.
func GoodStraightLine(tr *obs.Tracer) {
	sp := tr.Start("phase")
	work()
	sp.End()
}

// GoodChildSpans nests spans and ends both.
func GoodChildSpans(tr *obs.Tracer) {
	parent := tr.Start("round")
	defer parent.End()
	child := parent.Start("upload")
	work()
	child.End()
}

// GoodOwnershipTransfer hands the span to a helper; responsibility for
// End moves with it.
func GoodOwnershipTransfer(tr *obs.Tracer) {
	sp := tr.Start("round")
	finish(sp)
}

func finish(sp *obs.Span) {
	sp.End()
}

// GoodReturned hands the started span to the caller.
func GoodReturned(tr *obs.Tracer) *obs.Span {
	return tr.Start("caller-owned")
}

// GoodClosureCapture hands the span to a closure passed onward —
// position analysis cannot order concurrent Ends, so capture is an
// ownership transfer.
func GoodClosureCapture(tr *obs.Tracer, run func(func())) {
	sp := tr.Start("parallel")
	run(func() {
		sp.End()
	})
}

// AllowedSentinel documents the escape hatch with the reason recorded.
func AllowedSentinel(tr *obs.Tracer) {
	sp := tr.Start("deliberately-open") //fedsc:allow spanpair fixture: zero-width sentinel span, exporter treats it as such
	sp.SetAttr("kind", "sentinel")
}
