// Package ctxdeadline is the fixture for the ctxdeadline analyzer:
// positive cases perform conn I/O without an earlier deadline decision
// in the same function; negative cases set a deadline first — or
// explicitly clear one, which also counts as a decision.
package ctxdeadline

import (
	"encoding/gob"
	"net"
	"time"
)

// BadDirect reads with no deadline decision at all.
func BadDirect(conn net.Conn, buf []byte) (int, error) {
	return conn.Read(buf)
}

// BadWrap hands the conn to a codec with no deadline decision.
func BadWrap(conn net.Conn, v any) error {
	return gob.NewEncoder(conn).Encode(v)
}

// BadWrongDirection bounds writes but then blocks on a read.
func BadWrongDirection(conn net.Conn, buf []byte) (int, error) {
	if err := conn.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return conn.Read(buf)
}

// GoodDirect decides the read budget before reading.
func GoodDirect(conn net.Conn, buf []byte) (int, error) {
	if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return conn.Read(buf)
}

// GoodExplicitNoDeadline declares the unbounded wait deliberately.
func GoodExplicitNoDeadline(conn net.Conn, v any) error {
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return err
	}
	return gob.NewDecoder(conn).Decode(v)
}

// GoodPlainReader is out of scope: the reader cannot carry deadlines.
func GoodPlainReader(r interface{ Read([]byte) (int, error) }, buf []byte) (int, error) {
	return r.Read(buf)
}
