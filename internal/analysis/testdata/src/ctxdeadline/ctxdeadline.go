// Package ctxdeadline is the fixture for the ctxdeadline analyzer:
// positive cases perform conn I/O without an earlier deadline decision
// in the same function; negative cases set a deadline first — or
// explicitly clear one, which also counts as a decision.
package ctxdeadline

import (
	"encoding/gob"
	"net"
	"time"
)

// BadDirect reads with no deadline decision at all.
func BadDirect(conn net.Conn, buf []byte) (int, error) {
	return conn.Read(buf)
}

// BadWrap hands the conn to a codec with no deadline decision.
func BadWrap(conn net.Conn, v any) error {
	return gob.NewEncoder(conn).Encode(v)
}

// BadWrongDirection bounds writes but then blocks on a read.
func BadWrongDirection(conn net.Conn, buf []byte) (int, error) {
	if err := conn.SetWriteDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return conn.Read(buf)
}

// GoodDirect decides the read budget before reading.
func GoodDirect(conn net.Conn, buf []byte) (int, error) {
	if err := conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return conn.Read(buf)
}

// GoodExplicitNoDeadline declares the unbounded wait deliberately.
func GoodExplicitNoDeadline(conn net.Conn, v any) error {
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return err
	}
	return gob.NewDecoder(conn).Decode(v)
}

// GoodPlainReader is out of scope: the reader cannot carry deadlines.
func GoodPlainReader(r interface{ Read([]byte) (int, error) }, buf []byte) (int, error) {
	return r.Read(buf)
}

// session holds its conn in a struct field; the rule tracks the field
// object the same way it tracks a local variable.
type session struct {
	conn net.Conn
}

// BadFieldRead reads a field-held conn with no deadline decision.
func (s *session) BadFieldRead(buf []byte) (int, error) {
	return s.conn.Read(buf)
}

// BadFieldWrap hands a field-held conn to a codec undecided.
func (s *session) BadFieldWrap(v any) error {
	return gob.NewDecoder(s.conn).Decode(v)
}

// GoodFieldRead decides the budget on the field-held conn first.
func (s *session) GoodFieldRead(buf []byte) (int, error) {
	if err := s.conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return s.conn.Read(buf)
}

// wrapper re-exposes the conn surface: it has SetReadDeadline itself,
// so its Read/Write are forwarders — the caller owns the deadline
// decision and the forwarder must not be forced to re-decide it.
type wrapper struct {
	inner net.Conn
}

func (w *wrapper) SetReadDeadline(t time.Time) error  { return w.inner.SetReadDeadline(t) }
func (w *wrapper) SetWriteDeadline(t time.Time) error { return w.inner.SetWriteDeadline(t) }

// Read is a conn forwarder: exempt despite the undecided inner I/O.
func (w *wrapper) Read(p []byte) (int, error) {
	return w.inner.Read(p)
}

// Write is a conn forwarder: exempt despite the undecided inner I/O.
func (w *wrapper) Write(p []byte) (int, error) {
	return w.inner.Write(p)
}

// BadWrapperHelper is not a forwarder — a differently-named method on
// the same wrapper still owes a deadline decision before inner I/O.
func (w *wrapper) BadWrapperHelper(p []byte) (int, error) {
	return w.inner.Write(p)
}
