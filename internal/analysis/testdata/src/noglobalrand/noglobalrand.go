// Package noglobalrand is the fixture for the noglobalrand analyzer:
// positive cases touch the process-global math/rand source, negative
// cases thread an injected *rand.Rand or build one via the allowed
// constructors.
package noglobalrand

import "math/rand"

// Bad draws from the global source twice; both calls are findings.
func Bad(n int) int {
	rand.Shuffle(n, func(i, j int) {})
	return rand.Intn(n)
}

// BadFloat covers a different global entry point.
func BadFloat() float64 {
	return rand.Float64()
}

// Good uses only the injected generator and the allowed constructors.
func Good(rng *rand.Rand, n int) int {
	local := rand.New(rand.NewSource(42))
	if local.Float64() < 0.5 {
		return rng.Intn(n)
	}
	return rng.Perm(n)[0]
}
