// Package noglobalrand is the fixture for the noglobalrand analyzer:
// positive cases touch the process-global math/rand source, negative
// cases thread an injected *rand.Rand or build one via the allowed
// constructors.
package noglobalrand

import (
	"math/rand"
	"sync"
)

// Bad draws from the global source twice; both calls are findings.
func Bad(n int) int {
	rand.Shuffle(n, func(i, j int) {})
	return rand.Intn(n)
}

// BadFloat covers a different global entry point.
func BadFloat() float64 {
	return rand.Float64()
}

// Good uses only the injected generator and the allowed constructors.
func Good(rng *rand.Rand, n int) int {
	local := rand.New(rand.NewSource(42))
	if local.Float64() < 0.5 {
		return rng.Intn(n)
	}
	return rng.Perm(n)[0]
}

// BadShardWorker seeds each shard's generator inside its goroutine from
// the global source — irreproducible twice over (global state, and a
// draw order set by the scheduler).
func BadShardWorker(shards int, out []int) {
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			local := rand.New(rand.NewSource(rand.Int63()))
			out[k] = local.Intn(100)
		}(k)
	}
	wg.Wait()
}

// GoodShardWorker derives one seed per shard from the injected parent
// before any goroutine starts, so the whole fan-out is replayed exactly
// by the master seed regardless of scheduling.
func GoodShardWorker(rng *rand.Rand, shards int, out []int) {
	seeds := make([]int64, shards)
	for k := range seeds {
		seeds[k] = rng.Int63()
	}
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			local := rand.New(rand.NewSource(seeds[k]))
			out[k] = local.Intn(100)
		}(k)
	}
	wg.Wait()
}
