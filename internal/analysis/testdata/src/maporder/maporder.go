// Package maporder is the fixture for the maporder analyzer: each Bad
// function exhibits one order-dependent shape inside map iteration;
// each Good function shows the sanctioned deterministic counterpart.
package maporder

import (
	"fmt"
	"math/rand"
	"sort"
)

// BadAppend collects keys in visit order and never sorts them.
func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// GoodAppendSorted is the collect-then-sort pattern.
func GoodAppendSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// BadPrint emits output in visit order.
func BadPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}

// BadFloatSum accumulates floats, which do not add associatively.
func BadFloatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodIntSum is fine: integer addition commutes exactly.
func GoodIntSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// BadArgmax resolves ties by whichever key the runtime visits first.
func BadArgmax(m map[int]int) int {
	best, bestN := 0, -1
	for k, v := range m {
		if v > bestN {
			best, bestN = k, v
		}
	}
	return best
}

// GoodArgmax breaks ties on the key, so the winner is order-free.
func GoodArgmax(m map[int]int) int {
	best, bestN := 0, -1
	for k, v := range m {
		if v > bestN || (v == bestN && k < best) {
			best, bestN = k, v
		}
	}
	return best
}

// BadShardSeeds deals per-shard seeds while iterating the shard map:
// the stream is consumed in visit order, so the same shard receives a
// different seed from run to run even under a fixed master seed.
func BadShardSeeds(rng *rand.Rand, shards map[int][]int) map[int]int64 {
	seeds := make(map[int]int64, len(shards))
	for id := range shards {
		seeds[id] = rng.Int63()
	}
	return seeds
}

// GoodShardSeeds deals over sorted shard IDs, so shard k always
// receives the k-th draw of the master stream — the sanctioned
// derive-then-fan-out shape for goroutine-per-shard work.
func GoodShardSeeds(rng *rand.Rand, shards map[int][]int) map[int]int64 {
	ids := make([]int, 0, len(shards))
	for id := range shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	seeds := make(map[int]int64, len(shards))
	for _, id := range ids {
		seeds[id] = rng.Int63()
	}
	return seeds
}

// GoodLookup only reads; no order can leak.
func GoodLookup(m map[string]int, keys []string) int {
	total := 0
	for _, k := range keys {
		total += m[k]
	}
	return total
}
