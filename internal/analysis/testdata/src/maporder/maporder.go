// Package maporder is the fixture for the maporder analyzer: each Bad
// function exhibits one order-dependent shape inside map iteration;
// each Good function shows the sanctioned deterministic counterpart.
package maporder

import (
	"fmt"
	"sort"
)

// BadAppend collects keys in visit order and never sorts them.
func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// GoodAppendSorted is the collect-then-sort pattern.
func GoodAppendSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// BadPrint emits output in visit order.
func BadPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}

// BadFloatSum accumulates floats, which do not add associatively.
func BadFloatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// GoodIntSum is fine: integer addition commutes exactly.
func GoodIntSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// BadArgmax resolves ties by whichever key the runtime visits first.
func BadArgmax(m map[int]int) int {
	best, bestN := 0, -1
	for k, v := range m {
		if v > bestN {
			best, bestN = k, v
		}
	}
	return best
}

// GoodArgmax breaks ties on the key, so the winner is order-free.
func GoodArgmax(m map[int]int) int {
	best, bestN := 0, -1
	for k, v := range m {
		if v > bestN || (v == bestN && k < best) {
			best, bestN = k, v
		}
	}
	return best
}

// GoodLookup only reads; no order can leak.
func GoodLookup(m map[string]int, keys []string) int {
	total := 0
	for _, k := range keys {
		total += m[k]
	}
	return total
}
