// Package floatcmp is the fixture for the floatcmp analyzer: positive
// cases compare floats with ==/!=, negative cases use tolerances, the
// NaN idiom, exact sentinels, or an allow directive.
package floatcmp

import "math"

// BadEqual compares two computed floats exactly.
func BadEqual(a, b float64) bool {
	return a == b
}

// BadZero compares against a zero literal.
func BadZero(x float64) bool {
	return x != 0
}

// BadFloat32 covers the 32-bit type.
func BadFloat32(x float32) bool {
	return x == 1.5
}

// GoodNaN is the self-comparison NaN idiom.
func GoodNaN(x float64) bool {
	return x != x
}

// GoodInf compares against an exact infinity sentinel.
func GoodInf(x float64) bool {
	return x == math.Inf(1)
}

// GoodMax compares against an exact extreme-value sentinel.
func GoodMax(x float64) bool {
	return x == math.MaxFloat64
}

// GoodTolerance is the recommended fix.
func GoodTolerance(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}

// GoodAllowed documents a deliberate exact sentinel.
func GoodAllowed(x float64) bool {
	return x == 0 //fedsc:allow floatcmp fixture: deliberate exact sentinel
}

// GoodInts is out of scope: integers compare exactly.
func GoodInts(a, b int) bool {
	return a == b
}
