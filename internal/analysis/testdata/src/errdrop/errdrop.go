// Package errdrop is the fixture for the errdrop analyzer: positive
// cases discard the error of an I/O or codec method by using the call
// as a bare statement; negative cases handle it or discard explicitly.
package errdrop

import (
	"encoding/gob"
	"net"
	"strings"
	"time"
)

// Bad drops errors in all three statement forms.
func Bad(conn net.Conn, enc *gob.Encoder, v any) {
	enc.Encode(v)
	go conn.SetDeadline(time.Time{})
	defer conn.Close()
}

// Good handles or explicitly discards every error.
func Good(conn net.Conn, enc *gob.Encoder, v any) error {
	if err := enc.Encode(v); err != nil {
		_ = conn.Close()
		return err
	}
	return conn.Close()
}

// GoodBuilder writes to a sink documented never to fail.
func GoodBuilder() string {
	var b strings.Builder
	b.WriteString("x")
	return b.String()
}
