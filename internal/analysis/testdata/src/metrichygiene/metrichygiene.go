// Package metrichygiene is the fixture for the metrichygiene analyzer:
// positive cases register metrics inside loops or request paths, or
// feed a CounterVec label from derived string data; negative cases
// register once at construction time and label from bounded sets.
// BadRetryLoop reproduces the live bug this rule caught in
// fednet.RunClientDialer.
package metrichygiene

import (
	"fmt"
	"net/http"
	"strconv"

	"fedsc/internal/obs"
)

// BadRetryLoop is the RunClientDialer shape: per-attempt registration
// takes the registry mutex every iteration of the retry storm.
func BadRetryLoop(reg *obs.Registry, attempts int) {
	for attempt := 1; attempt <= attempts; attempt++ {
		reg.Counter("fixture_retries_total", "Attempts beyond the first.").Inc()
	}
}

// BadRangeLoop registers per element.
func BadRangeLoop(reg *obs.Registry, shards []int) {
	for range shards {
		reg.Histogram("fixture_shard_seconds", "Per-shard wall time.", nil).Observe(1)
	}
}

// BadHandler registers on the per-request path.
func BadHandler(reg *obs.Registry, w http.ResponseWriter, r *http.Request) {
	reg.Counter("fixture_requests_total", "Requests served.").Inc()
	w.WriteHeader(http.StatusOK)
}

// BadHandlerLit registers inside a request-handling func literal.
func BadHandlerLit(reg *obs.Registry, mux *http.ServeMux) {
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		reg.Gauge("fixture_inflight", "Requests in flight.").Add(1)
	})
}

// BadSprintfLabel derives the label from data: one series per value.
func BadSprintfLabel(vec *obs.CounterVec, shard int) {
	vec.With(fmt.Sprintf("shard-%d", shard)).Inc()
}

// BadStrconvLabel converts request data into a label.
func BadStrconvLabel(vec *obs.CounterVec, status int) {
	vec.With(strconv.Itoa(status)).Inc()
}

// BadConcatLabel builds the label by concatenation.
func BadConcatLabel(vec *obs.CounterVec, name string) {
	vec.With("model-" + name).Inc()
}

// metricsBundle is the sanctioned home for instruments.
type metricsBundle struct {
	requests *obs.Counter
	byModel  *obs.CounterVec
}

// GoodConstructor registers everything once at construction.
func GoodConstructor(reg *obs.Registry) *metricsBundle {
	return &metricsBundle{
		requests: reg.Counter("fixture_requests_total", "Requests served."),
		byModel:  reg.CounterVec("fixture_by_model_total", "Requests per model.", "model"),
	}
}

// GoodHoisted registers above the loop and reuses the instrument.
func GoodHoisted(reg *obs.Registry, attempts int) {
	retries := reg.Counter("fixture_retries_total", "Attempts beyond the first.")
	for attempt := 1; attempt <= attempts; attempt++ {
		retries.Inc()
	}
}

// GoodHandler only increments inside the request path.
func GoodHandler(m *metricsBundle, w http.ResponseWriter, r *http.Request) {
	m.requests.Inc()
	w.WriteHeader(http.StatusOK)
}

// GoodBoundedLabels label from literals and plain identifiers naming
// members of a fixed set.
func GoodBoundedLabels(m *metricsBundle, modelName string) {
	m.byModel.With("default").Inc()
	m.byModel.With(modelName).Inc()
}

// AllowedDynamicRegistration documents the escape hatch, reason
// recorded: a bounded, config-derived set registered per entry.
func AllowedDynamicRegistration(reg *obs.Registry, configured []string) {
	for range configured {
		reg.Counter("fixture_configured_total", "Configured probes.").Inc() //fedsc:allow metrichygiene fixture: set bounded by config, not request data
	}
}
