package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SnapshotMut enforces the copy-on-write discipline around
// atomic.Pointer publication (the `internal/serve` registry pattern
// from PR 6): once a value has been published through
// `atomic.Pointer.Store`, every reader may hold it concurrently with
// no lock, so the value is frozen — readers and even the writer must
// never mutate it in place. The sanctioned update path is the
// swapLocked shape: load the current snapshot, build a *fresh* value
// (copying maps/slices entry by entry), and Store the new one.
//
// The analyzer taints every value obtained from a
// `sync/atomic.Pointer[T].Load()` call, propagates the taint through
// local assignments, field/index selections, and range statements, and
// flags:
//
//   - assignments through a tainted base (`set.def = m`,
//     `set.byName[k] = v`, `snap.Refs[i] = r`, compound ops included),
//   - `delete(tainted.m, k)`,
//   - writes through a Load() result used directly
//     (`r.set.Load().def = m`).
//
// Building a new composite literal and copying *from* the tainted
// snapshot is the blessed pattern and passes untouched — the taint
// never flags reads.
var SnapshotMut = &Analyzer{
	Name: "snapshotmut",
	Doc:  "forbid in-place mutation of values published via atomic.Pointer",
	Run:  runSnapshotMut,
}

func runSnapshotMut(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSnapshotMutation(pass, fn.Body)
		}
	}
}

// isAtomicLoad reports whether call is `p.Load()` on a
// sync/atomic.Pointer[T].
func isAtomicLoad(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	t := selection.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	// Generic instantiations share the origin's object.
	obj := named.Origin().Obj()
	return obj.Name() == "Pointer" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// rootIdent walks to the base identifier of a selector/index chain:
// `set.byName[k]` → set. Returns nil when the base is not a plain
// identifier (e.g. a call result — handled separately).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// baseLoadCall reports whether the base of a selector/index chain is a
// direct atomic Load() call (`p.Load().f = v`).
func baseLoadCall(pass *Pass, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.CallExpr:
			return isAtomicLoad(pass, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// checkSnapshotMutation runs the taint walk over one function body.
// Statements are visited in source order, which is sufficient for the
// straight-line load-then-mutate shapes the rule exists to catch.
func checkSnapshotMutation(pass *Pass, body *ast.BlockStmt) {
	tainted := map[types.Object]bool{}
	exprTainted := func(e ast.Expr) bool {
		if call, ok := e.(*ast.CallExpr); ok && isAtomicLoad(pass, call) {
			return true
		}
		if baseLoadCall(pass, e) {
			return true
		}
		if id := rootIdent(e); id != nil {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && tainted[obj] {
				return true
			}
		}
		return false
	}
	taintLhs := func(lhs ast.Expr) {
		if obj := identObject(pass, lhs); obj != nil {
			tainted[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Mutations first: any write whose destination is a
			// field/element reachable from a tainted base.
			for _, lhs := range n.Lhs {
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					if exprTainted(lhs) {
						pass.Reportf(n.Pos(),
							"write through a published snapshot (obtained from atomic.Pointer.Load); build a fresh copy and Store it instead")
					}
				}
			}
			// Then propagation: lhs := rhs where rhs derives from a
			// tainted value.
			if n.Tok == token.DEFINE || n.Tok == token.ASSIGN {
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					if exprTainted(rhs) {
						taintLhs(n.Lhs[i])
					}
				}
			}
		case *ast.RangeStmt:
			// Ranging over a tainted map/slice taints the value (and
			// key, for maps of pointers) bindings.
			if exprTainted(n.X) {
				if n.Key != nil {
					taintLhs(n.Key)
				}
				if n.Value != nil {
					taintLhs(n.Value)
				}
			}
		case *ast.CallExpr:
			if fun, ok := n.Fun.(*ast.Ident); ok && fun.Name == "delete" &&
				pass.TypesInfo.Uses[fun] == types.Universe.Lookup("delete") &&
				len(n.Args) == 2 && exprTainted(n.Args[0]) {
				pass.Reportf(n.Pos(),
					"delete from a map inside a published snapshot (obtained from atomic.Pointer.Load); copy-on-write instead")
			}
		}
		return true
	})
}
