package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineLeak enforces the goroutine-lifecycle contract of the
// long-lived packages: a server that leaks one goroutine per round (or
// per request) dies slowly under exactly the load the ROADMAP aims at,
// and the race detector cannot see a leak — a blocked goroutine
// touches no shared memory, so only a static rule catches the class.
//
// Every `go` statement in a scoped package must carry a provable
// termination signal in the spawned body:
//
//   - a context cancellation check (a call to ctx.Done()),
//   - a receive from a done/stop channel (any receive of a
//     `chan struct{}`, the idiomatic broadcast-close type),
//   - sync.WaitGroup pairing (the body calls wg.Done(), so some
//     spawner is committed to waiting),
//   - a result handoff the spawner owns: a send on — or close of — a
//     channel created in the spawning function, where the channel is
//     buffered or the spawning function itself receives from it.
//
// The check is wrapper-aware like ctxdeadline: `go b.worker()` and
// `go handle(c)` resolve through the same-package method/function or
// the local func-literal variable and inspect that body. A goroutine
// whose callee is outside the package cannot be proven and is flagged;
// intentional process-lifetime goroutines (a debug HTTP server) carry
// a //fedsc:allow goroutineleak directive with the reason written down.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "require a provable termination signal on every goroutine in the long-lived packages",
	Run:  runGoroutineLeak,
}

// leakPackages are the import-path suffixes the rule binds: the
// long-lived subsystems plus every binary; "goroutineleak" admits the
// fixture package.
var leakPackages = []string{
	"internal/fednet", "internal/serve", "internal/chaos",
	"internal/obs", "internal/store", "goroutineleak",
}

func leakScoped(path string) bool {
	if strings.Contains(path, "/cmd/") {
		return true
	}
	for _, suffix := range leakPackages {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

func runGoroutineLeak(pass *Pass) {
	if !leakScoped(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGoStmts(pass, fn.Body)
		}
	}
}

// spawnerInfo is what the spawning function contributes to the proof:
// which channels it created (and their buffering) and which it drains.
type spawnerInfo struct {
	// buffered maps channel objects made in this function with a
	// non-zero capacity expression.
	buffered map[types.Object]bool
	// local marks every channel object made in this function.
	local map[types.Object]bool
	// receives records the position of every receive (or range) from a
	// channel object — goroutine-internal receives are filtered by the
	// caller using the spawned body's position range.
	receives map[types.Object][]token.Pos
	// funcLits maps local variables to the function literal assigned to
	// them, so `go handle(c)` resolves to handle's body.
	funcLits map[types.Object]*ast.FuncLit
}

func collectSpawnerInfo(pass *Pass, body *ast.BlockStmt) *spawnerInfo {
	info := &spawnerInfo{
		buffered: map[types.Object]bool{},
		local:    map[types.Object]bool{},
		receives: map[types.Object][]token.Pos{},
		funcLits: map[types.Object]*ast.FuncLit{},
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				obj := identObject(pass, n.Lhs[i])
				if obj == nil {
					continue
				}
				if lit, ok := rhs.(*ast.FuncLit); ok {
					info.funcLits[obj] = lit
				}
				if call, ok := rhs.(*ast.CallExpr); ok && isMakeChan(pass, call) {
					info.local[obj] = true
					if len(call.Args) >= 2 {
						if v := pass.TypesInfo.Types[call.Args[1]].Value; v == nil || v.String() != "0" {
							info.buffered[obj] = true
						}
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := identObject(pass, n.X); obj != nil {
					info.receives[obj] = append(info.receives[obj], n.Pos())
				}
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.Types[n.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if obj := identObject(pass, n.X); obj != nil {
						info.receives[obj] = append(info.receives[obj], n.Pos())
					}
				}
			}
		}
		return true
	})
	return info
}

func isMakeChan(pass *Pass, call *ast.CallExpr) bool {
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "make" || pass.TypesInfo.Uses[fun] != types.Universe.Lookup("make") {
		return false
	}
	t := pass.TypesInfo.Types[call].Type
	if t == nil {
		return false
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

func checkGoStmts(pass *Pass, body *ast.BlockStmt) {
	info := collectSpawnerInfo(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		spawned := resolveSpawnedBody(pass, info, g.Call)
		if spawned == nil {
			pass.Reportf(g.Pos(),
				"goroutine runs a body this package cannot inspect; no termination signal is provable")
			return true
		}
		if !hasTerminationSignal(pass, info, spawned) {
			pass.Reportf(g.Pos(),
				"goroutine has no provable termination signal (ctx.Done/done-channel receive, WaitGroup pairing, or a channel handoff the spawner drains)")
		}
		return true
	})
}

// resolveSpawnedBody finds the body the `go` statement will run: a
// function literal, a local variable holding one, or a same-package
// function/method declaration.
func resolveSpawnedBody(pass *Pass, info *spawnerInfo, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[fun]; obj != nil {
			if lit, ok := info.funcLits[obj]; ok {
				return lit.Body
			}
			if f, ok := obj.(*types.Func); ok {
				return funcDeclBody(pass, f)
			}
		}
	case *ast.SelectorExpr:
		if f, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return funcDeclBody(pass, f)
		}
	}
	return nil
}

// funcDeclBody locates the declaration of a same-package function or
// method; cross-package callees return nil (not inspectable here).
func funcDeclBody(pass *Pass, f *types.Func) *ast.BlockStmt {
	if f.Pkg() != pass.Pkg {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if pass.TypesInfo.Defs[fd.Name] == f {
				return fd.Body
			}
		}
	}
	return nil
}

// hasTerminationSignal reports whether the spawned body carries one of
// the recognized liveness proofs.
func hasTerminationSignal(pass *Pass, info *spawnerInfo, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				switch {
				case isMethodOn(pass, sel, "WaitGroup", "sync"):
					found = true // a spawner committed to wg.Wait
				case isMethodOn(pass, sel, "Context", "context") || isContextValue(pass, sel.X):
					found = true // cancellation is checked
				}
			}
			// close(ch) on a spawner-drained channel: the drained-handoff
			// pattern (`defer close(done)` … spawner `<-done`).
			if fun, ok := n.Fun.(*ast.Ident); ok && fun.Name == "close" &&
				pass.TypesInfo.Uses[fun] == types.Universe.Lookup("close") && len(n.Args) == 1 {
				if spawnerOwnsHandoff(pass, info, n.Args[0], body) {
					found = true
				}
			}
		case *ast.UnaryExpr:
			// Receive from a `chan struct{}`: the broadcast-close
			// done/stop idiom, in or out of a select.
			if n.Op == token.ARROW && isDoneChanType(pass.TypesInfo.Types[n.X].Type) {
				found = true
			}
		case *ast.SendStmt:
			if spawnerOwnsHandoff(pass, info, n.Chan, body) {
				found = true
			}
		}
		return true
	})
	return found
}

// spawnerOwnsHandoff reports whether ch is a channel the spawning
// function created and either buffered or demonstrably drains outside
// the spawned body.
func spawnerOwnsHandoff(pass *Pass, info *spawnerInfo, ch ast.Expr, body *ast.BlockStmt) bool {
	obj := identObject(pass, ch)
	if obj == nil || !info.local[obj] {
		return false
	}
	if info.buffered[obj] {
		return true
	}
	for _, pos := range info.receives[obj] {
		if pos < body.Pos() || pos > body.End() {
			return true
		}
	}
	return false
}

// isMethodOn reports whether sel resolves to a method on the named type
// from the named package (pointer receivers included).
func isMethodOn(pass *Pass, sel *ast.SelectorExpr, typeName, pkgPath string) bool {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	t := selection.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isContextValue reports whether e is a context.Context (the Done()
// receiver when the static type is the interface, not a named type).
func isContextValue(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isDoneChanType reports whether t is a channel of struct{} — the
// conventional type of broadcast-close done/stop channels.
func isDoneChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	s, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && s.NumFields() == 0
}
