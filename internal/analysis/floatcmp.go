package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp forbids ==/!= between floating-point expressions. Exact
// float equality silently depends on rounding order, which the mat
// kernels deliberately change between exact and randomized paths;
// results that hinge on it are not reproducible across refactors.
// Allowed without annotation: the x != x NaN idiom and comparisons
// against the exact sentinels math.Inf / math.MaxFloat64 /
// math.SmallestNonzeroFloat64, which are preserved bit-exactly.
// Deliberate exact-zero sentinels must carry a //fedsc:allow floatcmp
// directive with a reason.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= between floating-point expressions outside exact-sentinel comparisons",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			tx := pass.TypesInfo.Types[cmp.X]
			ty := pass.TypesInfo.Types[cmp.Y]
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			// Both sides constant: folded at compile time, nothing can
			// drift at run time.
			if tx.Value != nil && ty.Value != nil {
				return true
			}
			// x != x / x == x: the NaN self-comparison idiom.
			if types.ExprString(cmp.X) == types.ExprString(cmp.Y) {
				return true
			}
			if isExactSentinel(pass, cmp.X) || isExactSentinel(pass, cmp.Y) {
				return true
			}
			pass.Reportf(cmp.Pos(),
				"floating-point %s comparison; use a tolerance (math.Abs(a-b) <= eps) or annotate an exact sentinel with //fedsc:allow floatcmp", cmp.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isExactSentinel recognizes operands that are exact by construction:
// math.Inf(±1) and the extreme finite constants, which survive every
// arithmetic-free copy bit-for-bit.
func isExactSentinel(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		return isMathSelector(pass, e.Fun, "Inf")
	case *ast.SelectorExpr:
		return isMathSelector(pass, e, "MaxFloat64", "MaxFloat32", "SmallestNonzeroFloat64", "SmallestNonzeroFloat32")
	case *ast.UnaryExpr:
		return isExactSentinel(pass, e.X)
	case *ast.ParenExpr:
		return isExactSentinel(pass, e.X)
	}
	return false
}

func isMathSelector(pass *Pass, e ast.Expr, names ...string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "math" {
		return false
	}
	for _, name := range names {
		if sel.Sel.Name == name {
			return true
		}
	}
	return false
}
