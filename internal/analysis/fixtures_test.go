package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the expected-diagnostic golden files")

// fixtureLoader is shared across fixture tests so the standard library
// is resolved once per test binary.
var fixtureLoader = struct {
	sync.Mutex
	l *Loader
}{}

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	fixtureLoader.Lock()
	defer fixtureLoader.Unlock()
	if fixtureLoader.l == nil {
		l, err := NewLoader(filepath.Join("..", ".."))
		if err != nil {
			t.Fatalf("loader: %v", err)
		}
		fixtureLoader.l = l
	}
	return fixtureLoader.l
}

// TestFixtures runs each analyzer over its fixture package and compares
// the rendered diagnostics against the golden file. The fixtures mix
// positive (Bad*) and negative (Good*) functions, so the golden file
// asserts both that violations are reported and that the sanctioned
// patterns stay silent.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			got := fixtureOutput(t, a)
			goldenPath := filepath.Join("testdata", a.Name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics diverge from %s (run with -update to accept)\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// fixtureOutput runs one analyzer over its fixture package and renders
// the diagnostics the way the golden files store them.
func fixtureOutput(t *testing.T, a *Analyzer) string {
	t.Helper()
	loader := sharedLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", a.Name), a.Name)
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	return renderRelative(t, Run([]*Package{pkg}, []*Analyzer{a}))
}

// renderRelative formats diagnostics with paths relative to this
// package directory so golden files are machine-independent.
func renderRelative(t *testing.T, diags []Diagnostic) string {
	t.Helper()
	here, err := os.Getwd()
	if err != nil {
		t.Fatalf("getwd: %v", err)
	}
	var b strings.Builder
	for _, d := range diags {
		rel, err := filepath.Rel(here, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", filepath.ToSlash(rel), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	return b.String()
}

// TestFixturesHaveFindings guards against a silently broken analyzer:
// every fixture package contains Bad* functions, so an empty golden
// file can only mean the analyzer stopped seeing them.
func TestFixturesHaveFindings(t *testing.T) {
	for _, a := range All() {
		data, err := os.ReadFile(filepath.Join("testdata", a.Name+".golden"))
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if len(strings.TrimSpace(string(data))) == 0 {
			t.Errorf("%s: golden file is empty — the analyzer no longer fires on its own fixtures", a.Name)
		}
	}
}

// TestAllowDirective pins the suppression mechanics: the directive
// silences exactly the named analyzer on its own line.
func TestAllowDirective(t *testing.T) {
	loader := sharedLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "floatcmp"), "floatcmp-directive")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{FloatCmp})
	for _, d := range diags {
		line := diagLineText(t, d)
		if strings.Contains(line, "fedsc:allow") {
			t.Errorf("directive did not suppress: %s", d)
		}
	}
}

func diagLineText(t *testing.T, d Diagnostic) string {
	t.Helper()
	data, err := os.ReadFile(d.Pos.Filename)
	if err != nil {
		t.Fatalf("read %s: %v", d.Pos.Filename, err)
	}
	lines := strings.Split(string(data), "\n")
	if d.Pos.Line-1 < len(lines) {
		return lines[d.Pos.Line-1]
	}
	return ""
}
