package metrics

import (
	"math"
	"math/rand"
	"sort"

	"fedsc/internal/sparse"
	"fedsc/internal/spectral"
)

// Accuracy computes the clustering accuracy of Eq. (10): the percentage
// of points whose predicted label matches the ground truth under the best
// one-to-one alignment of cluster labels, found with the Hungarian
// algorithm. Label values may be arbitrary non-negative integers.
func Accuracy(truth, pred []int) float64 {
	if len(truth) != len(pred) {
		panic("metrics: Accuracy length mismatch")
	}
	if len(truth) == 0 {
		return 0
	}
	tIdx, tn := relabel(truth)
	pIdx, pn := relabel(pred)
	k := tn
	if pn > k {
		k = pn
	}
	// Confusion counts: conf[t][p].
	conf := make([][]float64, k)
	for i := range conf {
		conf[i] = make([]float64, k)
	}
	for i := range truth {
		conf[tIdx[i]][pIdx[i]]++
	}
	// Maximize matches = minimize negated counts.
	cost := make([][]float64, k)
	for i := range cost {
		cost[i] = make([]float64, k)
		for j := range cost[i] {
			cost[i][j] = -conf[i][j]
		}
	}
	assign := Hungarian(cost)
	matched := 0.0
	for t, p := range assign {
		matched += conf[t][p]
	}
	return 100 * matched / float64(len(truth))
}

// relabel maps arbitrary label values to [0, k) and returns the dense
// labels and k.
func relabel(labels []int) ([]int, int) {
	m := map[int]int{}
	out := make([]int, len(labels))
	for i, l := range labels {
		id, ok := m[l]
		if !ok {
			id = len(m)
			m[l] = id
		}
		out[i] = id
	}
	return out, len(m)
}

// NMI computes the normalized mutual information of Eq. (11) as a
// percentage: 100·2·MI(T;P) / (H(T)+H(P)). It returns 100 when both
// clusterings are identical single-cluster labelings (zero entropies).
func NMI(truth, pred []int) float64 {
	if len(truth) != len(pred) {
		panic("metrics: NMI length mismatch")
	}
	if len(truth) == 0 {
		return 0
	}
	n := float64(len(truth))
	tIdx, tn := relabel(truth)
	pIdx, pn := relabel(pred)
	joint := make([][]float64, tn)
	for i := range joint {
		joint[i] = make([]float64, pn)
	}
	tc := make([]float64, tn)
	pc := make([]float64, pn)
	for i := range truth {
		joint[tIdx[i]][pIdx[i]]++
		tc[tIdx[i]]++
		pc[pIdx[i]]++
	}
	ht, hp, mi := 0.0, 0.0, 0.0
	for _, c := range tc {
		if c > 0 {
			p := c / n
			ht -= p * math.Log(p)
		}
	}
	for _, c := range pc {
		if c > 0 {
			p := c / n
			hp -= p * math.Log(p)
		}
	}
	for i := range joint {
		for j := range joint[i] {
			if joint[i][j] > 0 {
				pij := joint[i][j] / n
				mi += pij * math.Log(pij*n*n/(tc[i]*pc[j]))
			}
		}
	}
	if ht+hp == 0 { //fedsc:allow floatcmp single-cluster entropies are sums of 1·log(1) terms, exactly zero
		return 100
	}
	return 100 * 2 * mi / (ht + hp)
}

// Connectivity computes the CONN metric of Section VI: for each
// ground-truth cluster ℓ, λ_ℓ⁽²⁾ is the second-smallest eigenvalue of the
// normalized Laplacian of the affinity subgraph restricted to that
// cluster (zero iff the cluster is internally disconnected). It returns
// the minimum c = min_ℓ λ_ℓ⁽²⁾ and the average c̄.
func Connectivity(w *sparse.CSR, truth []int, rng *rand.Rand) (min, avg float64) {
	byCluster := map[int][]int{}
	for i, l := range truth {
		byCluster[l] = append(byCluster[l], i)
	}
	// Visit clusters in label order: the Lanczos solver draws from the
	// shared rng, so iterating the map directly would make both the rng
	// stream and the float accumulation depend on map order.
	labels := make([]int, 0, len(byCluster))
	for l := range byCluster {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	min = math.Inf(1)
	sum, count := 0.0, 0
	for _, l := range labels {
		idx := byCluster[l]
		var l2 float64
		if len(idx) >= 2 {
			sub := w.Submatrix(idx)
			if vals, _ := spectral.LaplacianEigs(sub, 2, rng); len(vals) >= 2 {
				l2 = vals[1]
			}
		}
		if l2 < min {
			min = l2
		}
		sum += l2
		count++
	}
	if count == 0 {
		return 0, 0
	}
	return min, sum / float64(count)
}

// SEPHolds reports whether the affinity graph has no false connections:
// every edge joins two points with the same ground-truth label (the
// self-expressiveness property of Section III-A).
func SEPHolds(w *sparse.CSR, truth []int) bool {
	n, _ := w.Dims()
	for i := 0; i < n; i++ {
		ok := true
		w.Row(i, func(j int, v float64) {
			if v != 0 && truth[i] != truth[j] { //fedsc:allow floatcmp CSR stores explicit entries; a zero value is a stored structural zero
				ok = false
			}
		})
		if !ok {
			return false
		}
	}
	return true
}

// ExactClustering reports whether the affinity graph satisfies the
// paper's exact-clustering criterion: SEP holds AND each ground-truth
// cluster forms a single connected component.
func ExactClustering(w *sparse.CSR, truth []int) bool {
	if !SEPHolds(w, truth) {
		return false
	}
	comp, _ := w.ConnectedComponents()
	// Within one truth cluster all points must share a component.
	first := map[int]int{}
	for i, l := range truth {
		if c, ok := first[l]; ok {
			if comp[i] != c {
				return false
			}
		} else {
			first[l] = comp[i]
		}
	}
	return true
}
