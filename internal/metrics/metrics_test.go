package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedsc/internal/sparse"
)

func TestHungarianIdentity(t *testing.T) {
	cost := [][]float64{{0, 1}, {1, 0}}
	a := Hungarian(cost)
	if a[0] != 0 || a[1] != 1 {
		t.Fatalf("assignment = %v", a)
	}
}

func TestHungarianSwap(t *testing.T) {
	cost := [][]float64{{5, 1}, {1, 5}}
	a := Hungarian(cost)
	if a[0] != 1 || a[1] != 0 {
		t.Fatalf("assignment = %v", a)
	}
}

func TestHungarianKnownOptimum(t *testing.T) {
	// Classic example: optimal total is 5 (0->1:2, 1->0:3 is 5... verify
	// by brute force below instead of a hand-computed constant).
	cost := [][]float64{
		{4, 2, 8},
		{4, 3, 7},
		{3, 1, 6},
	}
	a := Hungarian(cost)
	total := 0.0
	for i, j := range a {
		total += cost[i][j]
	}
	best := bruteForceAssignment(cost)
	if math.Abs(total-best) > 1e-12 {
		t.Fatalf("Hungarian total %v, brute force %v", total, best)
	}
}

func bruteForceAssignment(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			s := 0.0
			for i, j := range perm {
				s += cost[i][j]
			}
			if s < best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = r.Float64() * 10
			}
		}
		a := Hungarian(cost)
		// Valid permutation.
		seen := make([]bool, n)
		total := 0.0
		for i, j := range a {
			if j < 0 || j >= n || seen[j] {
				return false
			}
			seen[j] = true
			total += cost[i][j]
		}
		return math.Abs(total-bruteForceAssignment(cost)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyPerfectUnderPermutation(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	pred := []int{5, 5, 3, 3, 9, 9} // same partition, different labels
	if acc := Accuracy(truth, pred); math.Abs(acc-100) > 1e-12 {
		t.Fatalf("Accuracy = %v want 100", acc)
	}
}

func TestAccuracyPartial(t *testing.T) {
	truth := []int{0, 0, 0, 1, 1, 1}
	pred := []int{0, 0, 1, 1, 1, 1} // one point of cluster 0 mislabeled
	if acc := Accuracy(truth, pred); math.Abs(acc-100*5.0/6.0) > 1e-9 {
		t.Fatalf("Accuracy = %v want %v", acc, 100*5.0/6.0)
	}
}

func TestAccuracyDifferentClusterCounts(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 1, 2, 3} // over-segmented
	acc := Accuracy(truth, pred)
	if math.Abs(acc-50) > 1e-9 {
		t.Fatalf("Accuracy = %v want 50", acc)
	}
}

func TestNMIBounds(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	if nmi := NMI(truth, truth); math.Abs(nmi-100) > 1e-9 {
		t.Fatalf("NMI(self) = %v", nmi)
	}
	indep := []int{0, 1, 0, 1, 0, 1}
	if nmi := NMI(truth, indep); nmi > 1e-9 {
		t.Fatalf("NMI(independent) = %v want 0", nmi)
	}
}

func TestNMIInvariantToRelabeling(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2, 2}
	pred := []int{1, 1, 0, 2, 2, 2, 2}
	relabeled := []int{10, 10, 40, 7, 7, 7, 7}
	if math.Abs(NMI(truth, pred)-NMI(truth, relabeled)) > 1e-12 {
		t.Fatal("NMI should be invariant to label renaming")
	}
}

func TestNMISymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(30)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = r.Intn(4)
			b[i] = r.Intn(3)
		}
		return math.Abs(NMI(a, b)-NMI(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	// Cluster 0 = {0,1,2} fully connected; cluster 1 = {3,4} connected;
	// no cross edges.
	w := sparse.NewCSR(5, 5, []sparse.Coord{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 1, Col: 2, Val: 1}, {Row: 2, Col: 1, Val: 1},
		{Row: 0, Col: 2, Val: 1}, {Row: 2, Col: 0, Val: 1},
		{Row: 3, Col: 4, Val: 1}, {Row: 4, Col: 3, Val: 1},
	})
	truth := []int{0, 0, 0, 1, 1}
	min, avg := Connectivity(w, truth, rng)
	if min <= 0 {
		t.Fatalf("connected clusters should have positive λ2, min=%v", min)
	}
	if avg < min {
		t.Fatalf("avg %v < min %v", avg, min)
	}
}

func TestConnectivityDisconnectedCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	// Cluster 0 = {0,1,2,3} split into two pairs -> λ2 = 0.
	w := sparse.NewCSR(4, 4, []sparse.Coord{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 2, Col: 3, Val: 1}, {Row: 3, Col: 2, Val: 1},
	})
	truth := []int{0, 0, 0, 0}
	min, _ := Connectivity(w, truth, rng)
	if math.Abs(min) > 1e-8 {
		t.Fatalf("disconnected cluster should give λ2≈0, got %v", min)
	}
}

func TestSEPAndExactClustering(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	// Clean graph: edges only within clusters, clusters connected.
	clean := sparse.NewCSR(4, 4, []sparse.Coord{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 2, Col: 3, Val: 1}, {Row: 3, Col: 2, Val: 1},
	})
	if !SEPHolds(clean, truth) || !ExactClustering(clean, truth) {
		t.Fatal("clean graph should satisfy SEP and exact clustering")
	}
	// False connection across clusters breaks SEP.
	bad := sparse.NewCSR(4, 4, []sparse.Coord{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 1, Col: 2, Val: 1}, {Row: 2, Col: 1, Val: 1},
		{Row: 2, Col: 3, Val: 1}, {Row: 3, Col: 2, Val: 1},
	})
	if SEPHolds(bad, truth) {
		t.Fatal("cross-cluster edge should violate SEP")
	}
	// SEP holds but cluster 0 is split (over-segmentation): not exact.
	split := sparse.NewCSR(4, 4, []sparse.Coord{
		{Row: 2, Col: 3, Val: 1}, {Row: 3, Col: 2, Val: 1},
	})
	truth2 := []int{0, 0, 1, 1}
	if !SEPHolds(split, truth2) {
		t.Fatal("no cross edges: SEP should hold")
	}
	if ExactClustering(split, truth2) {
		t.Fatal("split cluster should fail exact clustering")
	}
}

func TestAccuracyEmptyAndMismatch(t *testing.T) {
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Accuracy([]int{1}, []int{1, 2})
}
