// Package metrics implements the evaluation metrics of Section VI:
// clustering accuracy (best label alignment over permutations, solved by
// the Hungarian algorithm), normalized mutual information, the graph
// connectivity measure CONN, and the SEP / exact-clustering criteria of
// Section III-A.
package metrics

import "math"

// Hungarian solves the square assignment problem: given cost[i][j], it
// returns the column assigned to each row minimizing total cost, using
// the O(n³) shortest-augmenting-path (Jonker-Volgenant style) algorithm.
func Hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	for _, row := range cost {
		if len(row) != n {
			panic("metrics: Hungarian requires a square cost matrix")
		}
	}
	const inf = math.MaxFloat64
	// Potentials and matching, 1-indexed internally per the classic
	// formulation.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row matched to column j
	way := make([]int, n+1) // way[j] = previous column on the path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	return assign
}
