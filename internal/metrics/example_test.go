package metrics_test

import (
	"fmt"

	"fedsc/internal/metrics"
)

// ExampleAccuracy shows that accuracy is computed under the best label
// alignment (Eq. 10): the prediction uses different label values but the
// same partition, so accuracy is perfect.
func ExampleAccuracy() {
	truth := []int{0, 0, 1, 1, 2, 2}
	pred := []int{7, 7, 3, 3, 5, 5}
	fmt.Printf("%.0f%%\n", metrics.Accuracy(truth, pred))
	// Output: 100%
}

// ExampleNMI contrasts a perfect and an uninformative clustering.
func ExampleNMI() {
	truth := []int{0, 0, 1, 1, 2, 2}
	fmt.Printf("self: %.0f, alternating: %.0f\n",
		metrics.NMI(truth, truth),
		metrics.NMI(truth, []int{0, 1, 0, 1, 0, 1}))
	// Output: self: 100, alternating: 0
}

// ExampleHungarian solves a tiny assignment problem.
func ExampleHungarian() {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	fmt.Println(metrics.Hungarian(cost))
	// Output: [1 0 2]
}
