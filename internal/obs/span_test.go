package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stepClock advances a fixed amount per read — an injected Clock that
// makes timed exports deterministic. The counter is atomic so the clock
// can also back traces built from concurrent goroutines.
func stepClock(step time.Duration) Clock {
	var n atomic.Int64
	return func() time.Time {
		return time.Unix(0, n.Add(1)*int64(step))
	}
}

func TestTimedExportWithInjectedClock(t *testing.T) {
	tr := NewTracer(stepClock(time.Millisecond))
	root := tr.Start("round", Int("devices", 2))
	p1 := root.Start("phase1")
	p1.End()
	p2 := root.Start("phase2")
	p2.SetAttr("samples", "8")
	p2.Eventf("pooled %d", 8)
	p2.End()
	root.End()

	var b strings.Builder
	if err := tr.WriteJSONL(&b, true); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `{"path":"round{devices=2}","name":"round","attrs":{"devices":"2"},"start_us":0,"dur_us":5000,"children":2}
{"path":"round{devices=2}/phase1","name":"phase1","start_us":1000,"dur_us":1000,"children":0}
{"path":"round{devices=2}/phase2{samples=8}","name":"phase2","attrs":{"samples":"8"},"events":["pooled 8"],"start_us":3000,"dur_us":1000,"children":0}
`
	if got != want {
		t.Fatalf("timed export mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCanonicalExportIsOrderIndependent(t *testing.T) {
	// Two traces with the same span set built under different
	// interleavings must export identically without times.
	build := func(order []int) string {
		tr := NewTracer(stepClock(time.Microsecond))
		root := tr.Start("round")
		var wg sync.WaitGroup
		for _, dev := range order {
			wg.Add(1)
			go func(dev int) {
				defer wg.Done()
				s := root.Start("device", Int("device", dev))
				s.SetAttr("r", "2")
				s.End()
			}(dev)
		}
		wg.Wait()
		root.End()
		var b strings.Builder
		if err := tr.WriteJSONL(&b, false); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := build([]int{0, 1, 2, 3, 4, 5, 6, 7})
	bb := build([]int{7, 6, 5, 4, 3, 2, 1, 0})
	if a != bb {
		t.Fatalf("canonical exports differ across interleavings:\n%s\nvs\n%s", a, bb)
	}
	if strings.Contains(a, "start_us") {
		t.Fatalf("canonical export leaked wall-clock fields:\n%s", a)
	}
	for dev := 0; dev < 8; dev++ {
		if !strings.Contains(a, `{"device":"`) {
			t.Fatalf("canonical export missing device attrs:\n%s", a)
		}
	}
}

func TestNilTracerAndSpanAreNoops(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatalf("nil tracer returned a span")
	}
	c := s.Start("child")
	c.SetAttr("k", "v")
	c.Eventf("ev %d", 1)
	c.End()
	s.End()
	var b strings.Builder
	if err := tr.WriteJSONL(&b, true); err != nil {
		t.Fatal(err)
	}
	tr.Waterfall(&b)
	if b.Len() != 0 {
		t.Fatalf("nil tracer produced output: %q", b.String())
	}
}

func TestWaterfallRendersEverySpan(t *testing.T) {
	tr := NewTracer(stepClock(time.Millisecond))
	root := tr.Start("round")
	a := root.Start("phase1")
	a.Eventf("fault injected")
	a.End()
	root.Start("phase2").End()
	root.End()
	var b strings.Builder
	tr.Waterfall(&b)
	out := b.String()
	for _, want := range []string{"round", "phase1", "phase2", "█", "(1 events)"} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("waterfall has %d lines, want 3:\n%s", len(lines), out)
	}
}

func TestDebugHandlerServesMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("fedsc_test_total", "test counter").Add(9)
	srv := httptest.NewServer(NewDebugHandler(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "fedsc_test_total 9") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d (body %d bytes)", code, len(body))
	}
}
