package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotentAndSorted(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("z_total", "last alphabetically")
	c2 := reg.Counter("z_total", "ignored duplicate help")
	if c1 != c2 {
		t.Fatalf("re-registration returned a different counter")
	}
	c1.Add(3)
	reg.Gauge("a_gauge", "first alphabetically").Set(7)
	reg.Histogram("m_hist", "middle", []float64{1, 10}).Observe(2)
	reg.CounterVec("v_total", "labeled", "model").With("b").Add(2)
	reg.CounterVec("v_total", "labeled", "model").With("a").Inc()

	var b strings.Builder
	reg.WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		"a_gauge 7",
		"m_hist_bucket{le=\"10\"} 1",
		"m_hist_count 1",
		"v_total{model=\"a\"} 1",
		"v_total{model=\"b\"} 2",
		"z_total 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Sorted by name: a_gauge before m_hist before v_total before z_total.
	order := []string{"a_gauge", "m_hist", "v_total", "z_total"}
	last := -1
	for _, name := range order {
		i := strings.Index(text, "# HELP "+name)
		if i < 0 {
			t.Fatalf("missing HELP for %s", name)
		}
		if i < last {
			t.Errorf("%s rendered out of sorted order", name)
		}
		last = i
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dual", "as counter")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge should panic")
		}
	}()
	reg.Gauge("dual", "as gauge")
}

func TestNilRegistryAndInstrumentsAreNoops(t *testing.T) {
	var reg *Registry
	reg.Counter("x", "").Add(1)
	reg.Counter("x", "").Inc()
	reg.Gauge("x", "").Set(2)
	reg.Histogram("x", "", nil).Observe(1)
	reg.CounterVec("x", "", "l").With("v").Inc()
	var b strings.Builder
	reg.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatalf("nil registry rendered output: %q", b.String())
	}
	if got := reg.Counter("x", "").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	if got := reg.CounterVec("x", "", "l").Total(); got != 0 {
		t.Fatalf("nil vec total = %d", got)
	}
	if got := reg.Histogram("x", "", nil).Count(); got != 0 {
		t.Fatalf("nil histogram count = %d", got)
	}
}

func TestCounterIgnoresNegativeDeltas(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d after negative add, want 5", got)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 104.9 || got > 105.1 {
		t.Fatalf("sum = %g, want 105", got)
	}
	var b strings.Builder
	h.write(&b, "h", "")
	text := b.String()
	for _, want := range []string{
		`h_bucket{le="1"} 1`,
		`h_bucket{le="2"} 2`,
		`h_bucket{le="4"} 3`,
		`h_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("histogram exposition missing %q:\n%s", want, text)
		}
	}
}

func TestConcurrentRegistration(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				reg.Counter("shared_total", "").Inc()
				reg.CounterVec("by_model_total", "", "model").With("m").Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared_total", "").Value(); got != 800 {
		t.Fatalf("shared_total = %d, want 800", got)
	}
	if got := reg.CounterVec("by_model_total", "", "model").Total(); got != 800 {
		t.Fatalf("by_model_total = %d, want 800", got)
	}
}
