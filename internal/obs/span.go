package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Clock supplies timestamps to a Tracer. Injecting one makes timed
// span exports deterministic under test; the zero value of a Tracer
// option falls back to time.Now.
type Clock func() time.Time

// Attr is one key/value annotation on a span. Values are strings so
// the canonical export needs no float formatting decisions.
type Attr struct{ Key, Value string }

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: fmt.Sprintf("%d", v)} }

// Tracer records a forest of spans — the phase tree of a federated
// round. A nil *Tracer (and the nil *Span it hands out) is a valid
// no-op, so instrumented code never guards the pointer.
type Tracer struct {
	clock Clock
	mu    sync.Mutex
	roots []*Span
}

// NewTracer returns a tracer reading timestamps from clock (nil means
// time.Now).
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = time.Now
	}
	return &Tracer{clock: clock}
}

// Start opens a root span. Nil tracers return a nil span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, name: name, attrs: append([]Attr(nil), attrs...), start: t.clock()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots returns the root spans in creation order.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Span is one timed node of the phase tree. Child spans may be opened
// concurrently; all mutation is guarded by the span's own lock.
type Span struct {
	tracer *Tracer
	name   string
	start  time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	events   []string
	children []*Span
}

// Start opens a child span. Nil spans return nil, so a disabled trace
// costs one pointer check per phase.
func (s *Span) Start(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, name: name, attrs: append([]Attr(nil), attrs...), start: s.tracer.clock()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span; the first call wins, later calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tracer.clock()
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.mu.Unlock()
}

// SetAttr adds an annotation discovered after the span opened (e.g.
// the number of local clusters a device found).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Eventf appends one formatted point-in-time event — this is the hook
// chaos fault-trace records flow through, so an injected fault shows up
// inside the span of the phase it hit.
func (s *Span) Eventf(format string, args ...any) {
	if s == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	s.mu.Lock()
	s.events = append(s.events, msg)
	s.mu.Unlock()
}

// spanRecord is one exported JSONL line. encoding/json writes map keys
// sorted, which keeps the attrs object canonical.
type spanRecord struct {
	Path     string            `json:"path"`
	Name     string            `json:"name"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Events   []string          `json:"events,omitempty"`
	StartUS  *int64            `json:"start_us,omitempty"`
	DurUS    *int64            `json:"dur_us,omitempty"`
	Children int               `json:"children"`
}

// label renders the span's identity within its siblings: the name plus
// the sorted attributes it was started with.
func (s *Span) label() string {
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	s.mu.Unlock()
	if len(attrs) == 0 {
		return s.name
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a.Key + "=" + a.Value
	}
	sort.Strings(parts)
	return s.name + "{" + strings.Join(parts, ",") + "}"
}

// WriteJSONL exports the span forest as one JSON object per line,
// depth first, siblings in canonical (serialized-content) order rather
// than creation order — concurrent phases append children in scheduling
// order, and sorting is what makes a fixed-seed trace bit-identical
// across runs. withTimes adds start_us/dur_us read from the tracer's
// clock; the canonical export used for replay comparison omits them.
func (t *Tracer) WriteJSONL(w io.Writer, withTimes bool) error {
	if t == nil {
		return nil
	}
	roots := t.Roots()
	var epoch time.Time
	for i, r := range roots {
		if i == 0 || r.start.Before(epoch) {
			epoch = r.start
		}
	}
	for _, r := range roots {
		for _, line := range flattenSpan(r, "", epoch, withTimes) {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// flattenSpan serializes one subtree; the returned lines start with the
// span itself followed by its (canonically sorted) descendants.
func flattenSpan(s *Span, parentPath string, epoch time.Time, withTimes bool) []string {
	path := s.label()
	if parentPath != "" {
		path = parentPath + "/" + path
	}
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	events := append([]string(nil), s.events...)
	children := append([]*Span(nil), s.children...)
	end := s.end
	s.mu.Unlock()
	rec := spanRecord{Path: path, Name: s.name, Children: len(children)}
	if len(attrs) > 0 {
		rec.Attrs = map[string]string{}
		for _, a := range attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	rec.Events = events
	if withTimes {
		if end.IsZero() {
			end = s.start
		}
		start := s.start.Sub(epoch).Microseconds()
		dur := end.Sub(s.start).Microseconds()
		rec.StartUS, rec.DurUS = &start, &dur
	}
	data, err := json.Marshal(rec)
	if err != nil {
		// spanRecord contains only strings and ints; Marshal cannot fail.
		panic("obs: marshal span record: " + err.Error())
	}
	blocks := make([][]string, len(children))
	for i, c := range children {
		blocks[i] = flattenSpan(c, path, epoch, withTimes)
	}
	sort.Slice(blocks, func(i, j int) bool {
		return strings.Join(blocks[i], "\n") < strings.Join(blocks[j], "\n")
	})
	out := []string{string(data)}
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// Waterfall renders the span forest as an indented text waterfall with
// real timings — the human view behind `fedsc -trace`. Siblings are
// ordered by start time; the bar maps each span onto the full trace
// window.
func (t *Tracer) Waterfall(w io.Writer) {
	if t == nil {
		return
	}
	roots := t.Roots()
	if len(roots) == 0 {
		return
	}
	var min, max time.Time
	var scan func(s *Span)
	scan = func(s *Span) {
		s.mu.Lock()
		end := s.end
		children := append([]*Span(nil), s.children...)
		s.mu.Unlock()
		if end.IsZero() {
			end = s.start
		}
		if min.IsZero() || s.start.Before(min) {
			min = s.start
		}
		if max.IsZero() || end.After(max) {
			max = end
		}
		for _, c := range children {
			scan(c)
		}
	}
	for _, r := range roots {
		scan(r)
	}
	total := max.Sub(min)
	if total <= 0 {
		total = time.Microsecond
	}
	const width = 48
	var render func(s *Span, depth int)
	render = func(s *Span, depth int) {
		s.mu.Lock()
		end := s.end
		children := append([]*Span(nil), s.children...)
		nEvents := len(s.events)
		s.mu.Unlock()
		if end.IsZero() {
			end = s.start
		}
		lo := int(float64(s.start.Sub(min)) / float64(total) * width)
		hi := int(float64(end.Sub(min)) / float64(total) * width)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("█", hi-lo) + strings.Repeat(" ", width-hi)
		name := strings.Repeat("  ", depth) + s.label()
		suffix := ""
		if nEvents > 0 {
			suffix = fmt.Sprintf("  (%d events)", nEvents)
		}
		fmt.Fprintf(w, "%-42s |%s| %9.3fms%s\n", name, bar, float64(end.Sub(s.start).Microseconds())/1000, suffix)
		sort.SliceStable(children, func(i, j int) bool { return children[i].start.Before(children[j].start) })
		for _, c := range children {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
}
