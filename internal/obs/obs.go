// Package obs is the stdlib-only observability layer of the Fed-SC
// stack: a process-wide metrics registry rendered in the Prometheus
// text exposition format, lightweight spans recording the phase tree of
// a federated round, and the operational debug endpoints (/metrics and
// net/http/pprof) the long-running binaries mount behind -debug-addr.
//
// Every subsystem publishes here — fednet (uplink/downlink bytes,
// retries, dedup supersedes), core (per-phase round latencies), chaos
// (injected-fault events), kfed (upload accounting), and serve (request
// latency, batch sizes) — so one scrape of /metrics sees the whole
// pipeline instead of only the inference tier.
//
// Determinism: metric registration is idempotent and exposition is
// sorted, spans take an injected Clock, and the canonical JSONL span
// export excludes wall-clock fields, so a fixed-seed round emits a
// bit-identical trace across runs and composes with the chaos replay
// harness. All registry and tracer methods are nil-receiver-safe:
// instrumented code paths never need to guard the pointer, and an
// uninstrumented run pays only a nil check.
package obs
