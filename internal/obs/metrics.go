package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// metric is one named instrument the registry can render.
type metric interface {
	write(w io.Writer, name, help string)
	kind() string
}

// entry pairs an instrument with its exposition metadata.
type entry struct {
	name string
	help string
	m    metric
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration is idempotent: asking for an existing
// name returns the same instrument, so independent subsystems can share
// one registry without coordinating initialization order. A nil
// *Registry is a valid sink that discards everything.
type Registry struct {
	mu      sync.Mutex
	entries map[string]entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{entries: map[string]entry{}} }

// defaultRegistry is the process-wide registry the binaries expose on
// -debug-addr; subsystems without an injected registry publish here.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// register returns the instrument under name, creating it with mk on
// first use. It panics when the name is already bound to a different
// instrument kind — silent type confusion would corrupt the exposition.
func (r *Registry) register(name, help string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		want := mk().kind()
		if e.m.kind() != want {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, e.m.kind(), want))
		}
		return e.m
	}
	m := mk()
	r.entries[name] = entry{name: name, help: help, m: m}
	return m
}

// Counter returns the monotonically increasing counter registered under
// name, creating it on first use. Nil registries return a nil counter,
// which discards updates.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil registries return a nil gauge, which discards updates.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (later calls keep the
// original buckets). Nil registries return a nil histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, func() metric { return NewHistogram(bounds) }).(*Histogram)
}

// CounterVec returns the label-partitioned counter family registered
// under name, creating it on first use. Nil registries return a nil
// family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	return r.register(name, help, func() metric { return &CounterVec{label: label} }).(*CounterVec)
}

// WritePrometheus renders every registered metric in ascending name
// order — a sorted exposition keeps scrapes diffable across runs.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	entries := make([]entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.m.kind())
		e.m.write(w, e.name, e.help)
	}
}

// Counter is a lock-free monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increases the counter; negative deltas are ignored (counters are
// monotone by contract). Nil counters discard the update.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) kind() string { return "counter" }

func (c *Counter) write(w io.Writer, name, _ string) {
	fmt.Fprintf(w, "%s %d\n", name, c.v.Load())
}

// Gauge is a lock-free int64 level.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by n (nil-safe).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Set pins the gauge to n (nil-safe).
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) kind() string { return "gauge" }

func (g *Gauge) write(w io.Writer, name, _ string) {
	fmt.Fprintf(w, "%s %d\n", name, g.v.Load())
}

// Histogram is a fixed-bucket cumulative histogram with atomic
// counters. The sum is kept in integer nanounits to stay lock-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumNano atomic.Int64 // sum * 1e9, good to ~292 observation-years
}

// NewHistogram returns a histogram with the given ascending bucket
// upper bounds (the implicit +Inf bucket is always present).
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: append([]float64(nil), bounds...), buckets: make([]atomic.Int64, len(bounds))}
}

// Observe records one value (nil-safe).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
		}
	}
	h.count.Add(1)
	h.sumNano.Add(int64(v * 1e9))
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumNano.Load()) / 1e9
}

func (h *Histogram) kind() string { return "histogram" }

func (h *Histogram) write(w io.Writer, name, _ string) {
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", b), h.buckets[i].Load())
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count.Load())
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNano.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// CounterVec is a counter family partitioned by one label; children are
// created on first observation of a label value.
type CounterVec struct {
	label    string
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the label value (nil-safe).
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.children == nil {
		v.children = map[string]*Counter{}
	}
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// Total sums every child (0 for a nil family).
func (v *CounterVec) Total() int64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	var total int64
	for _, c := range v.children {
		total += c.Value()
	}
	return total
}

func (v *CounterVec) kind() string { return "counter" }

func (v *CounterVec) write(w io.Writer, name, _ string) {
	v.mu.Lock()
	values := make([]string, 0, len(v.children))
	for value := range v.children {
		values = append(values, value)
	}
	sort.Strings(values)
	for _, value := range values {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, v.label, value, v.children[value].Value())
	}
	v.mu.Unlock()
}
