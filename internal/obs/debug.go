package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugHandler returns the operational endpoint mux mounted behind
// -debug-addr on the long-running binaries: /metrics renders reg (the
// process-wide Default registry when nil) in the Prometheus text
// format, and /debug/pprof/* exposes the standard runtime profiles.
func NewDebugHandler(reg *Registry) http.Handler {
	if reg == nil {
		reg = Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug listens on addr and serves the debug endpoints in a
// background goroutine for the life of the process. It returns the
// bound address (useful with ":0") or the listen error; serve errors
// after startup only surface through errCh when non-nil. The debug
// server is best-effort plumbing: it never takes the main service down.
func ServeDebug(addr string, reg *Registry, errCh chan<- error) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewDebugHandler(reg)}
	go func() {
		err := srv.Serve(ln)
		if errCh != nil {
			errCh <- err
		}
	}()
	return ln.Addr(), nil
}
