package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugEndpoint mounts one extra handler on the -debug-addr mux, so a
// binary can expose operational views beyond /metrics and pprof (e.g.
// fedsc-serve's /storez artifact-store stats) without running a second
// listener.
type DebugEndpoint struct {
	// Pattern is the http.ServeMux pattern (e.g. "/storez"). Patterns
	// colliding with /metrics or /debug/pprof/* panic at mux
	// registration, which is the right time to learn about it.
	Pattern string
	Handler http.Handler
}

// NewDebugHandler returns the operational endpoint mux mounted behind
// -debug-addr on the long-running binaries: /metrics renders reg (the
// process-wide Default registry when nil) in the Prometheus text
// format, /debug/pprof/* exposes the standard runtime profiles, and
// any extra endpoints are mounted at their patterns.
func NewDebugHandler(reg *Registry, extra ...DebugEndpoint) http.Handler {
	if reg == nil {
		reg = Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, e := range extra {
		mux.Handle(e.Pattern, e.Handler)
	}
	return mux
}

// ServeDebug listens on addr and serves the debug endpoints in a
// background goroutine for the life of the process. It returns the
// bound address (useful with ":0") or the listen error; serve errors
// after startup only surface through errCh when non-nil. The debug
// server is best-effort plumbing: it never takes the main service down.
func ServeDebug(addr string, reg *Registry, errCh chan<- error, extra ...DebugEndpoint) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewDebugHandler(reg, extra...)}
	// Process-lifetime by contract: the debug listener serves until the
	// binary exits and has no shutdown signal to select on. The serve
	// error is delivered best-effort — a non-blocking send — so a caller
	// that passed an unbuffered channel and stopped reading can never
	// wedge this goroutine on the handoff.
	go func() { //fedsc:allow goroutineleak debug server is process-lifetime by contract; see above
		err := srv.Serve(ln)
		if errCh != nil {
			select {
			case errCh <- err:
			default:
			}
		}
	}()
	return ln.Addr(), nil
}
