package core_test

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"fedsc/internal/core"
	"fedsc/internal/mat"
	"fedsc/internal/synth"
)

// runSynthetic executes Fed-SC on a clean synthetic union of subspaces
// and returns the devices, the run result, and the cluster count.
func runSynthetic(t *testing.T, seed int64) ([]*mat.Dense, core.Result, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n, d, l, z, lPrime, per = 20, 3, 4, 16, 2, 8
	s := synth.RandomSubspaces(n, d, l, rng)
	devices := make([]*mat.Dense, z)
	for dev := 0; dev < z; dev++ {
		clusters := rng.Perm(l)[:lPrime]
		counts := make([]int, l)
		for _, c := range clusters {
			counts[c] = per
		}
		devices[dev] = s.SampleCounts(counts, rng).X
	}
	res := core.Run(devices, l, core.Options{Local: core.LocalOptions{UseEigengap: true}}, rng)
	return devices, res, l
}

func TestAggregateExposesGlobalBases(t *testing.T) {
	devices, res, l := runSynthetic(t, 41)
	if len(res.GlobalBases) != l || len(res.GlobalDims) != l {
		t.Fatalf("got %d bases / %d dims, want %d", len(res.GlobalBases), len(res.GlobalDims), l)
	}
	n := devices[0].Rows()
	for g, u := range res.GlobalBases {
		if u.Rows() != n {
			t.Fatalf("basis %d lives in %d dims, want %d", g, u.Rows(), n)
		}
		if u.Cols() != res.GlobalDims[g] {
			t.Fatalf("basis %d has %d cols, dims says %d", g, u.Cols(), res.GlobalDims[g])
		}
		// Orthonormality: UᵀU = I.
		gram := mat.MulTA(u, u)
		if !mat.Equalish(gram, mat.Identity(u.Cols()), 1e-8) {
			t.Fatalf("basis %d is not orthonormal", g)
		}
	}
	// Every training point must be closest (minimum projection residual)
	// to the basis of its own assigned cluster: the bases and labels came
	// from the same round on clean data.
	for dev, x := range devices {
		norms := mat.ColNormsSq(x)
		best := make([]int, x.Cols())
		bestRes := make([]float64, x.Cols())
		for j := range bestRes {
			bestRes[j] = math.Inf(1)
		}
		for g, u := range res.GlobalBases {
			r := mat.ResidualsSq(u, x, norms)
			for j, v := range r {
				if v < bestRes[j] {
					bestRes[j], best[j] = v, g
				}
			}
		}
		for j, g := range best {
			if g != res.Labels[dev][j] {
				t.Fatalf("device %d point %d: residual rule says %d, round said %d", dev, j, g, res.Labels[dev][j])
			}
		}
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	_, res, l := runSynthetic(t, 42)
	m, err := core.ModelFromResult(res, l, 0, core.CentralSSC)
	if err != nil {
		t.Fatalf("ModelFromResult: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("fresh model invalid: %v", err)
	}
	path := filepath.Join(t.TempDir(), "model.fedsc")
	if err := m.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := core.LoadModel(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Ambient != m.Ambient || got.L != m.L || got.Method != m.Method {
		t.Fatalf("metadata changed in round trip: %+v vs %+v", got, m)
	}
	if got.Checksum != m.Checksum {
		t.Fatal("checksum changed in round trip")
	}
	a, b := m.Bases(), got.Bases()
	for g := range a {
		if !mat.Equalish(a[g], b[g], 0) {
			t.Fatalf("basis %d changed in round trip", g)
		}
	}
}

func TestLoadModelRejectsCorruption(t *testing.T) {
	_, res, l := runSynthetic(t, 43)
	m, err := core.ModelFromResult(res, l, 0, core.CentralTSC)
	if err != nil {
		t.Fatalf("ModelFromResult: %v", err)
	}
	path := filepath.Join(t.TempDir(), "model.fedsc")
	if err := m.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	// Flip one basis float in the stored artifact: the checksum must
	// catch it. Gob stores the float bytes verbatim, so corrupt a byte
	// late in the file (inside the basis payload).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	raw[len(raw)-10] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := core.LoadModel(path); err == nil {
		t.Fatal("corrupted artifact loaded cleanly")
	}
}

func TestDecodeModelRejectsFutureVersion(t *testing.T) {
	_, res, l := runSynthetic(t, 44)
	m, err := core.ModelFromResult(res, l, 0, core.CentralSSC)
	if err != nil {
		t.Fatalf("ModelFromResult: %v", err)
	}
	m.Version = core.ModelVersion + 1
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := core.DecodeModel(&buf); err == nil {
		t.Fatal("future-version artifact accepted")
	}
}

func TestBuildModelValidatesInputs(t *testing.T) {
	theta := mat.NewDense(4, 3)
	if _, err := core.BuildModel(theta, []int{0, 1}, 2, 0, core.CentralSSC); err == nil {
		t.Fatal("label/sample mismatch accepted")
	}
	if _, err := core.BuildModel(theta, []int{0, 1, 0}, 0, 0, core.CentralSSC); err == nil {
		t.Fatal("L=0 accepted")
	}
	if _, err := core.BuildModel(mat.NewDense(0, 0), nil, 2, 0, core.CentralSSC); err == nil {
		t.Fatal("empty sample matrix accepted")
	}
}

func TestGlobalBasesEmptyCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	theta := mat.RandomGaussian(6, 4, rng)
	// Label every sample into cluster 0 of 3: clusters 1 and 2 are empty.
	bases, dims := core.GlobalBases(theta, []int{0, 0, 0, 0}, 3, 0)
	if len(bases) != 3 {
		t.Fatalf("got %d bases", len(bases))
	}
	for g := 1; g < 3; g++ {
		if bases[g].Cols() != 0 || dims[g] != 0 {
			t.Fatalf("empty cluster %d got a %d-dim basis", g, bases[g].Cols())
		}
	}
	if bases[0].Cols() == 0 {
		t.Fatal("populated cluster got an empty basis")
	}
}
