package core_test

import (
	"fmt"
	"math/rand"

	"fedsc/internal/core"
	"fedsc/internal/mat"
	"fedsc/internal/metrics"
	"fedsc/internal/synth"
)

// ExampleRun demonstrates the full one-shot scheme on a tiny synthetic
// federation: 3 subspaces, 12 devices each holding 2 of them.
func ExampleRun() {
	rng := rand.New(rand.NewSource(7))
	subspaces := synth.RandomSubspaces(16, 2, 3, rng)
	devices := make([]*mat.Dense, 12)
	truth := make([][]int, 12)
	for dev := range devices {
		clusters := rng.Perm(3)[:2]
		counts := make([]int, 3)
		for k := 0; k < 16; k++ {
			counts[clusters[k%2]]++
		}
		ds := subspaces.SampleCounts(counts, rng)
		devices[dev] = ds.X
		truth[dev] = ds.Labels
	}
	res := core.Run(devices, 3, core.Options{
		Local: core.LocalOptions{UseEigengap: true},
	}, rng)
	acc := metrics.Accuracy(core.FlattenLabels(truth), core.FlattenLabels(res.Labels))
	fmt.Printf("accuracy %.0f%%, one communication round\n", acc)
	// Output: accuracy 100%, one communication round
}

// ExampleLocalClusterAndSample shows Phase 1 in isolation: a device with
// two local subspaces uploads exactly two unit-norm samples.
func ExampleLocalClusterAndSample() {
	rng := rand.New(rand.NewSource(3))
	subspaces := synth.RandomSubspaces(12, 2, 2, rng)
	ds := subspaces.Sample(10, rng) // 10 points per subspace
	lr := core.LocalClusterAndSample(ds.X, core.LocalOptions{UseEigengap: true}, rng)
	fmt.Printf("local clusters: %d, samples uploaded: %d\n", lr.R(), lr.Samples.Cols())
	// Output: local clusters: 2, samples uploaded: 2
}
