package core

import (
	"math/rand"
	"strings"
	"testing"

	"fedsc/internal/mat"
	"fedsc/internal/synth"
)

// TestAggregateRejectsMismatchedAmbient is the regression test for the
// silent devices[0].Rows() read in the communication accounting: a
// device whose data lives in a different ambient space must fail loudly
// at aggregation instead of corrupting the uplink arithmetic (and the
// pooled clustering) downstream.
func TestAggregateRejectsMismatchedAmbient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func(ambient int) (*synth.Dataset, LocalResult) {
		s := synth.RandomSubspaces(ambient, 2, 2, rng)
		ds := s.Sample(8, rng)
		return &ds, LocalClusterAndSample(ds.X, LocalOptions{UseEigengap: true}, rng)
	}
	ds0, lr0 := mk(15)
	ds1, lr1 := mk(17) // disagrees with device 0's ambient dimension

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Aggregate accepted devices with mismatched ambient dimensions")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "ambient dimension") {
			t.Fatalf("panic %v does not name the ambient mismatch", r)
		}
	}()
	Aggregate([]*mat.Dense{ds0.X, ds1.X}, []LocalResult{lr0, lr1}, 2, Options{}, rng)
}
