package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"fedsc/internal/mat"
)

// ModelVersion is the current on-disk artifact format version. Loaders
// reject artifacts from a newer format than they understand.
const ModelVersion = 1

// ClusterBasis is the serialized orthonormal basis of one global
// cluster's estimated subspace.
type ClusterBasis struct {
	// Dim is the subspace dimension d (number of basis columns).
	Dim int
	// Data is the Ambient x Dim basis, row-major. Empty for a global
	// cluster that received no samples (its projector is zero, so it can
	// never win a minimum-residual assignment).
	Data []float64
	// Samples is the number of pooled samples the basis was estimated
	// from (diagnostic metadata).
	Samples int
}

// Model is the immutable artifact a completed one-shot Fed-SC round
// produces for serving: per-global-cluster subspace bases plus enough
// metadata to identify and verify the artifact. A new point x is
// assigned to the cluster minimizing the projection residual
// ‖x − U Uᵀx‖ over the stored bases — the standard out-of-sample rule
// for subspace models.
type Model struct {
	// Version is the artifact format version (ModelVersion at save time).
	Version int
	// Ambient is the data dimension n every basis lives in.
	Ambient int
	// L is the number of global clusters; len(Clusters) == L.
	L        int
	Clusters []ClusterBasis
	// Method records the Phase 2 algorithm that produced the labels
	// ("ssc" or "tsc"); informational.
	Method string
	// CreatedUnixNano is the artifact creation time (UnixNano). Save
	// stamps it when zero.
	CreatedUnixNano int64
	// Checksum is the SHA-256 digest of the payload fields (everything
	// except the checksum itself); Load verifies it.
	Checksum [sha256.Size]byte
}

// checksum digests every payload field in a fixed order.
func (m *Model) checksum() [sha256.Size]byte {
	h := sha256.New()
	num := func(v int64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	num(int64(m.Version))
	num(int64(m.Ambient))
	num(int64(m.L))
	num(m.CreatedUnixNano)
	h.Write([]byte(m.Method))
	for _, c := range m.Clusters {
		num(int64(c.Dim))
		num(int64(c.Samples))
		num(int64(len(c.Data)))
		for _, v := range c.Data {
			num(int64(math.Float64bits(v)))
		}
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// Seal stamps the creation time (when unset) and checksum; Save calls it
// automatically.
func (m *Model) Seal() {
	if m.CreatedUnixNano == 0 {
		m.CreatedUnixNano = time.Now().UnixNano()
	}
	m.Checksum = m.checksum()
}

// Validate checks structural consistency and the checksum.
func (m *Model) Validate() error {
	if m.Version <= 0 || m.Version > ModelVersion {
		return fmt.Errorf("core: unsupported model version %d (understand up to %d)", m.Version, ModelVersion)
	}
	if m.Ambient <= 0 {
		return fmt.Errorf("core: model ambient dimension %d", m.Ambient)
	}
	if m.L != len(m.Clusters) {
		return fmt.Errorf("core: model declares L=%d but holds %d cluster bases", m.L, len(m.Clusters))
	}
	for g, c := range m.Clusters {
		if c.Dim < 0 || len(c.Data) != m.Ambient*c.Dim {
			return fmt.Errorf("core: cluster %d basis is %d floats, want %dx%d", g, len(c.Data), m.Ambient, c.Dim)
		}
	}
	if m.Checksum != m.checksum() {
		return fmt.Errorf("core: model checksum mismatch (artifact corrupted or tampered)")
	}
	return nil
}

// Bases decodes the stored cluster bases into dense matrices, in global
// label order.
func (m *Model) Bases() []*mat.Dense {
	out := make([]*mat.Dense, len(m.Clusters))
	for g, c := range m.Clusters {
		data := make([]float64, len(c.Data))
		copy(data, c.Data)
		out[g] = mat.NewDenseData(m.Ambient, c.Dim, data)
	}
	return out
}

// Created returns the artifact creation time.
func (m *Model) Created() time.Time { return time.Unix(0, m.CreatedUnixNano) }

// Encode gob-serializes the sealed model to w.
func (m *Model) Encode(w io.Writer) error {
	m.Seal()
	if err := gob.NewEncoder(w).Encode(m); err != nil {
		return fmt.Errorf("core: encode model: %w", err)
	}
	return nil
}

// DecodeModel reads a gob model artifact from r and validates it.
func DecodeModel(r io.Reader) (*Model, error) {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Save writes the artifact atomically (temp file + rename), so a reader
// polling the path for hot reload never observes a partial artifact.
func (m *Model) Save(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".fedsc-model-*")
	if err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	defer os.Remove(tmp.Name())
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		_ = tmp.Close()
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("core: save model: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	return nil
}

// LoadModel reads and validates a model artifact from disk.
func LoadModel(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	// Read-only descriptor: Close cannot lose data.
	defer func() { _ = f.Close() }()
	return DecodeModel(f)
}

// GlobalBases estimates, for each global cluster in [0, l), an
// orthonormal basis of its subspace by truncated SVD over the pooled
// samples carrying that label (theta's columns, labeled by labels).
// targetDim forces the per-cluster dimension (the paper's d_t shortcut);
// zero estimates it per cluster from the pooled spectrum, capped by the
// sample count. Clusters with no samples get an Ambient x 0 basis.
// It returns the bases and the chosen dimensions.
func GlobalBases(theta *mat.Dense, labels []int, l, targetDim int) ([]*mat.Dense, []int) {
	n := theta.Rows()
	members := make([][]int, l)
	for j, g := range labels {
		if g >= 0 && g < l {
			members[g] = append(members[g], j)
		}
	}
	bases := make([]*mat.Dense, l)
	dims := make([]int, l)
	for g := 0; g < l; g++ {
		if len(members[g]) == 0 {
			bases[g] = mat.NewDense(n, 0)
			continue
		}
		sub := theta.SelectCols(members[g])
		basis, _ := clusterBasis(sub, LocalOptions{TargetDim: targetDim}.withDefaults())
		bases[g] = basis
		dims[g] = basis.Cols()
	}
	return bases, dims
}

// BuildModel packs per-global-cluster bases estimated from the pooled
// sample matrix into a serving artifact. theta and labels are the Phase 2
// inputs/outputs (columns = samples); see GlobalBases for targetDim.
func BuildModel(theta *mat.Dense, labels []int, l, targetDim int, method CentralMethod) (*Model, error) {
	if theta.Cols() != len(labels) {
		return nil, fmt.Errorf("core: %d samples but %d labels", theta.Cols(), len(labels))
	}
	if l <= 0 {
		return nil, fmt.Errorf("core: non-positive cluster count %d", l)
	}
	if theta.Rows() <= 0 {
		return nil, fmt.Errorf("core: empty sample matrix")
	}
	bases, _ := GlobalBases(theta, labels, l, targetDim)
	counts := make([]int, l)
	for _, g := range labels {
		if g >= 0 && g < l {
			counts[g]++
		}
	}
	m := &Model{
		Version: ModelVersion,
		Ambient: theta.Rows(),
		L:       l,
		Method:  string(method),
	}
	for g, b := range bases {
		data := make([]float64, len(b.Data()))
		copy(data, b.Data())
		m.Clusters = append(m.Clusters, ClusterBasis{Dim: b.Cols(), Data: data, Samples: counts[g]})
	}
	m.Seal()
	return m, nil
}

// ModelFromBases packs already-estimated orthonormal cluster bases into
// a serving artifact: cluster g gets bases[g] with samples[g] recorded
// as its diagnostic sample count (nil samples records zeros). It is the
// splice primitive of continuous federation (internal/fleet): an
// incremental round appends delta-solved bases to a served model's
// existing ones without re-running the original Phase 2.
func ModelFromBases(ambient int, bases []*mat.Dense, samples []int, method CentralMethod) (*Model, error) {
	if ambient <= 0 {
		return nil, fmt.Errorf("core: non-positive ambient dimension %d", ambient)
	}
	if len(bases) == 0 {
		return nil, fmt.Errorf("core: no cluster bases")
	}
	if samples != nil && len(samples) != len(bases) {
		return nil, fmt.Errorf("core: %d sample counts for %d bases", len(samples), len(bases))
	}
	m := &Model{
		Version: ModelVersion,
		Ambient: ambient,
		L:       len(bases),
		Method:  string(method),
	}
	for g, b := range bases {
		if b.Rows() != ambient {
			return nil, fmt.Errorf("core: cluster %d basis lives in %d dims, want %d", g, b.Rows(), ambient)
		}
		count := 0
		if samples != nil {
			count = samples[g]
		}
		data := make([]float64, len(b.Data()))
		copy(data, b.Data())
		m.Clusters = append(m.Clusters, ClusterBasis{Dim: b.Cols(), Data: data, Samples: count})
	}
	m.Seal()
	return m, nil
}

// ModelFromResult builds the serving artifact from a completed in-process
// run: it re-pools the retained Phase 1 samples and their server labels.
// targetDim is as in GlobalBases.
func ModelFromResult(res Result, l, targetDim int, method CentralMethod) (*Model, error) {
	if len(res.Locals) == 0 {
		return nil, fmt.Errorf("core: result retains no local phase output")
	}
	matrices := make([]*mat.Dense, len(res.Locals))
	var labels []int
	for dev, lr := range res.Locals {
		matrices[dev] = lr.Samples
		spc := 1
		if lr.R() > 0 {
			spc = lr.Samples.Cols() / lr.R()
		}
		for t := 0; t < lr.R(); t++ {
			for s := 0; s < spc; s++ {
				labels = append(labels, res.SampleLabels[dev][t])
			}
		}
	}
	theta := mat.HStack(matrices...)
	return BuildModel(theta, labels, l, targetDim, method)
}
