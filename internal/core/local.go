package core

import (
	"math/rand"
	"time"

	"fedsc/internal/mat"
	"fedsc/internal/spectral"
	"fedsc/internal/subspace"
)

// LocalClusterAndSample runs Algorithm 2 on one device's data x (columns
// are points): SSC self-expression, eigengap (or capped) estimation of
// the number of local clusters, spectral segmentation, per-cluster basis
// recovery by truncated SVD, and generation of uniform unit-sphere
// samples from each estimated subspace.
func LocalClusterAndSample(x *mat.Dense, opts LocalOptions, rng *rand.Rand) LocalResult {
	opts = opts.withDefaults()
	start := time.Now()
	n, cols := x.Dims()
	if cols == 0 {
		return LocalResult{Samples: mat.NewDense(n, 0), Elapsed: time.Since(start)}
	}
	var partitions [][]int
	if cols == 1 {
		partitions = [][]int{{0}}
	} else {
		coef := subspace.SSCCoefficients(x, opts.SSC)
		w := subspace.AffinityFromCoefficients(coef, sscDropTol(opts.SSC))
		var r int
		var labels []int
		if opts.UseEigengap {
			r, labels = spectral.EstimateAndCluster(w, opts.RMax, rng)
		} else {
			r = opts.RMax
			if r > cols {
				r = cols
			}
			labels = spectral.Cluster(w, r, rng)
		}
		if r < 1 {
			r = 1
		}
		partitions = make([][]int, r)
		for i, t := range labels {
			partitions[t] = append(partitions[t], i)
		}
		// Spectral k-means can leave a cluster empty on degenerate
		// graphs; drop empty partitions rather than upload junk samples.
		kept := partitions[:0]
		for _, p := range partitions {
			if len(p) > 0 {
				kept = append(kept, p)
			}
		}
		partitions = kept
	}
	r := len(partitions)
	samples := mat.NewDense(n, r*opts.SamplesPerCluster)
	dims := make([]int, r)
	for t, idx := range partitions {
		sub := x.SelectCols(idx)
		basis, dt := clusterBasis(sub, opts)
		dims[t] = dt
		for s := 0; s < opts.SamplesPerCluster; s++ {
			theta := sampleFromBasis(basis, rng)
			samples.SetCol(t*opts.SamplesPerCluster+s, theta)
		}
	}
	return LocalResult{
		Partitions: partitions,
		Samples:    samples,
		Dims:       dims,
		Elapsed:    time.Since(start),
	}
}

// clusterBasis recovers one cluster's orthonormal subspace basis and its
// dimension. With a TargetDim override the dimension is known up front and
// only a truncated factorization runs (the randomized range-finder path
// for large clusters). Otherwise the dimension is read off one
// values-only factorization — whose spectrum both drives the gap estimate
// and replaces the separate rank factorization the flat-spectrum fallback
// used to pay for — before the truncated solve recovers the basis.
func clusterBasis(sub *mat.Dense, opts LocalOptions) (*mat.Dense, int) {
	n, cols := sub.Dims()
	maxDim := n
	if cols < maxDim {
		maxDim = cols
	}
	d := opts.TargetDim
	if d > 0 {
		if d > maxDim {
			d = maxDim
		}
	} else {
		d = dimFromSpectrum(mat.SingularValues(sub), maxDim, opts)
	}
	basis, _ := mat.TruncatedSVD(sub, d)
	return basis, d
}

// dimFromSpectrum picks the subspace dimension d_t from a cluster's
// singular-value spectrum (sorted descending). It detects the numerical
// rank by the largest multiplicative gap — robust to the noise floor real
// data puts under the true subspace spectrum (a fixed tolerance would
// read the noise as extra dimensions). RankTol only marks where the
// spectrum has decayed to negligible.
func dimFromSpectrum(s []float64, maxDim int, opts LocalOptions) int {
	if len(s) == 0 || s[0] <= 0 {
		return 1
	}
	best, bestRatio := 1, 0.0
	for i := 0; i < len(s)-1 && i < maxDim; i++ {
		if s[i] <= opts.RankTol*s[0] {
			break
		}
		next := s[i+1]
		if next <= opts.RankTol*s[0] {
			// Spectrum ends here: exact rank i+1.
			return i + 1
		}
		if ratio := s[i] / next; ratio > bestRatio {
			best, bestRatio = i+1, ratio
		}
	}
	if bestRatio >= 2 {
		return best
	}
	// A gap below 2x is no gap at all (flat spectrum): treat the cluster
	// as full-dimensional up to where the spectrum stays above the
	// negligible-energy floor.
	d := 0
	for i := 0; i < len(s) && i < maxDim; i++ {
		if s[i] > 1e-9*s[0] {
			d++
		}
	}
	if d < 1 {
		d = 1
	}
	return d
}

// sampleFromBasis draws θ = Uα/‖Uα‖₂ with α ~ N(0, I) (Eq. 5): a point
// uniformly distributed on the unit sphere of the estimated subspace.
func sampleFromBasis(basis *mat.Dense, rng *rand.Rand) []float64 {
	n, d := basis.Dims()
	for {
		alpha := make([]float64, d)
		for i := range alpha {
			alpha[i] = rng.NormFloat64()
		}
		theta := make([]float64, n)
		for i := 0; i < n; i++ {
			row := basis.Row(i)
			s := 0.0
			for j, a := range alpha {
				s += row[j] * a
			}
			theta[i] = s
		}
		if mat.Normalize(theta) > 0 {
			return theta
		}
	}
}

// sscDropTol mirrors the default used inside package subspace so the
// locally built affinity matches what SSC itself would produce.
func sscDropTol(o subspace.SSCOptions) float64 {
	if o.DropTol > 0 {
		return o.DropTol
	}
	return 1e-8
}
