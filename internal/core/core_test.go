package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"fedsc/internal/mat"
	"fedsc/internal/metrics"
	"fedsc/internal/synth"
	"fedsc/internal/theory"
)

// fedData builds the paper's synthetic federated setting: L subspaces of
// dimension d in R^n, perCluster points per subspace per holding device,
// Non-IID partition with L' clusters per device.
func fedData(n, d, l, z, lPrime, perDevCluster int, seed int64) ([]*mat.Dense, [][]int, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	s := synth.RandomSubspaces(n, d, l, rng)
	devices := make([]*mat.Dense, z)
	truth := make([][]int, z)
	for dev := 0; dev < z; dev++ {
		clusters := rng.Perm(l)[:lPrime]
		counts := make([]int, l)
		for _, c := range clusters {
			counts[c] = perDevCluster
		}
		ds := s.SampleCounts(counts, rng)
		devices[dev] = ds.X
		truth[dev] = ds.Labels
	}
	return devices, truth, rng
}

func TestLocalClusterAndSampleBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	s := synth.RandomSubspaces(20, 3, 2, rng)
	ds := s.Sample(15, rng) // 2 clusters, 15 points each
	lr := LocalClusterAndSample(ds.X, LocalOptions{UseEigengap: true}, rng)
	if lr.R() != 2 {
		t.Fatalf("r = %d want 2 (eigengap)", lr.R())
	}
	if lr.Samples.Cols() != 2 {
		t.Fatalf("samples = %d want 2", lr.Samples.Cols())
	}
	// Partitions cover all points exactly once.
	seen := make([]bool, ds.N())
	for _, p := range lr.Partitions {
		for _, i := range p {
			if seen[i] {
				t.Fatal("point in two partitions")
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("point %d missing from partitions", i)
		}
	}
	// Each partition is pure (one true subspace) on clean data.
	for _, p := range lr.Partitions {
		lab := ds.Labels[p[0]]
		for _, i := range p {
			if ds.Labels[i] != lab {
				t.Fatal("mixed partition on clean well-separated data")
			}
		}
	}
	// Estimated dimensions match the generator.
	for t2, d := range lr.Dims {
		if d != 3 {
			t.Fatalf("cluster %d estimated dim %d want 3", t2, d)
		}
	}
}

func TestLocalSamplesLieOnClusterSubspace(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	s := synth.RandomSubspaces(15, 2, 2, rng)
	ds := s.Sample(12, rng)
	lr := LocalClusterAndSample(ds.X, LocalOptions{UseEigengap: true}, rng)
	col := make([]float64, 15)
	for t2 := 0; t2 < lr.R(); t2++ {
		lr.Samples.Col(t2, col)
		if math.Abs(mat.Norm2(col)-1) > 1e-9 {
			t.Fatalf("sample %d not unit norm", t2)
		}
		// The sample must lie in the true subspace of its partition.
		trueL := ds.Labels[lr.Partitions[t2][0]]
		b := s.Bases[trueL]
		proj := mat.MulVec(b, mat.MulTVec(b, col))
		for i := range col {
			if math.Abs(proj[i]-col[i]) > 1e-6 {
				t.Fatalf("sample %d leaves its subspace", t2)
			}
		}
	}
}

func TestLocalFixedRAndTargetDim(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	s := synth.RandomSubspaces(20, 3, 3, rng)
	ds := s.Sample(10, rng)
	lr := LocalClusterAndSample(ds.X, LocalOptions{RMax: 3, UseEigengap: false, TargetDim: 1}, rng)
	if lr.R() != 3 {
		t.Fatalf("fixed r = %d want 3", lr.R())
	}
	for _, d := range lr.Dims {
		if d != 1 {
			t.Fatalf("target dim not honored: %d", d)
		}
	}
}

func TestLocalEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	empty := LocalClusterAndSample(mat.NewDense(5, 0), LocalOptions{UseEigengap: true}, rng)
	if empty.R() != 0 || empty.Samples.Cols() != 0 {
		t.Fatal("empty device should produce no partitions or samples")
	}
	one := mat.RandomGaussian(5, 1, rng)
	mat.NormalizeColumns(one)
	single := LocalClusterAndSample(one, LocalOptions{UseEigengap: true}, rng)
	if single.R() != 1 || single.Samples.Cols() != 1 {
		t.Fatalf("single point: r=%d samples=%d", single.R(), single.Samples.Cols())
	}
	// With d_t = 1 the sample from a single point is ± the point itself.
	col := single.Samples.Col(0, nil)
	dot := math.Abs(mat.Dot(col, one.Col(0, nil)))
	if math.Abs(dot-1) > 1e-9 {
		t.Fatalf("single-point sample should be ± the point, |dot|=%v", dot)
	}
}

func TestRunRecoversFederatedSubspaces(t *testing.T) {
	// Z_ℓ = Z·L′/L = 10 samples per subspace at the server, comfortably
	// above the d+1 = 4 the central SSC needs.
	devices, truth, rng := fedData(20, 3, 6, 30, 2, 8, 144)
	res := Run(devices, 6, Options{Local: LocalOptions{UseEigengap: true}}, rng)
	acc := metrics.Accuracy(FlattenLabels(truth), FlattenLabels(res.Labels))
	if acc < 95 {
		t.Fatalf("Fed-SC (SSC) accuracy %.1f%% < 95%%", acc)
	}
}

func TestRunTSCCentral(t *testing.T) {
	// TSC at the server needs enough samples per subspace: many devices.
	devices, truth, rng := fedData(20, 3, 4, 24, 2, 8, 145)
	res := Run(devices, 4, Options{
		Local:   LocalOptions{UseEigengap: true},
		Central: CentralOptions{Method: CentralTSC},
	}, rng)
	acc := metrics.Accuracy(FlattenLabels(truth), FlattenLabels(res.Labels))
	if acc < 90 {
		t.Fatalf("Fed-SC (TSC) accuracy %.1f%% < 90%%", acc)
	}
}

func TestRunCommunicationAccounting(t *testing.T) {
	devices, _, rng := fedData(20, 3, 4, 6, 2, 8, 146)
	res := Run(devices, 4, Options{Local: LocalOptions{UseEigengap: true}}, rng)
	sumR := 0
	for _, r := range res.RPerDevice {
		sumR += r
	}
	wantUp := int64(20) * 32 * int64(sumR)
	if res.UplinkBits != wantUp {
		t.Fatalf("UplinkBits = %d want %d", res.UplinkBits, wantUp)
	}
	wantDown := int64(sumR) * 2 // ceil(log2 4) = 2
	if res.DownlinkBits != wantDown {
		t.Fatalf("DownlinkBits = %d want %d", res.DownlinkBits, wantDown)
	}
	if res.SequentialTime < res.ParallelTime {
		t.Fatal("sequential time cannot beat parallel time")
	}
}

func TestRunWithChannelNoiseStillClusters(t *testing.T) {
	devices, truth, rng := fedData(20, 3, 4, 20, 2, 8, 147)
	res := Run(devices, 4, Options{
		Local:      LocalOptions{UseEigengap: true},
		NoiseDelta: 0.01,
	}, rng)
	acc := metrics.Accuracy(FlattenLabels(truth), FlattenLabels(res.Labels))
	if acc < 85 {
		t.Fatalf("Fed-SC under light channel noise: accuracy %.1f%%", acc)
	}
}

func TestRunMultipleSamplesPerCluster(t *testing.T) {
	devices, truth, rng := fedData(20, 3, 4, 10, 2, 8, 148)
	res := Run(devices, 4, Options{
		Local: LocalOptions{UseEigengap: true, SamplesPerCluster: 3},
	}, rng)
	acc := metrics.Accuracy(FlattenLabels(truth), FlattenLabels(res.Labels))
	if acc < 95 {
		t.Fatalf("redundant sampling accuracy %.1f%%", acc)
	}
	sumR := 0
	for _, r := range res.RPerDevice {
		sumR += r
	}
	if res.UplinkBits != int64(20)*32*int64(sumR*3) {
		t.Fatal("uplink accounting must include sample redundancy")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	devices, _, _ := fedData(20, 3, 4, 8, 2, 8, 149)
	r1 := Run(devices, 4, Options{Local: LocalOptions{UseEigengap: true}}, rand.New(rand.NewSource(5)))
	r2 := Run(devices, 4, Options{Local: LocalOptions{UseEigengap: true}}, rand.New(rand.NewSource(5)))
	a, b := FlattenLabels(r1.Labels), FlattenLabels(r2.Labels)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical results")
		}
	}
}

func TestGlobalLabels(t *testing.T) {
	labels := [][]int{{1, 2}, {3}}
	points := [][]int{{2, 0}, {1}}
	got := GlobalLabels(labels, points, 3)
	want := []int{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GlobalLabels = %v want %v", got, want)
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 100: 7}
	for l, want := range cases {
		if got := bitsFor(l); got != want {
			t.Fatalf("bitsFor(%d) = %d want %d", l, got, want)
		}
	}
}

func TestAggregatePanicsOnUnknownCentral(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rng := rand.New(rand.NewSource(150))
	devices := []*mat.Dense{mat.RandomGaussian(4, 3, rng)}
	locals := []LocalResult{LocalClusterAndSample(devices[0], LocalOptions{UseEigengap: true}, rng)}
	Aggregate(devices, locals, 2, Options{Central: CentralOptions{Method: "bogus"}}, rng)
}

func TestFlattenLabelsEdgeCases(t *testing.T) {
	// Zero devices.
	if got := FlattenLabels(nil); len(got) != 0 {
		t.Fatalf("FlattenLabels(nil) = %v", got)
	}
	if got := FlattenLabels([][]int{}); len(got) != 0 {
		t.Fatalf("FlattenLabels(empty) = %v", got)
	}
	// A device with zero points contributes nothing but must not shift
	// its neighbors.
	got := FlattenLabels([][]int{{1, 2}, {}, {3}})
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("FlattenLabels = %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FlattenLabels = %v want %v", got, want)
		}
	}
}

func TestGlobalLabelsEdgeCases(t *testing.T) {
	// Zero devices: every point keeps the zero label.
	got := GlobalLabels(nil, nil, 3)
	if len(got) != 3 {
		t.Fatalf("GlobalLabels(nil) has %d entries, want 3", len(got))
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("GlobalLabels(nil)[%d] = %d", i, v)
		}
	}
	// A device with zero points, plus ragged per-device sizes.
	labels := [][]int{{7, 8}, {}, {9, 4, 5}}
	points := [][]int{{4, 0}, {}, {1, 3, 2}}
	got = GlobalLabels(labels, points, 5)
	want := []int{8, 9, 5, 4, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GlobalLabels = %v want %v", got, want)
		}
	}
	// n = 0 with no devices.
	if got := GlobalLabels([][]int{}, [][]int{}, 0); len(got) != 0 {
		t.Fatalf("GlobalLabels(0 points) = %v", got)
	}
}

// TestRunDistributedBasesRefinement pins the dsvd-refined export path:
// with Options.DistributedBases each global cluster's basis must match
// the truncated SVD of the cluster's pooled raw columns — the matrix
// the distributed solve never materializes in one place — to
// principal-angle cosine >= 0.999, stay orthonormal, and replay
// bit-identically for a fixed seed.
func TestRunDistributedBasesRefinement(t *testing.T) {
	const l = 4
	run := func() Result {
		devices, _, _ := fedData(20, 3, l, 12, 2, 8, 150)
		return Run(devices, l, Options{Local: LocalOptions{UseEigengap: true}, DistributedBases: true},
			rand.New(rand.NewSource(6)))
	}
	devices, _, _ := fedData(20, 3, l, 12, 2, 8, 150)
	res := run()
	refined := 0
	for g := 0; g < l; g++ {
		basis := res.GlobalBases[g]
		k := basis.Cols()
		if k == 0 {
			continue
		}
		refined++
		gram := mat.MulTA(basis, basis)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(gram.At(i, j)-want) > 1e-9 {
					t.Fatalf("cluster %d basis not orthonormal at %d,%d: %g", g, i, j, gram.At(i, j))
				}
			}
		}
		var parts []*mat.Dense
		for dev := range devices {
			var idx []int
			for i, lab := range res.Labels[dev] {
				if lab == g {
					idx = append(idx, i)
				}
			}
			if len(idx) > 0 {
				parts = append(parts, devices[dev].SelectCols(idx))
			}
		}
		central, _ := mat.TruncatedSVD(mat.HStack(parts...), k)
		for _, c := range theory.PrincipalAngles(basis, central) {
			if c < 0.999 {
				t.Fatalf("cluster %d refined basis drifts from centralized SVD: cosines %v",
					g, theory.PrincipalAngles(basis, central))
			}
		}
	}
	if refined == 0 {
		t.Fatal("no cluster produced a refinable basis")
	}
	replay := run()
	for g := 0; g < l; g++ {
		if !reflect.DeepEqual(res.GlobalBases[g].Data(), replay.GlobalBases[g].Data()) {
			t.Fatalf("cluster %d refined basis not bit-identical across seeded replays", g)
		}
	}
}
