package core

import (
	"math/rand"
	"sort"
	"strconv"
	"time"

	"fedsc/internal/mat"
	"fedsc/internal/metrics"
	"fedsc/internal/obs"
	"fedsc/internal/sparse"
	"fedsc/internal/subspace"
)

// Sharded, optionally sketched Phase 2. The exact central pass runs one
// SSC/TSC over all Z pooled samples, whose spectral segmentation alone
// is O(Z³) — the bottleneck that caps how many devices one round can
// absorb. This file breaks it in two independent, composable ways:
//
//   - Sketch: compress the ambient dimension n of the pooled matrix to
//     SketchSize rows with a JL projection (mat.Sketch) before any
//     solver runs. Column inner products — all SSC/TSC consume — are
//     preserved, so labels are unchanged up to JL distortion.
//   - Shards: deal the pooled columns into Shards disjoint
//     sub-problems, solve each into l clusters concurrently (per-shard
//     rngs derived from the caller's rng before any goroutine starts,
//     so the result is deterministic under any scheduling), then stitch
//     the shard clusterings together by subspace affinity: each shard
//     cluster's estimated basis is matched against the reference
//     shard's bases via principal angles, one-to-one per shard
//     (Hungarian assignment on mean squared canonical cosines).
//
// The deal is a seeded random permutation, not a contiguous split and
// not a fixed stride. Pooled columns arrive with structure — grouped by
// device, and within a device grouped by local cluster — so a
// contiguous split can hand a shard only a few global clusters, and any
// deterministic stride can alias with a periodic upload pattern and do
// the same (a stride equal to the device count hands shard k only
// device k's clusters). A permutation drawn from the caller's rng keeps
// every shard an unbiased sample of the whole pool regardless of how
// the uploads were ordered, while staying a pure function of the seed.

// effectiveShards clamps the configured shard count so every shard
// keeps at least l columns (a shard with fewer columns than target
// clusters degenerates to singleton labels and merges as noise).
func effectiveShards(shards, cols, l int) int {
	if shards <= 1 {
		return 1
	}
	if l < 1 {
		l = 1
	}
	if maxByCols := cols / l; shards > maxByCols {
		shards = maxByCols
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// centralSolve runs one exact SSC/TSC pass — the original unsharded
// Phase 2 body. q-rule state (z devices) is threaded unchanged so a
// sharded solve applies the same federated neighbor count as the exact
// path would.
func centralSolve(theta *mat.Dense, z, l int, opts CentralOptions, rng *rand.Rand) subspace.Result {
	switch opts.Method {
	case CentralSSC:
		return subspace.SSC(theta, l, rng, opts.SSC)
	case CentralTSC:
		q := opts.TSCQ
		if q <= 0 {
			q = (z + l - 1) / l // ⌈Z/L⌉
			if q < 3 {
				q = 3
			}
		}
		return subspace.TSC(theta, l, rng, subspace.TSCOptions{Q: q})
	default:
		panic("core: unknown central method " + string(opts.Method))
	}
}

// centralCluster is Phase 2 under an (optional) parent span and metrics
// registry; opts.Method must be resolved. It dispatches between the
// exact single-pass solve and the sharded/sketched pipeline.
func centralCluster(parent *obs.Span, reg *obs.Registry, theta *mat.Dense, z, l int, opts CentralOptions, rng *rand.Rand) subspace.Result {
	shards := effectiveShards(opts.Shards, theta.Cols(), l)
	sketch := opts.SketchSize > 0 && opts.SketchSize < theta.Rows()
	if shards <= 1 && !sketch {
		// Exact today-path: same calls, same rng consumption,
		// bit-identical labels.
		return centralSolve(theta, z, l, opts, rng)
	}
	work := theta
	if sketch {
		sp := parent.Start("phase2.sketch",
			obs.Int("rows", theta.Rows()), obs.Int("sketch", opts.SketchSize))
		work = mat.Sketch(theta, opts.SketchSize, opts.SketchKind, rng)
		sp.End()
	}
	if shards <= 1 {
		res := centralSolve(work, z, l, opts, rng)
		return res
	}
	return shardedCluster(parent, reg, work, z, l, shards, opts, rng)
}

// shardedCluster deals the columns of work into shards sub-problems,
// solves them concurrently and merges the shard labelings.
func shardedCluster(parent *obs.Span, reg *obs.Registry, work *mat.Dense, z, l, shards int, opts CentralOptions, rng *rand.Rand) subspace.Result {
	total := work.Cols()
	// Seeded random deal (see the package comment above): a permutation
	// of the columns, cut round-robin so shard sizes differ by at most
	// one. Each shard's own list is sorted back to ascending column
	// order so the sub-problem a shard sees is independent of how the
	// permutation happened to be drawn.
	perm := rng.Perm(total)
	cols := make([][]int, shards)
	for j, p := range perm {
		k := j % shards
		cols[k] = append(cols[k], p)
	}
	for k := range cols {
		sort.Ints(cols[k])
	}
	// Derive every shard's seed before any goroutine starts so the
	// result never depends on scheduling.
	seeds := make([]int64, shards)
	for k := range seeds {
		seeds[k] = rng.Int63()
	}
	results := make([]subspace.Result, shards)
	elapsed := make([]time.Duration, shards)
	span := parent.Start("phase2.shards", obs.Int("shards", shards))
	mat.Parallel(shards, 1<<30, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			ss := span.Start("phase2.shard", obs.Int("shard", k), obs.Int("samples", len(cols[k])))
			start := time.Now()
			sub := work.SelectCols(cols[k])
			results[k] = centralSolve(sub, z, l, opts, rand.New(rand.NewSource(seeds[k])))
			elapsed[k] = time.Since(start)
			ss.SetAttr("ms", strconv.FormatInt(elapsed[k].Milliseconds(), 10))
			ss.End()
		}
	})
	span.End()
	// Histograms are observed after the join, in shard order, so the
	// registry's float accumulators see a schedule-independent sequence.
	shardSeconds := reg.Histogram("fedsc_core_central_shard_seconds",
		"Per-shard Phase 2 solve wall time.", []float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60})
	shardSamples := reg.Histogram("fedsc_core_central_shard_samples",
		"Pooled samples per Phase 2 shard.", []float64{1, 4, 16, 64, 256, 1024, 4096})
	for k := 0; k < shards; k++ {
		shardSeconds.Observe(elapsed[k].Seconds())
		shardSamples.Observe(float64(len(cols[k])))
	}
	merge := parent.Start("phase2.merge")
	labels := mergeShardLabels(work, cols, results, l, opts)
	merge.End()
	return subspace.Result{Labels: labels, Affinity: stitchAffinity(total, cols, results)}
}

// mergeShardLabels aligns every shard's clustering with shard 0's and
// scatters the aligned labels back to global column order. Alignment is
// by subspace affinity: each shard cluster's orthonormal basis
// (estimated exactly like a device's local cluster basis) is compared
// against every reference cluster's basis through its principal angles,
// and the Hungarian assignment on mean squared canonical cosines picks
// the one-to-one matching of maximum total affinity.
func mergeShardLabels(work *mat.Dense, cols [][]int, results []subspace.Result, l int, opts CentralOptions) []int {
	total := work.Cols()
	out := make([]int, total)
	bases := make([][]*mat.Dense, len(results))
	for k := range results {
		bases[k] = shardBases(work, cols[k], results[k].Labels, l)
	}
	for k, res := range results {
		match := identityMatch(l)
		if k > 0 {
			match = matchClusters(bases[k], bases[0], l)
		}
		for i, lab := range res.Labels {
			out[cols[k][i]] = match[lab]
		}
	}
	return out
}

// shardBases estimates an orthonormal basis for each of a shard's l
// clusters from the (possibly sketched) pooled columns it labeled.
// Clusters that received no columns get a 0-column basis, which has
// zero affinity to everything.
func shardBases(work *mat.Dense, cols []int, labels []int, l int) []*mat.Dense {
	members := make([][]int, l)
	for i, lab := range labels {
		if lab >= 0 && lab < l {
			members[lab] = append(members[lab], cols[i])
		}
	}
	out := make([]*mat.Dense, l)
	for c := 0; c < l; c++ {
		if len(members[c]) == 0 {
			out[c] = mat.NewDense(work.Rows(), 0)
			continue
		}
		sub := work.SelectCols(members[c])
		basis, _ := clusterBasis(sub, LocalOptions{}.withDefaults())
		out[c] = basis
	}
	return out
}

// basisAffinity scores two orthonormal bases by the mean squared cosine
// of their principal angles: 1 for identical subspaces, ~d/n for two
// random d-dim subspaces of Rⁿ, 0 when either basis is empty. The
// cosines are the singular values of UᵀV.
func basisAffinity(u, v *mat.Dense) float64 {
	du, dv := u.Cols(), v.Cols()
	if du == 0 || dv == 0 {
		return 0
	}
	s := mat.SingularValues(mat.MulTA(u, v))
	sum := 0.0
	for _, c := range s {
		if c > 1 {
			c = 1 // rounding can push a cosine past 1
		}
		sum += c * c
	}
	d := du
	if dv < d {
		d = dv
	}
	return sum / float64(d)
}

// matchClusters returns, for every cluster of the from shard, the
// reference cluster it is identified with: the Hungarian assignment
// minimizing total (1 − affinity), i.e. maximizing total subspace
// affinity. Both sides always carry exactly l slots (empty clusters
// have 0-column bases), so the matching is a bijection on [0, l).
func matchClusters(from, ref []*mat.Dense, l int) []int {
	cost := make([][]float64, l)
	for c := 0; c < l; c++ {
		cost[c] = make([]float64, l)
		for g := 0; g < l; g++ {
			cost[c][g] = 1 - basisAffinity(from[c], ref[g])
		}
	}
	return metrics.Hungarian(cost)
}

func identityMatch(l int) []int {
	m := make([]int, l)
	for i := range m {
		m[i] = i
	}
	return m
}

// stitchAffinity reassembles the per-shard affinity graphs into one
// global graph over all pooled columns. Cross-shard edges do not exist
// (shards never compared their columns), so the result is a
// permutation-block-diagonal matrix — still useful for the CONN
// diagnostics, which only consume within-cluster connectivity.
func stitchAffinity(total int, cols [][]int, results []subspace.Result) *sparse.CSR {
	var entries []sparse.Coord
	for k, res := range results {
		if res.Affinity == nil {
			continue
		}
		n, _ := res.Affinity.Dims()
		for i := 0; i < n; i++ {
			gi := cols[k][i]
			res.Affinity.Row(i, func(j int, v float64) {
				entries = append(entries, sparse.Coord{Row: gi, Col: cols[k][j], Val: v})
			})
		}
	}
	return sparse.NewCSR(total, total, entries)
}
