// Package core implements Fed-SC, the one-shot federated subspace
// clustering scheme of the paper (Algorithms 1 and 2).
//
// The scheme has three phases. In Phase 1 every client device clusters
// its local data with SSC, estimates the number of local clusters r⁽ᶻ⁾
// by the eigengap heuristic (or a configured upper bound), recovers an
// orthonormal basis of each local cluster's subspace by truncated SVD,
// and generates ONE random unit-norm sample per subspace (Eq. 5), which
// is all it uploads. In Phase 2 the central server clusters the pooled
// samples with SSC or TSC into L global clusters and returns each
// sample's assignment. In Phase 3 each device relabels its points by the
// global assignment of their local cluster.
//
// Only one communication round is used; the uplink carries
// n·q·Σr⁽ᶻ⁾ bits and the downlink Σr⁽ᶻ⁾·⌈log₂L⌉ bits (Section IV-E).
package core

import (
	"time"

	"fedsc/internal/mat"
	"fedsc/internal/obs"
	"fedsc/internal/privacy"
	"fedsc/internal/sparse"
	"fedsc/internal/subspace"
)

// CentralMethod selects the server-side clustering algorithm.
type CentralMethod string

// The two server algorithms of the paper: Fed-SC (SSC) and Fed-SC (TSC).
const (
	CentralSSC CentralMethod = "ssc"
	CentralTSC CentralMethod = "tsc"
)

// LocalOptions configures Phase 1 (Algorithm 2) on each device.
type LocalOptions struct {
	// SSC tunes the local sparse self-expression step.
	SSC subspace.SSCOptions
	// RMax caps the number of local clusters. With UseEigengap it bounds
	// the eigengap search; without it, r⁽ᶻ⁾ = min(RMax, N⁽ᶻ⁾) exactly —
	// the "general upper bound" the paper uses for real-world data
	// (Remark 1). Zero means no cap.
	RMax int
	// UseEigengap selects eigengap estimation of r⁽ᶻ⁾ (Eq. 3). When
	// false, RMax must be positive and is used directly.
	UseEigengap bool
	// TargetDim forces the per-cluster subspace dimension d_t (the paper
	// uses d_t = 1 for the real-world datasets). Zero estimates d_t from
	// the cluster's numerical rank.
	TargetDim int
	// RankTol is the relative singular-value cutoff for the rank
	// estimate (default 1e-6).
	RankTol float64
	// SamplesPerCluster is the number of random samples uploaded per
	// local cluster. The paper uploads exactly one (default); larger
	// values are the redundancy ablation.
	SamplesPerCluster int
}

func (o LocalOptions) withDefaults() LocalOptions {
	if o.RankTol <= 0 {
		o.RankTol = 1e-6
	}
	if o.SamplesPerCluster <= 0 {
		o.SamplesPerCluster = 1
	}
	if !o.UseEigengap && o.RMax <= 0 {
		// Without an explicit upper bound the eigengap heuristic is the
		// only sound way to pick r; fall back to it.
		o.UseEigengap = true
	}
	return o
}

// CentralOptions configures Phase 2 at the server.
type CentralOptions struct {
	// Method is CentralSSC (default) or CentralTSC.
	Method CentralMethod
	// SSC tunes the server-side SSC when Method is CentralSSC.
	SSC subspace.SSCOptions
	// TSCQ overrides the TSC neighbor count; zero applies the paper's
	// federated rule q = max(3, ⌈Z/L⌉).
	TSCQ int
	// Shards splits the pooled matrix into this many round-robin column
	// shards, solved concurrently and merged by subspace affinity
	// (see internal/core/shard.go). 0 or 1 runs the exact single-pass
	// solve, bit-identical to the pre-sharding behavior. The count is
	// clamped so every shard keeps at least L columns.
	Shards int
	// SketchSize, when positive and below the ambient dimension,
	// row-compresses the pooled matrix to this many rows (mat.Sketch)
	// before the solver runs. 0 disables sketching.
	SketchSize int
	// SketchKind selects the sketch operator; empty means the Gaussian
	// JL projection (mat.SketchGaussianKind).
	SketchKind mat.SketchKind
}

// Options configures a full Fed-SC run.
type Options struct {
	Local   LocalOptions
	Central CentralOptions
	// NoiseDelta simulates communication noise (Fig. 7): each uploaded
	// sample is perturbed with iid Gaussian noise of variance
	// δ/√r⁽ᶻ⁾. Zero disables the channel noise.
	NoiseDelta float64
	// QuantBits is the per-float quantization assumed by the
	// communication-cost accounting (default 32). When ApplyQuantizer is
	// set, the uploads are actually passed through a QuantBits-bit
	// uniform quantizer, so the accounting's lossy channel is real.
	QuantBits      int
	ApplyQuantizer bool
	// DP, when non-nil, releases each uploaded sample through the
	// (ε, δ)-DP Gaussian mechanism (Remark 2 / the conclusion's
	// privacy-utility direction). Composition across a device's r⁽ᶻ⁾
	// releases is the caller's accounting concern (privacy.Compose).
	DP *privacy.Params
	// DistributedBases refines each exported global-cluster basis with
	// a distributed dominant SVD (internal/dsvd) over the devices' own
	// columns assigned to that cluster: every round only the n×k
	// projected iterate leaves a device, never raw columns, yet the
	// refined basis sees all of the cluster's points instead of just
	// the uploaded Phase 1 samples. False keeps the sample-only
	// estimate.
	DistributedBases bool
	// Obs receives the round metrics (per-phase latencies, pooled
	// sample counts, uplink/downlink bits); nil publishes to the
	// process-wide obs.Default registry.
	Obs *obs.Registry
	// Trace, when non-nil, records the round's phase tree — per-device
	// local clustering/sampling, the upload release path, central
	// clustering, relabeling — as obs spans. Nil disables tracing at
	// the cost of one pointer check per phase.
	Trace *obs.Tracer
}

// reg resolves the metrics destination.
func (o Options) reg() *obs.Registry {
	if o.Obs != nil {
		return o.Obs
	}
	return obs.Default()
}

func (o Options) withDefaults() Options {
	o.Local = o.Local.withDefaults()
	if o.Central.Method == "" {
		o.Central.Method = CentralSSC
	}
	if o.QuantBits <= 0 {
		o.QuantBits = 32
	}
	return o
}

// LocalResult is the outcome of Algorithm 2 on one device.
type LocalResult struct {
	// Partitions[t] lists the local point indices of cluster t.
	Partitions [][]int
	// Samples is the n x (r·SamplesPerCluster) matrix of generated
	// samples, grouped by local cluster.
	Samples *mat.Dense
	// Dims[t] is the estimated dimension d_t of local cluster t.
	Dims []int
	// Elapsed is the wall time Phase 1 took on this device.
	Elapsed time.Duration
}

// R returns the number of local clusters r⁽ᶻ⁾.
func (lr LocalResult) R() int { return len(lr.Partitions) }

// Result is the outcome of a full Fed-SC run.
type Result struct {
	// Labels[z][i] is the global cluster in [0, L) of point i on device z.
	Labels [][]int
	// SampleLabels[z][t] is the server's assignment τ_t⁽ᶻ⁾ of local
	// cluster t on device z.
	SampleLabels [][]int
	// RPerDevice records r⁽ᶻ⁾ for every device.
	RPerDevice []int
	// UplinkBits and DownlinkBits follow the accounting of Section IV-E.
	UplinkBits, DownlinkBits int64
	// LocalTime[z] is the Phase 1 wall time on device z; CentralTime is
	// the Phase 2 (server) wall time. SequentialTime sums all of them;
	// ParallelTime assumes devices run concurrently.
	LocalTime      []time.Duration
	CentralTime    time.Duration
	SequentialTime time.Duration
	ParallelTime   time.Duration
	// CentralAffinity is the server-side affinity graph over the pooled
	// samples (useful for diagnostics and the connectivity ablation).
	CentralAffinity *sparse.CSR
	// Locals retains each device's Phase 1 output (partitions, samples,
	// dimensions); the experiment harness uses it to build the induced
	// global affinity graph for the CONN metric of Section VI.
	Locals []LocalResult
	// GlobalBases[g] is an orthonormal basis of global cluster g's
	// subspace, estimated by truncated SVD over the pooled samples the
	// server assigned to g; GlobalDims[g] is its dimension. These are
	// what the serving tier (internal/serve) scores new points against
	// by minimum projection residual.
	GlobalBases []*mat.Dense
	GlobalDims  []int
}
