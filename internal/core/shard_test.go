package core

import (
	"math/rand"
	"testing"

	"fedsc/internal/mat"
	"fedsc/internal/metrics"
	"fedsc/internal/synth"
)

// pooledSamples builds a Phase 2 input the way a round would: unit-norm
// samples drawn from l known subspaces, columns interleaved across the
// subspaces (like round-robin device uploads), with ground-truth labels.
func pooledSamples(t *testing.T, ambient, dim, l, perCluster int, seed int64) (*mat.Dense, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := synth.RandomSubspaces(ambient, dim, l, rng)
	cols := make([]*mat.Dense, 0, l*perCluster)
	var truth []int
	for i := 0; i < perCluster; i++ {
		for g := 0; g < l; g++ {
			theta := sampleFromBasis(s.Bases[g], rng)
			m := mat.NewDense(ambient, 1)
			m.SetCol(0, theta)
			cols = append(cols, m)
			truth = append(truth, g)
		}
	}
	return mat.HStack(cols...), truth
}

func sameLabels(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSingleShardBitIdentical: Shards 0 and 1 must take the exact path,
// consuming the rng identically and producing bit-identical labels.
func TestSingleShardBitIdentical(t *testing.T) {
	theta, _ := pooledSamples(t, 20, 3, 4, 8, 1)
	exact := CentralCluster(theta, 16, 4, CentralOptions{}, rand.New(rand.NewSource(7)))
	for _, shards := range []int{0, 1} {
		got := CentralCluster(theta, 16, 4, CentralOptions{Shards: shards}, rand.New(rand.NewSource(7)))
		if !sameLabels(exact.Labels, got.Labels) {
			t.Fatalf("Shards=%d labels differ from the unsharded path", shards)
		}
		if exact.Affinity.NNZ() != got.Affinity.NNZ() {
			t.Fatalf("Shards=%d affinity differs from the unsharded path", shards)
		}
	}
}

// TestShardedParity: the sharded path must recover the same clustering
// quality as the exact path on well-separated synthetic subspaces, and
// must be deterministic under a fixed seed.
func TestShardedParity(t *testing.T) {
	theta, truth := pooledSamples(t, 40, 3, 4, 24, 2) // 96 pooled samples
	exact := CentralCluster(theta, 96, 4, CentralOptions{}, rand.New(rand.NewSource(3)))
	accExact := metrics.Accuracy(truth, exact.Labels)
	sharded := CentralCluster(theta, 96, 4, CentralOptions{Shards: 4}, rand.New(rand.NewSource(3)))
	accSharded := metrics.Accuracy(truth, sharded.Labels)
	if accSharded < accExact-5 {
		t.Fatalf("sharded accuracy %.1f%% vs exact %.1f%%: beyond tolerance", accSharded, accExact)
	}
	if accSharded < 90 {
		t.Fatalf("sharded accuracy %.1f%% on well-separated subspaces", accSharded)
	}
	again := CentralCluster(theta, 96, 4, CentralOptions{Shards: 4}, rand.New(rand.NewSource(3)))
	if !sameLabels(sharded.Labels, again.Labels) {
		t.Fatalf("sharded labels not deterministic under a fixed seed")
	}
}

// TestSketchedParity: sketching the ambient dimension must preserve the
// clustering (JL preserves the column geometry the solvers consume),
// alone and combined with sharding, for both sketch kinds.
func TestSketchedParity(t *testing.T) {
	theta, truth := pooledSamples(t, 60, 3, 4, 20, 4) // 80 pooled samples, ambient 60
	exact := CentralCluster(theta, 80, 4, CentralOptions{}, rand.New(rand.NewSource(5)))
	accExact := metrics.Accuracy(truth, exact.Labels)
	for _, tc := range []struct {
		name string
		opts CentralOptions
	}{
		{"gaussian", CentralOptions{SketchSize: 24}},
		{"rows", CentralOptions{SketchSize: 30, SketchKind: mat.SketchRowsKind}},
		{"gaussian+shards", CentralOptions{SketchSize: 24, Shards: 4}},
	} {
		got := CentralCluster(theta, 80, 4, tc.opts, rand.New(rand.NewSource(5)))
		acc := metrics.Accuracy(truth, got.Labels)
		if acc < accExact-5 || acc < 90 {
			t.Fatalf("%s: sketched accuracy %.1f%% vs exact %.1f%%", tc.name, acc, accExact)
		}
	}
}

// TestCentralClusterFewerSamplesThanClusters: a round can pool fewer
// samples than there are global clusters (tiny z); the solve must not
// panic and must return one valid label per sample, on the exact and
// sharded configurations alike.
func TestCentralClusterFewerSamplesThanClusters(t *testing.T) {
	theta, _ := pooledSamples(t, 20, 2, 3, 1, 6) // 3 samples, l=5 below
	for _, opts := range []CentralOptions{{}, {Shards: 4}, {Method: CentralTSC, Shards: 4}} {
		res := CentralCluster(theta, 3, 5, opts, rand.New(rand.NewSource(8)))
		if len(res.Labels) != 3 {
			t.Fatalf("%+v: got %d labels for 3 samples", opts, len(res.Labels))
		}
		for i, lab := range res.Labels {
			if lab < 0 || lab >= 5 {
				t.Fatalf("%+v: sample %d labeled %d, outside [0,5)", opts, i, lab)
			}
		}
	}
}

// TestCentralClusterDuplicateSamples: identical pooled columns (as a
// dedup miss on replayed uploads would produce) must never break the
// solve. SSC is only held to structural guarantees here — exact
// duplicates are its known connectivity degeneracy (a point's
// self-expression collapses onto its twin, pairing off the affinity
// graph) — while TSC, whose q-neighbor graph survives duplicates, is
// additionally held to label quality and to cross-shard duplicate
// consistency after the affinity merge.
func TestCentralClusterDuplicateSamples(t *testing.T) {
	base, truth := pooledSamples(t, 30, 3, 3, 10, 9) // 30 distinct samples
	idx := make([]int, 0, 2*base.Cols())
	dupTruth := make([]int, 0, 2*base.Cols())
	for j := 0; j < base.Cols(); j++ {
		idx = append(idx, j, j)
		dupTruth = append(dupTruth, truth[j], truth[j])
	}
	theta := base.SelectCols(idx)
	for _, opts := range []CentralOptions{
		{}, {Shards: 2},
		{Method: CentralTSC}, {Method: CentralTSC, Shards: 2},
	} {
		res := CentralCluster(theta, 60, 3, opts, rand.New(rand.NewSource(10)))
		if len(res.Labels) != theta.Cols() {
			t.Fatalf("%+v: got %d labels for %d samples", opts, len(res.Labels), theta.Cols())
		}
		for i, lab := range res.Labels {
			if lab < 0 || lab >= 3 {
				t.Fatalf("%+v: sample %d labeled %d, outside [0,3)", opts, i, lab)
			}
		}
		if opts.Method != CentralTSC {
			continue
		}
		if acc := metrics.Accuracy(dupTruth, res.Labels); acc < 90 {
			t.Fatalf("%+v: accuracy %.1f%% with duplicated pooled samples", opts, acc)
		}
		disagree := 0
		for j := 0; j < base.Cols(); j++ {
			if res.Labels[2*j] != res.Labels[2*j+1] {
				disagree++
			}
		}
		if disagree > base.Cols()/10 {
			t.Fatalf("%+v: %d/%d duplicate pairs split across labels", opts, disagree, base.Cols())
		}
	}
}

// TestRunShardedEndToEnd: the full pipeline with sharding + sketching
// enabled stays within tolerance of the exact run, and the shard knobs
// survive the Options plumbing (Run → aggregate → centralCluster).
func TestRunShardedEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const l = 4
	s := synth.RandomSubspaces(40, 3, l, rng)
	devices := make([]*mat.Dense, 48)
	truth := make([][]int, len(devices))
	for dev := range devices {
		clusters := rng.Perm(l)[:2]
		counts := make([]int, l)
		for _, c := range clusters {
			counts[c] = 10
		}
		ds := s.SampleCounts(counts, rng)
		devices[dev] = ds.X
		truth[dev] = ds.Labels
	}
	flat := FlattenLabels(truth)
	exact := Run(devices, l, Options{Local: LocalOptions{UseEigengap: true}},
		rand.New(rand.NewSource(12)))
	sharded := Run(devices, l, Options{
		Local:   LocalOptions{UseEigengap: true},
		Central: CentralOptions{Shards: 3, SketchSize: 24},
	}, rand.New(rand.NewSource(12)))
	accExact := metrics.Accuracy(flat, FlattenLabels(exact.Labels))
	accSharded := metrics.Accuracy(flat, FlattenLabels(sharded.Labels))
	if accSharded < accExact-5 {
		t.Fatalf("sharded end-to-end accuracy %.1f%% vs exact %.1f%%", accSharded, accExact)
	}
}
