package core

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"time"

	"fedsc/internal/dsvd"
	"fedsc/internal/mat"
	"fedsc/internal/obs"
	"fedsc/internal/privacy"
	"fedsc/internal/subspace"
)

// Run executes the full Fed-SC scheme (Algorithm 1) over the devices'
// local data matrices (columns = points), clustering everything into l
// global clusters. Phase 1 runs concurrently across devices with
// per-device RNGs derived from rng, so results are deterministic for a
// given seed regardless of scheduling.
func Run(devices []*mat.Dense, l int, opts Options, rng *rand.Rand) Result {
	opts = opts.withDefaults()
	z := len(devices)
	root := opts.Trace.Start("fedsc.round", obs.Int("devices", z), obs.Int("L", l))
	defer root.End()
	// Phase 1: local clustering and sampling on every device.
	phase1 := root.Start("phase1.local")
	locals := make([]LocalResult, z)
	seeds := make([]int64, z)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	mat.Parallel(z, 1<<30, func(lo, hi int) {
		for dev := lo; dev < hi; dev++ {
			ds := phase1.Start("device.local", obs.Int("device", dev))
			locals[dev] = LocalClusterAndSample(devices[dev], opts.Local, rand.New(rand.NewSource(seeds[dev])))
			ds.SetAttr("r", strconv.Itoa(locals[dev].R()))
			ds.End()
		}
	})
	phase1.End()
	// Upload path: DP release, then quantization, then channel noise —
	// the order a real deployment would apply them in.
	release := root.Start("upload.release")
	if opts.DP != nil {
		for dev := range locals {
			if _, err := privacy.GaussianMechanism(locals[dev].Samples, *opts.DP, rng); err != nil {
				panic("core: " + err.Error())
			}
		}
	}
	if opts.ApplyQuantizer {
		q := privacy.Quantizer{Bits: opts.QuantBits}
		for dev := range locals {
			if _, err := q.Apply(locals[dev].Samples); err != nil {
				panic("core: " + err.Error())
			}
		}
	}
	if opts.NoiseDelta > 0 {
		for dev := range locals {
			addChannelNoise(locals[dev].Samples, locals[dev].R(), opts.NoiseDelta, rng)
		}
	}
	release.End()
	return aggregate(root, devices, locals, l, opts, rng)
}

// Aggregate performs Phases 2 and 3 given every device's Phase 1 output:
// the server clusters the pooled samples and each device relabels its
// points by its local clusters' global assignments. It is split out from
// Run so transports (package fednet) can ship LocalResults over a real
// network between the phases.
func Aggregate(devices []*mat.Dense, locals []LocalResult, l int, opts Options, rng *rand.Rand) Result {
	opts = opts.withDefaults()
	root := opts.Trace.Start("fedsc.aggregate", obs.Int("devices", len(devices)), obs.Int("L", l))
	defer root.End()
	return aggregate(root, devices, locals, l, opts, rng)
}

// aggregate is Phases 2 and 3 under an already-opened parent span;
// opts must have defaults applied.
func aggregate(parent *obs.Span, devices []*mat.Dense, locals []LocalResult, l int, opts Options, rng *rand.Rand) Result {
	z := len(devices)
	// The pooled clustering and the Section IV-E accounting both assume
	// one shared ambient space; a device that disagrees would silently
	// corrupt the uplink arithmetic below, so fail loudly instead.
	if z > 0 {
		n0 := devices[0].Rows()
		for dev := 1; dev < z; dev++ {
			if devices[dev].Rows() != n0 {
				panic(fmt.Sprintf("core: device %d has ambient dimension %d but device 0 has %d; all devices must share one ambient space",
					dev, devices[dev].Rows(), n0))
			}
		}
	}
	spc := opts.Local.SamplesPerCluster
	// Pool all samples, remembering per-device offsets.
	matrices := make([]*mat.Dense, z)
	offsets := make([]int, z)
	total := 0
	for dev, lr := range locals {
		matrices[dev] = lr.Samples
		offsets[dev] = total
		total += lr.Samples.Cols()
	}
	theta := mat.HStack(matrices...)
	// Phase 2: central clustering of the pooled samples (sharded and/or
	// sketched when opts.Central asks for it; exact otherwise).
	phase2 := parent.Start("phase2.central", obs.Int("samples", total))
	centralStart := time.Now()
	central := centralCluster(phase2, opts.reg(), theta, z, l, opts.Central, rng)
	centralTime := time.Since(centralStart)
	phase2.End()
	phase3 := parent.Start("phase3.relabel")
	// Phase 3: local update — every point inherits the global label of
	// its local cluster. With SamplesPerCluster > 1 the cluster label is
	// the majority vote over its samples.
	res := Result{
		Labels:       make([][]int, z),
		SampleLabels: make([][]int, z),
		RPerDevice:   make([]int, z),
		LocalTime:    make([]time.Duration, z),
		CentralTime:  centralTime,
	}
	sumR := 0
	for dev, lr := range locals {
		r := lr.R()
		res.RPerDevice[dev] = r
		res.LocalTime[dev] = lr.Elapsed
		sumR += r
		tau := make([]int, r)
		for t := 0; t < r; t++ {
			votes := make(map[int]int, spc)
			for s := 0; s < spc; s++ {
				votes[central.Labels[offsets[dev]+t*spc+s]]++
			}
			best, bestN := 0, -1
			for lab, n := range votes {
				// Lowest label wins ties so the majority vote never
				// depends on map iteration order.
				if n > bestN || (n == bestN && lab < best) {
					best, bestN = lab, n
				}
			}
			tau[t] = best
		}
		res.SampleLabels[dev] = tau
		labels := make([]int, devices[dev].Cols())
		for t, idx := range lr.Partitions {
			for _, i := range idx {
				labels[i] = tau[t]
			}
		}
		res.Labels[dev] = labels
	}
	phase3.End()
	// Communication accounting (Section IV-E). The shared ambient
	// dimension was validated on entry.
	n := 0
	if z > 0 {
		n = devices[0].Rows()
	}
	logL := bitsFor(l)
	res.UplinkBits = int64(n) * int64(opts.QuantBits) * int64(sumR*spc)
	res.DownlinkBits = int64(sumR*spc) * int64(logL)
	// Timing summary.
	var sum, maxLocal time.Duration
	for _, d := range res.LocalTime {
		sum += d
		if d > maxLocal {
			maxLocal = d
		}
	}
	res.SequentialTime = sum + centralTime
	res.ParallelTime = maxLocal + centralTime
	res.CentralAffinity = central.Affinity
	res.Locals = locals
	// Out-of-sample support: estimate each global cluster's subspace
	// basis from the pooled samples it received. The pooled matrix is
	// tiny (Σr⁽ᶻ⁾ columns), so this costs a vanishing fraction of
	// Phase 2 and makes every Result directly servable.
	export := parent.Start("export.bases")
	res.GlobalBases, res.GlobalDims = GlobalBases(theta, central.Labels, l, opts.Local.TargetDim)
	export.End()
	if opts.DistributedBases {
		refine := parent.Start("export.refine", obs.Int("clusters", l))
		refineBasesDistributed(devices, res.Labels, res.GlobalBases, res.GlobalDims, opts, rng)
		refine.End()
	}
	publishRound(opts.reg(), res, total)
	return res
}

// refineBasesDistributed re-estimates each global cluster's exported
// basis by a distributed dominant SVD over the devices' raw columns
// assigned to that cluster (Options.DistributedBases): per iteration a
// device contributes only its n×k projection of the shared iterate, so
// the refined basis is fit to every point of the cluster while no raw
// column ever leaves its device. Clusters that received no points, or
// whose estimated dimension is zero, keep the sample-based basis.
// Per-cluster seeds are drawn up front so the rng stream does not
// depend on which clusters are skipped.
func refineBasesDistributed(devices []*mat.Dense, labels [][]int, bases []*mat.Dense, dims []int, opts Options, rng *rand.Rand) {
	seeds := make([]int64, len(bases))
	for g := range seeds {
		seeds[g] = rng.Int63()
	}
	for g := range bases {
		blocks := make([]*mat.Dense, len(devices))
		total := 0
		for z, dev := range devices {
			var idx []int
			for i, lab := range labels[z] {
				if lab == g {
					idx = append(idx, i)
				}
			}
			blocks[z] = dev.SelectCols(idx)
			total += len(idx)
		}
		k := dims[g]
		if k > total {
			k = total
		}
		if k <= 0 {
			continue
		}
		refined, err := dsvd.Run(blocks, dsvd.Options{K: k, Seed: seeds[g], Obs: opts.Obs, Trace: opts.Trace})
		if err != nil {
			continue // no devices at all: keep the sample-based basis
		}
		bases[g] = refined.U
	}
}

// publishRound pushes one round's phase latencies and volumes into the
// metrics registry — the per-phase numbers that used to exist only as
// ad-hoc fields on Result.
func publishRound(reg *obs.Registry, res Result, pooled int) {
	phaseBounds := []float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60}
	reg.Counter("fedsc_core_rounds_total", "Fed-SC aggregation rounds completed.").Inc()
	local := reg.Histogram("fedsc_core_local_seconds", "Per-device Phase 1 (local cluster + sample) wall time.", phaseBounds)
	clusters := reg.Histogram("fedsc_core_local_clusters", "Local clusters r per device.",
		[]float64{1, 2, 4, 8, 16, 32, 64})
	for dev, d := range res.LocalTime {
		local.Observe(d.Seconds())
		clusters.Observe(float64(res.RPerDevice[dev]))
	}
	reg.Histogram("fedsc_core_central_seconds", "Phase 2 (central clustering) wall time.", phaseBounds).
		Observe(res.CentralTime.Seconds())
	reg.Histogram("fedsc_core_round_seconds", "Critical-path round wall time (slowest device + central).", phaseBounds).
		Observe(res.ParallelTime.Seconds())
	reg.Histogram("fedsc_core_pooled_samples", "Samples pooled at the server per round.",
		[]float64{1, 4, 16, 64, 256, 1024, 4096}).Observe(float64(pooled))
	reg.Counter("fedsc_core_uplink_bits_total", "Uplink volume per the Section IV-E accounting.").Add(res.UplinkBits)
	reg.Counter("fedsc_core_downlink_bits_total", "Downlink volume per the Section IV-E accounting.").Add(res.DownlinkBits)
}

// CentralCluster runs Phase 2 at the server: it clusters the pooled
// sample matrix theta (columns = samples from z devices) into l global
// clusters with the configured method. For TSC the paper's federated
// neighbor rule q = max(3, ⌈Z/L⌉) applies unless TSCQ overrides it.
// With opts.Shards > 1 and/or opts.SketchSize > 0 the sharded/sketched
// pipeline of shard.go runs instead of the exact single pass.
func CentralCluster(theta *mat.Dense, z, l int, opts CentralOptions, rng *rand.Rand) subspace.Result {
	if opts.Method == "" {
		opts.Method = CentralSSC
	}
	return centralCluster(nil, nil, theta, z, l, opts, rng)
}

// addChannelNoise perturbs every sample column with iid Gaussian noise
// whose total (per-vector) variance is δ/√r — the model of Fig. 7. The
// paper states "variance δ/√r⁽ᶻ⁾" without fixing whether it is per
// coordinate or per vector; per vector keeps the noise-to-signal ratio
// of the unit-norm samples independent of the ambient dimension, which
// is the only reading under which the robustness the figure reports is
// achievable at all, so that is what we implement (per-coordinate
// variance δ/(√r·n)).
func addChannelNoise(samples *mat.Dense, r int, delta float64, rng *rand.Rand) {
	n := samples.Rows()
	if r == 0 || n == 0 {
		return
	}
	std := math.Sqrt(delta / math.Sqrt(float64(r)) / float64(n))
	data := samples.Data()
	for i := range data {
		data[i] += std * rng.NormFloat64()
	}
}

// bitsFor returns ⌈log₂ l⌉, at least 1.
func bitsFor(l int) int {
	b := 1
	for 1<<b < l {
		b++
	}
	return b
}

// FlattenLabels concatenates per-device labels in device order; combined
// with a partition's Points lists this reconstructs global labels.
func FlattenLabels(labels [][]int) []int {
	var out []int
	for _, l := range labels {
		out = append(out, l...)
	}
	return out
}

// GlobalLabels scatters per-device labels back to global point order
// using pointsPerDevice, the per-device global point indices (e.g.
// synth.Partition.Points). n is the total number of points.
func GlobalLabels(labels [][]int, pointsPerDevice [][]int, n int) []int {
	out := make([]int, n)
	for dev, pts := range pointsPerDevice {
		for k, i := range pts {
			out[i] = labels[dev][k]
		}
	}
	return out
}
