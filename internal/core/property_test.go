package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedsc/internal/mat"
	"fedsc/internal/synth"
)

// TestRunInvariants property-checks the scheme's structural guarantees
// over random federations: every point gets a label in [0, L); partitions
// cover each device exactly; sample counts, uplink accounting and r⁽ᶻ⁾
// are mutually consistent.
func TestRunInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(230))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := 2 + r.Intn(4)
		z := 4 + r.Intn(8)
		lPrime := 1 + r.Intn(l)
		n := 10 + r.Intn(10)
		d := 2 + r.Intn(2)
		if d >= n {
			d = n - 1
		}
		s := synth.RandomSubspaces(n, d, l, r)
		devices := make([]*mat.Dense, z)
		for dev := 0; dev < z; dev++ {
			clusters := r.Perm(l)[:lPrime]
			counts := make([]int, l)
			per := d + 2 + r.Intn(6)
			for k := 0; k < per*lPrime; k++ {
				counts[clusters[k%lPrime]]++
			}
			devices[dev] = s.SampleCounts(counts, r).X
		}
		res := Run(devices, l, Options{Local: LocalOptions{UseEigengap: true, RMax: l + 2}}, r)
		// Labels in range and complete.
		for dev, labels := range res.Labels {
			if len(labels) != devices[dev].Cols() {
				return false
			}
			for _, lab := range labels {
				if lab < 0 || lab >= l {
					return false
				}
			}
		}
		// Partitions cover each device's points exactly once.
		sumR := 0
		for dev, lr := range res.Locals {
			seen := make([]bool, devices[dev].Cols())
			for _, p := range lr.Partitions {
				for _, i := range p {
					if seen[i] {
						return false
					}
					seen[i] = true
				}
			}
			for _, s := range seen {
				if !s {
					return false
				}
			}
			if lr.R() != res.RPerDevice[dev] {
				return false
			}
			sumR += lr.R()
			// Uploaded samples are unit-norm.
			col := make([]float64, devices[dev].Rows())
			for j := 0; j < lr.Samples.Cols(); j++ {
				lr.Samples.Col(j, col)
				if math.Abs(mat.Norm2(col)-1) > 1e-8 {
					return false
				}
			}
		}
		// Accounting consistency (QuantBits defaults to 32).
		if res.UplinkBits != int64(n)*32*int64(sumR) {
			return false
		}
		return res.SequentialTime >= res.ParallelTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestSampleLabelConsistency checks Phase 3's defining property: every
// point's final label equals its local cluster's server assignment.
func TestSampleLabelConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	s := synth.RandomSubspaces(15, 2, 4, rng)
	devices := make([]*mat.Dense, 10)
	for dev := range devices {
		clusters := rng.Perm(4)[:2]
		counts := make([]int, 4)
		for k := 0; k < 16; k++ {
			counts[clusters[k%2]]++
		}
		devices[dev] = s.SampleCounts(counts, rng).X
	}
	res := Run(devices, 4, Options{Local: LocalOptions{UseEigengap: true}}, rng)
	for dev, lr := range res.Locals {
		for t2, part := range lr.Partitions {
			want := res.SampleLabels[dev][t2]
			for _, i := range part {
				if res.Labels[dev][i] != want {
					t.Fatalf("device %d point %d: label %d but cluster %d assigned %d",
						dev, i, res.Labels[dev][i], t2, want)
				}
			}
		}
	}
}
