// Package fleet runs Fed-SC continuously: an initial one-shot round
// publishes its model through the content-addressed store under
// monotonically versioned tags, and late-joining (or churned) devices
// are then absorbed in incremental rounds without re-running the
// original Phase 2. Each late device runs Phase 1 locally; every local
// cluster is scored against the served bases (the serve min-residual
// engine plus the principal-angle similarity test of the subspace
// theory) and either absorbed into an existing global cluster or
// pooled into a delta Phase 2 sub-solve whose new clusters are spliced
// into the next model version. The store manifest makes any published
// version restorable: Rollback retags the fleet alias to the previous
// digest and reloads the exact prior artifact.
package fleet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"fedsc/internal/core"
	"fedsc/internal/dsvd"
	"fedsc/internal/mat"
	"fedsc/internal/obs"
	"fedsc/internal/serve"
	"fedsc/internal/store"
	"fedsc/internal/theory"
)

// Config parameterizes a fleet controller.
type Config struct {
	// L is the number of global clusters of the initial round.
	L int
	// Local configures Phase 1 on every device (initial and late).
	Local core.LocalOptions
	// Central configures Phase 2 — the initial solve and the delta
	// sub-solves alike.
	Central core.CentralOptions
	// Seed drives every controller decision (per-device Phase 1 seeds,
	// central clustering), so a fleet scenario replays deterministically.
	Seed int64
	// Store persists every published model version; required.
	Store *store.Store
	// Tag is the manifest alias that always points at the current
	// version; versioned tags are derived as "<Tag>@v<N>". Empty means
	// "fleet".
	Tag string
	// AbsorbResidual is the largest mean projection residual (samples
	// are unit-norm, so it lies in [0, 1]) a late local cluster may
	// have against its winning global basis and still be absorbed.
	// Zero means 0.35.
	AbsorbResidual float64
	// AbsorbCos is the smallest principal-angle cosine required
	// between the late cluster's basis and the winning global basis
	// for absorption — the Vahidian-style subspace similarity test
	// that keeps a residual fluke from merging distinct subspaces.
	// Zero means 0.8.
	AbsorbCos float64
	// MergeAffinity groups pooled (non-absorbed) late clusters into
	// delta components: two pooled bases with normalized affinity at
	// or above it are solved as one new global cluster. Zero means 0.8.
	MergeAffinity float64
	// DistributedBases refines exported cluster bases — the initial
	// round's and every spliced delta cluster's — with a distributed
	// dominant SVD over the owning devices' raw columns
	// (core.Options.DistributedBases / internal/dsvd): the basis the
	// serve engine scores against is then fit to all member points
	// while raw columns never leave their devices.
	DistributedBases bool
	// Obs receives the fleet metrics; nil publishes to obs.Default.
	Obs *obs.Registry
	// Trace, when non-nil, records each round's phase tree.
	Trace *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Tag == "" {
		c.Tag = "fleet"
	}
	if c.AbsorbResidual <= 0 {
		c.AbsorbResidual = 0.35
	}
	if c.AbsorbCos <= 0 {
		c.AbsorbCos = 0.8
	}
	if c.MergeAffinity <= 0 {
		c.MergeAffinity = 0.8
	}
	return c
}

func (c Config) reg() *obs.Registry {
	if c.Obs != nil {
		return c.Obs
	}
	return obs.Default()
}

// Version identifies one published model version.
type Version struct {
	// Version is the monotonic version number (1 for the initial
	// round). Rollback never reuses a number: the next splice after a
	// rollback publishes a fresh, higher version.
	Version int
	// Tag is the immutable versioned manifest tag "<alias>@v<N>".
	Tag string
	// Digest is the full hex content address of the artifact.
	Digest string
	// Clusters is the model's global cluster count at this version.
	Clusters int
}

// JoinResult summarizes one incremental round.
type JoinResult struct {
	// Labels[i] holds the global labels of late device i's points
	// under the (possibly new) current model.
	Labels [][]int
	// Absorbed counts late local clusters folded into existing global
	// clusters; Spliced counts new global clusters added by the delta
	// sub-solve.
	Absorbed, Spliced int
	// Changed reports whether a new model version was published.
	Changed bool
	// Version is the current version after the round.
	Version Version
}

// Controller owns the fleet lifecycle: initial round, incremental
// rounds, rollback. Methods are safe for concurrent use; rounds are
// serialized by the controller mutex.
type Controller struct {
	cfg Config

	mu      sync.Mutex
	model   *core.Model
	engine  *serve.Engine
	history []Version // every published version, in publish order
	cur     int       // index into history of the current version
	next    int       // next version number to publish (monotonic)
	rng     *rand.Rand

	rounds    *obs.CounterVec
	absorbed  *obs.Counter
	spliced   *obs.Counter
	versionG  *obs.Gauge
	clustersG *obs.Gauge
	roundSec  *obs.Histogram
}

// New builds a controller; the initial round has not run yet.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, fmt.Errorf("fleet: a store is required to version models")
	}
	if cfg.L <= 0 {
		return nil, fmt.Errorf("fleet: non-positive cluster count %d", cfg.L)
	}
	reg := cfg.reg()
	return &Controller{
		cfg:  cfg,
		next: 1,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		rounds: reg.CounterVec("fedsc_fleet_rounds_total",
			"Fleet rounds by kind (initial, incremental, rollback).", "kind"),
		absorbed: reg.Counter("fedsc_fleet_absorbed_clusters_total",
			"Late local clusters absorbed into existing global clusters."),
		spliced: reg.Counter("fedsc_fleet_spliced_clusters_total",
			"New global clusters spliced in by delta sub-solves."),
		versionG: reg.Gauge("fedsc_fleet_version",
			"Current published model version number."),
		clustersG: reg.Gauge("fedsc_fleet_clusters",
			"Global cluster count of the current model."),
		roundSec: reg.Histogram("fedsc_fleet_round_seconds",
			"Wall time of a fleet round (initial or incremental).",
			[]float64{0.001, 0.01, 0.1, 1, 10, 60}),
	}, nil
}

// Current returns the current version; the zero Version before the
// initial round.
func (c *Controller) Current() Version {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.history) == 0 {
		return Version{}
	}
	return c.history[c.cur]
}

// History returns every published version in publish order.
func (c *Controller) History() []Version {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Version(nil), c.history...)
}

// Model returns the current model artifact (nil before the initial
// round). The artifact is immutable; callers must not mutate it.
func (c *Controller) Model() *core.Model {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.model
}

// publishLocked stores m as the next version: the alias tag moves to
// it (first publish also makes the alias the manifest default) and an
// immutable versioned tag pins it forever.
func (c *Controller) publishLocked(m *core.Model) (Version, error) {
	digest, err := c.cfg.Store.PutTagged(c.cfg.Tag, m)
	if err != nil {
		return Version{}, fmt.Errorf("fleet: publish: %w", err)
	}
	v := Version{
		Version:  c.next,
		Tag:      fmt.Sprintf("%s@v%d", c.cfg.Tag, c.next),
		Digest:   digest,
		Clusters: m.L,
	}
	if err := c.cfg.Store.Tag(v.Tag, digest); err != nil {
		return Version{}, fmt.Errorf("fleet: publish: %w", err)
	}
	eng, err := serve.NewEngine(m)
	if err != nil {
		return Version{}, fmt.Errorf("fleet: publish: %w", err)
	}
	c.next++
	c.model, c.engine = m, eng
	c.history = append(c.history, v)
	c.cur = len(c.history) - 1
	c.versionG.Set(int64(v.Version))
	c.clustersG.Set(int64(v.Clusters))
	return v, nil
}

// Initial runs the one-shot Fed-SC round over the founding devices and
// publishes version 1.
func (c *Controller) Initial(devices []*mat.Dense) (core.Result, Version, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.history) != 0 {
		return core.Result{}, Version{}, fmt.Errorf("fleet: initial round already ran (at version %d)", c.history[c.cur].Version)
	}
	if len(devices) == 0 {
		return core.Result{}, Version{}, fmt.Errorf("fleet: no founding devices")
	}
	start := time.Now()
	span := c.cfg.Trace.Start("fleet.initial", obs.Int("devices", len(devices)), obs.Int("L", c.cfg.L))
	defer span.End()
	res := core.Run(devices, c.cfg.L, core.Options{
		Local:            c.cfg.Local,
		Central:          c.cfg.Central,
		DistributedBases: c.cfg.DistributedBases,
		Obs:              c.cfg.Obs,
		Trace:            c.cfg.Trace,
	}, c.rng)
	var m *core.Model
	var err error
	if c.cfg.DistributedBases {
		// The dsvd-refined bases live on the Result; rebuilding from the
		// pooled samples (ModelFromResult) would discard the refinement.
		spc := c.cfg.Local.SamplesPerCluster
		if spc <= 0 {
			spc = 1
		}
		counts := make([]int, c.cfg.L)
		for _, taus := range res.SampleLabels {
			for _, g := range taus {
				counts[g] += spc
			}
		}
		m, err = core.ModelFromBases(devices[0].Rows(), res.GlobalBases, counts, c.centralMethod())
	} else {
		m, err = core.ModelFromResult(res, c.cfg.L, c.cfg.Local.TargetDim, c.centralMethod())
	}
	if err != nil {
		return core.Result{}, Version{}, fmt.Errorf("fleet: initial round: %w", err)
	}
	v, err := c.publishLocked(m)
	if err != nil {
		return core.Result{}, Version{}, err
	}
	c.rounds.With("initial").Inc()
	c.roundSec.Observe(time.Since(start).Seconds())
	span.SetAttr("version", v.Tag)
	return res, v, nil
}

func (c *Controller) centralMethod() core.CentralMethod {
	if c.cfg.Central.Method == "" {
		return core.CentralSSC
	}
	return c.cfg.Central.Method
}

// lateCluster is one non-absorbed local cluster pooled for the delta
// sub-solve.
type lateCluster struct {
	dev, t  int
	basis   *mat.Dense
	samples []int // column indices into the pooled delta matrix
}

// Join runs one incremental round over late devices: Phase 1 locally,
// score-and-absorb against the served bases, and — when any cluster is
// left unexplained — a delta Phase 2 sub-solve whose clusters are
// spliced into a new published version. With every cluster absorbed,
// the model (and its digest) is untouched.
func (c *Controller) Join(devices []*mat.Dense) (JoinResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.history) == 0 {
		return JoinResult{}, fmt.Errorf("fleet: no initial round to join")
	}
	if len(devices) == 0 {
		return JoinResult{Version: c.history[c.cur]}, nil
	}
	start := time.Now()
	span := c.cfg.Trace.Start("fleet.join", obs.Int("devices", len(devices)))
	defer span.End()

	// Phase 1 on every late device, seeds pre-derived so the spawn
	// order (not the scheduler) fixes each device's stream.
	p1 := span.Start("phase1.local")
	seeds := make([]int64, len(devices))
	for i := range seeds {
		seeds[i] = c.rng.Int63()
	}
	locals := make([]core.LocalResult, len(devices))
	mat.Parallel(len(devices), 1<<30, func(lo, hi int) {
		for dev := lo; dev < hi; dev++ {
			locals[dev] = core.LocalClusterAndSample(devices[dev], c.cfg.Local, rand.New(rand.NewSource(seeds[dev])))
		}
	})
	p1.End()

	ambient := c.model.Ambient
	spc := c.cfg.Local.SamplesPerCluster
	if spc <= 0 {
		spc = 1
	}
	oldBases := c.model.Bases()

	// Score every late local cluster against the served bases: its
	// samples vote for a global cluster by minimum residual, and the
	// winner must also pass the principal-angle similarity test
	// between the late cluster's own basis and the winning global one.
	scoreSpan := span.Start("score.absorb")
	taus := make([][]int, len(devices)) // taus[dev][t] = global label, -1 = pooled
	var pool []lateCluster
	var poolCols []*mat.Dense
	poolTotal := 0
	absorbed := 0
	for dev, lr := range locals {
		if devices[dev].Rows() != ambient {
			scoreSpan.End()
			return JoinResult{}, fmt.Errorf("fleet: late device %d lives in %d dims, model expects %d",
				dev, devices[dev].Rows(), ambient)
		}
		taus[dev] = make([]int, lr.R())
		labels, residuals, err := c.engine.Assign(lr.Samples)
		if err != nil {
			scoreSpan.End()
			return JoinResult{}, fmt.Errorf("fleet: score late device %d: %w", dev, err)
		}
		for t := 0; t < lr.R(); t++ {
			// Majority vote over the cluster's samples (lowest label
			// wins ties, independent of map order) and mean residual.
			votes := map[int]int{}
			meanRes := 0.0
			for s := 0; s < spc; s++ {
				votes[labels[t*spc+s]]++
				meanRes += residuals[t*spc+s]
			}
			meanRes /= float64(spc)
			best, bestN := 0, -1
			for lab, n := range votes {
				if n > bestN || (n == bestN && lab < best) {
					best, bestN = lab, n
				}
			}
			// The late cluster's own subspace basis, recovered from its
			// member points like Phase 1 did.
			sub := devices[dev].SelectCols(lr.Partitions[t])
			basis, _ := mat.TruncatedSVD(sub, lr.Dims[t])
			minCos := 0.0
			if oldBases[best].Cols() > 0 {
				cos := theory.PrincipalAngles(basis, oldBases[best])
				if len(cos) > 0 {
					minCos = cos[len(cos)-1]
				}
			}
			if meanRes <= c.cfg.AbsorbResidual && minCos >= c.cfg.AbsorbCos {
				taus[dev][t] = best
				absorbed++
				continue
			}
			// Unexplained: pool the cluster's samples for the delta solve.
			cols := make([]int, spc)
			for s := 0; s < spc; s++ {
				cols[s] = poolTotal + s
			}
			pool = append(pool, lateCluster{dev: dev, t: t, basis: basis, samples: cols})
			poolCols = append(poolCols, lr.Samples.SelectCols(sampleIdx(t, spc)))
			poolTotal += spc
			taus[dev][t] = -1
		}
	}
	scoreSpan.End()
	c.absorbed.Add(int64(absorbed))

	out := JoinResult{Absorbed: absorbed}
	splicedCount := 0
	if len(pool) > 0 {
		deltaSpan := span.Start("delta.solve", obs.Int("pooled", len(pool)))
		// Estimate the number of new clusters by grouping pooled bases
		// whose subspaces agree (normalized affinity), then sub-solve
		// the pooled samples into that many clusters.
		lDelta := deltaComponents(pool, c.cfg.MergeAffinity)
		deltaTheta := mat.HStack(poolCols...)
		sub := core.CentralCluster(deltaTheta, len(pool), lDelta, c.cfg.Central, c.rng)
		// Majority vote per pooled cluster over its samples' delta labels.
		deltaOf := make([]int, len(pool))
		for i, lc := range pool {
			votes := map[int]int{}
			for _, j := range lc.samples {
				votes[sub.Labels[j]]++
			}
			best, bestN := 0, -1
			for lab, n := range votes {
				if n > bestN || (n == bestN && lab < best) {
					best, bestN = lab, n
				}
			}
			deltaOf[i] = best
		}
		// New bases from the pooled samples; delta clusters that won no
		// pooled cluster vote are dropped and the rest renumbered, so
		// the spliced model never carries an empty cluster.
		deltaLabels := make([]int, poolTotal)
		for i, lc := range pool {
			for _, j := range lc.samples {
				deltaLabels[j] = deltaOf[i]
			}
		}
		deltaBases, _ := core.GlobalBases(deltaTheta, deltaLabels, lDelta, c.cfg.Local.TargetDim)
		counts := make([]int, lDelta)
		for _, d := range deltaOf {
			counts[d] += spc
		}
		if c.cfg.DistributedBases {
			c.refineDeltaBases(deltaSpan, devices, locals, pool, deltaOf, deltaBases, counts)
		}
		remap := make([]int, lDelta)
		oldL := c.model.L
		allBases := oldBases
		allCounts := make([]int, oldL)
		for g, cl := range c.model.Clusters {
			allCounts[g] = cl.Samples
		}
		for d := 0; d < lDelta; d++ {
			if counts[d] == 0 {
				remap[d] = -1
				continue
			}
			remap[d] = oldL + splicedCount
			splicedCount++
			allBases = append(allBases, deltaBases[d])
			allCounts = append(allCounts, counts[d])
		}
		for dev := range taus {
			for t, tau := range taus[dev] {
				if tau >= 0 {
					continue
				}
				taus[dev][t] = remap[deltaOf[poolIndex(pool, dev, t)]]
			}
		}
		deltaSpan.End()

		m, err := core.ModelFromBases(ambient, allBases, allCounts, c.centralMethod())
		if err != nil {
			return JoinResult{}, fmt.Errorf("fleet: splice: %w", err)
		}
		v, err := c.publishLocked(m)
		if err != nil {
			return JoinResult{}, err
		}
		span.SetAttr("version", v.Tag)
		out.Changed = true
	}
	c.spliced.Add(int64(splicedCount))
	out.Spliced = splicedCount

	// Phase 3 for the late devices under the final label space.
	out.Labels = make([][]int, len(devices))
	for dev, lr := range locals {
		labels := make([]int, devices[dev].Cols())
		for t, idx := range lr.Partitions {
			for _, i := range idx {
				labels[i] = taus[dev][t]
			}
		}
		out.Labels[dev] = labels
	}
	out.Version = c.history[c.cur]
	c.rounds.With("incremental").Inc()
	c.roundSec.Observe(time.Since(start).Seconds())
	return out, nil
}

// refineDeltaBases re-estimates each surviving delta cluster's basis
// with a distributed dominant SVD over the late devices' raw member
// columns (Config.DistributedBases): the spliced basis is fit to every
// point of its new cluster — not just the spc pooled samples — while
// raw columns stay on their devices. Per-cluster seeds come off the
// controller rng up front so the stream does not depend on skips.
func (c *Controller) refineDeltaBases(span *obs.Span, devices []*mat.Dense, locals []core.LocalResult,
	pool []lateCluster, deltaOf []int, deltaBases []*mat.Dense, counts []int) {
	refineSpan := span.Start("delta.refine", obs.Int("clusters", len(deltaBases)))
	defer refineSpan.End()
	seeds := make([]int64, len(deltaBases))
	for d := range seeds {
		seeds[d] = c.rng.Int63()
	}
	for d := range deltaBases {
		if counts[d] == 0 {
			continue
		}
		// Gather each late device's columns belonging to delta cluster d,
		// concatenated across its pooled local clusters in pool order.
		perDev := make([][]int, len(devices))
		total := 0
		for i, lc := range pool {
			if deltaOf[i] != d {
				continue
			}
			perDev[lc.dev] = append(perDev[lc.dev], locals[lc.dev].Partitions[lc.t]...)
			total += len(locals[lc.dev].Partitions[lc.t])
		}
		blocks := make([]*mat.Dense, len(devices))
		for dev := range devices {
			blocks[dev] = devices[dev].SelectCols(perDev[dev])
		}
		k := deltaBases[d].Cols()
		if k > total {
			k = total
		}
		if k <= 0 {
			continue
		}
		refined, err := dsvd.Run(blocks, dsvd.Options{K: k, Seed: seeds[d], Obs: c.cfg.Obs, Trace: c.cfg.Trace})
		if err != nil {
			continue // keep the sample-based basis
		}
		deltaBases[d] = refined.U
	}
}

// Rollback retags the fleet alias to the previous published version
// and reloads the artifact from the store by digest, so the restored
// model is provably the exact prior bytes. The versioned tags stay in
// the manifest; the next splice publishes a fresh higher version.
func (c *Controller) Rollback() (Version, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == 0 {
		if len(c.history) == 0 {
			return Version{}, fmt.Errorf("fleet: nothing published yet")
		}
		return Version{}, fmt.Errorf("fleet: already at the oldest version %d", c.history[0].Version)
	}
	span := c.cfg.Trace.Start("fleet.rollback")
	defer span.End()
	target := c.history[c.cur-1]
	if err := c.cfg.Store.Tag(c.cfg.Tag, target.Digest); err != nil {
		return Version{}, fmt.Errorf("fleet: rollback: %w", err)
	}
	m, err := c.cfg.Store.Get(target.Digest)
	if err != nil {
		return Version{}, fmt.Errorf("fleet: rollback: %w", err)
	}
	eng, err := serve.NewEngine(m)
	if err != nil {
		return Version{}, fmt.Errorf("fleet: rollback: %w", err)
	}
	c.cur--
	c.model, c.engine = m, eng
	c.versionG.Set(int64(target.Version))
	c.clustersG.Set(int64(target.Clusters))
	c.rounds.With("rollback").Inc()
	span.SetAttr("version", target.Tag)
	return target, nil
}

// Assign scores points against the current model (the serve engine's
// min-residual rule); a convenience for measuring fleet accuracy.
func (c *Controller) Assign(x *mat.Dense) ([]int, []float64, error) {
	c.mu.Lock()
	eng := c.engine
	c.mu.Unlock()
	if eng == nil {
		return nil, nil, fmt.Errorf("fleet: no model published")
	}
	return eng.Assign(x)
}

// sampleIdx lists local cluster t's column indices in a Phase 1 sample
// matrix with spc samples per cluster.
func sampleIdx(t, spc int) []int {
	idx := make([]int, spc)
	for s := 0; s < spc; s++ {
		idx[s] = t*spc + s
	}
	return idx
}

// poolIndex finds the pool entry of device dev's cluster t.
func poolIndex(pool []lateCluster, dev, t int) int {
	for i, lc := range pool {
		if lc.dev == dev && lc.t == t {
			return i
		}
	}
	return -1
}

// deltaComponents groups the pooled clusters by subspace agreement: a
// union-find over pairs whose normalized affinity meets the threshold.
// The component count is the delta solve's cluster count.
func deltaComponents(pool []lateCluster, threshold float64) int {
	parent := make([]int, len(pool))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for i := 0; i < len(pool); i++ {
		for j := i + 1; j < len(pool); j++ {
			if theory.NormalizedAffinity(pool[i].basis, pool[j].basis) >= threshold {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			}
		}
	}
	count := 0
	for i := range parent {
		if find(i) == i {
			count++
		}
	}
	return count
}
