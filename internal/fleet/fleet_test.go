package fleet

import (
	"math/rand"
	"reflect"
	"testing"

	"fedsc/internal/core"
	"fedsc/internal/mat"
	"fedsc/internal/metrics"
	"fedsc/internal/obs"
	"fedsc/internal/store"
	"fedsc/internal/synth"
)

// churnWorld is a fixed union-of-subspaces universe plus the device
// waves of a churn scenario: founding devices see only the first three
// subspaces; later waves re-visit known subspaces (absorb path) and
// introduce the remaining two (splice path).
type churnWorld struct {
	s      synth.Subspaces
	rng    *rand.Rand
	x      []*mat.Dense
	truth  [][]int
	waves  [][]int // waves[w] lists device indices of wave w (wave 0 = founding)
	nextID int
}

const (
	worldN   = 30 // ambient dimension
	worldD   = 3  // subspace dimension
	worldL   = 5  // total subspaces across the scenario's lifetime
	worldPer = 15 // points per subspace per device
)

func newChurnWorld(seed int64) *churnWorld {
	rng := rand.New(rand.NewSource(seed))
	return &churnWorld{s: synth.RandomSubspaces(worldN, worldD, worldL, rng), rng: rng}
}

// wave adds one wave of devices; each device draws worldPer points from
// every listed subspace.
func (w *churnWorld) wave(deviceSubs ...[]int) []*mat.Dense {
	var ids []int
	var devices []*mat.Dense
	for _, subs := range deviceSubs {
		counts := make([]int, worldL)
		for _, c := range subs {
			counts[c] = worldPer
		}
		ds := w.s.SampleCounts(counts, w.rng)
		w.x = append(w.x, ds.X)
		w.truth = append(w.truth, ds.Labels)
		ids = append(ids, w.nextID)
		w.nextID++
		devices = append(devices, ds.X)
	}
	w.waves = append(w.waves, ids)
	return devices
}

func testController(t *testing.T, l int, seed int64) *Controller {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	c, err := New(Config{
		L:     l,
		Local: core.LocalOptions{UseEigengap: true, SamplesPerCluster: 3},
		Seed:  seed,
		Store: st,
		Obs:   obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("new controller: %v", err)
	}
	return c
}

// fleetAccuracy scores every device's points against the current model
// and returns the clustering accuracy over the whole population.
func fleetAccuracy(t *testing.T, c *Controller, w *churnWorld) float64 {
	t.Helper()
	var truth, pred []int
	for dev, x := range w.x {
		labels, _, err := c.Assign(x)
		if err != nil {
			t.Fatalf("assign device %d: %v", dev, err)
		}
		truth = append(truth, w.truth[dev]...)
		pred = append(pred, labels...)
	}
	return metrics.Accuracy(truth, pred)
}

// TestChurnScenarioTracksOneShotBaseline is the headline acceptance
// test: founding devices see 3 of 5 subspaces, three incremental waves
// bring back known subspaces and introduce the two missing ones, and
// the final fleet model must land within 5 accuracy points of the
// all-devices one-shot Fed-SC run.
func TestChurnScenarioTracksOneShotBaseline(t *testing.T) {
	w := newChurnWorld(7)
	founding := w.wave([]int{0, 1}, []int{1, 2}, []int{0, 2}, []int{0, 1}, []int{1, 2}, []int{0, 2})
	c := testController(t, 3, 42)

	_, v1, err := c.Initial(founding)
	if err != nil {
		t.Fatalf("initial round: %v", err)
	}
	if v1.Version != 1 || v1.Clusters != 3 {
		t.Fatalf("initial version %+v, want version 1 with 3 clusters", v1)
	}

	// Wave 1: familiar subspaces only — every cluster must absorb and
	// the published model (hence its digest) must not move.
	res1, err := c.Join(w.wave([]int{0, 1}, []int{2}))
	if err != nil {
		t.Fatalf("join wave 1: %v", err)
	}
	if res1.Changed || res1.Spliced != 0 {
		t.Fatalf("absorb-only wave published a new version: %+v", res1)
	}
	if res1.Absorbed == 0 {
		t.Fatal("absorb-only wave absorbed nothing")
	}
	if got := c.Current(); got.Digest != v1.Digest {
		t.Fatalf("absorb-only wave moved the digest %s -> %s", v1.Digest, got.Digest)
	}

	// Wave 2: subspace 3 appears (alongside a known one) — the unknown
	// clusters pool into a delta solve and splice a new global cluster.
	res2, err := c.Join(w.wave([]int{0, 3}, []int{3}))
	if err != nil {
		t.Fatalf("join wave 2: %v", err)
	}
	if !res2.Changed || res2.Spliced == 0 {
		t.Fatalf("novel-subspace wave spliced nothing: %+v", res2)
	}
	if res2.Version.Version != 2 {
		t.Fatalf("splice published version %d, want 2", res2.Version.Version)
	}
	if res2.Version.Clusters <= v1.Clusters {
		t.Fatalf("splice did not grow the model: %d -> %d clusters", v1.Clusters, res2.Version.Clusters)
	}

	// Wave 3: subspace 4 appears.
	res3, err := c.Join(w.wave([]int{4, 1}, []int{4}))
	if err != nil {
		t.Fatalf("join wave 3: %v", err)
	}
	if !res3.Changed || res3.Version.Version != 3 {
		t.Fatalf("wave 3 result %+v, want a version-3 splice", res3)
	}

	// Baseline: the one-shot run had every device from the start.
	var allTruth []int
	for _, labels := range w.truth {
		allTruth = append(allTruth, labels...)
	}
	base := core.Run(w.x, worldL, core.Options{
		Local: core.LocalOptions{UseEigengap: true, SamplesPerCluster: 3},
	}, rand.New(rand.NewSource(42)))
	var baseLabels []int
	for _, labels := range base.Labels {
		baseLabels = append(baseLabels, labels...)
	}
	baseAcc := metrics.Accuracy(allTruth, baseLabels)
	fleetAcc := fleetAccuracy(t, c, w)
	t.Logf("one-shot baseline %.2f%%, continuous fleet %.2f%%", baseAcc, fleetAcc)
	if fleetAcc < baseAcc-5 {
		t.Fatalf("continuous federation accuracy %.2f%% trails the one-shot baseline %.2f%% by more than 5 points",
			fleetAcc, baseAcc)
	}

	// Every join also labeled the late devices under the final model's
	// label space; absorbed clusters keep the original global indices.
	if len(res3.Labels) != 2 || len(res3.Labels[0]) != 2*worldPer {
		t.Fatalf("wave 3 labels shape %d devices x %d points", len(res3.Labels), len(res3.Labels[0]))
	}
}

// TestRollbackRestoresExactDigest pins the rollback contract: retagging
// through the store manifest restores the exact prior artifact digest,
// the reloaded model matches it byte-for-byte, and the next splice
// publishes a fresh (never reused) version number.
func TestRollbackRestoresExactDigest(t *testing.T) {
	w := newChurnWorld(9)
	founding := w.wave([]int{0, 1}, []int{1, 2}, []int{0, 2}, []int{0, 1})
	c := testController(t, 3, 17)
	if _, _, err := c.Initial(founding); err != nil {
		t.Fatalf("initial: %v", err)
	}
	v1 := c.Current()

	wave2 := w.wave([]int{3}, []int{3, 0})
	res, err := c.Join(wave2)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if !res.Changed {
		t.Fatalf("novel wave did not publish: %+v", res)
	}
	v2 := c.Current()
	if v2.Digest == v1.Digest {
		t.Fatal("splice reused the prior digest")
	}

	back, err := c.Rollback()
	if err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if back.Digest != v1.Digest || back.Version != v1.Version {
		t.Fatalf("rollback landed on %+v, want exactly %+v", back, v1)
	}
	// The manifest alias and the in-memory model both point at the
	// restored content address.
	digest, ok := c.cfg.Store.Resolve(c.cfg.Tag)
	if !ok {
		t.Fatalf("alias %s missing from the manifest", c.cfg.Tag)
	}
	if digest != v1.Digest {
		t.Fatalf("manifest alias resolves to %s after rollback, want %s", digest, v1.Digest)
	}
	if got := store.Digest(c.Model()); got != v1.Digest {
		t.Fatalf("reloaded model digests to %s, want the exact prior %s", got, v1.Digest)
	}
	if c.Model().L != v1.Clusters {
		t.Fatalf("rolled-back model has %d clusters, want %d", c.Model().L, v1.Clusters)
	}

	// Rolling back past the oldest version is refused.
	if _, err := c.Rollback(); err == nil {
		t.Fatal("rollback past version 1 succeeded")
	}

	// Re-churn after rollback: version numbers stay monotonic — the
	// next splice is version 3, not a reused 2.
	res2, err := c.Join(wave2)
	if err != nil {
		t.Fatalf("re-join: %v", err)
	}
	if !res2.Changed || res2.Version.Version != 3 {
		t.Fatalf("post-rollback splice %+v, want a fresh version 3", res2)
	}
	// Both pinned tags survive in the manifest for audit.
	for _, tag := range []string{"fleet@v1", "fleet@v2", "fleet@v3"} {
		if _, ok := c.cfg.Store.Resolve(tag); !ok {
			t.Fatalf("versioned tag %s lost from the manifest", tag)
		}
	}
	hist := c.History()
	if len(hist) != 3 {
		t.Fatalf("history holds %d versions, want 3", len(hist))
	}
	for i, v := range hist {
		if v.Version != i+1 {
			t.Fatalf("history[%d] is version %d, want %d", i, v.Version, i+1)
		}
	}
}

// TestControllerLifecycleErrors pins the lifecycle guard rails.
func TestControllerLifecycleErrors(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	if _, err := New(Config{L: 3}); err == nil {
		t.Fatal("controller without a store accepted")
	}
	if _, err := New(Config{Store: st}); err == nil {
		t.Fatal("controller without a cluster count accepted")
	}
	w := newChurnWorld(3)
	founding := w.wave([]int{0, 1}, []int{1, 2}, []int{0, 2})
	c := testController(t, 3, 5)
	if _, err := c.Join(founding); err == nil {
		t.Fatal("join before the initial round accepted")
	}
	if _, err := c.Rollback(); err == nil {
		t.Fatal("rollback before the initial round accepted")
	}
	if got := c.Current(); got.Version != 0 {
		t.Fatalf("pre-initial current version %+v", got)
	}
	if _, _, err := c.Assign(founding[0]); err == nil {
		t.Fatal("assign before the initial round accepted")
	}
	if _, _, err := c.Initial(founding); err != nil {
		t.Fatalf("initial: %v", err)
	}
	if _, _, err := c.Initial(founding); err == nil {
		t.Fatal("second initial round accepted")
	}
	// An empty join is a no-op reporting the current version.
	res, err := c.Join(nil)
	if err != nil || res.Changed || res.Version.Version != 1 {
		t.Fatalf("empty join: res=%+v err=%v", res, err)
	}
}

// TestJoinIsDeterministic replays a full churn scenario under the same
// seed and demands identical versions, digests, and labels.
func TestJoinIsDeterministic(t *testing.T) {
	run := func() (Version, [][]int) {
		w := newChurnWorld(13)
		founding := w.wave([]int{0, 1}, []int{1, 2}, []int{0, 2}, []int{0, 1})
		c := testController(t, 3, 23)
		if _, _, err := c.Initial(founding); err != nil {
			t.Fatalf("initial: %v", err)
		}
		res, err := c.Join(w.wave([]int{3, 0}, []int{3}))
		if err != nil {
			t.Fatalf("join: %v", err)
		}
		return c.Current(), res.Labels
	}
	v1, labels1 := run()
	v2, labels2 := run()
	// Digests differ across runs (the artifact checksum covers its
	// creation timestamp); the clustering decisions must not.
	if v1.Version != v2.Version || v1.Clusters != v2.Clusters || v1.Tag != v2.Tag {
		t.Fatalf("replay diverged: %+v vs %+v", v1, v2)
	}
	for dev := range labels1 {
		for i := range labels1[dev] {
			if labels1[dev][i] != labels2[dev][i] {
				t.Fatalf("replay label diverged at device %d point %d", dev, i)
			}
		}
	}
}

// TestDistributedBasesFleetLifecycle runs the churn scenario with
// Config.DistributedBases: the initial publish and every spliced delta
// cluster carry dsvd-refined bases (fit to all member points, raw
// columns never pooled). The published bases must stay orthonormal,
// the spliced model must still assign accurately, and the whole
// lifecycle must replay deterministically for a fixed seed.
func TestDistributedBasesFleetLifecycle(t *testing.T) {
	run := func() (Version, [][]int, *Controller, *churnWorld) {
		w := newChurnWorld(13)
		founding := w.wave([]int{0, 1}, []int{1, 2}, []int{0, 2}, []int{0, 1})
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatalf("open store: %v", err)
		}
		c, err := New(Config{
			L:                3,
			Local:            core.LocalOptions{UseEigengap: true, SamplesPerCluster: 3},
			Seed:             23,
			Store:            st,
			Obs:              obs.NewRegistry(),
			DistributedBases: true,
		})
		if err != nil {
			t.Fatalf("new controller: %v", err)
		}
		if _, _, err := c.Initial(founding); err != nil {
			t.Fatalf("initial: %v", err)
		}
		res, err := c.Join(w.wave([]int{3, 0}, []int{3}))
		if err != nil {
			t.Fatalf("join: %v", err)
		}
		if res.Spliced == 0 {
			t.Fatal("the unseen subspace must splice a new cluster")
		}
		return c.Current(), res.Labels, c, w
	}
	v1, labels1, c, w := run()
	for g, basis := range c.Model().Bases() {
		k := basis.Cols()
		gram := mat.MulTA(basis, basis)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if d := gram.At(i, j) - want; d > 1e-9 || d < -1e-9 {
					t.Fatalf("published cluster %d basis not orthonormal at %d,%d: %g", g, i, j, gram.At(i, j))
				}
			}
		}
	}
	if acc := fleetAccuracy(t, c, w); acc < 90 {
		t.Fatalf("refined fleet model accuracy %.1f%% < 90%%", acc)
	}
	v2, labels2, _, _ := run()
	if v1.Version != v2.Version || v1.Clusters != v2.Clusters || v1.Tag != v2.Tag {
		t.Fatalf("replay diverged: %+v vs %+v", v1, v2)
	}
	for dev := range labels1 {
		for i := range labels1[dev] {
			if labels1[dev][i] != labels2[dev][i] {
				t.Fatalf("replay label diverged at device %d point %d", dev, i)
			}
		}
	}
}

// TestJoinAbsorbTieBreaksToLowestCluster is the crafted-tie audit pin
// for absorb voting: a model is published whose clusters 0 and 1 carry
// IDENTICAL bases, so every late sample's min-residual vote ties
// exactly across the two global clusters. The tie must resolve to the
// lowest cluster index — via the serve engine's strict < argmin and
// Join's lowest-label-wins majority vote — never to map iteration
// order, and the whole round must replay identically.
func TestJoinAbsorbTieBreaksToLowestCluster(t *testing.T) {
	const n = 6
	e1 := mat.NewDense(n, 1)
	e1.Data()[0] = 1
	run := func() JoinResult {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatalf("open store: %v", err)
		}
		c, err := New(Config{
			L:     2,
			Local: core.LocalOptions{UseEigengap: false, RMax: 1, SamplesPerCluster: 2},
			Seed:  71,
			Store: st,
			Obs:   obs.NewRegistry(),
		})
		if err != nil {
			t.Fatalf("new controller: %v", err)
		}
		m, err := core.ModelFromBases(n, []*mat.Dense{e1.Clone(), e1.Clone()}, []int{1, 1}, core.CentralSSC)
		if err != nil {
			t.Fatalf("model: %v", err)
		}
		if _, err := c.publishLocked(m); err != nil {
			t.Fatalf("publish: %v", err)
		}
		// One late device whose points all lie on span(e1): residuals to
		// clusters 0 and 1 are bit-equal for every sample.
		late := mat.NewDense(n, 5)
		for j := 0; j < 5; j++ {
			late.Data()[j] = 0.5 + 0.3*float64(j) // row 0 = e1 coordinate
		}
		res, err := c.Join([]*mat.Dense{late})
		if err != nil {
			t.Fatalf("join: %v", err)
		}
		return res
	}
	first := run()
	if first.Absorbed != 1 || first.Changed {
		t.Fatalf("tie cluster not absorbed: %+v", first)
	}
	for _, lab := range first.Labels[0] {
		if lab != 0 {
			t.Fatalf("tied vote resolved to cluster %d, want lowest index 0 (labels %v)", lab, first.Labels[0])
		}
	}
	second := run()
	// Digests differ across runs (the artifact checksum covers its
	// creation timestamp); every clustering decision must not.
	first.Version.Digest, second.Version.Digest = "", ""
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("tied absorb round diverged across replays:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}
