// Package dsvd estimates the dominant (truncated) left singular
// subspace of a matrix whose columns are partitioned across devices,
// via projection splitting (PAPERS.md: Wang, Liu & Zhang, "Distributed
// and Secure Dominant SVD"). The coordinator holds an orthonormal n×k
// iterate U; each round every device z applies its own column block to
// it — W_z = A_z (A_zᵀ U) — and only that n×k projection crosses the
// wire, never the raw columns. The coordinator sums the projections in
// device order, measures the subspace residual, re-orthonormalizes, and
// repeats until the residual drops below tolerance. One final Ritz
// rotation on the k×k Rayleigh quotient turns the converged subspace
// into singular vectors with singular-value estimates.
//
// Everything is a pure function of (blocks, Options): the initial
// iterate is drawn from a seeded rng, sums run in fixed device order,
// and the iteration count is residual-driven — so a networked run over
// fednet reproduces the in-process result bit for bit, and a chaos
// replay of a networked run reproduces it again.
package dsvd

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"fedsc/internal/mat"
	"fedsc/internal/obs"
)

// Options configures one distributed SVD solve.
type Options struct {
	// K is the number of dominant left singular pairs to estimate.
	K int
	// MaxIter caps the projection-splitting rounds; non-positive means
	// the default of 64.
	MaxIter int
	// Tol is the relative subspace residual ‖W − U(UᵀW)‖_F/‖W‖_F below
	// which the iteration stops; non-positive means the default of 1e-9.
	Tol float64
	// Seed draws the initial orthonormal iterate; equal seeds (with
	// equal blocks) give bit-identical runs.
	Seed int64
	// Obs receives the fedsc_dsvd_* metrics; nil publishes to the
	// process-wide obs.Default registry.
	Obs *obs.Registry
	// Trace, when non-nil, records one span per iteration under a
	// dsvd.run root.
	Trace *obs.Tracer
}

func (o Options) maxIter() int {
	if o.MaxIter <= 0 {
		return 64
	}
	return o.MaxIter
}

func (o Options) tol() float64 {
	if o.Tol <= 0 {
		return 1e-9
	}
	return o.Tol
}

func (o Options) reg() *obs.Registry {
	if o.Obs != nil {
		return o.Obs
	}
	return obs.Default()
}

// Result is a converged (or iteration-capped) distributed solve.
type Result struct {
	// U is the n×k estimated dominant left singular basis, columns
	// ordered by descending singular value.
	U *mat.Dense
	// Sigma are the singular-value estimates, descending.
	Sigma []float64
	// Iters is the number of projection-splitting rounds performed.
	Iters int
	// Residual is the relative subspace residual at the last round.
	Residual float64
	// Converged reports whether Residual reached Options.Tol before
	// MaxIter.
	Converged bool
}

// State is the coordinator side of the iteration, shared by the
// in-process Run and the fednet coordinator so both walk the identical
// float sequence. Each round: hand Basis to the devices, pool their
// projections with Pool (fixed device order), Ingest the pooled matrix.
type State struct {
	n, k      int
	tol       float64
	maxIter   int
	u         *mat.Dense
	lastU     *mat.Dense
	lastW     *mat.Dense
	iters     int
	residual  float64
	converged bool
}

// NewState validates the problem shape and draws the seeded initial
// orthonormal iterate.
func NewState(n int, opts Options) (*State, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dsvd: ambient dimension must be positive, got %d", n)
	}
	k := opts.K
	if k <= 0 {
		return nil, fmt.Errorf("dsvd: target rank must be positive, got %d", k)
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	return &State{
		n:       n,
		k:       k,
		tol:     opts.tol(),
		maxIter: opts.maxIter(),
		u:       mat.RandomOrthonormal(n, k, rng),
	}, nil
}

// N is the ambient (row) dimension of the iterate.
func (s *State) N() int { return s.n }

// K is the effective target rank (Options.K clamped to n).
func (s *State) K() int { return s.k }

// Iters is the number of rounds ingested so far.
func (s *State) Iters() int { return s.iters }

// Residual is the relative subspace residual of the last ingested
// round (meaningless before the first).
func (s *State) Residual() float64 { return s.residual }

// Basis is the current orthonormal iterate — the only thing that ever
// travels coordinator → device.
func (s *State) Basis() *mat.Dense { return s.u }

// Done reports whether the iteration should stop: converged below
// tolerance or out of rounds.
func (s *State) Done() bool {
	return s.converged || s.iters >= s.maxIter
}

// Ingest consumes the pooled projection W = Σ_z W_z of the round that
// used the current basis, records the relative residual, and advances
// the iterate by re-orthonormalization. It returns that residual.
func (s *State) Ingest(w *mat.Dense) float64 {
	if r, c := w.Dims(); r != s.n || c != s.k {
		panic(fmt.Sprintf("dsvd: pooled projection is %dx%d, want %dx%d", r, c, s.n, s.k))
	}
	// ρ = ‖W − U(UᵀW)‖_F / ‖W‖_F: the mass of W outside span(U). When
	// span(U) is invariant under A Aᵀ the projection adds nothing new
	// and the subspace has converged.
	b := mat.MulTA(s.u, w)
	p := mat.Mul(s.u, b)
	wd, pd := w.Data(), p.Data()
	num, den := 0.0, 0.0
	for i, v := range wd {
		d := v - pd[i]
		num += d * d
		den += v * v
	}
	rho := 0.0
	if den > 0 {
		rho = math.Sqrt(num / den)
	}
	s.lastU, s.lastW = s.u, w
	s.u = mat.QRFactor(w).Q
	s.iters++
	s.residual = rho
	s.converged = rho <= s.tol
	return rho
}

// Finalize turns the converged subspace into ordered singular pairs by
// one Ritz rotation: B = UᵀW = Uᵀ(A Aᵀ)U is the k×k Rayleigh quotient
// of the last iterate, its eigenvalues estimate σ², and rotating U by
// its eigenvectors aligns the basis columns with the singular
// directions. Finalize panics before the first Ingest.
func (s *State) Finalize() Result {
	if s.lastU == nil {
		panic("dsvd: Finalize before any iteration")
	}
	b := mat.MulTA(s.lastU, s.lastW)
	b.Symmetrize()
	eig := mat.SymEigen(b) // k×k: full decomposition of a tiny matrix
	idx := make([]int, s.k)
	sigma := make([]float64, s.k)
	for j := 0; j < s.k; j++ {
		src := s.k - 1 - j // ascending → descending
		idx[j] = src
		if v := eig.Values[src]; v > 0 {
			sigma[j] = math.Sqrt(v)
		}
	}
	u := mat.Mul(s.lastU, eig.Vectors.SelectCols(idx))
	return Result{U: u, Sigma: sigma, Iters: s.iters, Residual: s.residual, Converged: s.converged}
}

// ProjectBlock is the device-side step: W_z = A_z (A_zᵀ U) for the
// device's column block. Both products are against the k-column
// iterate, so the device never materializes (or transmits) anything
// wider than n×k; a device with no columns contributes a zero matrix.
func ProjectBlock(block, u *mat.Dense) *mat.Dense {
	if block.Cols() == 0 {
		return mat.NewDense(u.Rows(), u.Cols())
	}
	if block.Rows() != u.Rows() {
		panic(fmt.Sprintf("dsvd: block has %d rows, iterate has %d", block.Rows(), u.Rows()))
	}
	return mat.Mul(block, mat.MulTA(block, u))
}

// Pool sums per-device projections in slice (device) order. The order
// is part of the determinism contract: float addition does not
// commute, so the coordinator — in process or behind fednet — must add
// contributions in ascending device order to replay bit-identically.
func Pool(parts []*mat.Dense) *mat.Dense {
	if len(parts) == 0 {
		panic("dsvd: pooling zero projections")
	}
	w := parts[0].Clone()
	wd := w.Data()
	for _, p := range parts[1:] {
		pd := p.Data()
		if len(pd) != len(wd) {
			panic("dsvd: pooled projection shapes differ")
		}
		for i, v := range pd {
			wd[i] += v
		}
	}
	return w
}

// Run executes the whole solve in process over the given device column
// blocks (all sharing one row count). It is the reference the fednet
// coordinator is pinned against: same blocks, same Options — same bits.
func Run(blocks []*mat.Dense, opts Options) (Result, error) {
	if len(blocks) == 0 {
		return Result{}, fmt.Errorf("dsvd: no device blocks")
	}
	n := blocks[0].Rows()
	for z, b := range blocks {
		if b.Rows() != n {
			return Result{}, fmt.Errorf("dsvd: device %d holds %d-dimensional columns, device 0 holds %d", z, b.Rows(), n)
		}
	}
	st, err := NewState(n, opts)
	if err != nil {
		return Result{}, err
	}
	reg := opts.reg()
	// Instruments are registered once, before the iteration loop: the
	// registry lookup takes a mutex and must stay off the per-round hot
	// path (metrichygiene).
	roundsC := reg.Counter("fedsc_dsvd_rounds_total", "Distributed SVD solves started.")
	itersC := reg.Counter("fedsc_dsvd_iterations_total", "Projection-splitting iterations across all solves.")
	convergedC := reg.Counter("fedsc_dsvd_converged_total", "Solves that reached the residual tolerance before MaxIter.")
	residualH := reg.Histogram("fedsc_dsvd_residual", "Relative subspace residual per iteration.",
		[]float64{1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1})
	secondsH := reg.Histogram("fedsc_dsvd_iteration_seconds", "Wall time of one projection-splitting iteration.",
		[]float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1})
	roundsC.Inc()
	root := opts.Trace.Start("dsvd.run", obs.Int("k", st.K()), obs.Int("devices", len(blocks)), obs.Int("n", n))
	defer root.End()
	parts := make([]*mat.Dense, len(blocks))
	for !st.Done() {
		iterStart := time.Now()
		sp := root.Start("dsvd.iter", obs.Int("iter", st.Iters()))
		u := st.Basis()
		for z, b := range blocks {
			parts[z] = ProjectBlock(b, u)
		}
		rho := st.Ingest(Pool(parts))
		itersC.Inc()
		residualH.Observe(rho)
		secondsH.Observe(time.Since(iterStart).Seconds())
		sp.SetAttr("residual", fmt.Sprintf("%.3e", rho))
		sp.End()
	}
	if st.converged {
		convergedC.Inc()
	}
	return st.Finalize(), nil
}
