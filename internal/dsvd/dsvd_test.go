package dsvd

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fedsc/internal/mat"
	"fedsc/internal/obs"
	"fedsc/internal/theory"
)

// splitCols deals the columns of x into contiguous per-device blocks
// with the given sizes.
func splitCols(x *mat.Dense, sizes []int) []*mat.Dense {
	blocks := make([]*mat.Dense, len(sizes))
	off := 0
	for z, c := range sizes {
		b := mat.NewDense(x.Rows(), c)
		col := make([]float64, x.Rows())
		for j := 0; j < c; j++ {
			x.Col(off+j, col)
			b.SetCol(j, col)
		}
		blocks[z] = b
		off += c
	}
	return blocks
}

// lowRankPlusNoise builds an n×cols matrix with a planted rank-d
// dominant subspace and small Gaussian noise.
func lowRankPlusNoise(n, d, cols int, noise float64, rng *rand.Rand) (*mat.Dense, *mat.Dense) {
	basis := mat.RandomOrthonormal(n, d, rng)
	coef := mat.RandomGaussian(d, cols, rng)
	x := mat.Mul(basis, coef)
	if noise > 0 {
		e := mat.RandomGaussian(n, cols, rng)
		xd, ed := x.Data(), e.Data()
		for i := range xd {
			xd[i] += noise * ed[i]
		}
	}
	return x, basis
}

func TestRunMatchesCentralizedTruncatedSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct {
		n, d, cols int
		sizes      []int
		noise      float64
	}{
		{20, 3, 60, []int{20, 20, 20}, 0},
		{30, 4, 90, []int{10, 35, 25, 20}, 0.01},
		{16, 2, 48, []int{48}, 0.05}, // one device: pure power iteration
		{24, 5, 64, []int{1, 31, 16, 16}, 0.02},
	} {
		x, _ := lowRankPlusNoise(tc.n, tc.d, tc.cols, tc.noise, rng)
		blocks := splitCols(x, tc.sizes)
		res, err := Run(blocks, Options{K: tc.d, Seed: 7, MaxIter: 200, Tol: 1e-12})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		central, centralSigma := mat.TruncatedSVD(x, tc.d)
		cos := theory.PrincipalAngles(res.U, central)
		for _, c := range cos {
			if c < 0.999 {
				t.Fatalf("%+v: principal-angle cosine %v below 0.999", tc, cos)
			}
		}
		for j := 0; j < tc.d; j++ {
			if rel := math.Abs(res.Sigma[j]-centralSigma[j]) / (1 + centralSigma[j]); rel > 1e-3 {
				t.Fatalf("%+v: sigma[%d]=%g, centralized %g", tc, j, res.Sigma[j], centralSigma[j])
			}
		}
		if !res.Converged {
			t.Fatalf("%+v: did not converge in %d iterations (residual %g)", tc, res.Iters, res.Residual)
		}
	}
}

func TestRunBasisOrthonormalAndOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, _ := lowRankPlusNoise(18, 4, 50, 0.05, rng)
	res, err := Run(splitCols(x, []int{17, 16, 17}), Options{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := mat.MulTA(res.U, res.U)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > 1e-9 {
				t.Fatalf("basis not orthonormal at %d,%d: %g", i, j, g.At(i, j))
			}
		}
	}
	for j := 1; j < len(res.Sigma); j++ {
		if res.Sigma[j] > res.Sigma[j-1]+1e-12 {
			t.Fatalf("singular values not descending: %v", res.Sigma)
		}
	}
}

func TestRunDeterministicReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, _ := lowRankPlusNoise(22, 3, 66, 0.02, rng)
	blocks := splitCols(x, []int{22, 22, 22})
	opts := Options{K: 3, Seed: 11}
	a, err := Run(blocks, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(blocks, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.U.Data(), b.U.Data()) || !reflect.DeepEqual(a.Sigma, b.Sigma) || a.Iters != b.Iters {
		t.Fatal("seeded runs are not bit-identical")
	}
}

func TestRunPartitionInvariance(t *testing.T) {
	// The pooled projection Σ_z A_z A_zᵀ U is the same operator no
	// matter how columns are dealt, so different partitions converge to
	// the same subspace (bits differ — float sums reorder — but angles
	// must not).
	rng := rand.New(rand.NewSource(5))
	x, _ := lowRankPlusNoise(20, 3, 60, 0.01, rng)
	a, err := Run(splitCols(x, []int{60}), Options{K: 3, Seed: 2, Tol: 1e-12, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(splitCols(x, []int{7, 13, 21, 19}), Options{K: 3, Seed: 2, Tol: 1e-12, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range theory.PrincipalAngles(a.U, b.U) {
		if c < 0.9999 {
			t.Fatalf("partitions disagree on the subspace: %v", theory.PrincipalAngles(a.U, b.U))
		}
	}
}

func TestProjectBlockNeverWiderThanK(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(12)
		k := 1 + r.Intn(n)
		cols := r.Intn(40)
		block := mat.RandomGaussian(n, cols, r)
		u := mat.RandomOrthonormal(n, k, r)
		w := ProjectBlock(block, u)
		rr, cc := w.Dims()
		return rr == n && cc == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, Options{K: 2}); err == nil {
		t.Fatal("no blocks should error")
	}
	blocks := []*mat.Dense{mat.NewDense(4, 2), mat.NewDense(5, 2)}
	if _, err := Run(blocks, Options{K: 2}); err == nil {
		t.Fatal("mismatched ambient dimensions should error")
	}
	if _, err := Run([]*mat.Dense{mat.NewDense(4, 2)}, Options{K: 0}); err == nil {
		t.Fatal("non-positive rank should error")
	}
}

func TestRunMetricsPublished(t *testing.T) {
	reg := obs.NewRegistry()
	rng := rand.New(rand.NewSource(9))
	x, _ := lowRankPlusNoise(12, 2, 30, 0, rng)
	res, err := Run(splitCols(x, []int{15, 15}), Options{K: 2, Seed: 1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("fedsc_dsvd_rounds_total", "").Value(); got != 1 {
		t.Fatalf("rounds counter = %d", got)
	}
	if got := reg.Counter("fedsc_dsvd_iterations_total", "").Value(); got != int64(res.Iters) {
		t.Fatalf("iterations counter = %d, result says %d", got, res.Iters)
	}
	if got := reg.Counter("fedsc_dsvd_converged_total", "").Value(); got != 1 {
		t.Fatalf("converged counter = %d", got)
	}
}
