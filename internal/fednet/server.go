package fednet

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"fedsc/internal/core"
	"fedsc/internal/mat"
	"fedsc/internal/obs"
)

// Server aggregates one-shot Fed-SC uploads and answers each client with
// its sample assignments.
type Server struct {
	// L is the number of global clusters.
	L int
	// Expect is the number of distinct client devices that will report;
	// the central clustering runs once all of them have uploaded.
	Expect int
	// Central configures the Phase 2 algorithm (SSC by default).
	Central core.CentralOptions
	// Seed makes the server-side clustering and the round nonce
	// deterministic.
	Seed int64
	// WaitTimeout, when positive, makes the round straggler-tolerant:
	// the timer starts at the first accepted connection, and when it
	// fires the server proceeds with the devices that have uploaded so
	// far (at least MinClients) instead of blocking on absent devices —
	// a one-shot scheme cannot wait forever for a phone that went
	// offline. Zero keeps the strict wait-for-all behaviour. Retrying
	// devices may reconnect at any point before the round closes,
	// including during the grace period.
	WaitTimeout time.Duration
	// MinClients is the minimum number of devices required to run the
	// round when WaitTimeout fires (default 1).
	MinClients int
	// Codecs lists the upload encodings the server advertises and
	// accepts, in preference order; nil accepts every codec (float64
	// passthrough and the quantized Section IV-E wire). An upload whose
	// codec was not advertised is rejected.
	Codecs []WireCodec
	// MaxUploadBytes, when positive, caps the gob-encoded size of a
	// single upload; a connection exceeding it is rejected before the
	// oversized payload reaches the decoder's allocations.
	MaxUploadBytes int64
	// Export, when set, builds a serving artifact (core.Model: the
	// per-global-cluster subspace bases estimated from the pooled
	// samples) after the central clustering and returns it in
	// ServeStats.Model — the bridge from a one-shot round to the
	// inference tier (internal/serve).
	Export bool
	// ExportDim forces the per-cluster basis dimension of the exported
	// model (the paper's d_t shortcut); zero estimates it per cluster.
	ExportDim int
	// Obs receives the wire metrics of every round (uplink/downlink
	// bytes, retries, supersedes, round latency); nil publishes to the
	// process-wide obs.Default registry.
	Obs *obs.Registry
	// Trace, when non-nil, records the round's phase tree — collect
	// (with one zero-width span per accepted upload), central
	// clustering, and the reply fan-out.
	Trace *obs.Tracer
}

// codecs resolves the advertised codec list (nil accepts everything).
func (s *Server) codecs() []WireCodec {
	if s.Codecs != nil {
		return s.Codecs
	}
	return []WireCodec{CodecQuant, CodecFloat64}
}

// reg resolves the metrics destination.
func (s *Server) reg() *obs.Registry {
	if s.Obs != nil {
		return s.Obs
	}
	return obs.Default()
}

// ServeStats summarizes one completed aggregation round.
type ServeStats struct {
	// UplinkBytes is the gob-encoded uplink volume actually received,
	// including aborted partial attempts that were later retried.
	UplinkBytes int64
	// UplinkPayloadBits is the Section IV-E payload volume of the
	// pooled uploads: values × bits-per-value under each device's
	// negotiated codec (n·q·Σr⁽ᶻ⁾ when every device quantizes at q
	// bits). Unlike UplinkBytes it excludes gob framing, duplicates,
	// and aborted attempts, so it is directly comparable with
	// core.Result.UplinkBits.
	UplinkPayloadBits int64
	// DownlinkBytes is the gob-encoded downlink volume actually sent
	// (round hellos and assignment replies), so the Section IV-E
	// communication accounting covers both directions.
	DownlinkBytes int64
	// Samples is the total number of samples pooled at the server.
	Samples int
	// Devices is the number of distinct devices whose upload was pooled
	// (may be fewer than Server.Expect in straggler-tolerant mode).
	Devices int
	// Retries is how many uploads idempotently replaced an earlier
	// attempt by the same device (the dedup table's hit count).
	Retries int
	// Failures describes connections whose upload was rejected, timed
	// out, or was superseded by a retry; in straggler-tolerant mode
	// they do not fail the round.
	Failures []string
	// Model is the serving artifact built from the round; only set when
	// Server.Export is enabled and at least one sample was pooled.
	Model *core.Model
}

// clientState is one accepted connection's protocol state.
type clientState struct {
	conn   net.Conn
	enc    *gob.Encoder
	upload SampleUpload
	err    error
}

// Serve collects uploads from s.Expect distinct devices on ln, runs the
// central clustering, and replies to every connection with its
// assignment slice. It returns after all replies are written; the
// listener is not closed. Serve is a single aggregation round, matching
// the one-shot nature of the scheme.
//
// Client state is keyed by DeviceID and the round nonce: a device that
// reconnects (its first attempt was reset mid-upload, or it never saw
// the reply) idempotently replaces its earlier upload instead of being
// pooled twice, and an upload replayed from a different round carries a
// stale nonce and is rejected. Connections may therefore outnumber
// devices; every accepted connection receives a reply.
func (s *Server) Serve(ln net.Listener) (ServeStats, error) {
	if s.Expect <= 0 {
		return ServeStats{}, fmt.Errorf("fednet: server expects a positive client count, got %d", s.Expect)
	}
	nonce := roundNonce(s.Seed)
	up := &countingWriter{}
	down := &countingWriter{}
	roundStart := time.Now()
	root := s.Trace.Start("fednet.round", obs.Int("expect", s.Expect), obs.Int("L", s.L))
	defer root.End()
	collect := root.Start("collect")
	// End is idempotent (first call wins): the explicit End below pins
	// the measured window, the defer covers the abort returns so the
	// canonical trace is never truncated.
	defer collect.End()

	// Accept in a separate goroutine so the straggler timeout can cut the
	// wait short; once the round proceeds, late connections are refused.
	accepted := make(chan net.Conn)
	acceptErrCh := make(chan error, 1)
	doneCh := make(chan struct{})
	acceptorDone := make(chan struct{})
	defer func() {
		close(doneCh)
		// The contract leaves ln open for the caller, so the acceptor may
		// still be blocked inside ln.Accept with no connection coming.
		// Listeners with deadline support (TCP included) get poked awake
		// so the goroutine provably exits with the round; the deadline is
		// then cleared to hand the listener back unbounded.
		if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
			if d.SetDeadline(time.Now()) == nil {
				<-acceptorDone
			}
			_ = d.SetDeadline(time.Time{})
		}
	}()
	go func() {
		defer close(acceptorDone)
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case acceptErrCh <- err:
				case <-doneCh:
				}
				return
			}
			select {
			case accepted <- conn:
			case <-doneCh:
				// The round is over; a Close error on a refused late
				// connection has no one left to report to.
				_ = conn.Close()
				return
			}
		}
	}()

	// currentDL is the deadline every open connection must carry: zero
	// (explicitly unbounded) while collecting, the grace deadline once
	// the straggler timer fires, and "now" when the round closes with
	// uploads still in flight. Handlers apply it under dlMu so a
	// deadline change by the collect loop can never be overwritten by a
	// handler that read the older value.
	var dlMu sync.Mutex
	currentDL := time.Time{}
	applyDL := func(conn net.Conn) error {
		dlMu.Lock()
		defer dlMu.Unlock()
		return conn.SetDeadline(currentDL)
	}

	arrivals := make(chan *clientState)
	handle := func(c *clientState) {
		if err := applyDL(c.conn); err != nil {
			c.err = fmt.Errorf("fednet: set deadline: %w", err)
			arrivals <- c
			return
		}
		if err := c.enc.Encode(RoundHello{Nonce: nonce, Codecs: s.codecs()}); err != nil {
			c.err = fmt.Errorf("fednet: send round hello: %w", err)
			arrivals <- c
			return
		}
		var r io.Reader = &countingReader{r: c.conn, counter: up}
		var limited *io.LimitedReader
		if s.MaxUploadBytes > 0 {
			limited = &io.LimitedReader{R: r, N: s.MaxUploadBytes + 1}
			r = limited
		}
		if err := gob.NewDecoder(r).Decode(&c.upload); err != nil {
			if limited != nil && limited.N <= 0 {
				c.err = fmt.Errorf("fednet: upload exceeds the %d-byte limit", s.MaxUploadBytes)
			} else {
				c.err = fmt.Errorf("fednet: decode upload: %w", err)
			}
			arrivals <- c
			return
		}
		if c.upload.Nonce != nonce {
			c.err = fmt.Errorf("fednet: device %d echoed a stale round nonce", c.upload.DeviceID)
		} else if !codecOffered(s.codecs(), c.upload.codec()) {
			c.err = fmt.Errorf("fednet: device %d uploaded with unadvertised codec %q", c.upload.DeviceID, c.upload.codec())
		} else {
			c.err = c.upload.Validate()
		}
		arrivals <- c
	}

	byDevice := map[int]*clientState{}
	var failed []*clientState
	pending := map[*clientState]bool{}
	retries := 0
	var timeoutCh <-chan time.Time
	graceOn := false
	closing := false
	acceptCh := accepted
	var acceptFailure error

	// cut re-arms every pending connection with the (shortened) shared
	// deadline so stalled uploads resolve instead of holding the round.
	cut := func(dl time.Time) {
		dlMu.Lock()
		currentDL = dl
		dlMu.Unlock()
		for c := range pending {
			if err := applyDL(c.conn); err != nil {
				// The handler owns c until it arrives; a transport that
				// rejects deadlines surfaces through its own decode
				// path, so the rejection is only logged by closing.
				_ = c.conn.Close()
			}
		}
	}
	abort := func() {
		s.reg().Counter("fedsc_fednet_rounds_aborted_total", "Rounds aborted before the reply phase (listener death or too few devices).").Inc()
		for _, c := range byDevice {
			// Aborting the round: the devices see the broken pipe; their
			// Close errors carry no additional signal.
			_ = c.conn.Close()
		}
		for _, c := range failed {
			_ = c.conn.Close()
		}
		for c := range pending {
			_ = c.conn.Close()
		}
		for len(pending) > 0 {
			c := <-arrivals
			delete(pending, c)
		}
	}

	minClients := s.MinClients
	if minClients <= 0 {
		minClients = 1
	}
	for {
		if !closing {
			complete := len(byDevice) >= s.Expect ||
				(s.WaitTimeout <= 0 && len(byDevice)+len(failed) >= s.Expect)
			if complete {
				closing = true
				acceptCh = nil
				cut(time.Now())
			} else if acceptFailure != nil && len(pending) == 0 && !graceOn {
				// The listener died and nothing in flight can complete
				// the round.
				abort()
				return ServeStats{}, fmt.Errorf("fednet: accept: %w", acceptFailure)
			}
		}
		if len(pending) == 0 && (closing || graceOn) {
			break
		}
		select {
		case conn := <-acceptCh:
			c := &clientState{conn: conn, enc: gob.NewEncoder(&countedWriter{w: conn, counter: down})}
			pending[c] = true
			go handle(c)
			if s.WaitTimeout > 0 && timeoutCh == nil {
				timeoutCh = time.After(s.WaitTimeout)
			}
		case c := <-arrivals:
			delete(pending, c)
			sp := collect.Start("upload", obs.Int("device", c.upload.DeviceID), obs.Int("attempt", c.upload.Attempt))
			if c.err != nil {
				sp.SetAttr("err", c.err.Error())
			}
			sp.End()
			if c.err != nil {
				failed = append(failed, c)
				continue
			}
			if prev, ok := byDevice[c.upload.DeviceID]; ok {
				// The dedup table: a re-upload replaces the earlier
				// attempt — pooling both would corrupt the TSC q-rule
				// and the labels. The highest attempt number wins (ties
				// go to the newer arrival), so a slow handler delivering
				// a dead first attempt late cannot evict the live retry.
				stale := prev
				if c.upload.Attempt < prev.upload.Attempt {
					stale = c
				} else {
					byDevice[c.upload.DeviceID] = c
				}
				stale.err = fmt.Errorf("fednet: superseded by a newer upload from device %d", stale.upload.DeviceID)
				failed = append(failed, stale)
				retries++
				continue
			}
			byDevice[c.upload.DeviceID] = c
		case err := <-acceptErrCh:
			acceptFailure = err
			acceptCh = nil
		case <-timeoutCh:
			timeoutCh = nil
			if len(byDevice)+len(pending) < minClients {
				abort()
				return ServeStats{}, fmt.Errorf("fednet: only %d of minimum %d devices connected before the straggler timeout",
					len(byDevice)+len(pending), minClients)
			}
			// Give in-flight uploads a bounded grace period so a stalled
			// device cannot hold the round hostage; retries arriving
			// during the grace period are still admitted.
			graceOn = true
			cut(time.Now().Add(s.WaitTimeout))
		}
	}

	collect.End()
	// Pool the valid uploads in ascending DeviceID order, so the label
	// vector is independent of arrival interleaving — the property the
	// chaos replay tests pin down.
	ids := make([]int, 0, len(byDevice))
	for id := range byDevice {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var parts []*mat.Dense
	offsets := map[int]int{}
	total := 0
	ambient := -1
	var payloadBits int64
	for _, id := range ids {
		c := byDevice[id]
		if c.upload.Cols > 0 && ambient < 0 {
			ambient = c.upload.Rows
		}
		if c.upload.Cols > 0 && c.upload.Rows != ambient {
			c.err = fmt.Errorf("fednet: ambient dimension %d differs from %d", c.upload.Rows, ambient)
			failed = append(failed, c)
			delete(byDevice, id)
			continue
		}
		// Validate already checked the codec payload shape, so the
		// decode cannot fail here; the error path still evicts the
		// device rather than pooling a short matrix.
		values, err := c.upload.Samples()
		if err != nil {
			c.err = fmt.Errorf("fednet: decode samples: %w", err)
			failed = append(failed, c)
			delete(byDevice, id)
			continue
		}
		offsets[id] = total
		parts = append(parts, mat.NewDenseData(c.upload.Rows, c.upload.Cols, values))
		total += c.upload.Cols
		payloadBits += c.upload.PayloadBits()
	}
	var labels []int
	var exported *core.Model
	phase2 := root.Start("central", obs.Int("devices", len(parts)), obs.Int("samples", total))
	// Covers the export-failure abort; the explicit End below pins the
	// phase boundary on the success path (End is idempotent).
	defer phase2.End()
	if total > 0 {
		theta := mat.HStack(parts...)
		rng := rand.New(rand.NewSource(s.Seed))
		// The TSC neighbor rule q = max(3, ⌈Z/L⌉) must see the number of
		// devices that actually contributed samples — in straggler-
		// tolerant mode that can be fewer than Expect.
		res := core.CentralCluster(theta, len(parts), s.L, s.Central, rng)
		labels = res.Labels
		if s.Export {
			method := s.Central.Method
			if method == "" {
				method = core.CentralSSC
			}
			m, err := core.BuildModel(theta, labels, s.L, s.ExportDim, method)
			if err != nil {
				abort()
				return ServeStats{}, fmt.Errorf("fednet: export model: %w", err)
			}
			exported = m
		}
	}
	phase2.End()
	replySpan := root.Start("reply")

	// Reply to every connection — pooled devices get their assignment
	// slice, failed and superseded connections the error — and close.
	// Replies get a fresh write budget: the grace deadline (or the
	// closing cut) may already be in the past.
	replyDL := time.Time{}
	if s.WaitTimeout > 0 {
		replyDL = time.Now().Add(s.WaitTimeout)
	}
	reply := func(c *clientState, r AssignmentReply) {
		if err := c.conn.SetDeadline(replyDL); err != nil && c.err == nil {
			c.err = fmt.Errorf("fednet: set reply deadline for device %d: %w", c.upload.DeviceID, err)
		}
		if err := c.enc.Encode(r); err != nil && c.err == nil {
			c.err = fmt.Errorf("fednet: reply to device %d: %w", c.upload.DeviceID, err)
		}
		if err := c.conn.Close(); err != nil && c.err == nil {
			c.err = fmt.Errorf("fednet: close device %d: %w", c.upload.DeviceID, err)
		}
	}
	// Re-read the pooled ids: an ambient mismatch above may have evicted
	// a device after the first sweep.
	ids = ids[:0]
	for id := range byDevice {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		c := byDevice[id]
		reply(c, AssignmentReply{Assignments: labels[offsets[id] : offsets[id]+c.upload.Cols]})
	}
	for _, c := range failed {
		reply(c, AssignmentReply{Err: c.err.Error()})
	}
	replySpan.End()

	stats := ServeStats{
		UplinkBytes:       up.total(),
		UplinkPayloadBits: payloadBits,
		DownlinkBytes:     down.total(),
		Samples:           total,
		Devices:           len(byDevice),
		Retries:           retries,
		Model:             exported,
	}
	for _, c := range failed {
		stats.Failures = append(stats.Failures,
			fmt.Sprintf("device %d: %v", c.upload.DeviceID, c.err))
	}
	for _, id := range ids {
		if c := byDevice[id]; c.err != nil {
			stats.Failures = append(stats.Failures,
				fmt.Sprintf("device %d: %v", c.upload.DeviceID, c.err))
		}
	}
	// Failure arrival order depends on goroutine interleaving; sorting
	// keeps ServeStats bit-identical across replays of a seeded round.
	sort.Strings(stats.Failures)
	s.publish(stats, time.Since(roundStart))
	if s.WaitTimeout > 0 {
		// Straggler-tolerant mode: the round succeeds as long as enough
		// devices made it; individual failures are reported in stats.
		if len(byDevice) < minClients {
			return stats, fmt.Errorf("fednet: only %d of minimum %d devices uploaded successfully", len(byDevice), minClients)
		}
		return stats, nil
	}
	if len(failed) > 0 {
		c := failed[0]
		return stats, fmt.Errorf("fednet: device %d failed: %w", c.upload.DeviceID, c.err)
	}
	for _, id := range ids {
		if c := byDevice[id]; c.err != nil {
			return stats, fmt.Errorf("fednet: device %d failed: %w", c.upload.DeviceID, c.err)
		}
	}
	return stats, nil
}

// publish pushes one completed round's wire totals into the metrics
// registry. Aborted rounds (listener death, too few devices) never
// reach it; they only bump fedsc_fednet_rounds_aborted_total.
func (s *Server) publish(stats ServeStats, elapsed time.Duration) {
	reg := s.reg()
	reg.Counter("fedsc_fednet_rounds_total", "Aggregation rounds that reached the reply phase.").Inc()
	reg.Counter("fedsc_fednet_uplink_bytes_total", "Gob-encoded upload bytes received, including aborted partial attempts.").Add(stats.UplinkBytes)
	reg.Counter("fedsc_fednet_uplink_payload_bits_total", "Section IV-E payload bits pooled (values x bits-per-value under the negotiated codec).").Add(stats.UplinkPayloadBits)
	reg.Counter("fedsc_fednet_downlink_bytes_total", "Gob-encoded bytes sent to devices (round hellos and replies).").Add(stats.DownlinkBytes)
	reg.Counter("fedsc_fednet_supersedes_total", "Uploads idempotently replaced by a newer attempt from the same device.").Add(int64(stats.Retries))
	reg.Counter("fedsc_fednet_upload_failures_total", "Connections whose upload was rejected, timed out, or superseded.").Add(int64(len(stats.Failures)))
	reg.Histogram("fedsc_fednet_round_devices", "Distinct devices pooled per round.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}).Observe(float64(stats.Devices))
	reg.Histogram("fedsc_fednet_round_samples", "Samples pooled per round.",
		[]float64{1, 4, 16, 64, 256, 1024, 4096}).Observe(float64(stats.Samples))
	reg.Histogram("fedsc_fednet_round_seconds", "Wall time of a full aggregation round.",
		[]float64{0.001, 0.01, 0.1, 1, 10, 60}).Observe(elapsed.Seconds())
}

// ServeConns is Serve for pre-established connections (e.g. net.Pipe in
// tests or in-process deployments); it behaves identically but skips the
// listener.
func (s *Server) ServeConns(conns []net.Conn) (ServeStats, error) {
	ln := &staticListener{conns: conns}
	saved := s.Expect
	if s.Expect == 0 {
		s.Expect = len(conns)
	}
	stats, err := s.Serve(ln)
	s.Expect = saved
	return stats, err
}

// staticListener hands out a fixed set of connections.
type staticListener struct {
	mu    sync.Mutex
	conns []net.Conn
}

func (l *staticListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.conns) == 0 {
		return nil, io.EOF
	}
	c := l.conns[0]
	l.conns = l.conns[1:]
	return c, nil
}

func (l *staticListener) Close() error { return nil }

func (l *staticListener) Addr() net.Addr { return staticAddr{} }

type staticAddr struct{}

func (staticAddr) Network() string { return "static" }
func (staticAddr) String() string  { return "static" }
