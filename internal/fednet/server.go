package fednet

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"fedsc/internal/core"
	"fedsc/internal/mat"
)

// Server aggregates one-shot Fed-SC uploads and answers each client with
// its sample assignments.
type Server struct {
	// L is the number of global clusters.
	L int
	// Expect is the number of client devices that will connect; the
	// central clustering runs once all of them have uploaded.
	Expect int
	// Central configures the Phase 2 algorithm (SSC by default).
	Central core.CentralOptions
	// Seed makes the server-side clustering deterministic.
	Seed int64
	// WaitTimeout, when positive, makes the round straggler-tolerant:
	// the timer starts at the first accepted connection, and when it
	// fires the server proceeds with the devices that have connected so
	// far (at least MinClients) instead of blocking on absent devices —
	// a one-shot scheme cannot wait forever for a phone that went
	// offline. Zero keeps the strict wait-for-all behaviour.
	WaitTimeout time.Duration
	// MinClients is the minimum number of devices required to run the
	// round when WaitTimeout fires (default 1).
	MinClients int
	// Export, when set, builds a serving artifact (core.Model: the
	// per-global-cluster subspace bases estimated from the pooled
	// samples) after the central clustering and returns it in
	// ServeStats.Model — the bridge from a one-shot round to the
	// inference tier (internal/serve).
	Export bool
	// ExportDim forces the per-cluster basis dimension of the exported
	// model (the paper's d_t shortcut); zero estimates it per cluster.
	ExportDim int
}

// ServeStats summarizes one completed aggregation round.
type ServeStats struct {
	// UplinkBytes is the gob-encoded uplink volume actually received.
	UplinkBytes int64
	// Samples is the total number of samples pooled at the server.
	Samples int
	// Devices is the number of devices that joined the round (may be
	// fewer than Server.Expect in straggler-tolerant mode).
	Devices int
	// Failures describes devices whose upload was rejected or timed out;
	// only populated in straggler-tolerant mode, where they do not fail
	// the round.
	Failures []string
	// Model is the serving artifact built from the round; only set when
	// Server.Export is enabled and at least one sample was pooled.
	Model *core.Model
}

// Serve accepts exactly s.Expect client connections on ln, collects their
// uploads, runs the central clustering, and replies to every client with
// its assignment slice. It returns after all replies are written. The
// listener is not closed. Serve is a single aggregation round, matching
// the one-shot nature of the scheme.
func (s *Server) Serve(ln net.Listener) (ServeStats, error) {
	if s.Expect <= 0 {
		return ServeStats{}, fmt.Errorf("fednet: server expects a positive client count, got %d", s.Expect)
	}
	type clientState struct {
		conn   net.Conn
		enc    *gob.Encoder
		upload SampleUpload
		err    error
		// deadlineErr is written only by the collect loop (the decode
		// goroutine owns err until wg.Wait); the two are merged after the
		// barrier so recording a rejected SetReadDeadline never races the
		// in-flight decode.
		deadlineErr error
	}
	var clients []*clientState
	var wg sync.WaitGroup
	counter := &countingWriter{}
	// Accept in a separate goroutine so the straggler timeout can cut the
	// wait short; once the round proceeds, late connections are refused.
	accepted := make(chan net.Conn)
	acceptErr := make(chan error, 1)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case acceptErr <- err:
				case <-done:
				}
				return
			}
			select {
			case accepted <- conn:
			case <-done:
				// The round is over; a Close error on a refused late
				// connection has no one left to report to.
				_ = conn.Close()
				return
			}
		}
	}()
	var timeout <-chan time.Time
	abort := func() {
		for _, c := range clients {
			// Aborting the round: the devices see the broken pipe; their
			// Close errors carry no additional signal.
			_ = c.conn.Close()
		}
	}
collect:
	for len(clients) < s.Expect {
		select {
		case conn := <-accepted:
			c := &clientState{conn: conn}
			// Strict mode waits for every device by design; make that
			// unbounded read an explicit deadline decision (clearing it)
			// so the wire contract is machine-checkable, and surface
			// transports that reject deadlines — they can never be
			// bounded by the straggler grace period either.
			if err := conn.SetReadDeadline(time.Time{}); err != nil {
				c.deadlineErr = fmt.Errorf("fednet: set read deadline: %w", err)
			}
			c.enc = gob.NewEncoder(conn)
			clients = append(clients, c)
			wg.Add(1)
			go func() {
				defer wg.Done()
				cr := &countingReader{r: conn, counter: counter}
				dec := gob.NewDecoder(cr)
				if err := dec.Decode(&c.upload); err != nil {
					c.err = fmt.Errorf("fednet: decode upload: %w", err)
					return
				}
				c.err = c.upload.Validate()
			}()
			if s.WaitTimeout > 0 && timeout == nil {
				timeout = time.After(s.WaitTimeout)
			}
		case err := <-acceptErr:
			abort()
			return ServeStats{}, fmt.Errorf("fednet: accept: %w", err)
		case <-timeout:
			min := s.MinClients
			if min <= 0 {
				min = 1
			}
			if len(clients) < min {
				abort()
				return ServeStats{}, fmt.Errorf("fednet: only %d of minimum %d devices connected before the straggler timeout", len(clients), min)
			}
			// Give in-flight uploads a bounded grace period so a stalled
			// device cannot hold the round hostage.
			deadline := time.Now().Add(s.WaitTimeout)
			for _, c := range clients {
				if err := c.conn.SetReadDeadline(deadline); err != nil {
					c.deadlineErr = fmt.Errorf("fednet: set read deadline: %w", err)
				}
			}
			break collect
		}
	}
	wg.Wait()
	// A transport that rejects deadlines cannot be bounded by the grace
	// period; surface that as a per-device failure rather than dropping
	// it silently.
	for _, c := range clients {
		if c.err == nil && c.deadlineErr != nil {
			c.err = c.deadlineErr
		}
	}
	// Pool the valid uploads; reject invalid clients explicitly.
	var parts []*mat.Dense
	offsets := make([]int, len(clients))
	total := 0
	ambient := -1
	for i, c := range clients {
		offsets[i] = total
		if c.err != nil {
			continue
		}
		if ambient < 0 && c.upload.Cols > 0 {
			ambient = c.upload.Rows
		}
		if c.upload.Cols > 0 && c.upload.Rows != ambient {
			c.err = fmt.Errorf("fednet: ambient dimension %d differs from %d", c.upload.Rows, ambient)
			continue
		}
		m := mat.NewDenseData(c.upload.Rows, c.upload.Cols, c.upload.Data)
		parts = append(parts, m)
		total += c.upload.Cols
	}
	var labels []int
	var exported *core.Model
	if total > 0 {
		theta := mat.HStack(parts...)
		rng := rand.New(rand.NewSource(s.Seed))
		// The TSC neighbor rule q = max(3, ⌈Z/L⌉) must see the number of
		// devices that actually contributed samples — in straggler-
		// tolerant mode that can be fewer than Expect.
		res := core.CentralCluster(theta, len(parts), s.L, s.Central, rng)
		labels = res.Labels
		if s.Export {
			method := s.Central.Method
			if method == "" {
				method = core.CentralSSC
			}
			m, err := core.BuildModel(theta, labels, s.L, s.ExportDim, method)
			if err != nil {
				abort()
				return ServeStats{}, fmt.Errorf("fednet: export model: %w", err)
			}
			exported = m
		}
	}
	// Reply to every client and close the connections.
	for i, c := range clients {
		reply := AssignmentReply{}
		if c.err != nil {
			reply.Err = c.err.Error()
		} else {
			reply.Assignments = labels[offsets[i] : offsets[i]+c.upload.Cols]
		}
		if err := c.enc.Encode(reply); err != nil && c.err == nil {
			c.err = fmt.Errorf("fednet: reply to device %d: %w", c.upload.DeviceID, err)
		}
		if err := c.conn.Close(); err != nil && c.err == nil {
			c.err = fmt.Errorf("fednet: close device %d: %w", c.upload.DeviceID, err)
		}
	}
	stats := ServeStats{UplinkBytes: counter.total(), Samples: total, Devices: len(clients), Model: exported}
	valid := 0
	for _, c := range clients {
		if c.err == nil {
			valid++
		} else {
			stats.Failures = append(stats.Failures,
				fmt.Sprintf("device %d: %v", c.upload.DeviceID, c.err))
		}
	}
	if s.WaitTimeout > 0 {
		// Straggler-tolerant mode: the round succeeds as long as enough
		// devices made it; individual failures are reported in stats.
		min := s.MinClients
		if min <= 0 {
			min = 1
		}
		if valid < min {
			return stats, fmt.Errorf("fednet: only %d of minimum %d devices uploaded successfully", valid, min)
		}
		return stats, nil
	}
	for _, c := range clients {
		if c.err != nil {
			return stats, fmt.Errorf("fednet: device %d failed: %w", c.upload.DeviceID, c.err)
		}
	}
	return stats, nil
}

// ServeConns is Serve for pre-established connections (e.g. net.Pipe in
// tests or in-process deployments); it behaves identically but skips the
// listener.
func (s *Server) ServeConns(conns []net.Conn) (ServeStats, error) {
	ln := &staticListener{conns: conns}
	saved := s.Expect
	if s.Expect == 0 {
		s.Expect = len(conns)
	}
	stats, err := s.Serve(ln)
	s.Expect = saved
	return stats, err
}

// staticListener hands out a fixed set of connections.
type staticListener struct {
	mu    sync.Mutex
	conns []net.Conn
}

func (l *staticListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.conns) == 0 {
		return nil, io.EOF
	}
	c := l.conns[0]
	l.conns = l.conns[1:]
	return c, nil
}

func (l *staticListener) Close() error { return nil }

func (l *staticListener) Addr() net.Addr { return staticAddr{} }

type staticAddr struct{}

func (staticAddr) Network() string { return "static" }
func (staticAddr) String() string  { return "static" }

// countingReader counts bytes flowing through a reader.
type countingReader struct {
	r       io.Reader
	counter *countingWriter
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.counter.add(n)
	return n, err
}
