package fednet

import (
	"encoding/gob"
	"math"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"

	"fedsc/internal/core"
	"fedsc/internal/mat"
	"fedsc/internal/metrics"
	"fedsc/internal/privacy"
)

// runWireRound is runRound over pipes with an explicit wire
// configuration shared by every client.
func runWireRound(t *testing.T, devices []*mat.Dense, l int, srv *Server, wire WireOptions) ([][]int, ServeStats) {
	t.Helper()
	z := len(devices)
	serverConns := make([]net.Conn, z)
	results := make([]ClientResult, z)
	errs := make([]error, z)
	var cw sync.WaitGroup
	for dev := range devices {
		sc, cc := net.Pipe()
		serverConns[dev] = sc
		cw.Add(1)
		go func(dev int, conn net.Conn) {
			defer cw.Done()
			dial := func() (net.Conn, error) { return conn, nil }
			rng := rand.New(rand.NewSource(int64(1000 + dev)))
			results[dev], errs[dev] = RunClientDialerWire(dial, dev, devices[dev],
				core.LocalOptions{UseEigengap: true}, RetryPolicy{}, wire, rng)
		}(dev, cc)
	}
	stats, serveErr := srv.ServeConns(serverConns)
	cw.Wait()
	if serveErr != nil {
		t.Fatalf("server: %v", serveErr)
	}
	labels := make([][]int, z)
	for dev, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", dev, err)
		}
		labels[dev] = results[dev].Labels
	}
	return labels, stats
}

// TestQuantizedRoundMatchesInProcessQuantizer is the Section IV-E
// cross-check: a networked round whose uploads travel quantized must
// (a) pool exactly the matrix privacy.Quantizer.Apply would produce in
// process, so the labels match the in-process quantized scheme, and
// (b) report a payload volume that agrees bit for bit with the
// n·q·Σr⁽ᶻ⁾ accounting core computes for the same settings.
func TestQuantizedRoundMatchesInProcessQuantizer(t *testing.T) {
	const l, bits = 4, 8
	devices, _ := fedDevices(20, 3, l, 12, 2, 8, 170)
	q := privacy.Quantizer{Bits: bits}
	srv := &Server{L: l, Expect: len(devices), Seed: 99}
	netLabels, stats := runWireRound(t, devices, l, srv, WireOptions{Quant: &q})

	locals := make([]core.LocalResult, len(devices))
	for dev := range devices {
		rng := rand.New(rand.NewSource(int64(1000 + dev)))
		locals[dev] = core.LocalClusterAndSample(devices[dev], core.LocalOptions{UseEigengap: true}, rng)
		if _, err := q.Apply(locals[dev].Samples); err != nil {
			t.Fatalf("quantize local %d: %v", dev, err)
		}
	}
	res := core.Aggregate(devices, locals, l, core.Options{QuantBits: bits}, rand.New(rand.NewSource(99)))
	a := core.FlattenLabels(netLabels)
	b := core.FlattenLabels(res.Labels)
	if metrics.Accuracy(a, b) != 100 {
		t.Fatal("quantized network round and in-process quantized scheme disagree on the partition")
	}
	if stats.UplinkPayloadBits != res.UplinkBits {
		t.Fatalf("fednet payload accounting %d bits, core says %d", stats.UplinkPayloadBits, res.UplinkBits)
	}
	if stats.UplinkPayloadBits <= 0 {
		t.Fatal("no payload bits accounted")
	}
}

// TestQuantizedWireShrinksUplink pins the acceptance claim: at equal
// accuracy, the quantized wire measurably shrinks the gob-encoded
// uplink volume versus float64 passthrough.
func TestQuantizedWireShrinksUplink(t *testing.T) {
	const l = 4
	devices, truth := fedDevices(20, 3, l, 12, 2, 8, 171)
	q := privacy.Quantizer{Bits: 8}
	quantLabels, quantStats := runWireRound(t, devices, l,
		&Server{L: l, Expect: len(devices), Seed: 99}, WireOptions{Quant: &q})
	floatLabels, floatStats := runWireRound(t, devices, l,
		&Server{L: l, Expect: len(devices), Seed: 99}, WireOptions{})

	flat := core.FlattenLabels(truth)
	accQ := metrics.Accuracy(flat, core.FlattenLabels(quantLabels))
	accF := metrics.Accuracy(flat, core.FlattenLabels(floatLabels))
	if accF < 95 {
		t.Fatalf("float64 baseline accuracy %.1f%%", accF)
	}
	if accQ < accF {
		t.Fatalf("quantized accuracy %.1f%% below float64 %.1f%%", accQ, accF)
	}
	// 8 of 64 bits per value: the payload shrinks 8x; even with gob
	// framing on top the total uplink must drop by at least half.
	if quantStats.UplinkBytes*2 >= floatStats.UplinkBytes {
		t.Fatalf("quantized uplink %d bytes does not measurably undercut float64 %d",
			quantStats.UplinkBytes, floatStats.UplinkBytes)
	}
	if quantStats.UplinkPayloadBits*8 != floatStats.UplinkPayloadBits {
		t.Fatalf("payload accounting: quant %d bits, float64 %d bits (want exactly 8x)",
			quantStats.UplinkPayloadBits, floatStats.UplinkPayloadBits)
	}
}

func TestUploadValidateQuantCodec(t *testing.T) {
	q := privacy.Quantizer{Bits: 6}
	vals := make([]float64, 12)
	for i := range vals {
		vals[i] = float64(i%5)/5 - 0.4
	}
	packed, err := q.Pack(vals)
	if err != nil {
		t.Fatal(err)
	}
	good := SampleUpload{Rows: 3, Cols: 4, Codec: CodecQuant,
		Quant: &QuantPayload{Bits: 6, Packed: packed}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid quant upload rejected: %v", err)
	}
	decoded, err := good.Samples()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if decoded[i] != q.Roundtrip(v) {
			t.Fatalf("decoded[%d] = %v, want cell center %v", i, decoded[i], q.Roundtrip(v))
		}
	}
	if bits := good.PayloadBits(); bits != 12*6 {
		t.Fatalf("quant PayloadBits %d, want %d", bits, 12*6)
	}
	raw := SampleUpload{Rows: 3, Cols: 4, Data: make([]float64, 12)}
	if bits := raw.PayloadBits(); bits != 12*64 {
		t.Fatalf("float64 PayloadBits %d, want %d", bits, 12*64)
	}

	for name, bad := range map[string]SampleUpload{
		"missing payload": {Rows: 3, Cols: 4, Codec: CodecQuant},
		"short payload": {Rows: 3, Cols: 4, Codec: CodecQuant,
			Quant: &QuantPayload{Bits: 6, Packed: packed[:len(packed)-1]}},
		"raw values alongside": {Rows: 3, Cols: 4, Codec: CodecQuant, Data: vals,
			Quant: &QuantPayload{Bits: 6, Packed: packed}},
		"invalid bits": {Rows: 3, Cols: 4, Codec: CodecQuant,
			Quant: &QuantPayload{Bits: 0, Packed: packed}},
		"non-finite range": {Rows: 3, Cols: 4, Codec: CodecQuant,
			Quant: &QuantPayload{Bits: 6, Max: math.Inf(1), Packed: packed}},
		"quant payload on float64": {Rows: 3, Cols: 4, Data: vals,
			Quant: &QuantPayload{Bits: 6, Packed: packed}},
		"unknown codec": {Rows: 3, Cols: 4, Codec: "zstd", Data: vals},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

// TestServerRejectsUnadvertisedCodec: a float64-only server must
// reject a quantized upload (codec police), while a wire-configured
// client talking to it silently falls back to passthrough.
func TestServerRejectsUnadvertisedCodec(t *testing.T) {
	q := privacy.Quantizer{Bits: 8}
	devices, _ := fedDevices(20, 3, 4, 4, 2, 8, 172)
	srv := &Server{L: 4, Expect: 4, Seed: 99, Codecs: []WireCodec{CodecFloat64}}
	_, stats := runWireRound(t, devices, 4, srv, WireOptions{Quant: &q})
	// Fallback happened: every pooled value crossed at 64 bits.
	if want := int64(stats.Samples) * 20 * 64; stats.UplinkPayloadBits != want {
		t.Fatalf("fallback round payload %d bits, want %d", stats.UplinkPayloadBits, want)
	}

	// A client that ignores the advertisement gets rejected.
	sc, cc := net.Pipe()
	one := &Server{L: 4, Expect: 1, Seed: 99, Codecs: []WireCodec{CodecFloat64}}
	done := make(chan error, 1)
	go func() {
		_, err := one.ServeConns([]net.Conn{sc})
		done <- err
	}()
	dec := gob.NewDecoder(cc)
	var hello RoundHello
	if err := dec.Decode(&hello); err != nil {
		t.Fatalf("decode hello: %v", err)
	}
	vals := []float64{0.1, 0.2}
	packed, err := q.Pack(vals)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		gob.NewEncoder(cc).Encode(SampleUpload{
			DeviceID: 9, Nonce: hello.Nonce, Attempt: 1, Rows: 2, Cols: 1,
			Codec: CodecQuant, Quant: &QuantPayload{Bits: 8, Packed: packed},
		})
	}()
	var reply AssignmentReply
	if err := dec.Decode(&reply); err != nil {
		t.Fatalf("decode reply: %v", err)
	}
	if !strings.Contains(reply.Err, "unadvertised codec") {
		t.Fatalf("want codec rejection, got %q", reply.Err)
	}
	<-done
}
