package fednet

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"time"

	"fedsc/internal/core"
	"fedsc/internal/mat"
)

// IOTimeout bounds each network operation of the client protocol: the
// upload write and the reply read each get this budget. The reply wait
// covers the server-side central clustering, so the default is
// generous. Non-positive means no deadline — the pre-deadline
// behaviour, which risks blocking forever on a hung server.
var IOTimeout = 2 * time.Minute

// ioDeadline converts IOTimeout into an absolute deadline; the zero
// time explicitly clears any previous deadline.
func ioDeadline() time.Time {
	if IOTimeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(IOTimeout)
}

// ClientResult is the outcome of one device's participation in a round.
type ClientResult struct {
	// Labels is the global cluster of each local point.
	Labels []int
	// R is the number of local clusters the device found.
	R int
	// SampleAssignments are the server labels of the uploaded samples.
	SampleAssignments []int
}

// RunClient executes the full client side of the protocol on an
// established connection: Phase 1 locally on x (columns = points), one
// uplink message, one downlink message, Phase 3 locally. The connection
// is closed before returning.
func RunClient(conn net.Conn, deviceID int, x *mat.Dense, local core.LocalOptions, rng *rand.Rand) (ClientResult, error) {
	// The protocol is one-shot: a Close error after a complete exchange
	// changes nothing the client can act on.
	defer func() { _ = conn.Close() }()
	lr := core.LocalClusterAndSample(x, local, rng)
	rows, cols := lr.Samples.Dims()
	upload := SampleUpload{
		DeviceID: deviceID,
		Rows:     rows,
		Cols:     cols,
		Data:     lr.Samples.Data(),
	}
	if err := conn.SetWriteDeadline(ioDeadline()); err != nil {
		return ClientResult{}, fmt.Errorf("fednet: device %d set write deadline: %w", deviceID, err)
	}
	if err := gob.NewEncoder(conn).Encode(upload); err != nil {
		return ClientResult{}, fmt.Errorf("fednet: device %d upload: %w", deviceID, err)
	}
	if err := conn.SetReadDeadline(ioDeadline()); err != nil {
		return ClientResult{}, fmt.Errorf("fednet: device %d set read deadline: %w", deviceID, err)
	}
	var reply AssignmentReply
	if err := gob.NewDecoder(conn).Decode(&reply); err != nil {
		return ClientResult{}, fmt.Errorf("fednet: device %d reply: %w", deviceID, err)
	}
	if reply.Err != "" {
		return ClientResult{}, fmt.Errorf("fednet: device %d rejected by server: %s", deviceID, reply.Err)
	}
	if len(reply.Assignments) != cols {
		return ClientResult{}, fmt.Errorf("fednet: device %d got %d assignments for %d samples",
			deviceID, len(reply.Assignments), cols)
	}
	// Phase 3: local update. With SamplesPerCluster > 1 the local
	// cluster's label is the majority vote over its samples.
	spc := local.SamplesPerCluster
	if spc <= 0 {
		spc = 1
	}
	labels := make([]int, x.Cols())
	sampleLabels := make([]int, lr.R())
	for t, idx := range lr.Partitions {
		votes := map[int]int{}
		for s := 0; s < spc; s++ {
			votes[reply.Assignments[t*spc+s]]++
		}
		best, bestN := 0, -1
		for lab, n := range votes {
			// Lowest label wins ties so the majority vote never depends
			// on map iteration order.
			if n > bestN || (n == bestN && lab < best) {
				best, bestN = lab, n
			}
		}
		sampleLabels[t] = best
		for _, i := range idx {
			labels[i] = best
		}
	}
	return ClientResult{Labels: labels, R: lr.R(), SampleAssignments: sampleLabels}, nil
}

// DialAndRun connects to addr over TCP and runs the client protocol.
func DialAndRun(addr string, deviceID int, x *mat.Dense, local core.LocalOptions, rng *rand.Rand) (ClientResult, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return ClientResult{}, fmt.Errorf("fednet: dial %s: %w", addr, err)
	}
	return RunClient(conn, deviceID, x, local, rng)
}
