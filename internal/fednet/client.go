package fednet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"fedsc/internal/core"
	"fedsc/internal/mat"
	"fedsc/internal/obs"
)

// IOTimeout bounds each network operation of the client protocol: the
// hello read, the upload write, and the reply read each get this
// budget. The reply wait covers the server-side central clustering, so
// the default is generous. Non-positive means no deadline — the
// pre-deadline behaviour, which risks blocking forever on a hung
// server. RetryPolicy.Timeout overrides it per attempt.
var IOTimeout = 2 * time.Minute

// ClientResult is the outcome of one device's participation in a round.
type ClientResult struct {
	// Labels is the global cluster of each local point.
	Labels []int
	// R is the number of local clusters the device found.
	R int
	// SampleAssignments are the server labels of the uploaded samples.
	SampleAssignments []int
	// Attempts is how many connection attempts the exchange took (1 for
	// a fault-free link).
	Attempts int
}

// rejectionError marks a server-side rejection: the server answered,
// so retrying the identical upload cannot succeed.
type rejectionError struct{ msg string }

func (e rejectionError) Error() string { return e.msg }

// RetryPolicy governs the client's fault tolerance: a failed exchange
// is retried on a fresh connection with capped exponential backoff and
// seeded jitter. The zero value performs a single attempt — the
// pre-retry behaviour.
type RetryPolicy struct {
	// MaxAttempts is the total number of connection attempts
	// (including the first); values below 1 mean 1.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it. Zero defaults to 50ms when retries are on.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero defaults to 2s.
	MaxDelay time.Duration
	// Jitter widens each backoff multiplicatively by a seeded uniform
	// draw in [1-Jitter, 1+Jitter], desynchronizing a fleet of devices
	// that all lost the same server. Values outside [0, 1] are clamped.
	Jitter float64
	// Timeout bounds each point-to-point operation of an attempt (the
	// hello read and the upload write); zero falls back to the
	// package-level IOTimeout.
	Timeout time.Duration
	// ReplyTimeout bounds the final read separately: the reply arrives
	// only once the server has collected every expected device, so this
	// wait spans the whole straggler window plus the central clustering
	// — far longer than a point-to-point exchange. A Timeout-sized
	// reply budget would make every punctual device abandon its live
	// connection the moment one slow peer exhausts that same Timeout.
	// Zero falls back to Timeout, then IOTimeout.
	ReplyTimeout time.Duration
}

// DefaultRetryPolicy is the recommended client tolerance: four
// attempts, 50ms base backoff doubling to at most 2s, ±30% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.3}
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the sleep before attempt (1-based count of failures
// so far): BaseDelay·2^(attempt-1), capped at MaxDelay, scaled by the
// seeded jitter draw. The draw is consumed even when the delay is
// zero, so the rng stream does not depend on fault timing.
func (p RetryPolicy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	jitter := p.Jitter
	if jitter < 0 {
		jitter = 0
	}
	if jitter > 1 {
		jitter = 1
	}
	scale := 1.0
	if jitter > 0 {
		scale = 1 + jitter*(2*rng.Float64()-1)
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << uint(attempt-1)
	if d > max || d <= 0 {
		d = max
	}
	return time.Duration(float64(d) * scale)
}

// ioDeadline converts a per-operation budget into an absolute
// deadline; the zero time explicitly clears any previous deadline.
func (p RetryPolicy) ioDeadline() time.Time {
	t := p.Timeout
	if t == 0 {
		t = IOTimeout
	}
	if t <= 0 {
		return time.Time{}
	}
	return time.Now().Add(t)
}

// replyDeadline is ioDeadline for the round-spanning reply wait.
func (p RetryPolicy) replyDeadline() time.Time {
	t := p.ReplyTimeout
	if t == 0 {
		t = p.Timeout
	}
	if t == 0 {
		t = IOTimeout
	}
	if t <= 0 {
		return time.Time{}
	}
	return time.Now().Add(t)
}

// exchange runs one wire exchange — hello, upload (echoing the hello's
// round nonce, encoded with the codec negotiated from the hello's
// advertisement), reply — on an established connection and closes it.
func exchange(conn net.Conn, deviceID int, upload SampleUpload, wire WireOptions, policy RetryPolicy) (AssignmentReply, error) {
	// The protocol is one-shot: a Close error after a complete exchange
	// changes nothing the client can act on.
	defer func() { _ = conn.Close() }()
	if err := conn.SetReadDeadline(policy.ioDeadline()); err != nil {
		return AssignmentReply{}, fmt.Errorf("fednet: device %d set read deadline: %w", deviceID, err)
	}
	var hello RoundHello
	if err := gob.NewDecoder(conn).Decode(&hello); err != nil {
		return AssignmentReply{}, fmt.Errorf("fednet: device %d round hello: %w", deviceID, err)
	}
	upload.Nonce = hello.Nonce
	upload, err := encodeWire(upload, wire, hello.Codecs)
	if err != nil {
		return AssignmentReply{}, err
	}
	if err := conn.SetWriteDeadline(policy.ioDeadline()); err != nil {
		return AssignmentReply{}, fmt.Errorf("fednet: device %d set write deadline: %w", deviceID, err)
	}
	if err := gob.NewEncoder(conn).Encode(upload); err != nil {
		return AssignmentReply{}, fmt.Errorf("fednet: device %d upload: %w", deviceID, err)
	}
	if err := conn.SetReadDeadline(policy.replyDeadline()); err != nil {
		return AssignmentReply{}, fmt.Errorf("fednet: device %d set read deadline: %w", deviceID, err)
	}
	var reply AssignmentReply
	if err := gob.NewDecoder(conn).Decode(&reply); err != nil {
		return AssignmentReply{}, fmt.Errorf("fednet: device %d reply: %w", deviceID, err)
	}
	if reply.Err != "" {
		return AssignmentReply{}, rejectionError{msg: fmt.Sprintf("fednet: device %d rejected by server: %s", deviceID, reply.Err)}
	}
	return reply, nil
}

// RunClientDialer executes the full client side of the protocol with
// fault tolerance: Phase 1 runs locally on x exactly once (so every
// attempt re-uploads the identical samples and the server's dedup
// replacement is idempotent), then each attempt dials a fresh
// connection and performs the wire exchange, backing off between
// failures per the policy. Phase 3 runs locally on the first
// successful reply. Uploads travel as float64 passthrough; see
// RunClientDialerWire for the quantized wire.
func RunClientDialer(dial func() (net.Conn, error), deviceID int, x *mat.Dense, local core.LocalOptions, policy RetryPolicy, rng *rand.Rand) (ClientResult, error) {
	return RunClientDialerWire(dial, deviceID, x, local, policy, WireOptions{}, rng)
}

// RunClientDialerWire is RunClientDialer with an explicit wire
// configuration: with WireOptions.Quant set, every attempt re-packs
// the identical Phase 1 samples with the stateless quantizer whenever
// the server's hello advertises CodecQuant, so retried and duplicated
// uploads stay byte-identical and dedup-idempotent while the uplink
// carries Bits (not 64) bits per value.
func RunClientDialerWire(dial func() (net.Conn, error), deviceID int, x *mat.Dense, local core.LocalOptions, policy RetryPolicy, wire WireOptions, rng *rand.Rand) (ClientResult, error) {
	lr := core.LocalClusterAndSample(x, local, rng)
	rows, cols := lr.Samples.Dims()
	upload := SampleUpload{
		DeviceID: deviceID,
		Rows:     rows,
		Cols:     cols,
		Data:     lr.Samples.Data(),
	}
	// Instruments are registered once, outside the retry loop: the
	// registry lookup takes a mutex, and the hot path of a retry storm
	// must not serialize on it per attempt (metrichygiene).
	reg := obs.Default()
	retriesC := reg.Counter("fedsc_fednet_client_retries_total", "Client exchange attempts beyond the first.")
	attemptsC := reg.Counter("fedsc_fednet_client_attempts_total", "Client connection attempts, including retries.")
	dialErrsC := reg.Counter("fedsc_fednet_client_dial_errors_total", "Client dial attempts that failed before the exchange.")
	rejectionsC := reg.Counter("fedsc_fednet_client_rejections_total", "Uploads the server answered with a rejection.")
	exchangeErrsC := reg.Counter("fedsc_fednet_client_exchange_errors_total", "Exchanges that died mid-wire (reset, timeout, decode failure).")
	roundsC := reg.Counter("fedsc_fednet_client_rounds_total", "Client round participations that completed Phase 3.")
	var lastErr error
	for attempt := 1; attempt <= policy.attempts(); attempt++ {
		if attempt > 1 {
			retriesC.Inc()
			time.Sleep(policy.Backoff(attempt-1, rng))
		}
		attemptsC.Inc()
		upload.Attempt = attempt
		conn, err := dial()
		if err != nil {
			dialErrsC.Inc()
			lastErr = fmt.Errorf("fednet: device %d dial: %w", deviceID, err)
			continue
		}
		reply, err := exchange(conn, deviceID, upload, wire, policy)
		if err != nil {
			lastErr = err
			var rejected rejectionError
			if errors.As(err, &rejected) {
				// The server saw the upload and said no; the identical
				// payload cannot fare better on a retry.
				rejectionsC.Inc()
				break
			}
			exchangeErrsC.Inc()
			continue
		}
		if len(reply.Assignments) != cols {
			return ClientResult{}, fmt.Errorf("fednet: device %d got %d assignments for %d samples",
				deviceID, len(reply.Assignments), cols)
		}
		roundsC.Inc()
		res := applyPhase3(x, local, lr, reply.Assignments)
		res.Attempts = attempt
		return res, nil
	}
	reg.Counter("fedsc_fednet_client_gaveups_total", "Client participations abandoned after exhausting the retry budget.").Inc()
	return ClientResult{}, fmt.Errorf("fednet: device %d gave up after %d attempts: %w", deviceID, policy.attempts(), lastErr)
}

// applyPhase3 is the local update: with SamplesPerCluster > 1 the
// local cluster's label is the majority vote over its samples.
func applyPhase3(x *mat.Dense, local core.LocalOptions, lr core.LocalResult, assignments []int) ClientResult {
	spc := local.SamplesPerCluster
	if spc <= 0 {
		spc = 1
	}
	labels := make([]int, x.Cols())
	sampleLabels := make([]int, lr.R())
	for t, idx := range lr.Partitions {
		votes := map[int]int{}
		for s := 0; s < spc; s++ {
			votes[assignments[t*spc+s]]++
		}
		best, bestN := 0, -1
		for lab, n := range votes {
			// Lowest label wins ties so the majority vote never depends
			// on map iteration order.
			if n > bestN || (n == bestN && lab < best) {
				best, bestN = lab, n
			}
		}
		sampleLabels[t] = best
		for _, i := range idx {
			labels[i] = best
		}
	}
	return ClientResult{Labels: labels, R: lr.R(), SampleAssignments: sampleLabels}
}

// RunClientDuplicate participates like RunClientDialer but replays the
// identical upload on a second connection before reading any reply — a
// duplicate late connect, the adversarial counterpart of a retry. The
// server must pool the device exactly once; the superseded connection
// receives a rejection, which is drained concurrently so the server's
// reply pass can never block on an unread synchronous transport.
func RunClientDuplicate(dial func() (net.Conn, error), deviceID int, x *mat.Dense, local core.LocalOptions, policy RetryPolicy, rng *rand.Rand) (ClientResult, error) {
	return RunClientDuplicateWire(dial, deviceID, x, local, policy, WireOptions{}, rng)
}

// RunClientDuplicateWire is RunClientDuplicate under an explicit wire
// configuration; both the doomed first upload and the live second one
// negotiate their codec from their own connection's hello, so the
// duplicate carries the same quantized bytes as the original.
func RunClientDuplicateWire(dial func() (net.Conn, error), deviceID int, x *mat.Dense, local core.LocalOptions, policy RetryPolicy, wire WireOptions, rng *rand.Rand) (ClientResult, error) {
	lr := core.LocalClusterAndSample(x, local, rng)
	rows, cols := lr.Samples.Dims()
	upload := SampleUpload{DeviceID: deviceID, Rows: rows, Cols: cols, Data: lr.Samples.Data()}

	connA, err := dial()
	if err != nil {
		return ClientResult{}, fmt.Errorf("fednet: device %d dial: %w", deviceID, err)
	}
	if err := connA.SetReadDeadline(policy.ioDeadline()); err != nil {
		_ = connA.Close() // the dial is being abandoned
		return ClientResult{}, fmt.Errorf("fednet: device %d set read deadline: %w", deviceID, err)
	}
	var helloA RoundHello
	if err := gob.NewDecoder(connA).Decode(&helloA); err != nil {
		_ = connA.Close() // the exchange failed; nothing acts on the close error
		return ClientResult{}, fmt.Errorf("fednet: device %d round hello: %w", deviceID, err)
	}
	first := upload
	first.Nonce, first.Attempt = helloA.Nonce, 1
	first, err = encodeWire(first, wire, helloA.Codecs)
	if err != nil {
		_ = connA.Close() // the exchange failed; nothing acts on the close error
		return ClientResult{}, err
	}
	if err := connA.SetWriteDeadline(policy.ioDeadline()); err != nil {
		_ = connA.Close() // the exchange failed; nothing acts on the close error
		return ClientResult{}, fmt.Errorf("fednet: device %d set write deadline: %w", deviceID, err)
	}
	if err := gob.NewEncoder(connA).Encode(first); err != nil {
		_ = connA.Close() // the exchange failed; nothing acts on the close error
		return ClientResult{}, fmt.Errorf("fednet: device %d upload: %w", deviceID, err)
	}
	drained := make(chan struct{})
	go func() {
		// Drain the rejection the server will send here at round end;
		// its content is already known ("superseded") and irrelevant.
		defer close(drained)
		_ = connA.SetReadDeadline(policy.replyDeadline())
		var rejected AssignmentReply
		_ = gob.NewDecoder(connA).Decode(&rejected)
		_ = connA.Close()
	}()
	defer func() {
		// Termination proof for the drain: closing connA unblocks the
		// decode even under an unbounded reply deadline (the server's
		// write, if it lost the race, fails onto a conn already marked
		// superseded), and the receive joins the goroutine before the
		// function returns on any path.
		_ = connA.Close()
		<-drained
	}()

	second := upload
	second.Attempt = 2
	reply, err := func() (AssignmentReply, error) {
		connB, err := dial()
		if err != nil {
			return AssignmentReply{}, fmt.Errorf("fednet: device %d dial: %w", deviceID, err)
		}
		return exchange(connB, deviceID, second, wire, policy)
	}()
	if err != nil {
		return ClientResult{}, err
	}
	if len(reply.Assignments) != cols {
		return ClientResult{}, fmt.Errorf("fednet: device %d got %d assignments for %d samples",
			deviceID, len(reply.Assignments), cols)
	}
	res := applyPhase3(x, local, lr, reply.Assignments)
	res.Attempts = 2
	return res, nil
}

// RunClient executes the client protocol on an established connection
// in a single attempt; the connection is closed before returning. Use
// RunClientDialer for retry-capable participation.
func RunClient(conn net.Conn, deviceID int, x *mat.Dense, local core.LocalOptions, rng *rand.Rand) (ClientResult, error) {
	used := false
	dial := func() (net.Conn, error) {
		if used {
			return nil, errors.New("fednet: single-connection client cannot redial")
		}
		used = true
		return conn, nil
	}
	return RunClientDialer(dial, deviceID, x, local, RetryPolicy{}, rng)
}

// DialAndRun connects to addr over TCP and runs the client protocol in
// a single attempt.
func DialAndRun(addr string, deviceID int, x *mat.Dense, local core.LocalOptions, rng *rand.Rand) (ClientResult, error) {
	return DialAndRunRetry(addr, deviceID, x, local, RetryPolicy{}, rng)
}

// DialAndRunRetry connects to addr over TCP and runs the client
// protocol under the given retry policy, dialing a fresh connection
// per attempt.
func DialAndRunRetry(addr string, deviceID int, x *mat.Dense, local core.LocalOptions, policy RetryPolicy, rng *rand.Rand) (ClientResult, error) {
	dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
	return RunClientDialer(dial, deviceID, x, local, policy, rng)
}
