package fednet

import (
	"encoding/gob"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fedsc/internal/core"
	"fedsc/internal/mat"
	"fedsc/internal/metrics"
	"fedsc/internal/synth"
)

// fedDevices builds Z devices with L' of L subspaces each (clean data).
func fedDevices(n, d, l, z, lPrime, perCluster int, seed int64) ([]*mat.Dense, [][]int) {
	rng := rand.New(rand.NewSource(seed))
	s := synth.RandomSubspaces(n, d, l, rng)
	devices := make([]*mat.Dense, z)
	truth := make([][]int, z)
	for dev := 0; dev < z; dev++ {
		clusters := rng.Perm(l)[:lPrime]
		counts := make([]int, l)
		for _, c := range clusters {
			counts[c] = perCluster
		}
		ds := s.SampleCounts(counts, rng)
		devices[dev] = ds.X
		truth[dev] = ds.Labels
	}
	return devices, truth
}

func runRound(t *testing.T, devices []*mat.Dense, l int, viaTCP bool) ([][]int, ServeStats) {
	t.Helper()
	z := len(devices)
	srv := &Server{L: l, Expect: z, Seed: 99}
	results := make([]ClientResult, z)
	errs := make([]error, z)
	var stats ServeStats
	var serveErr error
	var wg sync.WaitGroup

	if viaTCP {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		defer ln.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats, serveErr = srv.Serve(ln)
		}()
		addr := ln.Addr().String()
		var cw sync.WaitGroup
		for dev := range devices {
			cw.Add(1)
			go func(dev int) {
				defer cw.Done()
				rng := rand.New(rand.NewSource(int64(1000 + dev)))
				results[dev], errs[dev] = DialAndRun(addr, dev, devices[dev],
					core.LocalOptions{UseEigengap: true}, rng)
			}(dev)
		}
		cw.Wait()
	} else {
		serverConns := make([]net.Conn, z)
		var cw sync.WaitGroup
		for dev := range devices {
			sc, cc := net.Pipe()
			serverConns[dev] = sc
			cw.Add(1)
			go func(dev int, conn net.Conn) {
				defer cw.Done()
				rng := rand.New(rand.NewSource(int64(1000 + dev)))
				results[dev], errs[dev] = RunClient(conn, dev, devices[dev],
					core.LocalOptions{UseEigengap: true}, rng)
			}(dev, cc)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats, serveErr = srv.ServeConns(serverConns)
		}()
		cw.Wait()
	}
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("server: %v", serveErr)
	}
	labels := make([][]int, z)
	for dev, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", dev, err)
		}
		labels[dev] = results[dev].Labels
	}
	return labels, stats
}

func TestRoundOverPipes(t *testing.T) {
	devices, truth := fedDevices(20, 3, 4, 16, 2, 8, 160)
	labels, stats := runRound(t, devices, 4, false)
	acc := metrics.Accuracy(core.FlattenLabels(truth), core.FlattenLabels(labels))
	if acc < 95 {
		t.Fatalf("pipe-transport Fed-SC accuracy %.1f%%", acc)
	}
	if stats.Samples == 0 || stats.UplinkBytes == 0 {
		t.Fatalf("stats not collected: %+v", stats)
	}
}

func TestRoundOverTCP(t *testing.T) {
	devices, truth := fedDevices(20, 3, 4, 16, 2, 8, 161)
	labels, stats := runRound(t, devices, 4, true)
	acc := metrics.Accuracy(core.FlattenLabels(truth), core.FlattenLabels(labels))
	if acc < 95 {
		t.Fatalf("TCP-transport Fed-SC accuracy %.1f%%", acc)
	}
	// The uplink must carry at least the raw float payload of all samples.
	minBytes := int64(stats.Samples * 20 * 8)
	if stats.UplinkBytes < minBytes {
		t.Fatalf("uplink bytes %d below raw payload %d", stats.UplinkBytes, minBytes)
	}
}

func TestNetworkMatchesInProcessScheme(t *testing.T) {
	devices, _ := fedDevices(20, 3, 4, 12, 2, 8, 162)
	netLabels, _ := runRound(t, devices, 4, false)
	// The in-process scheme with the same per-device seeds and the same
	// server seed must produce the same partition.
	z := len(devices)
	locals := make([]core.LocalResult, z)
	for dev := range devices {
		rng := rand.New(rand.NewSource(int64(1000 + dev)))
		locals[dev] = core.LocalClusterAndSample(devices[dev], core.LocalOptions{UseEigengap: true}, rng)
	}
	res := core.Aggregate(devices, locals, 4, core.Options{}, rand.New(rand.NewSource(99)))
	a := core.FlattenLabels(netLabels)
	b := core.FlattenLabels(res.Labels)
	if metrics.Accuracy(a, b) != 100 {
		t.Fatal("network round and in-process scheme disagree on the partition")
	}
}

func TestUploadValidate(t *testing.T) {
	good := SampleUpload{Rows: 2, Cols: 3, Data: make([]float64, 6)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid upload rejected: %v", err)
	}
	bad := SampleUpload{Rows: 2, Cols: 3, Data: make([]float64, 5)}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched payload accepted")
	}
	neg := SampleUpload{Rows: -1, Cols: 3}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative dims accepted")
	}
}

func TestServerRejectsMalformedUpload(t *testing.T) {
	sc, cc := net.Pipe()
	srv := &Server{L: 2, Expect: 1, Seed: 1}
	done := make(chan error, 1)
	go func() {
		_, err := srv.ServeConns([]net.Conn{sc})
		done <- err
	}()
	// Send a malformed upload directly.
	go func() {
		gob.NewEncoder(cc).Encode(SampleUpload{DeviceID: 7, Rows: 3, Cols: 2, Data: []float64{1}})
	}()
	var reply AssignmentReply
	if err := gob.NewDecoder(cc).Decode(&reply); err != nil {
		t.Fatalf("decode reply: %v", err)
	}
	if reply.Err == "" {
		t.Fatal("server accepted malformed upload")
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "device 7") {
		t.Fatalf("server error should name the device: %v", err)
	}
}

func TestServerStragglerTimeoutProceedsWithSubset(t *testing.T) {
	// 20 devices expected, only 12 show up; the round must complete with
	// the 12 after the straggler timeout (still enough samples per
	// subspace for the central clustering).
	devices, truth := fedDevices(20, 3, 4, 12, 2, 10, 163)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	srv := &Server{L: 4, Expect: 20, Seed: 1, WaitTimeout: 300 * time.Millisecond, MinClients: 8}
	var stats ServeStats
	var serveErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats, serveErr = srv.Serve(ln)
	}()
	results := make([]ClientResult, len(devices))
	var cw sync.WaitGroup
	for dev := range devices {
		cw.Add(1)
		go func(dev int) {
			defer cw.Done()
			rng := rand.New(rand.NewSource(int64(300 + dev)))
			results[dev], _ = DialAndRun(ln.Addr().String(), dev, devices[dev],
				core.LocalOptions{UseEigengap: true}, rng)
		}(dev)
	}
	cw.Wait()
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("straggler round failed: %v", serveErr)
	}
	if stats.Devices != 12 {
		t.Fatalf("round ran with %d devices, want 12", stats.Devices)
	}
	labels := make([][]int, len(devices))
	for dev := range results {
		labels[dev] = results[dev].Labels
	}
	acc := metrics.Accuracy(core.FlattenLabels(truth), core.FlattenLabels(labels))
	if acc < 90 {
		t.Fatalf("subset round accuracy %.1f%%", acc)
	}
}

func TestServerStragglerTimeoutBelowMinimumFails(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	srv := &Server{L: 2, Expect: 5, Seed: 1, WaitTimeout: 200 * time.Millisecond, MinClients: 3}
	done := make(chan error, 1)
	go func() {
		_, err := srv.Serve(ln)
		done <- err
	}()
	// One lone client.
	rng := rand.New(rand.NewSource(1))
	devices, _ := fedDevices(10, 2, 2, 1, 2, 8, 164)
	go DialAndRun(ln.Addr().String(), 0, devices[0], core.LocalOptions{UseEigengap: true}, rng)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("round should fail below MinClients")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not give up")
	}
}

func TestServerStragglerStalledUploadDoesNotHang(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	srv := &Server{L: 2, Expect: 3, Seed: 1, WaitTimeout: 250 * time.Millisecond, MinClients: 1}
	var stats ServeStats
	var serveErr error
	doneCh := make(chan struct{})
	go func() {
		stats, serveErr = srv.Serve(ln)
		close(doneCh)
	}()
	// One healthy client, one that connects but never uploads.
	devices, _ := fedDevices(10, 2, 2, 1, 2, 8, 165)
	go DialAndRun(ln.Addr().String(), 0, devices[0], core.LocalOptions{UseEigengap: true},
		rand.New(rand.NewSource(2)))
	stalled, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer stalled.Close()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("stalled upload held the round hostage")
	}
	if serveErr != nil {
		t.Fatalf("round should tolerate the stalled device: %v", serveErr)
	}
	if len(stats.Failures) != 1 {
		t.Fatalf("expected one recorded failure, got %v", stats.Failures)
	}
}

func TestServerRequiresPositiveExpect(t *testing.T) {
	srv := &Server{L: 2}
	if _, err := srv.Serve(&staticListener{}); err == nil {
		t.Fatal("expected error for Expect=0 Serve")
	}
}
