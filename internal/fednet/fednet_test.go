package fednet

import (
	"encoding/gob"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fedsc/internal/core"
	"fedsc/internal/mat"
	"fedsc/internal/metrics"
	"fedsc/internal/synth"
)

// fedDevices builds Z devices with L' of L subspaces each (clean data).
func fedDevices(n, d, l, z, lPrime, perCluster int, seed int64) ([]*mat.Dense, [][]int) {
	rng := rand.New(rand.NewSource(seed))
	s := synth.RandomSubspaces(n, d, l, rng)
	devices := make([]*mat.Dense, z)
	truth := make([][]int, z)
	for dev := 0; dev < z; dev++ {
		clusters := rng.Perm(l)[:lPrime]
		counts := make([]int, l)
		for _, c := range clusters {
			counts[c] = perCluster
		}
		ds := s.SampleCounts(counts, rng)
		devices[dev] = ds.X
		truth[dev] = ds.Labels
	}
	return devices, truth
}

func runRound(t *testing.T, devices []*mat.Dense, l int, viaTCP bool) ([][]int, ServeStats) {
	t.Helper()
	z := len(devices)
	srv := &Server{L: l, Expect: z, Seed: 99}
	results := make([]ClientResult, z)
	errs := make([]error, z)
	var stats ServeStats
	var serveErr error
	var wg sync.WaitGroup

	if viaTCP {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		defer ln.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats, serveErr = srv.Serve(ln)
		}()
		addr := ln.Addr().String()
		var cw sync.WaitGroup
		for dev := range devices {
			cw.Add(1)
			go func(dev int) {
				defer cw.Done()
				rng := rand.New(rand.NewSource(int64(1000 + dev)))
				results[dev], errs[dev] = DialAndRun(addr, dev, devices[dev],
					core.LocalOptions{UseEigengap: true}, rng)
			}(dev)
		}
		cw.Wait()
	} else {
		serverConns := make([]net.Conn, z)
		var cw sync.WaitGroup
		for dev := range devices {
			sc, cc := net.Pipe()
			serverConns[dev] = sc
			cw.Add(1)
			go func(dev int, conn net.Conn) {
				defer cw.Done()
				rng := rand.New(rand.NewSource(int64(1000 + dev)))
				results[dev], errs[dev] = RunClient(conn, dev, devices[dev],
					core.LocalOptions{UseEigengap: true}, rng)
			}(dev, cc)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats, serveErr = srv.ServeConns(serverConns)
		}()
		cw.Wait()
	}
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("server: %v", serveErr)
	}
	labels := make([][]int, z)
	for dev, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", dev, err)
		}
		labels[dev] = results[dev].Labels
	}
	return labels, stats
}

func TestRoundOverPipes(t *testing.T) {
	devices, truth := fedDevices(20, 3, 4, 16, 2, 8, 160)
	labels, stats := runRound(t, devices, 4, false)
	acc := metrics.Accuracy(core.FlattenLabels(truth), core.FlattenLabels(labels))
	if acc < 95 {
		t.Fatalf("pipe-transport Fed-SC accuracy %.1f%%", acc)
	}
	if stats.Samples == 0 || stats.UplinkBytes == 0 {
		t.Fatalf("stats not collected: %+v", stats)
	}
}

func TestRoundOverTCP(t *testing.T) {
	devices, truth := fedDevices(20, 3, 4, 16, 2, 8, 161)
	labels, stats := runRound(t, devices, 4, true)
	acc := metrics.Accuracy(core.FlattenLabels(truth), core.FlattenLabels(labels))
	if acc < 95 {
		t.Fatalf("TCP-transport Fed-SC accuracy %.1f%%", acc)
	}
	// The uplink must carry at least the raw float payload of all samples.
	minBytes := int64(stats.Samples * 20 * 8)
	if stats.UplinkBytes < minBytes {
		t.Fatalf("uplink bytes %d below raw payload %d", stats.UplinkBytes, minBytes)
	}
}

func TestNetworkMatchesInProcessScheme(t *testing.T) {
	devices, _ := fedDevices(20, 3, 4, 12, 2, 8, 162)
	netLabels, _ := runRound(t, devices, 4, false)
	// The in-process scheme with the same per-device seeds and the same
	// server seed must produce the same partition.
	z := len(devices)
	locals := make([]core.LocalResult, z)
	for dev := range devices {
		rng := rand.New(rand.NewSource(int64(1000 + dev)))
		locals[dev] = core.LocalClusterAndSample(devices[dev], core.LocalOptions{UseEigengap: true}, rng)
	}
	res := core.Aggregate(devices, locals, 4, core.Options{}, rand.New(rand.NewSource(99)))
	a := core.FlattenLabels(netLabels)
	b := core.FlattenLabels(res.Labels)
	if metrics.Accuracy(a, b) != 100 {
		t.Fatal("network round and in-process scheme disagree on the partition")
	}
}

func TestUploadValidate(t *testing.T) {
	good := SampleUpload{Rows: 2, Cols: 3, Data: make([]float64, 6)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid upload rejected: %v", err)
	}
	bad := SampleUpload{Rows: 2, Cols: 3, Data: make([]float64, 5)}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched payload accepted")
	}
	neg := SampleUpload{Rows: -1, Cols: 3}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative dims accepted")
	}
}

func TestServerRejectsMalformedUpload(t *testing.T) {
	sc, cc := net.Pipe()
	srv := &Server{L: 2, Expect: 1, Seed: 1}
	done := make(chan error, 1)
	go func() {
		_, err := srv.ServeConns([]net.Conn{sc})
		done <- err
	}()
	// Complete the hello handshake, then send a malformed upload.
	dec := gob.NewDecoder(cc)
	var hello RoundHello
	if err := dec.Decode(&hello); err != nil {
		t.Fatalf("decode hello: %v", err)
	}
	go func() {
		gob.NewEncoder(cc).Encode(SampleUpload{DeviceID: 7, Nonce: hello.Nonce, Rows: 3, Cols: 2, Data: []float64{1}})
	}()
	var reply AssignmentReply
	if err := dec.Decode(&reply); err != nil {
		t.Fatalf("decode reply: %v", err)
	}
	if reply.Err == "" {
		t.Fatal("server accepted malformed upload")
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "device 7") {
		t.Fatalf("server error should name the device: %v", err)
	}
}

func TestServerStragglerTimeoutProceedsWithSubset(t *testing.T) {
	// 20 devices expected, only 12 show up; the round must complete with
	// the 12 after the straggler timeout (still enough samples per
	// subspace for the central clustering).
	devices, truth := fedDevices(20, 3, 4, 12, 2, 10, 163)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	srv := &Server{L: 4, Expect: 20, Seed: 1, WaitTimeout: 300 * time.Millisecond, MinClients: 8}
	var stats ServeStats
	var serveErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats, serveErr = srv.Serve(ln)
	}()
	results := make([]ClientResult, len(devices))
	var cw sync.WaitGroup
	for dev := range devices {
		cw.Add(1)
		go func(dev int) {
			defer cw.Done()
			rng := rand.New(rand.NewSource(int64(300 + dev)))
			results[dev], _ = DialAndRun(ln.Addr().String(), dev, devices[dev],
				core.LocalOptions{UseEigengap: true}, rng)
		}(dev)
	}
	cw.Wait()
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("straggler round failed: %v", serveErr)
	}
	if stats.Devices != 12 {
		t.Fatalf("round ran with %d devices, want 12", stats.Devices)
	}
	labels := make([][]int, len(devices))
	for dev := range results {
		labels[dev] = results[dev].Labels
	}
	acc := metrics.Accuracy(core.FlattenLabels(truth), core.FlattenLabels(labels))
	if acc < 90 {
		t.Fatalf("subset round accuracy %.1f%%", acc)
	}
}

func TestServerStragglerTimeoutBelowMinimumFails(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	srv := &Server{L: 2, Expect: 5, Seed: 1, WaitTimeout: 200 * time.Millisecond, MinClients: 3}
	done := make(chan error, 1)
	go func() {
		_, err := srv.Serve(ln)
		done <- err
	}()
	// One lone client.
	rng := rand.New(rand.NewSource(1))
	devices, _ := fedDevices(10, 2, 2, 1, 2, 8, 164)
	go DialAndRun(ln.Addr().String(), 0, devices[0], core.LocalOptions{UseEigengap: true}, rng)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("round should fail below MinClients")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not give up")
	}
}

func TestServerStragglerStalledUploadDoesNotHang(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	srv := &Server{L: 2, Expect: 3, Seed: 1, WaitTimeout: 250 * time.Millisecond, MinClients: 1}
	var stats ServeStats
	var serveErr error
	doneCh := make(chan struct{})
	go func() {
		stats, serveErr = srv.Serve(ln)
		close(doneCh)
	}()
	// One healthy client, one that connects but never uploads.
	devices, _ := fedDevices(10, 2, 2, 1, 2, 8, 165)
	go DialAndRun(ln.Addr().String(), 0, devices[0], core.LocalOptions{UseEigengap: true},
		rand.New(rand.NewSource(2)))
	stalled, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer stalled.Close()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("stalled upload held the round hostage")
	}
	if serveErr != nil {
		t.Fatalf("round should tolerate the stalled device: %v", serveErr)
	}
	if len(stats.Failures) != 1 {
		t.Fatalf("expected one recorded failure, got %v", stats.Failures)
	}
}

func TestServerRequiresPositiveExpect(t *testing.T) {
	srv := &Server{L: 2}
	if _, err := srv.Serve(&staticListener{}); err == nil {
		t.Fatal("expected error for Expect=0 Serve")
	}
}

// feedListener hands pre-established connections to Serve in a fixed
// order and then blocks (unlike staticListener it never returns EOF), so
// straggler-timeout paths can be exercised deterministically over pipes.
type feedListener struct {
	conns chan net.Conn
}

func (l *feedListener) Accept() (net.Conn, error) {
	c, ok := <-l.conns
	if !ok {
		return nil, io.EOF
	}
	return c, nil
}

func (l *feedListener) Close() error   { return nil }
func (l *feedListener) Addr() net.Addr { return staticAddr{} }

// TestStragglerRoundUsesActualDeviceCount is a regression test: when the
// straggler timeout fires with fewer devices than Expect, the central
// clustering must see the ACTUAL number of participating devices, not
// Expect — for TSC the neighbor count is q = max(3, ⌈Z/L⌉), so an
// inflated Z silently changes the clustering.
func TestStragglerRoundUsesActualDeviceCount(t *testing.T) {
	const l, joined, expect = 2, 4, 40
	// Seed chosen so that q = max(3, ⌈40/2⌉) and q = max(3, ⌈4/2⌉)
	// produce different TSC partitions of the pooled samples — the test
	// genuinely discriminates the two device counts.
	devices, _ := fedDevices(20, 3, l, joined, 2, 8, 160)
	srv := &Server{
		L: l, Expect: expect, Seed: 7,
		Central:     core.CentralOptions{Method: core.CentralTSC},
		WaitTimeout: 300 * time.Millisecond, MinClients: 1,
	}
	ln := &feedListener{conns: make(chan net.Conn, joined)}
	results := make([]ClientResult, joined)
	errs := make([]error, joined)
	var cw sync.WaitGroup
	for dev := 0; dev < joined; dev++ {
		sc, cc := net.Pipe()
		ln.conns <- sc // accept order = device order: deterministic pooling
		cw.Add(1)
		go func(dev int, conn net.Conn) {
			defer cw.Done()
			rng := rand.New(rand.NewSource(int64(1000 + dev)))
			results[dev], errs[dev] = RunClient(conn, dev, devices[dev],
				core.LocalOptions{UseEigengap: true}, rng)
		}(dev, cc)
	}
	stats, err := srv.Serve(ln)
	cw.Wait()
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	if stats.Devices != joined {
		t.Fatalf("round ran with %d devices, want %d", stats.Devices, joined)
	}
	// Replicate the round offline with the true device count: the pooled
	// samples and the server seed are identical, so the assignments must
	// match exactly. With the Expect-count bug the TSC neighbor rule gets
	// q = max(3, ⌈40/2⌉) instead of max(3, ⌈4/2⌉) and the labels differ.
	matrices := make([]*mat.Dense, joined)
	for dev := 0; dev < joined; dev++ {
		rng := rand.New(rand.NewSource(int64(1000 + dev)))
		matrices[dev] = core.LocalClusterAndSample(devices[dev], core.LocalOptions{UseEigengap: true}, rng).Samples
	}
	theta := mat.HStack(matrices...)
	want := core.CentralCluster(theta, joined, l, srv.Central, rand.New(rand.NewSource(7))).Labels
	var got []int
	for dev := 0; dev < joined; dev++ {
		if errs[dev] != nil {
			t.Fatalf("client %d: %v", dev, errs[dev])
		}
		got = append(got, results[dev].SampleAssignments...)
	}
	if len(got) != len(want) {
		t.Fatalf("pooled %d assignments, offline %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d: server assigned %d, offline (actual-count) clustering says %d\nserver: %v\noffline: %v",
				i, got[i], want[i], got, want)
		}
	}
}

// noDeadlineConn simulates a transport that rejects deadlines.
type noDeadlineConn struct {
	net.Conn
}

func (c noDeadlineConn) SetDeadline(time.Time) error {
	return errors.New("deadlines unsupported")
}

// TestStragglerRecordsDeadlineErrors: a transport whose SetDeadline
// fails cannot be bounded by the straggler grace period; the failure
// must surface in ServeStats.Failures instead of being dropped.
func TestStragglerRecordsDeadlineErrors(t *testing.T) {
	devices, _ := fedDevices(10, 2, 2, 2, 2, 8, 167)
	srv := &Server{L: 2, Expect: 3, Seed: 1, WaitTimeout: 250 * time.Millisecond, MinClients: 1}
	ln := &feedListener{conns: make(chan net.Conn, 2)}
	var cw sync.WaitGroup
	for dev := 0; dev < 2; dev++ {
		sc, cc := net.Pipe()
		if dev == 1 {
			sc = noDeadlineConn{Conn: sc}
		}
		ln.conns <- sc
		cw.Add(1)
		go func(dev int, conn net.Conn) {
			defer cw.Done()
			rng := rand.New(rand.NewSource(int64(500 + dev)))
			RunClient(conn, dev, devices[dev], core.LocalOptions{UseEigengap: true}, rng)
		}(dev, cc)
	}
	stats, err := srv.Serve(ln)
	cw.Wait()
	if err != nil {
		t.Fatalf("round should survive one deadline-rejecting device: %v", err)
	}
	if len(stats.Failures) != 1 || !strings.Contains(stats.Failures[0], "deadline") {
		t.Fatalf("deadline rejection not recorded: %v", stats.Failures)
	}
}

// TestServeExportsModel: with Export set, a completed round must hand
// back a valid serving artifact whose bases assign the uploaded samples
// to their own clusters.
func TestServeExportsModel(t *testing.T) {
	devices, _ := fedDevices(20, 3, 4, 12, 2, 8, 168)
	srv := &Server{L: 4, Expect: 12, Seed: 99, Export: true}
	serverConns := make([]net.Conn, len(devices))
	results := make([]ClientResult, len(devices))
	var cw sync.WaitGroup
	for dev := range devices {
		sc, cc := net.Pipe()
		serverConns[dev] = sc
		cw.Add(1)
		go func(dev int, conn net.Conn) {
			defer cw.Done()
			rng := rand.New(rand.NewSource(int64(1000 + dev)))
			results[dev], _ = RunClient(conn, dev, devices[dev],
				core.LocalOptions{UseEigengap: true}, rng)
		}(dev, cc)
	}
	stats, err := srv.ServeConns(serverConns)
	cw.Wait()
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	if stats.Model == nil {
		t.Fatal("Export set but no model returned")
	}
	if err := stats.Model.Validate(); err != nil {
		t.Fatalf("exported model invalid: %v", err)
	}
	if stats.Model.Ambient != 20 || stats.Model.L != 4 {
		t.Fatalf("model shape %dx%d", stats.Model.Ambient, stats.Model.L)
	}
	if stats.Model.Method != "ssc" {
		t.Fatalf("model method %q", stats.Model.Method)
	}
	// Each device's points, scored by minimum residual against the
	// exported bases, must reproduce the labels the round returned.
	bases := stats.Model.Bases()
	for dev, x := range devices {
		norms := mat.ColNormsSq(x)
		for j := 0; j < x.Cols(); j++ {
			best, bestRes := -1, 0.0
			for g, u := range bases {
				r := mat.ResidualsSq(u, x, norms)
				if best < 0 || r[j] < bestRes {
					best, bestRes = g, r[j]
				}
			}
			if best != results[dev].Labels[j] {
				t.Fatalf("device %d point %d: residual rule %d, round %d", dev, j, best, results[dev].Labels[j])
			}
		}
	}
}
