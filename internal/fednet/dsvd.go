package fednet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"fedsc/internal/dsvd"
	"fedsc/internal/mat"
	"fedsc/internal/obs"
)

// The distributed-SVD wire runs the projection-splitting iteration of
// internal/dsvd over the same transport machinery as the one-shot
// round: gob messages, codec negotiation, per-attempt retries,
// highest-attempt dedup, and per-iteration nonces. Each iteration is
// one connection per device:
//
//	server → client  DSVDHello{Nonce, Iter, Basis}
//	client → server  SampleUpload{DeviceID, Nonce, Attempt, W_z}
//	server → client  DSVDReply{More | Err}
//
// Only the n×k iterate travels down and only the n×k projection
// W_z = A_z(A_zᵀ·Basis) travels up — the device's raw columns never
// leave it, and the uplink cost per device is independent of how many
// columns it holds. The client recomputes W_z from each connection's
// hello, so a retried or duplicated upload is byte-identical and the
// server's dedup replacement stays idempotent.

// DSVDHello is the per-iteration downlink message: the coordinator's
// current orthonormal iterate, flattened row-major.
type DSVDHello struct {
	// Nonce identifies (round, iteration); the upload must echo it, so
	// an upload replayed from an earlier iteration is rejected instead
	// of being pooled into the wrong sum.
	Nonce int64
	// Iter is the 0-based iteration index, for observability.
	Iter int
	// Rows is the ambient dimension n; K the subspace rank.
	Rows, K int
	// Basis is the row-major Rows×K orthonormal iterate.
	Basis []float64
	// Codecs advertises the accepted uplink encodings, as in RoundHello.
	Codecs []WireCodec
}

// Validate checks the hello before its payload touches the device's
// linear algebra — the client-side mirror of SampleUpload.Validate.
func (h DSVDHello) Validate() error {
	if h.Rows <= 0 || h.K <= 0 {
		return fmt.Errorf("fednet: dsvd hello with non-positive dimensions %dx%d", h.Rows, h.K)
	}
	if h.Rows > math.MaxInt/h.K {
		return fmt.Errorf("fednet: dsvd hello dimensions %dx%d overflow", h.Rows, h.K)
	}
	if len(h.Basis) != h.Rows*h.K {
		return fmt.Errorf("fednet: dsvd basis length %d does not match %dx%d", len(h.Basis), h.Rows, h.K)
	}
	for i, v := range h.Basis {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("fednet: non-finite basis entry %g at index %d", v, i)
		}
	}
	return nil
}

// DSVDReply is the per-iteration downlink close: whether the client
// should dial back for another iteration, or the rejection.
type DSVDReply struct {
	// More tells the device to reconnect for the next iteration.
	More bool
	// Err carries a server-side rejection for this connection.
	Err string
}

// dsvdNonce derives the per-iteration nonce: a second splitmix of the
// round nonce and the iteration index, so every iteration of every
// seeded round carries a distinguishable value while replays of the
// same (seed, iter) are identical.
func dsvdNonce(seed int64, iter int) int64 {
	return roundNonce(roundNonce(seed) + int64(iter))
}

// DSVDServer coordinates one distributed dominant-SVD solve.
type DSVDServer struct {
	// Expect is the number of devices holding column blocks. Every
	// iteration waits for all of them: unlike the one-shot sample round,
	// dropping a straggler would silently change the operator Σ A_zA_zᵀ
	// being decomposed, so there is no partial-progress mode.
	Expect int
	// Rows is the ambient dimension n shared by all device blocks.
	Rows int
	// Opts configures the solve (rank, tolerance, cap, seed) and the
	// metrics/trace destinations, exactly as for the in-process dsvd.Run.
	Opts dsvd.Options
	// WaitTimeout, when positive, bounds each iteration's collect phase;
	// if it fires before every device reported, the solve aborts (it
	// cannot proceed correctly with fewer). Zero waits forever.
	WaitTimeout time.Duration
	// Codecs lists accepted uplink encodings, as in Server.Codecs.
	Codecs []WireCodec
	// MaxUploadBytes, when positive, caps one upload's gob size.
	MaxUploadBytes int64
}

func (s *DSVDServer) codecs() []WireCodec {
	if s.Codecs != nil {
		return s.Codecs
	}
	return []WireCodec{CodecQuant, CodecFloat64}
}

func (s *DSVDServer) reg() *obs.Registry {
	if s.Opts.Obs != nil {
		return s.Opts.Obs
	}
	return obs.Default()
}

// DSVDServeStats summarizes one completed distributed solve.
type DSVDServeStats struct {
	// Result is the converged decomposition.
	Result dsvd.Result
	// UplinkBytes / DownlinkBytes are gob-encoded wire volume across all
	// iterations, including aborted partial attempts.
	UplinkBytes, DownlinkBytes int64
	// UplinkPayloadBits counts pooled payload values × bits-per-value:
	// Iters × Expect × Rows × K × bits when every device uses one codec
	// — per device it depends only on (iterations, n, k), never on the
	// device's column count.
	UplinkPayloadBits int64
	// Retries is how many uploads idempotently replaced an earlier
	// attempt, summed over iterations.
	Retries int
	// Failures describes rejected, timed-out, or superseded connections
	// across all iterations, sorted for replay determinism.
	Failures []string
}

// Serve runs the full solve over ln: it iterates until the residual
// tolerance or the iteration cap, collecting one projection per device
// per iteration, and leaves the listener open for the caller. Every
// accepted connection receives a reply.
func (s *DSVDServer) Serve(ln net.Listener) (DSVDServeStats, error) {
	if s.Expect <= 0 {
		return DSVDServeStats{}, fmt.Errorf("fednet: dsvd server expects a positive device count, got %d", s.Expect)
	}
	st, err := dsvd.NewState(s.Rows, s.Opts)
	if err != nil {
		return DSVDServeStats{}, err
	}
	reg := s.reg()
	// Instruments are registered once, before the iteration loop
	// (metrichygiene): the registry lookup takes a mutex and the
	// per-iteration path must not serialize on it.
	roundsC := reg.Counter("fedsc_dsvd_rounds_total", "Distributed SVD solves started.")
	itersC := reg.Counter("fedsc_dsvd_iterations_total", "Projection-splitting iterations across all solves.")
	convergedC := reg.Counter("fedsc_dsvd_converged_total", "Solves that reached the residual tolerance before MaxIter.")
	abortedC := reg.Counter("fedsc_dsvd_aborted_total", "Distributed solves aborted before finalization.")
	supersededC := reg.Counter("fedsc_dsvd_supersedes_total", "Projection uploads idempotently replaced by a newer attempt.")
	residualH := reg.Histogram("fedsc_dsvd_residual", "Relative subspace residual per iteration.",
		[]float64{1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1})
	secondsH := reg.Histogram("fedsc_dsvd_iteration_seconds", "Wall time of one projection-splitting iteration.",
		[]float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1})
	uplinkC := reg.Counter("fedsc_dsvd_uplink_bytes_total", "Gob-encoded projection upload bytes received.")
	downlinkC := reg.Counter("fedsc_dsvd_downlink_bytes_total", "Gob-encoded bytes sent to devices (basis hellos and replies).")
	roundsC.Inc()
	root := s.Opts.Trace.Start("dsvd.round", obs.Int("expect", s.Expect), obs.Int("k", st.K()), obs.Int("n", s.Rows))
	defer root.End()

	up := &countingWriter{}
	down := &countingWriter{}

	// One acceptor for the whole solve: devices dial back once per
	// iteration, so connections keep arriving across iterations. The
	// join mirrors Server.Serve: poke the (possibly blocked) Accept
	// awake with an immediate deadline, then clear it.
	accepted := make(chan net.Conn)
	acceptErrCh := make(chan error, 1)
	doneCh := make(chan struct{})
	acceptorDone := make(chan struct{})
	defer func() {
		close(doneCh)
		if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
			if d.SetDeadline(time.Now()) == nil {
				<-acceptorDone
			}
			_ = d.SetDeadline(time.Time{})
		}
	}()
	go func() {
		defer close(acceptorDone)
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case acceptErrCh <- err:
				case <-doneCh:
				}
				return
			}
			select {
			case accepted <- conn:
			case <-doneCh:
				// The solve is over; a Close error on a refused late
				// connection has no one left to report to.
				_ = conn.Close()
				return
			}
		}
	}()

	var dlMu sync.Mutex
	currentDL := time.Time{}
	applyDL := func(conn net.Conn) error {
		dlMu.Lock()
		defer dlMu.Unlock()
		return conn.SetDeadline(currentDL)
	}

	arrivals := make(chan *clientState)
	// handle runs one connection's exchange for the iteration whose
	// hello it is given; the hello is passed in (not read from shared
	// state) so a connection accepted while the coordinator advances can
	// never observe a half-updated iterate.
	handle := func(c *clientState, hello DSVDHello) {
		if err := applyDL(c.conn); err != nil {
			c.err = fmt.Errorf("fednet: set deadline: %w", err)
			arrivals <- c
			return
		}
		if err := c.enc.Encode(hello); err != nil {
			c.err = fmt.Errorf("fednet: send dsvd hello: %w", err)
			arrivals <- c
			return
		}
		var r io.Reader = &countingReader{r: c.conn, counter: up}
		var limited *io.LimitedReader
		if s.MaxUploadBytes > 0 {
			limited = &io.LimitedReader{R: r, N: s.MaxUploadBytes + 1}
			r = limited
		}
		if err := gob.NewDecoder(r).Decode(&c.upload); err != nil {
			if limited != nil && limited.N <= 0 {
				c.err = fmt.Errorf("fednet: upload exceeds the %d-byte limit", s.MaxUploadBytes)
			} else {
				c.err = fmt.Errorf("fednet: decode projection upload: %w", err)
			}
			arrivals <- c
			return
		}
		if c.upload.Nonce != hello.Nonce {
			c.err = fmt.Errorf("fednet: device %d echoed a stale iteration nonce", c.upload.DeviceID)
		} else if !codecOffered(s.codecs(), c.upload.codec()) {
			c.err = fmt.Errorf("fednet: device %d uploaded with unadvertised codec %q", c.upload.DeviceID, c.upload.codec())
		} else if err := c.upload.Validate(); err != nil {
			c.err = err
		} else if c.upload.Rows != hello.Rows || c.upload.Cols != hello.K {
			c.err = fmt.Errorf("fednet: device %d projected %dx%d, iterate is %dx%d",
				c.upload.DeviceID, c.upload.Rows, c.upload.Cols, hello.Rows, hello.K)
		}
		arrivals <- c
	}

	stats := DSVDServeStats{}
	var failures []string
	pending := map[*clientState]bool{}
	var acceptFailure error

	cut := func(dl time.Time) {
		dlMu.Lock()
		currentDL = dl
		dlMu.Unlock()
		for c := range pending {
			if err := applyDL(c.conn); err != nil {
				// The handler owns c until it arrives; a transport that
				// rejects deadlines surfaces through its own decode path.
				_ = c.conn.Close()
			}
		}
	}
	abort := func(open []*clientState) {
		abortedC.Inc()
		for _, c := range open {
			// Aborting: the devices see the broken pipe; their Close
			// errors carry no additional signal.
			_ = c.conn.Close()
		}
		for c := range pending {
			_ = c.conn.Close()
		}
		for len(pending) > 0 {
			c := <-arrivals
			delete(pending, c)
		}
	}
	finish := func() {
		stats.UplinkBytes = up.total()
		stats.DownlinkBytes = down.total()
		sort.Strings(failures)
		stats.Failures = failures
		uplinkC.Add(stats.UplinkBytes)
		downlinkC.Add(stats.DownlinkBytes)
		supersededC.Add(int64(stats.Retries))
	}

	replyDL := func() time.Time {
		if s.WaitTimeout > 0 {
			return time.Now().Add(s.WaitTimeout)
		}
		return time.Time{}
	}
	reply := func(c *clientState, r DSVDReply) {
		if err := c.conn.SetDeadline(replyDL()); err != nil && c.err == nil {
			c.err = fmt.Errorf("fednet: set reply deadline for device %d: %w", c.upload.DeviceID, err)
		}
		if err := c.enc.Encode(r); err != nil && c.err == nil {
			c.err = fmt.Errorf("fednet: reply to device %d: %w", c.upload.DeviceID, err)
		}
		if err := c.conn.Close(); err != nil && c.err == nil {
			c.err = fmt.Errorf("fednet: close device %d: %w", c.upload.DeviceID, err)
		}
	}

	for !st.Done() {
		iterStart := time.Now()
		iter := st.Iters()
		nonce := dsvdNonce(s.Opts.Seed, iter)
		hello := DSVDHello{Nonce: nonce, Iter: iter, Rows: s.Rows, K: st.K(), Basis: st.Basis().Data(), Codecs: s.codecs()}
		sp := root.Start("dsvd.iter", obs.Int("iter", iter), obs.Int("expect", s.Expect))
		// Collecting again: lift the previous iteration's closing cut so
		// freshly accepted connections wait unbounded (or to the
		// iteration timer below).
		cut(time.Time{})

		byDevice := map[int]*clientState{}
		var failed []*clientState
		var timeoutCh <-chan time.Time
		if s.WaitTimeout > 0 {
			timeoutCh = time.After(s.WaitTimeout)
		}
		aborted := false
		// An iteration is complete when every device is pooled AND no
		// accepted connection is still in flight: a duplicate or retry
		// racing the last expected upload must drain through the dedup
		// path (supersede, highest attempt wins), not be guillotined by
		// an early close — it belongs to this iteration.
		for len(byDevice) < s.Expect || len(pending) > 0 {
			if acceptFailure != nil && len(pending) == 0 {
				aborted = true
				err = fmt.Errorf("fednet: accept: %w", acceptFailure)
				break
			}
			select {
			case conn := <-accepted:
				c := &clientState{conn: conn, enc: gob.NewEncoder(&countedWriter{w: conn, counter: down})}
				pending[c] = true
				go handle(c, hello)
			case c := <-arrivals:
				delete(pending, c)
				usp := sp.Start("upload", obs.Int("device", c.upload.DeviceID), obs.Int("attempt", c.upload.Attempt))
				if c.err != nil {
					usp.SetAttr("err", c.err.Error())
				}
				usp.End()
				if c.err != nil {
					failed = append(failed, c)
					continue
				}
				if prev, ok := byDevice[c.upload.DeviceID]; ok {
					// Highest attempt wins, ties to the newer arrival —
					// the same idempotent dedup as the sample round, so a
					// dead first attempt delivered late cannot evict the
					// live retry.
					stale := prev
					if c.upload.Attempt < prev.upload.Attempt {
						stale = c
					} else {
						byDevice[c.upload.DeviceID] = c
					}
					stale.err = fmt.Errorf("fednet: superseded by a newer upload from device %d", stale.upload.DeviceID)
					failed = append(failed, stale)
					stats.Retries++
					continue
				}
				byDevice[c.upload.DeviceID] = c
			case e := <-acceptErrCh:
				acceptFailure = e
			case <-timeoutCh:
				aborted = true
				err = fmt.Errorf("fednet: iteration %d: only %d of %d devices reported before the timeout",
					iter, len(byDevice), s.Expect)
				break
			}
			if aborted {
				break
			}
		}
		if aborted {
			// Reject in ascending device order so the abort fan-out (and
			// any error it records) is replayable.
			openIDs := make([]int, 0, len(byDevice))
			for id := range byDevice {
				openIDs = append(openIDs, id)
			}
			sort.Ints(openIDs)
			open := make([]*clientState, 0, len(byDevice)+len(failed))
			for _, id := range openIDs {
				open = append(open, byDevice[id])
			}
			open = append(open, failed...)
			abort(open)
			sp.SetAttr("err", err.Error())
			sp.End()
			finish()
			return stats, err
		}

		// Pool in ascending DeviceID order — part of the dsvd determinism
		// contract (float sums do not commute).
		ids := make([]int, 0, len(byDevice))
		for id := range byDevice {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		parts := make([]*mat.Dense, 0, len(ids))
		for _, id := range ids {
			c := byDevice[id]
			values, verr := c.upload.Samples()
			if verr != nil {
				// Validate pinned the shape, so this cannot fail; guard
				// the pool anyway rather than ingest a short matrix.
				abort(append(failed, c))
				sp.End()
				finish()
				return stats, fmt.Errorf("fednet: decode projection: %w", verr)
			}
			parts = append(parts, mat.NewDenseData(c.upload.Rows, c.upload.Cols, values))
			stats.UplinkPayloadBits += c.upload.PayloadBits()
		}
		rho := st.Ingest(dsvd.Pool(parts))
		itersC.Inc()
		residualH.Observe(rho)
		secondsH.Observe(time.Since(iterStart).Seconds())
		more := !st.Done()

		for _, id := range ids {
			reply(byDevice[id], DSVDReply{More: more})
		}
		for _, c := range failed {
			reply(c, DSVDReply{Err: c.err.Error()})
			failures = append(failures, fmt.Sprintf("iter %d device %d: %v", iter, c.upload.DeviceID, c.err))
		}
		for _, id := range ids {
			if c := byDevice[id]; c.err != nil {
				failures = append(failures, fmt.Sprintf("iter %d device %d: %v", iter, c.upload.DeviceID, c.err))
			}
		}
		sp.SetAttr("residual", fmt.Sprintf("%.3e", rho))
		sp.End()
	}

	stats.Result = st.Finalize()
	if stats.Result.Converged {
		convergedC.Inc()
	}
	finish()
	return stats, nil
}

// DSVDClientStats is the outcome of one device's participation in a
// distributed solve.
type DSVDClientStats struct {
	// Iters is the number of iterations the device served.
	Iters int
	// Attempts is the total number of connections dialed, retries and
	// duplicates included.
	Attempts int
}

// dsvdExchange serves one iteration on an established connection: read
// the hello, project the local block against its basis, upload the
// projection, read the reply. The connection is closed before return.
func dsvdExchange(conn net.Conn, deviceID int, block *mat.Dense, attempt int, wire WireOptions, policy RetryPolicy) (DSVDReply, error) {
	// The exchange is one-shot per iteration: a Close error after a
	// complete exchange changes nothing the client can act on.
	defer func() { _ = conn.Close() }()
	if err := conn.SetReadDeadline(policy.ioDeadline()); err != nil {
		return DSVDReply{}, fmt.Errorf("fednet: device %d set read deadline: %w", deviceID, err)
	}
	var hello DSVDHello
	if err := gob.NewDecoder(conn).Decode(&hello); err != nil {
		return DSVDReply{}, fmt.Errorf("fednet: device %d dsvd hello: %w", deviceID, err)
	}
	if err := hello.Validate(); err != nil {
		return DSVDReply{}, err
	}
	if hello.Rows != block.Rows() {
		return DSVDReply{}, fmt.Errorf("fednet: device %d holds %d-dimensional columns, iterate is %d-dimensional",
			deviceID, block.Rows(), hello.Rows)
	}
	u := mat.NewDenseData(hello.Rows, hello.K, hello.Basis)
	w := dsvd.ProjectBlock(block, u)
	upload := SampleUpload{
		DeviceID: deviceID,
		Nonce:    hello.Nonce,
		Attempt:  attempt,
		Rows:     hello.Rows,
		Cols:     hello.K,
		Data:     w.Data(),
	}
	upload, err := encodeWire(upload, wire, hello.Codecs)
	if err != nil {
		return DSVDReply{}, err
	}
	if err := conn.SetWriteDeadline(policy.ioDeadline()); err != nil {
		return DSVDReply{}, fmt.Errorf("fednet: device %d set write deadline: %w", deviceID, err)
	}
	if err := gob.NewEncoder(conn).Encode(upload); err != nil {
		return DSVDReply{}, fmt.Errorf("fednet: device %d projection upload: %w", deviceID, err)
	}
	if err := conn.SetReadDeadline(policy.replyDeadline()); err != nil {
		return DSVDReply{}, fmt.Errorf("fednet: device %d set read deadline: %w", deviceID, err)
	}
	var reply DSVDReply
	if err := gob.NewDecoder(conn).Decode(&reply); err != nil {
		return DSVDReply{}, fmt.Errorf("fednet: device %d dsvd reply: %w", deviceID, err)
	}
	if reply.Err != "" {
		return DSVDReply{}, rejectionError{msg: fmt.Sprintf("fednet: device %d rejected by server: %s", deviceID, reply.Err)}
	}
	return reply, nil
}

// RunDSVDClient participates in a distributed solve with fault
// tolerance: each iteration dials a fresh connection and serves one
// exchange, retrying with backoff per the policy; the loop continues
// while the server's reply says more iterations are coming. The client
// is stateless across connections — whatever basis a hello carries is
// the one projected — so a retry that lands after the server advanced
// an iteration still uploads a valid (current) projection.
func RunDSVDClient(dial func() (net.Conn, error), deviceID int, block *mat.Dense, policy RetryPolicy, wire WireOptions, rng *rand.Rand) (DSVDClientStats, error) {
	reg := obs.Default()
	// Registered once, outside both loops (metrichygiene).
	itersC := reg.Counter("fedsc_dsvd_client_iterations_total", "Projection iterations served by dsvd clients.")
	attemptsC := reg.Counter("fedsc_dsvd_client_attempts_total", "dsvd client connection attempts, including retries.")
	retriesC := reg.Counter("fedsc_dsvd_client_retries_total", "dsvd client exchange attempts beyond an iteration's first.")
	dialErrsC := reg.Counter("fedsc_dsvd_client_dial_errors_total", "dsvd client dial attempts that failed before the exchange.")
	exchangeErrsC := reg.Counter("fedsc_dsvd_client_exchange_errors_total", "dsvd exchanges that died mid-wire.")
	rejectionsC := reg.Counter("fedsc_dsvd_client_rejections_total", "dsvd uploads the server answered with a rejection.")
	solvesC := reg.Counter("fedsc_dsvd_client_solves_total", "Distributed solves a dsvd client served to completion.")
	gaveupsC := reg.Counter("fedsc_dsvd_client_gaveups_total", "dsvd participations abandoned after exhausting the retry budget.")
	stats := DSVDClientStats{}
	for {
		var reply DSVDReply
		var lastErr error
		ok := false
		for attempt := 1; attempt <= policy.attempts(); attempt++ {
			if attempt > 1 {
				retriesC.Inc()
				time.Sleep(policy.Backoff(attempt-1, rng))
			}
			attemptsC.Inc()
			stats.Attempts++
			conn, err := dial()
			if err != nil {
				dialErrsC.Inc()
				lastErr = fmt.Errorf("fednet: device %d dial: %w", deviceID, err)
				continue
			}
			reply, err = dsvdExchange(conn, deviceID, block, attempt, wire, policy)
			if err != nil {
				lastErr = err
				var rejected rejectionError
				if errors.As(err, &rejected) {
					// The server saw the upload and said no; the identical
					// payload cannot fare better on a retry.
					rejectionsC.Inc()
					break
				}
				exchangeErrsC.Inc()
				continue
			}
			ok = true
			break
		}
		if !ok {
			gaveupsC.Inc()
			return stats, fmt.Errorf("fednet: device %d gave up after %d attempts: %w", deviceID, policy.attempts(), lastErr)
		}
		stats.Iters++
		itersC.Inc()
		if !reply.More {
			solvesC.Inc()
			return stats, nil
		}
	}
}

// dsvdOpen dials one connection, reads and validates its hello, and
// prepares the projection upload for it with the given attempt number.
// On error the connection is already closed.
func dsvdOpen(dial func() (net.Conn, error), deviceID int, block *mat.Dense, attempt int, wire WireOptions, policy RetryPolicy) (net.Conn, SampleUpload, error) {
	conn, err := dial()
	if err != nil {
		return nil, SampleUpload{}, fmt.Errorf("fednet: device %d dial: %w", deviceID, err)
	}
	fail := func(err error) (net.Conn, SampleUpload, error) {
		_ = conn.Close() // the exchange failed; nothing acts on the close error
		return nil, SampleUpload{}, err
	}
	if err := conn.SetReadDeadline(policy.ioDeadline()); err != nil {
		return fail(fmt.Errorf("fednet: device %d set read deadline: %w", deviceID, err))
	}
	var hello DSVDHello
	if err := gob.NewDecoder(conn).Decode(&hello); err != nil {
		return fail(fmt.Errorf("fednet: device %d dsvd hello: %w", deviceID, err))
	}
	if err := hello.Validate(); err != nil {
		return fail(err)
	}
	if hello.Rows != block.Rows() {
		return fail(fmt.Errorf("fednet: device %d holds %d-dimensional columns, iterate is %d-dimensional",
			deviceID, block.Rows(), hello.Rows))
	}
	u := mat.NewDenseData(hello.Rows, hello.K, hello.Basis)
	w := dsvd.ProjectBlock(block, u)
	upload := SampleUpload{
		DeviceID: deviceID,
		Nonce:    hello.Nonce,
		Attempt:  attempt,
		Rows:     hello.Rows,
		Cols:     hello.K,
		Data:     w.Data(),
	}
	upload, err = encodeWire(upload, wire, hello.Codecs)
	if err != nil {
		return fail(err)
	}
	return conn, upload, nil
}

// dsvdDuplicateIteration serves one iteration but sends the upload
// twice on two connections — a duplicate late connect, the adversarial
// counterpart of a retry. Both hellos are read BEFORE either upload is
// sent: the iteration cannot advance until this device's projection
// arrives, so reading both hellos first pins both connections to the
// same iteration and the attempt-2 upload deterministically supersedes
// attempt 1 (whatever order they arrive — highest attempt wins). The
// superseded connection's rejection is drained concurrently so the
// server's reply pass can never block on an unread synchronous
// transport.
func dsvdDuplicateIteration(dial func() (net.Conn, error), deviceID int, block *mat.Dense, wire WireOptions, policy RetryPolicy) (DSVDReply, error) {
	connA, first, err := dsvdOpen(dial, deviceID, block, 1, wire, policy)
	if err != nil {
		return DSVDReply{}, err
	}
	connB, second, err := dsvdOpen(dial, deviceID, block, 2, wire, policy)
	if err != nil {
		_ = connA.Close() // the duplicate dance is being abandoned
		return DSVDReply{}, err
	}
	if err := connA.SetWriteDeadline(policy.ioDeadline()); err != nil {
		_ = connA.Close() // the exchange failed; nothing acts on the close error
		_ = connB.Close()
		return DSVDReply{}, fmt.Errorf("fednet: device %d set write deadline: %w", deviceID, err)
	}
	if err := gob.NewEncoder(connA).Encode(first); err != nil {
		_ = connA.Close() // the exchange failed; nothing acts on the close error
		_ = connB.Close()
		return DSVDReply{}, fmt.Errorf("fednet: device %d upload: %w", deviceID, err)
	}
	drained := make(chan struct{})
	go func() {
		// Drain the rejection the server will send here at iteration
		// end; its content is already known ("superseded").
		defer close(drained)
		_ = connA.SetReadDeadline(policy.replyDeadline())
		var rejected DSVDReply
		_ = gob.NewDecoder(connA).Decode(&rejected)
		_ = connA.Close()
	}()
	defer func() {
		// Termination proof for the drain: closing connA unblocks the
		// decode even under an unbounded reply deadline, and the receive
		// joins the goroutine before the function returns on any path.
		_ = connA.Close()
		<-drained
	}()

	// Finish the attempt-2 exchange on connB: write the (identical)
	// projection and read the authoritative reply.
	defer func() { _ = connB.Close() }()
	if err := connB.SetWriteDeadline(policy.ioDeadline()); err != nil {
		return DSVDReply{}, fmt.Errorf("fednet: device %d set write deadline: %w", deviceID, err)
	}
	if err := gob.NewEncoder(connB).Encode(second); err != nil {
		return DSVDReply{}, fmt.Errorf("fednet: device %d upload: %w", deviceID, err)
	}
	if err := connB.SetReadDeadline(policy.replyDeadline()); err != nil {
		return DSVDReply{}, fmt.Errorf("fednet: device %d set read deadline: %w", deviceID, err)
	}
	var reply DSVDReply
	if err := gob.NewDecoder(connB).Decode(&reply); err != nil {
		return DSVDReply{}, fmt.Errorf("fednet: device %d dsvd reply: %w", deviceID, err)
	}
	if reply.Err != "" {
		return DSVDReply{}, rejectionError{msg: fmt.Sprintf("fednet: device %d rejected by server: %s", deviceID, reply.Err)}
	}
	return reply, nil
}

// RunDSVDClientDuplicate participates like RunDSVDClient but sends
// every iteration's upload twice on two connections (attempts 1 and 2),
// exercising the dedup path end to end.
func RunDSVDClientDuplicate(dial func() (net.Conn, error), deviceID int, block *mat.Dense, policy RetryPolicy, wire WireOptions) (DSVDClientStats, error) {
	stats := DSVDClientStats{}
	for {
		reply, err := dsvdDuplicateIteration(dial, deviceID, block, wire, policy)
		stats.Attempts += 2
		if err != nil {
			return stats, err
		}
		stats.Iters++
		if !reply.More {
			return stats, nil
		}
	}
}
