package fednet

// Fault-tolerance regression tests: server-side dedup of reconnecting
// devices, client retry, downlink accounting, and the hostile-upload
// guards. The chaos transport provides the deterministic faults.

import (
	"encoding/gob"
	"math"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fedsc/internal/chaos"
	"fedsc/internal/core"
	"fedsc/internal/mat"
	"fedsc/internal/metrics"
)

// tolerantServer is the straggler-tolerant configuration the retry
// tests run under: the round closes only once all z devices are
// pooled (or the generous timeout fires).
func tolerantServer(l, z int, seed int64) *Server {
	return &Server{L: l, Expect: z, Seed: seed, WaitTimeout: 5 * time.Second, MinClients: z}
}

// runCleanRound is the single-attempt baseline every fault run is
// compared against: same device data, same per-device seeds, same
// server seed, no faults.
func runCleanRound(t *testing.T, srv *Server, devices []*mat.Dense) ([][]int, ServeStats) {
	t.Helper()
	pn := chaos.NewPipeNet()
	defer pn.Close()
	var stats ServeStats
	var serveErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats, serveErr = srv.Serve(pn.Listener())
	}()
	results := make([]ClientResult, len(devices))
	errs := make([]error, len(devices))
	var cw sync.WaitGroup
	for dev := range devices {
		cw.Add(1)
		go func(dev int) {
			defer cw.Done()
			rng := rand.New(rand.NewSource(int64(1000 + dev)))
			results[dev], errs[dev] = RunClientDialer(pn.Dial, dev, devices[dev],
				core.LocalOptions{UseEigengap: true}, RetryPolicy{}, rng)
		}(dev)
	}
	cw.Wait()
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("clean round: %v", serveErr)
	}
	labels := make([][]int, len(devices))
	for dev, err := range errs {
		if err != nil {
			t.Fatalf("clean round client %d: %v", dev, err)
		}
		labels[dev] = results[dev].Labels
	}
	return labels, stats
}

// TestRetryReplacesPartialUpload is the dedup regression of the
// double-pooling bug: device 0 completes an upload, loses the
// connection before the reply, and retries with an identical payload.
// The re-upload must REPLACE the first attempt — Samples and the
// labels must match the clean single-attempt run exactly, and the
// dedup table must report exactly one replacement.
func TestRetryReplacesPartialUpload(t *testing.T) {
	const l, z = 4, 6
	devices, _ := fedDevices(20, 3, l, z, 2, 8, 170)

	baseLabels, baseStats := runCleanRound(t, tolerantServer(l, z, 99), devices)

	pn := chaos.NewPipeNet()
	defer pn.Close()
	srv := tolerantServer(l, z, 99)
	var stats ServeStats
	var serveErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats, serveErr = srv.Serve(pn.Listener())
	}()

	// Device 0's two attempts are uploaded by hand over the raw wire
	// protocol, so both are fully consumed by the server before any
	// other device even dials — the round cannot complete early, and
	// whichever arrival the collect loop processes first, the Attempt
	// numbers decide the supersede deterministically.
	lr := core.LocalClusterAndSample(devices[0], core.LocalOptions{UseEigengap: true},
		rand.New(rand.NewSource(1000)))
	rows, cols := lr.Samples.Dims()
	upload := func(attempt int) net.Conn {
		t.Helper()
		conn, err := pn.Dial()
		if err != nil {
			t.Fatalf("attempt %d dial: %v", attempt, err)
		}
		var hello RoundHello
		if err := gob.NewDecoder(conn).Decode(&hello); err != nil {
			t.Fatalf("attempt %d hello: %v", attempt, err)
		}
		if err := gob.NewEncoder(conn).Encode(SampleUpload{
			DeviceID: 0, Nonce: hello.Nonce, Attempt: attempt, Rows: rows, Cols: cols, Data: lr.Samples.Data(),
		}); err != nil {
			t.Fatalf("attempt %d upload: %v", attempt, err)
		}
		return conn
	}
	// Attempt 1: pooled by the server, but the device never reads the
	// reply — the pooled-yet-unacknowledged state that forces a retry.
	connA := upload(1)
	// Attempt 2: the identical payload re-uploaded; this connection
	// stays live for the reply.
	connB := upload(2)

	results := make([]ClientResult, z)
	errs := make([]error, z)
	var cw sync.WaitGroup
	for dev := 1; dev < z; dev++ {
		cw.Add(1)
		go func(dev int) {
			defer cw.Done()
			rng := rand.New(rand.NewSource(int64(1000 + dev)))
			results[dev], errs[dev] = RunClientDialer(pn.Dial, dev, devices[dev],
				core.LocalOptions{UseEigengap: true}, RetryPolicy{}, rng)
		}(dev)
	}

	// The live retry connection gets the assignments once the round
	// completes; the superseded one gets the rejection.
	var replyB AssignmentReply
	if err := gob.NewDecoder(connB).Decode(&replyB); err != nil {
		t.Fatalf("retry reply: %v", err)
	}
	if replyB.Err != "" {
		t.Fatalf("live retry rejected: %s", replyB.Err)
	}
	var replyA AssignmentReply
	if err := gob.NewDecoder(connA).Decode(&replyA); err != nil {
		t.Fatalf("superseded reply: %v", err)
	}
	if !strings.Contains(replyA.Err, "superseded") {
		t.Fatalf("first attempt's reply should carry the supersede rejection, got %q", replyA.Err)
	}
	_ = connA.Close() // the exchange is over; nothing acts on the error
	_ = connB.Close() // the exchange is over; nothing acts on the error
	res0 := applyPhase3(devices[0], core.LocalOptions{UseEigengap: true}, lr, replyB.Assignments)
	cw.Wait()
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("server: %v", serveErr)
	}
	if stats.Retries != 1 {
		t.Fatalf("dedup table recorded %d replacements, want 1", stats.Retries)
	}
	if stats.Samples != baseStats.Samples {
		t.Fatalf("re-upload was double-pooled: %d samples, single-attempt run had %d",
			stats.Samples, baseStats.Samples)
	}
	if stats.Devices != z {
		t.Fatalf("round pooled %d devices, want %d", stats.Devices, z)
	}
	labels := make([][]int, z)
	labels[0] = res0.Labels
	for dev := 1; dev < z; dev++ {
		if errs[dev] != nil {
			t.Fatalf("client %d: %v", dev, errs[dev])
		}
		labels[dev] = results[dev].Labels
	}
	got := core.FlattenLabels(labels)
	want := core.FlattenLabels(baseLabels)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("label %d diverged after retry: got %d, single-attempt run says %d", i, got[i], want[i])
		}
	}
	if len(stats.Failures) != 1 || !strings.Contains(stats.Failures[0], "superseded") {
		t.Fatalf("replaced attempt not reported as superseded: %v", stats.Failures)
	}
}

// TestRetryAfterMidUploadReset drives the retry machinery end to end:
// device 0's first upload is cut at byte 512 by the chaos transport,
// the client backs off and retries on a fresh connection, and the
// round must match the fault-free run exactly.
func TestRetryAfterMidUploadReset(t *testing.T) {
	const l, z = 4, 6
	devices, _ := fedDevices(20, 3, l, z, 2, 8, 171)
	baseLabels, baseStats := runCleanRound(t, tolerantServer(l, z, 99), devices)

	pn := chaos.NewPipeNet()
	defer pn.Close()
	sched := &chaos.Schedule{
		Seed: 5,
		// The gob-encoded upload is ~475 bytes here, so the cut at byte
		// 256 lands mid-payload.
		Devices: map[int]chaos.Script{0: {ResetWriteAt: 256}},
		Trace:   chaos.NewTrace(),
	}
	srv := tolerantServer(l, z, 99)
	var stats ServeStats
	var serveErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats, serveErr = srv.Serve(pn.Listener())
	}()
	policy := RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Timeout: 2 * time.Second}
	results := make([]ClientResult, z)
	errs := make([]error, z)
	var cw sync.WaitGroup
	for dev := 0; dev < z; dev++ {
		cw.Add(1)
		go func(dev int) {
			defer cw.Done()
			rng := rand.New(rand.NewSource(int64(1000 + dev)))
			results[dev], errs[dev] = RunClientDialer(sched.Dialer(dev, pn.Dial), dev, devices[dev],
				core.LocalOptions{UseEigengap: true}, policy, rng)
		}(dev)
	}
	cw.Wait()
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("server: %v", serveErr)
	}
	if results[0].Attempts != 2 {
		t.Fatalf("device 0 took %d attempts, want 2 (reset then clean)", results[0].Attempts)
	}
	if stats.Samples != baseStats.Samples {
		t.Fatalf("faulted round pooled %d samples, fault-free %d", stats.Samples, baseStats.Samples)
	}
	if stats.UplinkBytes <= baseStats.UplinkBytes {
		t.Fatalf("partial attempt not accounted: uplink %d not above fault-free %d",
			stats.UplinkBytes, baseStats.UplinkBytes)
	}
	labels := make([][]int, z)
	for dev := range results {
		if errs[dev] != nil {
			t.Fatalf("client %d: %v", dev, errs[dev])
		}
		labels[dev] = results[dev].Labels
	}
	if acc := metrics.Accuracy(core.FlattenLabels(baseLabels), core.FlattenLabels(labels)); acc != 100 {
		t.Fatalf("faulted round diverged from fault-free run: overlap %.1f%%", acc)
	}
	if len(sched.Trace.Events(0)) == 0 {
		t.Fatal("chaos trace recorded no fault for the reset device")
	}
}

// TestDownlinkBytesCounted: the communication accounting must cover
// both directions — hellos and replies are real traffic.
func TestDownlinkBytesCounted(t *testing.T) {
	devices, _ := fedDevices(20, 3, 4, 8, 2, 8, 172)
	labels, stats := runRound(t, devices, 4, false)
	if stats.DownlinkBytes <= 0 {
		t.Fatalf("downlink bytes not counted: %+v", stats)
	}
	// Every device received a hello and an assignment slice; a few
	// bytes per pooled sample is a safe floor.
	if stats.DownlinkBytes < int64(stats.Samples) {
		t.Fatalf("downlink %d bytes below one byte per sample (%d)", stats.DownlinkBytes, stats.Samples)
	}
	// The uplink carries 8-byte floats per entry, the downlink small
	// ints; uplink must dominate.
	if stats.DownlinkBytes >= stats.UplinkBytes {
		t.Fatalf("downlink %d not below uplink %d", stats.DownlinkBytes, stats.UplinkBytes)
	}
	if len(labels) != len(devices) {
		t.Fatalf("labels for %d devices, want %d", len(labels), len(devices))
	}
}

// TestStaleNonceRejected: an upload carrying another round's nonce (a
// replayed or late connect) must be rejected, never pooled.
func TestStaleNonceRejected(t *testing.T) {
	sc, cc := net.Pipe()
	srv := &Server{L: 2, Expect: 1, Seed: 3}
	done := make(chan error, 1)
	go func() {
		_, err := srv.ServeConns([]net.Conn{sc})
		done <- err
	}()
	dec := gob.NewDecoder(cc)
	var hello RoundHello
	if err := dec.Decode(&hello); err != nil {
		t.Fatalf("hello: %v", err)
	}
	go func() {
		gob.NewEncoder(cc).Encode(SampleUpload{
			DeviceID: 3, Nonce: hello.Nonce + 1, Rows: 2, Cols: 1, Data: []float64{1, 2},
		})
	}()
	var reply AssignmentReply
	if err := dec.Decode(&reply); err != nil {
		t.Fatalf("reply: %v", err)
	}
	if !strings.Contains(reply.Err, "stale round nonce") {
		t.Fatalf("stale upload not rejected: %q", reply.Err)
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "device 3") {
		t.Fatalf("server error should name the device: %v", err)
	}
}

// TestMaxUploadBytesEnforced: an oversized payload must be cut off at
// the limit instead of reaching the decoder's allocations.
func TestMaxUploadBytesEnforced(t *testing.T) {
	sc, cc := net.Pipe()
	srv := &Server{L: 2, Expect: 1, Seed: 4, MaxUploadBytes: 1024}
	done := make(chan error, 1)
	go func() {
		_, err := srv.ServeConns([]net.Conn{sc})
		done <- err
	}()
	dec := gob.NewDecoder(cc)
	var hello RoundHello
	if err := dec.Decode(&hello); err != nil {
		t.Fatalf("hello: %v", err)
	}
	// The pipe is synchronous: the sender below blocks mid-upload when
	// the server stops reading at the limit, so the rejection reply must
	// be drained concurrently for the server's write to complete.
	go func() {
		var reply AssignmentReply
		_ = dec.Decode(&reply) // the reply may race the conn teardown
		_ = cc.Close()         // unblocks the stuck upload write
	}()
	go func() {
		// ~8KB payload against a 1KB limit; the Encode error (server
		// stops reading, then the drain goroutine closes the conn) is
		// the expected outcome for the sender.
		_ = gob.NewEncoder(cc).Encode(SampleUpload{
			DeviceID: 9, Nonce: hello.Nonce, Rows: 32, Cols: 32, Data: make([]float64, 1024),
		}) // the Encode error is the point of the test, not a failure
	}()
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "byte limit") {
		t.Fatalf("oversized upload not limited: %v", err)
	}
}

// TestMalformedGobRejected: a client speaking garbage instead of gob
// must produce a per-device rejection, not a wedged round.
func TestMalformedGobRejected(t *testing.T) {
	sc, cc := net.Pipe()
	srv := &Server{L: 2, Expect: 1, Seed: 5}
	done := make(chan error, 1)
	go func() {
		_, err := srv.ServeConns([]net.Conn{sc})
		done <- err
	}()
	dec := gob.NewDecoder(cc)
	var hello RoundHello
	if err := dec.Decode(&hello); err != nil {
		t.Fatalf("hello: %v", err)
	}
	go func() {
		if _, err := cc.Write([]byte("\x07this is not a gob stream")); err != nil {
			return
		}
		_ = cc.Close()
	}()
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "decode upload") {
		t.Fatalf("garbage stream not rejected: %v", err)
	}
}

// TestValidateHostile covers the overflow and non-finite guards.
func TestValidateHostile(t *testing.T) {
	overflow := SampleUpload{Rows: math.MaxInt / 2, Cols: 3}
	if err := overflow.Validate(); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("Rows*Cols overflow accepted: %v", err)
	}
	nan := SampleUpload{Rows: 1, Cols: 2, Data: []float64{1, math.NaN()}}
	if err := nan.Validate(); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("NaN entry accepted: %v", err)
	}
	inf := SampleUpload{Rows: 1, Cols: 2, Data: []float64{math.Inf(-1), 1}}
	if err := inf.Validate(); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("Inf entry accepted: %v", err)
	}
	good := SampleUpload{Rows: 1, Cols: 2, Data: []float64{1, 2}}
	if err := good.Validate(); err != nil {
		t.Fatalf("finite upload rejected: %v", err)
	}
}

// TestRetryPolicyBackoff pins the backoff law: deterministic under a
// seeded rng, exponential, capped.
func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Jitter: 0.5}
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for attempt := 1; attempt <= 8; attempt++ {
		da := p.Backoff(attempt, a)
		db := p.Backoff(attempt, b)
		if da != db {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, da, db)
		}
		if max := time.Duration(float64(80*time.Millisecond) * 1.5); da > max {
			t.Fatalf("attempt %d: backoff %v above jittered cap %v", attempt, da, max)
		}
		if da <= 0 {
			t.Fatalf("attempt %d: non-positive backoff %v", attempt, da)
		}
	}
	if (RetryPolicy{}).attempts() != 1 {
		t.Fatal("zero policy must mean a single attempt")
	}
}
