package fednet

import (
	"encoding/gob"
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"fedsc/internal/core"
)

// waitGoroutines polls until the process goroutine count settles back
// to base+slack, dumping all stacks on timeout. Leaked goroutines are
// invisible to the race detector — a blocked goroutine touches no
// shared memory — so goroutine counting is the runtime complement of
// the goroutineleak analyzer.
func waitGoroutines(t *testing.T, base, slack int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: base %d, now %d\n%s", base, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeReleasesAcceptorGoroutine is the regression test for the
// acceptor leak: Serve leaves the listener open for the caller by
// contract, so before the fix every round parked its acceptor
// goroutine in ln.Accept forever — one leaked goroutine per round on a
// reused listener. The listener is deliberately kept open across the
// assertion window (closing it would have freed the leaked acceptors
// and masked the bug).
func TestServeReleasesAcceptorGoroutine(t *testing.T) {
	devices, _ := fedDevices(12, 2, 3, 1, 2, 6, 42)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	base := runtime.NumGoroutine()

	const rounds = 4
	for i := 0; i < rounds; i++ {
		srv := &Server{L: 3, Expect: 1, Seed: 5}
		clientErr := make(chan error, 1)
		go func() {
			rng := rand.New(rand.NewSource(int64(100 + i)))
			_, err := DialAndRun(ln.Addr().String(), 0, devices[0], core.LocalOptions{UseEigengap: true}, rng)
			clientErr <- err
		}()
		if _, err := srv.Serve(ln); err != nil {
			t.Fatalf("round %d: serve: %v", i, err)
		}
		if err := <-clientErr; err != nil {
			t.Fatalf("round %d: client: %v", i, err)
		}
	}
	// Every per-round goroutine (acceptor included) must be gone while
	// the listener is still open; pre-fix this sits at base+rounds.
	waitGoroutines(t, base, 1, 3*time.Second)
}

// TestRunClientDuplicateJoinsDrain is the regression test for the
// fire-and-forget drain goroutine: before the fix, RunClientDuplicate
// returned while its superseded-connection drain could still be parked
// in Decode — forever, when the server never answered that connection
// and the policy carried no reply deadline. The fake server here does
// exactly that: it completes the exchange on the second connection and
// goes silent on the first, so only the join-on-return fix gets the
// goroutine count back to baseline.
func TestRunClientDuplicateJoinsDrain(t *testing.T) {
	devices, _ := fedDevices(12, 2, 3, 1, 2, 6, 43)
	base := runtime.NumGoroutine()

	conns := make(chan net.Conn, 2)
	serverA, clientA := net.Pipe()
	serverB, clientB := net.Pipe()
	conns <- clientA
	conns <- clientB
	dial := func() (net.Conn, error) { return <-conns, nil }

	done := make(chan struct{})
	go func() {
		// Connection A: hello, read the upload, then silence — the shape
		// of a round that aborts before the reply pass.
		defer close(done)
		if err := gob.NewEncoder(serverA).Encode(RoundHello{Nonce: 7}); err != nil {
			t.Errorf("hello A: %v", err)
			return
		}
		var up SampleUpload
		if err := gob.NewDecoder(serverA).Decode(&up); err != nil {
			t.Errorf("upload A: %v", err)
			return
		}
		// Connection B: the full exchange with a real reply.
		if err := gob.NewEncoder(serverB).Encode(RoundHello{Nonce: 7}); err != nil {
			t.Errorf("hello B: %v", err)
			return
		}
		if err := gob.NewDecoder(serverB).Decode(&up); err != nil {
			t.Errorf("upload B: %v", err)
			return
		}
		if err := gob.NewEncoder(serverB).Encode(AssignmentReply{Assignments: make([]int, up.Cols)}); err != nil {
			t.Errorf("reply B: %v", err)
		}
	}()

	rng := rand.New(rand.NewSource(9))
	if _, err := RunClientDuplicate(dial, 0, devices[0], core.LocalOptions{UseEigengap: true}, RetryPolicy{}, rng); err != nil {
		t.Fatalf("duplicate client: %v", err)
	}
	<-done
	_ = serverA.Close()
	_ = serverB.Close()
	// The drain goroutine must have been joined before the client
	// returned; pre-fix it is still parked in Decode on connection A.
	waitGoroutines(t, base, 1, 3*time.Second)
}
