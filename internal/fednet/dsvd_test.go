package fednet

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"fedsc/internal/chaos"
	"fedsc/internal/dsvd"
	"fedsc/internal/mat"
	"fedsc/internal/obs"
	"fedsc/internal/theory"
)

// dsvdBlocks deals the columns of a planted low-rank matrix into
// per-device blocks of the given sizes.
func dsvdBlocks(n, d int, sizes []int, seed int64) (*mat.Dense, []*mat.Dense) {
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for _, c := range sizes {
		total += c
	}
	basis := mat.RandomOrthonormal(n, d, rng)
	coef := mat.RandomGaussian(d, total, rng)
	x := mat.Mul(basis, coef)
	noise := mat.RandomGaussian(n, total, rng)
	xd, nd := x.Data(), noise.Data()
	for i := range xd {
		xd[i] += 0.01 * nd[i]
	}
	blocks := make([]*mat.Dense, len(sizes))
	off := 0
	col := make([]float64, n)
	for z, c := range sizes {
		b := mat.NewDense(n, c)
		for j := 0; j < c; j++ {
			x.Col(off+j, col)
			b.SetCol(j, col)
		}
		blocks[z] = b
		off += c
	}
	return x, blocks
}

// TestDSVDHelloRoundTrip pins the wire encoding: a valid hello gob
// round-trips to an identical value that still validates.
func TestDSVDHelloRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(12)
		k := 1 + r.Intn(6)
		basis := make([]float64, rows*k)
		for i := range basis {
			basis[i] = r.NormFloat64()
		}
		h := DSVDHello{
			Nonce:  r.Int63(),
			Iter:   r.Intn(50),
			Rows:   rows,
			K:      k,
			Basis:  basis,
			Codecs: []WireCodec{CodecFloat64},
		}
		if h.Validate() != nil {
			return false
		}
		var buf bytes.Buffer
		if gob.NewEncoder(&buf).Encode(h) != nil {
			return false
		}
		var got DSVDHello
		if gob.NewDecoder(&buf).Decode(&got) != nil {
			return false
		}
		return reflect.DeepEqual(h, got) && got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestDSVDHelloValidateRejects(t *testing.T) {
	good := DSVDHello{Rows: 3, K: 2, Basis: make([]float64, 6)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid hello rejected: %v", err)
	}
	cases := map[string]DSVDHello{
		"wrong length":  {Rows: 3, K: 2, Basis: make([]float64, 5)},
		"nan entry":     {Rows: 1, K: 2, Basis: []float64{0, math.NaN()}},
		"inf entry":     {Rows: 1, K: 2, Basis: []float64{math.Inf(1), 0}},
		"zero rows":     {Rows: 0, K: 2},
		"negative rank": {Rows: 3, K: -1},
		"overflow":      {Rows: math.MaxInt / 2, K: 3},
	}
	for name, h := range cases {
		if err := h.Validate(); err == nil {
			t.Fatalf("%s: hello validated", name)
		}
	}
}

// runNetworkedDSVD executes a full distributed solve over an in-process
// pipe network, returning the server stats and per-device client stats.
func runNetworkedDSVD(t *testing.T, blocks []*mat.Dense, srv *DSVDServer) (DSVDServeStats, []DSVDClientStats) {
	t.Helper()
	pn := chaos.NewPipeNet()
	defer pn.Close()
	var stats DSVDServeStats
	var serveErr error
	serverDone := make(chan struct{})
	go func() {
		defer close(serverDone)
		stats, serveErr = srv.Serve(pn.Listener())
	}()
	clientStats := make([]DSVDClientStats, len(blocks))
	clientErrs := make([]error, len(blocks))
	var wg sync.WaitGroup
	for dev := range blocks {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + dev)))
			clientStats[dev], clientErrs[dev] = RunDSVDClient(pn.Dial, dev, blocks[dev],
				RetryPolicy{Timeout: 5 * time.Second}, WireOptions{}, rng)
		}(dev)
	}
	wg.Wait()
	<-serverDone
	if serveErr != nil {
		t.Fatalf("server: %v", serveErr)
	}
	for dev, err := range clientErrs {
		if err != nil {
			t.Fatalf("device %d: %v", dev, err)
		}
	}
	return stats, clientStats
}

// TestDSVDNetworkedEqualsInProcess is the transport-transparency pin:
// a solve over the wire must produce bit-identical results to the
// in-process dsvd.Run over the same blocks — same basis bits, same
// singular values, same iteration count.
func TestDSVDNetworkedEqualsInProcess(t *testing.T) {
	const n, d = 18, 3
	_, blocks := dsvdBlocks(n, d, []int{12, 25, 17}, 44)
	opts := dsvd.Options{K: d, Seed: 9, Obs: obs.NewRegistry()}
	srv := &DSVDServer{Expect: len(blocks), Rows: n, Opts: opts, WaitTimeout: 10 * time.Second}
	stats, clientStats := runNetworkedDSVD(t, blocks, srv)

	local, err := dsvd.Run(blocks, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats.Result.U.Data(), local.U.Data()) {
		t.Fatal("networked basis differs from in-process basis")
	}
	if !reflect.DeepEqual(stats.Result.Sigma, local.Sigma) {
		t.Fatalf("networked sigma %v != in-process %v", stats.Result.Sigma, local.Sigma)
	}
	if stats.Result.Iters != local.Iters || stats.Result.Residual != local.Residual { //fedsc:allow floatcmp bit-identity pin, not a tolerance check
		t.Fatalf("networked (iters=%d, rho=%g) != in-process (iters=%d, rho=%g)",
			stats.Result.Iters, stats.Result.Residual, local.Iters, local.Residual)
	}
	for dev, cs := range clientStats {
		if cs.Iters != local.Iters {
			t.Fatalf("device %d served %d iterations, solve took %d", dev, cs.Iters, local.Iters)
		}
		if cs.Attempts != cs.Iters {
			t.Fatalf("device %d needed %d attempts for %d iterations on a clean network", dev, cs.Attempts, cs.Iters)
		}
	}
	if len(stats.Failures) != 0 || stats.Retries != 0 {
		t.Fatalf("clean network produced failures %v, retries %d", stats.Failures, stats.Retries)
	}
}

// TestDSVDMatchesCentralizedOverWire closes the loop against the
// centralized decomposition: the basis estimated without any raw
// column ever crossing the wire must agree with mat.TruncatedSVD of
// the pooled matrix to principal-angle cosine ≥ 0.999.
func TestDSVDMatchesCentralizedOverWire(t *testing.T) {
	const n, d = 20, 3
	x, blocks := dsvdBlocks(n, d, []int{30, 15, 15}, 7)
	opts := dsvd.Options{K: d, Seed: 21, Tol: 1e-11, MaxIter: 300, Obs: obs.NewRegistry()}
	srv := &DSVDServer{Expect: len(blocks), Rows: n, Opts: opts, WaitTimeout: 10 * time.Second}
	stats, _ := runNetworkedDSVD(t, blocks, srv)
	central, _ := mat.TruncatedSVD(x, d)
	for _, c := range theory.PrincipalAngles(stats.Result.U, central) {
		if c < 0.999 {
			t.Fatalf("principal-angle cosines %v below 0.999", theory.PrincipalAngles(stats.Result.U, central))
		}
	}
}

// TestDSVDUplinkSublinearInSamples asserts the privacy/cost contract:
// a device's uplink is Iters×n×k values no matter how many columns it
// holds — constant, hence sublinear, in the local sample count.
func TestDSVDUplinkSublinearInSamples(t *testing.T) {
	const n, d = 14, 2
	small := []int{4, 4, 4}
	big := []int{64, 64, 64}
	perDeviceBits := func(sizes []int) (int64, int) {
		_, blocks := dsvdBlocks(n, d, sizes, 3)
		opts := dsvd.Options{K: d, Seed: 5, Obs: obs.NewRegistry()}
		srv := &DSVDServer{Expect: len(blocks), Rows: n, Opts: opts, WaitTimeout: 10 * time.Second}
		stats, _ := runNetworkedDSVD(t, blocks, srv)
		want := int64(stats.Result.Iters) * int64(len(blocks)) * int64(n) * int64(d) * 64
		if stats.UplinkPayloadBits != want {
			t.Fatalf("sizes %v: payload bits %d, want iters×devices×n×k×64 = %d",
				sizes, stats.UplinkPayloadBits, want)
		}
		return stats.UplinkPayloadBits / int64(len(blocks)), stats.Result.Iters
	}
	smallBits, smallIters := perDeviceBits(small)
	bigBits, bigIters := perDeviceBits(big)
	if smallBits/int64(smallIters) != bigBits/int64(bigIters) {
		t.Fatalf("per-device per-iteration uplink depends on local sample count: %d vs %d bits",
			smallBits/int64(smallIters), bigBits/int64(bigIters))
	}
}

// TestDSVDServerRejectsBadConfig covers the argument validation.
func TestDSVDServerRejectsBadConfig(t *testing.T) {
	if _, err := (&DSVDServer{Expect: 0, Rows: 4, Opts: dsvd.Options{K: 2}}).Serve(&staticListener{}); err == nil {
		t.Fatal("zero Expect accepted")
	}
	if _, err := (&DSVDServer{Expect: 1, Rows: 0, Opts: dsvd.Options{K: 2}}).Serve(&staticListener{}); err == nil {
		t.Fatal("zero Rows accepted")
	}
	if _, err := (&DSVDServer{Expect: 1, Rows: 4, Opts: dsvd.Options{K: 0}}).Serve(&staticListener{}); err == nil {
		t.Fatal("zero rank accepted")
	}
}
