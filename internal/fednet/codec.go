package fednet

import (
	"fmt"
	"math"

	"fedsc/internal/privacy"
)

// WireCodec names an upload payload encoding. The codec is negotiated
// per connection: the server advertises the codecs it accepts in the
// round hello, and the client picks the richest one it can produce.
type WireCodec string

const (
	// CodecFloat64 is the passthrough encoding: samples travel as raw
	// float64 values (64 bits each), the pre-negotiation behaviour. An
	// empty Codec field means the same, so hand-rolled and historical
	// uploads keep validating.
	CodecFloat64 WireCodec = "float64"
	// CodecQuant is the quantized encoding of Section IV-E: each value
	// is a Bits-wide level index of a midrise uniform quantizer over
	// [-Max, Max], bit-packed MSB-first. The server decodes indices to
	// cell centers, so a quantized networked round pools exactly the
	// matrix privacy.Quantizer.Apply would produce in process.
	CodecQuant WireCodec = "quant"
)

// QuantPayload is the CodecQuant upload body: the quantizer parameters
// (the codebook is implied by Bits and Max — uniform midrise) plus the
// packed level indices for Rows×Cols values.
type QuantPayload struct {
	// Bits per value, in [1, 32].
	Bits int
	// Max is the quantizer clipping range; non-positive means the
	// unit-norm default of 1.
	Max float64
	// Packed is the MSB-first bit stream of level indices.
	Packed []byte
}

// codec normalizes the empty codec to float64 passthrough.
func (u SampleUpload) codec() WireCodec {
	if u.Codec == "" {
		return CodecFloat64
	}
	return u.Codec
}

// quantizer reconstructs the codec from a quantized upload's payload
// parameters.
func (p *QuantPayload) quantizer() privacy.Quantizer {
	return privacy.Quantizer{Bits: p.Bits, Max: p.Max}
}

// codecOffered reports whether codecs (the hello's advertisement)
// includes c; an empty advertisement offers only float64 passthrough.
func codecOffered(codecs []WireCodec, c WireCodec) bool {
	if len(codecs) == 0 {
		return c == CodecFloat64
	}
	for _, o := range codecs {
		if o == c {
			return true
		}
	}
	return false
}

// validateWire checks the codec-specific payload invariants; the
// shared dimension checks have already passed.
func (u SampleUpload) validateWire() error {
	switch u.codec() {
	case CodecFloat64:
		if u.Quant != nil {
			return fmt.Errorf("fednet: float64 upload carries a quantized payload")
		}
		if len(u.Data) != u.Rows*u.Cols {
			return fmt.Errorf("fednet: payload length %d does not match %dx%d", len(u.Data), u.Rows, u.Cols)
		}
		for i, v := range u.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("fednet: non-finite sample entry %g at index %d", v, i)
			}
		}
		return nil
	case CodecQuant:
		if u.Quant == nil {
			return fmt.Errorf("fednet: quantized upload without payload")
		}
		if len(u.Data) != 0 {
			return fmt.Errorf("fednet: quantized upload also carries %d raw values", len(u.Data))
		}
		q := u.Quant.quantizer()
		if err := q.Validate(); err != nil {
			return err
		}
		// A hostile Max of NaN or ±Inf would decode every index to a
		// non-finite cell center and poison the pooled Gram matrices
		// exactly like a non-finite float64 entry.
		if math.IsNaN(u.Quant.Max) || math.IsInf(u.Quant.Max, 0) {
			return fmt.Errorf("fednet: non-finite quantizer range %g", u.Quant.Max)
		}
		if want := q.PackedLen(u.Rows * u.Cols); len(u.Quant.Packed) != want {
			return fmt.Errorf("fednet: quantized payload %d bytes for %dx%d values at %d bits, want %d",
				len(u.Quant.Packed), u.Rows, u.Cols, u.Quant.Bits, want)
		}
		return nil
	default:
		return fmt.Errorf("fednet: unknown wire codec %q", u.Codec)
	}
}

// Samples decodes the upload payload to row-major float64 values —
// passthrough for float64, cell centers for the quantized codec (equal
// to privacy.Quantizer.Roundtrip of the original values, so the server
// pools the same matrix an in-process quantized round would).
func (u SampleUpload) Samples() ([]float64, error) {
	switch u.codec() {
	case CodecFloat64:
		return u.Data, nil
	case CodecQuant:
		if u.Quant == nil {
			return nil, fmt.Errorf("fednet: quantized upload without payload")
		}
		return u.Quant.quantizer().Unpack(u.Quant.Packed, u.Rows*u.Cols)
	default:
		return nil, fmt.Errorf("fednet: unknown wire codec %q", u.Codec)
	}
}

// PayloadBits is the Section IV-E payload size of the upload: values ×
// bits-per-value under the negotiated codec (64 for passthrough). This
// is the quantity the paper's n·q·Σr⁽ᶻ⁾ uplink formula counts; the
// gob-framed UplinkBytes adds the wire's framing overhead on top.
func (u SampleUpload) PayloadBits() int64 {
	bits := 64
	if u.codec() == CodecQuant && u.Quant != nil {
		bits = u.Quant.Bits
	}
	return int64(u.Rows) * int64(u.Cols) * int64(bits)
}

// WireOptions configures the client side of the codec negotiation.
type WireOptions struct {
	// Quant, when non-nil, makes the client upload quantized samples
	// whenever the server advertises CodecQuant, falling back to
	// float64 passthrough otherwise. Packing is stateless and
	// deterministic, so every retry of an attempt carries byte-identical
	// payloads and the server's dedup replacement stays idempotent.
	Quant *privacy.Quantizer
}

// encodeWire finishes an upload for one connection after the hello:
// it picks the codec from the server's advertisement and, for
// CodecQuant, replaces the raw values with the packed level indices.
func encodeWire(upload SampleUpload, wire WireOptions, offered []WireCodec) (SampleUpload, error) {
	if wire.Quant != nil && codecOffered(offered, CodecQuant) {
		q := *wire.Quant
		packed, err := q.Pack(upload.Data)
		if err != nil {
			return SampleUpload{}, fmt.Errorf("fednet: device %d quantize upload: %w", upload.DeviceID, err)
		}
		upload.Codec = CodecQuant
		upload.Quant = &QuantPayload{Bits: q.Bits, Max: q.Max, Packed: packed}
		upload.Data = nil
		return upload, nil
	}
	if !codecOffered(offered, CodecFloat64) {
		return SampleUpload{}, fmt.Errorf("fednet: device %d cannot satisfy server codecs %v", upload.DeviceID, offered)
	}
	upload.Codec = CodecFloat64
	return upload, nil
}
