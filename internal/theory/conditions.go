package theory

import (
	"math"
	"math/rand"

	"fedsc/internal/mat"
)

// SemiRandomReport evaluates the global semi-random conditions of
// Theorems 1 (SSC) and 2 (TSC) for a set of subspaces and a federated
// layout, returning both sides of each inequality so callers can see the
// margin, not just a boolean.
type SemiRandomReport struct {
	// MaxNormalizedAffinity is max_{k≠ℓ} aff(S_ℓ,S_k)/√(d_k∧d_ℓ).
	MaxNormalizedAffinity float64
	// SSCBound is the right-hand side of Corollary 1 (up to the
	// unspecified constants c, t, here taken as 1).
	SSCBound float64
	// TSCBound is the right-hand side of Corollary 2.
	TSCBound float64
	// SSCHolds and TSCHolds report whether the affinities clear the
	// respective bounds.
	SSCHolds, TSCHolds bool
}

// CheckSemiRandom evaluates the corollaries' affinity bounds for
// subspaces with orthonormal bases, all of dimension d, with Z′ devices
// per subspace and at most rPrime local clusters per device.
func CheckSemiRandom(bases []*mat.Dense, d, zPrime, rPrime int) SemiRandomReport {
	l := len(bases)
	maxAff := 0.0
	for a := 0; a < l; a++ {
		for b := a + 1; b < l; b++ {
			if aff := NormalizedAffinity(bases[a], bases[b]); aff > maxAff {
				maxAff = aff
			}
		}
	}
	rep := SemiRandomReport{MaxNormalizedAffinity: maxAff}
	// Corollary 1 (constants c = t = 1): √(d·log((Z′−1)/d)) / log[L·r′·Z′·(r′Z′+1)],
	// normalized by √d to compare with the normalized affinity.
	logArg := float64(zPrime-1) / float64(d)
	if logArg > 1 {
		num := math.Sqrt(float64(d) * math.Log(logArg))
		den := math.Log(float64(l) * float64(rPrime) * float64(zPrime) * (float64(rPrime)*float64(zPrime) + 1))
		if den > 0 {
			rep.SSCBound = num / den / math.Sqrt(float64(d))
		}
	}
	// Corollary 2: √d / (15·log(L·r′·Z′)), normalized by √d.
	den2 := 15 * math.Log(float64(l)*float64(rPrime)*float64(zPrime))
	if den2 > 0 {
		rep.TSCBound = 1 / den2
	}
	rep.SSCHolds = maxAff < rep.SSCBound
	rep.TSCHolds = maxAff <= rep.TSCBound
	return rep
}

// DeterministicReport evaluates the active deterministic condition of
// Theorems 1-2 for one subspace: the worst-case inradius of the
// symmetrized convex hulls against the active subspace incoherence.
type DeterministicReport struct {
	// MinInradius estimates min over leave-one-out submatrices of
	// r(𝒫(X̃_{ℓ,−i})).
	MinInradius float64
	// ActiveIncoherence is μ̃(X_ℓ) of Definition 3.
	ActiveIncoherence float64
	// Holds reports MinInradius > ActiveIncoherence.
	Holds bool
}

// CheckDeterministic evaluates the condition for subspace ℓ. xl holds the
// subspace's points (columns), basis its orthonormal basis, xActive the
// points of subspaces in its active set (Definition 3); nMin is N′_ℓ, the
// smallest per-device count of subspace-ℓ points (the condition minimizes
// over all nMin-column submatrices — here estimated over `subsets` random
// submatrices). rng drives the inradius estimator.
func CheckDeterministic(xl, basis, xActive *mat.Dense, nMin, subsets, inradiusTrials int, rng *rand.Rand) DeterministicReport {
	cols := xl.Cols()
	if nMin > cols {
		nMin = cols
	}
	minInr := math.Inf(1)
	for s := 0; s < subsets; s++ {
		idx := rng.Perm(cols)[:nMin]
		sub := xl.SelectCols(idx)
		// Leave-one-out: the condition requires the inradius of every
		// 𝒫(X̃_{ℓ,−i}); estimate the minimum over i.
		for i := 0; i < nMin; i++ {
			keep := make([]int, 0, nMin-1)
			for j := 0; j < nMin; j++ {
				if j != i {
					keep = append(keep, j)
				}
			}
			loo := sub.SelectCols(keep)
			if inr := InradiusEstimate(loo, basis, inradiusTrials, rng); inr < minInr {
				minInr = inr
			}
		}
	}
	var inc float64
	if xActive != nil && xActive.Cols() > 0 {
		inc = Incoherence(xl, basis, xActive, 0)
	}
	return DeterministicReport{
		MinInradius:       minInr,
		ActiveIncoherence: inc,
		Holds:             minInr > inc,
	}
}
