// Package theory implements the analytical quantities of Section V:
// principal angles and subspace affinity (Definition 5), subspace
// incoherence via dual directions (Definitions 1 and 3), active sets
// (Definition 2), the inradius of the symmetrized convex hull
// (Definition 4, estimated), the general-position property (Definition
// 6, checked probabilistically), and evaluators for the sufficient
// conditions of Theorems 1 and 2.
//
// These are analysis tools: the estimators documented as such trade
// exactness for tractability (the exact inradius is an NP-hard convex
// geometry problem) but are accurate enough to validate the theory's
// predictions in tests and experiments.
package theory

import (
	"math"
	"math/rand"

	"fedsc/internal/lasso"
	"fedsc/internal/mat"
)

// PrincipalAngles returns the cosines of the canonical angles between the
// subspaces spanned by the orthonormal bases u and v, sorted descending
// (cos φ⁽¹⁾ ≥ cos φ⁽²⁾ ≥ …). They are the singular values of uᵀv.
func PrincipalAngles(u, v *mat.Dense) []float64 {
	prod := mat.MulTA(u, v)
	sv := mat.SingularValues(prod)
	cos := make([]float64, len(sv))
	for i, s := range sv {
		if s > 1 {
			s = 1
		}
		cos[i] = s
	}
	return cos
}

// Affinity computes aff(S_k, S_ℓ) of Definition 5:
// sqrt(Σᵢ cos²φ⁽ⁱ⁾) over the first min(d_k, d_ℓ) canonical angles.
func Affinity(u, v *mat.Dense) float64 {
	cos := PrincipalAngles(u, v)
	s := 0.0
	for _, c := range cos {
		s += c * c
	}
	return math.Sqrt(s)
}

// NormalizedAffinity returns aff(S_k,S_ℓ)/√(d_k ∧ d_ℓ), the quantity the
// semi-random conditions bound; it lies in [0, 1].
func NormalizedAffinity(u, v *mat.Dense) float64 {
	d := u.Cols()
	if v.Cols() < d {
		d = v.Cols()
	}
	if d == 0 {
		return 0
	}
	return Affinity(u, v) / math.Sqrt(float64(d))
}

// DualDirection approximates ν(x, X) of Definition 1 — the solution of
// max ⟨x, ν⟩ s.t. ‖Xᵀν‖∞ ≤ 1 — through the Lasso dual: for the solution
// c_λ of min ½‖x−Xc‖² + λ‖c‖₁, the residual (x − Xc_λ)/λ converges to ν
// as λ→0. lambda controls the approximation (default 1e-3 when ≤ 0).
func DualDirection(x []float64, xs *mat.Dense, lambda float64) []float64 {
	if lambda <= 0 {
		lambda = 1e-3
	}
	c := lasso.Lasso(xs, x, lambda, nil, lasso.Options{MaxIter: 2000, Tol: 1e-10})
	fit := mat.MulVec(xs, c)
	nu := mat.Sub(x, fit, nil)
	mat.ScaleVec(1/lambda, nu)
	return nu
}

// ProjectedDualDirections computes the matrix V_ℓ of Definition 1 for the
// points of xl (columns): for each point, the dual direction against the
// remaining points of its subspace, projected onto the subspace (basis
// must span it) and normalized.
func ProjectedDualDirections(xl, basis *mat.Dense, lambda float64) *mat.Dense {
	n, cols := xl.Dims()
	v := mat.NewDense(n, cols)
	x := make([]float64, n)
	for i := 0; i < cols; i++ {
		xl.Col(i, x)
		others := make([]int, 0, cols-1)
		for j := 0; j < cols; j++ {
			if j != i {
				others = append(others, j)
			}
		}
		rest := xl.SelectCols(others)
		nu := DualDirection(x, rest, lambda)
		// Project onto the subspace and normalize.
		proj := mat.MulVec(basis, mat.MulTVec(basis, nu))
		// A denormal-scale projection is as degenerate as an exact zero:
		// normalizing it amplifies pure rounding noise into a "direction".
		if mat.Normalize(proj) <= 1e-12 {
			continue
		}
		v.SetCol(i, proj)
	}
	return v
}

// Incoherence computes μ(X_ℓ) of Definition 1: max over the columns x of
// xOthers of ‖V_ℓᵀ x‖∞, with V_ℓ the projected dual directions of xl.
func Incoherence(xl, basis, xOthers *mat.Dense, lambda float64) float64 {
	v := ProjectedDualDirections(xl, basis, lambda)
	prods := mat.MulTA(v, xOthers)
	return prods.MaxAbs()
}

// ActiveSets computes α(ℓ) of Definition 2 from a federated partition:
// k ∈ α(ℓ) iff some device holds points of both subspaces ℓ and k.
// labels are ground-truth subspace indices, pointsPerDevice the per-device
// point lists, l the number of subspaces.
func ActiveSets(labels []int, pointsPerDevice [][]int, l int) [][]int {
	joint := make([][]bool, l)
	for i := range joint {
		joint[i] = make([]bool, l)
	}
	for _, pts := range pointsPerDevice {
		present := map[int]bool{}
		for _, i := range pts {
			present[labels[i]] = true
		}
		for a := range present {
			for b := range present {
				if a != b {
					joint[a][b] = true
				}
			}
		}
	}
	out := make([][]int, l)
	for a := 0; a < l; a++ {
		for b := 0; b < l; b++ {
			if joint[a][b] {
				out[a] = append(out[a], b)
			}
		}
	}
	return out
}

// InradiusEstimate estimates r(𝒫(X)) of Definition 4 — the inradius of
// the symmetrized convex hull of the columns of x, measured within their
// span — by minimizing the support function h(w) = maxⱼ|xⱼᵀw| over unit
// directions w in the span: random restarts plus coordinate-free local
// descent. The true inradius is the minimum over ALL directions, so the
// returned value is an upper bound that tightens with trials.
func InradiusEstimate(x, basis *mat.Dense, trials int, rng *rand.Rand) float64 {
	d := basis.Cols()
	if d == 0 || x.Cols() == 0 {
		return 0
	}
	// Work in subspace coordinates: columns y_j = basisᵀ x_j, directions
	// unit vectors in R^d.
	y := mat.MulTA(basis, x)
	support := func(w []float64) (float64, int) {
		h, arg := -1.0, 0
		for j := 0; j < y.Cols(); j++ {
			s := 0.0
			for i := 0; i < d; i++ {
				s += y.At(i, j) * w[i]
			}
			if a := math.Abs(s); a > h {
				h, arg = a, j
			}
		}
		return h, arg
	}
	best := math.Inf(1)
	for t := 0; t < trials; t++ {
		w := mat.RandomUnitVector(d, rng)
		h, arg := support(w)
		// Local descent: step away from the active (maximal) point.
		step := 0.5
		for it := 0; it < 60 && step > 1e-6; it++ {
			g := make([]float64, d)
			sgn := 1.0
			s := 0.0
			for i := 0; i < d; i++ {
				s += y.At(i, arg) * w[i]
			}
			if s < 0 {
				sgn = -1
			}
			for i := 0; i < d; i++ {
				g[i] = sgn * y.At(i, arg)
			}
			cand := make([]float64, d)
			for i := 0; i < d; i++ {
				cand[i] = w[i] - step*g[i]
			}
			if mat.Normalize(cand) <= 1e-12 {
				step /= 2
				continue
			}
			if hc, ac := support(cand); hc < h {
				w, h, arg = cand, hc, ac
			} else {
				step /= 2
			}
		}
		if h < best {
			best = h
		}
	}
	return best
}

// GeneralPosition probabilistically checks Definition 6 for one
// subspace's points: every subset of k ≤ d columns should be linearly
// independent. Exhaustive checking is combinatorial, so `trials` random
// d-subsets are rank-tested; Gaussian-sampled data fails only with
// probability zero, so any dependent subset found is decisive.
func GeneralPosition(x *mat.Dense, d, trials int, rng *rand.Rand) bool {
	cols := x.Cols()
	if cols <= d {
		return mat.NumericalRank(x, 1e-9) == cols
	}
	for t := 0; t < trials; t++ {
		idx := rng.Perm(cols)[:d]
		sub := x.SelectCols(idx)
		if mat.NumericalRank(sub, 1e-9) < d {
			return false
		}
	}
	return true
}
