package theory

import (
	"math"
	"math/rand"
	"testing"

	"fedsc/internal/mat"
	"fedsc/internal/synth"
)

func TestPrincipalAnglesIdenticalSubspaces(t *testing.T) {
	rng := rand.New(rand.NewSource(180))
	u := mat.RandomOrthonormal(10, 3, rng)
	cos := PrincipalAngles(u, u)
	for i, c := range cos {
		if math.Abs(c-1) > 1e-10 {
			t.Fatalf("cos[%d] = %v want 1", i, c)
		}
	}
	if aff := Affinity(u, u); math.Abs(aff-math.Sqrt(3)) > 1e-9 {
		t.Fatalf("affinity of identical 3-dim subspaces = %v want √3", aff)
	}
}

func TestPrincipalAnglesOrthogonalSubspaces(t *testing.T) {
	// Span{e1,e2} vs span{e3,e4} in R^6.
	u := mat.NewDense(6, 2)
	u.Set(0, 0, 1)
	u.Set(1, 1, 1)
	v := mat.NewDense(6, 2)
	v.Set(2, 0, 1)
	v.Set(3, 1, 1)
	if aff := Affinity(u, v); aff > 1e-12 {
		t.Fatalf("orthogonal subspaces should have zero affinity, got %v", aff)
	}
	if na := NormalizedAffinity(u, v); na != 0 {
		t.Fatalf("normalized affinity = %v", na)
	}
}

func TestPrincipalAnglesKnownAngle(t *testing.T) {
	// 1-dim subspaces at 45°.
	u := mat.NewDense(2, 1)
	u.Set(0, 0, 1)
	v := mat.NewDense(2, 1)
	v.Set(0, 0, math.Sqrt2/2)
	v.Set(1, 0, math.Sqrt2/2)
	cos := PrincipalAngles(u, v)
	if math.Abs(cos[0]-math.Sqrt2/2) > 1e-12 {
		t.Fatalf("cos 45° = %v", cos[0])
	}
}

func TestNormalizedAffinityInUnitInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for i := 0; i < 10; i++ {
		u := mat.RandomOrthonormal(12, 3, rng)
		v := mat.RandomOrthonormal(12, 4, rng)
		na := NormalizedAffinity(u, v)
		if na < 0 || na > 1+1e-12 {
			t.Fatalf("normalized affinity %v outside [0,1]", na)
		}
	}
}

func TestDualDirectionFeasibility(t *testing.T) {
	// ν must (approximately) satisfy ‖Xᵀν‖∞ ≤ 1 and have positive ⟨x,ν⟩.
	rng := rand.New(rand.NewSource(182))
	s := synth.RandomSubspaces(12, 3, 1, rng)
	ds := s.Sample(15, rng)
	x := ds.X.Col(0, nil)
	rest := ds.X.SliceCols(1, 15)
	nu := DualDirection(x, rest, 1e-3)
	prods := mat.MulTVec(rest, nu)
	if mat.NormInf(prods) > 1.05 {
		t.Fatalf("dual feasibility violated: ‖Xᵀν‖∞ = %v", mat.NormInf(prods))
	}
	if mat.Dot(x, nu) <= 0 {
		t.Fatalf("dual objective ⟨x,ν⟩ = %v should be positive", mat.Dot(x, nu))
	}
}

func TestIncoherenceOrthogonalIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(183))
	// X_ℓ in span{e1..e3}, others in span{e4..e6}: Example 1 says μ = 0.
	n := 10
	basisL := mat.NewDense(n, 3)
	basisO := mat.NewDense(n, 3)
	for i := 0; i < 3; i++ {
		basisL.Set(i, i, 1)
		basisO.Set(i+3, i, 1)
	}
	coefL := mat.RandomGaussian(3, 12, rng)
	xl := mat.Mul(basisL, coefL)
	mat.NormalizeColumns(xl)
	coefO := mat.RandomGaussian(3, 12, rng)
	xo := mat.Mul(basisO, coefO)
	mat.NormalizeColumns(xo)
	mu := Incoherence(xl, basisL, xo, 0)
	if mu > 1e-6 {
		t.Fatalf("orthogonal-subspace incoherence = %v want ≈0", mu)
	}
}

func TestIncoherenceIncreasesWithOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(184))
	s := synth.RandomSubspaces(8, 2, 2, rng) // low ambient: subspaces overlap more
	dsA := s.SampleCounts([]int{14, 0}, rng)
	dsB := s.SampleCounts([]int{0, 14}, rng)
	mu := Incoherence(dsA.X, s.Bases[0], dsB.X, 0)
	if mu <= 0.05 {
		t.Fatalf("overlapping-subspace incoherence %v suspiciously small", mu)
	}
}

func TestActiveSets(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2, 2}
	// Device 0 holds clusters {0,1}; device 1 holds {2} only.
	points := [][]int{{0, 1, 2, 3}, {4, 5}}
	as := ActiveSets(labels, points, 3)
	if len(as[0]) != 1 || as[0][0] != 1 {
		t.Fatalf("α(0) = %v want [1]", as[0])
	}
	if len(as[1]) != 1 || as[1][0] != 0 {
		t.Fatalf("α(1) = %v want [0]", as[1])
	}
	if len(as[2]) != 0 {
		t.Fatalf("α(2) = %v want empty", as[2])
	}
}

func TestInradiusEstimateSimplexDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(185))
	// Points ±e1, ±e2 in R², symmetrized hull is the cross-polytope with
	// inradius 1/√2.
	x := mat.NewDense(2, 2)
	x.Set(0, 0, 1)
	x.Set(1, 1, 1)
	basis := mat.Identity(2)
	inr := InradiusEstimate(x, basis, 50, rng)
	if math.Abs(inr-math.Sqrt2/2) > 0.02 {
		t.Fatalf("cross-polytope inradius = %v want %v", inr, math.Sqrt2/2)
	}
}

func TestInradiusGrowsWithMorePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(186))
	s := synth.RandomSubspaces(10, 3, 1, rng)
	small := s.Sample(4, rng)
	large := s.Sample(60, rng)
	basis := s.Bases[0]
	inrSmall := InradiusEstimate(small.X, basis, 40, rng)
	inrLarge := InradiusEstimate(large.X, basis, 40, rng)
	if inrLarge <= inrSmall {
		t.Fatalf("denser data should have larger inradius: %v vs %v", inrSmall, inrLarge)
	}
	// Unit-norm points: the inradius is at most 1.
	if inrLarge > 1+1e-9 {
		t.Fatalf("inradius %v exceeds 1 for unit-norm points", inrLarge)
	}
}

func TestGeneralPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(187))
	s := synth.RandomSubspaces(10, 3, 1, rng)
	ds := s.Sample(12, rng)
	if !GeneralPosition(ds.X, 3, 30, rng) {
		t.Fatal("Gaussian-sampled points should be in general position")
	}
	// Duplicate columns break general position.
	dup := ds.X.Clone()
	dup.SetCol(1, dup.Col(0, nil))
	found := false
	for trial := 0; trial < 20 && !found; trial++ {
		found = !GeneralPosition(dup, 2, 200, rng)
	}
	if !found {
		t.Fatal("duplicated column never detected as degenerate")
	}
}

func TestCheckSemiRandomConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(188))
	s := synth.RandomSubspaces(60, 3, 4, rng)
	rep := CheckSemiRandom(s.Bases, 3, 100, 4)
	if rep.MaxNormalizedAffinity <= 0 || rep.MaxNormalizedAffinity > 1 {
		t.Fatalf("bad normalized affinity %v", rep.MaxNormalizedAffinity)
	}
	if rep.SSCBound <= 0 || rep.TSCBound <= 0 {
		t.Fatalf("bounds should be positive: %+v", rep)
	}
	if rep.SSCHolds != (rep.MaxNormalizedAffinity < rep.SSCBound) {
		t.Fatalf("SSCHolds inconsistent with its comparison: %+v", rep)
	}
	if rep.TSCHolds != (rep.MaxNormalizedAffinity <= rep.TSCBound) {
		t.Fatalf("TSCHolds inconsistent with its comparison: %+v", rep)
	}
}

func TestCheckSemiRandomOrthogonalHolds(t *testing.T) {
	// Pairwise-orthogonal subspaces have zero affinity and satisfy both
	// conditions regardless of constants (Example 1 of the paper).
	bases := make([]*mat.Dense, 3)
	for l := range bases {
		b := mat.NewDense(12, 2)
		b.Set(2*l, 0, 1)
		b.Set(2*l+1, 1, 1)
		bases[l] = b
	}
	rep := CheckSemiRandom(bases, 2, 50, 3)
	if rep.MaxNormalizedAffinity > 1e-12 {
		t.Fatalf("orthogonal subspaces should have zero affinity: %+v", rep)
	}
	if !rep.SSCHolds || !rep.TSCHolds {
		t.Fatalf("orthogonal subspaces must satisfy both conditions: %+v", rep)
	}
}

func TestCheckDeterministicCleanData(t *testing.T) {
	rng := rand.New(rand.NewSource(189))
	// Orthogonal subspaces: incoherence 0, inradius positive -> holds.
	n := 12
	basisL := mat.NewDense(n, 2)
	basisO := mat.NewDense(n, 2)
	for i := 0; i < 2; i++ {
		basisL.Set(i, i, 1)
		basisO.Set(i+2, i, 1)
	}
	xl := mat.Mul(basisL, mat.RandomGaussian(2, 20, rng))
	mat.NormalizeColumns(xl)
	xo := mat.Mul(basisO, mat.RandomGaussian(2, 20, rng))
	mat.NormalizeColumns(xo)
	rep := CheckDeterministic(xl, basisL, xo, 8, 3, 25, rng)
	if !rep.Holds {
		t.Fatalf("orthogonal case must satisfy the deterministic condition: %+v", rep)
	}
	if rep.MinInradius <= 0 {
		t.Fatalf("inradius should be positive: %+v", rep)
	}
}
