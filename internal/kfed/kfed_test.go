package kfed

import (
	"math/rand"
	"testing"

	"fedsc/internal/mat"
	"fedsc/internal/metrics"
)

// blobDevices builds Z devices, each holding points from lPrime of l
// well-separated Gaussian blobs in R^dim. Returns per-device data
// (columns = points) and per-device ground-truth labels.
func blobDevices(z, l, lPrime, perCluster, dim int, sep float64, rng *rand.Rand) ([]*mat.Dense, [][]int) {
	centers := mat.NewDense(l, dim)
	for c := 0; c < l; c++ {
		for d := 0; d < dim; d++ {
			centers.Set(c, d, sep*rng.NormFloat64())
		}
	}
	devices := make([]*mat.Dense, z)
	truth := make([][]int, z)
	for dev := 0; dev < z; dev++ {
		clusters := rng.Perm(l)[:lPrime]
		n := lPrime * perCluster
		x := mat.NewDense(dim, n)
		labels := make([]int, n)
		col := 0
		for _, c := range clusters {
			for i := 0; i < perCluster; i++ {
				for d := 0; d < dim; d++ {
					x.Set(d, col, centers.At(c, d)+0.3*rng.NormFloat64())
				}
				labels[col] = c
				col++
			}
		}
		devices[dev] = x
		truth[dev] = labels
	}
	return devices, truth
}

func flatten(labels [][]int) []int {
	var out []int
	for _, l := range labels {
		out = append(out, l...)
	}
	return out
}

func TestRunRecoversWellSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	devices, truth := blobDevices(12, 5, 2, 15, 8, 10, rng)
	res := Run(devices, 5, rng, Options{KLocal: 2})
	acc := metrics.Accuracy(flatten(truth), flatten(res.Labels))
	if acc < 95 {
		t.Fatalf("k-FED accuracy %.1f%% < 95%% on easy blobs", acc)
	}
}

func TestRunLabelShapesMatchDevices(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	devices, _ := blobDevices(5, 4, 2, 10, 6, 8, rng)
	res := Run(devices, 4, rng, Options{KLocal: 2})
	if len(res.Labels) != 5 {
		t.Fatalf("got %d devices", len(res.Labels))
	}
	for z, l := range res.Labels {
		if len(l) != devices[z].Cols() {
			t.Fatalf("device %d: %d labels for %d points", z, len(l), devices[z].Cols())
		}
		for _, lab := range l {
			if lab < 0 || lab >= 4 {
				t.Fatalf("label %d out of range", lab)
			}
		}
	}
}

func TestRunUplinkAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	devices, _ := blobDevices(4, 3, 2, 10, 7, 8, rng)
	res := Run(devices, 3, rng, Options{KLocal: 2})
	// Each device uploads KLocal centroids of dim 7.
	want := 4 * 2 * 7
	if res.UplinkFloats != want {
		t.Fatalf("UplinkFloats = %d want %d", res.UplinkFloats, want)
	}
}

func TestRunWithPCAStillClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	devices, truth := blobDevices(10, 4, 2, 20, 30, 12, rng)
	res := Run(devices, 4, rng, Options{KLocal: 2, PCADim: 3})
	acc := metrics.Accuracy(flatten(truth), flatten(res.Labels))
	// PCA on blobs with large separation still works; the paper's PCA
	// failures come from subspace-structured (not blob) data.
	if acc < 80 {
		t.Fatalf("k-FED+PCA accuracy %.1f%% < 80%%", acc)
	}
}

func TestRunKLocalDefaultsToL(t *testing.T) {
	rng := rand.New(rand.NewSource(134))
	devices, _ := blobDevices(3, 3, 3, 8, 5, 8, rng)
	res := Run(devices, 3, rng, Options{})
	// KLocal defaults to L=3: uplink = 3 devices * 3 centroids * 5 dims.
	if res.UplinkFloats != 3*3*5 {
		t.Fatalf("UplinkFloats = %d want %d", res.UplinkFloats, 3*3*5)
	}
}

func TestRunDeviceSmallerThanKLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(135))
	// A device with a single point: k clamps to 1, must not panic.
	single := mat.RandomGaussian(4, 1, rng)
	other := mat.RandomGaussian(4, 10, rng)
	res := Run([]*mat.Dense{single, other}, 2, rng, Options{KLocal: 3})
	if len(res.Labels[0]) != 1 || len(res.Labels[1]) != 10 {
		t.Fatal("label shapes wrong for tiny device")
	}
}
