package kfed

import (
	"math/rand"
	"testing"

	"fedsc/internal/mat"
)

// dupDevice builds a device whose n points are all copies of v
// (columns = points), so k-means can occupy at most one cluster no
// matter how large KLocal is.
func dupDevice(v []float64, n int) *mat.Dense {
	x := mat.NewDense(len(v), n)
	for j := 0; j < n; j++ {
		x.SetCol(j, v)
	}
	return x
}

// TestRunDropsEmptyLocalClusters is the regression test for the
// empty-centroid upload bug: with KLocal above the number of occupied
// local clusters, each device used to upload zero rows for its empty
// clusters. Those rows counted toward UplinkFloats, and — because the
// origin is farther from the data centroids than they are from each
// other — the server's farthest-first traversal seeded a global center
// on them, merging the two real clusters into one.
func TestRunDropsEmptyLocalClusters(t *testing.T) {
	const ambient, perDev, kLocal = 4, 6, 3
	p := []float64{10, 0, 0, 0}
	q := []float64{12, 0, 0, 0}
	devices := []*mat.Dense{dupDevice(p, perDev), dupDevice(q, perDev)}
	for seed := int64(1); seed <= 5; seed++ {
		res := Run(devices, 2, rand.New(rand.NewSource(seed)), Options{KLocal: kLocal})
		// One occupied cluster per device: exactly two centroids uploaded.
		if want := 2 * ambient; res.UplinkFloats != want {
			t.Fatalf("seed %d: UplinkFloats = %d, want %d (empty clusters counted as uploads)",
				seed, res.UplinkFloats, want)
		}
		// p and q are 2 apart but 10+ from the origin, so any phantom
		// zero centroid captures a global center and both devices end up
		// with the same label; with empties dropped they must differ.
		if res.Labels[0][0] == res.Labels[1][0] {
			t.Fatalf("seed %d: devices with distinct data share global label %d (zero centroid seeded a center)",
				seed, res.Labels[0][0])
		}
		for dev, labels := range res.Labels {
			for i, l := range labels {
				if l != labels[0] {
					t.Fatalf("seed %d: device %d point %d label %d != %d", seed, dev, i, l, labels[0])
				}
			}
		}
	}
}

// TestCentroidsInAmbientRemap pins the unit behavior: empty clusters
// vanish, survivors keep their relative order, and labels follow.
func TestCentroidsInAmbientRemap(t *testing.T) {
	// Three points in R², labeled into clusters 0, 3, 3 of k=4 — clusters
	// 1 and 2 are empty.
	x := mat.NewDense(2, 3)
	x.SetCol(0, []float64{1, 0})
	x.SetCol(1, []float64{0, 2})
	x.SetCol(2, []float64{0, 4})
	cent, labels := centroidsInAmbient(x, []int{0, 3, 3}, 4)
	if cent.Rows() != 2 {
		t.Fatalf("got %d centroid rows, want 2", cent.Rows())
	}
	if got := cent.Row(0); got[0] != 1 || got[1] != 0 {
		t.Fatalf("centroid 0 = %v, want [1 0]", got)
	}
	if got := cent.Row(1); got[0] != 0 || got[1] != 3 {
		t.Fatalf("centroid 1 = %v, want [0 3]", got)
	}
	if labels[0] != 0 || labels[1] != 1 || labels[2] != 1 {
		t.Fatalf("remapped labels = %v, want [0 1 1]", labels)
	}
}
