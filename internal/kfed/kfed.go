// Package kfed implements the one-shot federated k-means baseline k-FED
// (Dennis, Li & Smith, ICML 2021) that the paper compares against, plus
// its PCA-preprocessed variants (k-FED + PCA-10 / PCA-100 in Tables
// III-IV).
//
// Protocol: every device clusters its local data with k-means into k′
// local clusters and uploads only the k′ centroids; the server seeds L
// global centers from the collected centroids by farthest-first traversal
// and refines them with Lloyd iterations; each device then labels its
// points by its local cluster's global assignment. Exactly one
// communication round is used, mirroring Fed-SC's one-shot structure.
package kfed

import (
	"math/rand"

	"fedsc/internal/kmeans"
	"fedsc/internal/mat"
	"fedsc/internal/pca"
)

// Options configures a k-FED run.
type Options struct {
	// KLocal is the number of local clusters k′ each device computes.
	// Zero defaults to L (every device may see every cluster); the k-FED
	// analysis wants k′ ≤ L with heterogeneity.
	KLocal int
	// PCADim, when positive, projects each device's local data to this
	// dimension with a locally fitted PCA before clustering (the
	// k-FED + PCA baselines).
	PCADim int
	// Local tunes the on-device k-means.
	Local kmeans.Options
	// Central tunes the server-side Lloyd refinement.
	Central kmeans.Options
}

// Result holds the outcome of a federated k-means run.
type Result struct {
	// Labels[z][i] is the global cluster of point i on device z.
	Labels [][]int
	// UplinkFloats counts the float64 values uploaded across all devices
	// (centroids), for communication-cost accounting.
	UplinkFloats int
}

// Run executes one-shot federated k-means over the devices' local data
// (columns = points) targeting l global clusters.
func Run(devices []*mat.Dense, l int, rng *rand.Rand, opts Options) Result {
	kLocal := opts.KLocal
	if kLocal <= 0 {
		kLocal = l
	}
	type localOut struct {
		centroids *mat.Dense // rows = centroids (possibly PCA-space)
		labels    []int      // local cluster of each point
	}
	locals := make([]localOut, len(devices))
	uplink := 0
	for z, x := range devices {
		work := x
		if opts.PCADim > 0 {
			work = pca.FitTransform(x, opts.PCADim)
		}
		pts := work.T() // kmeans clusters rows
		k := kLocal
		if n := pts.Rows(); k > n {
			k = n
		}
		res := kmeans.Run(pts, k, rng, opts.Local)
		// Centroids must live in the shared ambient space for the server
		// to aggregate them; with PCA preprocessing the projection is
		// local and incomparable across devices, so lift the centroids
		// back by averaging the ORIGINAL points of each local cluster.
		cent, relabeled := centroidsInAmbient(x, res.Labels, k)
		locals[z] = localOut{centroids: cent, labels: relabeled}
		uplink += cent.Rows() * cent.Cols()
	}
	// Server: stack all local centroids (rows) and cluster them into l.
	var rows []*mat.Dense
	for _, lo := range locals {
		rows = append(rows, lo.centroids.T())
	}
	all := mat.HStack(rows...).T() // rows = all centroids
	global := centralCluster(all, l, rng, opts.Central)
	// Broadcast: each local cluster t of device z got global label
	// global[offset+t]; points inherit.
	out := Result{Labels: make([][]int, len(devices)), UplinkFloats: uplink}
	offset := 0
	for z, lo := range locals {
		k := lo.centroids.Rows()
		labels := make([]int, len(lo.labels))
		for i, t := range lo.labels {
			labels[i] = global[offset+t]
		}
		out.Labels[z] = labels
		offset += k
	}
	return out
}

// centroidsInAmbient averages the original-space points of each local
// cluster and drops clusters that own no points, remapping the point
// labels onto the surviving rows. An empty cluster would otherwise
// upload a zero row that the server's farthest-first traversal
// preferentially seeds from (the origin is far from every data
// centroid), burning a global center on a point that encodes nothing —
// and it would count toward UplinkFloats despite carrying no data.
func centroidsInAmbient(x *mat.Dense, labels []int, k int) (*mat.Dense, []int) {
	n, _ := x.Dims()
	sums := mat.NewDense(k, n)
	counts := make([]int, k)
	for i, t := range labels {
		counts[t]++
		row := sums.Row(t)
		for r := 0; r < n; r++ {
			row[r] += x.At(r, i)
		}
	}
	remap := make([]int, k)
	occupied := 0
	for t := 0; t < k; t++ {
		if counts[t] > 0 {
			remap[t] = occupied
			occupied++
		} else {
			remap[t] = -1
		}
	}
	cent := mat.NewDense(occupied, n)
	for t := 0; t < k; t++ {
		if counts[t] == 0 {
			continue
		}
		row := cent.Row(remap[t])
		copy(row, sums.Row(t))
		mat.ScaleVec(1/float64(counts[t]), row)
	}
	relabeled := make([]int, len(labels))
	for i, t := range labels {
		relabeled[i] = remap[t]
	}
	return cent, relabeled
}

// centralCluster seeds l centers from the collected centroids by
// farthest-first traversal (the deterministic seeding of the k-FED
// central step, robust when local clusters from one global cluster are
// near-duplicates) and refines with Lloyd, then labels each centroid.
func centralCluster(centroids *mat.Dense, l int, rng *rand.Rand, opts kmeans.Options) []int {
	n, d := centroids.Dims()
	if l > n {
		l = n
	}
	centers := mat.NewDense(l, d)
	// Farthest-first traversal.
	first := rng.Intn(n)
	copy(centers.Row(0), centroids.Row(first))
	dist := make([]float64, n)
	for i := 0; i < n; i++ {
		dist[i] = sqDist(centroids.Row(i), centers.Row(0))
	}
	for c := 1; c < l; c++ {
		far, fd := 0, -1.0
		for i, v := range dist {
			if v > fd {
				far, fd = i, v
			}
		}
		copy(centers.Row(c), centroids.Row(far))
		for i := 0; i < n; i++ {
			if d2 := sqDist(centroids.Row(i), centers.Row(c)); d2 < dist[i] {
				dist[i] = d2
			}
		}
	}
	// Lloyd refinement from this seeding.
	labels := kmeans.Assign(centroids, centers)
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	for iter := 0; iter < maxIter; iter++ {
		counts := make([]int, l)
		next := mat.NewDense(l, d)
		for i, t := range labels {
			counts[t]++
			row := next.Row(t)
			for j, v := range centroids.Row(i) {
				row[j] += v
			}
		}
		for t := 0; t < l; t++ {
			if counts[t] == 0 {
				copy(next.Row(t), centers.Row(t))
				continue
			}
			mat.ScaleVec(1/float64(counts[t]), next.Row(t))
		}
		newLabels := kmeans.Assign(centroids, next)
		centers = next
		changed := false
		for i := range labels {
			if labels[i] != newLabels[i] {
				changed = true
				break
			}
		}
		labels = newLabels
		if !changed {
			break
		}
	}
	return labels
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
