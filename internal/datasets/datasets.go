// Package datasets provides deterministic, synthetic stand-ins for the
// two real-world datasets of the paper's evaluation (Tables III-IV):
// EMNIST scattering features and augmented COIL100 images. The originals
// are not available offline, so each generator reproduces the geometric
// structure the clustering algorithms actually interact with — an
// approximate union of low-dimensional subspaces with the class counts,
// imbalance, cross-class affinity and corruption levels of the original
// (see DESIGN.md §3 for the substitution rationale).
package datasets

import (
	"math"
	"math/rand"

	"fedsc/internal/mat"
	"fedsc/internal/synth"
)

// EMNISTConfig parameterizes the simulated EMNIST feature dataset.
type EMNISTConfig struct {
	// Classes is the number of character classes (EMNIST ByClass: 62).
	Classes int
	// Ambient is the feature dimension. The paper uses 3472-dim
	// scattering features; the default 256 keeps the geometry (ambient ≫
	// subspace dim) at tractable cost. Raise it to approach paper scale.
	Ambient int
	// MinDim and MaxDim bound the per-class subspace dimensions.
	MinDim, MaxDim int
	// SharedDim is the dimension of a subspace component common to all
	// classes, which induces the cross-class affinity that makes real
	// feature data harder than the independent-subspace synthetic model.
	SharedDim int
	// SharedWeight scales the common component (0..1).
	SharedWeight float64
	// Noise is the additive feature noise level.
	Noise float64
	// Warp adds a mild element-wise tanh nonlinearity, mimicking how
	// scattering features only approximately follow subspace structure.
	Warp float64
	// ZipfS controls class imbalance (EMNIST classes are unbalanced);
	// class ℓ gets weight (ℓ+1)^(−ZipfS).
	ZipfS float64
}

// DefaultEMNIST returns the configuration used by the benchmark harness.
func DefaultEMNIST() EMNISTConfig {
	// The corruption levels are calibrated so the paper's ordering
	// emerges: clustering ALL classes at once (what the centralized
	// baselines must do) is substantially harder than clustering the
	// 2-4 classes a single device sees, which is where Fed-SC's
	// heterogeneity benefit comes from.
	return EMNISTConfig{
		Classes:      62,
		Ambient:      256,
		MinDim:       5,
		MaxDim:       8,
		SharedDim:    6,
		SharedWeight: 0.45,
		Noise:        0.07,
		Warp:         0.25,
		ZipfS:        0.6,
	}
}

// COILConfig parameterizes the simulated augmented COIL100 dataset.
type COILConfig struct {
	// Classes is the number of objects (COIL100: 100).
	Classes int
	// Ambient is the pixel-vector dimension (paper: 1024; default 256).
	Ambient int
	// Views is the number of base poses per object (COIL100: 72).
	Views int
	// SubspaceDim is the dimension of each object's appearance subspace
	// within which the pose manifold is traced.
	SubspaceDim int
	// AugmentFactor replicates each view with brightness/contrast
	// augmentations (the paper augments COIL100 past 60k images).
	AugmentFactor int
	// BrightnessStd and ContrastStd control the augmentation strength
	// (affine perturbations of the pixel vector).
	BrightnessStd, ContrastStd float64
	// Noise is additive pixel noise.
	Noise float64
}

// DefaultCOIL returns the configuration used by the benchmark harness.
func DefaultCOIL() COILConfig {
	// Augmentation and noise levels follow the same calibration note as
	// DefaultEMNIST: hard globally, manageable per-device.
	return COILConfig{
		Classes:       100,
		Ambient:       256,
		Views:         72,
		SubspaceDim:   4,
		AugmentFactor: 2,
		BrightnessStd: 0.3,
		ContrastStd:   0.3,
		Noise:         0.1,
	}
}

// SimEMNIST generates approximately total points (exact count depends on
// Zipf rounding, with at least one point per class) with ground-truth
// class labels. Deterministic for a given rng state.
func SimEMNIST(cfg EMNISTConfig, total int, rng *rand.Rand) synth.Dataset {
	shared := mat.RandomOrthonormal(cfg.Ambient, cfg.SharedDim, rng)
	// Per-class bases mixing a shared component with an independent one.
	bases := make([]*mat.Dense, cfg.Classes)
	dims := make([]int, cfg.Classes)
	for c := 0; c < cfg.Classes; c++ {
		d := cfg.MinDim
		if cfg.MaxDim > cfg.MinDim {
			d += rng.Intn(cfg.MaxDim - cfg.MinDim + 1)
		}
		dims[c] = d
		indep := mat.RandomOrthonormal(cfg.Ambient, d, rng)
		// Mix: each basis direction leans SharedWeight towards a random
		// combination of the shared directions.
		mix := indep.Clone()
		for j := 0; j < d; j++ {
			comb := make([]float64, cfg.SharedDim)
			for i := range comb {
				comb[i] = rng.NormFloat64()
			}
			sh := mat.MulVec(shared, comb)
			mat.Normalize(sh)
			col := mix.Col(j, nil)
			for i := range col {
				col[i] = (1-cfg.SharedWeight)*col[i] + cfg.SharedWeight*sh[i]
			}
			mix.SetCol(j, col)
		}
		bases[c] = mat.Orthonormalize(mix, 1e-10)
	}
	// Zipf class sizes.
	weights := make([]float64, cfg.Classes)
	sum := 0.0
	for c := range weights {
		weights[c] = math.Pow(float64(c+1), -cfg.ZipfS)
		sum += weights[c]
	}
	counts := make([]int, cfg.Classes)
	for c := range counts {
		counts[c] = int(float64(total) * weights[c] / sum)
		if counts[c] < 1 {
			counts[c] = 1
		}
	}
	n := 0
	for _, c := range counts {
		n += c
	}
	x := mat.NewDense(cfg.Ambient, n)
	labels := make([]int, n)
	col := 0
	point := make([]float64, cfg.Ambient)
	for c := 0; c < cfg.Classes; c++ {
		b := bases[c]
		d := b.Cols()
		for i := 0; i < counts[c]; i++ {
			coefv := make([]float64, d)
			for j := range coefv {
				coefv[j] = rng.NormFloat64()
			}
			p := mat.MulVec(b, coefv)
			for r := range point {
				v := p[r]
				if cfg.Warp > 0 {
					// Mild nonlinearity: blend towards tanh of an
					// amplified coordinate.
					v = (1-cfg.Warp)*v + cfg.Warp*math.Tanh(3*v)
				}
				point[r] = v + cfg.Noise*rng.NormFloat64()
			}
			mat.Normalize(point)
			x.SetCol(col, point)
			labels[col] = c
			col++
		}
	}
	return shuffle(synth.Dataset{X: x, Labels: labels}, rng)
}

// SimCOIL100 generates the augmented-COIL100 stand-in: each object's 72
// views trace a closed pose curve inside its appearance subspace, and
// every view is replicated AugmentFactor times under random brightness
// (rank-one shift towards a global illumination direction) and contrast
// (gain) perturbations plus pixel noise.
func SimCOIL100(cfg COILConfig, rng *rand.Rand) synth.Dataset {
	illum := mat.RandomUnitVector(cfg.Ambient, rng)
	total := cfg.Classes * cfg.Views * cfg.AugmentFactor
	x := mat.NewDense(cfg.Ambient, total)
	labels := make([]int, total)
	col := 0
	point := make([]float64, cfg.Ambient)
	for c := 0; c < cfg.Classes; c++ {
		basis := mat.RandomOrthonormal(cfg.Ambient, cfg.SubspaceDim, rng)
		// Random smooth closed curve in coefficient space: two harmonics
		// per coordinate with random phases.
		amp1 := make([]float64, cfg.SubspaceDim)
		amp2 := make([]float64, cfg.SubspaceDim)
		ph1 := make([]float64, cfg.SubspaceDim)
		ph2 := make([]float64, cfg.SubspaceDim)
		for j := 0; j < cfg.SubspaceDim; j++ {
			amp1[j] = 0.5 + rng.Float64()
			amp2[j] = 0.3 * rng.Float64()
			ph1[j] = 2 * math.Pi * rng.Float64()
			ph2[j] = 2 * math.Pi * rng.Float64()
		}
		for v := 0; v < cfg.Views; v++ {
			angle := 2 * math.Pi * float64(v) / float64(cfg.Views)
			coefv := make([]float64, cfg.SubspaceDim)
			for j := 0; j < cfg.SubspaceDim; j++ {
				coefv[j] = amp1[j]*math.Cos(angle+ph1[j]) + amp2[j]*math.Cos(2*angle+ph2[j])
			}
			base := mat.MulVec(basis, coefv)
			for a := 0; a < cfg.AugmentFactor; a++ {
				gain := 1 + cfg.ContrastStd*rng.NormFloat64()
				shift := cfg.BrightnessStd * rng.NormFloat64()
				for r := range point {
					point[r] = gain*base[r] + shift*illum[r] + cfg.Noise*rng.NormFloat64()
				}
				mat.Normalize(point)
				x.SetCol(col, point)
				labels[col] = c
				col++
			}
		}
	}
	return shuffle(synth.Dataset{X: x, Labels: labels}, rng)
}

// shuffle randomly permutes the columns so downstream partitioners see no
// class ordering.
func shuffle(ds synth.Dataset, rng *rand.Rand) synth.Dataset {
	perm := rng.Perm(ds.N())
	return ds.Select(perm)
}

// Subsample returns a dataset with at most maxPoints points drawn without
// replacement, preserving relative class frequencies approximately.
func Subsample(ds synth.Dataset, maxPoints int, rng *rand.Rand) synth.Dataset {
	if ds.N() <= maxPoints {
		return ds
	}
	idx := rng.Perm(ds.N())[:maxPoints]
	return ds.Select(idx)
}
