package datasets

import (
	"math"
	"math/rand"
	"testing"

	"fedsc/internal/mat"
	"fedsc/internal/metrics"
	"fedsc/internal/subspace"
)

func TestSimEMNISTShapeAndLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(170))
	cfg := DefaultEMNIST()
	ds := SimEMNIST(cfg, 1000, rng)
	if ds.N() < cfg.Classes { // at least one point per class
		t.Fatalf("N = %d", ds.N())
	}
	if ds.X.Rows() != cfg.Ambient {
		t.Fatalf("ambient = %d", ds.X.Rows())
	}
	seen := map[int]int{}
	for _, l := range ds.Labels {
		if l < 0 || l >= cfg.Classes {
			t.Fatalf("label %d out of range", l)
		}
		seen[l]++
	}
	if len(seen) != cfg.Classes {
		t.Fatalf("only %d of %d classes present", len(seen), cfg.Classes)
	}
	// Unit-norm points.
	col := make([]float64, cfg.Ambient)
	for j := 0; j < 5; j++ {
		ds.X.Col(j, col)
		if math.Abs(mat.Norm2(col)-1) > 1e-9 {
			t.Fatalf("point %d not unit norm", j)
		}
	}
}

func TestSimEMNISTImbalance(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	cfg := DefaultEMNIST()
	ds := SimEMNIST(cfg, 2000, rng)
	counts := make([]int, cfg.Classes)
	for _, l := range ds.Labels {
		counts[l]++
	}
	// Zipf: the most frequent class must clearly exceed the rarest.
	max, min := 0, 1<<30
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < 2*min {
		t.Fatalf("expected class imbalance, max=%d min=%d", max, min)
	}
}

func TestSimEMNISTDeterministic(t *testing.T) {
	cfg := DefaultEMNIST()
	a := SimEMNIST(cfg, 300, rand.New(rand.NewSource(7)))
	b := SimEMNIST(cfg, 300, rand.New(rand.NewSource(7)))
	if a.N() != b.N() {
		t.Fatal("sizes differ")
	}
	for j := 0; j < a.N(); j++ {
		if a.Labels[j] != b.Labels[j] {
			t.Fatal("labels differ for same seed")
		}
	}
	if !mat.Equalish(a.X, b.X, 0) {
		t.Fatal("data differ for same seed")
	}
}

func TestSimEMNISTSubspaceStructureClusterable(t *testing.T) {
	// A small-class slice of the generator must be clusterable by SSC —
	// this is the property that makes it a valid EMNIST stand-in.
	rng := rand.New(rand.NewSource(172))
	cfg := DefaultEMNIST()
	cfg.Classes = 5
	cfg.Noise = 0.02
	cfg.Warp = 0.1
	ds := SimEMNIST(cfg, 200, rng)
	res := subspace.SSC(ds.X, 5, rng, subspace.SSCOptions{})
	if acc := metrics.Accuracy(ds.Labels, res.Labels); acc < 75 {
		t.Fatalf("SSC on SimEMNIST slice: %.1f%% (structure too weak)", acc)
	}
}

func TestSimCOIL100ShapeAndDeterminism(t *testing.T) {
	cfg := DefaultCOIL()
	cfg.Classes = 6
	cfg.Views = 12
	a := SimCOIL100(cfg, rand.New(rand.NewSource(9)))
	b := SimCOIL100(cfg, rand.New(rand.NewSource(9)))
	want := 6 * 12 * cfg.AugmentFactor
	if a.N() != want {
		t.Fatalf("N = %d want %d", a.N(), want)
	}
	if !mat.Equalish(a.X, b.X, 0) {
		t.Fatal("data differ for same seed")
	}
	seen := map[int]int{}
	for _, l := range a.Labels {
		seen[l]++
	}
	for c := 0; c < 6; c++ {
		if seen[c] != 12*cfg.AugmentFactor {
			t.Fatalf("class %d count %d", c, seen[c])
		}
	}
}

func TestSimCOIL100Clusterable(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	cfg := DefaultCOIL()
	cfg.Classes = 5
	cfg.Views = 24
	cfg.AugmentFactor = 1
	ds := SimCOIL100(cfg, rng)
	res := subspace.SSC(ds.X, 5, rng, subspace.SSCOptions{})
	// The augmented-COIL geometry is intentionally hard for global
	// clustering — the paper's own centralized SSC reaches only 45.25%
	// on it (Table III); require structure clearly above chance (20%).
	if acc := metrics.Accuracy(ds.Labels, res.Labels); acc < 40 {
		t.Fatalf("SSC on SimCOIL slice: %.1f%%", acc)
	}
}

func TestSubsample(t *testing.T) {
	rng := rand.New(rand.NewSource(174))
	cfg := DefaultCOIL()
	cfg.Classes = 3
	cfg.Views = 10
	ds := SimCOIL100(cfg, rng)
	sub := Subsample(ds, 20, rng)
	if sub.N() != 20 {
		t.Fatalf("subsample N = %d", sub.N())
	}
	same := Subsample(sub, 100, rng)
	if same.N() != 20 {
		t.Fatal("subsample should be a no-op when already small")
	}
}
