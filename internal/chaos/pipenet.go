package chaos

import (
	"net"
	"sync"
)

// PipeNet is an in-process network: Dial hands the server end of a
// fresh net.Pipe to the Listener and returns the client end. net.Pipe
// is synchronous and unbuffered, so the bytes each side observes under
// a scripted fault — a reset at byte 512 delivers exactly 512 bytes —
// are fully deterministic, which makes PipeNet the transport of the
// bit-identical replay tests and the default transport of fedsc-chaos.
type PipeNet struct {
	conns chan net.Conn

	closeOnce sync.Once
	done      chan struct{}
}

// NewPipeNet returns a ready network. The accept queue is buffered so
// dialing never blocks on the server's accept cadence.
func NewPipeNet() *PipeNet {
	return &PipeNet{conns: make(chan net.Conn, 256), done: make(chan struct{})}
}

// Dial opens a connection to the network's listener.
func (p *PipeNet) Dial() (net.Conn, error) {
	server, client := net.Pipe()
	select {
	case p.conns <- server:
		return client, nil
	case <-p.done:
		// The network is gone; the unconsumed server end dies with it.
		_ = server.Close()
		_ = client.Close()
		return nil, net.ErrClosed
	}
}

// Listener returns the accept side of the network.
func (p *PipeNet) Listener() net.Listener { return pipeListener{p} }

// Close shuts the network down; pending and future dials fail.
func (p *PipeNet) Close() {
	p.closeOnce.Do(func() { close(p.done) })
}

type pipeListener struct{ p *PipeNet }

func (l pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.p.conns:
		return c, nil
	case <-l.p.done:
		return nil, net.ErrClosed
	}
}

func (l pipeListener) Close() error { l.p.Close(); return nil }

func (l pipeListener) Addr() net.Addr { return pipeAddr{} }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "chaos-pipe" }
func (pipeAddr) String() string  { return "chaos-pipe" }

// Listener wraps a net.Listener with accept-time faults: the first
// RefuseFirst accepted connections are closed before a byte flows, so
// from the dialing device's perspective the server refused the
// connection — the accept-side complement of Script.Refuse.
type Listener struct {
	Inner net.Listener
	// RefuseFirst is how many initial connections to refuse.
	RefuseFirst int
	// Trace records each refusal under device id -1 (the listener does
	// not know which device dialed).
	Trace *Trace

	mu      sync.Mutex
	refused int
}

// Accept refuses the first RefuseFirst connections, then delegates.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Inner.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		refuse := l.refused < l.RefuseFirst
		if refuse {
			l.refused++
		}
		n := l.refused
		l.mu.Unlock()
		if !refuse {
			return conn, nil
		}
		l.Trace.Record(-1, "accept refused (%d of %d)", n, l.RefuseFirst)
		// Refusal is the injected fault; the close error carries no
		// further signal.
		_ = conn.Close()
	}
}

// Close closes the wrapped listener.
func (l *Listener) Close() error { return l.Inner.Close() }

// Addr reports the wrapped listener's address.
func (l *Listener) Addr() net.Addr { return l.Inner.Addr() }
