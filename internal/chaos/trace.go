package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"fedsc/internal/obs"
)

// Trace records every injected fault. Events are kept per device in
// injection order and rendered sorted by device id, so two runs of the
// same seeded schedule produce byte-identical strings even though the
// devices run concurrently: within a device the fault sequence is a
// deterministic function of its script and rng, and across devices the
// rendering order is fixed.
type Trace struct {
	mu       sync.Mutex
	events   map[int][]string
	observer func(device int, event string)
}

// NewTrace returns an empty recorder.
func NewTrace() *Trace {
	return &Trace{events: make(map[int][]string)}
}

// faultEvents counts every recorded fault process-wide, so a scrape of
// /metrics shows chaos pressure next to the fednet retry counters it
// causes.
var faultEvents = obs.Default().Counter("fedsc_chaos_fault_events_total",
	"Injected fault events recorded across all chaos traces.")

// Observe registers fn to receive every recorded event in addition to
// the log — the bridge that lets fault-trace records double as obs span
// events. fn is called synchronously from the injecting goroutine, so
// events for one device arrive in injection order; a nil fn detaches
// the observer.
func (t *Trace) Observe(fn func(device int, event string)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.observer = fn
	t.mu.Unlock()
}

// Record appends one formatted event to the device's log. A nil Trace
// discards the event, so callers never need to guard the pointer.
func (t *Trace) Record(device int, format string, args ...any) {
	if t == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	t.mu.Lock()
	if t.events == nil {
		t.events = make(map[int][]string)
	}
	t.events[device] = append(t.events[device], msg)
	observer := t.observer
	t.mu.Unlock()
	faultEvents.Inc()
	if observer != nil {
		observer(device, msg)
	}
}

// Reset clears the log for a fresh run.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = make(map[int][]string)
	t.mu.Unlock()
}

// Events returns the device's fault log in injection order.
func (t *Trace) Events(device int) []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.events[device]...)
}

// String renders the full trace, one "device <id>: <event>" line per
// fault, devices in ascending id order.
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]int, 0, len(t.events))
	for id := range t.events {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		for _, ev := range t.events[id] {
			fmt.Fprintf(&b, "device %d: %s\n", id, ev)
		}
	}
	return b.String()
}
