package chaos

import (
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// Conn applies one device's fault script to a wrapped net.Conn. The
// wrapper is itself a net.Conn: deadline decisions stay with the
// caller and are forwarded verbatim to the wrapped connection, while
// a local copy is kept so scripted stalls and black-holes respect the
// caller's budget (a stalled write returns os.ErrDeadlineExceeded at
// the deadline instead of hanging the round).
//
// All fault decisions are pre-seeded: the jitter draws come from the
// per-connection rng handed over by the Schedule, and byte offsets
// are counted locally, so the sequence of injected faults — and, over
// a synchronous transport like net.Pipe, the exact bytes the peer
// observes — is a pure function of (seed, schedule, device, attempt).
type Conn struct {
	inner   net.Conn
	script  Script
	failing bool
	device  int
	attempt int
	trace   *Trace

	mu           sync.Mutex
	rng          *rand.Rand
	wrote        int64
	read         int64
	readLatency  bool
	writeLatency bool
	readDL       time.Time
	writeDL      time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

func newConn(inner net.Conn, script Script, failing bool, device, attempt int, rng *rand.Rand, trace *Trace) *Conn {
	return &Conn{
		inner:   inner,
		script:  script,
		failing: failing,
		device:  device,
		attempt: attempt,
		trace:   trace,
		rng:     rng,
		closed:  make(chan struct{}),
	}
}

// latency returns the scripted one-way delay with its seeded jitter
// draw; the draw is consumed even when the base latency is zero so a
// schedule edit that only changes Latency does not shift later draws.
func (c *Conn) latency() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.script.Latency <= 0 && c.script.Jitter <= 0 {
		return 0
	}
	d := c.script.Latency
	if c.script.Jitter > 0 {
		d += time.Duration((2*c.rng.Float64() - 1) * float64(c.script.Jitter))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// stall blocks until the relevant deadline expires or the conn is
// closed, mirroring a black-holed link from the caller's perspective.
func (c *Conn) stall(deadline time.Time) error {
	if deadline.IsZero() {
		<-c.closed
		return net.ErrClosed
	}
	wait := time.Until(deadline)
	if wait < 0 {
		wait = 0
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-c.closed:
		return net.ErrClosed
	case <-timer.C:
		return os.ErrDeadlineExceeded
	}
}

// Read forwards to the wrapped conn after the scripted first-byte
// latency; a black-holed connection never yields a byte.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	first := !c.readLatency
	c.readLatency = true
	blackhole := c.script.Blackhole && c.failing
	dl := c.readDL
	c.mu.Unlock()
	if blackhole {
		c.trace.Record(c.device, "attempt %d: read black-holed", c.attempt)
		return 0, c.stall(dl)
	}
	if first {
		if d := c.latency(); d > 0 {
			c.trace.Record(c.device, "attempt %d: read latency %v", c.attempt, d)
			time.Sleep(d)
		}
	}
	if c.failing && c.script.ResetReadAt > 0 {
		c.mu.Lock()
		left := c.script.ResetReadAt - c.read
		c.mu.Unlock()
		if left <= 0 {
			c.trace.Record(c.device, "attempt %d: read reset at byte %d", c.attempt, c.script.ResetReadAt)
			// The peer must observe a terminated stream; the close
			// error (if any) is subsumed by the reset we are injecting.
			_ = c.Close()
			return 0, ErrReset
		}
		// Deliver exactly ResetReadAt bytes in total; the next call
		// past the offset fires the reset.
		if int64(len(p)) > left {
			p = p[:left]
		}
	}
	n, err := c.inner.Read(p)
	c.mu.Lock()
	c.read += int64(n)
	c.mu.Unlock()
	return n, err
}

// Write delivers p through the scripted write path: first-byte
// latency, fragmentation into ChunkBytes chunks, a bandwidth-cap
// sleep per chunk, and — on failing attempts — a reset or stall at
// the exact scripted byte offset.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	first := !c.writeLatency
	c.writeLatency = true
	blackhole := c.script.Blackhole && c.failing
	dl := c.writeDL
	c.mu.Unlock()
	if blackhole {
		c.trace.Record(c.device, "attempt %d: write black-holed at byte %d", c.attempt, c.written())
		return 0, c.stall(dl)
	}
	if first {
		if d := c.latency(); d > 0 {
			c.trace.Record(c.device, "attempt %d: write latency %v", c.attempt, d)
			time.Sleep(d)
		}
	}
	written := 0
	for written < len(p) {
		chunk := len(p) - written
		if c.script.ChunkBytes > 0 && chunk > c.script.ChunkBytes {
			chunk = c.script.ChunkBytes
		}
		if c.failing {
			if cut, ok := c.cutAt(c.script.ResetWriteAt, chunk); ok {
				if cut > 0 {
					n, err := c.inner.Write(p[written : written+cut])
					c.addWritten(n)
					written += n
					if err != nil {
						return written, err
					}
				}
				c.trace.Record(c.device, "attempt %d: reset at byte %d", c.attempt, c.written())
				// The peer must observe a terminated stream, not a
				// stall; the close error (if any) is subsumed by the
				// reset we are injecting.
				_ = c.Close()
				return written, ErrReset
			}
			if cut, ok := c.cutAt(c.script.StallWriteAfter, chunk); ok {
				if cut > 0 {
					n, err := c.inner.Write(p[written : written+cut])
					c.addWritten(n)
					written += n
					if err != nil {
						return written, err
					}
				}
				c.trace.Record(c.device, "attempt %d: stall at byte %d", c.attempt, c.written())
				c.mu.Lock()
				dl = c.writeDL
				c.mu.Unlock()
				return written, c.stall(dl)
			}
		}
		n, err := c.inner.Write(p[written : written+chunk])
		c.addWritten(n)
		written += n
		if err != nil {
			return written, err
		}
		if c.script.BandwidthBps > 0 && n > 0 {
			time.Sleep(time.Duration(int64(n) * int64(time.Second) / int64(c.script.BandwidthBps)))
		}
	}
	return written, nil
}

// cutAt reports whether the fault at the scripted byte offset fires
// within the next chunk, and how many of the chunk's bytes may still
// be delivered first: exactly offset bytes reach the wire in total.
func (c *Conn) cutAt(offset int64, chunk int) (int, bool) {
	if offset <= 0 {
		return 0, false
	}
	w := c.written()
	if w >= offset {
		return 0, true
	}
	if w+int64(chunk) < offset {
		return 0, false
	}
	return int(offset - w), true
}

func (c *Conn) written() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wrote
}

func (c *Conn) addWritten(n int) {
	c.mu.Lock()
	c.wrote += int64(n)
	c.mu.Unlock()
}

// Close closes the wrapped conn and wakes any scripted stall.
func (c *Conn) Close() error {
	err := net.ErrClosed
	first := false
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.inner.Close()
		first = true
	})
	if !first {
		return net.ErrClosed
	}
	return err
}

func (c *Conn) LocalAddr() net.Addr  { return c.inner.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline forwards the caller's deadline decision and keeps a
// local copy so stalls and black-holes honour it.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL, c.writeDL = t, t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDL = t
	c.mu.Unlock()
	return c.inner.SetWriteDeadline(t)
}
