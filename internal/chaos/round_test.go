package chaos_test

// Round-level chaos tests: a full Fed-SC round under scripted faults
// must complete via retry + straggler tolerance, never pool a device
// twice, and — over the synchronous PipeNet transport — replay
// bit-identically under a fixed seed: same fault trace, same
// ServeStats, same labels.

import (
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"fedsc/internal/chaos"
	"fedsc/internal/core"
	"fedsc/internal/fednet"
	"fedsc/internal/mat"
	"fedsc/internal/synth"
)

// chaosDevices generates per-device data large enough that the named
// schedules' byte-offset faults (reset at 512) land mid-upload.
func chaosDevices(z int, seed int64) []*mat.Dense {
	const n, d, l, lPrime, perCluster = 40, 3, 4, 2, 8
	rng := rand.New(rand.NewSource(seed))
	s := synth.RandomSubspaces(n, d, l, rng)
	devices := make([]*mat.Dense, z)
	for dev := 0; dev < z; dev++ {
		clusters := rng.Perm(l)[:lPrime]
		counts := make([]int, l)
		for _, c := range clusters {
			counts[c] = perCluster
		}
		devices[dev] = s.SampleCounts(counts, rng).X
	}
	return devices
}

// roundOutcome is everything a chaos round is compared on.
type roundOutcome struct {
	Stats    fednet.ServeStats
	ServeErr string
	Labels   [][]int
	Attempts []int
	Errs     []string
	Trace    string
}

// runChaosRound drives one full round: every device dials through the
// schedule, the server runs straggler-tolerant, and the outcome is
// collected in comparable form. dial/listener choose the transport.
func runChaosRound(t *testing.T, sched *chaos.Schedule, devices []*mat.Dense,
	minClients int, policy fednet.RetryPolicy, dial func() (net.Conn, error), ln net.Listener) roundOutcome {
	t.Helper()
	z := len(devices)
	srv := &fednet.Server{L: 4, Expect: z, Seed: 99, WaitTimeout: 400 * time.Millisecond, MinClients: minClients}
	var out roundOutcome
	var serveErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		out.Stats, serveErr = srv.Serve(ln)
	}()
	out.Labels = make([][]int, z)
	out.Attempts = make([]int, z)
	out.Errs = make([]string, z)
	var cw sync.WaitGroup
	for dev := 0; dev < z; dev++ {
		cw.Add(1)
		go func(dev int) {
			defer cw.Done()
			rng := rand.New(rand.NewSource(int64(1000 + dev)))
			res, err := fednet.RunClientDialer(sched.Dialer(dev, dial), dev, devices[dev],
				core.LocalOptions{UseEigengap: true}, policy, rng)
			out.Labels[dev] = res.Labels
			out.Attempts[dev] = res.Attempts
			if err != nil {
				out.Errs[dev] = err.Error()
			}
		}(dev)
	}
	cw.Wait()
	wg.Wait()
	if serveErr != nil {
		out.ServeErr = serveErr.Error()
	}
	out.Trace = sched.Trace.String()
	return out
}

// TestMixedScheduleReplaysBitIdentically is the acceptance scenario:
// latency with jitter on every link, one device reset mid-upload at a
// fixed byte offset, one device black-holed forever. The round must
// complete via retry + straggler tolerance with no duplicate samples,
// and two runs under the same seed must agree on every observable —
// fault trace, ServeStats, labels.
func TestMixedScheduleReplaysBitIdentically(t *testing.T) {
	const z = 5
	devices := chaosDevices(z, 42)
	policy := fednet.RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond, Timeout: 250 * time.Millisecond, ReplyTimeout: 3 * time.Second}
	run := func() roundOutcome {
		sched, ok := chaos.Named("mixed", z, 7)
		if !ok {
			t.Fatal("mixed schedule missing")
		}
		pn := chaos.NewPipeNet()
		defer pn.Close()
		return runChaosRound(t, sched, devices, z-1, policy, pn.Dial, pn.Listener())
	}
	first := run()

	// The round completed without the black-holed device.
	if first.ServeErr != "" {
		t.Fatalf("server: %s", first.ServeErr)
	}
	if first.Stats.Devices != z-1 {
		t.Fatalf("pooled %d devices, want %d (all but the black-holed one)", first.Stats.Devices, z-1)
	}
	if first.Errs[1] == "" {
		t.Fatal("black-holed device 1 should have given up")
	}
	for dev := 0; dev < z; dev++ {
		if dev != 1 && first.Errs[dev] != "" {
			t.Fatalf("device %d failed in a recoverable schedule: %s", dev, first.Errs[dev])
		}
	}
	if first.Attempts[0] != 2 {
		t.Fatalf("reset device took %d attempts, want 2", first.Attempts[0])
	}
	if first.Stats.Retries != 0 {
		t.Fatalf("mid-upload reset must not reach the dedup table, got %d replacements", first.Stats.Retries)
	}
	// No duplicate samples: the pooled count equals the sum over the
	// pooled devices' uploads, each counted once.
	perDevice := first.Stats.Samples / (z - 1)
	if perDevice*(z-1) != first.Stats.Samples {
		t.Fatalf("pooled sample count %d not an even per-device multiple", first.Stats.Samples)
	}
	if first.Trace == "" {
		t.Fatal("no faults traced under the mixed schedule")
	}

	second := run()
	if first.Trace != second.Trace {
		t.Fatalf("fault trace not bit-identical under a fixed seed:\n--- first\n%s--- second\n%s", first.Trace, second.Trace)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("round outcome diverged under a fixed seed:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// raceSchedule exercises every recoverable fault class at once: a
// mid-upload reset, a mid-upload stall, a refused dial, and chunked
// slightly-latent links everywhere.
func raceSchedule(seed int64) *chaos.Schedule {
	return &chaos.Schedule{
		Seed:    seed,
		Default: chaos.Script{Latency: 2 * time.Millisecond, Jitter: time.Millisecond, ChunkBytes: 256},
		Devices: map[int]chaos.Script{
			0: {ResetWriteAt: 300},
			1: {StallWriteAfter: 300},
			2: {Refuse: true},
		},
		Trace: chaos.NewTrace(),
	}
}

// TestChaosRoundRace runs resets, stalls, and retries concurrently
// over both transports; its value is under -race.
func TestChaosRoundRace(t *testing.T) {
	const z = 4
	devices := chaosDevices(z, 43)
	policy := fednet.RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, Timeout: 250 * time.Millisecond, ReplyTimeout: 3 * time.Second}

	check := func(t *testing.T, out roundOutcome) {
		t.Helper()
		if out.ServeErr != "" {
			t.Fatalf("server: %s", out.ServeErr)
		}
		if out.Stats.Devices != z {
			t.Fatalf("pooled %d devices, want %d — every fault here is recoverable", out.Stats.Devices, z)
		}
		for dev := 0; dev < z; dev++ {
			if out.Errs[dev] != "" {
				t.Fatalf("device %d failed in a recoverable schedule: %s", dev, out.Errs[dev])
			}
		}
		for _, dev := range []int{0, 1, 2} {
			if out.Attempts[dev] != 2 {
				t.Fatalf("faulted device %d took %d attempts, want 2", dev, out.Attempts[dev])
			}
		}
	}

	t.Run("pipe", func(t *testing.T) {
		pn := chaos.NewPipeNet()
		defer pn.Close()
		check(t, runChaosRound(t, raceSchedule(3), devices, z, policy, pn.Dial, pn.Listener()))
	})
	t.Run("tcp", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		defer func() { _ = ln.Close() }() // Serve already closed it; double close is harmless
		addr := ln.Addr().String()
		dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
		check(t, runChaosRound(t, raceSchedule(4), devices, z, policy, dial, ln))
	})
}
