package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// wrapPipe returns a scripted client conn talking to a raw server end.
func wrapPipe(t *testing.T, script Script, seed int64) (*Conn, net.Conn) {
	t.Helper()
	server, client := net.Pipe()
	t.Cleanup(func() {
		_ = server.Close() // teardown; faults may have closed it already
		_ = client.Close() // teardown; faults may have closed it already
	})
	conn := newConn(client, script, script.terminal(), 0, 0,
		rand.New(rand.NewSource(seed)), NewTrace())
	return conn, server
}

// TestResetWriteAtExactOffset: the peer observes exactly the scripted
// number of bytes, then a terminated stream.
func TestResetWriteAtExactOffset(t *testing.T) {
	const offset = 100
	conn, server := wrapPipe(t, Script{ResetWriteAt: offset, ChunkBytes: 7}, 1)
	var got bytes.Buffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = io.Copy(&got, server) // the reset ends the stream; EOF vs ErrClosedPipe is irrelevant
	}()
	n, err := conn.Write(make([]byte, 300))
	if !errors.Is(err, ErrReset) {
		t.Fatalf("write returned %v, want ErrReset", err)
	}
	if n != offset {
		t.Fatalf("writer delivered %d bytes, want exactly %d", n, offset)
	}
	<-done
	if got.Len() != offset {
		t.Fatalf("peer observed %d bytes, want exactly %d", got.Len(), offset)
	}
	events := conn.trace.Events(0)
	if len(events) != 1 || !strings.Contains(events[0], "reset at byte 100") {
		t.Fatalf("trace = %v, want one reset event at byte 100", events)
	}
}

// TestResetReadAtExactOffset mirrors the write-side reset: exactly the
// scripted number of downlink bytes are observed.
func TestResetReadAtExactOffset(t *testing.T) {
	const offset = 100
	conn, server := wrapPipe(t, Script{ResetReadAt: offset}, 2)
	go func() {
		_, _ = server.Write(make([]byte, 300)) // cut mid-write by the scripted reset
	}()
	got, err := io.ReadAll(io.Reader(conn))
	if !errors.Is(err, ErrReset) {
		t.Fatalf("read returned %v, want ErrReset", err)
	}
	if len(got) != offset {
		t.Fatalf("reader observed %d bytes, want exactly %d", len(got), offset)
	}
}

// TestChunkedWrites: fragmentation caps what the peer sees per read.
func TestChunkedWrites(t *testing.T) {
	conn, server := wrapPipe(t, Script{ChunkBytes: 8}, 3)
	go func() {
		_, _ = conn.Write(make([]byte, 50)) // sizes are asserted reader-side
		_ = conn.Close()                    // teardown of the write side
	}()
	total := 0
	buf := make([]byte, 64)
	for {
		n, err := server.Read(buf)
		if n > 8 {
			t.Fatalf("peer read %d bytes in one call, chunking caps it at 8", n)
		}
		total += n
		if err != nil {
			break
		}
	}
	if total != 50 {
		t.Fatalf("peer observed %d bytes, want 50", total)
	}
}

// TestBlackholeRespectsDeadline: a black-holed direction returns the
// caller's deadline error instead of hanging.
func TestBlackholeRespectsDeadline(t *testing.T) {
	conn, _ := wrapPipe(t, Script{Blackhole: true}, 4)
	if err := conn.SetDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatalf("set deadline: %v", err)
	}
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("black-holed read returned %v, want deadline exceeded", err)
	}
	if _, err := conn.Write(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("black-holed write returned %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline honoured only after %v", elapsed)
	}
}

// TestBlackholeUnblocksOnClose: without a deadline, Close is the only
// exit — it must wake the stalled operation.
func TestBlackholeUnblocksOnClose(t *testing.T) {
	conn, _ := wrapPipe(t, Script{Blackhole: true}, 5)
	errCh := make(chan error, 1)
	go func() {
		_, err := conn.Read(make([]byte, 1))
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_ = conn.Close() // the close is the point of the test
	if err := <-errCh; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("stalled read returned %v after close, want net.ErrClosed", err)
	}
}

// TestScheduledRefusal: the dialer refuses exactly FailAttempts times,
// then connects cleanly.
func TestScheduledRefusal(t *testing.T) {
	pn := NewPipeNet()
	defer pn.Close()
	sched := &Schedule{Seed: 9, Devices: map[int]Script{3: {Refuse: true, FailAttempts: 2}}, Trace: NewTrace()}
	dial := sched.Dialer(3, pn.Dial)
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := dial(); !errors.Is(err, ErrRefused) {
			t.Fatalf("attempt %d: %v, want ErrRefused", attempt, err)
		}
	}
	conn, err := dial()
	if err != nil {
		t.Fatalf("third attempt should connect: %v", err)
	}
	_ = conn.Close() // only the dial outcome matters
	if events := sched.Trace.Events(3); len(events) != 2 {
		t.Fatalf("trace recorded %d refusals, want 2: %v", len(events), events)
	}
}

// TestRefusingListener: the accept-side complement closes the first
// RefuseFirst connections before a byte flows.
func TestRefusingListener(t *testing.T) {
	pn := NewPipeNet()
	defer pn.Close()
	ln := &Listener{Inner: pn.Listener(), RefuseFirst: 1, Trace: NewTrace()}
	first, err := pn.Dial()
	if err != nil {
		t.Fatalf("first dial: %v", err)
	}
	second, err := pn.Dial()
	if err != nil {
		t.Fatalf("second dial: %v", err)
	}
	accepted, err := ln.Accept()
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	defer func() {
		_ = accepted.Close() // teardown
		_ = second.Close()   // teardown
	}()
	// The refused dialer observes a dead connection (Accept already
	// closed its peer, so the read fails without blocking).
	if _, err := first.Read(make([]byte, 1)); err == nil {
		t.Fatal("refused connection still delivered bytes")
	}
	// The accepted pair is live in both directions.
	go func() { _, _ = accepted.Write([]byte("ok")) }()
	buf := make([]byte, 2)
	if _, err := io.ReadFull(second, buf); err != nil {
		t.Fatalf("accepted connection dead: %v", err)
	}
	if events := ln.Trace.Events(-1); len(events) != 1 {
		t.Fatalf("trace recorded %d refusals, want 1: %v", len(events), events)
	}
}

// TestLatencyDeterminism: equal seeds produce identical jitter draws,
// different seeds diverge.
func TestLatencyDeterminism(t *testing.T) {
	script := Script{Latency: time.Millisecond, Jitter: time.Millisecond}
	draw := func(seed int64) []time.Duration {
		c := newConn(nil, script, false, 0, 0, rand.New(rand.NewSource(seed)), nil)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = c.latency()
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v vs %v under equal seeds", i, a[i], b[i])
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

// TestScheduleAttemptCounting: Wrap derives independent rng streams
// per (device, attempt) and ResetAttempts rewinds the dialer.
func TestScheduleAttemptCounting(t *testing.T) {
	pn := NewPipeNet()
	defer pn.Close()
	sched := &Schedule{Seed: 11, Devices: map[int]Script{0: {ResetWriteAt: 10}}}
	dial := sched.Dialer(0, pn.Dial)
	c1, err := dial()
	if err != nil {
		t.Fatalf("dial 1: %v", err)
	}
	c2, err := dial()
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	if !c1.(*Conn).failing || c2.(*Conn).failing {
		t.Fatal("terminal fault must hit attempt 0 and spare attempt 1")
	}
	_ = c1.Close() // teardown
	_ = c2.Close() // teardown
	sched.ResetAttempts()
	c3, err := dial()
	if err != nil {
		t.Fatalf("dial after reset: %v", err)
	}
	if !c3.(*Conn).failing {
		t.Fatal("ResetAttempts did not rewind the attempt counter")
	}
	_ = c3.Close() // teardown
}

// TestNamedSchedules: every published name resolves, unknown names
// fail, and the victim ids stay within range for small z.
func TestNamedSchedules(t *testing.T) {
	for _, name := range Names() {
		s, ok := Named(name, 4, 1)
		if !ok || s == nil {
			t.Fatalf("schedule %q did not resolve", name)
		}
		for dev := range s.Devices {
			if dev < 0 || dev >= 4 {
				t.Fatalf("schedule %q targets device %d outside z=4", name, dev)
			}
		}
		if s.Trace == nil {
			t.Fatalf("schedule %q has no trace", name)
		}
	}
	if _, ok := Named("no-such-schedule", 4, 1); ok {
		t.Fatal("unknown schedule name resolved")
	}
	// z=1 must clamp every victim onto the only device.
	s, _ := Named("blackhole", 1, 1)
	if _, ok := s.Devices[0]; !ok {
		t.Fatal("z=1 blackhole schedule has no victim")
	}
}

// TestTraceRendering: concurrent recording, sorted deterministic
// rendering, nil safety.
func TestTraceRendering(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for dev := 0; dev < 4; dev++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				tr.Record(dev, "event %d", i)
			}
		}(dev)
	}
	wg.Wait()
	s := tr.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 12 {
		t.Fatalf("trace rendered %d lines, want 12:\n%s", len(lines), s)
	}
	for i := 1; i < len(lines); i++ {
		if deviceOf(t, lines[i]) < deviceOf(t, lines[i-1]) {
			t.Fatalf("trace lines not in ascending device order:\n%s", s)
		}
	}
	var nilTrace *Trace
	nilTrace.Record(0, "dropped")
	if nilTrace.String() != "" || nilTrace.Events(0) != nil {
		t.Fatal("nil trace must be inert")
	}
	tr.Reset()
	if tr.String() != "" {
		t.Fatal("reset did not clear the trace")
	}
}

// deviceOf parses the device id from a rendered "device N: ..." line.
func deviceOf(t *testing.T, line string) int {
	t.Helper()
	var dev int
	if _, err := fmt.Sscanf(line, "device %d:", &dev); err != nil {
		t.Fatalf("unparseable trace line %q: %v", line, err)
	}
	return dev
}
