package chaos_test

// Chaos coverage for the multi-round distributed-SVD wire: a solve
// whose first iteration suffers a reset mid-projection-upload (retry
// path) while another device duplicates every upload on a second
// connection (supersede path) must converge to exactly the result of a
// fault-free in-process solve, and the whole run — fault trace, stats,
// basis bits — must replay bit-identically under a fixed seed. This is
// the dsvd determinism contract end to end: retries and duplicates
// recompute the same projection from the same hello, dedup keeps the
// pool single-entry, and pooling order is fixed by device id.

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"fedsc/internal/chaos"
	"fedsc/internal/dsvd"
	"fedsc/internal/fednet"
	"fedsc/internal/mat"
	"fedsc/internal/obs"
)

// dsvdChaosBlocks plants a rank-d subspace in n dimensions and deals
// its columns into z device blocks of unequal size.
func dsvdChaosBlocks(seed int64) []*mat.Dense {
	const n, d = 20, 3
	sizes := []int{12, 16, 9, 11}
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for _, c := range sizes {
		total += c
	}
	basis := mat.RandomOrthonormal(n, d, rng)
	coef := mat.RandomGaussian(d, total, rng)
	x := mat.Mul(basis, coef)
	noise := mat.RandomGaussian(n, total, rng)
	xd, nd := x.Data(), noise.Data()
	for i := range xd {
		xd[i] += 0.01 * nd[i]
	}
	blocks := make([]*mat.Dense, len(sizes))
	off := 0
	col := make([]float64, n)
	for z, c := range sizes {
		b := mat.NewDense(n, c)
		for j := 0; j < c; j++ {
			x.Col(off+j, col)
			b.SetCol(j, col)
		}
		blocks[z] = b
		off += c
	}
	return blocks
}

// dsvdMixedSchedule scripts the same two adversaries as the one-shot
// round tests, against the iterated wire: device 0's very first
// connection is reset 200 bytes into its projection upload (the retry
// must recompute the identical projection for the same iteration), and
// device 2 duplicates every iteration's upload (each iteration's dedup
// must keep exactly one entry).
func dsvdMixedSchedule(seed int64) *chaos.Schedule {
	return &chaos.Schedule{
		Seed:    seed,
		Default: chaos.Script{Latency: 2 * time.Millisecond, Jitter: time.Millisecond},
		Devices: map[int]chaos.Script{
			0: {Latency: 2 * time.Millisecond, Jitter: time.Millisecond, ResetWriteAt: 200},
			2: {Latency: 2 * time.Millisecond, Jitter: time.Millisecond, Duplicate: true},
		},
		Trace: chaos.NewTrace(),
	}
}

// dsvdOutcome is everything a chaos dsvd solve is compared on.
type dsvdOutcome struct {
	Stats    fednet.DSVDServeStats
	ServeErr string
	Client   []fednet.DSVDClientStats
	Errs     []string
	Trace    string
}

func runDSVDChaosSolve(t *testing.T, seed int64, opts dsvd.Options) dsvdOutcome {
	t.Helper()
	blocks := dsvdChaosBlocks(17)
	z := len(blocks)
	policy := fednet.RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond,
		Timeout: 250 * time.Millisecond, ReplyTimeout: 3 * time.Second}
	sched := dsvdMixedSchedule(seed)
	pn := chaos.NewPipeNet()
	defer pn.Close()

	srv := &fednet.DSVDServer{Expect: z, Rows: blocks[0].Rows(), Opts: opts, WaitTimeout: 5 * time.Second}
	var out dsvdOutcome
	var serveErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		out.Stats, serveErr = srv.Serve(pn.Listener())
	}()
	out.Client = make([]fednet.DSVDClientStats, z)
	out.Errs = make([]string, z)
	var cw sync.WaitGroup
	for dev := 0; dev < z; dev++ {
		cw.Add(1)
		go func(dev int) {
			defer cw.Done()
			dial := sched.Dialer(dev, pn.Dial)
			var err error
			if sched.Script(dev).Duplicate {
				out.Client[dev], err = fednet.RunDSVDClientDuplicate(dial, dev, blocks[dev], policy, fednet.WireOptions{})
			} else {
				rng := rand.New(rand.NewSource(int64(1000 + dev)))
				out.Client[dev], err = fednet.RunDSVDClient(dial, dev, blocks[dev], policy, fednet.WireOptions{}, rng)
			}
			if err != nil {
				out.Errs[dev] = err.Error()
			}
		}(dev)
	}
	cw.Wait()
	wg.Wait()
	if serveErr != nil {
		out.ServeErr = serveErr.Error()
	}
	out.Trace = sched.Trace.String()
	return out
}

func TestDSVDSolveSurvivesResetAndDuplicate(t *testing.T) {
	opts := dsvd.Options{K: 3, Seed: 29, Tol: 1e-9, MaxIter: 100, Obs: obs.NewRegistry()}
	first := runDSVDChaosSolve(t, 13, opts)

	if first.ServeErr != "" {
		t.Fatalf("server: %s", first.ServeErr)
	}
	for dev, e := range first.Errs {
		if e != "" {
			t.Fatalf("device %d failed in a recoverable schedule: %s", dev, e)
		}
	}
	iters := first.Stats.Result.Iters
	if iters < 2 {
		t.Fatalf("solve took %d iterations; the schedule needs several to exercise the wire", iters)
	}
	// Device 0's reset killed exactly its first connection: one extra
	// attempt, all in iteration 0.
	if want := iters + 1; first.Client[0].Attempts != want {
		t.Fatalf("reset device dialed %d times for %d iterations, want %d", first.Client[0].Attempts, iters, want)
	}
	// Device 2 dialed twice per iteration, and each duplicate superseded
	// its attempt-1 twin — the dead reset attempt never reached dedup.
	if want := 2 * iters; first.Client[2].Attempts != want {
		t.Fatalf("duplicating device dialed %d times for %d iterations, want %d", first.Client[2].Attempts, iters, want)
	}
	if first.Stats.Retries != iters {
		t.Fatalf("dedup replacements %d, want one per iteration = %d", first.Stats.Retries, iters)
	}
	// Pooled payload: every device exactly once per iteration at n×k
	// float64 values, duplicates and dead attempts excluded.
	n := 20
	if want := int64(iters) * 4 * int64(n) * 3 * 64; first.Stats.UplinkPayloadBits != want {
		t.Fatalf("payload accounting %d bits, want %d", first.Stats.UplinkPayloadBits, want)
	}
	if first.Trace == "" {
		t.Fatal("no faults traced")
	}

	// Faults must not bend the math: the solve equals a fault-free
	// in-process run bit for bit.
	local, err := dsvd.Run(dsvdChaosBlocks(17), dsvd.Options{K: 3, Seed: 29, Tol: 1e-9, MaxIter: 100, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Stats.Result.U.Data(), local.U.Data()) ||
		!reflect.DeepEqual(first.Stats.Result.Sigma, local.Sigma) ||
		first.Stats.Result.Iters != local.Iters {
		t.Fatal("chaos solve result differs from the fault-free in-process solve")
	}

	// And the whole faulted run replays bit-identically.
	second := runDSVDChaosSolve(t, 13, opts)
	if first.Trace != second.Trace {
		t.Fatalf("fault trace not bit-identical under a fixed seed:\n--- first\n%s--- second\n%s",
			first.Trace, second.Trace)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("dsvd chaos outcome diverged under a fixed seed:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}
