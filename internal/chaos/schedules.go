package chaos

import "time"

// Named returns one of the predefined fault schedules, parameterised
// by the number of devices z (victim ids are taken modulo z) and the
// replay seed. The names are stable — they appear in `fedsc-chaos
// -schedule`, the Makefile smoke target, and the regression tests.
//
//	none        fault-free baseline
//	latency     50ms ± 20ms one-way latency on every link
//	slow-links  5ms latency, 512-byte fragments, 2 MB/s bandwidth cap
//	reset-retry device 0 reset mid-upload at byte 512, first attempt
//	flaky-dial  device 2 refused on its first two connection attempts
//	blackhole   device 1 black-holed on every attempt (never recovers)
//	duplicate   device 2 replays its upload on a second connection
//	mixed       latency 50ms ± 10ms on all links, device 0 reset at
//	            byte 512 on its first attempt, device 1 black-holed
//	            (the acceptance schedule: the round must complete via
//	            retry + straggler tolerance with no duplicate samples)
func Named(name string, z int, seed int64) (*Schedule, bool) {
	if z < 1 {
		z = 1
	}
	victim := func(i int) int { return i % z }
	s := &Schedule{Seed: seed, Devices: map[int]Script{}, Trace: NewTrace()}
	switch name {
	case "none":
	case "latency":
		s.Default = Script{Latency: 50 * time.Millisecond, Jitter: 20 * time.Millisecond}
	case "slow-links":
		s.Default = Script{Latency: 5 * time.Millisecond, ChunkBytes: 512, BandwidthBps: 2 << 20}
	case "reset-retry":
		s.Devices[victim(0)] = Script{ResetWriteAt: 512}
	case "flaky-dial":
		s.Devices[victim(2)] = Script{Refuse: true, FailAttempts: 2}
	case "blackhole":
		s.Devices[victim(1)] = Script{Blackhole: true, FailAttempts: -1}
	case "duplicate":
		s.Devices[victim(2)] = Script{Duplicate: true}
	case "mixed":
		s.Default = Script{Latency: 50 * time.Millisecond, Jitter: 10 * time.Millisecond}
		s.Devices[victim(0)] = Script{
			Latency: 50 * time.Millisecond, Jitter: 10 * time.Millisecond,
			ResetWriteAt: 512,
		}
		s.Devices[victim(1)] = Script{
			Latency: 50 * time.Millisecond, Jitter: 10 * time.Millisecond,
			Blackhole: true, FailAttempts: -1,
		}
	default:
		return nil, false
	}
	return s, true
}

// Names lists the predefined schedules in presentation order.
func Names() []string {
	return []string{"none", "latency", "slow-links", "reset-retry", "flaky-dial", "blackhole", "duplicate", "mixed"}
}
