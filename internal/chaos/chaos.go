// Package chaos is a deterministic, seeded fault-injection transport
// for exercising the one-shot Fed-SC round under realistic network
// failure: Conn and Listener wrap any net.Conn / net.Listener and
// inject latency with jitter, bandwidth caps, chunked partial writes,
// connection resets at exact byte offsets, mid-upload stalls and
// black-holes, and accept-time refusals, all scripted per device and
// per connection attempt by a Schedule.
//
// Every random decision (jitter draws) flows through a *rand.Rand
// derived from (Schedule.Seed, device, attempt) with a splitmix64
// mixer, never from wall-clock or goroutine interleaving, so a chaos
// run replays bit-identically under a fixed seed: the fault Trace, the
// set of bytes each endpoint observes over net.Pipe, and therefore the
// round's ServeStats and labels are all reproducible — the property
// the round-orchestration regression tests and cmd/fedsc-chaos build
// on.
package chaos

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrRefused is returned by a scripted dial whose connection attempt
// is refused before any byte flows (the deterministic analogue of
// ECONNREFUSED).
var ErrRefused = errors.New("chaos: connection refused by schedule")

// ErrReset is returned by a Conn whose write direction was cut at the
// scripted byte offset (the deterministic analogue of ECONNRESET).
var ErrReset = errors.New("chaos: connection reset by schedule")

// Script is the fault program of one device. Shaping faults (latency,
// jitter, bandwidth, chunking) apply to every connection attempt;
// terminal faults (refuse, reset, stall, black-hole) apply only to
// the first FailAttempts attempts, so a retrying client eventually
// gets a clean link — or never does, when FailAttempts is negative.
type Script struct {
	// Latency is added once per transfer direction (before the first
	// read and the first write of the connection), modelling one-way
	// propagation delay.
	Latency time.Duration
	// Jitter widens Latency by a seeded uniform draw in [-Jitter, +Jitter].
	Jitter time.Duration
	// BandwidthBps caps the write throughput: each chunk sleeps
	// len(chunk)·1e9/BandwidthBps nanoseconds after flushing. Zero
	// means unlimited.
	BandwidthBps int
	// ChunkBytes fragments every write into chunks of at most this
	// many bytes, each delivered separately (TCP-like fragmentation);
	// zero writes whole buffers.
	ChunkBytes int

	// Refuse fails the dial itself with ErrRefused.
	Refuse bool
	// ResetWriteAt, when positive, resets the connection the moment
	// the cumulative written byte count reaches exactly this offset:
	// bytes before the offset are delivered, the rest never are.
	ResetWriteAt int64
	// ResetReadAt mirrors ResetWriteAt for the read direction: exactly
	// this many downlink bytes are observed, then the connection resets.
	// Placed past the round hello it models the classic
	// pooled-but-unacknowledged fault — the server accepted the upload
	// while the client never saw the reply and must retry.
	ResetReadAt int64
	// StallWriteAfter, when positive, black-holes the write direction
	// once the cumulative written byte count reaches this offset: the
	// write blocks until the deadline expires or the conn is closed.
	StallWriteAfter int64
	// Blackhole stalls both directions from the first byte: the
	// connection opens but nothing ever flows.
	Blackhole bool
	// FailAttempts is how many initial attempts suffer the terminal
	// faults: 0 defaults to 1 when any terminal fault is set, and a
	// negative value applies them to every attempt (a device that
	// never recovers).
	FailAttempts int

	// Duplicate marks the device for a duplicate late connect: after
	// its successful exchange the harness replays the identical upload
	// on a fresh connection, exercising the server's dedup table. The
	// transport itself ignores the flag.
	Duplicate bool
}

// terminal reports whether any terminal fault is configured.
func (s Script) terminal() bool {
	return s.Refuse || s.Blackhole || s.ResetWriteAt > 0 || s.ResetReadAt > 0 || s.StallWriteAfter > 0
}

// failsAttempt reports whether attempt (0-based) suffers the terminal
// faults.
func (s Script) failsAttempt(attempt int) bool {
	if !s.terminal() {
		return false
	}
	n := s.FailAttempts
	if n < 0 {
		return true
	}
	if n == 0 {
		n = 1
	}
	return attempt < n
}

// Schedule assigns fault scripts to devices and derives the seeded
// randomness of every connection deterministically.
type Schedule struct {
	// Seed roots every per-connection rng; two runs with equal Seed
	// and scripts produce identical fault decisions.
	Seed int64
	// Default applies to devices absent from Devices.
	Default Script
	// Devices maps a device id to its script.
	Devices map[int]Script
	// Trace, when non-nil, records every injected fault for replay
	// verification.
	Trace *Trace

	mu       sync.Mutex
	attempts map[int]int
}

// Script returns the fault program of device.
func (s *Schedule) Script(device int) Script {
	if sc, ok := s.Devices[device]; ok {
		return sc
	}
	return s.Default
}

// Dialer wraps dial so that each call counts as the device's next
// connection attempt and returns a Conn applying the device's script
// for that attempt (or ErrRefused when the attempt is scripted away).
func (s *Schedule) Dialer(device int, dial func() (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		s.mu.Lock()
		if s.attempts == nil {
			s.attempts = make(map[int]int)
		}
		attempt := s.attempts[device]
		s.attempts[device] = attempt + 1
		s.mu.Unlock()
		return s.Wrap(device, attempt, dial)
	}
}

// Wrap dials and wraps one scripted connection for (device, attempt).
func (s *Schedule) Wrap(device, attempt int, dial func() (net.Conn, error)) (net.Conn, error) {
	sc := s.Script(device)
	failing := sc.failsAttempt(attempt)
	if sc.Refuse && failing {
		s.Trace.Record(device, "attempt %d: refused", attempt)
		return nil, ErrRefused
	}
	inner, err := dial()
	if err != nil {
		return nil, err
	}
	return newConn(inner, sc, failing, device, attempt,
		rand.New(rand.NewSource(mix64(s.Seed, int64(device)<<20+int64(attempt)))), s.Trace), nil
}

// ResetAttempts forgets the per-device attempt counters so the same
// Schedule value can drive a second, identical run.
func (s *Schedule) ResetAttempts() {
	s.mu.Lock()
	s.attempts = nil
	s.mu.Unlock()
}

// mix64 is splitmix64 over the pair (seed, salt): a cheap, well-mixed
// derivation of independent per-connection streams from one root seed.
func mix64(seed, salt int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(salt)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
