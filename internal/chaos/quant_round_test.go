package chaos_test

// Quantized-wire chaos coverage: a round whose uploads travel under
// the negotiated CodecQuant encoding must survive a reset mid-upload
// and a duplicate late connect exactly like the float64 wire — dedup
// to the highest attempt, no double pooling — and replay
// bit-identically under a fixed seed, Section IV-E payload accounting
// included. Packing is stateless, so every retry carries the same
// bytes; this test pins that end to end.

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"fedsc/internal/chaos"
	"fedsc/internal/core"
	"fedsc/internal/fednet"
	"fedsc/internal/privacy"
)

// quantMixedSchedule scripts the two adversaries of the dedup table at
// once: device 0 is reset mid-upload on its first attempt (the retry
// path — the dead attempt never reaches the pool), device 2 replays
// its upload on a second connection (the supersede path — attempt 2
// must win). The reset offset sits inside the quantized upload, which
// is several times smaller than its float64 counterpart.
func quantMixedSchedule(seed int64) *chaos.Schedule {
	return &chaos.Schedule{
		Seed:    seed,
		Default: chaos.Script{Latency: 2 * time.Millisecond, Jitter: time.Millisecond},
		Devices: map[int]chaos.Script{
			0: {Latency: 2 * time.Millisecond, Jitter: time.Millisecond, ResetWriteAt: 200},
			2: {Latency: 2 * time.Millisecond, Jitter: time.Millisecond, Duplicate: true},
		},
		Trace: chaos.NewTrace(),
	}
}

func runQuantChaosRound(t *testing.T, seed int64) roundOutcome {
	t.Helper()
	const z = 4
	devices := chaosDevices(z, 44)
	policy := fednet.RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond,
		Timeout: 250 * time.Millisecond, ReplyTimeout: 3 * time.Second}
	wire := fednet.WireOptions{Quant: &privacy.Quantizer{Bits: 8}}
	sched := quantMixedSchedule(seed)
	pn := chaos.NewPipeNet()
	defer pn.Close()

	srv := &fednet.Server{L: 4, Expect: z, Seed: 99, WaitTimeout: 400 * time.Millisecond, MinClients: z}
	var out roundOutcome
	var serveErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		out.Stats, serveErr = srv.Serve(pn.Listener())
	}()
	out.Labels = make([][]int, z)
	out.Attempts = make([]int, z)
	out.Errs = make([]string, z)
	var cw sync.WaitGroup
	for dev := 0; dev < z; dev++ {
		cw.Add(1)
		go func(dev int) {
			defer cw.Done()
			rng := rand.New(rand.NewSource(int64(1000 + dev)))
			run := fednet.RunClientDialerWire
			if sched.Script(dev).Duplicate {
				run = fednet.RunClientDuplicateWire
			}
			res, err := run(sched.Dialer(dev, pn.Dial), dev, devices[dev],
				core.LocalOptions{UseEigengap: true}, policy, wire, rng)
			out.Labels[dev] = res.Labels
			out.Attempts[dev] = res.Attempts
			if err != nil {
				out.Errs[dev] = err.Error()
			}
		}(dev)
	}
	cw.Wait()
	wg.Wait()
	if serveErr != nil {
		out.ServeErr = serveErr.Error()
	}
	out.Trace = sched.Trace.String()
	return out
}

func TestQuantizedRoundSurvivesResetAndDuplicate(t *testing.T) {
	const z = 4
	first := runQuantChaosRound(t, 11)

	if first.ServeErr != "" {
		t.Fatalf("server: %s", first.ServeErr)
	}
	for dev := 0; dev < z; dev++ {
		if first.Errs[dev] != "" {
			t.Fatalf("device %d failed in a recoverable schedule: %s", dev, first.Errs[dev])
		}
	}
	if first.Stats.Devices != z {
		t.Fatalf("pooled %d devices, want %d", first.Stats.Devices, z)
	}
	if first.Attempts[0] != 2 {
		t.Fatalf("reset device took %d attempts, want 2 (the reset must land mid-upload)", first.Attempts[0])
	}
	if first.Attempts[2] != 2 {
		t.Fatalf("duplicating device reports %d attempts, want 2", first.Attempts[2])
	}
	// Exactly one dedup replacement: the duplicate's attempt 2
	// superseded attempt 1. The reset attempt died mid-wire and never
	// reached the table.
	if first.Stats.Retries != 1 {
		t.Fatalf("dedup replacements %d, want exactly 1 (the duplicate)", first.Stats.Retries)
	}
	// The pool holds every device exactly once at the quantized rate:
	// ambient 40 x 8 bits per value, no sample counted twice.
	if want := int64(first.Stats.Samples) * 40 * 8; first.Stats.UplinkPayloadBits != want {
		t.Fatalf("payload accounting %d bits for %d pooled samples, want %d",
			first.Stats.UplinkPayloadBits, first.Stats.Samples, want)
	}
	if first.Trace == "" {
		t.Fatal("no faults traced")
	}

	second := runQuantChaosRound(t, 11)
	if first.Trace != second.Trace {
		t.Fatalf("fault trace not bit-identical under a fixed seed:\n--- first\n%s--- second\n%s",
			first.Trace, second.Trace)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("quantized round outcome diverged under a fixed seed:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}
