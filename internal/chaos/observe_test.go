package chaos

import (
	"strings"
	"sync"
	"testing"

	"fedsc/internal/obs"
)

// TestTraceObserverMirrorsEventsIntoSpans pins the obs bridge: every
// fault-trace record doubles as a span event on the observing tracer,
// in per-device injection order, and the canonical span export is
// independent of cross-device interleaving.
func TestTraceObserverMirrorsEventsIntoSpans(t *testing.T) {
	export := func(devORder []int) (string, *Trace) {
		tr := NewTrace()
		tracer := obs.NewTracer(nil)
		root := tracer.Start("chaos.round")
		spans := map[int]*obs.Span{}
		for _, dev := range devORder {
			spans[dev] = root.Start("device", obs.Int("device", dev))
		}
		tr.Observe(func(device int, event string) {
			spans[device].Eventf("%s", event)
		})
		var wg sync.WaitGroup
		for _, dev := range devORder {
			wg.Add(1)
			go func(dev int) {
				defer wg.Done()
				tr.Record(dev, "attempt %d: reset write at %d B", 1, 64*dev)
				tr.Record(dev, "attempt %d: latency 2ms", 2)
			}(dev)
		}
		wg.Wait()
		for _, s := range spans {
			s.End()
		}
		root.End()
		var b strings.Builder
		if err := tracer.WriteJSONL(&b, false); err != nil {
			t.Fatal(err)
		}
		return b.String(), tr
	}
	a, trace := export([]int{0, 1, 2, 3})
	b, _ := export([]int{3, 2, 1, 0})
	if a != b {
		t.Fatalf("canonical chaos span export depends on interleaving:\n%s\nvs\n%s", a, b)
	}
	// Per-device order is preserved: reset before latency.
	for dev := 0; dev < 4; dev++ {
		evs := trace.Events(dev)
		if len(evs) != 2 || !strings.Contains(evs[0], "reset write") || !strings.Contains(evs[1], "latency") {
			t.Fatalf("device %d events out of order: %v", dev, evs)
		}
	}
	if !strings.Contains(a, "reset write at 128 B") {
		t.Fatalf("span export missing mirrored event:\n%s", a)
	}
}

// TestTraceObserverNilSafe ensures detaching and nil traces stay no-ops.
func TestTraceObserverNilSafe(t *testing.T) {
	var nilTrace *Trace
	nilTrace.Observe(func(int, string) { t.Fatal("observer on nil trace") })
	nilTrace.Record(0, "dropped")

	tr := NewTrace()
	calls := 0
	tr.Observe(func(int, string) { calls++ })
	tr.Record(1, "one")
	tr.Observe(nil)
	tr.Record(1, "two")
	if calls != 1 {
		t.Fatalf("observer called %d times, want 1", calls)
	}
	if got := len(tr.Events(1)); got != 2 {
		t.Fatalf("trace kept %d events, want 2", got)
	}
}
