package lasso

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedsc/internal/mat"
)

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ v, t, want float64 }{
		{3, 1, 2}, {-3, 1, -2}, {0.5, 1, 0}, {-0.5, 1, 0}, {1, 1, 0},
	}
	for _, c := range cases {
		if got := SoftThreshold(c.v, c.t); got != c.want {
			t.Fatalf("SoftThreshold(%v,%v) = %v want %v", c.v, c.t, got, c.want)
		}
	}
}

// enObjective evaluates (1/2)||y-Xc||² + λ1||c||₁ + (λ2/2)||c||².
func enObjective(x *mat.Dense, y, c []float64, l1, l2 float64) float64 {
	fit := mat.MulVec(x, c)
	r := mat.Sub(y, fit, nil)
	n2 := mat.Norm2(c)
	return 0.5*mat.Dot(r, r) + l1*mat.Norm1(c) + 0.5*l2*n2*n2
}

func TestLassoRecoversSparseSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	n, cols := 30, 60
	x := mat.RandomGaussian(n, cols, rng)
	mat.NormalizeColumns(x)
	// y = 2*x3 - 1.5*x17
	y := make([]float64, n)
	mat.Axpy(2, x.Col(3, nil), y)
	mat.Axpy(-1.5, x.Col(17, nil), y)
	c := Lasso(x, y, 0.01, nil, Options{})
	if math.Abs(c[3]-2) > 0.1 || math.Abs(c[17]+1.5) > 0.1 {
		t.Fatalf("Lasso missed true support: c3=%v c17=%v", c[3], c[17])
	}
	for j, v := range c {
		if j != 3 && j != 17 && math.Abs(v) > 0.15 {
			t.Fatalf("spurious coefficient c[%d]=%v", j, v)
		}
	}
}

func TestLassoZeroAtHighLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := mat.RandomGaussian(10, 20, rng)
	mat.NormalizeColumns(x)
	y := x.Col(0, nil)
	b := mat.MulTVec(x, y)
	lmax := MaxCorrelation(b, nil)
	c := Lasso(x, y, lmax*1.01, nil, Options{})
	for j, v := range c {
		if v != 0 {
			t.Fatalf("c[%d]=%v should be exactly zero above λmax", j, v)
		}
	}
}

func TestLassoBannedIndexStaysZero(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := mat.RandomGaussian(15, 10, rng)
	mat.NormalizeColumns(x)
	y := x.Col(4, nil) // the banned atom is the perfect answer
	c := Lasso(x, y, 0.01, []int{4}, Options{})
	if c[4] != 0 {
		t.Fatalf("banned coefficient is %v, want 0", c[4])
	}
}

func TestLassoKKTConditions(t *testing.T) {
	// At the optimum: |xⱼᵀr| ≤ λ for cⱼ=0 and xⱼᵀr = λ·sign(cⱼ) otherwise.
	rng := rand.New(rand.NewSource(43))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, cols := 12, 25
		x := mat.RandomGaussian(n, cols, r)
		mat.NormalizeColumns(x)
		y := mat.RandomUnitVector(n, r)
		lambda := 0.05 + 0.2*r.Float64()
		c := Lasso(x, y, lambda, nil, Options{})
		fit := mat.MulVec(x, c)
		res := mat.Sub(y, fit, nil)
		corr := mat.MulTVec(x, res)
		for j, cj := range c {
			if cj == 0 {
				if math.Abs(corr[j]) > lambda+1e-4 {
					return false
				}
			} else if math.Abs(corr[j]-lambda*sign(cj)) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

func TestGramMatchesLasso(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	x := mat.RandomGaussian(20, 15, rng)
	mat.NormalizeColumns(x)
	y := mat.RandomUnitVector(20, rng)
	direct := Lasso(x, y, 0.1, []int{2}, Options{})
	g := mat.Gram(x)
	b := mat.MulTVec(x, y)
	viaGram := Gram(g, b, 0.1, 0, []int{2}, Options{})
	for j := range direct {
		if math.Abs(direct[j]-viaGram[j]) > 1e-9 {
			t.Fatalf("Gram-domain solution differs at %d: %v vs %v", j, direct[j], viaGram[j])
		}
	}
}

func TestElasticNetShrinksMore(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	x := mat.RandomGaussian(20, 30, rng)
	mat.NormalizeColumns(x)
	y := x.Col(0, nil)
	g := mat.Gram(x)
	b := mat.MulTVec(x, y)
	cl := Gram(g, b, 0.05, 0, nil, Options{})
	cen := Gram(g, b, 0.05, 1.0, nil, Options{})
	if mat.Norm2(cen) >= mat.Norm2(cl) {
		t.Fatalf("elastic net should shrink: ‖en‖=%v ‖lasso‖=%v", mat.Norm2(cen), mat.Norm2(cl))
	}
}

func TestOMPExactRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	n, cols := 25, 50
	x := mat.RandomGaussian(n, cols, rng)
	mat.NormalizeColumns(x)
	y := make([]float64, n)
	mat.Axpy(1.0, x.Col(7, nil), y)
	mat.Axpy(-2.0, x.Col(30, nil), y)
	c := OMP(x, y, 2, 1e-10, nil)
	if math.Abs(c[7]-1) > 1e-8 || math.Abs(c[30]+2) > 1e-8 {
		t.Fatalf("OMP failed: c7=%v c30=%v", c[7], c[30])
	}
	nnz := 0
	for _, v := range c {
		if v != 0 {
			nnz++
		}
	}
	if nnz != 2 {
		t.Fatalf("OMP support size %d want 2", nnz)
	}
}

func TestOMPRespectsBanned(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	x := mat.RandomGaussian(10, 8, rng)
	mat.NormalizeColumns(x)
	y := x.Col(5, nil)
	c := OMP(x, y, 3, 1e-12, []int{5})
	if c[5] != 0 {
		t.Fatalf("banned atom selected: %v", c[5])
	}
}

func TestOMPStopsAtTol(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	x := mat.RandomGaussian(10, 20, rng)
	mat.NormalizeColumns(x)
	y := x.Col(2, nil)
	c := OMP(x, y, 10, 1e-8, nil)
	nnz := 0
	for _, v := range c {
		if v != 0 {
			nnz++
		}
	}
	if nnz != 1 {
		t.Fatalf("OMP should stop after exact 1-atom fit, got %d atoms", nnz)
	}
}

func TestElasticNetActiveSetMatchesFullSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	n, cols := 20, 120
	x := mat.RandomGaussian(n, cols, rng)
	mat.NormalizeColumns(x)
	y := make([]float64, n)
	mat.Axpy(1.5, x.Col(100, nil), y)
	mat.Axpy(1.0, x.Col(3, nil), y)
	l1, l2 := 0.05, 0.1
	cAS := ElasticNetActiveSet(x, y, l1, l2, nil, ActiveSetOptions{InitialSize: 5, GrowBy: 3})
	g := mat.Gram(x)
	b := mat.MulTVec(x, y)
	cFull := Gram(g, b, l1, l2, nil, Options{})
	// The two should reach (near) identical objective values.
	oAS := enObjective(x, y, cAS, l1, l2)
	oFull := enObjective(x, y, cFull, l1, l2)
	if math.Abs(oAS-oFull) > 1e-5*(1+math.Abs(oFull)) {
		t.Fatalf("active-set objective %v differs from full solve %v", oAS, oFull)
	}
}

func TestElasticNetActiveSetBanned(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	x := mat.RandomGaussian(12, 40, rng)
	mat.NormalizeColumns(x)
	y := x.Col(9, nil)
	c := ElasticNetActiveSet(x, y, 0.02, 0.05, []int{9}, ActiveSetOptions{})
	if c[9] != 0 {
		t.Fatalf("banned coefficient selected: %v", c[9])
	}
	// Must still fit y reasonably with the other atoms.
	if mat.Norm2(c) == 0 {
		t.Fatal("solution is identically zero")
	}
}

func TestMaxCorrelation(t *testing.T) {
	b := []float64{0.1, -0.9, 0.5}
	if got := MaxCorrelation(b, nil); got != 0.9 {
		t.Fatalf("MaxCorrelation = %v", got)
	}
	if got := MaxCorrelation(b, []int{1}); got != 0.5 {
		t.Fatalf("MaxCorrelation banned = %v", got)
	}
}
