package lasso

import (
	"math"

	"fedsc/internal/mat"
)

// OMP runs Orthogonal Matching Pursuit: it greedily selects up to kmax
// dictionary columns of x (n x N, unit-norm columns) that best correlate
// with the residual of y, re-fitting by least squares after every
// selection, and stops early once the residual norm drops below tol.
// banned indices are never selected. The dense coefficient vector
// (length N, zero outside the support) is returned.
func OMP(x *mat.Dense, y []float64, kmax int, tol float64, banned []int) []float64 {
	n, cols := x.Dims()
	if len(y) != n {
		panic("lasso: OMP dimension mismatch")
	}
	isBanned := make([]bool, cols)
	for _, i := range banned {
		isBanned[i] = true
	}
	if kmax > cols {
		kmax = cols
	}
	residual := make([]float64, n)
	copy(residual, y)
	support := make([]int, 0, kmax)
	inSupport := make([]bool, cols)
	var coef []float64
	for len(support) < kmax {
		if mat.Norm2(residual) <= tol {
			break
		}
		// Select the column most correlated with the residual.
		corr := mat.MulTVec(x, residual)
		best, bestAbs := -1, 0.0
		for j, v := range corr {
			if isBanned[j] || inSupport[j] {
				continue
			}
			if a := math.Abs(v); a > bestAbs {
				best, bestAbs = j, a
			}
		}
		if best < 0 || bestAbs < 1e-14 {
			break
		}
		support = append(support, best)
		inSupport[best] = true
		// Refit on the support and update the residual.
		sub := x.SelectCols(support)
		coef = mat.LeastSquares(sub, y)
		fit := mat.MulVec(sub, coef)
		for i := range residual {
			residual[i] = y[i] - fit[i]
		}
	}
	full := make([]float64, cols)
	for k, j := range support {
		full[j] = coef[k]
	}
	return full
}
