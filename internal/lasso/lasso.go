// Package lasso implements the sparse-recovery solvers behind the
// SSC-family subspace clustering algorithms: coordinate-descent Lasso and
// elastic net (with an ORGEN-style active-set strategy) and Orthogonal
// Matching Pursuit.
//
// The coordinate-descent solvers work in the Gram domain: given the
// dictionary Gram matrix G = XᵀX and correlations b = Xᵀy they minimize
//
//	(1/2)‖y − Xc‖₂² + λ₁‖c‖₁ + (λ₂/2)‖c‖₂²
//
// without touching the ambient dimension, which is the efficient regime
// for the self-expression problems in SSC where one Gram matrix is shared
// by every column of the dataset.
package lasso

import (
	"math"

	"fedsc/internal/mat"
)

// Options controls the coordinate-descent solvers.
type Options struct {
	// MaxIter bounds the number of full coordinate sweeps (default 100).
	MaxIter int
	// Tol is the convergence threshold on the largest coefficient change
	// in a sweep (default 1e-5 — the SSC affinity graph only needs
	// coefficient magnitudes, so chasing the optimization tail buys
	// nothing; pass a tighter Tol for solver-accuracy studies).
	Tol float64
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-5
	}
	return o
}

// SoftThreshold returns the soft-thresholding operator
// sign(v)·max(|v|−t, 0).
func SoftThreshold(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	default:
		return 0
	}
}

// Gram solves the elastic-net problem in the Gram domain:
//
//	min_c (1/2)‖y − Xc‖² + λ₁‖c‖₁ + (λ₂/2)‖c‖₂²
//
// given g = XᵀX and b = Xᵀy, by cyclic coordinate descent with an active
// set. Setting λ₂ = 0 gives the Lasso. banned lists coefficient indices
// pinned to zero (the self-expression constraint cᵢᵢ = 0); pass nil for
// none. The returned slice has one coefficient per dictionary atom.
func Gram(g *mat.Dense, b []float64, lambda1, lambda2 float64, banned []int, opts Options) []float64 {
	opts = opts.withDefaults()
	n := len(b)
	if g.Rows() != n || g.Cols() != n {
		panic("lasso: Gram dimension mismatch")
	}
	isBanned := make([]bool, n)
	for _, i := range banned {
		isBanned[i] = true
	}
	c := make([]float64, n)
	// grad[j] tracks Σ_k G[j,k] c[k]. During inner sweeps it is maintained
	// lazily: a coordinate step updates it only over the active set, so a
	// changed coefficient costs O(|active|) rather than O(n). The inactive
	// entries go stale, but they are only ever read by the KKT pass, which
	// rebuilds the full gradient from the ~d nonzero coefficients first.
	grad := make([]float64, n)
	// Working-set strategy: coordinate descent only ever runs over a
	// small active set; between inner solves a KKT pass over all n
	// coordinates admits the worst violators. SSC solutions have ~d
	// nonzeros, so this turns the O(n) full sweeps that dominate naive
	// CD into O(|active|) sweeps plus a handful of O(n) passes.
	inActive := make([]bool, n)
	var active []int
	admit := func(j int) {
		if !inActive[j] {
			inActive[j] = true
			active = append(active, j)
		}
	}
	sweepActive := func() float64 {
		maxDelta := 0.0
		for _, j := range active {
			old := c[j]
			gjj := g.At(j, j)
			if gjj <= 0 {
				continue
			}
			rho := b[j] - (grad[j] - gjj*old)
			nv := SoftThreshold(rho, lambda1) / (gjj + lambda2)
			// Skip updates below relative rounding noise; exact equality
			// would make the skip depend on the bit pattern of the last
			// arithmetic step.
			if math.Abs(nv-old) <= 1e-15*(1+math.Abs(old)) {
				continue
			}
			d := nv - old
			c[j] = nv
			row := g.Row(j)
			for _, k := range active {
				grad[k] += d * row[k]
			}
			if ad := math.Abs(d); ad > maxDelta {
				maxDelta = ad
			}
		}
		return maxDelta
	}
	// refreshGrad rebuilds the full gradient G·c from the nonzero
	// coefficients, restoring the entries the lazy sweeps let go stale.
	refreshGrad := func() {
		for k := range grad {
			grad[k] = 0
		}
		for _, j := range active {
			if cj := c[j]; cj != 0 { //fedsc:allow floatcmp SoftThreshold produces exact zeros; this is a sparsity skip
				mat.Axpy(cj, g.Row(j), grad)
			}
		}
	}
	// Seed with the strongest correlations, then let KKT passes admit
	// the rest; admissions are capped per round so a high-correlation
	// dictionary cannot flood the active set with coordinates that end
	// up back at zero.
	const growBy = 10
	admitWorst := func(threshold float64) bool {
		type viol struct {
			j int
			a float64
		}
		var worst [growBy]viol
		count := 0
		refreshGrad()
		for j := 0; j < n; j++ {
			if isBanned[j] || inActive[j] {
				continue
			}
			a := math.Abs(b[j] - grad[j])
			if a <= threshold {
				continue
			}
			// Insertion into the fixed-size worst list.
			k := count
			if k > growBy-1 {
				k = growBy - 1
				if worst[k].a >= a {
					continue
				}
			}
			for k > 0 && worst[k-1].a < a {
				worst[k] = worst[k-1]
				k--
			}
			worst[k] = viol{j, a}
			if count < growBy {
				count++
			}
		}
		for i := 0; i < count; i++ {
			admit(worst[i].j)
		}
		return count > 0
	}
	admitWorst(lambda1)
	for round := 0; round < opts.MaxIter; round++ {
		for inner := 0; inner < opts.MaxIter; inner++ {
			if sweepActive() < opts.Tol {
				break
			}
		}
		// KKT pass: a zero coordinate is optimal iff |bⱼ − gradⱼ| ≤ λ1.
		if !admitWorst(lambda1 + opts.Tol) {
			break
		}
	}
	return c
}

// Lasso solves min_c (1/2)‖y − Xc‖² + λ‖c‖₁ with optional banned
// coefficients by forming the Gram matrix and delegating to Gram. For
// repeated solves against one dictionary, compute the Gram once and call
// Gram directly.
func Lasso(x *mat.Dense, y []float64, lambda float64, banned []int, opts Options) []float64 {
	g := mat.Gram(x)
	b := mat.MulTVec(x, y)
	return Gram(g, b, lambda, 0, banned, opts)
}

// MaxCorrelation returns max_{j∉banned} |b[j]| where b = Xᵀy in the Gram
// domain; the Lasso solution is identically zero iff λ ≥ this value. It
// is the quantity the paper's λ rule (λᵢ = maxⱼ≠ᵢ|xⱼᵀxᵢ|/50) is built on.
func MaxCorrelation(b []float64, banned []int) float64 {
	isBanned := make(map[int]bool, len(banned))
	for _, i := range banned {
		isBanned[i] = true
	}
	m := 0.0
	for j, v := range b {
		if isBanned[j] {
			continue
		}
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
