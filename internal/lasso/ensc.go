package lasso

import (
	"math"
	"sort"

	"fedsc/internal/mat"
)

// ActiveSetOptions controls ElasticNetActiveSet.
type ActiveSetOptions struct {
	// Inner controls the coordinate-descent subproblem solver.
	Inner Options
	// InitialSize is the number of highest-correlation atoms seeding the
	// active set (default 50).
	InitialSize int
	// GrowBy bounds how many KKT violators are admitted per round
	// (default 10).
	GrowBy int
	// MaxRounds bounds the number of oracle rounds (default 20).
	MaxRounds int
}

func (o ActiveSetOptions) withDefaults() ActiveSetOptions {
	if o.InitialSize <= 0 {
		o.InitialSize = 50
	}
	if o.GrowBy <= 0 {
		o.GrowBy = 10
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 20
	}
	return o
}

// ElasticNetActiveSet solves
//
//	min_c (1/2)‖y − Xc‖² + λ₁‖c‖₁ + (λ₂/2)‖c‖₂²
//
// with the oracle-based active-set strategy of EnSC (You et al., CVPR'16):
// the subproblem is solved on a small candidate set, then the KKT
// conditions are checked against the full dictionary and violating atoms
// are admitted, until no violations remain. This avoids ever forming the
// full N x N Gram matrix, which is what makes EnSC scale to large
// dictionaries. banned indices are pinned to zero.
func ElasticNetActiveSet(x *mat.Dense, y []float64, lambda1, lambda2 float64, banned []int, opts ActiveSetOptions) []float64 {
	opts = opts.withDefaults()
	_, cols := x.Dims()
	isBanned := make([]bool, cols)
	for _, i := range banned {
		isBanned[i] = true
	}
	b := mat.MulTVec(x, y)
	// Seed: highest correlations.
	order := make([]int, 0, cols)
	for j := 0; j < cols; j++ {
		if !isBanned[j] {
			order = append(order, j)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return math.Abs(b[order[i]]) > math.Abs(b[order[j]])
	})
	size := opts.InitialSize
	if size > len(order) {
		size = len(order)
	}
	active := append([]int(nil), order[:size]...)
	inActive := make([]bool, cols)
	for _, j := range active {
		inActive[j] = true
	}
	c := make([]float64, cols)
	for round := 0; round < opts.MaxRounds; round++ {
		// Solve the subproblem restricted to the active set.
		sub := x.SelectCols(active)
		gs := mat.Gram(sub)
		bs := make([]float64, len(active))
		for k, j := range active {
			bs[k] = b[j]
		}
		cs := Gram(gs, bs, lambda1, lambda2, nil, opts.Inner)
		for j := range c {
			c[j] = 0
		}
		for k, j := range active {
			c[j] = cs[k]
		}
		// KKT check on the full dictionary: residual correlations.
		fit := mat.MulVec(sub, cs)
		r := mat.Sub(y, fit, nil)
		v := mat.MulTVec(x, r)
		type viol struct {
			j int
			a float64
		}
		var violators []viol
		tol := lambda1*1e-6 + 1e-12
		for j := 0; j < cols; j++ {
			if isBanned[j] || inActive[j] {
				continue
			}
			if a := math.Abs(v[j]); a > lambda1+tol {
				violators = append(violators, viol{j, a})
			}
		}
		if len(violators) == 0 {
			break
		}
		sort.Slice(violators, func(i, j int) bool { return violators[i].a > violators[j].a })
		grow := opts.GrowBy
		if grow > len(violators) {
			grow = len(violators)
		}
		for _, vv := range violators[:grow] {
			active = append(active, vv.j)
			inActive[vv.j] = true
		}
	}
	return c
}
