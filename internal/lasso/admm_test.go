package lasso

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedsc/internal/mat"
)

func TestADMMMatchesCoordinateDescent(t *testing.T) {
	rng := rand.New(rand.NewSource(210))
	x := mat.RandomGaussian(25, 40, rng)
	mat.NormalizeColumns(x)
	y := mat.RandomUnitVector(25, rng)
	g := mat.Gram(x)
	b := mat.MulTVec(x, y)
	lambda := 0.08
	cd := Gram(g, b, lambda, 0, []int{3}, Options{MaxIter: 2000, Tol: 1e-12})
	solver := NewADMMSolver(g, ADMMOptions{MaxIter: 3000, AbsTol: 1e-10, RelTol: 1e-9})
	admm := solver.Solve(b, lambda, []int{3})
	// Compare objectives, which is the right notion of agreement for two
	// different optimizers.
	obj := func(c []float64) float64 {
		fit := mat.MulVec(x, c)
		r := mat.Sub(y, fit, nil)
		return 0.5*mat.Dot(r, r) + lambda*mat.Norm1(c)
	}
	oc, oa := obj(cd), obj(admm)
	if math.Abs(oc-oa) > 1e-5*(1+oc) {
		t.Fatalf("objectives differ: CD %v vs ADMM %v", oc, oa)
	}
	if admm[3] != 0 {
		t.Fatalf("banned coefficient escaped: %v", admm[3])
	}
}

func TestADMMSolverReusableAcrossPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	x := mat.RandomGaussian(15, 20, rng)
	mat.NormalizeColumns(x)
	g := mat.Gram(x)
	solver := NewADMMSolver(g, ADMMOptions{})
	for i := 0; i < 5; i++ {
		b := g.Row(i)
		c := solver.Solve(b, 0.05, []int{i})
		if c[i] != 0 {
			t.Fatalf("point %d: self coefficient %v", i, c[i])
		}
	}
}

func TestADMMPropertyKKT(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, cols := 10, 18
		x := mat.RandomGaussian(n, cols, r)
		mat.NormalizeColumns(x)
		y := mat.RandomUnitVector(n, r)
		lambda := 0.1 + 0.2*r.Float64()
		g := mat.Gram(x)
		b := mat.MulTVec(x, y)
		c := NewADMMSolver(g, ADMMOptions{MaxIter: 2000, AbsTol: 1e-9, RelTol: 1e-8}).Solve(b, lambda, nil)
		fit := mat.MulVec(x, c)
		res := mat.Sub(y, fit, nil)
		corr := mat.MulTVec(x, res)
		for j, cj := range c {
			if cj == 0 {
				if math.Abs(corr[j]) > lambda+1e-3 {
					return false
				}
			} else if math.Abs(corr[j]-lambda*signOf(cj)) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func signOf(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

func TestBasisPursuitExactRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(213))
	// y is an exact sparse combination; BP must reproduce it exactly
	// (noiseless SSC, Eq. 1 of the paper).
	n, cols := 12, 30
	x := mat.RandomGaussian(n, cols, rng)
	mat.NormalizeColumns(x)
	y := make([]float64, n)
	mat.Axpy(1.2, x.Col(4, nil), y)
	mat.Axpy(-0.7, x.Col(21, nil), y)
	c := BasisPursuit(x, y, nil, ADMMOptions{MaxIter: 4000, AbsTol: 1e-9})
	// Constraint satisfied.
	fit := mat.MulVec(x, c)
	if d := mat.Norm2(mat.Sub(y, fit, nil)); d > 1e-5 {
		t.Fatalf("constraint violated: ‖Xc−y‖ = %v", d)
	}
	// ℓ1 norm no larger than the planted solution's.
	if mat.Norm1(c) > 1.2+0.7+1e-3 {
		t.Fatalf("BP ℓ1 %v exceeds planted %v", mat.Norm1(c), 1.9)
	}
}

func TestBasisPursuitBanned(t *testing.T) {
	rng := rand.New(rand.NewSource(214))
	n, cols := 10, 25
	x := mat.RandomGaussian(n, cols, rng)
	mat.NormalizeColumns(x)
	y := x.Col(6, nil)
	c := BasisPursuit(x, y, []int{6}, ADMMOptions{MaxIter: 4000})
	if c[6] != 0 {
		t.Fatalf("banned coefficient selected: %v", c[6])
	}
	fit := mat.MulVec(x, c)
	if d := mat.Norm2(mat.Sub(y, fit, nil)); d > 1e-4 {
		t.Fatalf("constraint violated with ban: %v", d)
	}
}

func TestCholeskyFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(215))
	g := mat.RandomGaussian(8, 8, rng)
	a := mat.MulTA(g, g)
	for i := 0; i < 8; i++ {
		a.Add(i, i, 1) // well-conditioned SPD
	}
	l := cholesky(a)
	rec := mat.MulBT(l, l)
	if !mat.Equalish(rec, a, 1e-9*(1+a.MaxAbs())) {
		t.Fatal("L·Lᵀ does not reconstruct A")
	}
	// Solve against a known vector.
	want := []float64{1, -2, 3, 0, 1, 2, -1, 0.5}
	b := mat.MulVec(a, want)
	x := make([]float64, 8)
	cholSolve(l, b, x)
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Fatalf("cholSolve x[%d] = %v want %v", i, x[i], want[i])
		}
	}
}
