package lasso

import (
	"math"

	"fedsc/internal/mat"
)

// ADMMOptions controls the ADMM solvers.
type ADMMOptions struct {
	// Rho is the augmented-Lagrangian penalty (default 1).
	Rho float64
	// MaxIter bounds ADMM iterations (default 400).
	MaxIter int
	// AbsTol and RelTol are the standard primal/dual stopping tolerances
	// of Boyd et al. (defaults 1e-6 and 1e-5).
	AbsTol, RelTol float64
}

func (o ADMMOptions) withDefaults() ADMMOptions {
	if o.Rho <= 0 {
		o.Rho = 1
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 400
	}
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-6
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-5
	}
	return o
}

// ADMMSolver solves Lasso problems min ½‖y−Xc‖² + λ‖c‖₁ over one fixed
// dictionary by the Alternating Direction Method of Multipliers — the
// solver the original SSC release uses (the paper swaps it for SPAMS; we
// provide both, see the SSC solver ablation). The factorization of
// (G + ρI) is cached, so solving for all N columns of a dataset costs
// one Cholesky plus cheap triangular solves per point.
type ADMMSolver struct {
	opts ADMMOptions
	g    *mat.Dense // Gram matrix XᵀX
	chol *mat.Dense // Cholesky factor of G + ρI (lower triangular)
	n    int
}

// NewADMMSolver prepares an ADMM solver for the dictionary Gram matrix g.
func NewADMMSolver(g *mat.Dense, opts ADMMOptions) *ADMMSolver {
	opts = opts.withDefaults()
	n := g.Rows()
	shifted := g.Clone()
	for i := 0; i < n; i++ {
		shifted.Add(i, i, opts.Rho)
	}
	return &ADMMSolver{opts: opts, g: g, chol: cholesky(shifted), n: n}
}

// Solve minimizes ½‖y−Xc‖² + λ‖c‖₁ given b = Xᵀy, with banned
// coefficients pinned to zero.
func (s *ADMMSolver) Solve(b []float64, lambda float64, banned []int) []float64 {
	o := s.opts
	n := s.n
	isBanned := make([]bool, n)
	for _, i := range banned {
		isBanned[i] = true
	}
	c := make([]float64, n) // primal (smooth block)
	z := make([]float64, n) // primal (ℓ1 block)
	u := make([]float64, n) // scaled dual
	rhs := make([]float64, n)
	zOld := make([]float64, n)
	for it := 0; it < o.MaxIter; it++ {
		// c-update: (G + ρI) c = b + ρ(z − u).
		for i := 0; i < n; i++ {
			rhs[i] = b[i] + o.Rho*(z[i]-u[i])
		}
		cholSolve(s.chol, rhs, c)
		// z-update: soft threshold, with banned entries forced to zero.
		copy(zOld, z)
		for i := 0; i < n; i++ {
			if isBanned[i] {
				z[i] = 0
				continue
			}
			z[i] = SoftThreshold(c[i]+u[i], lambda/o.Rho)
		}
		// u-update and convergence check.
		rNorm, sNorm := 0.0, 0.0
		cNorm, zNorm, uNorm := 0.0, 0.0, 0.0
		for i := 0; i < n; i++ {
			r := c[i] - z[i]
			u[i] += r
			rNorm += r * r
			d := z[i] - zOld[i]
			sNorm += d * d
			cNorm += c[i] * c[i]
			zNorm += z[i] * z[i]
			uNorm += u[i] * u[i]
		}
		rNorm = math.Sqrt(rNorm)
		sNorm = o.Rho * math.Sqrt(sNorm)
		epsPri := math.Sqrt(float64(n))*o.AbsTol + o.RelTol*math.Max(math.Sqrt(cNorm), math.Sqrt(zNorm))
		epsDual := math.Sqrt(float64(n))*o.AbsTol + o.RelTol*o.Rho*math.Sqrt(uNorm)
		if rNorm < epsPri && sNorm < epsDual {
			break
		}
	}
	return z
}

// BasisPursuit solves the noiseless SSC subproblem (Eq. 1 of the paper):
//
//	min ‖c‖₁  s.t.  Xc = y
//
// by ADMM on the equality-constrained form. x is the dictionary (columns
// unit-norm), banned indices are pinned to zero. It requires
// rows(X) <= cols(X) with XXᵀ invertible (the usual SSC regime where the
// dictionary is overcomplete for the subspace).
func BasisPursuit(x *mat.Dense, y []float64, banned []int, opts ADMMOptions) []float64 {
	opts = opts.withDefaults()
	m, n := x.Dims()
	isBanned := make([]bool, n)
	for _, i := range banned {
		isBanned[i] = true
	}
	// Projection onto {c : Xc = y}: c - Xᵀ(XXᵀ)⁻¹(Xc - y).
	xxt := mat.MulBT(x, x)
	for i := 0; i < m; i++ {
		xxt.Add(i, i, 1e-10) // regularize near-singular XXᵀ
	}
	chol := cholesky(xxt)
	c := make([]float64, n)
	z := make([]float64, n)
	u := make([]float64, n)
	tmp := make([]float64, m)
	for it := 0; it < opts.MaxIter; it++ {
		// c-update: project (z - u) onto the constraint set.
		for i := 0; i < n; i++ {
			c[i] = z[i] - u[i]
		}
		res := mat.MulVec(x, c)
		for i := 0; i < m; i++ {
			res[i] -= y[i]
		}
		cholSolve(chol, res, tmp)
		corr := mat.MulTVec(x, tmp)
		for i := 0; i < n; i++ {
			c[i] -= corr[i]
		}
		// z-update: soft threshold with weight 1/ρ.
		zMove, consensus := 0.0, 0.0
		for i := 0; i < n; i++ {
			var nz float64
			if !isBanned[i] {
				nz = SoftThreshold(c[i]+u[i], 1/opts.Rho)
			}
			if d := math.Abs(nz - z[i]); d > zMove {
				zMove = d
			}
			z[i] = nz
			r := c[i] - z[i]
			u[i] += r
			if a := math.Abs(r); a > consensus {
				consensus = a
			}
		}
		// Converged only when the two primal blocks agree (c is feasible
		// by construction, so c ≈ z means z is near-feasible too) and z
		// has stopped moving.
		if zMove < opts.AbsTol && consensus < opts.AbsTol*10 {
			break
		}
	}
	return z
}

// cholesky returns the lower-triangular Cholesky factor of the symmetric
// positive-definite matrix a.
func cholesky(a *mat.Dense) *mat.Dense {
	n := a.Rows()
	l := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					// Numerical safeguard for nearly singular matrices.
					s = 1e-12
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l
}

// cholSolve solves (L Lᵀ) x = b given the lower Cholesky factor.
func cholSolve(l *mat.Dense, b, x []float64) {
	n := l.Rows()
	// Forward substitution L w = b (w stored in x).
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	// Back substitution Lᵀ x = w.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
}
