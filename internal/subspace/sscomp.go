package subspace

import (
	"math/rand"

	"fedsc/internal/lasso"
	"fedsc/internal/mat"
)

// OMPOptions configures SSC-OMP.
type OMPOptions struct {
	// KMax bounds the self-expression support per point (default 10,
	// which upper-bounds the subspace dimensions in the experiments).
	KMax int
	// ResidualTol stops the pursuit early once the residual norm falls
	// below it (default 1e-6).
	ResidualTol float64
	// DropTol discards small affinity entries (default 1e-8).
	DropTol float64
}

func (o OMPOptions) withDefaults() OMPOptions {
	if o.KMax <= 0 {
		o.KMax = 10
	}
	if o.ResidualTol <= 0 {
		o.ResidualTol = 1e-6
	}
	if o.DropTol <= 0 {
		o.DropTol = 1e-8
	}
	return o
}

// SSCOMP is scalable sparse subspace clustering by orthogonal matching
// pursuit (You, Robinson & Vidal 2016): each point is greedily expressed
// over at most KMax other points, and the resulting sparse coefficient
// matrix feeds the usual affinity + spectral pipeline.
func SSCOMP(x *mat.Dense, k int, rng *rand.Rand, opts OMPOptions) Result {
	opts = opts.withDefaults()
	xn := normalized(x)
	_, n := xn.Dims()
	coef := make([][]float64, n)
	mat.Parallel(n, n*n*32, func(lo, hi int) {
		col := make([]float64, xn.Rows())
		for i := lo; i < hi; i++ {
			xn.Col(i, col)
			coef[i] = lasso.OMP(xn, col, opts.KMax, opts.ResidualTol, []int{i})
		}
	})
	w := affinityFromCoef(coef, opts.DropTol)
	return Result{Labels: spectralLabels(w, k, rng), Affinity: w}
}
