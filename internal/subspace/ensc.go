package subspace

import (
	"math"
	"math/rand"

	"fedsc/internal/lasso"
	"fedsc/internal/mat"
)

// EnSCOptions configures elastic-net subspace clustering.
type EnSCOptions struct {
	// Alpha sets the ℓ1 weight from the correlation rule
	// λ₁ᵢ = maxⱼ≠ᵢ|xⱼᵀxᵢ|/Alpha (default 50, as for SSC).
	Alpha float64
	// L2Ratio sets λ₂ = L2Ratio·λ₁, trading sparsity for connectivity;
	// the elastic-net ridge term is what distinguishes EnSC from SSC
	// (default 1.0).
	L2Ratio float64
	// DropTol discards small affinity entries (default 1e-8).
	DropTol float64
	// ActiveSet tunes the oracle-based solver.
	ActiveSet lasso.ActiveSetOptions
}

func (o EnSCOptions) withDefaults() EnSCOptions {
	if o.Alpha <= 0 {
		o.Alpha = 50
	}
	if o.L2Ratio <= 0 {
		o.L2Ratio = 1.0
	}
	if o.DropTol <= 0 {
		o.DropTol = 1e-8
	}
	return o
}

// EnSC is elastic-net subspace clustering with the oracle-based
// active-set solver (You et al., CVPR 2016). The active-set strategy
// never materializes the full Gram matrix, which is what lets EnSC scale
// past plain SSC.
func EnSC(x *mat.Dense, k int, rng *rand.Rand, opts EnSCOptions) Result {
	opts = opts.withDefaults()
	xn := normalized(x)
	_, n := xn.Dims()
	coef := make([][]float64, n)
	mat.Parallel(n, n*n*48, func(lo, hi int) {
		col := make([]float64, xn.Rows())
		for i := lo; i < hi; i++ {
			xn.Col(i, col)
			b := mat.MulTVec(xn, col)
			mu := 0.0
			for j, v := range b {
				if j == i {
					continue
				}
				if a := math.Abs(v); a > mu {
					mu = a
				}
			}
			if mu == 0 { //fedsc:allow floatcmp max |correlation| is exactly zero iff the point is exactly orthogonal to all others
				coef[i] = make([]float64, n)
				continue
			}
			l1 := mu / opts.Alpha
			coef[i] = lasso.ElasticNetActiveSet(xn, col, l1, opts.L2Ratio*l1, []int{i}, opts.ActiveSet)
		}
	})
	w := affinityFromCoef(coef, opts.DropTol)
	return Result{Labels: spectralLabels(w, k, rng), Affinity: w}
}
