package subspace

import (
	"math/rand"
	"testing"

	"fedsc/internal/mat"
	"fedsc/internal/metrics"
	"fedsc/internal/synth"
)

// testData draws the paper's synthetic model: L subspaces of dimension d
// in R^n with perSub unit-norm points each.
func testData(n, d, l, perSub int, seed int64) (synth.Dataset, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	s := synth.RandomSubspaces(n, d, l, rng)
	return s.Sample(perSub, rng), rng
}

func TestSSCRecoversCleanSubspaces(t *testing.T) {
	ds, rng := testData(20, 3, 4, 25, 100)
	res := SSC(ds.X, 4, rng, SSCOptions{})
	if acc := metrics.Accuracy(ds.Labels, res.Labels); acc < 95 {
		t.Fatalf("SSC accuracy %.1f%% < 95%%", acc)
	}
}

func TestSSCAffinitySatisfiesSEPOnWellSeparatedData(t *testing.T) {
	// Low-dimensional subspaces in a roomy ambient space: SSC theory
	// predicts no false connections.
	ds, rng := testData(30, 2, 3, 20, 101)
	res := SSC(ds.X, 3, rng, SSCOptions{})
	if !metrics.SEPHolds(res.Affinity, ds.Labels) {
		t.Fatal("SSC affinity has false connections on well-separated data")
	}
}

func TestSSCCoefficientsSelfExcluded(t *testing.T) {
	ds, _ := testData(15, 3, 2, 10, 102)
	coef := SSCCoefficients(ds.X, SSCOptions{})
	for i, c := range coef {
		if c[i] != 0 {
			t.Fatalf("c[%d][%d] = %v, self-expression must exclude self", i, i, c[i])
		}
	}
}

func TestSSCNoisyData(t *testing.T) {
	ds, rng := testData(20, 3, 3, 30, 103)
	noisy := ds.AddNoise(0.1, rng)
	res := SSC(noisy.X, 3, rng, SSCOptions{})
	if acc := metrics.Accuracy(noisy.Labels, res.Labels); acc < 85 {
		t.Fatalf("SSC accuracy on noisy data %.1f%% < 85%%", acc)
	}
}

func TestSSCADMMSolverMatchesCD(t *testing.T) {
	ds, rng := testData(20, 3, 3, 20, 113)
	cd := SSC(ds.X, 3, rng, SSCOptions{Which: SolverCD})
	admm := SSC(ds.X, 3, rng, SSCOptions{Which: SolverADMM})
	accCD := metrics.Accuracy(ds.Labels, cd.Labels)
	accADMM := metrics.Accuracy(ds.Labels, admm.Labels)
	if accCD < 95 || accADMM < 95 {
		t.Fatalf("solver accuracies CD=%.1f ADMM=%.1f", accCD, accADMM)
	}
}

func TestSSCBasisPursuitNoiseless(t *testing.T) {
	// Eq. (1): exact-constraint basis pursuit on clean data.
	ds, rng := testData(15, 2, 3, 15, 114)
	res := SSC(ds.X, 3, rng, SSCOptions{Which: SolverBasisPursuit})
	if acc := metrics.Accuracy(ds.Labels, res.Labels); acc < 95 {
		t.Fatalf("basis-pursuit SSC accuracy %.1f%%", acc)
	}
}

func TestTSCRecoversCleanSubspaces(t *testing.T) {
	ds, rng := testData(20, 3, 4, 40, 104)
	res := TSC(ds.X, 4, rng, TSCOptions{Q: 5})
	if acc := metrics.Accuracy(ds.Labels, res.Labels); acc < 90 {
		t.Fatalf("TSC accuracy %.1f%% < 90%%", acc)
	}
}

func TestTSCDefaultQ(t *testing.T) {
	ds, rng := testData(20, 3, 3, 30, 105)
	res := TSC(ds.X, 3, rng, TSCOptions{})
	if len(res.Labels) != ds.N() {
		t.Fatal("TSC returned wrong label count")
	}
}

func TestTSCAffinityDegree(t *testing.T) {
	ds, _ := testData(10, 2, 2, 15, 106)
	w := TSCAffinity(ds.X, 4)
	// Every vertex has at least q neighbors (symmetric growth can add more).
	for i := 0; i < ds.N(); i++ {
		deg := 0
		w.Row(i, func(j int, v float64) { deg++ })
		if deg < 4 {
			t.Fatalf("vertex %d has degree %d < q=4", i, deg)
		}
	}
}

func TestSSCOMPRecoversCleanSubspaces(t *testing.T) {
	ds, rng := testData(20, 3, 4, 25, 107)
	res := SSCOMP(ds.X, 4, rng, OMPOptions{KMax: 3})
	if acc := metrics.Accuracy(ds.Labels, res.Labels); acc < 90 {
		t.Fatalf("SSC-OMP accuracy %.1f%% < 90%%", acc)
	}
}

func TestEnSCRecoversCleanSubspaces(t *testing.T) {
	ds, rng := testData(20, 3, 4, 25, 108)
	res := EnSC(ds.X, 4, rng, EnSCOptions{})
	if acc := metrics.Accuracy(ds.Labels, res.Labels); acc < 90 {
		t.Fatalf("EnSC accuracy %.1f%% < 90%%", acc)
	}
}

func TestNSNRecoversCleanSubspaces(t *testing.T) {
	ds, rng := testData(20, 3, 4, 25, 109)
	res := NSN(ds.X, 4, rng, NSNOptions{MaxDim: 3, Neighbors: 6})
	if acc := metrics.Accuracy(ds.Labels, res.Labels); acc < 85 {
		t.Fatalf("NSN accuracy %.1f%% < 85%%", acc)
	}
}

func TestClusterDispatch(t *testing.T) {
	ds, rng := testData(15, 2, 2, 12, 110)
	for _, m := range Methods() {
		res := Cluster(m, ds.X, 2, rng)
		if len(res.Labels) != ds.N() {
			t.Fatalf("%s: wrong label count", m)
		}
		if res.Affinity == nil {
			t.Fatalf("%s: nil affinity", m)
		}
	}
}

func TestClusterDispatchUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown method")
		}
	}()
	rng := rand.New(rand.NewSource(111))
	Cluster(Method("nope"), mat.NewDense(3, 3), 2, rng)
}

func TestNormalizedIsNoopForUnitColumns(t *testing.T) {
	ds, _ := testData(10, 2, 2, 5, 112)
	if got := normalized(ds.X); got != ds.X {
		t.Fatal("normalized should return the input when already unit-norm")
	}
	scaled := ds.X.Clone()
	scaled.Scale(2)
	if got := normalized(scaled); got == scaled {
		t.Fatal("normalized must copy when columns are not unit-norm")
	}
}

func TestAffinityFromCoefSymmetric(t *testing.T) {
	coef := [][]float64{
		{0, 0.5, 0},
		{-0.2, 0, 0},
		{0, 1e-12, 0}, // below drop tolerance
	}
	w := affinityFromCoef(coef, 1e-8)
	if w.At(0, 1) != w.At(1, 0) {
		t.Fatal("affinity not symmetric")
	}
	if w.At(0, 1) != 0.7 { // |0.5| + |-0.2|
		t.Fatalf("W(0,1) = %v want 0.7", w.At(0, 1))
	}
	if w.At(2, 1) != 0 {
		t.Fatal("sub-tolerance entry should be dropped")
	}
}
