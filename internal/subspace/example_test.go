package subspace_test

import (
	"fmt"
	"math/rand"

	"fedsc/internal/metrics"
	"fedsc/internal/subspace"
	"fedsc/internal/synth"
)

// ExampleSSC clusters points drawn from two random planes in R^20.
func ExampleSSC() {
	rng := rand.New(rand.NewSource(1))
	planes := synth.RandomSubspaces(20, 2, 2, rng)
	ds := planes.Sample(25, rng)
	res := subspace.SSC(ds.X, 2, rng, subspace.SSCOptions{})
	fmt.Printf("accuracy %.0f%%\n", metrics.Accuracy(ds.Labels, res.Labels))
	// Output: accuracy 100%
}

// ExampleCluster dispatches by method name, as the CLI does.
func ExampleCluster() {
	rng := rand.New(rand.NewSource(2))
	planes := synth.RandomSubspaces(18, 2, 2, rng)
	ds := planes.Sample(20, rng)
	for _, m := range []subspace.Method{subspace.MethodEnSC, subspace.MethodNSN} {
		res := subspace.Cluster(m, ds.X, 2, rng)
		fmt.Printf("%s: %.0f%%\n", m, metrics.Accuracy(ds.Labels, res.Labels))
	}
	// Output:
	// ensc: 100%
	// nsn: 100%
}
