package subspace

import (
	"math"
	"math/rand"
	"sort"

	"fedsc/internal/mat"
	"fedsc/internal/sparse"
)

// TSCOptions configures thresholding-based subspace clustering.
type TSCOptions struct {
	// Q is the number of nearest neighbors (in spherical distance) each
	// point connects to. Zero applies the paper's centralized rule
	// q = max(3, ⌈N/(100·k)⌉).
	Q int
}

// TSCAffinity builds the TSC affinity graph (Heckel & Bölcskei 2015):
// each point is connected to its q nearest neighbors under the spherical
// distance, with edge weight exp(−2·arccos(|⟨xᵢ,xⱼ⟩|)), then the graph is
// symmetrized by addition.
func TSCAffinity(x *mat.Dense, q int) *sparse.CSR {
	xn := normalized(x)
	_, n := xn.Dims()
	if q >= n {
		q = n - 1
	}
	if q < 1 {
		q = 1
	}
	g := mat.Gram(xn)
	type edge struct {
		j int
		a float64 // |<xi,xj>|
	}
	var entries []sparse.Coord
	cand := make([]edge, 0, n)
	for i := 0; i < n; i++ {
		cand = cand[:0]
		row := g.Row(i)
		for j, v := range row {
			if j == i {
				continue
			}
			cand = append(cand, edge{j: j, a: math.Abs(v)})
		}
		sort.Slice(cand, func(a, b int) bool { return cand[a].a > cand[b].a })
		kq := q
		if kq > len(cand) {
			kq = len(cand)
		}
		for _, e := range cand[:kq] {
			c := e.a
			if c > 1 {
				c = 1
			}
			w := math.Exp(-2 * math.Acos(c))
			entries = append(entries, sparse.Coord{Row: i, Col: e.j, Val: w})
			entries = append(entries, sparse.Coord{Row: e.j, Col: i, Val: w})
		}
	}
	return sparse.NewCSR(n, n, entries)
}

// TSC is thresholding-based subspace clustering: q-nearest-neighbor
// spherical affinity followed by normalized spectral clustering into k
// groups.
func TSC(x *mat.Dense, k int, rng *rand.Rand, opts TSCOptions) Result {
	_, n := x.Dims()
	q := opts.Q
	if q <= 0 {
		// Centralized default from the paper's implementation notes.
		q = int(math.Ceil(float64(n) / (100 * float64(max(1, k)))))
		if q < 3 {
			q = 3
		}
	}
	w := TSCAffinity(x, q)
	return Result{Labels: spectralLabels(w, k, rng), Affinity: w}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
