package subspace

import (
	"math"
	"math/rand"

	"fedsc/internal/lasso"
	"fedsc/internal/mat"
)

// Solver selects the optimizer behind the SSC self-expression step.
type Solver string

// The three solvers for the SSC subproblem. The paper implements Eq. (2)
// with SPAMS (coordinate descent here plays that role) and cites ADMM as
// the alternative it replaced; Eq. (1) is the noiseless basis-pursuit
// variant.
const (
	SolverCD           Solver = "cd"   // coordinate descent (default)
	SolverADMM         Solver = "admm" // ADMM on the Lasso form
	SolverBasisPursuit Solver = "bp"   // noiseless: min ‖c‖₁ s.t. Xc = x
)

// SSCOptions configures sparse subspace clustering.
type SSCOptions struct {
	// Alpha sets the per-point ℓ1 weight λᵢ = maxⱼ≠ᵢ|xⱼᵀxᵢ|/Alpha
	// following the rule the paper adopts from Elhamifar & Vidal
	// (Prop. 1); Alpha > 1 guarantees a non-trivial solution. Default 50.
	Alpha float64
	// DropTol discards affinity entries with magnitude at or below it
	// (default 1e-8).
	DropTol float64
	// Which optimizer solves the self-expression problem (default
	// SolverCD). SolverBasisPursuit ignores Alpha: it solves the exact
	// Eq. (1) program and should only be used on noiseless data.
	Which Solver
	// Solver tunes the coordinate-descent Lasso (SolverCD).
	Solver lasso.Options
	// ADMM tunes the ADMM-based solvers (SolverADMM, SolverBasisPursuit).
	ADMM lasso.ADMMOptions
}

func (o SSCOptions) withDefaults() SSCOptions {
	if o.Alpha <= 0 {
		o.Alpha = 50
	}
	if o.DropTol <= 0 {
		o.DropTol = 1e-8
	}
	if o.Which == "" {
		o.Which = SolverCD
	}
	return o
}

// SSCCoefficients solves the Lasso self-expression problem (Eq. 2 of the
// paper) for every column of x and returns the coefficient rows (coef[i]
// is the representation of point i over the other points, with
// coef[i][i] = 0). One Gram matrix is shared across all N subproblems and
// the per-point solves run in parallel.
func SSCCoefficients(x *mat.Dense, opts SSCOptions) [][]float64 {
	opts = opts.withDefaults()
	xn := normalized(x)
	_, n := xn.Dims()
	g := mat.Gram(xn)
	coef := make([][]float64, n)
	var admm *lasso.ADMMSolver
	if opts.Which == SolverADMM {
		admm = lasso.NewADMMSolver(g, opts.ADMM)
	}
	mat.Parallel(n, n*n*64, func(lo, hi int) {
		col := make([]float64, xn.Rows())
		for i := lo; i < hi; i++ {
			if opts.Which == SolverBasisPursuit {
				xn.Col(i, col)
				coef[i] = lasso.BasisPursuit(xn, col, []int{i}, opts.ADMM)
				continue
			}
			b := g.Row(i) // Xᵀxᵢ is the i-th row of the Gram matrix
			mu := 0.0
			for j, v := range b {
				if j == i {
					continue
				}
				if a := math.Abs(v); a > mu {
					mu = a
				}
			}
			if mu == 0 { //fedsc:allow floatcmp max |correlation| is exactly zero iff the point is exactly orthogonal to all others
				coef[i] = make([]float64, n)
				continue
			}
			lam := mu / opts.Alpha
			if opts.Which == SolverADMM {
				coef[i] = admm.Solve(b, lam, []int{i})
			} else {
				coef[i] = lasso.Gram(g, b, lam, 0, []int{i}, opts.Solver)
			}
		}
	})
	return coef
}

// SSC is sparse subspace clustering (Elhamifar & Vidal 2013): Lasso
// self-expression, affinity W = |C| + |C|ᵀ, normalized spectral
// clustering into k groups.
func SSC(x *mat.Dense, k int, rng *rand.Rand, opts SSCOptions) Result {
	opts = opts.withDefaults()
	coef := SSCCoefficients(x, opts)
	w := affinityFromCoef(coef, opts.DropTol)
	return Result{Labels: spectralLabels(w, k, rng), Affinity: w}
}
