// Package subspace implements the centralized subspace-clustering
// algorithms evaluated in the Fed-SC paper: SSC (sparse subspace
// clustering via Lasso self-expression), SSC-OMP, EnSC (elastic net with
// an active-set oracle), TSC (thresholded spherical distances) and NSN
// (greedy nearest-subspace-neighbor). Each algorithm builds a sparse
// affinity graph over the data points and segments it with normalized
// spectral clustering.
//
// Data conventions: a dataset is an n x N matrix whose COLUMNS are the
// data points; all algorithms assume (and internally enforce) unit ℓ2
// column norms, matching the paper's setup.
package subspace

import (
	"math"
	"math/rand"

	"fedsc/internal/mat"
	"fedsc/internal/sparse"
	"fedsc/internal/spectral"
)

// Result is the outcome of a subspace-clustering run.
type Result struct {
	// Labels assigns each data point (column) a cluster in [0, k).
	Labels []int
	// Affinity is the symmetric affinity graph the labels were derived
	// from; metrics such as graph connectivity are computed on it.
	Affinity *sparse.CSR
}

// Method identifies one of the implemented algorithms.
type Method string

// The centralized algorithms reproduced from the paper's evaluation.
const (
	MethodSSC    Method = "ssc"
	MethodSSCOMP Method = "sscomp"
	MethodEnSC   Method = "ensc"
	MethodTSC    Method = "tsc"
	MethodNSN    Method = "nsn"
)

// Methods lists all implemented centralized algorithms in evaluation order.
func Methods() []Method {
	return []Method{MethodSSC, MethodSSCOMP, MethodEnSC, MethodTSC, MethodNSN}
}

// Cluster runs the chosen method on x (columns = points) targeting k
// clusters, using default options.
func Cluster(method Method, x *mat.Dense, k int, rng *rand.Rand) Result {
	switch method {
	case MethodSSC:
		return SSC(x, k, rng, SSCOptions{})
	case MethodSSCOMP:
		return SSCOMP(x, k, rng, OMPOptions{})
	case MethodEnSC:
		return EnSC(x, k, rng, EnSCOptions{})
	case MethodTSC:
		return TSC(x, k, rng, TSCOptions{})
	case MethodNSN:
		return NSN(x, k, rng, NSNOptions{})
	default:
		panic("subspace: unknown method " + string(method))
	}
}

// normalized returns x with unit-norm columns, copying only when needed.
func normalized(x *mat.Dense) *mat.Dense {
	norms := mat.ColNorms(x)
	for _, v := range norms {
		if math.Abs(v-1) > 1e-9 && v != 0 { //fedsc:allow floatcmp zero-norm columns cannot be normalized and are passed through
			c := x.Clone()
			mat.NormalizeColumns(c)
			return c
		}
	}
	return x
}

// AffinityFromCoefficients assembles the SSC-style affinity W = |C| + |C|ᵀ
// from per-point self-expression vectors, dropping entries with magnitude
// at or below dropTol. It is exported for the Fed-SC local-clustering
// phase, which needs the affinity graph itself (for the eigengap
// estimate) and not just the labels.
func AffinityFromCoefficients(coef [][]float64, dropTol float64) *sparse.CSR {
	return affinityFromCoef(coef, dropTol)
}

// affinityFromCoef assembles the SSC-style affinity W = |C| + |C|ᵀ from
// per-point coefficient vectors, dropping entries below dropTol to keep
// the graph sparse. coef[i] is the self-expression for point i.
func affinityFromCoef(coef [][]float64, dropTol float64) *sparse.CSR {
	n := len(coef)
	var entries []sparse.Coord
	for i, c := range coef {
		for j, v := range c {
			a := math.Abs(v)
			if a <= dropTol || i == j {
				continue
			}
			entries = append(entries, sparse.Coord{Row: i, Col: j, Val: a})
			entries = append(entries, sparse.Coord{Row: j, Col: i, Val: a})
		}
	}
	return sparse.NewCSR(n, n, entries)
}

// spectralLabels segments an affinity graph into k clusters.
func spectralLabels(w *sparse.CSR, k int, rng *rand.Rand) []int {
	return spectral.Cluster(w, k, rng)
}
