package subspace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedsc/internal/metrics"
	"fedsc/internal/synth"
)

// TestAffinityInvariants property-checks every method's affinity graph
// over random union-of-subspace data: symmetry, non-negative weights, an
// empty diagonal, and one label per point within [0, k).
func TestAffinityInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(240))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := 2 + r.Intn(3)
		d := 2 + r.Intn(2)
		n := 12 + r.Intn(8)
		per := d + 3 + r.Intn(8)
		s := synth.RandomSubspaces(n, d, l, r)
		ds := s.Sample(per, r)
		for _, m := range Methods() {
			res := Cluster(m, ds.X, l, r)
			if len(res.Labels) != ds.N() {
				return false
			}
			for _, lab := range res.Labels {
				if lab < 0 || lab >= l {
					return false
				}
			}
			rows, cols := res.Affinity.Dims()
			if rows != ds.N() || cols != ds.N() {
				return false
			}
			for i := 0; i < rows; i++ {
				ok := true
				res.Affinity.Row(i, func(j int, v float64) {
					if v < 0 || i == j {
						ok = false
					}
					if math.Abs(res.Affinity.At(j, i)-v) > 1e-12 {
						ok = false
					}
				})
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestSSCCoefficientsReconstruct checks the self-expression quality: on
// clean data each point is reconstructed by its coefficients to small
// residual (SEP-grade solutions fit within the subspace).
func TestSSCCoefficientsReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(241))
	s := synth.RandomSubspaces(20, 3, 3, rng)
	ds := s.Sample(15, rng)
	coef := SSCCoefficients(ds.X, SSCOptions{})
	col := make([]float64, 20)
	for i := 0; i < ds.N(); i++ {
		ds.X.Col(i, col)
		fit := make([]float64, 20)
		for j, c := range coef[i] {
			if c == 0 {
				continue
			}
			other := ds.X.Col(j, nil)
			for r := range fit {
				fit[r] += c * other[r]
			}
		}
		res := 0.0
		for r := range col {
			dlt := col[r] - fit[r]
			res += dlt * dlt
		}
		if math.Sqrt(res) > 0.2 {
			t.Fatalf("point %d residual %.3f too large", i, math.Sqrt(res))
		}
	}
}

// TestMethodsAccuracyOnEasyData: on trivially separated subspaces every
// method should do well — except that SSC-OMP's ultra-sparse graphs are
// prone to the over-segmentation the paper discusses in §IV-E ("graph
// connectivity issue"), which caps its accuracy even on easy data and is
// why Table III reports CONN = 0.000 for it.
func TestMethodsAccuracyOnEasyData(t *testing.T) {
	rng := rand.New(rand.NewSource(242))
	s := synth.RandomSubspaces(30, 2, 2, rng)
	ds := s.Sample(20, rng)
	thresholds := map[Method]float64{
		MethodSSC:    95,
		MethodSSCOMP: 70, // connectivity-limited (see above)
		MethodEnSC:   95,
		MethodTSC:    95,
		MethodNSN:    95,
	}
	for _, m := range Methods() {
		res := Cluster(m, ds.X, 2, rng)
		if acc := metrics.Accuracy(ds.Labels, res.Labels); acc < thresholds[m] {
			t.Fatalf("%s accuracy %.1f%% below %.0f%%", m, acc, thresholds[m])
		}
	}
}
