package subspace

import (
	"math/rand"

	"fedsc/internal/mat"
	"fedsc/internal/sparse"
)

// NSNOptions configures nearest-subspace-neighbor clustering.
type NSNOptions struct {
	// MaxDim bounds the dimension of the greedily grown subspace
	// (default 9, an upper bound for the experiments' subspace dims).
	MaxDim int
	// Neighbors is the number of neighbors collected per point
	// (default 2·MaxDim).
	Neighbors int
}

func (o NSNOptions) withDefaults() NSNOptions {
	if o.MaxDim <= 0 {
		o.MaxDim = 9
	}
	if o.Neighbors <= 0 {
		o.Neighbors = 2 * o.MaxDim
	}
	return o
}

// NSN is greedy nearest-subspace-neighbor clustering (Park, Caramanis &
// Sanghavi 2014). For every point it greedily grows a subspace: starting
// from the point itself, it repeatedly admits the point with the largest
// projection onto the current subspace and, while below MaxDim, extends
// the subspace with the admitted point's orthogonal component. Points
// sharing neighborhoods are connected in the affinity graph, which is
// then segmented spectrally.
//
// The projection energies ‖Bᵀxⱼ‖² are maintained incrementally: when the
// basis grows by one direction p, every candidate's energy increases by
// (pᵀxⱼ)², so one neighbor step costs O(N·n) instead of O(N·n·dim).
func NSN(x *mat.Dense, k int, rng *rand.Rand, opts NSNOptions) Result {
	opts = opts.withDefaults()
	xn := normalized(x)
	n, cols := xn.Dims()
	neighbors := opts.Neighbors
	if neighbors > cols-1 {
		neighbors = cols - 1
	}
	var entries []sparse.Coord
	energy := make([]float64, cols) // ‖Bᵀxⱼ‖² for the current point's basis
	dir := make([]float64, n)       // newest basis direction
	basis := mat.NewDense(n, opts.MaxDim)
	proj := make([]float64, opts.MaxDim)
	selected := make([]bool, cols)
	for i := 0; i < cols; i++ {
		for j := range selected {
			selected[j] = false
		}
		selected[i] = true
		// Seed the subspace with the point itself.
		xn.Col(i, dir)
		basis.SetCol(0, dir)
		dim := 1
		// energy[j] = (x_iᵀ x_j)².
		addDirectionEnergy(xn, dir, energy, true)
		for picked := 0; picked < neighbors; picked++ {
			best, bestE := -1, -1.0
			for j := 0; j < cols; j++ {
				if selected[j] {
					continue
				}
				if energy[j] > bestE {
					best, bestE = j, energy[j]
				}
			}
			if best < 0 {
				break
			}
			selected[best] = true
			entries = append(entries,
				sparse.Coord{Row: i, Col: best, Val: 1},
				sparse.Coord{Row: best, Col: i, Val: 1})
			if dim < opts.MaxDim {
				// Orthogonal component of the admitted point extends the
				// basis; candidates' energies gain its contribution.
				xn.Col(best, dir)
				for d := 0; d < dim; d++ {
					p := basis.ColAt(d)
					s := 0.0
					for r := 0; r < n; r++ {
						s += p.At(r) * dir[r]
					}
					proj[d] = s
				}
				for d := 0; d < dim; d++ {
					p := basis.ColAt(d)
					for r := 0; r < n; r++ {
						dir[r] -= proj[d] * p.At(r)
					}
				}
				if mat.Normalize(dir) > 1e-8 {
					basis.SetCol(dim, dir)
					dim++
					addDirectionEnergy(xn, dir, energy, false)
				}
			}
		}
	}
	w := sparse.NewCSR(cols, cols, entries)
	return Result{Labels: spectralLabels(w, k, rng), Affinity: w}
}

// addDirectionEnergy adds (pᵀxⱼ)² to every candidate's energy (resetting
// first when reset is true).
func addDirectionEnergy(xn *mat.Dense, p []float64, energy []float64, reset bool) {
	if reset {
		for j := range energy {
			energy[j] = 0
		}
	}
	dots := mat.MulTVec(xn, p)
	for j, s := range dots {
		energy[j] += s * s
	}
}
