// Package privacy implements the privacy-preserving upload mechanisms
// Remark 2 of the paper sketches and its conclusion names as future work:
// (ε, δ)-differentially-private release of the per-cluster samples via
// the Gaussian mechanism, and uniform quantization of uploads (the
// paper's communication model assumes q-bit quantized floats — here the
// quantizer is actually applied, so its accuracy cost can be measured).
//
// The DP threat model: the released quantity per local cluster is one
// unit-norm vector θ ∈ Rⁿ. Changing any single underlying data point can
// change θ by at most ‖θ − θ'‖₂ ≤ 2 (both lie on the unit sphere), so
// the ℓ2 sensitivity is bounded by 2 and the classical Gaussian
// mechanism applies. Tighter per-dataset sensitivities can be plugged in
// via Params.Sensitivity.
package privacy

import (
	"fmt"
	"math"
	"math/rand"

	"fedsc/internal/mat"
)

// Params configures the Gaussian mechanism.
type Params struct {
	// Epsilon is the privacy budget ε per released sample (must be > 0).
	Epsilon float64
	// Delta is the failure probability δ (must be in (0, 1)).
	Delta float64
	// Sensitivity is the ℓ2 sensitivity of one released sample; zero
	// defaults to 2, the diameter of the unit sphere.
	Sensitivity float64
}

// Validate reports whether the parameters define a usable mechanism.
func (p Params) Validate() error {
	if p.Epsilon <= 0 {
		return fmt.Errorf("privacy: epsilon must be positive, got %v", p.Epsilon)
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		return fmt.Errorf("privacy: delta must be in (0,1), got %v", p.Delta)
	}
	if p.Sensitivity < 0 {
		return fmt.Errorf("privacy: negative sensitivity %v", p.Sensitivity)
	}
	return nil
}

// NoiseStd returns the per-coordinate standard deviation of the Gaussian
// mechanism: σ = Δ₂·√(2·ln(1.25/δ))/ε (Dwork & Roth, Thm. A.1). The
// classical bound needs ε ≤ 1; for larger ε it remains a valid (more
// conservative than necessary) mechanism.
func (p Params) NoiseStd() float64 {
	sens := p.Sensitivity
	if sens <= 0 {
		sens = 2
	}
	return sens * math.Sqrt(2*math.Log(1.25/p.Delta)) / p.Epsilon
}

// GaussianMechanism perturbs every column of samples in place with iid
// Gaussian noise calibrated to (ε, δ)-DP per sample and returns the
// noise std used. Columns are NOT renormalized: the release is the noisy
// vector itself (renormalizing would leak information about the noise
// realization and breaks the mechanism's guarantee).
func GaussianMechanism(samples *mat.Dense, p Params, rng *rand.Rand) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	std := p.NoiseStd()
	data := samples.Data()
	for i := range data {
		data[i] += std * rng.NormFloat64()
	}
	return std, nil
}

// Compose returns the (ε, δ) guarantee after k releases under basic
// (sequential) composition: (k·ε, k·δ). Each Fed-SC device releases
// r⁽ᶻ⁾ samples, so its per-round budget is Compose(params, r).
func Compose(p Params, k int) Params {
	return Params{
		Epsilon:     p.Epsilon * float64(k),
		Delta:       p.Delta * float64(k),
		Sensitivity: p.Sensitivity,
	}
}

// AdvancedCompose returns the ε' of the advanced composition theorem for
// k releases at (ε, δ) each, with slack deltaPrime:
// ε' = ε·√(2k·ln(1/δ')) + k·ε·(eᵉ − 1). Tighter than basic composition
// for many small releases.
func AdvancedCompose(p Params, k int, deltaPrime float64) float64 {
	return p.Epsilon*math.Sqrt(2*float64(k)*math.Log(1/deltaPrime)) +
		float64(k)*p.Epsilon*(math.Exp(p.Epsilon)-1)
}
