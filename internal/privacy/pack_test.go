package privacy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bits := 1 + r.Intn(32)
		q := Quantizer{Bits: bits}
		n := r.Intn(40)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = 2*r.Float64() - 1
		}
		packed, err := q.Pack(vals)
		if err != nil {
			return false
		}
		if len(packed) != q.PackedLen(n) {
			return false
		}
		got, err := q.Unpack(packed, n)
		if err != nil {
			return false
		}
		for i, v := range vals {
			// Wire roundtrip must equal the in-process lossy codec
			// exactly: same cell center, bit for bit.
			if got[i] != q.Roundtrip(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestPackDeterministic(t *testing.T) {
	q := Quantizer{Bits: 5}
	vals := []float64{-1, -0.3, 0, 0.25, 0.9, 1}
	a, err := q.Pack(vals)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Pack(vals)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("pack not deterministic: % x vs % x", a, b)
	}
}

func TestPackedLenMatchesBitCount(t *testing.T) {
	for _, bits := range []int{1, 3, 8, 13, 32} {
		q := Quantizer{Bits: bits}
		for _, n := range []int{0, 1, 7, 64} {
			want := (n*bits + 7) / 8
			if got := q.PackedLen(n); got != want {
				t.Fatalf("PackedLen(%d) at %d bits = %d, want %d", n, bits, got, want)
			}
		}
	}
}

func TestUnpackRejectsBadInput(t *testing.T) {
	q := Quantizer{Bits: 3}
	vals := []float64{0.1, -0.4, 0.7}
	packed, err := q.Pack(vals)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Unpack(packed, 6); err == nil {
		t.Fatal("wrong count accepted")
	}
	if _, err := q.Unpack(packed[:len(packed)-1], 3); err == nil && len(packed) > 1 {
		t.Fatal("truncated stream accepted")
	}
	if _, err := q.Unpack(packed, -1); err == nil {
		t.Fatal("negative count accepted")
	}
	// 3 values x 3 bits = 9 bits in 2 bytes: 7 padding bits must be zero.
	bad := append([]byte(nil), packed...)
	bad[len(bad)-1] |= 0x01
	if _, err := q.Unpack(bad, 3); err == nil {
		t.Fatal("non-zero padding accepted")
	}
	if _, err := (Quantizer{Bits: 0}).Pack(vals); err == nil {
		t.Fatal("invalid quantizer accepted by Pack")
	}
	if _, err := (Quantizer{Bits: 33}).Unpack(packed, 3); err == nil {
		t.Fatal("invalid quantizer accepted by Unpack")
	}
}

func TestPackErrorWithinHalfCell(t *testing.T) {
	q := Quantizer{Bits: 10}
	rng := rand.New(rand.NewSource(302))
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = 2*rng.Float64() - 1
	}
	packed, err := q.Pack(vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Unpack(packed, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	cell := 2.0 / float64(1<<10)
	for i, v := range vals {
		if math.Abs(got[i]-v) > cell/2+1e-12 {
			t.Fatalf("value %d error %v exceeds half cell", i, math.Abs(got[i]-v))
		}
	}
}
