package privacy

import (
	"fmt"
	"math"

	"fedsc/internal/mat"
)

// Quantizer uniformly quantizes float64 values into b-bit integers over
// a symmetric range [-Max, +Max]. It realizes the q-bit-per-float
// assumption of the paper's communication-cost analysis (Section IV-E)
// as an actual lossy codec, so the accuracy/bits tradeoff is measurable.
type Quantizer struct {
	// Bits per value, in [1, 32].
	Bits int
	// Max is the clipping range; Fed-SC samples are unit-norm, so 1.0
	// covers every coordinate. Zero defaults to 1.
	Max float64
}

func (q Quantizer) levels() int { return 1 << q.Bits }

func (q Quantizer) rng() float64 {
	if q.Max <= 0 {
		return 1
	}
	return q.Max
}

// Validate reports whether the quantizer is usable.
func (q Quantizer) Validate() error {
	if q.Bits < 1 || q.Bits > 32 {
		return fmt.Errorf("privacy: quantizer bits %d outside [1,32]", q.Bits)
	}
	return nil
}

// Encode maps v to its level index in [0, 2^Bits).
func (q Quantizer) Encode(v float64) uint32 {
	m := q.rng()
	if v > m {
		v = m
	}
	if v < -m {
		v = -m
	}
	n := q.levels()
	// Midrise mapping of [-m, m] onto n levels.
	idx := int(math.Floor((v + m) / (2 * m) * float64(n)))
	if idx >= n {
		idx = n - 1
	}
	if idx < 0 {
		idx = 0
	}
	return uint32(idx)
}

// Decode maps a level index back to the center of its cell.
func (q Quantizer) Decode(idx uint32) float64 {
	m := q.rng()
	n := float64(q.levels())
	return -m + (float64(idx)+0.5)*(2*m/n)
}

// Roundtrip quantizes and dequantizes v.
func (q Quantizer) Roundtrip(v float64) float64 { return q.Decode(q.Encode(v)) }

// Apply quantizes every entry of samples in place, simulating the lossy
// uplink. Returns the maximum absolute quantization error observed.
func (q Quantizer) Apply(samples *mat.Dense) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	maxErr := 0.0
	data := samples.Data()
	for i, v := range data {
		nv := q.Roundtrip(v)
		if e := math.Abs(nv - v); e > maxErr {
			maxErr = e
		}
		data[i] = nv
	}
	return maxErr, nil
}
