package privacy

import "fmt"

// PackedLen returns the number of bytes Pack produces for count values:
// count*Bits bits rounded up to a whole byte. This is the §IV-E uplink
// payload size for one device's samples at the configured rate.
func (q Quantizer) PackedLen(count int) int {
	return (count*q.Bits + 7) / 8
}

// Pack encodes each value to its level index and concatenates the
// indices MSB-first into a contiguous bit stream. The final byte is
// zero-padded, so Pack(values) is deterministic: equal inputs always
// produce byte-identical output (retried and duplicated uploads carry
// the same bytes).
func (q Quantizer) Pack(values []float64) ([]byte, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	out := make([]byte, q.PackedLen(len(values)))
	var acc uint64 // bit accumulator, top `fill` bits pending
	fill := 0
	pos := 0
	for _, v := range values {
		acc |= uint64(q.Encode(v)) << (64 - q.Bits - fill)
		fill += q.Bits
		for fill >= 8 {
			out[pos] = byte(acc >> 56)
			pos++
			acc <<= 8
			fill -= 8
		}
	}
	if fill > 0 {
		out[pos] = byte(acc >> 56)
	}
	return out, nil
}

// Unpack reverses Pack: it reads count Bits-wide indices from the
// stream and decodes each to the center of its quantization cell, so
// Unpack(Pack(v))[i] == Roundtrip(v[i]) exactly. It rejects streams of
// the wrong length and non-zero padding bits, so a truncated or
// bit-flipped tail cannot pass silently.
func (q Quantizer) Unpack(packed []byte, count int) ([]float64, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("privacy: unpack count %d negative", count)
	}
	if want := q.PackedLen(count); len(packed) != want {
		return nil, fmt.Errorf("privacy: unpack: %d bytes for %d values at %d bits, want %d",
			len(packed), count, q.Bits, want)
	}
	out := make([]float64, count)
	var acc uint64
	fill := 0
	pos := 0
	for i := range out {
		for fill < q.Bits {
			acc |= uint64(packed[pos]) << (56 - fill)
			pos++
			fill += 8
		}
		idx := uint32(acc >> (64 - q.Bits))
		acc <<= q.Bits
		fill -= q.Bits
		out[i] = q.Decode(idx)
	}
	if fill > 0 && acc>>(64-fill) != 0 {
		return nil, fmt.Errorf("privacy: unpack: non-zero padding bits")
	}
	return out, nil
}
