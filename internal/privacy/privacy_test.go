package privacy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedsc/internal/mat"
)

func TestParamsValidate(t *testing.T) {
	good := Params{Epsilon: 1, Delta: 1e-5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	for _, bad := range []Params{
		{Epsilon: 0, Delta: 1e-5},
		{Epsilon: -1, Delta: 1e-5},
		{Epsilon: 1, Delta: 0},
		{Epsilon: 1, Delta: 1},
		{Epsilon: 1, Delta: 1e-5, Sensitivity: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid params accepted: %+v", bad)
		}
	}
}

func TestNoiseStdScaling(t *testing.T) {
	base := Params{Epsilon: 1, Delta: 1e-5}
	double := Params{Epsilon: 2, Delta: 1e-5}
	if !(double.NoiseStd() < base.NoiseStd()) {
		t.Fatal("larger ε must need less noise")
	}
	// Explicit value check: σ = 2·√(2 ln(1.25/δ))/ε.
	want := 2 * math.Sqrt(2*math.Log(1.25e5))
	if math.Abs(base.NoiseStd()-want) > 1e-12 {
		t.Fatalf("NoiseStd = %v want %v", base.NoiseStd(), want)
	}
	sens := Params{Epsilon: 1, Delta: 1e-5, Sensitivity: 1}
	if math.Abs(sens.NoiseStd()*2-base.NoiseStd()) > 1e-12 {
		t.Fatal("NoiseStd must be linear in sensitivity")
	}
}

func TestGaussianMechanismPerturbs(t *testing.T) {
	rng := rand.New(rand.NewSource(220))
	samples := mat.NewDense(4, 3)
	std, err := GaussianMechanism(samples, Params{Epsilon: 1, Delta: 1e-4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if std <= 0 {
		t.Fatal("std should be positive")
	}
	nonzero := 0
	for _, v := range samples.Data() {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != len(samples.Data()) {
		t.Fatal("all entries should be perturbed almost surely")
	}
}

func TestGaussianMechanismRejectsBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	if _, err := GaussianMechanism(mat.NewDense(2, 2), Params{}, rng); err == nil {
		t.Fatal("zero params should be rejected")
	}
}

func TestGaussianMechanismEmpiricalStd(t *testing.T) {
	rng := rand.New(rand.NewSource(222))
	samples := mat.NewDense(200, 200)
	p := Params{Epsilon: 2, Delta: 1e-5}
	std, err := GaussianMechanism(samples, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	sum, n := 0.0, 0
	for _, v := range samples.Data() {
		sum += v * v
		n++
	}
	got := math.Sqrt(sum / float64(n))
	if math.Abs(got-std) > 0.05*std {
		t.Fatalf("empirical std %v far from nominal %v", got, std)
	}
}

func TestCompose(t *testing.T) {
	p := Params{Epsilon: 0.5, Delta: 1e-6}
	c := Compose(p, 4)
	if c.Epsilon != 2 || c.Delta != 4e-6 {
		t.Fatalf("Compose = %+v", c)
	}
}

func TestAdvancedComposeBeatsBasicForManyReleases(t *testing.T) {
	p := Params{Epsilon: 0.1, Delta: 1e-7}
	k := 100
	basic := Compose(p, k).Epsilon
	adv := AdvancedCompose(p, k, 1e-6)
	if adv >= basic {
		t.Fatalf("advanced composition %v should beat basic %v for k=%d", adv, basic, k)
	}
}

func TestQuantizerRoundtripBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bits := 2 + r.Intn(14)
		q := Quantizer{Bits: bits}
		// Max roundtrip error of a midrise quantizer is half a cell.
		cell := 2.0 / float64(int(1)<<bits)
		for trial := 0; trial < 50; trial++ {
			v := 2*r.Float64() - 1
			if math.Abs(q.Roundtrip(v)-v) > cell/2+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizerClipsOutOfRange(t *testing.T) {
	q := Quantizer{Bits: 8}
	if v := q.Roundtrip(5.0); v > 1 {
		t.Fatalf("clipped value %v should stay within range", v)
	}
	if v := q.Roundtrip(-5.0); v < -1 {
		t.Fatalf("clipped value %v should stay within range", v)
	}
}

func TestQuantizerMonotone(t *testing.T) {
	q := Quantizer{Bits: 6}
	prev := math.Inf(-1)
	for v := -1.0; v <= 1.0; v += 0.01 {
		rv := q.Roundtrip(v)
		if rv < prev-1e-12 {
			t.Fatalf("quantizer not monotone at %v", v)
		}
		prev = rv
	}
}

func TestQuantizerApply(t *testing.T) {
	rng := rand.New(rand.NewSource(224))
	m := mat.RandomGaussian(10, 10, rng)
	m.Scale(0.3) // keep in range
	q := Quantizer{Bits: 12}
	maxErr, err := q.Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	cell := 2.0 / float64(1<<12)
	if maxErr > cell/2+1e-12 {
		t.Fatalf("max error %v exceeds half cell %v", maxErr, cell/2)
	}
	if _, err := (Quantizer{Bits: 0}).Apply(m); err == nil {
		t.Fatal("invalid quantizer accepted")
	}
}
