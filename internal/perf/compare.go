package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// ReadReport loads a BENCH_<label>.json report written by WriteJSON.
func ReadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("perf: read report: %w", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("perf: parse report %s: %w", path, err)
	}
	return rep, nil
}

// Delta is one benchmark's comparison between a baseline report and a
// fresh measurement.
type Delta struct {
	Name       string
	PrevNs     float64
	CurNs      float64
	Ratio      float64 // CurNs / PrevNs; 1.0 = unchanged
	PrevAllocs int64
	CurAllocs  int64
	Regressed  bool
}

// Compare matches baseline and current results by benchmark name and
// flags every kernel whose ns/op grew beyond tolerance (0.15 = +15%).
// Benchmarks present on only one side — a kernel added or retired since
// the baseline — are skipped, so an old report never blocks a new
// benchmark and vice versa. Deltas come back in current-suite order.
func Compare(prev, cur []Result, tolerance float64) []Delta {
	base := make(map[string]Result, len(prev))
	for _, r := range prev {
		base[r.Name] = r
	}
	deltas := make([]Delta, 0, len(cur))
	for _, r := range cur {
		p, ok := base[r.Name]
		if !ok || p.NsPerOp <= 0 {
			continue
		}
		d := Delta{
			Name:       r.Name,
			PrevNs:     p.NsPerOp,
			CurNs:      r.NsPerOp,
			Ratio:      r.NsPerOp / p.NsPerOp,
			PrevAllocs: p.AllocsPerOp,
			CurAllocs:  r.AllocsPerOp,
		}
		d.Regressed = d.Ratio > 1+tolerance
		deltas = append(deltas, d)
	}
	return deltas
}

// Regressions filters deltas down to the kernels that regressed,
// worst ratio first.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	return out
}
