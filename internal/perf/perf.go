// Package perf defines the tracked kernel benchmarks once, shared by the
// `go test -bench` micro-benchmarks at the repository root and the
// machine-readable harness behind `fedsc-bench -json` (`make bench-json`),
// so the numbers recorded in BENCH_<label>.json across PRs and the numbers
// developers see locally always come from the same code and inputs.
package perf

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"fedsc/internal/chaos"
	"fedsc/internal/core"
	"fedsc/internal/dsvd"
	"fedsc/internal/fednet"
	"fedsc/internal/fleet"
	"fedsc/internal/mat"
	"fedsc/internal/obs"
	"fedsc/internal/store"
	"fedsc/internal/synth"
)

// LocalClusterAndSample measures one device's Phase 1 (the dominant
// per-device cost: SSC + eigengap + truncated SVD + sampling).
func LocalClusterAndSample(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := synth.RandomSubspaces(20, 5, 4, rng)
	ds := s.SampleCounts([]int{20, 20, 0, 0}, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.LocalClusterAndSample(ds.X, core.LocalOptions{UseEigengap: true},
			rand.New(rand.NewSource(int64(i))))
	}
}

// FedSCRound measures a complete one-shot round end to end. Metrics and
// span tracing are deliberately enabled — the tracked number budgets the
// fully instrumented path, so observability overhead creeping past noise
// fails the bench-regression gate like any other slowdown.
func FedSCRound(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := synth.RandomSubspaces(20, 5, 8, rng)
	devices := make([]*mat.Dense, 40)
	for dev := range devices {
		clusters := rng.Perm(8)[:2]
		counts := make([]int, 8)
		for k := 0; k < 30; k++ {
			counts[clusters[k%2]]++
		}
		devices[dev] = s.SampleCounts(counts, rng).X
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(devices, 8, core.Options{
			Local: core.LocalOptions{UseEigengap: true},
			Obs:   obs.NewRegistry(),
			Trace: obs.NewTracer(nil),
		}, rand.New(rand.NewSource(int64(i))))
	}
}

// centralHeavyDevices builds the round used by FedSCRoundCentralHeavy
// and FedSCRoundSharded: many devices with little local data, so the
// pooled count (256 samples) makes Phase 2 — whose spectral
// segmentation is cubic in the pooled count — the round's dominant
// cost. Ambient dimension 64 leaves room for the sketch to pay.
func centralHeavyDevices() []*mat.Dense {
	rng := rand.New(rand.NewSource(5))
	s := synth.RandomSubspaces(64, 3, 8, rng)
	devices := make([]*mat.Dense, 128)
	for dev := range devices {
		clusters := rng.Perm(8)[:2]
		counts := make([]int, 8)
		for _, c := range clusters {
			counts[c] = 6
		}
		devices[dev] = s.SampleCounts(counts, rng).X
	}
	return devices
}

// benchCentralHeavy runs the central-heavy round with the given Phase 2
// configuration; FedSCRoundCentralHeavy and FedSCRoundSharded differ
// only in it, so their delta is exactly the sharded/sketched win.
func benchCentralHeavy(b *testing.B, central core.CentralOptions) {
	devices := centralHeavyDevices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(devices, 8, core.Options{
			Local:   core.LocalOptions{UseEigengap: true},
			Central: central,
			Obs:     obs.NewRegistry(),
			Trace:   obs.NewTracer(nil),
		}, rand.New(rand.NewSource(int64(i))))
	}
}

// FedSCRoundCentralHeavy measures the exact single-pass Phase 2 on a
// round whose pooled count dominates the cost.
func FedSCRoundCentralHeavy(b *testing.B) {
	benchCentralHeavy(b, core.CentralOptions{})
}

// FedSCRoundSharded measures the same round with Phase 2 dealt into 4
// shards and the pooled matrix sketched from 64 to 32 rows — the
// configuration the shard/sketch pipeline exists for.
func FedSCRoundSharded(b *testing.B) {
	benchCentralHeavy(b, core.CentralOptions{Shards: 4, SketchSize: 32})
}

// SymEigen measures the dense symmetric eigendecomposition used by
// spectral clustering and the eigengap estimate.
func SymEigen(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := mat.RandomGaussian(200, 200, rng)
	a := mat.MulTA(g, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.SymEigen(a)
	}
}

// SymEigenPartial measures the k-pair partial eigensolver on the same
// 200×200 Gram matrix as SymEigen with k=8 — the spectral-embedding
// regime (k cluster eigenvectors of an n-point graph) where the
// bisection + inverse-iteration path must beat the full decomposition.
func SymEigenPartial(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := mat.RandomGaussian(200, 200, rng)
	a := mat.MulTA(g, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.SymEigenPartial(a, 8)
	}
}

// DistributedSVD measures one in-process projection-splitting solve
// (internal/dsvd): 4 devices × 60 columns in R^64, rank 4 — the
// per-iteration device projections, residual, re-orthonormalization,
// and the final Ritz rotation.
func DistributedSVD(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	basis := mat.RandomOrthonormal(64, 4, rng)
	blocks := make([]*mat.Dense, 4)
	for z := range blocks {
		x := mat.Mul(basis, mat.RandomGaussian(4, 60, rng))
		noise := mat.RandomGaussian(64, 60, rng)
		xd, nd := x.Data(), noise.Data()
		for i := range xd {
			xd[i] += 0.01 * nd[i]
		}
		blocks[z] = x
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsvd.Run(blocks, dsvd.Options{K: 4, Seed: int64(i), Obs: obs.NewRegistry()}); err != nil {
			b.Fatal(err)
		}
	}
}

// TruncatedSVD measures per-cluster basis recovery (the randomized
// range-finder path: 128x60 input, k=5).
func TruncatedSVD(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	basis := mat.RandomOrthonormal(128, 5, rng)
	coef := mat.RandomGaussian(5, 60, rng)
	x := mat.Mul(basis, coef)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.TruncatedSVD(x, 5)
	}
}

// MulTA measures the transposed product aᵀ*b that Gram-matrix formation
// and the randomized SVD's projection step are built on.
func MulTA(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := mat.RandomGaussian(200, 200, rng)
	h := mat.RandomGaussian(200, 200, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MulTA(g, h)
	}
}

// FedSCRoundUnderLatency measures a complete networked round — four
// devices dialing through the chaos transport with 2ms±1ms scripted
// latency per link — so regressions in the retry/dedup/reply path show
// up as wall-clock, not just as kernel time.
func FedSCRoundUnderLatency(b *testing.B) {
	const z, l = 4, 4
	rng := rand.New(rand.NewSource(3))
	s := synth.RandomSubspaces(40, 3, l, rng)
	devices := make([]*mat.Dense, z)
	for dev := range devices {
		clusters := rng.Perm(l)[:2]
		counts := make([]int, l)
		for _, c := range clusters {
			counts[c] = 8
		}
		devices[dev] = s.SampleCounts(counts, rng).X
	}
	policy := fednet.RetryPolicy{
		MaxAttempts: 2, BaseDelay: 10 * time.Millisecond,
		Timeout: 2 * time.Second, ReplyTimeout: 10 * time.Second,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched := &chaos.Schedule{
			Seed:    int64(i),
			Default: chaos.Script{Latency: 2 * time.Millisecond, Jitter: time.Millisecond},
		}
		pn := chaos.NewPipeNet()
		srv := &fednet.Server{L: l, Expect: z, Seed: int64(i), WaitTimeout: 5 * time.Second}
		done := make(chan error, 1)
		go func() {
			_, err := srv.Serve(pn.Listener())
			done <- err
		}()
		var wg sync.WaitGroup
		for dev := 0; dev < z; dev++ {
			wg.Add(1)
			go func(dev int) {
				defer wg.Done()
				_, err := fednet.RunClientDialer(sched.Dialer(dev, pn.Dial), dev, devices[dev],
					core.LocalOptions{UseEigengap: true}, policy,
					rand.New(rand.NewSource(int64(100*i+dev))))
				if err != nil {
					b.Errorf("iteration %d device %d: %v", i, dev, err)
				}
			}(dev)
		}
		wg.Wait()
		if err := <-done; err != nil {
			b.Fatalf("iteration %d server: %v", i, err)
		}
		pn.Close()
	}
}

// FedSCIncrementalRound measures the continuous-federation steady
// state (internal/fleet): one Join wave of two late devices whose
// clusters all absorb into the served model — per-device Phase 1, the
// serve-engine scoring of every local cluster, and the principal-angle
// similarity test, with no delta sub-solve and no store write. This is
// the recurring cost of a long-running fleet between splices.
func FedSCIncrementalRound(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	s := synth.RandomSubspaces(30, 3, 4, rng)
	device := func() *mat.Dense {
		clusters := rng.Perm(4)[:2]
		counts := make([]int, 4)
		for _, c := range clusters {
			counts[c] = 12
		}
		return s.SampleCounts(counts, rng).X
	}
	founding := make([]*mat.Dense, 8)
	for dev := range founding {
		founding[dev] = device()
	}
	late := []*mat.Dense{device(), device()}

	dir, err := os.MkdirTemp("", "fedsc-bench-fleet-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := fleet.New(fleet.Config{
		L:     4,
		Local: core.LocalOptions{UseEigengap: true, SamplesPerCluster: 3},
		Seed:  8,
		Store: st,
		Obs:   obs.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := ctl.Initial(founding); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ctl.Join(late)
		if err != nil {
			b.Fatal(err)
		}
		if res.Changed {
			b.Fatalf("iteration %d spliced %d clusters; the steady-state bench must absorb everything", i, res.Spliced)
		}
	}
}

// Named pairs a stable benchmark name with its body. Names match the
// root-level `Benchmark<Name>` functions.
type Named struct {
	Name string
	F    func(*testing.B)
}

// Suite lists the tracked benchmarks in output order.
func Suite() []Named {
	return []Named{
		{"TruncatedSVD", TruncatedSVD},
		{"SymEigen", SymEigen},
		{"SymEigenPartial", SymEigenPartial},
		{"DistributedSVD", DistributedSVD},
		{"MulTA", MulTA},
		{"LocalClusterAndSample", LocalClusterAndSample},
		{"FedSCRound", FedSCRound},
		{"FedSCRoundCentralHeavy", FedSCRoundCentralHeavy},
		{"FedSCRoundSharded", FedSCRoundSharded},
		{"FedSCRoundUnderLatency", FedSCRoundUnderLatency},
		{"FedSCIncrementalRound", FedSCIncrementalRound},
	}
}

// Result is one benchmark's measurement in the JSON report.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// Report is the schema of a BENCH_<label>.json file.
type Report struct {
	Label      string   `json:"label"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	CreatedAt  string   `json:"created_at"`
	Results    []Result `json:"results"`
}

// RunSuite executes every tracked benchmark via testing.Benchmark and
// returns the measurements in suite order.
func RunSuite() []Result {
	out := make([]Result, 0, len(Suite()))
	for _, nb := range Suite() {
		r := testing.Benchmark(nb.F)
		out = append(out, Result{
			Name:        nb.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		})
	}
	return out
}

// WriteJSON writes the report for label to path (conventionally
// BENCH_<label>.json in the repository root).
func WriteJSON(path, label string, results []Result) error {
	rep := Report{
		Label:      label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		Results:    results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: marshal report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("perf: write report: %w", err)
	}
	return nil
}
