package perf

import (
	"path/filepath"
	"testing"
)

func TestCompareFlagsOnlyRegressionsBeyondTolerance(t *testing.T) {
	prev := []Result{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "B", NsPerOp: 100},
		{Name: "C", NsPerOp: 100},
		{Name: "Retired", NsPerOp: 50},
	}
	cur := []Result{
		{Name: "A", NsPerOp: 110, AllocsPerOp: 12}, // +10%: inside tolerance
		{Name: "B", NsPerOp: 130},                  // +30%: regressed
		{Name: "C", NsPerOp: 80},                   // faster
		{Name: "Added", NsPerOp: 999},              // no baseline: skipped
	}
	deltas := Compare(prev, cur, 0.15)
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3 (Added and Retired skipped)", len(deltas))
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if byName["A"].Regressed || byName["C"].Regressed {
		t.Fatalf("A or C flagged as regressed: %+v", deltas)
	}
	if !byName["B"].Regressed {
		t.Fatalf("B (+30%%) not flagged at 15%% tolerance: %+v", byName["B"])
	}
	if got := byName["A"].CurAllocs; got != 12 {
		t.Fatalf("A CurAllocs = %d, want 12", got)
	}
	reg := Regressions(deltas)
	if len(reg) != 1 || reg[0].Name != "B" {
		t.Fatalf("Regressions = %+v, want exactly B", reg)
	}
}

func TestCompareSkipsZeroBaseline(t *testing.T) {
	deltas := Compare(
		[]Result{{Name: "A", NsPerOp: 0}},
		[]Result{{Name: "A", NsPerOp: 100}}, 0.15)
	if len(deltas) != 0 {
		t.Fatalf("zero-ns baseline must be skipped, got %+v", deltas)
	}
}

func TestReadReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	results := []Result{{Name: "SymEigen", NsPerOp: 12345, BytesPerOp: 64, AllocsPerOp: 2, Iterations: 100}}
	if err := WriteJSON(path, "test", results); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	rep, err := ReadReport(path)
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	if rep.Label != "test" || len(rep.Results) != 1 || rep.Results[0] != results[0] {
		t.Fatalf("round trip mismatch: %+v", rep)
	}
	if _, err := ReadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatalf("ReadReport on a missing file must error")
	}
}
