// Package sparse provides compressed sparse row matrices for the affinity
// graphs built by subspace clustering, together with the graph and
// spectral primitives that operate on them: matrix-vector products,
// connected components, normalized Laplacian construction and a Lanczos
// eigensolver for the extreme eigenpairs of large symmetric operators.
package sparse

import (
	"fmt"
	"sort"
)

// Coord is a single (row, column, value) entry used to assemble matrices.
type Coord struct {
	Row, Col int
	Val      float64
}

// CSR is an immutable sparse matrix in compressed sparse row form.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// NewCSR assembles a CSR matrix from coordinate entries. Duplicate
// coordinates are summed; explicit zeros are dropped.
func NewCSR(rows, cols int, entries []Coord) *CSR {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimension %dx%d", rows, cols))
	}
	es := make([]Coord, 0, len(entries))
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("sparse: entry (%d,%d) out of range for %dx%d", e.Row, e.Col, rows, cols))
		}
		if e.Val != 0 { //fedsc:allow floatcmp dropping exactly-zero entries is the CSR construction contract
			es = append(es, e)
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Row != es[j].Row {
			return es[i].Row < es[j].Row
		}
		return es[i].Col < es[j].Col
	})
	m := &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for i := 0; i < len(es); {
		j := i
		v := 0.0
		for j < len(es) && es[j].Row == es[i].Row && es[j].Col == es[i].Col {
			v += es[j].Val
			j++
		}
		if v != 0 { //fedsc:allow floatcmp duplicate coordinates that cancel exactly are dropped
			m.colIdx = append(m.colIdx, es[i].Col)
			m.vals = append(m.vals, v)
			m.rowPtr[es[i].Row+1]++
		}
		i = j
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m
}

// Dims returns (rows, cols).
func (m *CSR) Dims() (int, int) { return m.rows, m.cols }

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.vals) }

// At returns the value at (i, j), zero when the entry is not stored.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	idx := m.colIdx[lo:hi]
	k := sort.SearchInts(idx, j)
	if k < len(idx) && idx[k] == j {
		return m.vals[lo+k]
	}
	return 0
}

// Row invokes fn for every stored entry (j, v) of row i.
func (m *CSR) Row(i int, fn func(j int, v float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.colIdx[k], m.vals[k])
	}
}

// MulVec computes y = m*x, allocating y when nil, and returns it.
func (m *CSR) MulVec(x, y []float64) []float64 {
	if len(x) != m.cols {
		panic("sparse: MulVec dimension mismatch")
	}
	if y == nil {
		y = make([]float64, m.rows)
	}
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		y[i] = s
	}
	return y
}

// RowSums returns the vector of row sums (the degree vector for an
// affinity matrix).
func (m *CSR) RowSums() []float64 {
	d := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k]
		}
		d[i] = s
	}
	return d
}

// Scale returns a copy of m with every value multiplied by a.
func (m *CSR) Scale(a float64) *CSR {
	out := &CSR{rows: m.rows, cols: m.cols, rowPtr: m.rowPtr,
		colIdx: m.colIdx, vals: make([]float64, len(m.vals))}
	for i, v := range m.vals {
		out.vals[i] = a * v
	}
	return out
}

// DiagScale returns diag(l) * m * diag(r) as a new matrix sharing the
// sparsity pattern of m.
func (m *CSR) DiagScale(l, r []float64) *CSR {
	if len(l) != m.rows || len(r) != m.cols {
		panic("sparse: DiagScale dimension mismatch")
	}
	out := &CSR{rows: m.rows, cols: m.cols, rowPtr: m.rowPtr,
		colIdx: m.colIdx, vals: make([]float64, len(m.vals))}
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			out.vals[k] = l[i] * m.vals[k] * r[m.colIdx[k]]
		}
	}
	return out
}

// Submatrix returns the square submatrix of m indexed by idx on both
// axes. m must be square.
func (m *CSR) Submatrix(idx []int) *CSR {
	if m.rows != m.cols {
		panic("sparse: Submatrix requires a square matrix")
	}
	pos := make(map[int]int, len(idx))
	for k, i := range idx {
		pos[i] = k
	}
	var entries []Coord
	for k, i := range idx {
		m.Row(i, func(j int, v float64) {
			if jj, ok := pos[j]; ok {
				entries = append(entries, Coord{Row: k, Col: jj, Val: v})
			}
		})
	}
	return NewCSR(len(idx), len(idx), entries)
}

// ConnectedComponents labels the vertices of the undirected graph whose
// (possibly asymmetric) adjacency is m, treating any stored nonzero as an
// edge in both directions. It returns the component label of each vertex
// and the number of components.
func (m *CSR) ConnectedComponents() ([]int, int) {
	if m.rows != m.cols {
		panic("sparse: ConnectedComponents requires a square matrix")
	}
	n := m.rows
	label := make([]int, n)
	for i := range label {
		label[i] = -1
	}
	// Union-find over the stored edges treats the graph as undirected
	// without materializing the transpose.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			ri, rj := find(i), find(m.colIdx[k])
			if ri != rj {
				parent[ri] = rj
			}
		}
	}
	next := 0
	for i := 0; i < n; i++ {
		r := find(i)
		if label[r] < 0 {
			label[r] = next
			next++
		}
		label[i] = label[r]
	}
	return label, next
}
