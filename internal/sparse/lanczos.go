package sparse

import (
	"math/rand"

	"fedsc/internal/mat"
)

// Lanczos computes approximations to the k largest eigenpairs of the
// symmetric operator given by matvec (dimension n) using the Lanczos
// iteration with full reorthogonalization. It returns eigenvalues sorted
// descending with the corresponding Ritz vectors as columns.
//
// steps bounds the Krylov dimension; a value of k+32 (clamped to n) is a
// reasonable default for graph Laplacians with well-separated extreme
// eigenvalues. rng seeds the starting vector.
func Lanczos(n, k, steps int, matvec func(x, y []float64), rng *rand.Rand) ([]float64, *mat.Dense) {
	if k > n {
		k = n
	}
	if steps < k {
		steps = k
	}
	if steps > n {
		steps = n
	}
	if k == 0 || n == 0 {
		return nil, mat.NewDense(n, 0)
	}
	// Krylov basis, one row per Lanczos vector for contiguous access.
	q := mat.NewDense(steps, n)
	alpha := make([]float64, steps)
	beta := make([]float64, steps) // beta[i] links vector i and i+1
	v := mat.RandomUnitVector(n, rng)
	copy(q.Row(0), v)
	w := make([]float64, n)
	m := steps
	for j := 0; j < steps; j++ {
		matvec(q.Row(j), w)
		alpha[j] = mat.Dot(q.Row(j), w)
		// w -= alpha_j q_j + beta_{j-1} q_{j-1}
		mat.Axpy(-alpha[j], q.Row(j), w)
		if j > 0 {
			mat.Axpy(-beta[j-1], q.Row(j-1), w)
		}
		// Full reorthogonalization for numerical stability.
		for i := 0; i <= j; i++ {
			c := mat.Dot(q.Row(i), w)
			if c != 0 { //fedsc:allow floatcmp sparsity skip: an exactly zero projection needs no axpy
				mat.Axpy(-c, q.Row(i), w)
			}
		}
		if j == steps-1 {
			break
		}
		b := mat.Norm2(w)
		if b < 1e-13 {
			// Invariant subspace found. Restart with a fresh random
			// vector orthogonal to the basis so the iteration can reach
			// eigenpairs outside the current Krylov space (common for
			// highly structured graphs); beta = 0 correctly decouples
			// the tridiagonal blocks.
			restarted := false
			for attempt := 0; attempt < 5; attempt++ {
				copy(w, mat.RandomUnitVector(n, rng))
				for i := 0; i <= j; i++ {
					c := mat.Dot(q.Row(i), w)
					if c != 0 { //fedsc:allow floatcmp sparsity skip: an exactly zero projection needs no axpy
						mat.Axpy(-c, q.Row(i), w)
					}
				}
				if mat.Norm2(w) > 1e-8 {
					restarted = true
					break
				}
			}
			if !restarted {
				m = j + 1
				break
			}
			mat.Normalize(w)
			b = 0
		}
		beta[j] = b
		var inv float64
		if b > 0 {
			inv = 1 / b
		} else {
			inv = 1 // w is already unit-norm after a restart
		}
		dst := q.Row(j + 1)
		for i := range w {
			dst[i] = w[i] * inv
		}
	}
	// Eigendecomposition of the m x m tridiagonal matrix.
	t := mat.NewDense(m, m)
	for i := 0; i < m; i++ {
		t.Set(i, i, alpha[i])
		if i+1 < m {
			t.Set(i, i+1, beta[i])
			t.Set(i+1, i, beta[i])
		}
	}
	eig := mat.SymEigen(t)
	if k > m {
		k = m
	}
	// Take the k largest Ritz values (SymEigen sorts ascending).
	vals := make([]float64, k)
	vecs := mat.NewDense(n, k)
	for c := 0; c < k; c++ {
		src := m - 1 - c
		vals[c] = eig.Values[src]
		// Ritz vector: sum_i T-eigvec[i] * q_i.
		dst := make([]float64, n)
		for i := 0; i < m; i++ {
			w := eig.Vectors.At(i, src)
			if w != 0 { //fedsc:allow floatcmp sparsity skip: exactly zero eigvec weights contribute nothing
				mat.Axpy(w, q.Row(i), dst)
			}
		}
		mat.Normalize(dst)
		vecs.SetCol(c, dst)
	}
	return vals, vecs
}
