package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedsc/internal/mat"
)

func TestNewCSRBasics(t *testing.T) {
	m := NewCSR(3, 3, []Coord{
		{0, 1, 2}, {1, 0, 2}, {2, 2, 5}, {0, 1, 3}, // duplicate (0,1) sums
		{1, 1, 0}, // explicit zero dropped
	})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d want 3", m.NNZ())
	}
	if m.At(0, 1) != 5 {
		t.Fatalf("At(0,1) = %v want 5 (summed)", m.At(0, 1))
	}
	if m.At(1, 1) != 0 {
		t.Fatal("explicit zero should not be stored")
	}
	if m.At(2, 0) != 0 {
		t.Fatal("missing entry should read as 0")
	}
	r, c := m.Dims()
	if r != 3 || c != 3 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
}

func TestCSRPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range entry")
		}
	}()
	NewCSR(2, 2, []Coord{{2, 0, 1}})
}

func TestMulVec(t *testing.T) {
	// [[1,2],[0,3]] * [1,1] = [3,3]
	m := NewCSR(2, 2, []Coord{{0, 0, 1}, {0, 1, 2}, {1, 1, 3}})
	y := m.MulVec([]float64{1, 1}, nil)
	if y[0] != 3 || y[1] != 3 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		dense := mat.NewDense(n, n)
		var entries []Coord
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if r.Float64() < 0.25 {
					v := r.NormFloat64()
					dense.Set(i, j, v)
					entries = append(entries, Coord{i, j, v})
				}
			}
		}
		s := NewCSR(n, n, entries)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		got := s.MulVec(x, nil)
		want := mat.MulVec(dense, x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestRowSumsAndDiagScale(t *testing.T) {
	m := NewCSR(2, 2, []Coord{{0, 0, 1}, {0, 1, 2}, {1, 0, 3}})
	d := m.RowSums()
	if d[0] != 3 || d[1] != 3 {
		t.Fatalf("RowSums = %v", d)
	}
	s := m.DiagScale([]float64{2, 1}, []float64{1, 10})
	if s.At(0, 0) != 2 || s.At(0, 1) != 40 || s.At(1, 0) != 3 {
		t.Fatalf("DiagScale wrong: %v %v %v", s.At(0, 0), s.At(0, 1), s.At(1, 0))
	}
	// Original untouched.
	if m.At(0, 1) != 2 {
		t.Fatal("DiagScale mutated the source")
	}
	sc := m.Scale(2)
	if sc.At(1, 0) != 6 || m.At(1, 0) != 3 {
		t.Fatal("Scale wrong or mutated source")
	}
}

func TestRowIteration(t *testing.T) {
	m := NewCSR(2, 3, []Coord{{0, 2, 5}, {0, 0, 1}})
	var cols []int
	var vals []float64
	m.Row(0, func(j int, v float64) {
		cols = append(cols, j)
		vals = append(vals, v)
	})
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 || vals[1] != 5 {
		t.Fatalf("Row iteration wrong: %v %v", cols, vals)
	}
}

func TestSubmatrix(t *testing.T) {
	m := NewCSR(3, 3, []Coord{{0, 0, 1}, {0, 2, 2}, {2, 0, 3}, {1, 1, 4}})
	s := m.Submatrix([]int{0, 2})
	if s.At(0, 0) != 1 || s.At(0, 1) != 2 || s.At(1, 0) != 3 || s.At(1, 1) != 0 {
		t.Fatal("Submatrix wrong")
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} (via 0-1, 1-2) and {3}.
	m := NewCSR(4, 4, []Coord{{0, 1, 1}, {1, 2, 1}})
	label, n := m.ConnectedComponents()
	if n != 2 {
		t.Fatalf("components = %d want 2", n)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Fatalf("labels %v: 0,1,2 should share a component", label)
	}
	if label[3] == label[0] {
		t.Fatalf("labels %v: 3 should be separate", label)
	}
}

func TestConnectedComponentsDirectedEdgesTreatedUndirected(t *testing.T) {
	// Only a one-way stored edge 2->0; still one component {0,2}.
	m := NewCSR(3, 3, []Coord{{2, 0, 1}})
	label, n := m.ConnectedComponents()
	if n != 2 || label[0] != label[2] || label[1] == label[0] {
		t.Fatalf("labels=%v n=%d", label, n)
	}
}

func TestLanczosMatchesDenseEigen(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 40
	g := mat.RandomGaussian(n, n, rng)
	a := mat.MulTA(g, g) // symmetric PSD
	matvec := func(x, y []float64) {
		res := mat.MulVec(a, x)
		copy(y, res)
	}
	vals, vecs := Lanczos(n, 3, n, matvec, rng)
	dense := mat.SymEigen(a)
	for i := 0; i < 3; i++ {
		want := dense.Values[n-1-i]
		if math.Abs(vals[i]-want) > 1e-6*(1+want) {
			t.Fatalf("Lanczos value %d = %v want %v", i, vals[i], want)
		}
		// Residual ||A v - λ v|| small.
		v := vecs.Col(i, nil)
		av := mat.MulVec(a, v)
		for j := range av {
			av[j] -= vals[i] * v[j]
		}
		if r := mat.Norm2(av); r > 1e-6*(1+vals[i]) {
			t.Fatalf("Lanczos residual %d = %g", i, r)
		}
	}
}

func TestLanczosSmallK(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	// 2x2 diagonal operator.
	matvec := func(x, y []float64) {
		y[0] = 5 * x[0]
		y[1] = 1 * x[1]
	}
	vals, vecs := Lanczos(2, 1, 2, matvec, rng)
	if math.Abs(vals[0]-5) > 1e-10 {
		t.Fatalf("top eigenvalue = %v want 5", vals[0])
	}
	if math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-8 {
		t.Fatalf("top eigenvector = %v want ±e1", vecs.Col(0, nil))
	}
}

func TestLanczosRestartsOnInvariantSubspace(t *testing.T) {
	// The identity operator makes every start vector an eigenvector, so
	// the first residual is exactly zero; the restart logic must still
	// deliver k eigenpairs (all equal to 1).
	rng := rand.New(rand.NewSource(34))
	matvec := func(x, y []float64) { copy(y, x) }
	vals, vecs := Lanczos(10, 3, 10, matvec, rng)
	if len(vals) != 3 {
		t.Fatalf("got %d eigenvalues, want 3", len(vals))
	}
	for i, v := range vals {
		if math.Abs(v-1) > 1e-10 {
			t.Fatalf("eigenvalue %d = %v want 1", i, v)
		}
	}
	if vecs.Cols() != 3 {
		t.Fatalf("got %d eigenvectors", vecs.Cols())
	}
}

func TestLanczosZeroK(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	vals, vecs := Lanczos(5, 0, 5, func(x, y []float64) { copy(y, x) }, rng)
	if len(vals) != 0 || vecs.Cols() != 0 {
		t.Fatal("k=0 should return empty results")
	}
}
