// Package kmeans implements k-means++ seeding and Lloyd iterations. It is
// used by the spectral-clustering embedding step and by the k-FED
// federated baseline. Points are the ROWS of the input matrix.
package kmeans

import (
	"math"
	"math/rand"

	"fedsc/internal/mat"
)

// Result holds the outcome of a k-means run.
type Result struct {
	// Labels assigns each input row to a centroid in [0, k).
	Labels []int
	// Centroids holds one centroid per row.
	Centroids *mat.Dense
	// Inertia is the summed squared distance of points to their centroid.
	Inertia float64
}

// Options configures Run.
type Options struct {
	// MaxIter bounds Lloyd iterations per restart (default 100).
	MaxIter int
	// Restarts is the number of independent k-means++ restarts; the best
	// inertia wins (default 5).
	Restarts int
	// Tol stops iterating when the inertia improvement falls below it
	// (default 1e-9).
	Tol float64
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Restarts <= 0 {
		o.Restarts = 5
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// Run clusters the rows of points into k groups with k-means++ seeding and
// Lloyd iterations, keeping the best of several restarts. k is clamped to
// the number of points.
func Run(points *mat.Dense, k int, rng *rand.Rand, opts Options) Result {
	opts = opts.withDefaults()
	n, _ := points.Dims()
	if k <= 0 {
		panic("kmeans: k must be positive")
	}
	if k > n {
		k = n
	}
	best := Result{Inertia: math.Inf(1)}
	for r := 0; r < opts.Restarts; r++ {
		res := runOnce(points, k, rng, opts)
		if res.Inertia < best.Inertia {
			best = res
		}
	}
	return best
}

func runOnce(points *mat.Dense, k int, rng *rand.Rand, opts Options) Result {
	n, d := points.Dims()
	centroids := seedPlusPlus(points, k, rng)
	labels := make([]int, n)
	counts := make([]int, k)
	prev := math.Inf(1)
	inertia := 0.0
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Assignment step.
		inertia = 0.0
		for i := 0; i < n; i++ {
			row := points.Row(i)
			bi, bd := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if d2 := sqDist(row, centroids.Row(c)); d2 < bd {
					bi, bd = c, d2
				}
			}
			labels[i] = bi
			inertia += bd
		}
		if prev-inertia < opts.Tol {
			break
		}
		prev = inertia
		// Update step.
		centroids.Zero()
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			c := labels[i]
			counts[c]++
			crow := centroids.Row(c)
			for j, v := range points.Row(i) {
				crow[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid to keep exactly k clusters alive.
				far, fd := 0, -1.0
				for i := 0; i < n; i++ {
					if d2 := sqDist(points.Row(i), centroids.Row(labels[i])); d2 > fd {
						far, fd = i, d2
					}
				}
				copy(centroids.Row(c), points.Row(far))
				continue
			}
			inv := 1 / float64(counts[c])
			crow := centroids.Row(c)
			for j := 0; j < d; j++ {
				crow[j] *= inv
			}
		}
	}
	return Result{Labels: labels, Centroids: centroids, Inertia: inertia}
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(points *mat.Dense, k int, rng *rand.Rand) *mat.Dense {
	n, d := points.Dims()
	centroids := mat.NewDense(k, d)
	first := rng.Intn(n)
	copy(centroids.Row(0), points.Row(first))
	dist := make([]float64, n)
	for i := 0; i < n; i++ {
		dist[i] = sqDist(points.Row(i), centroids.Row(0))
	}
	for c := 1; c < k; c++ {
		total := 0.0
		for _, v := range dist {
			total += v
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, v := range dist {
				acc += v
				if acc >= target {
					pick = i
					break
				}
			}
		}
		copy(centroids.Row(c), points.Row(pick))
		for i := 0; i < n; i++ {
			if d2 := sqDist(points.Row(i), centroids.Row(c)); d2 < dist[i] {
				dist[i] = d2
			}
		}
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Assign labels each row of points with the nearest row of centroids.
func Assign(points, centroids *mat.Dense) []int {
	n, _ := points.Dims()
	k, _ := centroids.Dims()
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		row := points.Row(i)
		bi, bd := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			if d2 := sqDist(row, centroids.Row(c)); d2 < bd {
				bi, bd = c, d2
			}
		}
		labels[i] = bi
	}
	return labels
}
