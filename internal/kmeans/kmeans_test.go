package kmeans

import (
	"math"
	"math/rand"
	"testing"

	"fedsc/internal/mat"
)

// gaussianBlobs builds n points per center around each given center.
func gaussianBlobs(centers *mat.Dense, perCenter int, sigma float64, rng *rand.Rand) (*mat.Dense, []int) {
	k, d := centers.Dims()
	pts := mat.NewDense(k*perCenter, d)
	truth := make([]int, k*perCenter)
	for c := 0; c < k; c++ {
		for i := 0; i < perCenter; i++ {
			row := pts.Row(c*perCenter + i)
			for j := 0; j < d; j++ {
				row[j] = centers.At(c, j) + sigma*rng.NormFloat64()
			}
			truth[c*perCenter+i] = c
		}
	}
	return pts, truth
}

// samePartition reports whether labels a and b induce the same partition.
func samePartition(a, b []int) bool {
	fw := map[int]int{}
	bw := map[int]int{}
	for i := range a {
		if v, ok := fw[a[i]]; ok && v != b[i] {
			return false
		}
		if v, ok := bw[b[i]]; ok && v != a[i] {
			return false
		}
		fw[a[i]] = b[i]
		bw[b[i]] = a[i]
	}
	return true
}

func TestRunSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	centers := mat.NewDenseData(3, 2, []float64{0, 0, 10, 0, 0, 10})
	pts, truth := gaussianBlobs(centers, 30, 0.5, rng)
	res := Run(pts, 3, rng, Options{})
	if !samePartition(res.Labels, truth) {
		t.Fatal("k-means failed to recover well-separated blobs")
	}
	if res.Inertia <= 0 {
		t.Fatalf("inertia = %v, expected positive", res.Inertia)
	}
}

func TestRunKClampedToN(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts := mat.RandomGaussian(3, 2, rng)
	res := Run(pts, 10, rng, Options{})
	if len(res.Labels) != 3 {
		t.Fatalf("labels length %d", len(res.Labels))
	}
	seen := map[int]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Fatalf("expected 3 singleton clusters, got %d", len(seen))
	}
}

func TestRunSingleCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	pts := mat.RandomGaussian(20, 3, rng)
	res := Run(pts, 1, rng, Options{})
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatal("k=1 should label everything 0")
		}
	}
	// Centroid is the mean.
	for j := 0; j < 3; j++ {
		mean := 0.0
		for i := 0; i < 20; i++ {
			mean += pts.At(i, j)
		}
		mean /= 20
		if math.Abs(res.Centroids.At(0, j)-mean) > 1e-12 {
			t.Fatal("k=1 centroid is not the mean")
		}
	}
}

func TestRunPanicsOnNonPositiveK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	rng := rand.New(rand.NewSource(63))
	Run(mat.NewDense(4, 2), 0, rng, Options{})
}

func TestAssign(t *testing.T) {
	cents := mat.NewDenseData(2, 1, []float64{0, 10})
	pts := mat.NewDenseData(3, 1, []float64{1, 9, 4})
	labels := Assign(pts, cents)
	want := []int{0, 1, 0}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("Assign = %v want %v", labels, want)
		}
	}
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	centers := mat.NewDenseData(2, 2, []float64{0, 0, 8, 8})
	pts, _ := gaussianBlobs(centers, 25, 0.4, rand.New(rand.NewSource(64)))
	a := Run(pts, 2, rand.New(rand.NewSource(7)), Options{})
	b := Run(pts, 2, rand.New(rand.NewSource(7)), Options{})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed should give identical labels")
		}
	}
}

func TestEmptyClusterReseeded(t *testing.T) {
	// Duplicate points force potential empty clusters; Run must still
	// return k distinct centroid rows without NaNs.
	pts := mat.NewDense(6, 1)
	for i := 0; i < 5; i++ {
		pts.Set(i, 0, 1)
	}
	pts.Set(5, 0, 100)
	rng := rand.New(rand.NewSource(65))
	res := Run(pts, 3, rng, Options{Restarts: 2})
	for i := 0; i < 3; i++ {
		if math.IsNaN(res.Centroids.At(i, 0)) {
			t.Fatal("NaN centroid after empty-cluster reseed")
		}
	}
}
