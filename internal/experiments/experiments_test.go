package experiments

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"fedsc/internal/core"
	"fedsc/internal/metrics"
)

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "bb") {
		t.Fatalf("rendered table missing pieces:\n%s", s)
	}
	tsv := tab.TSV()
	if tsv != "a\tbb\n1\t2\n" {
		t.Fatalf("TSV = %q", tsv)
	}
}

func TestChartRendering(t *testing.T) {
	line := Table{Title: "acc vs Z", Header: []string{"Z", "Fed-SC", "k-FED"}}
	line.AddRow("100", "80.0", "20.0")
	line.AddRow("200", "90.0", "15.0")
	out := line.Chart()
	if !strings.Contains(out, "Fed-SC") || !strings.Contains(out, "k-FED") {
		t.Fatalf("line chart missing legend:\n%s", out)
	}
	heat := Table{Title: "Fig. 5 — accuracy heatmap", Header: []string{"L", "0.1", "0.5"}}
	heat.AddRow("10", "90.0", "50.0")
	out = heat.Chart()
	if !strings.Contains(out, "scale:") {
		t.Fatalf("heatmap missing scale:\n%s", out)
	}
	// Non-numeric tables render nothing.
	text := Table{Title: "t", Header: []string{"a", "b"}}
	text.AddRow("x", "not-a-number")
	if text.Chart() != "" {
		t.Fatal("non-numeric table should not chart")
	}
	// Ragged rows render nothing rather than panicking.
	ragged := Table{Title: "t", Header: []string{"a", "b"}}
	ragged.Rows = append(ragged.Rows, []string{"only-one"})
	if ragged.Chart() != "" {
		t.Fatal("ragged table should not chart")
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "default", "paper", ""} {
		if _, ok := ScaleByName(name); !ok {
			t.Fatalf("scale %q not found", name)
		}
	}
	if _, ok := ScaleByName("bogus"); ok {
		t.Fatal("bogus scale resolved")
	}
}

func TestSyntheticInstanceShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	inst := syntheticInstance(20, 3, 6, 9, 2, 24, rng)
	if len(inst.Devices) != 9 || inst.L != 6 || inst.MaxLPrime != 2 {
		t.Fatalf("instance meta wrong: %+v", inst)
	}
	for dev, x := range inst.Devices {
		if x.Cols() != 24 {
			t.Fatalf("device %d has %d points", dev, x.Cols())
		}
		seen := map[int]bool{}
		for _, l := range inst.Truth[dev] {
			seen[l] = true
		}
		if len(seen) != 2 {
			t.Fatalf("device %d sees %d clusters, want 2", dev, len(seen))
		}
	}
	if inst.TotalPoints() != 9*24 {
		t.Fatalf("TotalPoints = %d", inst.TotalPoints())
	}
	x, labels := inst.Pooled()
	if x.Cols() != len(labels) || x.Cols() != 9*24 {
		t.Fatal("Pooled shapes wrong")
	}
}

func TestInducedGlobalAffinityConnectsClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	inst := syntheticInstance(20, 3, 4, 16, 2, 24, rng)
	res := core.Run(inst.Devices, inst.L, core.Options{
		Local: core.LocalOptions{UseEigengap: true},
	}, rng)
	w := InducedGlobalAffinity(inst, res)
	n, _ := w.Dims()
	if n != inst.TotalPoints() {
		t.Fatalf("induced graph over %d vertices, want %d", n, inst.TotalPoints())
	}
	truth := inst.FlatTruth()
	// On clean data the induced graph should have decent connectivity:
	// every truth cluster internally connected in most runs.
	_, avg := metrics.Connectivity(w, truth, rng)
	if avg <= 0 {
		t.Fatalf("induced affinity disconnects the truth clusters (avg λ2 = %v)", avg)
	}
}

func TestRunDispatch(t *testing.T) {
	if _, ok := Run("nope", QuickScale()); ok {
		t.Fatal("unknown experiment resolved")
	}
	if testing.Short() {
		t.Skip("sweeps every remaining experiment at quick scale")
	}
	for _, name := range All() {
		switch name {
		case NameFig6, NameTable3, NameTable4, NamePrivacy, NameQuant, NameTheory, NameScaling:
			continue // covered by the slower dedicated tests below
		}
		tabs, ok := Run(name, QuickScale())
		if !ok || len(tabs) == 0 {
			t.Fatalf("experiment %s returned nothing", name)
		}
		for _, tab := range tabs {
			if len(tab.Rows) == 0 {
				t.Fatalf("experiment %s table %q has no rows", name, tab.Title)
			}
		}
	}
}

func TestFig4ShapeFedSCBeatsKFED(t *testing.T) {
	tabs := Fig4(QuickScale())
	if len(tabs) != 3 {
		t.Fatalf("Fig4 should return 3 partitions, got %d", len(tabs))
	}
	// In the Non-IID-2 table (last), Fed-SC(SSC) accuracy must beat k-FED
	// at the largest Z — the paper's headline comparison.
	nonIID2 := tabs[2]
	last := nonIID2.Rows[len(nonIID2.Rows)-1]
	fedACC := mustFloat(t, last[1])
	kfedACC := mustFloat(t, last[5])
	if fedACC <= kfedACC {
		t.Fatalf("Fed-SC(SSC) %.1f should beat k-FED %.1f on subspace data", fedACC, kfedACC)
	}
	if fedACC < 80 {
		t.Fatalf("Fed-SC(SSC) accuracy %.1f unexpectedly low on Non-IID-2", fedACC)
	}
}

func TestFig7NoiseDegradesGracefully(t *testing.T) {
	s := QuickScale()
	tabs := Fig7(s)
	ssc := tabs[0]
	// δ=0 row should be at least as good as the largest-δ row.
	clean := mustFloat(t, ssc.Rows[0][1])
	noisy := mustFloat(t, ssc.Rows[len(ssc.Rows)-1][1])
	if clean < noisy-10 {
		t.Fatalf("noise-free accuracy %.1f unexpectedly below noisy %.1f", clean, noisy)
	}
}

func TestCommAccountingOrdersSchemes(t *testing.T) {
	tabs := Comm(QuickScale())
	for _, row := range tabs[0].Rows {
		up := mustFloat(t, row[2])
		basis := mustFloat(t, row[4])
		raw := mustFloat(t, row[5])
		if !(up < basis && basis < raw) {
			t.Fatalf("expected uplink < basis < raw, got %v %v %v", up, basis, raw)
		}
	}
}

func TestFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the centralized baselines")
	}
	s := QuickScale()
	s.Fig6Zs = []int{8}
	s.Fig6L = 6
	tabs := Fig6(s)
	if len(tabs) != 4 {
		t.Fatalf("Fig6 should return 4 metric tables, got %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 1 || len(tab.Rows[0]) != 8 {
			t.Fatalf("Fig6 table %q has wrong shape", tab.Title)
		}
	}
}

func TestTable3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the centralized baselines on real-data stand-ins")
	}
	s := QuickScale()
	s.T3Z = 20
	s.T3EMNISTPoints = 300
	s.T3COILClasses = 8
	s.T3COILViews = 12
	s.T3CentralizedN = 150
	tabs := Table3(s)
	if len(tabs) != 2 {
		t.Fatalf("Table3 should return 2 datasets, got %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 10 { // 5 federated + 5 centralized
			t.Fatalf("Table3 %q has %d rows, want 10", tab.Title, len(tab.Rows))
		}
		// k-FED rows report no connectivity.
		if tab.Rows[2][3] != "-" {
			t.Fatalf("k-FED CONN should be '-', got %q", tab.Rows[2][3])
		}
	}
}

func TestTable4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-L' sweep")
	}
	s := QuickScale()
	s.T3Z = 20
	s.T4Points = 300
	s.T4Classes = 8
	s.T4LPrimes = []int{2, 4}
	tabs := Table4(s)
	if len(tabs) != 2 {
		t.Fatalf("Table4 should return 2 datasets, got %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 5 {
			t.Fatalf("Table4 %q has %d rows, want 5", tab.Title, len(tab.Rows))
		}
		if len(tab.Rows[0]) != 3 { // method + 2 L' columns
			t.Fatalf("Table4 %q row width %d", tab.Title, len(tab.Rows[0]))
		}
	}
}

func TestPrivacyTradeoffMonotoneish(t *testing.T) {
	if testing.Short() {
		t.Skip("DP sweep")
	}
	s := QuickScale()
	s.Fig4Zs = []int{60}
	tabs := Privacy(s)
	rows := tabs[0].Rows
	// The weakest privacy (largest ε, last row) should be at least as
	// accurate as the strongest (first row).
	strong := mustFloat(t, rows[0][3])
	weak := mustFloat(t, rows[len(rows)-1][3])
	if weak < strong-5 {
		t.Fatalf("weak-privacy accuracy %.1f below strong-privacy %.1f", weak, strong)
	}
}

func TestQuantSweepRecoversAtHighBits(t *testing.T) {
	if testing.Short() {
		t.Skip("quantization sweep")
	}
	s := QuickScale()
	s.Fig4Zs = []int{60}
	tabs := Quant(s)
	rows := tabs[0].Rows
	// 32-bit quantization is effectively lossless: accuracy should be
	// high; 2-bit should not beat it.
	hi := mustFloat(t, rows[len(rows)-1][2])
	lo := mustFloat(t, rows[0][2])
	if hi < 80 {
		t.Fatalf("32-bit quantized accuracy only %.1f", hi)
	}
	if lo > hi+5 {
		t.Fatalf("2-bit accuracy %.1f implausibly above 32-bit %.1f", lo, hi)
	}
	// Uplink bits scale linearly with the bit width.
	b2 := mustFloat(t, rows[0][1])
	b32 := mustFloat(t, rows[len(rows)-1][1])
	if b32 != 16*b2 {
		t.Fatalf("uplink accounting: 32-bit %v should be 16x 2-bit %v", b32, b2)
	}
}

func TestTheoryEasyGeometryHoldsSEP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial theory sweep")
	}
	tabs := Theory(QuickScale())
	rows := tabs[0].Rows
	// The roomiest ambient space (first row) should achieve SEP in every
	// trial and high accuracy; the most cramped (last row) should have a
	// strictly larger measured affinity.
	if rows[0][4] != "5/5" {
		t.Fatalf("easy geometry SEP rate = %s, want 5/5", rows[0][4])
	}
	easyAff := mustFloat(t, rows[0][1])
	hardAff := mustFloat(t, rows[len(rows)-1][1])
	if hardAff <= easyAff {
		t.Fatalf("cramped ambient should raise affinity: %.3f vs %.3f", hardAff, easyAff)
	}
	if acc := mustFloat(t, rows[0][6]); acc < 95 {
		t.Fatalf("easy-geometry accuracy %.1f", acc)
	}
}

func TestScalingCentralGrowsFasterThanFederated(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	s := QuickScale()
	s.Fig4Zs = []int{20, 40, 80}
	tabs := Scaling(s)
	rows := tabs[0].Rows
	last := rows[len(rows)-1]
	if last[0] != "log-log slope" {
		t.Fatalf("missing slope row: %v", last)
	}
	fedSlope := mustFloat(t, last[1])
	centralSlope := mustFloat(t, last[3])
	// The paper's O(Z²N²) vs O(ZN²+Z²): the centralized slope must
	// clearly exceed the federated sequential slope.
	if centralSlope <= fedSlope {
		t.Fatalf("central slope %.2f should exceed federated %.2f", centralSlope, fedSlope)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = x² exactly -> slope 2.
	x := []float64{10, 20, 40, 80}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = v * v
	}
	if got := loglogSlope(x, y); mathAbs(got-2) > 1e-9 {
		t.Fatalf("slope = %v want 2", got)
	}
	if got := loglogSlope([]float64{1}, []float64{0}); got != 0 {
		t.Fatalf("degenerate slope = %v want 0", got)
	}
}

func mathAbs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}
