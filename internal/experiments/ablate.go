package experiments

import (
	"fmt"
	"math/rand"

	"fedsc/internal/core"
	"fedsc/internal/metrics"
	"fedsc/internal/subspace"
)

func accOf(truth, pred []int) float64 { return metrics.Accuracy(truth, pred) }
func nmiOf(truth, pred []int) float64 { return metrics.NMI(truth, pred) }

// Ablate exercises the design choices Section IV motivates:
//
//   - r⁽ᶻ⁾ estimation: eigengap heuristic vs the fixed upper bound used
//     for real-world data (Remark 1);
//   - server algorithm: SSC vs TSC (Section IV-D);
//   - sample redundancy: 1 sample per local cluster (the paper) vs 3;
//   - subspace dimension: estimated rank vs the d_t = 1 shortcut.
//
// All variants run on the same Non-IID-2 synthetic instances.
func Ablate(s Scale) []Table {
	t := Table{
		Title:  fmt.Sprintf("Ablation — Fed-SC design choices (L=%d, Non-IID-2)", s.Fig4L),
		Header: []string{"Variant", "Z", "ACC", "NMI", "Σr⁽ᶻ⁾", "Uplink bits"},
	}
	type variant struct {
		name string
		opts core.Options
	}
	variants := []variant{
		{"eigengap + SSC server (paper default)", core.Options{
			Local: core.LocalOptions{UseEigengap: true}}},
		{"fixed r=L' bound (real-data rule)", core.Options{
			Local: core.LocalOptions{RMax: 2, UseEigengap: false}}},
		{"TSC server", core.Options{
			Local:   core.LocalOptions{UseEigengap: true},
			Central: core.CentralOptions{Method: core.CentralTSC}}},
		{"3 samples per cluster", core.Options{
			Local: core.LocalOptions{UseEigengap: true, SamplesPerCluster: 3}}},
		{"d_t = 1 shortcut", core.Options{
			Local: core.LocalOptions{UseEigengap: true, TargetDim: 1}}},
		{"ADMM local solver", core.Options{
			Local: core.LocalOptions{UseEigengap: true,
				SSC: subspace.SSCOptions{Which: subspace.SolverADMM}}}},
	}
	for _, z := range s.Fig4Zs {
		for _, v := range variants {
			rng := rand.New(rand.NewSource(s.Seed + int64(z)*29))
			inst := syntheticInstance(s.Ambient, s.Dim, s.Fig4L, z, 2, s.Fig4PointsPerDevice, rng)
			res := core.Run(inst.Devices, inst.L, v.opts, rng)
			truth := inst.FlatTruth()
			pred := core.FlattenLabels(res.Labels)
			sumR := 0
			for _, r := range res.RPerDevice {
				sumR += r
			}
			t.AddRow(v.name, fmt.Sprint(z),
				f1(accOf(truth, pred)), f1(nmiOf(truth, pred)),
				fmt.Sprint(sumR), fmt.Sprint(res.UplinkBits))
		}
	}
	return []Table{t}
}
