package experiments

// Scale bundles every experiment's workload parameters so the harness can
// run at test scale (seconds), default scale (minutes, shapes clearly
// visible) or paper scale (the evaluation section's actual settings —
// hours on a large machine, exactly as the paper reports for the
// centralized baselines).
type Scale struct {
	Name string
	Seed int64

	// Fig. 4: federated methods vs number of devices Z under IID /
	// Non-IID-10 / Non-IID-2 partitions. Synthetic model: L subspaces of
	// dimension Dim in R^Ambient, PointsPerDevice points per device.
	Fig4Zs              []int
	Fig4L               int
	Fig4LPrimes         []int // 0 encodes IID (L' = L)
	Fig4PointsPerDevice int

	// Fig. 5: accuracy heatmap over the number of subspaces L and the
	// heterogeneity ratio L'/L at fixed Z.
	Fig5Z      int
	Fig5Ls     []int
	Fig5Ratios []float64

	// Fig. 6: Fed-SC vs centralized SC at L=50, L'=3 as Z grows.
	Fig6Zs              []int
	Fig6L               int
	Fig6LPrime          int
	Fig6PointsPerDevice int

	// Fig. 7: accuracy heatmap over channel noise δ and Z.
	Fig7Zs     []int
	Fig7Deltas []float64

	// Synthetic model shared by Figs. 4-7.
	Dim     int
	Ambient int

	// Tables III-IV: real-world stand-ins.
	T3Z              int
	T3EMNISTPoints   int // total simulated EMNIST points
	T3COILClasses    int // COIL classes kept (100 at paper scale)
	T3COILViews      int
	T3CentralizedN   int // max points fed to the centralized baselines
	T4LPrimes        []int
	T4Points         int // points per dataset in the L' sweep
	T4Classes        int // clusters used in the L' sweep
	RealWorldRMax    int // upper bound on r^(z) (the paper's real-data rule)
	RealWorldAmbient int
}

// QuickScale finishes in seconds; used by unit tests and smoke runs.
func QuickScale() Scale {
	return Scale{
		Name: "quick",
		Seed: 1,

		Fig4Zs:              []int{40, 80},
		Fig4L:               8,
		Fig4LPrimes:         []int{0, 4, 2},
		Fig4PointsPerDevice: 24,

		Fig5Z:      60,
		Fig5Ls:     []int{6, 10},
		Fig5Ratios: []float64{0.25, 0.5, 1.0},

		Fig6Zs:              []int{10, 20},
		Fig6L:               10,
		Fig6LPrime:          3,
		Fig6PointsPerDevice: 24,

		Fig7Zs:     []int{40, 80},
		Fig7Deltas: []float64{0, 0.3, 3.0},

		Dim:     5,
		Ambient: 20,

		T3Z:              30,
		T3EMNISTPoints:   600,
		T3COILClasses:    12,
		T3COILViews:      24,
		T3CentralizedN:   400,
		T4LPrimes:        []int{2, 4},
		T4Points:         500,
		T4Classes:        10,
		RealWorldRMax:    4,
		RealWorldAmbient: 64,
	}
}

// DefaultScale runs each experiment in minutes with the paper's shapes
// clearly visible.
func DefaultScale() Scale {
	return Scale{
		Name: "default",
		Seed: 1,

		// Central memory/time grow with (L'·Z)²: the IID column pools
		// L·Z samples at the server, which is what bounds the default Z
		// sweep (PaperScale goes to 2000 devices and needs the paper's
		// 502 GB class of machine for the IID column).
		Fig4Zs:              []int{50, 100, 200},
		Fig4L:               20,
		Fig4LPrimes:         []int{0, 10, 2},
		Fig4PointsPerDevice: 40,

		Fig5Z:      120,
		Fig5Ls:     []int{10, 20},
		Fig5Ratios: []float64{0.1, 0.3, 0.5, 0.8, 1.0},

		// Z must be large enough that the server sees Z·L'/L > d+1
		// samples per subspace — the identifiability regime the paper's
		// Fig. 6 x-axis lives in. The ceiling is the centralized
		// baselines: their cost grows quadratically in pooled points
		// (that growth IS the figure's point), so the default sweep
		// stops at 200 devices ≈ 6000 pooled points.
		Fig6Zs:              []int{100, 150, 200},
		Fig6L:               50,
		Fig6LPrime:          3,
		Fig6PointsPerDevice: 30,

		Fig7Zs:     []int{100, 200, 400},
		Fig7Deltas: []float64{0, 0.1, 0.3, 1.0, 3.0},

		Dim:     5,
		Ambient: 20,

		T3Z:              100,
		T3EMNISTPoints:   3000,
		T3COILClasses:    40,
		T3COILViews:      36,
		T3CentralizedN:   1200,
		T4LPrimes:        []int{2, 4, 6, 8, 10},
		T4Points:         2000,
		T4Classes:        20,
		RealWorldRMax:    4,
		RealWorldAmbient: 128,
	}
}

// PaperScale mirrors Section VI's settings; centralized baselines at this
// scale take hours, exactly as Table III reports (SSC exceeded the
// paper's one-day limit on EMNIST).
func PaperScale() Scale {
	s := DefaultScale()
	s.Name = "paper"
	s.Fig4Zs = []int{200, 600, 1000, 1400, 2000}
	s.Fig5Z = 400
	s.Fig5Ls = []int{10, 20, 30, 40, 50}
	s.Fig5Ratios = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	s.Fig6Zs = []int{100, 200, 400, 800}
	s.Fig7Zs = []int{100, 200, 400, 800}
	s.T3Z = 400
	s.T3EMNISTPoints = 20000
	s.T3COILClasses = 100
	s.T3COILViews = 72
	s.T3CentralizedN = 4000
	s.T4Points = 8000
	s.T4Classes = 62
	s.RealWorldAmbient = 256
	return s
}

// ScaleByName resolves quick/default/paper.
func ScaleByName(name string) (Scale, bool) {
	switch name {
	case "quick":
		return QuickScale(), true
	case "default", "":
		return DefaultScale(), true
	case "paper":
		return PaperScale(), true
	}
	return Scale{}, false
}
