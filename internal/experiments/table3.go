package experiments

import (
	"fmt"
	"math/rand"

	"fedsc/internal/core"
	"fedsc/internal/datasets"
	"fedsc/internal/subspace"
	"fedsc/internal/synth"
)

// Table3 reproduces Table III: all methods on the (simulated) EMNIST and
// augmented COIL100 datasets distributed over Z devices with
// 2 ≤ L⁽ᶻ⁾ ≤ 4. Reported: ACC, NMI, CONN (avg λ₂, '-' for k-means
// methods) and sequential running time. The centralized baselines run on
// a subsample of at most T3CentralizedN points, mirroring how the paper's
// SSC run exceeded its one-day limit — at paper scale they dominate the
// runtime exactly as Table III reports.
func Table3(s Scale) []Table {
	rng := rand.New(rand.NewSource(s.Seed))
	emCfg := datasets.DefaultEMNIST()
	emCfg.Ambient = s.RealWorldAmbient
	em := datasets.SimEMNIST(emCfg, s.T3EMNISTPoints, rng)
	coilCfg := datasets.DefaultCOIL()
	coilCfg.Ambient = s.RealWorldAmbient
	coilCfg.Classes = s.T3COILClasses
	coilCfg.Views = s.T3COILViews
	coil := datasets.SimCOIL100(coilCfg, rng)

	return []Table{
		table3For("EMNIST (simulated)", em, emCfg.Classes, s, rng),
		table3For("Augmented COIL100 (simulated)", coil, coilCfg.Classes, s, rng),
	}
}

func table3For(name string, ds synth.Dataset, classes int, s Scale, rng *rand.Rand) Table {
	t := Table{
		Title:  fmt.Sprintf("Table III — %s (Z=%d, 2≤L⁽ᶻ⁾≤4, N=%d)", name, s.T3Z, ds.N()),
		Header: []string{"Method", "ACC(a%)", "NMI(n%)", "CONN(c̄)", "T(sec.)"},
	}
	inst := datasetInstance(ds, classes, s.T3Z, 2, 4, rng)
	addEval := func(method string, ev Eval) {
		conn := "-"
		if ev.HasConn {
			conn = f4(ev.ConnAvg)
		}
		t.AddRow(method, f1(ev.ACC), f1(ev.NMI), conn, fsec(ev.Seconds))
	}
	addEval("Fed-SC (SSC)", runFedSC(inst, core.CentralSSC, 0, true, s.RealWorldRMax, true, rng))
	addEval("Fed-SC (TSC)", runFedSC(inst, core.CentralTSC, 0, true, s.RealWorldRMax, true, rng))
	addEval("k-FED", runKFED(inst, 0, rng))
	addEval("k-FED + PCA-10", runKFED(inst, 10, rng))
	addEval("k-FED + PCA-100", runKFED(inst, 100, rng))
	// Centralized baselines on a subsample (the full pooled set is what
	// makes them prohibitively slow in the paper).
	sub := datasets.Subsample(ds, s.T3CentralizedN, rng)
	for _, m := range subspace.Methods() {
		ev := runCentral(m, sub.X, sub.Labels, classes, rng)
		addEval(centralName(m), ev)
	}
	return t
}

func centralName(m subspace.Method) string {
	switch m {
	case subspace.MethodSSC:
		return "SSC"
	case subspace.MethodSSCOMP:
		return "SSCOMP"
	case subspace.MethodEnSC:
		return "EnSC"
	case subspace.MethodTSC:
		return "TSC"
	case subspace.MethodNSN:
		return "NSN"
	}
	return string(m)
}
