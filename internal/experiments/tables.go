// Package experiments regenerates every figure and table of the paper's
// evaluation (Section VI): Fig. 4 (federated methods vs number of
// devices), Fig. 5 (heterogeneity heatmap), Fig. 6 (Fed-SC vs centralized
// SC), Fig. 7 (communication-noise robustness), Table III (real-world
// datasets) and Table IV (accuracy vs L′), plus the communication-cost
// accounting of Section IV-E and ablations of the design choices. Each
// experiment returns a Table whose rows mirror the series the paper
// plots.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	// Title names the experiment (e.g. "Fig. 4 — ACC vs Z, Non-IID-2").
	Title string
	// Header labels the columns.
	Header []string
	// Rows holds the formatted cells.
	Rows [][]string
}

// AddRow appends formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns for terminal output.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// TSV renders the table as tab-separated values for downstream plotting.
func (t Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, "\t"))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// f1 formats a float with one decimal (ACC/NMI percentages).
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f4 formats a float with four decimals (connectivity).
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// fsec formats seconds with two decimals.
func fsec(v float64) string { return fmt.Sprintf("%.2f", v) }
