package experiments

import (
	"strconv"
	"strings"

	"fedsc/internal/plot"
)

// Chart renders the table as a terminal graphic: heatmap-shaped tables
// (the title says "heatmap" or "noise") become shaded heatmaps, and
// tables whose non-label cells are all numeric become line charts with
// the first column as the x axis. Tables that fit neither shape render
// as the empty string.
func (t Table) Chart() string {
	if len(t.Rows) == 0 || len(t.Header) < 2 {
		return ""
	}
	values := make([][]float64, 0, len(t.Rows))
	rowLabels := make([]string, 0, len(t.Rows))
	for _, row := range t.Rows {
		if len(row) != len(t.Header) {
			return ""
		}
		vals := make([]float64, 0, len(row)-1)
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
			if err != nil {
				return ""
			}
			vals = append(vals, v)
		}
		rowLabels = append(rowLabels, row[0])
		values = append(values, vals)
	}
	if strings.Contains(t.Title, "heatmap") || strings.Contains(t.Title, "noise") {
		return plot.Heatmap(t.Title, rowLabels, t.Header[1:], values)
	}
	series := make([]plot.Series, len(t.Header)-1)
	for c := range series {
		vals := make([]float64, len(values))
		for r := range values {
			vals[r] = values[r][c]
		}
		series[c] = plot.Series{Name: t.Header[c+1], Values: vals}
	}
	return plot.Line(t.Title, rowLabels, series, 64, 16)
}
