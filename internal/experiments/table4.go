package experiments

import (
	"fmt"
	"math/rand"

	"fedsc/internal/core"
	"fedsc/internal/datasets"
	"fedsc/internal/synth"
)

// Table4 reproduces Table IV: the clustering accuracy of the five
// federated methods as the number of local clusters L′ grows, on both
// simulated real-world datasets. Heterogeneity (small L′) should help
// every method, Fed-SC most visibly.
func Table4(s Scale) []Table {
	rng := rand.New(rand.NewSource(s.Seed + 4))
	emCfg := datasets.DefaultEMNIST()
	emCfg.Ambient = s.RealWorldAmbient
	emCfg.Classes = s.T4Classes
	em := datasets.SimEMNIST(emCfg, s.T4Points, rng)
	coilCfg := datasets.DefaultCOIL()
	coilCfg.Ambient = s.RealWorldAmbient
	coilCfg.Classes = s.T4Classes
	coilCfg.Views = s.T3COILViews
	coilCfg.AugmentFactor = 1
	coil := datasets.SimCOIL100(coilCfg, rng)

	return []Table{
		table4For("EMNIST (simulated)", em, s.T4Classes, s, rng),
		table4For("Augmented COIL100 (simulated)", coil, s.T4Classes, s, rng),
	}
}

func table4For(name string, ds synth.Dataset, classes int, s Scale, rng *rand.Rand) Table {
	header := []string{"L'"}
	for _, lp := range s.T4LPrimes {
		header = append(header, fmt.Sprint(lp))
	}
	t := Table{
		Title:  fmt.Sprintf("Table IV — accuracy vs L' on %s (Z=%d)", name, s.T3Z),
		Header: header,
	}
	rows := map[string][]string{}
	order := []string{"Fed-SC (SSC)", "Fed-SC (TSC)", "k-FED", "k-FED + PCA-10", "k-FED + PCA-100"}
	for _, m := range order {
		rows[m] = []string{m}
	}
	for _, lp := range s.T4LPrimes {
		inst := datasetInstance(ds, classes, s.T3Z, lp, lp, rng)
		rows["Fed-SC (SSC)"] = append(rows["Fed-SC (SSC)"],
			f1(runFedSC(inst, core.CentralSSC, 0, true, 0, false, rng).ACC))
		rows["Fed-SC (TSC)"] = append(rows["Fed-SC (TSC)"],
			f1(runFedSC(inst, core.CentralTSC, 0, true, 0, false, rng).ACC))
		rows["k-FED"] = append(rows["k-FED"], f1(runKFED(inst, 0, rng).ACC))
		rows["k-FED + PCA-10"] = append(rows["k-FED + PCA-10"], f1(runKFED(inst, 10, rng).ACC))
		rows["k-FED + PCA-100"] = append(rows["k-FED + PCA-100"], f1(runKFED(inst, 100, rng).ACC))
	}
	// Rewrite the first header cell to carry the method column.
	t.Header = append([]string{"Method \\ L'"}, t.Header[1:]...)
	for _, m := range order {
		t.AddRow(rows[m]...)
	}
	return t
}
