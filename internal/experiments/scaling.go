package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"fedsc/internal/subspace"
)

// Scaling validates the complexity analysis of Section IV-E: centralized
// spectral SC costs O(Z²N²) while Fed-SC costs O(ZN² + Z²) sequentially
// (O(N² + Z²) with parallel devices). The experiment measures wall time
// against growing Z at fixed per-device N and reports the fitted log-log
// slope: the centralized curve should approach slope 2, Fed-SC's should
// stay near 1 until the Z² central term takes over.
func Scaling(s Scale) []Table {
	t := Table{
		Title: fmt.Sprintf("Section IV-E — runtime scaling vs Z (L=%d, %d pts/device)",
			s.Fig4L, s.Fig4PointsPerDevice),
		Header: []string{"Z", "Fed-SC seq (s)", "Fed-SC parallel (s)", "central SSC (s)"},
	}
	var zs []float64
	var fed, fedPar, central []float64
	for _, z := range s.Fig4Zs {
		rng := rand.New(rand.NewSource(s.Seed + int64(z)*41))
		inst := syntheticInstance(s.Ambient, s.Dim, s.Fig4L, z, 2, s.Fig4PointsPerDevice, rng)
		ev := runFedSC(inst, "ssc", 0, false, 0, false, rng)
		res := ev.Result
		pooledX, pooledTruth := inst.Pooled()
		start := time.Now()
		subspace.SSC(pooledX, inst.L, rng, subspace.SSCOptions{})
		centralSecs := time.Since(start).Seconds()
		_ = pooledTruth
		t.AddRow(fmt.Sprint(z), fsec(res.SequentialTime.Seconds()),
			fsec(res.ParallelTime.Seconds()), fsec(centralSecs))
		zs = append(zs, float64(z))
		fed = append(fed, res.SequentialTime.Seconds())
		fedPar = append(fedPar, res.ParallelTime.Seconds())
		central = append(central, centralSecs)
	}
	if len(zs) >= 2 {
		t.AddRow("log-log slope",
			fmt.Sprintf("%.2f", loglogSlope(zs, fed)),
			fmt.Sprintf("%.2f", loglogSlope(zs, fedPar)),
			fmt.Sprintf("%.2f", loglogSlope(zs, central)))
	}
	return []Table{t}
}

// loglogSlope fits log(y) = a + b·log(x) by least squares and returns b.
func loglogSlope(x, y []float64) float64 {
	n := 0.0
	var sx, sy, sxx, sxy float64
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			continue
		}
		lx, ly := math.Log(x[i]), math.Log(y[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	den := n*sxx - sx*sx
	// A (near-)collinear abscissa makes the slope meaningless; an exact
	// zero test would still divide by rounding residue.
	if math.Abs(den) <= 1e-12*(1+math.Abs(n*sxx)) {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
