package experiments

import (
	"fmt"
	"math/rand"

	"fedsc/internal/core"
	"fedsc/internal/mat"
	"fedsc/internal/metrics"
	"fedsc/internal/synth"
	"fedsc/internal/theory"
)

// Theory empirically validates Section V: it sweeps the geometry from
// easy (low-dimensional subspaces in a roomy ambient space, far apart)
// to hard (affinity forced high by a cramped ambient space), reports the
// measured normalized subspace affinity against the Corollary 1/2
// bounds, and checks whether the final Fed-SC affinity actually achieves
// SEP and exact clustering. The theorems predict the qualitative order:
// SEP should hold comfortably where the affinities are small and start
// breaking as they climb past the bounds.
func Theory(s Scale) []Table {
	t := Table{
		Title: "Section V — empirical validation of the SEP / exact-clustering guarantees",
		Header: []string{"ambient n", "max aff/√d", "C1 bound", "C2 bound",
			"SEP rate", "exact rate", "ACC"},
	}
	const (
		l         = 6
		d         = 3
		z         = 48
		lPrime    = 2
		perDevice = 24
		trials    = 5
	)
	for _, ambient := range []int{48, 24, 12, 8} {
		sepCount, exactCount := 0, 0
		accSum, affMax := 0.0, 0.0
		var rep theory.SemiRandomReport
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(s.Seed + int64(ambient)*100 + int64(trial)))
			sub := synth.RandomSubspaces(ambient, d, l, rng)
			rep = theory.CheckSemiRandom(sub.Bases, d, z*lPrime/l, lPrime)
			if rep.MaxNormalizedAffinity > affMax {
				affMax = rep.MaxNormalizedAffinity
			}
			devices, truth := theoryFederation(sub, z, lPrime, perDevice, rng)
			res := core.Run(devices, l, core.Options{
				Local: core.LocalOptions{UseEigengap: true, RMax: l + 3},
			}, rng)
			flat := core.FlattenLabels(truth)
			pred := core.FlattenLabels(res.Labels)
			accSum += metrics.Accuracy(flat, pred)
			inst := Instance{Devices: devices, Truth: truth, L: l, MaxLPrime: lPrime}
			w := InducedGlobalAffinity(inst, res)
			if metrics.SEPHolds(w, flat) {
				sepCount++
			}
			if metrics.ExactClustering(w, flat) {
				exactCount++
			}
		}
		t.AddRow(fmt.Sprint(ambient), fmt.Sprintf("%.3f", affMax),
			fmt.Sprintf("%.3f", rep.SSCBound), fmt.Sprintf("%.3f", rep.TSCBound),
			fmt.Sprintf("%d/%d", sepCount, trials),
			fmt.Sprintf("%d/%d", exactCount, trials),
			f1(accSum/trials))
	}
	return []Table{t}
}

func theoryFederation(sub synth.Subspaces, z, lPrime, perDevice int, rng *rand.Rand) ([]*mat.Dense, [][]int) {
	devices := make([]*mat.Dense, z)
	truth := make([][]int, z)
	l := sub.L()
	for dev := 0; dev < z; dev++ {
		clusters := rng.Perm(l)[:lPrime]
		counts := make([]int, l)
		for k := 0; k < perDevice; k++ {
			counts[clusters[k%lPrime]]++
		}
		ds := sub.SampleCounts(counts, rng)
		devices[dev] = ds.X
		truth[dev] = ds.Labels
	}
	return devices, truth
}
