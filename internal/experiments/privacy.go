package experiments

import (
	"fmt"
	"math/rand"

	"fedsc/internal/core"
	"fedsc/internal/metrics"
	"fedsc/internal/privacy"
)

// Privacy explores the privacy-utility tradeoff the paper's conclusion
// poses as future work: Fed-SC accuracy when every uploaded sample is
// released through the (ε, δ)-DP Gaussian mechanism, as a function of the
// per-sample ε. The per-device round budget under basic composition
// (r⁽ᶻ⁾ releases) is reported next to the accuracy.
// The grid is wide because the finding is stark: with the unit-sphere
// release's ℓ2 sensitivity of 2, the Gaussian mechanism's noise only
// drops below the samples' own scale at very large ε — a concrete
// measurement of why the paper's conclusion leaves the privacy-utility
// tradeoff as future work.
func Privacy(s Scale) []Table {
	epsilons := []float64{1, 10, 50, 100, 200, 500}
	t := Table{
		Title: fmt.Sprintf("Privacy-utility — DP Gaussian mechanism on uploads (L=%d, Non-IID-2, δ=1e-5)", s.Fig4L),
		Header: []string{"ε per sample", "device round ε (basic comp.)", "noise σ",
			"Fed-SC(SSC) ACC", "Fed-SC(SSC) NMI"},
	}
	z := s.Fig4Zs[len(s.Fig4Zs)-1]
	rng := rand.New(rand.NewSource(s.Seed + 77))
	inst := syntheticInstance(s.Ambient, s.Dim, s.Fig4L, z, 2, s.Fig4PointsPerDevice, rng)
	truth := inst.FlatTruth()
	for _, eps := range epsilons {
		p := privacy.Params{Epsilon: eps, Delta: 1e-5}
		res := core.Run(inst.Devices, inst.L, core.Options{
			Local: core.LocalOptions{UseEigengap: true},
			DP:    &p,
		}, rand.New(rand.NewSource(s.Seed+int64(eps*10))))
		pred := core.FlattenLabels(res.Labels)
		// Round budget: worst device (max r) under basic composition.
		maxR := 0
		for _, r := range res.RPerDevice {
			if r > maxR {
				maxR = r
			}
		}
		round := privacy.Compose(p, maxR)
		t.AddRow(fmt.Sprintf("%.1f", eps), fmt.Sprintf("%.1f", round.Epsilon),
			fmt.Sprintf("%.3f", p.NoiseStd()),
			f1(metrics.Accuracy(truth, pred)), f1(metrics.NMI(truth, pred)))
	}
	return []Table{t}
}

// Quant measures the accuracy cost of actually quantizing the uploads at
// the q bits per float the communication accounting of Section IV-E
// assumes, over a range of bit widths.
func Quant(s Scale) []Table {
	bits := []int{2, 4, 6, 8, 16, 32}
	t := Table{
		Title:  fmt.Sprintf("Quantized uplink — accuracy vs bits per float (L=%d, Non-IID-2)", s.Fig4L),
		Header: []string{"bits", "uplink bits total", "Fed-SC(SSC) ACC", "Fed-SC(SSC) NMI"},
	}
	z := s.Fig4Zs[len(s.Fig4Zs)-1]
	rng := rand.New(rand.NewSource(s.Seed + 78))
	inst := syntheticInstance(s.Ambient, s.Dim, s.Fig4L, z, 2, s.Fig4PointsPerDevice, rng)
	truth := inst.FlatTruth()
	for _, b := range bits {
		res := core.Run(inst.Devices, inst.L, core.Options{
			Local:          core.LocalOptions{UseEigengap: true},
			QuantBits:      b,
			ApplyQuantizer: true,
		}, rand.New(rand.NewSource(s.Seed+int64(b))))
		pred := core.FlattenLabels(res.Labels)
		t.AddRow(fmt.Sprint(b), fmt.Sprint(res.UplinkBits),
			f1(metrics.Accuracy(truth, pred)), f1(metrics.NMI(truth, pred)))
	}
	return []Table{t}
}
