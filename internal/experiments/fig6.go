package experiments

import (
	"fmt"
	"math/rand"

	"fedsc/internal/subspace"
)

// Fig6 reproduces Fig. 6: Fed-SC (SSC/TSC) against the centralized SC
// algorithms (SSC, TSC, SSCOMP, EnSC, NSN) on the statistically
// heterogeneous synthetic setting (L=50, L′=3), as functions of Z. One
// table per metric: ACC, NMI, CONN (avg λ₂) and sequential running time.
func Fig6(s Scale) []Table {
	methodNames := []string{"Fed-SC(SSC)", "Fed-SC(TSC)", "SSC", "TSC", "SSCOMP", "EnSC", "NSN"}
	header := append([]string{"Z"}, methodNames...)
	acc := Table{Title: fmt.Sprintf("Fig. 6 — accuracy (L=%d, L'=%d)", s.Fig6L, s.Fig6LPrime), Header: header}
	nmi := Table{Title: "Fig. 6 — NMI", Header: header}
	conn := Table{Title: "Fig. 6 — connectivity (avg λ₂)", Header: header}
	times := Table{Title: "Fig. 6 — sequential running time (s)", Header: header}
	for _, z := range s.Fig6Zs {
		rng := rand.New(rand.NewSource(s.Seed + int64(z)*13))
		inst := syntheticInstance(s.Ambient, s.Dim, s.Fig6L, z, s.Fig6LPrime, s.Fig6PointsPerDevice, rng)
		pooledX, pooledTruth := inst.Pooled()
		fedSSC, fedTSC := runFedSCPair(inst, 0, rng)
		evals := []Eval{
			fedSSC,
			fedTSC,
			runCentral(subspace.MethodSSC, pooledX, pooledTruth, inst.L, rng),
			runCentral(subspace.MethodTSC, pooledX, pooledTruth, inst.L, rng),
			runCentral(subspace.MethodSSCOMP, pooledX, pooledTruth, inst.L, rng),
			runCentral(subspace.MethodEnSC, pooledX, pooledTruth, inst.L, rng),
			runCentral(subspace.MethodNSN, pooledX, pooledTruth, inst.L, rng),
		}
		accRow := []string{fmt.Sprint(z)}
		nmiRow := []string{fmt.Sprint(z)}
		connRow := []string{fmt.Sprint(z)}
		timeRow := []string{fmt.Sprint(z)}
		for _, ev := range evals {
			accRow = append(accRow, f1(ev.ACC))
			nmiRow = append(nmiRow, f1(ev.NMI))
			connRow = append(connRow, f4(ev.ConnAvg))
			timeRow = append(timeRow, fsec(ev.Seconds))
		}
		acc.AddRow(accRow...)
		nmi.AddRow(nmiRow...)
		conn.AddRow(connRow...)
		times.AddRow(timeRow...)
	}
	return []Table{acc, nmi, conn, times}
}
