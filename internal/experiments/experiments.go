package experiments

// Experiment names accepted by Run and the fedsc-bench command.
const (
	NameFig4    = "fig4"
	NameFig5    = "fig5"
	NameFig6    = "fig6"
	NameFig7    = "fig7"
	NameTable3  = "table3"
	NameTable4  = "table4"
	NameComm    = "comm"
	NameAblate  = "ablate"
	NamePrivacy = "privacy"
	NameQuant   = "quant"
	NameTheory  = "theory"
	NameScaling = "scaling"
)

// All lists every experiment in evaluation-section order, followed by the
// extensions (communication accounting, ablations, privacy, quantization).
func All() []string {
	return []string{NameFig4, NameFig5, NameFig6, NameFig7, NameTable3, NameTable4,
		NameComm, NameAblate, NamePrivacy, NameQuant, NameTheory, NameScaling}
}

// Run executes the named experiment at the given scale. The second return
// is false for an unknown name.
func Run(name string, s Scale) ([]Table, bool) {
	switch name {
	case NameFig4:
		return Fig4(s), true
	case NameFig5:
		return Fig5(s), true
	case NameFig6:
		return Fig6(s), true
	case NameFig7:
		return Fig7(s), true
	case NameTable3:
		return Table3(s), true
	case NameTable4:
		return Table4(s), true
	case NameComm:
		return Comm(s), true
	case NameAblate:
		return Ablate(s), true
	case NamePrivacy:
		return Privacy(s), true
	case NameQuant:
		return Quant(s), true
	case NameTheory:
		return Theory(s), true
	case NameScaling:
		return Scaling(s), true
	}
	return nil, false
}
