package experiments

import (
	"fmt"
	"math/rand"

	"fedsc/internal/core"
)

// Fig7 reproduces Fig. 7: the robustness of Fed-SC to communication
// noise. Each uploaded sample is perturbed with Gaussian noise of
// variance δ/√r⁽ᶻ⁾; the tables map accuracy over δ (rows) and Z
// (columns), one table per central method.
func Fig7(s Scale) []Table {
	header := []string{"δ \\ Z"}
	for _, z := range s.Fig7Zs {
		header = append(header, fmt.Sprint(z))
	}
	methods := []struct {
		name   string
		method core.CentralMethod
	}{
		{"Fed-SC (SSC)", core.CentralSSC},
		{"Fed-SC (TSC)", core.CentralTSC},
	}
	var tables []Table
	for _, m := range methods {
		t := Table{
			Title:  fmt.Sprintf("Fig. 7 — %s accuracy under channel noise", m.name),
			Header: header,
		}
		for _, delta := range s.Fig7Deltas {
			row := []string{fmt.Sprintf("%.2f", delta)}
			for _, z := range s.Fig7Zs {
				rng := rand.New(rand.NewSource(s.Seed + int64(z)*17 + int64(delta*1000)))
				inst := syntheticInstance(s.Ambient, s.Dim, s.Fig4L, z, 2, s.Fig4PointsPerDevice, rng)
				ev := runFedSC(inst, m.method, delta, false, 0, false, rng)
				row = append(row, f1(ev.ACC))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}
