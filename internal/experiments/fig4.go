package experiments

import (
	"fmt"
	"math/rand"
)

// Fig4 reproduces Fig. 4: clustering accuracy and NMI of Fed-SC (SSC),
// Fed-SC (TSC) and k-FED as functions of the number of devices Z under
// IID (L′ = L), Non-IID-10 and Non-IID-2 partitions of the synthetic
// union-of-subspaces data.
func Fig4(s Scale) []Table {
	var tables []Table
	for _, lp := range s.Fig4LPrimes {
		lPrime := lp
		name := fmt.Sprintf("Non-IID-%d", lPrime)
		if lPrime <= 0 || lPrime >= s.Fig4L {
			lPrime = s.Fig4L
			name = "IID"
		}
		// Local SSC needs enough points per locally-present cluster to
		// segment them; under IID (L' = L) that dominates the device
		// size, so the per-device budget scales with L'. The floor of
		// ~20 points per cluster is what the local eigengap needs to see
		// a clean band (see spectral.EstimateAndCluster).
		pointsPerDevice := s.Fig4PointsPerDevice
		if min := 20 * lPrime; pointsPerDevice < min {
			pointsPerDevice = min
		}
		t := Table{
			Title: fmt.Sprintf("Fig. 4 — %s partition (L=%d, d=%d, n=%d, %d pts/device)",
				name, s.Fig4L, s.Dim, s.Ambient, pointsPerDevice),
			Header: []string{"Z", "Fed-SC(SSC) ACC", "Fed-SC(SSC) NMI",
				"Fed-SC(TSC) ACC", "Fed-SC(TSC) NMI", "k-FED ACC", "k-FED NMI"},
		}
		for _, z := range s.Fig4Zs {
			rng := rand.New(rand.NewSource(s.Seed + int64(z) + int64(lPrime)*7919))
			inst := syntheticInstance(s.Ambient, s.Dim, s.Fig4L, z, lPrime, pointsPerDevice, rng)
			ssc, tsc := runFedSCPair(inst, 0, rng)
			kf := runKFED(inst, 0, rng)
			t.AddRow(fmt.Sprint(z),
				f1(ssc.ACC), f1(ssc.NMI),
				f1(tsc.ACC), f1(tsc.NMI),
				f1(kf.ACC), f1(kf.NMI))
		}
		tables = append(tables, t)
	}
	return tables
}
