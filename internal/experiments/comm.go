package experiments

import (
	"fmt"
	"math/rand"

	"fedsc/internal/core"
)

// Comm reproduces the communication-cost accounting of Section IV-E for
// a synthetic federated instance: the one-shot Fed-SC uplink
// (n·q·Σr⁽ᶻ⁾ bits) and downlink (Σr⁽ᶻ⁾·⌈log₂L⌉ bits) against two
// reference schemes — uploading the full per-cluster bases
// (n·q·Σᵗd_t floats, the "natural approach" the paper rejects) and
// uploading the raw local data (the non-federated baseline).
func Comm(s Scale) []Table {
	t := Table{
		Title: fmt.Sprintf("Section IV-E — communication cost (L=%d, d=%d, n=%d, q=32 bits)",
			s.Fig4L, s.Dim, s.Ambient),
		Header: []string{"Z", "Σr⁽ᶻ⁾", "Fed-SC up (bits)", "Fed-SC down (bits)",
			"basis upload (bits)", "raw data (bits)", "saving vs raw"},
	}
	for _, z := range s.Fig4Zs {
		rng := rand.New(rand.NewSource(s.Seed + int64(z)*23))
		inst := syntheticInstance(s.Ambient, s.Dim, s.Fig4L, z, 2, s.Fig4PointsPerDevice, rng)
		res := core.Run(inst.Devices, inst.L, core.Options{
			Local: core.LocalOptions{UseEigengap: true},
		}, rng)
		sumR := 0
		for _, r := range res.RPerDevice {
			sumR += r
		}
		basisFloats := 0
		for _, lr := range res.Locals {
			for _, d := range lr.Dims {
				basisFloats += s.Ambient * d
			}
		}
		rawFloats := 0
		for _, x := range inst.Devices {
			rawFloats += x.Rows() * x.Cols()
		}
		basisBits := int64(basisFloats) * 32
		rawBits := int64(rawFloats) * 32
		saving := float64(rawBits) / float64(res.UplinkBits)
		t.AddRow(fmt.Sprint(z), fmt.Sprint(sumR),
			fmt.Sprint(res.UplinkBits), fmt.Sprint(res.DownlinkBits),
			fmt.Sprint(basisBits), fmt.Sprint(rawBits),
			fmt.Sprintf("%.1fx", saving))
	}
	return []Table{t}
}
