package experiments

import (
	"math/rand"
	"time"

	"fedsc/internal/core"
	"fedsc/internal/kfed"
	"fedsc/internal/mat"
	"fedsc/internal/metrics"
	"fedsc/internal/sparse"
	"fedsc/internal/subspace"
	"fedsc/internal/synth"
)

// Instance is one federated clustering problem: per-device data with
// ground truth.
type Instance struct {
	// Devices holds each device's local data (columns = points).
	Devices []*mat.Dense
	// Truth[z] are the ground-truth labels of device z's points.
	Truth [][]int
	// L is the number of global clusters.
	L int
	// MaxLPrime is max_z L⁽ᶻ⁾, used as the k-FED local cluster count and
	// the Fed-SC real-data r⁽ᶻ⁾ upper bound.
	MaxLPrime int
}

// FlatTruth concatenates the per-device ground truth in device order,
// matching core.FlattenLabels.
func (in Instance) FlatTruth() []int { return core.FlattenLabels(in.Truth) }

// TotalPoints counts points across devices.
func (in Instance) TotalPoints() int {
	n := 0
	for _, t := range in.Truth {
		n += len(t)
	}
	return n
}

// Pooled concatenates all device data into one matrix with aligned
// labels, the input the centralized baselines see.
func (in Instance) Pooled() (*mat.Dense, []int) {
	return mat.HStack(in.Devices...), in.FlatTruth()
}

// syntheticInstance builds the synthetic federated setting of Section
// VI-A: z devices, each holding pointsPerDevice unit-norm points drawn
// from lPrime of the l random d-dimensional subspaces of R^n
// (lPrime = l reproduces the IID partition).
func syntheticInstance(n, d, l, z, lPrime, pointsPerDevice int, rng *rand.Rand) Instance {
	s := synth.RandomSubspaces(n, d, l, rng)
	inst := Instance{Devices: make([]*mat.Dense, z), Truth: make([][]int, z), L: l, MaxLPrime: lPrime}
	for dev := 0; dev < z; dev++ {
		clusters := rng.Perm(l)[:lPrime]
		counts := make([]int, l)
		for k := 0; k < pointsPerDevice; k++ {
			counts[clusters[k%lPrime]]++
		}
		ds := s.SampleCounts(counts, rng)
		inst.Devices[dev] = ds.X
		inst.Truth[dev] = ds.Labels
	}
	return inst
}

// datasetInstance splits a labeled dataset over z devices with the
// Non-IID range partition (each device sees lpMin..lpMax clusters).
func datasetInstance(ds synth.Dataset, l, z, lpMin, lpMax int, rng *rand.Rand) Instance {
	p := synth.PartitionNonIIDRange(ds.Labels, l, z, lpMin, lpMax, rng)
	inst := Instance{Devices: make([]*mat.Dense, z), Truth: make([][]int, z), L: l}
	for dev := 0; dev < z; dev++ {
		sub := ds.Select(p.Points[dev])
		inst.Devices[dev] = sub.X
		inst.Truth[dev] = sub.Labels
	}
	for _, c := range p.ClustersPerDevice(ds.Labels) {
		if c > inst.MaxLPrime {
			inst.MaxLPrime = c
		}
	}
	return inst
}

// Eval bundles the metrics reported across the evaluation section.
type Eval struct {
	ACC, NMI  float64
	ConnMin   float64
	ConnAvg   float64
	HasConn   bool
	Seconds   float64 // sequential running time (Σ_z T⁽ᶻ⁾ + T_c for federated)
	Result    core.Result
	SubResult subspace.Result
}

// runFedSC executes Fed-SC on the instance with the given central method
// and returns its metrics. realData selects the paper's real-world
// configuration (r⁽ᶻ⁾ upper bound + d_t = 1) instead of the eigengap.
// Connectivity (an expensive diagnostic over the induced global graph)
// is only computed when withConn is set; Eval.HasConn reports it.
func runFedSC(inst Instance, method core.CentralMethod, noiseDelta float64, realData bool, rmax int, withConn bool, rng *rand.Rand) Eval {
	opts := core.Options{
		Central:    core.CentralOptions{Method: method},
		NoiseDelta: noiseDelta,
	}
	if realData {
		r := rmax
		if r <= 0 {
			r = inst.MaxLPrime
		}
		opts.Local = core.LocalOptions{RMax: r, UseEigengap: false, TargetDim: 1}
	} else {
		r := rmax
		if r <= 0 {
			// No device can hold more than L clusters; bounding the
			// eigengap search there keeps the local eigensolver from
			// chasing the full spectrum on large devices.
			r = inst.L + 5
		}
		opts.Local = core.LocalOptions{UseEigengap: true, RMax: r}
	}
	res := core.Run(inst.Devices, inst.L, opts, rng)
	truth := inst.FlatTruth()
	pred := core.FlattenLabels(res.Labels)
	ev := Eval{
		ACC:     metrics.Accuracy(truth, pred),
		NMI:     metrics.NMI(truth, pred),
		Seconds: res.SequentialTime.Seconds(),
		Result:  res,
	}
	if withConn {
		w := InducedGlobalAffinity(inst, res)
		ev.ConnMin, ev.ConnAvg = metrics.Connectivity(w, truth, rng)
		ev.HasConn = true
	}
	return ev
}

// runFedSCPair evaluates Fed-SC with BOTH central methods over one shared
// Phase 1: local clustering dominates the cost and is identical for the
// two variants, so the harness runs it once and aggregates twice.
func runFedSCPair(inst Instance, rmax int, rng *rand.Rand) (ssc, tsc Eval) {
	r := rmax
	if r <= 0 {
		r = inst.L + 5
	}
	local := core.LocalOptions{UseEigengap: true, RMax: r}
	seeds := make([]int64, len(inst.Devices))
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	locals := make([]core.LocalResult, len(inst.Devices))
	mat.Parallel(len(inst.Devices), 1<<30, func(lo, hi int) {
		for dev := lo; dev < hi; dev++ {
			locals[dev] = core.LocalClusterAndSample(inst.Devices[dev], local, rand.New(rand.NewSource(seeds[dev])))
		}
	})
	truth := inst.FlatTruth()
	eval := func(method core.CentralMethod) Eval {
		res := core.Aggregate(inst.Devices, locals, inst.L, core.Options{
			Local:   local,
			Central: core.CentralOptions{Method: method},
		}, rng)
		pred := core.FlattenLabels(res.Labels)
		ev := Eval{
			ACC:     metrics.Accuracy(truth, pred),
			NMI:     metrics.NMI(truth, pred),
			Seconds: res.SequentialTime.Seconds(),
			Result:  res,
		}
		w := InducedGlobalAffinity(inst, res)
		ev.ConnMin, ev.ConnAvg = metrics.Connectivity(w, truth, rng)
		ev.HasConn = true
		return ev
	}
	return eval(core.CentralSSC), eval(core.CentralTSC)
}

// runKFED executes the k-FED baseline (optionally with local PCA).
func runKFED(inst Instance, pcaDim int, rng *rand.Rand) Eval {
	start := time.Now()
	res := kfed.Run(inst.Devices, inst.L, rng, kfed.Options{KLocal: inst.MaxLPrime, PCADim: pcaDim})
	secs := time.Since(start).Seconds()
	truth := inst.FlatTruth()
	pred := core.FlattenLabels(res.Labels)
	return Eval{
		ACC:     metrics.Accuracy(truth, pred),
		NMI:     metrics.NMI(truth, pred),
		Seconds: secs,
	}
}

// runCentral executes a centralized SC baseline on the pooled data.
func runCentral(method subspace.Method, x *mat.Dense, truth []int, l int, rng *rand.Rand) Eval {
	start := time.Now()
	res := subspace.Cluster(method, x, l, rng)
	secs := time.Since(start).Seconds()
	connMin, connAvg := metrics.Connectivity(res.Affinity, truth, rng)
	return Eval{
		ACC:       metrics.Accuracy(truth, res.Labels),
		NMI:       metrics.NMI(truth, res.Labels),
		ConnMin:   connMin,
		ConnAvg:   connAvg,
		HasConn:   true,
		Seconds:   secs,
		SubResult: res,
	}
}

// InducedGlobalAffinity lifts the server-side affinity over samples back
// to an affinity over ALL data points (Section IV-E, "Connectivity of
// affinity graph"): within each local cluster the points are connected
// (star topology around the cluster's first point keeps the graph
// sparse), and the cluster representatives inherit the sample-to-sample
// affinities computed at the server.
func InducedGlobalAffinity(inst Instance, res core.Result) *sparse.CSR {
	// Global index offsets per device.
	offsets := make([]int, len(inst.Devices))
	total := 0
	for dev, x := range inst.Devices {
		offsets[dev] = total
		total += x.Cols()
	}
	// Representative point of each sample group, in the pooled sample
	// order the central affinity uses.
	var reps []int
	spc := 1
	for dev, lr := range res.Locals {
		if lr.R() > 0 && lr.Samples.Cols() > 0 {
			spc = lr.Samples.Cols() / lr.R()
		}
		for _, part := range lr.Partitions {
			rep := offsets[dev] + part[0]
			for s := 0; s < spc; s++ {
				reps = append(reps, rep)
			}
		}
	}
	var entries []sparse.Coord
	// Intra-cluster stars.
	for dev, lr := range res.Locals {
		for _, part := range lr.Partitions {
			rep := offsets[dev] + part[0]
			for _, i := range part[1:] {
				gi := offsets[dev] + i
				entries = append(entries,
					sparse.Coord{Row: rep, Col: gi, Val: 1},
					sparse.Coord{Row: gi, Col: rep, Val: 1})
			}
		}
	}
	// Server affinities between representatives.
	if res.CentralAffinity != nil {
		n, _ := res.CentralAffinity.Dims()
		for i := 0; i < n && i < len(reps); i++ {
			res.CentralAffinity.Row(i, func(j int, v float64) {
				if j >= len(reps) || reps[i] == reps[j] {
					return
				}
				entries = append(entries, sparse.Coord{Row: reps[i], Col: reps[j], Val: v})
			})
		}
	}
	return sparse.NewCSR(total, total, entries)
}
