package experiments

import (
	"fmt"
	"math"
	"math/rand"
)

// Fig5 reproduces Fig. 5: the clustering-accuracy heatmaps of Fed-SC
// (SSC) and Fed-SC (TSC) as functions of the number of subspaces L and
// the heterogeneity ratio L′/L, at fixed Z. One table per method; rows
// are L values, columns the ratios. Both methods share each cell's
// Phase 1, which dominates the cost.
func Fig5(s Scale) []Table {
	header := []string{"L \\ L'/L"}
	for _, r := range s.Fig5Ratios {
		header = append(header, fmt.Sprintf("%.1f", r))
	}
	ssc := Table{
		Title:  fmt.Sprintf("Fig. 5 — Fed-SC (SSC) accuracy heatmap (Z=%d)", s.Fig5Z),
		Header: header,
	}
	tsc := Table{
		Title:  fmt.Sprintf("Fig. 5 — Fed-SC (TSC) accuracy heatmap (Z=%d)", s.Fig5Z),
		Header: header,
	}
	for _, l := range s.Fig5Ls {
		sscRow := []string{fmt.Sprint(l)}
		tscRow := []string{fmt.Sprint(l)}
		for _, ratio := range s.Fig5Ratios {
			lPrime := int(math.Round(ratio * float64(l)))
			if lPrime < 1 {
				lPrime = 1
			}
			if lPrime > l {
				lPrime = l
			}
			rng := rand.New(rand.NewSource(s.Seed + int64(l)*31 + int64(lPrime)*101))
			pointsPerDevice := s.Fig4PointsPerDevice
			if min := 20 * lPrime; pointsPerDevice < min {
				pointsPerDevice = min
			}
			inst := syntheticInstance(s.Ambient, s.Dim, l, s.Fig5Z, lPrime, pointsPerDevice, rng)
			evSSC, evTSC := runFedSCPair(inst, 0, rng)
			sscRow = append(sscRow, f1(evSSC.ACC))
			tscRow = append(tscRow, f1(evTSC.ACC))
		}
		ssc.AddRow(sscRow...)
		tsc.AddRow(tscRow...)
	}
	return []Table{ssc, tsc}
}
